#include "traffic/suite.hpp"

#include "common/log.hpp"

namespace pearl {
namespace traffic {

namespace {

BenchmarkProfile
cpuProfile(const std::string &name, const std::string &abbrev,
           double rate_on, double rate_off, double p_on_off, double p_off_on,
           std::uint64_t ws_lines, double instr, double write, double shared,
           double stream)
{
    BenchmarkProfile p;
    p.name = name;
    p.abbrev = abbrev;
    p.coreType = sim::CoreType::CPU;
    p.accessRateOn = rate_on;
    p.accessRateOff = rate_off;
    p.pOnToOff = p_on_off;
    p.pOffToOn = p_off_on;
    p.workingSetLines = ws_lines;
    p.instrFraction = instr;
    p.writeFraction = write;
    p.sharedFraction = shared;
    p.streamFraction = stream;
    return p;
}

BenchmarkProfile
gpuProfile(const std::string &name, const std::string &abbrev,
           double rate_on, double rate_off, double p_on_off, double p_off_on,
           std::uint64_t ws_lines, double write, double shared, double stream)
{
    BenchmarkProfile p;
    p.name = name;
    p.abbrev = abbrev;
    p.coreType = sim::CoreType::GPU;
    p.accessRateOn = rate_on;
    p.accessRateOff = rate_off;
    p.pOnToOff = p_on_off;
    p.pOffToOn = p_off_on;
    p.workingSetLines = ws_lines;
    p.instrFraction = 0.0; // GPU CUs have a unified L1 in this model
    p.writeFraction = write;
    p.sharedFraction = shared;
    p.streamFraction = stream;
    return p;
}

} // namespace

BenchmarkSuite::BenchmarkSuite()
{
    // CPU profiles.  The four Table IV test benchmarks first; the other
    // eight are training/validation stand-ins for the remaining PARSEC /
    // SPLASH2 programs.  Rates are per network cycle per core while ON.
    // CPU traffic is comparatively steady (mild bursts), with working
    // sets chosen so memory-intensive programs thrash the 256 kB L2
    // (4096 lines) while compute-bound ones mostly hit.
    cpu_ = {
        cpuProfile("Fluid Animate", "FA",
                   0.0252, 0.0024, 0.00012, 0.00015, 12288, 0.22, 0.35, 0.12, 0.6),
        cpuProfile("Fast Multipole Method", "fmm",
                   0.0202, 0.0018, 0.00009, 0.00012, 6144, 0.25, 0.25, 0.18, 0.4),
        cpuProfile("Radiosity", "Rad",
                   0.0168, 0.0015, 0.00015, 0.00015, 4096, 0.28, 0.30, 0.22, 0.3),
        cpuProfile("x264", "x264",
                   0.0294, 0.0030, 0.00018, 0.00021, 16384, 0.20, 0.40, 0.08, 0.7),
        cpuProfile("Blackscholes", "BS",
                   0.0101, 0.0009, 0.00006, 0.00009, 1536, 0.30, 0.20, 0.04, 0.8),
        cpuProfile("Bodytrack", "BT",
                   0.0210, 0.0021, 0.00012, 0.00012, 8192, 0.24, 0.30, 0.15, 0.5),
        cpuProfile("Canneal", "CN",
                   0.0336, 0.0036, 0.00009, 0.00012, 24576, 0.18, 0.45, 0.10, 0.1),
        cpuProfile("Streamcluster", "SC",
                   0.0273, 0.0027, 0.00012, 0.00015, 16384, 0.20, 0.15, 0.20, 0.9),
        cpuProfile("Barnes", "Barnes",
                   0.0185, 0.0018, 0.00015, 0.00018, 5120, 0.26, 0.28, 0.25, 0.3),
        cpuProfile("FFT", "FFT",
                   0.0231, 0.0024, 0.00006, 0.00009, 10240, 0.22, 0.35, 0.12, 0.8),
        cpuProfile("LU Decomposition", "LU",
                   0.0210, 0.0021, 0.00009, 0.00012, 7168, 0.24, 0.38, 0.14, 0.6),
        cpuProfile("Ocean", "Ocean",
                   0.0294, 0.0030, 0.00012, 0.00012, 12288, 0.21, 0.42, 0.16, 0.7),
    };

    // GPU profiles: strongly bursty (long ON bursts of dense memory
    // traffic separated by compute phases), higher write-back volume,
    // large streaming working sets against a 512 kB L2 (8192 lines).
    gpu_ = {
        gpuProfile("Discrete Cosine Transforms", "DCT",
                   0.1176, 0.0009, 0.00018, 0.00009, 3072, 0.40, 0.05, 0.8),
        gpuProfile("1-D Haar Wavelet Transform", "Dwrt",
                   0.1008, 0.0009, 0.00024, 0.00012, 2048, 0.35, 0.04, 0.9),
        gpuProfile("Quasi Random Sequence", "QRS",
                   0.0756, 0.0006, 0.00030, 0.00012, 1024, 0.50, 0.02, 0.5),
        gpuProfile("Reduction", "Reduc",
                   0.1344, 0.0012, 0.00015, 0.00009, 4096, 0.30, 0.06, 0.9),
        gpuProfile("Matrix Multiplication", "MM",
                   0.1260, 0.0009, 0.00012, 0.00009, 6144, 0.25, 0.05, 0.7),
        gpuProfile("Histogram", "HG",
                   0.0924, 0.0009, 0.00021, 0.00012, 1536, 0.55, 0.08, 0.4),
        gpuProfile("Bitonic Sort", "BSort",
                   0.1092, 0.0009, 0.00018, 0.00009, 3072, 0.45, 0.04, 0.6),
        gpuProfile("Floyd Warshall", "FW",
                   0.1176, 0.0012, 0.00015, 0.00009, 4096, 0.40, 0.10, 0.5),
        gpuProfile("Binomial Option", "BO",
                   0.0672, 0.0006, 0.00027, 0.00012, 768, 0.35, 0.03, 0.6),
        gpuProfile("Convolution", "CV",
                   0.1218, 0.0009, 0.00015, 0.00009, 2560, 0.38, 0.05, 0.8),
        gpuProfile("Prefix Sum", "PS",
                   0.0840, 0.0009, 0.00024, 0.00012, 1280, 0.42, 0.04, 0.9),
        gpuProfile("Monte Carlo", "MC",
                   0.0588, 0.0006, 0.00030, 0.00015, 512, 0.20, 0.02, 0.3),
    };
}

const BenchmarkProfile &
BenchmarkSuite::find(const std::string &abbrev) const
{
    for (const auto &p : cpu_) {
        if (p.abbrev == abbrev)
            return p;
    }
    for (const auto &p : gpu_) {
        if (p.abbrev == abbrev)
            return p;
    }
    fatal("unknown benchmark abbreviation: ", abbrev);
}

std::vector<BenchmarkPair>
BenchmarkSuite::cross(const std::vector<std::string> &cpus,
                      const std::vector<std::string> &gpus) const
{
    std::vector<BenchmarkPair> pairs;
    pairs.reserve(cpus.size() * gpus.size());
    for (const auto &c : cpus) {
        for (const auto &g : gpus) {
            pairs.push_back(BenchmarkPair{find(c), find(g)});
        }
    }
    return pairs;
}

std::vector<BenchmarkPair>
BenchmarkSuite::trainingPairs() const
{
    return cross({"BS", "BT", "CN", "SC", "FFT", "Ocean"},
                 {"MM", "HG", "BSort", "FW", "CV", "PS"});
}

std::vector<BenchmarkPair>
BenchmarkSuite::validationPairs() const
{
    return cross({"Barnes", "LU"}, {"BO", "MC"});
}

std::vector<BenchmarkPair>
BenchmarkSuite::testPairs() const
{
    return cross({"FA", "fmm", "Rad", "x264"},
                 {"DCT", "Dwrt", "QRS", "Reduc"});
}

} // namespace traffic
} // namespace pearl
