/**
 * @file
 * Synthetic traffic patterns and latency-load sweeps.
 *
 * Besides the benchmark-profile workloads, the networks can be driven
 * with the classic synthetic patterns used throughout the NoC
 * literature (uniform random, transpose, bit-complement, hotspot,
 * neighbour).  The injector offers packets at a configurable load with
 * per-source FIFO retry, and `latencyLoadSweep` produces the standard
 * latency-vs-offered-load curve for any sim::Network.
 */

#ifndef PEARL_TRAFFIC_SYNTHETIC_HPP
#define PEARL_TRAFFIC_SYNTHETIC_HPP

#include <deque>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/network.hpp"
#include "sim/packet.hpp"

namespace pearl {
namespace traffic {

/** Classic synthetic destination patterns over the 4x4 cluster grid. */
enum class Pattern
{
    UniformRandom, //!< uniform over all other nodes
    Transpose,     //!< (x,y) -> (y,x)
    BitComplement, //!< node i -> ~i (mod nodes)
    Hotspot,       //!< everything to one hot node
    Neighbor       //!< node i -> i+1 (ring)
};

const char *toString(Pattern p);

/** Configuration of a synthetic injector. */
struct SyntheticConfig
{
    Pattern pattern = Pattern::UniformRandom;
    int numSources = 16;         //!< injecting nodes (0..numSources-1)
    int numNodes = 17;           //!< address space incl. the MC node
    int hotspotNode = 16;        //!< target for Pattern::Hotspot
    /** Offered load in flits per source per cycle. */
    double flitsPerSourcePerCycle = 0.1;
    /** Fraction of packets that are 5-flit data packets (vs 1-flit). */
    double dataFraction = 0.5;
    std::uint64_t seed = 1;
};

/** Drives a network with a synthetic pattern. */
class SyntheticInjector
{
  public:
    explicit SyntheticInjector(const SyntheticConfig &cfg);

    /**
     * Offer this cycle's packets (per-source FIFO retry under
     * backpressure) and step the network.  Delivered packets are
     * drained; their count and latencies accumulate in the network's
     * own stats.
     */
    void step(sim::Network &network);

    /** Packets generated but not yet accepted by the network. */
    std::size_t backlogSize() const;

    /** Packets generated so far (accepted or not). */
    std::uint64_t generatedCount() const { return generated_; }

    const SyntheticConfig &config() const { return cfg_; }

    /** Destination for `src` under the pattern (exposed for tests). */
    int destination(int src, Rng &rng) const;

  private:
    SyntheticConfig cfg_;
    Rng rng_;
    std::vector<std::deque<sim::Packet>> backlog_;
    std::vector<double> credit_; //!< fractional flit budget per source
    std::uint64_t generated_ = 0;
    std::uint64_t nextId_ = 0;
};

/** One point of a latency-load curve. */
struct LoadPoint
{
    double offeredFlitsPerSourcePerCycle = 0.0;
    double deliveredFlitsPerCycle = 0.0;
    double avgLatencyCycles = 0.0;
    bool saturated = false; //!< backlog kept growing at this load
};

/**
 * Measure one point of a latency-load curve: drive `network` with the
 * injector configuration for `cycles` cycles and record the delivered
 * throughput, mean latency and saturation state.
 */
inline LoadPoint
measureLoadPoint(sim::Network &network, const SyntheticConfig &cfg,
                 sim::Cycle cycles)
{
    SyntheticInjector injector(cfg);
    for (sim::Cycle t = 0; t < cycles; ++t)
        injector.step(network);

    LoadPoint point;
    point.offeredFlitsPerSourcePerCycle = cfg.flitsPerSourcePerCycle;
    point.deliveredFlitsPerCycle =
        network.stats().throughputFlitsPerCycle(cycles);
    point.avgLatencyCycles = network.stats().avgLatency();
    // Saturation heuristic: a backlog worth >5% of the generated
    // packets is still waiting.
    point.saturated =
        injector.backlogSize() * 20 > injector.generatedCount();
    return point;
}

/**
 * Run a latency-load sweep: for each offered load, build a network with
 * `make_network`, drive it for `cycles_per_point` cycles and record the
 * delivered throughput and mean latency.
 */
template <typename MakeNetwork>
std::vector<LoadPoint>
latencyLoadSweep(MakeNetwork &&make_network,
                 const std::vector<double> &loads,
                 const SyntheticConfig &base_cfg,
                 sim::Cycle cycles_per_point = 20000)
{
    std::vector<LoadPoint> curve;
    for (double load : loads) {
        auto network = make_network();
        SyntheticConfig cfg = base_cfg;
        cfg.flitsPerSourcePerCycle = load;
        curve.push_back(
            measureLoadPoint(*network, cfg, cycles_per_point));
    }
    return curve;
}

} // namespace traffic
} // namespace pearl

#endif // PEARL_TRAFFIC_SYNTHETIC_HPP
