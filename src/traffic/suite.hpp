/**
 * @file
 * The benchmark suite: 12 CPU + 12 GPU profiles and the paper's
 * train / validation / test pairing (Section IV-A).
 *
 * The four CPU and four GPU *test* benchmarks are exactly the ones named
 * in Table IV (FA, fmm, Rad, x264 / DCT, Dwrt, QRS, Reduc); the remaining
 * named profiles stand in for the unnamed training and validation
 * benchmarks from PARSEC 2.1, SPLASH2 and the OpenCL SDK.
 */

#ifndef PEARL_TRAFFIC_SUITE_HPP
#define PEARL_TRAFFIC_SUITE_HPP

#include <vector>

#include "traffic/profile.hpp"

namespace pearl {
namespace traffic {

/** A CPU benchmark running simultaneously with a GPU benchmark. */
struct BenchmarkPair
{
    BenchmarkProfile cpu;
    BenchmarkProfile gpu;

    std::string
    label() const
    {
        return cpu.abbrev + "+" + gpu.abbrev;
    }
};

/** Registry of all profiles and the train/val/test splits. */
class BenchmarkSuite
{
  public:
    BenchmarkSuite();

    /** All 12 CPU profiles. */
    const std::vector<BenchmarkProfile> &cpuBenchmarks() const
    {
        return cpu_;
    }

    /** All 12 GPU profiles. */
    const std::vector<BenchmarkProfile> &gpuBenchmarks() const
    {
        return gpu_;
    }

    /** Look up a profile by abbreviation; fatal if unknown. */
    const BenchmarkProfile &find(const std::string &abbrev) const;

    /** 6 CPU x 6 GPU = 36 training pairs. */
    std::vector<BenchmarkPair> trainingPairs() const;

    /** 2 CPU x 2 GPU = 4 validation pairs (for tuning lambda). */
    std::vector<BenchmarkPair> validationPairs() const;

    /** 4 CPU x 4 GPU = 16 test pairs (Table IV benchmarks). */
    std::vector<BenchmarkPair> testPairs() const;

  private:
    std::vector<BenchmarkPair> cross(const std::vector<std::string> &cpus,
                                     const std::vector<std::string> &gpus)
        const;

    std::vector<BenchmarkProfile> cpu_;
    std::vector<BenchmarkProfile> gpu_;
};

} // namespace traffic
} // namespace pearl

#endif // PEARL_TRAFFIC_SUITE_HPP
