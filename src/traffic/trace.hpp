/**
 * @file
 * Packet-trace recording and replay.
 *
 * The paper's methodology is trace-driven: network traffic is captured
 * from a full-system simulator and replayed through the NoC under each
 * configuration.  This module provides the same workflow for this
 * repository: `TraceRecordingNetwork` wraps any sim::Network and records
 * every accepted injection with its cycle stamp; `TraceWriter` /
 * `TraceReader` persist traces as line-oriented text; `TraceReplayDriver`
 * plays a trace into any network, retrying on backpressure, so the *same*
 * offered traffic can be compared across PEARL and CMESH configurations.
 */

#ifndef PEARL_TRAFFIC_TRACE_HPP
#define PEARL_TRAFFIC_TRACE_HPP

#include <deque>
#include <istream>
#include <ostream>
#include <vector>

#include "sim/network.hpp"
#include "sim/packet.hpp"

namespace pearl {
namespace traffic {

/** One trace entry: a packet and the cycle it was offered. */
struct TraceRecord
{
    sim::Cycle cycle = 0;
    sim::Packet pkt;
};

/** A recorded packet trace. */
struct Trace
{
    std::vector<TraceRecord> records;

    std::size_t size() const { return records.size(); }
    bool empty() const { return records.empty(); }

    /** Last offered cycle (0 when empty). */
    sim::Cycle
    lastCycle() const
    {
        return records.empty() ? 0 : records.back().cycle;
    }
};

/** Serialise a trace as line-oriented text. */
class TraceWriter
{
  public:
    /** Write the full trace (header line + one line per record). */
    static void write(std::ostream &os, const Trace &trace);

    /** Append a single record in the same format. */
    static void writeRecord(std::ostream &os, const TraceRecord &rec);
};

/** Parse a trace written by TraceWriter. */
class TraceReader
{
  public:
    /**
     * @return true and fill `trace` on success; false on a malformed
     *         stream (trace left in an unspecified state).
     */
    static bool read(std::istream &is, Trace &trace);
};

/**
 * Decorator network that records every accepted injection.  All other
 * calls forward to the wrapped network.
 */
class TraceRecordingNetwork : public sim::Network
{
  public:
    explicit TraceRecordingNetwork(sim::Network &inner) : inner_(inner) {}

    bool
    inject(const sim::Packet &pkt) override
    {
        if (!inner_.inject(pkt))
            return false;
        TraceRecord rec;
        rec.cycle = inner_.cycle();
        rec.pkt = pkt;
        trace_.records.push_back(rec);
        return true;
    }

    bool
    canInject(const sim::Packet &pkt) const override
    {
        return inner_.canInject(pkt);
    }

    void step() override { inner_.step(); }
    std::vector<sim::Packet> &delivered() override
    {
        return inner_.delivered();
    }
    sim::Cycle cycle() const override { return inner_.cycle(); }
    int numNodes() const override { return inner_.numNodes(); }
    const sim::NetworkStats &stats() const override
    {
        return inner_.stats();
    }
    bool idle() const override { return inner_.idle(); }

    const Trace &trace() const { return trace_; }
    Trace takeTrace() { return std::move(trace_); }

  private:
    sim::Network &inner_;
    Trace trace_;
};

/**
 * Replays a trace into a network: packets are offered at their recorded
 * cycles (shifted to the driver's cycle 0) and retried under
 * backpressure, preserving per-source FIFO order.
 */
class TraceReplayDriver
{
  public:
    /**
     * @param network the network under test (not owned).
     * @param trace   the trace to replay (copied).
     */
    TraceReplayDriver(sim::Network &network, Trace trace);

    /** Advance one cycle: offer due packets, step the network.
     *  Delivered packets are drained and counted automatically. */
    void step();

    /** Run until the whole trace is injected and delivered (or
     *  `max_cycles` elapse).  @return true if fully drained. */
    bool runToCompletion(sim::Cycle max_cycles);

    /** Packets not yet accepted by the network. */
    std::size_t pendingCount() const;

    /** Packets delivered so far. */
    std::uint64_t deliveredCount() const { return delivered_; }

    sim::Network &network() { return network_; }

  private:
    sim::Network &network_;
    Trace trace_;
    std::size_t nextRecord_ = 0;   //!< first not-yet-offered record
    sim::Cycle baseCycle_ = 0;     //!< trace cycle of the first record
    std::vector<std::deque<sim::Packet>> backlog_; //!< per source node
    std::uint64_t delivered_ = 0;
    sim::Cycle localCycle_ = 0;
};

} // namespace traffic
} // namespace pearl

#endif // PEARL_TRAFFIC_TRACE_HPP
