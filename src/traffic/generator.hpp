/**
 * @file
 * Per-core synthetic memory-demand generator.
 *
 * Each core (CPU core or GPU compute unit) runs a two-state Markov burst
 * process: in the ON phase it issues memory accesses with the profile's
 * `accessRateOn` probability per network cycle, in the OFF phase with
 * `accessRateOff`.  Addresses are cache-line granular and mix streaming,
 * random reuse within the working set, and accesses to a globally shared
 * region that drives cross-cluster coherence.
 */

#ifndef PEARL_TRAFFIC_GENERATOR_HPP
#define PEARL_TRAFFIC_GENERATOR_HPP

#include <cstdint>
#include <optional>

#include "common/rng.hpp"
#include "traffic/profile.hpp"

namespace pearl {
namespace traffic {

/** One memory access produced by a core. */
struct MemAccess
{
    std::uint64_t lineAddr = 0; //!< cache-line address (line granularity)
    bool write = false;
    bool instr = false;         //!< instruction fetch (CPU L1I)
};

/** Address-space layout constants shared by all generators. */
struct AddressSpace
{
    /** Private region base for a core: distinct high bits per core. */
    static std::uint64_t
    privateBase(int global_core_id)
    {
        return (static_cast<std::uint64_t>(global_core_id) + 1) << 32;
    }

    /** Shared region base per core type (CPU and GPU regions differ). */
    static std::uint64_t
    sharedBase(sim::CoreType t)
    {
        return t == sim::CoreType::CPU ? (1ULL << 60) : (1ULL << 61);
    }

    /** Shared region size in lines (128 kB): small enough that the
     *  chip-wide access volume produces real reuse and contention. */
    static constexpr std::uint64_t kSharedLines = 2048;
};

/**
 * Chip-wide program phase shared by every core of one type.
 *
 * Real heterogeneous workloads are phase-structured: GPU kernels launch
 * across all compute units at once and CPU programs synchronise at
 * barriers, so the memory demand of all clusters rises and falls
 * *together*.  This global ON/OFF Markov process (parameters from the
 * benchmark profile) modulates every core's rate; the per-core Bernoulli
 * draw adds local jitter on top.
 */
class GlobalPhase
{
  public:
    GlobalPhase(double p_on_to_off, double p_off_to_on, Rng rng)
        : pOnToOff_(p_on_to_off), pOffToOn_(p_off_to_on), rng_(rng)
    {
        const double denom = pOnToOff_ + pOffToOn_;
        on_ = rng_.chance(denom > 0.0 ? pOffToOn_ / denom : 1.0);
    }

    /** Construct from a profile's burst parameters. */
    GlobalPhase(const BenchmarkProfile &profile, Rng rng)
        : GlobalPhase(profile.pOnToOff, profile.pOffToOn, rng)
    {}

    /** Advance one cycle (call exactly once per network cycle). */
    void
    tick()
    {
        if (on_) {
            if (rng_.chanceT(tOnToOff_))
                on_ = false;
        } else {
            if (rng_.chanceT(tOffToOn_))
                on_ = true;
        }
    }

    bool on() const { return on_; }

  private:
    double pOnToOff_;
    double pOffToOn_;
    // chanceThreshold() images of the probabilities: the per-cycle
    // transition draws run on the integer fast path (same stream).
    std::uint64_t tOnToOff_ = Rng::chanceThreshold(pOnToOff_);
    std::uint64_t tOffToOn_ = Rng::chanceThreshold(pOffToOn_);
    Rng rng_;
    bool on_;
};

/** Markov-modulated demand generator for one core. */
class alignas(64) CoreDemandGenerator
{
  public:
    /**
     * @param profile        benchmark profile driving the statistics.
     * @param global_core_id unique core id (private address region).
     * @param rng            forked stream owned by this generator.
     * @param phase          optional chip-wide phase; when given, the
     *                       burst state is the shared phase instead of a
     *                       private Markov chain.
     * @param shared_lines   shared-region size in lines.  Scale-out runs
     *                       weak-scale this with the core count (see
     *                       core::makeSystemConfig) so per-line coherence
     *                       contention stays constant across chip sizes.
     */
    CoreDemandGenerator(const BenchmarkProfile &profile, int global_core_id,
                        Rng rng, const GlobalPhase *phase = nullptr,
                        std::uint64_t shared_lines =
                            AddressSpace::kSharedLines)
        : rng_(rng), tRateOn_(Rng::chanceThreshold(profile.accessRateOn)),
          tRateOff_(Rng::chanceThreshold(profile.accessRateOff)),
          phase_(phase), tOnToOff_(Rng::chanceThreshold(profile.pOnToOff)),
          tOffToOn_(Rng::chanceThreshold(profile.pOffToOn)),
          privateBase_(AddressSpace::privateBase(global_core_id)),
          sharedBase_(AddressSpace::sharedBase(profile.coreType)),
          sharedLines_(shared_lines), profile_(profile)
    {
        on_ = rng_.chance(profile_.onFraction());
    }

    /**
     * The per-cycle issue draw: burst-phase transition (private mode)
     * plus the Bernoulli issue decision.  Callers that batch several
     * generators call draw() for each first and generate() afterwards —
     * the RNG streams are per-generator, so interleaving draws across
     * generators leaves every stream identical while letting the
     * otherwise-serial xoshiro dependency chains overlap.
     */
    bool
    draw()
    {
        bool on;
        if (phase_) {
            on = phase_->on();
        } else {
            // Private burst-phase transition, then the issue draw.
            if (on_) {
                if (rng_.chanceT(tOnToOff_))
                    on_ = false;
            } else {
                if (rng_.chanceT(tOffToOn_))
                    on_ = true;
            }
            on = on_;
        }
        return rng_.chanceT(on ? tRateOn_ : tRateOff_);
    }

    /** Produce the access for a cycle whose draw() returned true. */
    MemAccess generate() { return generateAccess(); }

    /**
     * Advance one network cycle.
     * @return an access if the core issued one this cycle.
     */
    std::optional<MemAccess>
    tick()
    {
        if (!draw())
            return std::nullopt;
        return generateAccess();
    }

    bool inBurst() const { return phase_ ? phase_->on() : on_; }
    const BenchmarkProfile &profile() const { return profile_; }

  private:
    MemAccess
    generateAccess()
    {
        MemAccess acc;
        acc.instr = rng_.chance(profile_.instrFraction);
        acc.write = !acc.instr && rng_.chance(profile_.writeFraction);

        if (!acc.instr && rng_.chance(profile_.sharedFraction)) {
            // Shared-region access: uniform over the per-type region.
            acc.lineAddr = sharedBase_ + rng_.below(sharedLines_);
            return acc;
        }

        const std::uint64_t ws = profile_.workingSetLines;
        if (rng_.chance(profile_.streamFraction)) {
            // Streaming: word-granular walk — several consecutive
            // accesses land in the same 64 B line before advancing, so
            // the L1 filters streams the way real caches do.
            if (++streamWordCnt_ >= kWordsPerLine) {
                streamWordCnt_ = 0;
                streamPtr_ = (streamPtr_ + 1) % ws;
            }
            acc.lineAddr = privateBase_ + streamPtr_;
        } else {
            // Reuse: uniform-random within the working set.
            acc.lineAddr = privateBase_ + rng_.below(ws);
        }
        // Instruction fetches use a dedicated slice of the private region
        // so L1I and L1D don't thrash each other.
        if (acc.instr)
            acc.lineAddr |= (1ULL << 28);
        return acc;
    }

    /** Word accesses per cache line on a streaming walk. */
    static constexpr int kWordsPerLine = 8;

    // Member order is the hot-path cache layout: with 96 generators
    // walked every network cycle, the common no-access tick must touch
    // one line per generator.  The RNG state, the rate thresholds (the
    // chanceThreshold() images of the per-cycle draw probabilities —
    // the integer fast path consumes the identical RNG stream), the
    // phase pointer and the burst flag together fit the first 64-byte
    // line of the alignas(64) object; everything generateAccess() needs
    // (the rare path) follows.
    Rng rng_;
    std::uint64_t tRateOn_;
    std::uint64_t tRateOff_;
    const GlobalPhase *phase_;
    bool on_ = false;
    std::uint64_t tOnToOff_;
    std::uint64_t tOffToOn_;
    std::uint64_t privateBase_;
    std::uint64_t sharedBase_;
    std::uint64_t sharedLines_;
    std::uint64_t streamPtr_ = 0;
    int streamWordCnt_ = 0;
    BenchmarkProfile profile_;
};

} // namespace traffic
} // namespace pearl

#endif // PEARL_TRAFFIC_GENERATOR_HPP
