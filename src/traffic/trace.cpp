#include "traffic/trace.hpp"

#include <sstream>
#include <string>

#include "common/log.hpp"

namespace pearl {
namespace traffic {

namespace {

constexpr const char *kMagic = "pearl-trace-v1";

} // namespace

void
TraceWriter::writeRecord(std::ostream &os, const TraceRecord &rec)
{
    const sim::Packet &p = rec.pkt;
    os << rec.cycle << " " << p.id << " "
       << static_cast<int>(p.msgClass) << " " << static_cast<int>(p.op)
       << " " << static_cast<int>(p.dstUnit) << " " << p.src << " "
       << p.dst << " " << p.sizeBits << " " << p.addr << "\n";
}

void
TraceWriter::write(std::ostream &os, const Trace &trace)
{
    os << kMagic << " " << trace.records.size() << "\n";
    for (const auto &rec : trace.records)
        writeRecord(os, rec);
}

bool
TraceReader::read(std::istream &is, Trace &trace)
{
    std::string magic;
    std::size_t count = 0;
    if (!(is >> magic >> count) || magic != kMagic)
        return false;

    trace.records.clear();
    trace.records.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        TraceRecord rec;
        int msg_class = 0, op = 0, dst_unit = 0;
        if (!(is >> rec.cycle >> rec.pkt.id >> msg_class >> op >>
              dst_unit >> rec.pkt.src >> rec.pkt.dst >>
              rec.pkt.sizeBits >> rec.pkt.addr)) {
            return false;
        }
        if (msg_class < 0 || msg_class >= sim::kNumMsgClasses ||
            rec.pkt.sizeBits <= 0) {
            return false;
        }
        rec.pkt.msgClass = static_cast<sim::MsgClass>(msg_class);
        rec.pkt.op = static_cast<sim::CoherenceOp>(op);
        rec.pkt.dstUnit = static_cast<sim::NodeUnit>(dst_unit);
        rec.pkt.cycleCreated = rec.cycle;
        trace.records.push_back(rec);
        if (i > 0 &&
            rec.cycle < trace.records[i - 1].cycle) {
            warn("trace out of cycle order at record ", i);
        }
    }
    return true;
}

TraceReplayDriver::TraceReplayDriver(sim::Network &network, Trace trace)
    : network_(network), trace_(std::move(trace)),
      backlog_(static_cast<std::size_t>(network.numNodes()))
{
    baseCycle_ = trace_.empty() ? 0 : trace_.records.front().cycle;
}

void
TraceReplayDriver::step()
{
    // 1. Move newly-due records into their source's backlog so per-source
    //    FIFO order is preserved under backpressure.
    while (nextRecord_ < trace_.records.size() &&
           trace_.records[nextRecord_].cycle - baseCycle_ <=
               localCycle_) {
        const TraceRecord &rec = trace_.records[nextRecord_];
        sim::Packet pkt = rec.pkt;
        pkt.cycleCreated = localCycle_;
        PEARL_ASSERT(pkt.src >= 0 &&
                     pkt.src < static_cast<int>(backlog_.size()),
                     "trace source outside the network");
        backlog_[static_cast<std::size_t>(pkt.src)].push_back(pkt);
        ++nextRecord_;
    }

    // 2. Offer backlogged packets in order; stop per source on rejection.
    for (auto &queue : backlog_) {
        while (!queue.empty() && network_.inject(queue.front()))
            queue.pop_front();
    }

    // 3. One network cycle; drain deliveries.
    network_.step();
    delivered_ += network_.delivered().size();
    network_.delivered().clear();
    ++localCycle_;
}

std::size_t
TraceReplayDriver::pendingCount() const
{
    std::size_t pending = trace_.records.size() - nextRecord_;
    for (const auto &queue : backlog_)
        pending += queue.size();
    return pending;
}

bool
TraceReplayDriver::runToCompletion(sim::Cycle max_cycles)
{
    for (sim::Cycle i = 0; i < max_cycles; ++i) {
        step();
        if (pendingCount() == 0 && network_.idle())
            return true;
    }
    return false;
}

} // namespace traffic
} // namespace pearl
