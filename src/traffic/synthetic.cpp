#include "traffic/synthetic.hpp"

#include "common/log.hpp"

namespace pearl {
namespace traffic {

const char *
toString(Pattern p)
{
    switch (p) {
      case Pattern::UniformRandom: return "uniform-random";
      case Pattern::Transpose: return "transpose";
      case Pattern::BitComplement: return "bit-complement";
      case Pattern::Hotspot: return "hotspot";
      case Pattern::Neighbor: return "neighbor";
      default: return "<invalid>";
    }
}

SyntheticInjector::SyntheticInjector(const SyntheticConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed),
      backlog_(static_cast<std::size_t>(cfg.numSources)),
      credit_(static_cast<std::size_t>(cfg.numSources), 0.0)
{
    PEARL_ASSERT(cfg_.numSources > 1);
    PEARL_ASSERT(cfg_.numNodes >= cfg_.numSources);
    PEARL_ASSERT(cfg_.flitsPerSourcePerCycle >= 0.0);
}

int
SyntheticInjector::destination(int src, Rng &rng) const
{
    switch (cfg_.pattern) {
      case Pattern::UniformRandom: {
        int dst = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(cfg_.numSources - 1)));
        if (dst >= src)
            ++dst;
        return dst;
      }
      case Pattern::Transpose: {
        // 4x4 grid transpose; fixed points route to their complement so
        // they still load the network.
        const int x = src % 4, y = src / 4;
        const int dst = x * 4 + y;
        return dst == src ? (~src & 0xF) : dst;
      }
      case Pattern::BitComplement:
        return (~src) & (cfg_.numSources - 1);
      case Pattern::Hotspot:
        return cfg_.hotspotNode;
      case Pattern::Neighbor:
        return (src + 1) % cfg_.numSources;
      default:
        panic("invalid pattern");
    }
}

void
SyntheticInjector::step(sim::Network &network)
{
    const sim::Cycle now = network.cycle();
    for (int src = 0; src < cfg_.numSources; ++src) {
        // Fractional flit budget; a packet is generated when the budget
        // covers its flits.
        auto &credit = credit_[static_cast<std::size_t>(src)];
        credit += cfg_.flitsPerSourcePerCycle;

        auto &queue = backlog_[static_cast<std::size_t>(src)];
        while (true) {
            const bool data = rng_.chance(cfg_.dataFraction);
            const int flits = data ? 5 : 1;
            if (credit < flits)
                break;
            credit -= flits;

            sim::Packet pkt;
            pkt.id = ++nextId_;
            pkt.msgClass = data ? sim::MsgClass::RespGpuL2Down
                                : sim::MsgClass::ReqCpuL2Down;
            pkt.op = data ? sim::CoherenceOp::Data
                          : sim::CoherenceOp::Read;
            pkt.src = src;
            pkt.dst = destination(src, rng_);
            pkt.sizeBits = data ? sim::kResponseBits : sim::kRequestBits;
            pkt.cycleCreated = now;
            ++generated_;
            queue.push_back(pkt);
        }

        while (!queue.empty() && network.inject(queue.front()))
            queue.pop_front();
    }

    network.step();
    network.delivered().clear();
}

std::size_t
SyntheticInjector::backlogSize() const
{
    std::size_t total = 0;
    for (const auto &queue : backlog_)
        total += queue.size();
    return total;
}

} // namespace traffic
} // namespace pearl
