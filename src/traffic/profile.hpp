/**
 * @file
 * Synthetic benchmark profiles.
 *
 * The paper drives its network with traces captured from Multi2Sim running
 * PARSEC/SPLASH2 (CPU) and OpenCL SDK (GPU) benchmarks.  Those traces are
 * not available, so each benchmark is modelled as a *profile*: a small set
 * of statistical parameters that reproduce the properties the network and
 * the ML predictor actually react to — injection rate, burstiness
 * (Markov-modulated on/off, the paper's "bursty nature of GPU traffic"),
 * working-set size (which sets cache hit rates), read/write and
 * instruction mixes, and the degree of data sharing (which drives
 * coherence traffic).  See DESIGN.md for the substitution rationale.
 */

#ifndef PEARL_TRAFFIC_PROFILE_HPP
#define PEARL_TRAFFIC_PROFILE_HPP

#include <string>

#include "sim/packet.hpp"

namespace pearl {
namespace traffic {

/** Statistical description of one benchmark's per-core memory demand. */
struct BenchmarkProfile
{
    std::string name;          //!< full benchmark name (Table IV)
    std::string abbrev;        //!< short label used in figures
    sim::CoreType coreType = sim::CoreType::CPU;

    /**
     * Probability that a core issues a memory access in a network cycle
     * while in the ON phase of the burst process.  CPU cores run at twice
     * the network clock, so values may exceed what a 1-IPC core could do
     * at the network clock.
     */
    double accessRateOn = 0.1;

    /** Access probability in the OFF (quiet) phase. */
    double accessRateOff = 0.01;

    /** Markov burst process: P(ON -> OFF) per cycle. */
    double pOnToOff = 0.01;

    /** Markov burst process: P(OFF -> ON) per cycle. */
    double pOffToOn = 0.01;

    /** Working-set size in cache lines (sets the miss rates). */
    std::uint64_t workingSetLines = 4096;

    /** Fraction of accesses that are instruction fetches (CPU only). */
    double instrFraction = 0.25;

    /** Fraction of data accesses that are writes. */
    double writeFraction = 0.3;

    /**
     * Fraction of accesses that touch the globally shared region (drives
     * cross-cluster coherence: probes, ownership transfers).
     */
    double sharedFraction = 0.1;

    /**
     * Fraction of accesses that are sequential (streaming) rather than
     * uniform-random within the working set.
     */
    double streamFraction = 0.5;

    /** Expected burstiness: long-run fraction of time in ON phase. */
    double
    onFraction() const
    {
        const double denom = pOnToOff + pOffToOn;
        return denom > 0.0 ? pOffToOn / denom : 1.0;
    }

    /** Long-run mean access probability per network cycle. */
    double
    meanAccessRate() const
    {
        const double f = onFraction();
        return f * accessRateOn + (1.0 - f) * accessRateOff;
    }
};

} // namespace traffic
} // namespace pearl

#endif // PEARL_TRAFFIC_PROFILE_HPP
