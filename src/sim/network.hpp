/**
 * @file
 * Abstract network interface.
 *
 * Both the photonic PEARL crossbar and the electrical CMESH baseline
 * implement this interface so that the workload drivers, metrics and the
 * ML data-collection pipeline are network-agnostic.
 */

#ifndef PEARL_SIM_NETWORK_HPP
#define PEARL_SIM_NETWORK_HPP

#include <iosfwd>
#include <vector>

#include "sim/packet.hpp"
#include "sim/stats.hpp"

namespace pearl {
namespace sim {

/** A cycle-driven network-on-chip model. */
class Network
{
  public:
    virtual ~Network() = default;

    /**
     * Offer a packet for injection at its source router.
     * @return true if accepted into an input buffer; false if the buffer
     *         is full (the producer must retry a later cycle).
     */
    virtual bool inject(const Packet &pkt) = 0;

    /** True if the source router can currently accept the packet. */
    virtual bool canInject(const Packet &pkt) const = 0;

    /** Advance the model by one network cycle. */
    virtual void step() = 0;

    /**
     * Packets whose final flit arrived at their destination since the last
     * drain.  The caller takes ownership of the contents.
     */
    virtual std::vector<Packet> &delivered() = 0;

    /** Current cycle count. */
    virtual Cycle cycle() const = 0;

    /** Number of endpoints (routers with attached cores/caches). */
    virtual int numNodes() const = 0;

    /** Aggregate delivery/latency statistics. */
    virtual const NetworkStats &stats() const = 0;

    /** True when no packet is buffered or in flight anywhere. */
    virtual bool idle() const = 0;

    /**
     * Write a human-readable queue/health snapshot to `os` — used by
     * the system watchdog when it detects livelock.  Default: nothing.
     */
    virtual void
    describeState(std::ostream &os) const
    {
        (void)os;
    }

    /**
     * Idle fast-forward: advance up to `max_cycles` cycles in one call,
     * provided every skipped cycle is a provable no-op apart from the
     * clock and time-integrated accounting (energy, residency, window
     * counters).  Implementations must stop short of any cycle with a
     * side effect (a reservation-window boundary, a fault or thermal
     * event) so the caller can execute it through step().
     *
     * @return the number of cycles advanced; 0 means this cycle cannot
     *         be skipped (or the model does not support fast-forward —
     *         the default).
     */
    virtual Cycle
    advanceIdle(Cycle max_cycles)
    {
        (void)max_cycles;
        return 0;
    }
};

} // namespace sim
} // namespace pearl

#endif // PEARL_SIM_NETWORK_HPP
