/**
 * @file
 * Fixed-capacity power-of-two ring buffer.
 *
 * The simulator's hot loops (router flit buffers, MWSR VOQs) are bounded
 * FIFOs whose capacity is known at construction.  std::deque pays for
 * unbounded growth with chunked heap storage and per-push allocation
 * checks; RingQueue allocates its slots exactly once and turns every
 * queue operation into an index mask and an assignment.
 *
 * The capacity is rounded up to the next power of two so the head index
 * wraps with a bitwise AND instead of a modulo.  Overflow is a logic
 * error (callers gate on full()/size() first — FlitBuffer by flit
 * accounting, the VOQs by depth), enforced by PEARL_ASSERT.
 */

#ifndef PEARL_SIM_RING_QUEUE_HPP
#define PEARL_SIM_RING_QUEUE_HPP

#include <cstddef>
#include <utility>
#include <vector>

#include "common/log.hpp"

namespace pearl {
namespace sim {

/** Bounded FIFO over a single allocation; deque-compatible API subset. */
template <typename T>
class RingQueue
{
  public:
    /** @param min_capacity elements the queue must be able to hold;
     *  rounded up to the next power of two. */
    explicit RingQueue(std::size_t min_capacity)
        : mask_(roundUpPow2(min_capacity) - 1), storage_(mask_ + 1)
    {
        PEARL_ASSERT(min_capacity > 0);
    }

    std::size_t capacity() const { return mask_ + 1; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == capacity(); }

    /** Append; the caller must have checked full() (asserted). */
    void
    push_back(T value)
    {
        PEARL_ASSERT(!full());
        storage_[(head_ + size_) & mask_] = std::move(value);
        ++size_;
    }

    T &
    front()
    {
        PEARL_ASSERT(!empty());
        return storage_[head_];
    }

    const T &
    front() const
    {
        PEARL_ASSERT(!empty());
        return storage_[head_];
    }

    T &
    back()
    {
        PEARL_ASSERT(!empty());
        return storage_[(head_ + size_ - 1) & mask_];
    }

    const T &
    back() const
    {
        PEARL_ASSERT(!empty());
        return storage_[(head_ + size_ - 1) & mask_];
    }

    void
    pop_front()
    {
        PEARL_ASSERT(!empty());
        head_ = (head_ + 1) & mask_;
        --size_;
    }

    /** Drop everything; slots keep their storage (no reallocation). */
    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    static std::size_t
    roundUpPow2(std::size_t n)
    {
        std::size_t p = 1;
        while (p < n)
            p <<= 1;
        return p;
    }

    std::size_t mask_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::vector<T> storage_;
};

} // namespace sim
} // namespace pearl

#endif // PEARL_SIM_RING_QUEUE_HPP
