/**
 * @file
 * Packet and message-class definitions shared by every network model.
 *
 * The message classes mirror Table III of the PEARL paper (features 14-29):
 * each coherence message is labelled request/response, with the core type
 * and the cache level it is associated with.  "L2 up" means the packet is
 * travelling up towards an L1; "L2 down" means it is travelling down
 * towards the L3.
 */

#ifndef PEARL_SIM_PACKET_HPP
#define PEARL_SIM_PACKET_HPP

#include <cstdint>
#include <string>

#include "common/log.hpp"

namespace pearl {
namespace sim {

/** Identifier of a network endpoint (router). */
using NodeId = int;

/** Simulation time in network cycles. */
using Cycle = std::uint64_t;

/** Heterogeneous core types sharing the network. */
enum class CoreType : std::uint8_t { CPU = 0, GPU = 1 };

/** Number of distinct core types (array sizing). */
constexpr int kNumCoreTypes = 2;

inline const char *
toString(CoreType t)
{
    return t == CoreType::CPU ? "CPU" : "GPU";
}

/**
 * Coherence-message classes per Table III.  The first eight are requests,
 * the second eight the matching responses; ordering is load-bearing for
 * the ML feature extractor, which maps these directly onto features 14-29.
 */
enum class MsgClass : std::uint8_t
{
    ReqCpuL1I = 0,   //!< CPU L1 instruction fetch miss -> L2
    ReqCpuL1D,       //!< CPU L1 data miss -> L2
    ReqCpuL2Up,      //!< CPU L2 -> L1 (invalidate/probe going up)
    ReqCpuL2Down,    //!< CPU L2 miss -> L3 (crosses the network)
    ReqGpuL1,        //!< GPU L1 miss -> L2
    ReqGpuL2Up,      //!< GPU L2 -> L1 probe
    ReqGpuL2Down,    //!< GPU L2 miss -> L3 (crosses the network)
    ReqL3,           //!< L3 miss -> memory controller
    RespCpuL1I,      //!< L2 -> CPU L1I fill
    RespCpuL1D,      //!< L2 -> CPU L1D fill
    RespCpuL2Up,     //!< L1 -> L2 ack/writeback for an up probe
    RespCpuL2Down,   //!< L3 -> CPU L2 fill (crosses the network)
    RespGpuL1,       //!< L2 -> GPU L1 fill
    RespGpuL2Up,     //!< L1 -> L2 ack for an up probe
    RespGpuL2Down,   //!< L3 -> GPU L2 fill (crosses the network)
    RespL3,          //!< memory -> L3 fill
    NumClasses
};

constexpr int kNumMsgClasses = static_cast<int>(MsgClass::NumClasses);

/** True for the eight request classes. */
inline bool
isRequest(MsgClass c)
{
    return static_cast<int>(c) < 8;
}

/** True for the eight response classes. */
inline bool
isResponse(MsgClass c)
{
    return !isRequest(c);
}

/** Core type whose traffic a message class belongs to (L3 counts as CPU
 *  or GPU depending on the original requester; bare L3/memory classes are
 *  attributed to CPU by convention and carry no DBA weight). */
inline CoreType
coreTypeOf(MsgClass c)
{
    switch (c) {
      case MsgClass::ReqCpuL1I:
      case MsgClass::ReqCpuL1D:
      case MsgClass::ReqCpuL2Up:
      case MsgClass::ReqCpuL2Down:
      case MsgClass::RespCpuL1I:
      case MsgClass::RespCpuL1D:
      case MsgClass::RespCpuL2Up:
      case MsgClass::RespCpuL2Down:
      case MsgClass::ReqL3:
      case MsgClass::RespL3:
        return CoreType::CPU;
      default:
        return CoreType::GPU;
    }
}

/** Human-readable class name (used in tables and feature dumps). */
inline const char *
toString(MsgClass c)
{
    switch (c) {
      case MsgClass::ReqCpuL1I: return "Request CPU L1 instruction";
      case MsgClass::ReqCpuL1D: return "Request CPU L1 data";
      case MsgClass::ReqCpuL2Up: return "Request CPU L2 up";
      case MsgClass::ReqCpuL2Down: return "Request CPU L2 down";
      case MsgClass::ReqGpuL1: return "Request GPU L1";
      case MsgClass::ReqGpuL2Up: return "Request GPU L2 up";
      case MsgClass::ReqGpuL2Down: return "Request GPU L2 down";
      case MsgClass::ReqL3: return "Request L3";
      case MsgClass::RespCpuL1I: return "Response CPU L1 instruction";
      case MsgClass::RespCpuL1D: return "Response CPU L1 data";
      case MsgClass::RespCpuL2Up: return "Response CPU L2 up";
      case MsgClass::RespCpuL2Down: return "Response CPU L2 down";
      case MsgClass::RespGpuL1: return "Response GPU L1";
      case MsgClass::RespGpuL2Up: return "Response GPU L2 up";
      case MsgClass::RespGpuL2Down: return "Response GPU L2 down";
      case MsgClass::RespL3: return "Response L3";
      default: return "<invalid>";
    }
}

/** Flit size in bits — one buffer slot holds one flit (Section IV). */
constexpr int kFlitBits = 128;

/** Control/request packet: a single 128-bit flit. */
constexpr int kRequestBits = kFlitBits;

/** Data/response packet: 128-bit header + 512-bit cache line = 5 flits. */
constexpr int kResponseBits = kFlitBits + 512;

/** Number of flits needed to carry `bits` of payload. */
inline int
flitsFor(int bits)
{
    return (bits + kFlitBits - 1) / kFlitBits;
}

/**
 * Coherence operation a packet carries.  The MsgClass gives the Table III
 * accounting label; the op tells the receiving cache model what to do.
 */
enum class CoherenceOp : std::uint8_t
{
    Read = 0,    //!< read request (load miss)
    ReadExcl,    //!< read-for-ownership (store miss / upgrade)
    Writeback,   //!< dirty eviction carrying data
    ProbeShare,  //!< directory asks owner to demote and supply data
    ProbeInv,    //!< directory asks holder to invalidate
    Data,        //!< data response, shared grant
    DataExcl,    //!< data response, exclusive grant
    Ack          //!< dataless acknowledgement (probe ack, inv ack)
};

inline const char *
toString(CoherenceOp op)
{
    switch (op) {
      case CoherenceOp::Read: return "Read";
      case CoherenceOp::ReadExcl: return "ReadExcl";
      case CoherenceOp::Writeback: return "Writeback";
      case CoherenceOp::ProbeShare: return "ProbeShare";
      case CoherenceOp::ProbeInv: return "ProbeInv";
      case CoherenceOp::Data: return "Data";
      case CoherenceOp::DataExcl: return "DataExcl";
      case CoherenceOp::Ack: return "Ack";
      default: return "<invalid>";
    }
}

/** True when the op carries a full cache line (sized kResponseBits). */
inline bool
carriesData(CoherenceOp op)
{
    return op == CoherenceOp::Writeback || op == CoherenceOp::Data ||
           op == CoherenceOp::DataExcl;
}

/**
 * Which functional unit at the destination node consumes the packet.  A
 * cluster router hosts both the cluster's L2s and an L3 bank slice; the
 * MC node hosts the memory controllers.
 */
enum class NodeUnit : std::uint8_t
{
    Cluster = 0, //!< the cluster's cache hierarchy (fills, probes)
    L3Bank,      //!< the L3 bank + directory slice at the router
    Memory       //!< the memory-controller node
};

/**
 * A network packet.  Packets are value types; the network models move them
 * by value through buffers and record timing in the cycle fields — so the
 * struct layout is hot-path-critical.  Fields are ordered 8-byte members
 * first, then 4-, 2- and 1-byte members, eliminating interior padding;
 * the static_assert below keeps the size from regressing.
 */
struct Packet
{
    std::uint64_t id = 0;          //!< unique per run
    std::uint64_t addr = 0;        //!< cache-line address (coherence)
    std::uint64_t reqId = 0;       //!< id of the request this responds to

    /** Per-source-router sequence number, stamped at first transmission
     *  onto the waveguide; identifies the packet across retransmission
     *  attempts. */
    std::uint64_t seq = 0;
    Cycle cycleCreated = 0;        //!< when the producing model created it
    Cycle cycleInjected = 0;       //!< when it entered a router buffer
    Cycle cycleDelivered = 0;      //!< when the last flit reached dst
    NodeId src = 0;                //!< source router
    NodeId dst = 0;                //!< destination router
    std::int16_t sizeBits = kRequestBits;  //!< payload size (<= 640)
    /** Transmission attempt, 0 for the first; bounds the exponential
     *  retransmit backoff. */
    std::uint16_t attempt = 0;
    MsgClass msgClass = MsgClass::ReqCpuL1D;
    CoherenceOp op = CoherenceOp::Read;
    NodeUnit dstUnit = NodeUnit::Cluster;

    int numFlits() const { return flitsFor(sizeBits); }
    CoreType coreType() const { return coreTypeOf(msgClass); }
    bool request() const { return isRequest(msgClass); }

    /** End-to-end latency in cycles; only valid after delivery. */
    Cycle
    latency() const
    {
        PEARL_ASSERT(cycleDelivered >= cycleCreated);
        return cycleDelivered - cycleCreated;
    }
};

/** kResponseBits (640) must fit the narrow payload field. */
static_assert(kResponseBits <= INT16_MAX,
              "sizeBits field too narrow for the largest packet");

/** Layout guard: 7x8-byte + 2x4-byte + 2x2-byte + 3x1-byte = 71 bytes of
 *  payload, padded to one 8-byte boundary.  Any growth past 72 bytes is a
 *  copy-cost regression on the hot path and must be deliberate. */
static_assert(sizeof(Packet) == 72 && alignof(Packet) == 8,
              "Packet layout regressed; re-pack the fields");

} // namespace sim
} // namespace pearl

#endif // PEARL_SIM_PACKET_HPP
