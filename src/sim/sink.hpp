/**
 * @file
 * Packet sink: how cache models hand packets to the interconnect.
 *
 * Cluster and L3 models emit network-bound packets through this interface;
 * the system driver queues them in per-node outboxes and injects them into
 * whichever Network implementation is under test.
 */

#ifndef PEARL_SIM_SINK_HPP
#define PEARL_SIM_SINK_HPP

#include "sim/packet.hpp"

namespace pearl {
namespace sim {

/** Consumer of network-bound packets produced by node models. */
class PacketSink
{
  public:
    virtual ~PacketSink() = default;

    /** Queue `pkt` for injection at `pkt.src`. */
    virtual void send(Packet &&pkt) = 0;
};

} // namespace sim
} // namespace pearl

#endif // PEARL_SIM_SINK_HPP
