/**
 * @file
 * Per-router, per-reservation-window telemetry.
 *
 * These counters are exactly the information the paper says is already
 * present at each router (Section III-D2): input-buffer occupancies, link
 * utilization, packet counts by direction and by Table III class, and the
 * current wavelength state.  The ML feature extractor turns one
 * RouterTelemetry snapshot into one 30-feature vector; the label for the
 * *previous* window is this window's `packetsInjected`.
 */

#ifndef PEARL_SIM_TELEMETRY_HPP
#define PEARL_SIM_TELEMETRY_HPP

#include <array>
#include <cstdint>
#include <string>

#include "obs/registry.hpp"
#include "sim/packet.hpp"

namespace pearl {
namespace sim {

/** Counters a router accumulates over one reservation window. */
struct RouterTelemetry
{
    // Occupancy integrals: sum over the window's cycles of the occupancy
    // fraction in [0,1]; divide by window length for the mean.
    double cpuCoreBufOccupancy = 0.0;    //!< feature 2
    double otherRouterCpuBufOccupancy = 0.0; //!< feature 3
    double gpuCoreBufOccupancy = 0.0;    //!< feature 4
    double otherRouterGpuBufOccupancy = 0.0; //!< feature 5

    std::uint64_t linkBusyCycles = 0;    //!< feature 6 (outgoing link)
    std::uint64_t packetsToCore = 0;     //!< feature 7 (ejected locally)
    std::uint64_t incomingFromRouters = 0; //!< feature 8
    std::uint64_t incomingFromCores = 0; //!< feature 9

    std::uint64_t requestsSent = 0;      //!< feature 10
    std::uint64_t requestsReceived = 0;  //!< feature 11
    std::uint64_t responsesSent = 0;     //!< feature 12
    std::uint64_t responsesReceived = 0; //!< feature 13

    /** Features 14-29: per-MsgClass packets moving through the router. */
    std::array<std::uint64_t, kNumMsgClasses> classCounts = {};

    int wavelengths = 64;                //!< feature 30 (state this window)

    /** Packets injected into this router during the window (the label). */
    std::uint64_t packetsInjected = 0;

    // Degradation counters (fault plane / thermal).  Not part of the 30
    // Table III features, but available so feature extractors and
    // policies can observe link health per window.
    std::uint64_t retransmitsQueued = 0;  //!< re-entered this source's queue
    std::uint64_t corruptedArrivals = 0;  //!< failed the BER draw here
    std::uint64_t packetsDropped = 0;     //!< retry budget exhausted here
    std::uint64_t outOfLockCycles = 0;    //!< ring bank out of thermal lock

    // Guard-layer accounting (ml::GuardedPolicy): fallback transitions
    // and windows decided by the fallback policy at this router.  Like
    // every window counter these reset at each boundary; run totals
    // accumulate in NetworkStats.
    std::uint64_t policyFallbackEntries = 0; //!< guard tripped here
    std::uint64_t policyFallbackExits = 0;   //!< guard recovered here
    std::uint64_t policyFallbackWindows = 0; //!< windows under fallback

    // Per-cycle DBA allocation shares accumulated over the window, for
    // the observability plane (mean split = sum / dbaCycles).  Not part
    // of the 30 Table III features, so the ML pipeline is unaffected.
    double dbaCpuShareSum = 0.0;
    double dbaGpuShareSum = 0.0;
    std::uint64_t dbaCycles = 0;

    /** Count a packet passing through, by its Table III class. */
    void
    noteClass(MsgClass c)
    {
        ++classCounts[static_cast<int>(c)];
    }

    void
    reset()
    {
        *this = RouterTelemetry{};
    }

    /** Publish this window's counters into the observability registry
     *  under `prefix` (e.g. "router3"). */
    void
    publishTo(obs::MetricsRegistry &reg, const std::string &prefix) const
    {
        reg.counter(prefix + ".packets_injected") += packetsInjected;
        reg.counter(prefix + ".packets_to_core") += packetsToCore;
        reg.counter(prefix + ".incoming_from_routers") +=
            incomingFromRouters;
        reg.counter(prefix + ".incoming_from_cores") += incomingFromCores;
        reg.counter(prefix + ".link_busy_cycles") += linkBusyCycles;
        reg.counter(prefix + ".retransmits_queued") += retransmitsQueued;
        reg.counter(prefix + ".corrupted_arrivals") += corruptedArrivals;
        reg.counter(prefix + ".packets_dropped") += packetsDropped;
        reg.counter(prefix + ".out_of_lock_cycles") += outOfLockCycles;
        reg.counter(prefix + ".policy_fallback_entries") +=
            policyFallbackEntries;
        reg.counter(prefix + ".policy_fallback_exits") +=
            policyFallbackExits;
        reg.counter(prefix + ".policy_fallback_windows") +=
            policyFallbackWindows;
        reg.gauge(prefix + ".wavelengths") =
            static_cast<double>(wavelengths);
        const double cycles =
            dbaCycles ? static_cast<double>(dbaCycles) : 1.0;
        reg.gauge(prefix + ".dba_cpu_share_mean") =
            dbaCpuShareSum / cycles;
        reg.gauge(prefix + ".dba_gpu_share_mean") =
            dbaGpuShareSum / cycles;
    }
};

} // namespace sim
} // namespace pearl

#endif // PEARL_SIM_TELEMETRY_HPP
