/**
 * @file
 * Persistent worker pool for deterministic intra-run parallelism.
 *
 * PearlNetwork::step() and HeteroSystem::stepOnce() shard their
 * per-router / per-node loops across a fixed set of worker threads and
 * then fold the per-shard scratch back into shared state in a fixed
 * serial order, so the simulation result is bit-identical at any thread
 * count.  The pool exists to make the parallel regions cheap: threads
 * are spawned once per run (not per cycle) and parked on a condition
 * variable between regions.  SweepRunner can later share the same pool
 * for job-level parallelism.
 *
 * parallelFor(n, fn) runs fn(0..n-1) across the workers plus the
 * calling thread, each index exactly once, and returns only after every
 * index has completed (a full barrier).  Index claiming is a mutex-
 * protected counter — shards are few (≤ a handful per lane) and each
 * does thousands of cycles' worth of router work, so claim overhead is
 * noise, and plain mutex/condvar synchronisation keeps the pool
 * trivially ThreadSanitizer-clean.  The first exception thrown by any
 * task is captured and rethrown on the calling thread after the
 * barrier.
 *
 * Thread count is resolved by resolveStepThreads(): an explicit
 * request (RunOptions::stepThreads, DiffCase::stepThreads) wins, else
 * the PEARL_STEP_THREADS environment knob, else 1 — and 1 means the
 * callers never construct a pool at all, leaving the serial code path
 * byte-identical to the pre-parallelism tree.
 */

#ifndef PEARL_SIM_WORKER_POOL_HPP
#define PEARL_SIM_WORKER_POOL_HPP

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/log.hpp"

namespace pearl {
namespace sim {

/** Hard ceiling on worker lanes; far above any real host, it only
 *  bounds damage from a mistyped PEARL_STEP_THREADS. */
constexpr unsigned kMaxStepThreads = 256;

/** Resolve the effective worker-lane count for one run: an explicit
 *  nonzero request wins (tests pin both sides of a comparison this
 *  way), else PEARL_STEP_THREADS, else 1 (serial). */
inline unsigned
resolveStepThreads(unsigned requested)
{
    std::uint64_t lanes = requested;
    if (lanes == 0)
        lanes = envU64("PEARL_STEP_THREADS", 1);
    if (lanes == 0)
        lanes = 1;
    return static_cast<unsigned>(
        std::min<std::uint64_t>(lanes, kMaxStepThreads));
}

/** Fixed-size pool of parked threads running barrier-style index
 *  ranges.  One lane is the calling thread, so lanes() == requested
 *  concurrency and a 1-lane pool spawns no threads at all. */
class WorkerPool
{
  public:
    explicit WorkerPool(unsigned lanes)
    {
        const unsigned n = std::max(1u, std::min(lanes, kMaxStepThreads));
        workers_.reserve(n - 1);
        for (unsigned i = 0; i + 1 < n; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~WorkerPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        wake_.notify_all();
        for (std::thread &t : workers_)
            t.join();
    }

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Total concurrency, including the calling thread's lane. */
    unsigned
    lanes() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    /** Run fn(0..tasks-1), each index exactly once, across all lanes;
     *  returns after every index completed.  Rethrows the first task
     *  exception on the caller.  Not reentrant: tasks must not call
     *  parallelFor on the same pool. */
    void
    parallelFor(int tasks, const std::function<void(int)> &fn)
    {
        if (tasks <= 0)
            return;
        if (workers_.empty() || tasks == 1) {
            for (int i = 0; i < tasks; ++i)
                fn(i);
            return;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            PEARL_ASSERT(fn_ == nullptr); // reentrancy guard
            fn_ = &fn;
            tasks_ = tasks;
            next_ = 0;
            done_ = 0;
            ++generation_;
        }
        wake_.notify_all();
        runTasks();
        std::unique_lock<std::mutex> lock(mutex_);
        finished_.wait(lock, [this] { return done_ == tasks_; });
        fn_ = nullptr;
        if (error_) {
            std::exception_ptr e = error_;
            error_ = nullptr;
            std::rethrow_exception(e);
        }
    }

  private:
    void
    runTasks()
    {
        for (;;) {
            int index;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (next_ >= tasks_)
                    return;
                index = next_++;
            }
            try {
                (*fn_)(index);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex_);
                if (!error_)
                    error_ = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(mutex_);
            if (++done_ == tasks_)
                finished_.notify_all();
        }
    }

    void
    workerLoop()
    {
        std::uint64_t seen = 0;
        for (;;) {
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock, [this, &seen] {
                    return stop_ || generation_ != seen;
                });
                if (stop_)
                    return;
                seen = generation_;
            }
            runTasks();
        }
    }

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable finished_;
    const std::function<void(int)> *fn_ = nullptr;
    int tasks_ = 0;
    int next_ = 0;
    int done_ = 0;
    std::uint64_t generation_ = 0;
    std::exception_ptr error_;
    bool stop_ = false;
};

} // namespace sim
} // namespace pearl

#endif // PEARL_SIM_WORKER_POOL_HPP
