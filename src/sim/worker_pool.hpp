/**
 * @file
 * Unified execution engine: one process-wide thread budget for
 * deterministic parallelism, plus the worker pool it hands out.
 *
 * PearlNetwork::step(), CmeshNetwork::step() and HeteroSystem::
 * stepOnce() shard their per-router / per-node loops across a fixed set
 * of worker threads and then fold the per-shard scratch back into
 * shared state in a fixed serial order, so the simulation result is
 * bit-identical at any thread count.  The pool exists to make the
 * parallel regions cheap: threads are spawned once per lease (not per
 * cycle) and parked on a condition variable between regions.
 *
 * parallelFor(n, fn) runs fn(0..n-1) across the workers plus the
 * calling thread, each index exactly once, and returns only after every
 * index has completed (a full barrier).  Index claiming is a mutex-
 * protected counter — shards are few (≤ a handful per lane) and each
 * does thousands of cycles' worth of router work, so claim overhead is
 * noise, and plain mutex/condvar synchronisation keeps the pool
 * trivially ThreadSanitizer-clean.  The first exception thrown by any
 * task is captured and rethrown on the calling thread after the
 * barrier.
 *
 * One budget, two tiers.  ExecutionEngine owns a cache of parked
 * WorkerPools; everything that wants lanes *leases* a pool instead of
 * constructing one, so repeated runs (and every job of a sweep) reuse
 * already-spawned threads.  The budget itself comes from
 * resolveThreadBudget(): an explicit request (RunOptions::stepThreads,
 * SweepOptions::threads, DiffCase::stepThreads) always wins, else the
 * shared PEARL_THREADS knob, else the legacy per-tier knob
 * (PEARL_STEP_THREADS / PEARL_SWEEP_THREADS, deprecated — each warns
 * once per process), else the caller's fallback.  SweepRunner splits
 * the budget hierarchically: N jobs on a budget of C get
 * W = min(C, N) job workers leasing floor(C / W) step lanes each —
 * the lease plan is derived from the submission shape alone, never
 * from timing, so results stay byte-identical to a serial sweep.
 *
 * Lane pinning (PEARL_PIN): leased pools pin their spawned workers to
 * consecutive cores via pthread_setaffinity_np where available; on
 * other platforms the knob is a documented no-op.  Pinning never
 * affects results — only cache locality.
 */

#ifndef PEARL_SIM_WORKER_POOL_HPP
#define PEARL_SIM_WORKER_POOL_HPP

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/log.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#define PEARL_HAS_THREAD_AFFINITY 1
#endif

namespace pearl {
namespace sim {

/** Hard ceiling on worker lanes; far above any real host, it only
 *  bounds damage from a mistyped PEARL_THREADS. */
constexpr unsigned kMaxStepThreads = 256;

/** Warn exactly once per process that a legacy knob was honoured. */
inline void
warnDeprecatedKnob(const char *name)
{
    static std::mutex mutex;
    static std::vector<std::string> warned;
    std::lock_guard<std::mutex> lock(mutex);
    for (const std::string &w : warned) {
        if (w == name)
            return;
    }
    warned.emplace_back(name);
    warn(name, " is deprecated; set the shared PEARL_THREADS budget "
         "instead (the legacy knob still applies while PEARL_THREADS "
         "is unset)");
}

/** The shared PEARL_THREADS budget, or 0 when unset/invalid.  Read on
 *  every call (never cached) so tests can scope it per case. */
inline unsigned
threadBudgetFromEnv()
{
    return static_cast<unsigned>(std::min<std::uint64_t>(
        envU64("PEARL_THREADS", 0), kMaxStepThreads));
}

/**
 * Single thread-count resolution precedence, shared by every tier:
 *
 *   explicit `requested` (nonzero)          — tests/benches pin counts
 *   > PEARL_THREADS                         — the shared budget
 *   > `legacy_knob` (deprecated, warns once) — PEARL_STEP_THREADS /
 *                                             PEARL_SWEEP_THREADS
 *   > `fallback`                            — tier default
 *
 * A legacy knob set to 0 counts as unset (the historical "force the
 * default" spelling); unparseable values warn and are ignored.  The
 * result is clamped to [1, kMaxStepThreads].
 */
inline unsigned
resolveThreadBudget(unsigned requested, const char *legacy_knob,
                    unsigned fallback)
{
    if (requested > 0)
        return std::min(requested, kMaxStepThreads);
    if (const unsigned shared = threadBudgetFromEnv())
        return shared;
    if (legacy_knob) {
        if (const char *v = std::getenv(legacy_knob)) {
            std::uint64_t n = 0;
            if (!parseU64(v, n)) {
                warn("ignoring unparseable ", legacy_knob, "=\"", v,
                     "\"");
            } else if (n > 0) {
                warnDeprecatedKnob(legacy_knob);
                return static_cast<unsigned>(
                    std::min<std::uint64_t>(n, kMaxStepThreads));
            }
        }
    }
    return std::min(std::max(fallback, 1u), kMaxStepThreads);
}

/** Resolve the effective worker-lane count for one run: an explicit
 *  nonzero request wins (tests pin both sides of a comparison this
 *  way), else PEARL_THREADS, else the deprecated PEARL_STEP_THREADS,
 *  else 1 — and 1 means the callers never install a pool at all,
 *  leaving the serial code path byte-identical to the
 *  pre-parallelism tree. */
inline unsigned
resolveStepThreads(unsigned requested)
{
    return resolveThreadBudget(requested, "PEARL_STEP_THREADS", 1);
}

/** Whether leased lanes should be pinned to cores (PEARL_PIN). */
inline bool
lanePinningRequested()
{
    return envBool("PEARL_PIN", false);
}

/** Fixed-size pool of parked threads running barrier-style index
 *  ranges.  One lane is the calling thread, so lanes() == requested
 *  concurrency and a 1-lane pool spawns no threads at all. */
class WorkerPool
{
  public:
    /** Spawns lanes-1 workers.  With `pin` set, worker i is pinned to
     *  core (pin_base + i) mod hardware_concurrency where the platform
     *  supports thread affinity; the calling lane is never pinned. */
    explicit WorkerPool(unsigned lanes, bool pin = false,
                        unsigned pin_base = 0)
        : pinned_(pin)
    {
        const unsigned n = std::max(1u, std::min(lanes, kMaxStepThreads));
        workers_.reserve(n - 1);
        for (unsigned i = 0; i + 1 < n; ++i) {
            workers_.emplace_back([this] { workerLoop(); });
            if (pin)
                pinWorker(workers_.back(), pin_base + i);
        }
    }

    ~WorkerPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        wake_.notify_all();
        for (std::thread &t : workers_)
            t.join();
    }

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Total concurrency, including the calling thread's lane. */
    unsigned
    lanes() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    /** Whether this pool's workers were pinned at spawn time. */
    bool pinned() const { return pinned_; }

    /** Run fn(0..tasks-1), each index exactly once, across all lanes;
     *  returns after every index completed.  Rethrows the first task
     *  exception on the caller.  Not reentrant: tasks must not call
     *  parallelFor on the same pool. */
    void
    parallelFor(int tasks, const std::function<void(int)> &fn)
    {
        if (tasks <= 0)
            return;
        if (workers_.empty() || tasks == 1) {
            for (int i = 0; i < tasks; ++i)
                fn(i);
            return;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            PEARL_ASSERT(fn_ == nullptr); // reentrancy guard
            fn_ = &fn;
            tasks_ = tasks;
            next_ = 0;
            done_ = 0;
            ++generation_;
        }
        wake_.notify_all();
        runTasks();
        std::unique_lock<std::mutex> lock(mutex_);
        finished_.wait(lock, [this] { return done_ == tasks_; });
        fn_ = nullptr;
        if (error_) {
            std::exception_ptr e = error_;
            error_ = nullptr;
            std::rethrow_exception(e);
        }
    }

  private:
    static void
    pinWorker(std::thread &t, unsigned core)
    {
#if defined(PEARL_HAS_THREAD_AFFINITY)
        const unsigned hw =
            std::max(1u, std::thread::hardware_concurrency());
        cpu_set_t set;
        CPU_ZERO(&set);
        CPU_SET((core % hw) % CPU_SETSIZE, &set);
        // Best effort: a restricted cpuset (containers) makes this
        // fail benignly, and results never depend on placement.
        (void)pthread_setaffinity_np(t.native_handle(), sizeof(set),
                                     &set);
#else
        (void)t;
        (void)core;
#endif
    }

    void
    runTasks()
    {
        for (;;) {
            int index;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (next_ >= tasks_)
                    return;
                index = next_++;
            }
            try {
                (*fn_)(index);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex_);
                if (!error_)
                    error_ = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(mutex_);
            if (++done_ == tasks_)
                finished_.notify_all();
        }
    }

    void
    workerLoop()
    {
        std::uint64_t seen = 0;
        for (;;) {
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock, [this, &seen] {
                    return stop_ || generation_ != seen;
                });
                if (stop_)
                    return;
                seen = generation_;
            }
            runTasks();
        }
    }

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable finished_;
    const std::function<void(int)> *fn_ = nullptr;
    int tasks_ = 0;
    int next_ = 0;
    int done_ = 0;
    std::uint64_t generation_ = 0;
    std::exception_ptr error_;
    bool stop_ = false;
    const bool pinned_ = false;
};

class ExecutionEngine;

/** RAII handle on a leased WorkerPool.  pool() is null for a serial
 *  (≤ 1 lane) lease; destruction parks the pool back in the engine's
 *  cache with its threads still spawned. */
class PoolLease
{
  public:
    PoolLease() = default;
    PoolLease(PoolLease &&other) noexcept : pool_(other.pool_)
    {
        other.pool_ = nullptr;
    }
    PoolLease &
    operator=(PoolLease &&other) noexcept
    {
        if (this != &other) {
            reset();
            pool_ = other.pool_;
            other.pool_ = nullptr;
        }
        return *this;
    }
    ~PoolLease() { reset(); }

    PoolLease(const PoolLease &) = delete;
    PoolLease &operator=(const PoolLease &) = delete;

    /** The leased pool; null when the lease is serial or empty. */
    WorkerPool *pool() const { return pool_; }

    void reset();

  private:
    friend class ExecutionEngine;
    explicit PoolLease(WorkerPool *pool) : pool_(pool) {}
    WorkerPool *pool_ = nullptr;
};

/**
 * Process-wide pool cache behind every lease.  Thread-safe: sweep
 * workers lease their step-lane pools concurrently.  Pools are keyed
 * by (lane count, pinned) and parked between leases, so a sweep of a
 * thousand jobs spawns each worker thread once, not once per job.
 * Lease sizing is the caller's job (resolveThreadBudget /
 * SweepRunner's lease plan); the engine never blocks a lease — an
 * oversubscribed request simply oversubscribes the OS scheduler,
 * which preserves liveness under any PEARL_THREADS value.
 */
class ExecutionEngine
{
  public:
    static ExecutionEngine &
    instance()
    {
        static ExecutionEngine engine;
        return engine;
    }

    /** The shared PEARL_THREADS budget (0 = unset → legacy knobs and
     *  tier defaults apply). */
    static unsigned
    configuredBudget()
    {
        return threadBudgetFromEnv();
    }

    /** Lease a pool with exactly `lanes` lanes; `lanes <= 1` yields a
     *  null-pool (serial) lease and spawns nothing. */
    PoolLease
    lease(unsigned lanes)
    {
        if (lanes <= 1)
            return PoolLease{};
        const bool pin = lanePinningRequested();
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < idle_.size(); ++i) {
            if (idle_[i]->lanes() == lanes &&
                idle_[i]->pinned() == pin) {
                leased_.push_back(std::move(idle_[i]));
                idle_.erase(idle_.begin() +
                            static_cast<std::ptrdiff_t>(i));
                return PoolLease{leased_.back().get()};
            }
        }
        // Fresh pool; pinned lanes take consecutive cores from a
        // rolling cursor so two concurrently leased pools land on
        // disjoint cores (modulo the host's core count).
        unsigned base = 0;
        if (pin) {
            base = pinCursor_;
            pinCursor_ = (pinCursor_ + lanes) %
                         std::max(1u, std::thread::hardware_concurrency());
        }
        leased_.push_back(
            std::make_unique<WorkerPool>(lanes, pin, base));
        return PoolLease{leased_.back().get()};
    }

  private:
    friend class PoolLease;

    /** Bounded park list: beyond this many idle pools the released one
     *  is destroyed (joining its threads) instead of cached. */
    static constexpr std::size_t kMaxIdlePools = 16;

    void
    release(WorkerPool *pool)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < leased_.size(); ++i) {
            if (leased_[i].get() != pool)
                continue;
            if (idle_.size() < kMaxIdlePools)
                idle_.push_back(std::move(leased_[i]));
            leased_.erase(leased_.begin() +
                          static_cast<std::ptrdiff_t>(i));
            return;
        }
        PEARL_ASSERT(false, "released a pool the engine never leased");
    }

    std::mutex mutex_;
    std::vector<std::unique_ptr<WorkerPool>> idle_;
    std::vector<std::unique_ptr<WorkerPool>> leased_;
    unsigned pinCursor_ = 0;
};

inline void
PoolLease::reset()
{
    if (pool_) {
        ExecutionEngine::instance().release(pool_);
        pool_ = nullptr;
    }
}

} // namespace sim
} // namespace pearl

#endif // PEARL_SIM_WORKER_POOL_HPP
