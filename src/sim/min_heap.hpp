/**
 * @file
 * Reservable min-heap with std::priority_queue pop semantics.
 *
 * std::priority_queue hides its container, so the backing vector can
 * never be pre-reserved and the first pushes of every run pay
 * reallocation.  MinHeap is the same data structure — a binary heap
 * maintained with std::push_heap/std::pop_heap over std::vector and a
 * std::greater comparator — with reserve() exposed.
 *
 * The operation sequence (push_back + push_heap on push, pop_heap +
 * pop_back on pop) matches the standard adaptor exactly, so replacing a
 * `std::priority_queue<T, std::vector<T>, std::greater<T>>` with
 * `MinHeap<T>` yields the identical element order — including the order
 * of equal-priority elements, which the simulator's event loops observe.
 * That makes the swap metrics-neutral by construction.
 */

#ifndef PEARL_SIM_MIN_HEAP_HPP
#define PEARL_SIM_MIN_HEAP_HPP

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "common/log.hpp"

namespace pearl {
namespace sim {

/** Min-heap over std::vector; T needs operator> (as the event structs
 *  used with std::greater already define). */
template <typename T>
class MinHeap
{
  public:
    void reserve(std::size_t n) { heap_.reserve(n); }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    const T &
    top() const
    {
        PEARL_ASSERT(!heap_.empty());
        return heap_.front();
    }

    void
    push(T value)
    {
        heap_.push_back(std::move(value));
        std::push_heap(heap_.begin(), heap_.end(), std::greater<T>());
    }

    void
    pop()
    {
        PEARL_ASSERT(!heap_.empty());
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<T>());
        heap_.pop_back();
    }

    /** Read-only view of the backing store in heap (not sorted) order;
     *  lets auditors scan pending events without draining the heap. */
    const std::vector<T> &items() const { return heap_; }

  private:
    std::vector<T> heap_;
};

} // namespace sim
} // namespace pearl

#endif // PEARL_SIM_MIN_HEAP_HPP
