/**
 * @file
 * Flit-slot-accounted packet buffers.
 *
 * PEARL's dynamic bandwidth allocator works on *buffer-slot occupancy*:
 * each slot holds one 128-bit flit, and a packet occupies as many slots as
 * it has flits.  FlitBuffer is a bounded FIFO with that accounting; the
 * per-router CPU/GPU buffer pools are built from it.
 */

#ifndef PEARL_SIM_BUFFER_HPP
#define PEARL_SIM_BUFFER_HPP

#include "common/log.hpp"
#include "sim/packet.hpp"
#include "sim/ring_queue.hpp"

namespace pearl {
namespace sim {

/** Bounded FIFO of packets with flit-slot occupancy accounting. */
class FlitBuffer
{
  public:
    /** @param capacity_slots total flit slots available. */
    explicit FlitBuffer(int capacity_slots)
        : capacity_(capacity_slots),
          queue_(static_cast<std::size_t>(capacity_slots))
    {
        // Every packet occupies at least one flit slot, so capacity_slots
        // also bounds the packet count and the ring can never overflow.
        PEARL_ASSERT(capacity_slots > 0);
    }

    /** Slots currently occupied (sum of queued packets' flits). */
    int occupiedSlots() const { return occupied_; }

    /** Total capacity in slots. */
    int capacitySlots() const { return capacity_; }

    /** Slots still free. */
    int freeSlots() const { return capacity_ - occupied_; }

    /** Occupancy fraction in [0, 1] — the beta of Equations 1-2. */
    double
    occupancy() const
    {
        return static_cast<double>(occupied_) / static_cast<double>(capacity_);
    }

    bool empty() const { return queue_.empty(); }
    std::size_t packetCount() const { return queue_.size(); }

    /** True if a packet of `flits` flits would fit right now. */
    bool
    canAccept(int flits) const
    {
        return flits <= freeSlots();
    }

    /**
     * Enqueue a packet.
     * @return false (and leave the buffer unchanged) when it doesn't fit.
     */
    bool
    push(const Packet &pkt)
    {
        const int flits = pkt.numFlits();
        if (!canAccept(flits))
            return false;
        queue_.push_back(pkt);
        occupied_ += flits;
        return true;
    }

    /** Peek the head packet; buffer must be non-empty. */
    const Packet &
    front() const
    {
        PEARL_ASSERT(!queue_.empty());
        return queue_.front();
    }

    Packet &
    front()
    {
        PEARL_ASSERT(!queue_.empty());
        return queue_.front();
    }

    /** Dequeue the head packet. */
    Packet
    pop()
    {
        PEARL_ASSERT(!queue_.empty());
        Packet pkt = queue_.front();
        queue_.pop_front();
        occupied_ -= pkt.numFlits();
        PEARL_ASSERT(occupied_ >= 0);
        return pkt;
    }

    /** Drop everything (used between benchmark phases). */
    void
    clear()
    {
        queue_.clear();
        occupied_ = 0;
    }

  private:
    int capacity_;
    int occupied_ = 0;
    RingQueue<Packet> queue_;
};

/**
 * Per-router pair of class-separated input buffers (CPU pool and GPU
 * pool), as required by Algorithm 1: occupancies are computed per core
 * type, and the GPU can never block CPU packets because they never share
 * a queue.
 */
class DualClassBuffer
{
  public:
    DualClassBuffer(int cpu_slots, int gpu_slots)
        : buffers_{FlitBuffer(cpu_slots), FlitBuffer(gpu_slots)}
    {}

    FlitBuffer &
    of(CoreType t)
    {
        return buffers_[static_cast<int>(t)];
    }

    const FlitBuffer &
    of(CoreType t) const
    {
        return buffers_[static_cast<int>(t)];
    }

    /** beta_ocup for one core type (Eq. 1 / Eq. 2). */
    double
    occupancy(CoreType t) const
    {
        return of(t).occupancy();
    }

    /** Buf_omega = beta_CPU + beta_GPU (Eq. 3). */
    double
    totalOccupancy() const
    {
        return occupancy(CoreType::CPU) + occupancy(CoreType::GPU);
    }

    bool
    empty() const
    {
        return of(CoreType::CPU).empty() && of(CoreType::GPU).empty();
    }

    void
    clear()
    {
        buffers_[0].clear();
        buffers_[1].clear();
    }

  private:
    FlitBuffer buffers_[kNumCoreTypes];
};

} // namespace sim
} // namespace pearl

#endif // PEARL_SIM_BUFFER_HPP
