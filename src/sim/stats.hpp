/**
 * @file
 * Network-level statistics: throughput, latency, per-class counts.
 */

#ifndef PEARL_SIM_STATS_HPP
#define PEARL_SIM_STATS_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/reservoir.hpp"
#include "common/stats.hpp"
#include "obs/registry.hpp"
#include "sim/packet.hpp"

namespace pearl {
namespace sim {

/** Aggregate statistics every Network implementation maintains. */
class NetworkStats
{
  public:
    /** Record a successful injection. */
    void
    noteInjected(const Packet &pkt)
    {
        ++injectedPackets_;
        injectedFlits_ += static_cast<std::uint64_t>(pkt.numFlits());
        ++classInjected_[static_cast<int>(pkt.msgClass)];
    }

    /** Record a delivery (pkt.cycleDelivered must be set). */
    void
    noteDelivered(const Packet &pkt)
    {
        ++deliveredPackets_;
        deliveredFlits_ += static_cast<std::uint64_t>(pkt.numFlits());
        deliveredBits_ += static_cast<std::uint64_t>(pkt.sizeBits);
        latency_.add(static_cast<double>(pkt.latency()));
        latencySample_.add(static_cast<double>(pkt.latency()));
        ++classDelivered_[static_cast<int>(pkt.msgClass)];
        classLatency_[static_cast<int>(pkt.msgClass)].add(
            static_cast<double>(pkt.latency()));
        if (pkt.coreType() == CoreType::CPU) {
            ++cpuDelivered_;
            cpuLatency_.add(static_cast<double>(pkt.latency()));
        } else {
            ++gpuDelivered_;
            gpuLatency_.add(static_cast<double>(pkt.latency()));
        }
    }

    // Fault / resilience accounting --------------------------------------

    /** A packet arrived corrupted (failed its BER draw) and was NACKed. */
    void
    noteCorrupted(const Packet &pkt)
    {
        ++corruptedPackets_;
        (void)pkt;
    }

    /** A packet's reservation broadcast was lost (data vanished). */
    void noteReservationDrop() { ++reservationDrops_; }

    /** A source gave up waiting for an ACK and re-armed the packet. */
    void noteAckTimeout() { ++ackTimeouts_; }

    /** A packet re-entered its source's outbound queue. */
    void noteRetransmit() { ++retransmittedPackets_; }

    /** A packet exhausted its retry budget and was dropped (counted,
     *  never silent). */
    void noteDropped(const Packet &pkt)
    {
        ++droppedPackets_;
        (void)pkt;
    }

    // Guard-layer accounting (ml::GuardedPolicy) -------------------------

    /** The guard tripped: a router switched to the fallback policy. */
    void noteFallbackEntry() { ++policyFallbackEntries_; }

    /** The guard recovered: a router returned to the ML policy. */
    void noteFallbackExit() { ++policyFallbackExits_; }

    /** One reservation window decided by the fallback policy. */
    void noteFallbackWindow() { ++policyFallbackWindows_; }

    /** One cycle with router `router`'s ring bank out of thermal lock. */
    void
    noteThermalUnlocked(int router)
    {
        if (router >= static_cast<int>(routerUnlockedCycles_.size()))
            routerUnlockedCycles_.resize(
                static_cast<std::size_t>(router) + 1, 0);
        ++routerUnlockedCycles_[static_cast<std::size_t>(router)];
        ++thermalUnlockedCycles_;
    }

    std::uint64_t corruptedPackets() const { return corruptedPackets_; }
    std::uint64_t reservationDrops() const { return reservationDrops_; }
    std::uint64_t ackTimeouts() const { return ackTimeouts_; }
    std::uint64_t retransmittedPackets() const
    {
        return retransmittedPackets_;
    }
    std::uint64_t droppedPackets() const { return droppedPackets_; }
    std::uint64_t policyFallbackEntries() const
    {
        return policyFallbackEntries_;
    }
    std::uint64_t policyFallbackExits() const
    {
        return policyFallbackExits_;
    }
    std::uint64_t policyFallbackWindows() const
    {
        return policyFallbackWindows_;
    }

    /** Total router-cycles spent out of thermal lock, network-wide. */
    std::uint64_t thermalUnlockedCycles() const
    {
        return thermalUnlockedCycles_;
    }

    /** Out-of-lock cycles of one router (0 for never-unlocked routers). */
    std::uint64_t
    thermalUnlockedCycles(int router) const
    {
        return router < static_cast<int>(routerUnlockedCycles_.size())
                   ? routerUnlockedCycles_[
                         static_cast<std::size_t>(router)]
                   : 0;
    }

    std::uint64_t injectedPackets() const { return injectedPackets_; }
    std::uint64_t injectedFlits() const { return injectedFlits_; }
    std::uint64_t deliveredPackets() const { return deliveredPackets_; }
    std::uint64_t deliveredFlits() const { return deliveredFlits_; }
    std::uint64_t deliveredBits() const { return deliveredBits_; }
    std::uint64_t cpuDeliveredPackets() const { return cpuDelivered_; }
    std::uint64_t gpuDeliveredPackets() const { return gpuDelivered_; }

    std::uint64_t
    classInjected(MsgClass c) const
    {
        return classInjected_[static_cast<int>(c)];
    }

    std::uint64_t
    classDelivered(MsgClass c) const
    {
        return classDelivered_[static_cast<int>(c)];
    }

    /** Average end-to-end packet latency in cycles. */
    double avgLatency() const { return latency_.mean(); }

    /** Average latency of one core type's packets. */
    double
    avgLatency(CoreType t) const
    {
        return t == CoreType::CPU ? cpuLatency_.mean()
                                  : gpuLatency_.mean();
    }

    /** Average latency of one message class's packets. */
    double
    avgClassLatency(MsgClass c) const
    {
        return classLatency_[static_cast<int>(c)].mean();
    }

    const RunningStat &latencyStat() const { return latency_; }

    /** Latency percentile estimate (reservoir-sampled), cycles. */
    double
    latencyQuantile(double q) const
    {
        return latencySample_.quantile(q);
    }

    /** Delivered flits per cycle over `cycles` elapsed cycles. */
    double
    throughputFlitsPerCycle(Cycle cycles) const
    {
        return cycles ? static_cast<double>(deliveredFlits_) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Delivered bits per cycle over `cycles` elapsed cycles. */
    double
    throughputBitsPerCycle(Cycle cycles) const
    {
        return cycles ? static_cast<double>(deliveredBits_) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /**
     * Publish end-of-run totals into the observability registry under
     * `prefix` (default "net").  Counters mirror the RunMetrics totals
     * exactly (tests reconcile them); the latency distribution is
     * summarised from the existing reservoir as p50/p95/p99.
     */
    void
    publishTo(obs::MetricsRegistry &reg,
              const std::string &prefix = "net") const
    {
        reg.counter(prefix + ".injected_packets") += injectedPackets_;
        reg.counter(prefix + ".injected_flits") += injectedFlits_;
        reg.counter(prefix + ".delivered_packets") += deliveredPackets_;
        reg.counter(prefix + ".delivered_flits") += deliveredFlits_;
        reg.counter(prefix + ".delivered_bits") += deliveredBits_;
        reg.counter(prefix + ".cpu_delivered_packets") += cpuDelivered_;
        reg.counter(prefix + ".gpu_delivered_packets") += gpuDelivered_;
        reg.counter(prefix + ".corrupted_packets") += corruptedPackets_;
        reg.counter(prefix + ".reservation_drops") += reservationDrops_;
        reg.counter(prefix + ".ack_timeouts") += ackTimeouts_;
        reg.counter(prefix + ".retransmitted_packets") +=
            retransmittedPackets_;
        reg.counter(prefix + ".dropped_packets") += droppedPackets_;
        reg.counter(prefix + ".thermal_unlocked_cycles") +=
            thermalUnlockedCycles_;
        reg.counter(prefix + ".policy_fallback_entries") +=
            policyFallbackEntries_;
        reg.counter(prefix + ".policy_fallback_exits") +=
            policyFallbackExits_;
        reg.counter(prefix + ".policy_fallback_windows") +=
            policyFallbackWindows_;
        reg.gauge(prefix + ".avg_latency_cycles") = latency_.mean();
        obs::HistogramSummary &h =
            reg.histogram(prefix + ".latency_cycles");
        h.count = latencySample_.count();
        h.mean = latency_.mean();
        h.p50 = latencySample_.quantile(0.50);
        h.p95 = latencySample_.quantile(0.95);
        h.p99 = latencySample_.quantile(0.99);
    }

    void
    reset()
    {
        injectedPackets_ = injectedFlits_ = 0;
        deliveredPackets_ = deliveredFlits_ = deliveredBits_ = 0;
        cpuDelivered_ = gpuDelivered_ = 0;
        latency_.reset();
        latencySample_.reset();
        cpuLatency_.reset();
        gpuLatency_.reset();
        for (auto &stat : classLatency_)
            stat.reset();
        classInjected_.fill(0);
        classDelivered_.fill(0);
        corruptedPackets_ = reservationDrops_ = 0;
        ackTimeouts_ = retransmittedPackets_ = droppedPackets_ = 0;
        thermalUnlockedCycles_ = 0;
        routerUnlockedCycles_.clear();
        policyFallbackEntries_ = policyFallbackExits_ = 0;
        policyFallbackWindows_ = 0;
    }

  private:
    std::uint64_t injectedPackets_ = 0;
    std::uint64_t injectedFlits_ = 0;
    std::uint64_t deliveredPackets_ = 0;
    std::uint64_t deliveredFlits_ = 0;
    std::uint64_t deliveredBits_ = 0;
    std::uint64_t cpuDelivered_ = 0;
    std::uint64_t gpuDelivered_ = 0;
    RunningStat latency_;
    ReservoirSampler latencySample_;
    RunningStat cpuLatency_;
    RunningStat gpuLatency_;
    std::array<RunningStat, kNumMsgClasses> classLatency_;
    std::array<std::uint64_t, kNumMsgClasses> classInjected_ = {};
    std::array<std::uint64_t, kNumMsgClasses> classDelivered_ = {};
    std::uint64_t corruptedPackets_ = 0;
    std::uint64_t reservationDrops_ = 0;
    std::uint64_t ackTimeouts_ = 0;
    std::uint64_t retransmittedPackets_ = 0;
    std::uint64_t droppedPackets_ = 0;
    std::uint64_t thermalUnlockedCycles_ = 0;
    std::vector<std::uint64_t> routerUnlockedCycles_;
    std::uint64_t policyFallbackEntries_ = 0;
    std::uint64_t policyFallbackExits_ = 0;
    std::uint64_t policyFallbackWindows_ = 0;
};

} // namespace sim
} // namespace pearl

#endif // PEARL_SIM_STATS_HPP
