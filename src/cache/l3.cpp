#include "cache/l3.hpp"

#include "common/log.hpp"

namespace pearl {
namespace cache {

using sim::CoherenceOp;
using sim::CoreType;
using sim::Cycle;
using sim::MsgClass;
using sim::NodeUnit;
using sim::Packet;

namespace {

MsgClass
probeClass(CoreType t)
{
    return t == CoreType::CPU ? MsgClass::ReqCpuL2Down
                              : MsgClass::ReqGpuL2Down;
}

MsgClass
fillClass(CoreType t)
{
    return t == CoreType::CPU ? MsgClass::RespCpuL2Down
                              : MsgClass::RespGpuL2Down;
}

} // namespace

L3Bank::L3Bank(sim::NodeId node_id, int num_clusters,
               const HierarchyConfig &cfg, const HomeMap &map)
    : nodeId_(node_id), numClusters_(num_clusters), cfg_(cfg),
      memoryNode_(map.memoryNode),
      l3_(cfg.l3Lines / static_cast<std::uint64_t>(map.numBanks),
          cfg.l3Ways)
{
    PEARL_ASSERT(num_clusters <= kMaxClusters,
                 "directory mask is kMaxClusters bits wide");
    mshr_.reserve(64);
    events_.reserve(64);
}

void
L3Bank::sendToCluster(int cluster, CoreType type, CoherenceOp op,
                      std::uint64_t addr, Cycle now)
{
    PEARL_ASSERT(sink_, "L3 bank not attached to a packet sink");
    Packet pkt;
    pkt.id = (static_cast<std::uint64_t>(nodeId_ + 1) << 52) | ++packetSeq_;
    pkt.op = op;
    pkt.msgClass = (op == CoherenceOp::ProbeShare ||
                    op == CoherenceOp::ProbeInv)
                       ? probeClass(type)
                       : fillClass(type);
    pkt.dstUnit = NodeUnit::Cluster;
    pkt.src = nodeId_;
    pkt.dst = cluster;
    pkt.sizeBits =
        sim::carriesData(op) ? sim::kResponseBits : sim::kRequestBits;
    pkt.addr = addr;
    pkt.cycleCreated = now;
    sink_->send(std::move(pkt));
}

void
L3Bank::sendToMemory(CoherenceOp op, std::uint64_t addr, Cycle now)
{
    PEARL_ASSERT(sink_, "L3 bank not attached to a packet sink");
    if (op == CoherenceOp::Read)
        ++stats_.memoryReads;
    else
        ++stats_.memoryWrites;
    Packet pkt;
    pkt.id = (static_cast<std::uint64_t>(nodeId_ + 1) << 52) | ++packetSeq_;
    pkt.op = op;
    pkt.msgClass = MsgClass::ReqL3;
    pkt.dstUnit = NodeUnit::Memory;
    pkt.src = nodeId_;
    pkt.dst = memoryNode_;
    pkt.sizeBits =
        sim::carriesData(op) ? sim::kResponseBits : sim::kRequestBits;
    pkt.addr = addr;
    pkt.cycleCreated = now;
    sink_->send(std::move(pkt));
}

void
L3Bank::tick(Cycle now)
{
    while (!events_.empty() && events_.top().due <= now) {
        const TimedEvent ev = events_.top();
        events_.pop();
        runLookup(ev.addr, now);
    }
}

void
L3Bank::startLookup(std::uint64_t addr, Cycle now)
{
    events_.push(TimedEvent{now + cfg_.l3AccessCycles, addr});
}

void
L3Bank::runLookup(std::uint64_t addr, Cycle now)
{
    Transaction *tx = mshr_.find(addr);
    if (!tx)
        return;
    if (tx->phase != Transaction::Phase::Lookup)
        return; // a probe or memory fetch is already in flight
    if (tx->requests.empty()) {
        mshr_.erase(addr);
        return;
    }

    auto *line = l3_.find(addr);
    if (!line) {
        ++stats_.misses;
        tx->phase = Transaction::Phase::MemFetch;
        sendToMemory(CoherenceOp::Read, addr, now);
        return;
    }
    ++stats_.hits;
    l3_.touch(*line);
    serviceHead(addr, *line, now);
}

void
L3Bank::handleMemResponse(const Packet &pkt, Cycle now)
{
    Transaction *tx = mshr_.find(pkt.addr);
    if (!tx) {
        warn("L3 bank ", nodeId_, ": stray memory response for addr ",
             pkt.addr);
        return;
    }
    auto *line = l3_.find(pkt.addr);
    if (!line) {
        // Avoid evicting a line another transaction is still working on.
        auto &victim = l3_.victimWhere(pkt.addr, [this](std::uint64_t t) {
            return mshr_.contains(t);
        });
        evictVictim(victim, now);
        l3_.install(victim, pkt.addr, CacheState::S);
        line = &victim;
    }
    tx->phase = Transaction::Phase::Lookup;
    serviceHead(pkt.addr, *line, now);
}

void
L3Bank::serviceHead(std::uint64_t addr, L3Array::Line &line, Cycle now)
{
    Transaction *txp = mshr_.find(addr);
    PEARL_ASSERT(txp);
    Transaction &tx = *txp;
    PEARL_ASSERT(!tx.requests.empty());
    const PendingReq &head = tx.requests.front();

    if (head.op == CoherenceOp::Read) {
        if (line.meta.owner >= 0 && line.meta.owner != head.cluster) {
            tx.phase = Transaction::Phase::ProbeOwner;
            tx.pendingAcks = 1;
            ++stats_.probesSent;
            sendToCluster(line.meta.owner, head.type,
                          CoherenceOp::ProbeShare, addr, now);
            return;
        }
        const bool exclusive =
            line.meta.owner < 0 &&
            line.meta.sharers.noneExcept(head.cluster);
        finishHead(addr, line, exclusive, now);
        return;
    }

    // ReadExcl: every other holder must be invalidated first.
    PEARL_ASSERT(head.op == CoherenceOp::ReadExcl);
    SharerMask holders = line.meta.sharers;
    holders.clear(head.cluster);
    if (line.meta.owner >= 0 && line.meta.owner != head.cluster)
        holders.set(line.meta.owner);

    if (holders.any()) {
        tx.phase = Transaction::Phase::Invalidating;
        tx.pendingAcks = 0;
        for (int c = 0; c < numClusters_; ++c) {
            if (holders.test(c)) {
                ++tx.pendingAcks;
                ++stats_.invalidationsSent;
                sendToCluster(c, head.type, CoherenceOp::ProbeInv, addr,
                              now);
            }
        }
        return;
    }
    finishHead(addr, line, /*exclusive=*/true, now);
}

void
L3Bank::finishHead(std::uint64_t addr, L3Array::Line &line, bool exclusive,
                   Cycle now)
{
    Transaction *txp = mshr_.find(addr);
    PEARL_ASSERT(txp);
    Transaction &tx = *txp;
    const PendingReq head = tx.requests.front();
    tx.requests.erase(tx.requests.begin());

    // Directory update.
    if (head.op == CoherenceOp::ReadExcl) {
        line.meta.sharers = SharerMask::bit(head.cluster);
        line.meta.owner = static_cast<std::int16_t>(head.cluster);
    } else {
        line.meta.sharers.set(head.cluster);
        if (exclusive)
            line.meta.owner = static_cast<std::int16_t>(head.cluster);
    }

    sendToCluster(head.cluster, head.type,
                  exclusive ? CoherenceOp::DataExcl : CoherenceOp::Data,
                  addr, now);

    if (tx.requests.empty()) {
        mshr_.erase(addr);
    } else {
        tx.phase = Transaction::Phase::Lookup;
        startLookup(addr, now);
    }
}

void
L3Bank::handleProbeReply(const Packet &pkt, Cycle now)
{
    Transaction *txp = mshr_.find(pkt.addr);
    auto *line = l3_.find(pkt.addr);

    if (!txp) {
        // Ack/data from a fire-and-forget back-invalidation; flush any
        // dirty data to memory (the line is already gone from the bank).
        if (pkt.op == CoherenceOp::Data)
            sendToMemory(CoherenceOp::Writeback, pkt.addr, now);
        return;
    }
    Transaction &tx = *txp;
    if (!line) {
        // The line was evicted between the probe and its reply (possible
        // when a memory response installed into its way).  Restart the
        // transaction from the lookup so the queued requesters are not
        // stranded.
        warn("L3 bank ", nodeId_, ": probe reply for a line evicted "
             "mid-transaction, addr ", pkt.addr, "; restarting lookup");
        if (pkt.op == CoherenceOp::Data)
            sendToMemory(CoherenceOp::Writeback, pkt.addr, now);
        tx.phase = Transaction::Phase::Lookup;
        startLookup(pkt.addr, now);
        return;
    }

    if (tx.phase == Transaction::Phase::ProbeOwner) {
        if (pkt.op == CoherenceOp::Data) {
            // Owner supplied fresh data (demoting M->O locally).  The
            // bank's copy is now current and stays current until the
            // next write, so the directory demotes the owner to a plain
            // sharer — later reads are served from the bank without
            // re-probing.  Without this, every read of a shared line
            // would probe the first toucher forever (a probe storm).
            line->meta.dirty = true;
            line->meta.sharers.set(line->meta.owner);
            line->meta.owner = -1;
        } else {
            // The owner no longer holds the line (silent eviction or a
            // racing writeback): clear ownership.
            line->meta.owner = -1;
        }
        tx.phase = Transaction::Phase::Lookup;
        serviceHead(pkt.addr, *line, now);
        return;
    }

    if (tx.phase == Transaction::Phase::Invalidating) {
        if (pkt.op == CoherenceOp::Data)
            line->meta.dirty = true;
        const int src_cluster = pkt.src;
        line->meta.sharers.clear(src_cluster);
        if (line->meta.owner == src_cluster)
            line->meta.owner = -1;
        if (--tx.pendingAcks == 0) {
            tx.phase = Transaction::Phase::Lookup;
            serviceHead(pkt.addr, *line, now);
        }
        return;
    }

    warn("L3 bank ", nodeId_, ": unexpected probe reply in phase ",
         static_cast<int>(tx.phase));
}

void
L3Bank::handleWriteback(const Packet &pkt, Cycle now)
{
    ++stats_.writebacks;
    auto *line = l3_.find(pkt.addr);
    if (!line) {
        // The bank already evicted its copy: the data goes straight to
        // the memory node.
        sendToMemory(CoherenceOp::Writeback, pkt.addr, now);
        return;
    }
    line->meta.dirty = true;
    const int src = pkt.src;
    line->meta.sharers.clear(src);
    if (line->meta.owner == src)
        line->meta.owner = -1;
}

void
L3Bank::evictVictim(L3Array::Line &victim, Cycle now)
{
    if (!isValid(victim.state))
        return;
    // Back-invalidate remote holders (fire and forget; their acks are
    // absorbed by handleProbeReply's no-transaction path).
    SharerMask holders = victim.meta.sharers;
    if (victim.meta.owner >= 0)
        holders.set(victim.meta.owner);
    for (int c = 0; c < numClusters_; ++c) {
        if (holders.test(c)) {
            ++stats_.invalidationsSent;
            // Core type is unknown at eviction; CPU class is used for the
            // accounting label.
            sendToCluster(c, CoreType::CPU, CoherenceOp::ProbeInv,
                          victim.tag, now);
        }
    }
    if (victim.meta.dirty)
        sendToMemory(CoherenceOp::Writeback, victim.tag, now);
    victim.state = CacheState::I;
    victim.meta = DirMeta{};
}

void
L3Bank::deliver(const Packet &pkt, Cycle now)
{
    switch (pkt.op) {
      case CoherenceOp::Read:
      case CoherenceOp::ReadExcl: {
        if (pkt.msgClass == MsgClass::RespL3) {
            warn("L3 bank: misrouted memory-class request");
            return;
        }
        if (pkt.op == CoherenceOp::Read)
            ++stats_.reads;
        else
            ++stats_.readExcls;
        auto [tx, fresh] = mshr_.tryEmplace(pkt.addr);
        tx->requests.push_back(PendingReq{
            pkt.src, pkt.op, sim::coreTypeOf(pkt.msgClass), pkt.id});
        if (fresh) {
            tx->phase = Transaction::Phase::Lookup;
            startLookup(pkt.addr, now);
        }
        break;
      }
      case CoherenceOp::Writeback:
        handleWriteback(pkt, now);
        break;
      case CoherenceOp::Data:
        if (pkt.msgClass == MsgClass::RespL3) {
            handleMemResponse(pkt, now);
        } else {
            handleProbeReply(pkt, now);
        }
        break;
      case CoherenceOp::Ack:
        handleProbeReply(pkt, now);
        break;
      default:
        warn("L3 bank: unexpected op ", sim::toString(pkt.op));
        break;
    }
}

} // namespace cache
} // namespace pearl
