/**
 * @file
 * Cache-hierarchy configuration (Table I of the paper).
 *
 * Sizes are given in 64-byte lines.  L1s are modelled write-through /
 * no-write-allocate (all stores visit the L2, which owns coherence); the
 * L2s are write-back NMOESI caches, and the shared L3 adds a full-map
 * directory over the 16 clusters.  DESIGN.md documents these modelling
 * choices.
 */

#ifndef PEARL_CACHE_CONFIG_HPP
#define PEARL_CACHE_CONFIG_HPP

#include <cstdint>

namespace pearl {
namespace cache {

/** Full hierarchy configuration with Table I defaults. */
struct HierarchyConfig
{
    // Cluster composition -------------------------------------------------
    int cpuCoresPerCluster = 2;
    int gpuCusPerCluster = 4;

    // L1 (per core / CU), 64 B lines --------------------------------------
    std::uint64_t cpuL1ILines = 512;  //!< 32 kB
    std::uint64_t cpuL1DLines = 1024; //!< 64 kB
    std::uint64_t gpuL1Lines = 1024;  //!< 64 kB
    int l1Ways = 8;

    // L2 (per cluster, per core type) -------------------------------------
    std::uint64_t cpuL2Lines = 4096;  //!< 256 kB
    std::uint64_t gpuL2Lines = 8192;  //!< 512 kB
    int l2Ways = 16;

    // Shared L3 ------------------------------------------------------------
    std::uint64_t l3Lines = 131072;   //!< 8 MB
    int l3Ways = 16;

    /**
     * Shared-region size of the demand generators, in lines (the
     * traffic::AddressSpace::kSharedLines legacy default).  Scale-out
     * chips weak-scale this with the cluster count (core::makeSystemConfig)
     * so per-line coherence contention — the serial fraction of the
     * workload — stays constant as the chip grows.
     */
    std::uint64_t sharedLines = 2048;

    // Latencies in network cycles (2 GHz network clock) --------------------
    std::uint64_t l1ToL2Cycles = 2;   //!< L1 miss to L2 access (local hop)
    std::uint64_t l2AccessCycles = 4; //!< L2 array access
    std::uint64_t l3AccessCycles = 8; //!< L3 array + directory access
    std::uint64_t memoryCycles = 100; //!< main-memory round trip

    // Miss-handling resources ----------------------------------------------
    // Generous miss-handling resources keep the demand *inelastic*:
    // cores keep issuing at their profile rates while the network
    // backlogs, matching the paper's trace-driven semantics where the
    // offered traffic does not depend on network speed.
    int cpuL2MshrEntries = 32;
    int gpuL2MshrEntries = 128;       //!< GPUs sustain many more misses
    int cpuCoreMaxOutstanding = 48;
    int gpuCoreMaxOutstanding = 96;
};

} // namespace cache
} // namespace pearl

#endif // PEARL_CACHE_CONFIG_HPP
