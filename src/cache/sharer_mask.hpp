/**
 * @file
 * Fixed-width sharer bitmask for the L3 full-map directory.
 *
 * The directory used to track sharers in a raw uint16_t, hard-bounding
 * the chip at 16 clusters.  SharerMask is the scale-out replacement: a
 * two-word 128-bit mask with the same set/clear/test semantics, sized
 * by kMaxClusters (the TopologySpec ceiling).  Operations never
 * allocate and the mask is trivially copyable, so DirMeta stays a plain
 * value inside the cache array lines.
 */

#ifndef PEARL_CACHE_SHARER_MASK_HPP
#define PEARL_CACHE_SHARER_MASK_HPP

#include <array>
#include <cstdint>

namespace pearl {
namespace cache {

/** Hard ceiling on the cluster count (directory mask width). */
constexpr int kMaxClusters = 128;

/** Full-map directory sharer set over up to kMaxClusters clusters. */
struct SharerMask
{
    std::array<std::uint64_t, 2> words{};

    static constexpr SharerMask
    bit(int cluster)
    {
        SharerMask m;
        m.words[static_cast<std::size_t>(cluster >> 6)] =
            std::uint64_t{1} << (cluster & 63);
        return m;
    }

    constexpr void
    set(int cluster)
    {
        words[static_cast<std::size_t>(cluster >> 6)] |=
            std::uint64_t{1} << (cluster & 63);
    }

    constexpr void
    clear(int cluster)
    {
        words[static_cast<std::size_t>(cluster >> 6)] &=
            ~(std::uint64_t{1} << (cluster & 63));
    }

    constexpr bool
    test(int cluster) const
    {
        return (words[static_cast<std::size_t>(cluster >> 6)] >>
                (cluster & 63)) &
               1u;
    }

    constexpr bool
    any() const
    {
        return (words[0] | words[1]) != 0;
    }

    constexpr bool none() const { return !any(); }

    /** True when no cluster other than `cluster` is in the set. */
    constexpr bool
    noneExcept(int cluster) const
    {
        SharerMask others = *this;
        others.clear(cluster);
        return others.none();
    }

    constexpr SharerMask
    operator|(const SharerMask &o) const
    {
        return {{words[0] | o.words[0], words[1] | o.words[1]}};
    }

    constexpr bool
    operator==(const SharerMask &o) const
    {
        return words == o.words;
    }
};

} // namespace cache
} // namespace pearl

#endif // PEARL_CACHE_SHARER_MASK_HPP
