/**
 * @file
 * Validation of the cache-hierarchy configuration (DESIGN.md
 * "Resilience").
 *
 * `validate(HierarchyConfig)` checks every user-settable size, depth
 * and latency; `validateArrayGeometry` is the shared check behind each
 * CacheArray construction (capacity/ways divisibility), so a malformed
 * cache size surfaces as a ConfigError with the array's name instead
 * of an assert (or a zero-set array and division weirdness).
 */

#ifndef PEARL_CACHE_VALIDATE_HPP
#define PEARL_CACHE_VALIDATE_HPP

#include <cstdint>

#include "cache/config.hpp"
#include "common/expected.hpp"

namespace pearl {
namespace cache {

/** Geometry constraints every set-associative array shares.  `what`
 *  names the array in the message (e.g. "cpuL2"). */
inline Validation
validateArrayGeometry(const char *what, std::uint64_t total_lines,
                      int ways)
{
    if (ways <= 0)
        return configError(what, ": associativity must be > 0 ways, "
                           "got ", ways);
    if (ways > 64)
        return configError(what, ": associativity must be <= 64 ways "
                           "(victim scan bound), got ", ways);
    if (total_lines == 0)
        return configError(what, ": capacity must be > 0 lines");
    if (total_lines % static_cast<std::uint64_t>(ways) != 0)
        return configError(what, ": capacity (", total_lines,
                           " lines) must be divisible by the ",
                           ways, "-way associativity");
    return {};
}

/** Validate the full Table I cache-hierarchy configuration. */
inline Validation
validate(const HierarchyConfig &cfg)
{
    if (cfg.cpuCoresPerCluster <= 0 || cfg.gpuCusPerCluster <= 0)
        return configError("cluster composition must be > 0, got "
                           "cpuCoresPerCluster=", cfg.cpuCoresPerCluster,
                           " gpuCusPerCluster=", cfg.gpuCusPerCluster);

    struct ArraySpec
    {
        const char *name;
        std::uint64_t lines;
        int ways;
    };
    const ArraySpec arrays[] = {
        {"cpuL1I", cfg.cpuL1ILines, cfg.l1Ways},
        {"cpuL1D", cfg.cpuL1DLines, cfg.l1Ways},
        {"gpuL1", cfg.gpuL1Lines, cfg.l1Ways},
        {"cpuL2", cfg.cpuL2Lines, cfg.l2Ways},
        {"gpuL2", cfg.gpuL2Lines, cfg.l2Ways},
        {"l3", cfg.l3Lines, cfg.l3Ways},
    };
    for (const ArraySpec &a : arrays) {
        if (Validation v = validateArrayGeometry(a.name, a.lines, a.ways);
            !v)
            return v;
    }

    if (cfg.l2AccessCycles == 0 || cfg.l3AccessCycles == 0 ||
        cfg.memoryCycles == 0)
        return configError("access latencies must be > 0 cycles, got "
                           "l2=", cfg.l2AccessCycles, " l3=",
                           cfg.l3AccessCycles, " memory=",
                           cfg.memoryCycles);
    if (cfg.cpuL2MshrEntries <= 0 || cfg.gpuL2MshrEntries <= 0)
        return configError("MSHR entries must be > 0, got cpu=",
                           cfg.cpuL2MshrEntries, " gpu=",
                           cfg.gpuL2MshrEntries);
    if (cfg.cpuCoreMaxOutstanding <= 0 || cfg.gpuCoreMaxOutstanding <= 0)
        return configError("core outstanding-miss limits must be > 0, "
                           "got cpu=", cfg.cpuCoreMaxOutstanding,
                           " gpu=", cfg.gpuCoreMaxOutstanding);
    return {};
}

} // namespace cache
} // namespace pearl

#endif // PEARL_CACHE_VALIDATE_HPP
