/**
 * @file
 * The memory-controller node (network node 16).
 *
 * Serves L3-bank misses: Read requests return a data response after the
 * main-memory latency, rate-limited to the aggregate bandwidth of the two
 * memory controllers; Writebacks are absorbed.  All traffic to/from this
 * node carries the Table III "L3" classes (Request L3 / Response L3).
 */

#ifndef PEARL_CACHE_MEMORY_HPP
#define PEARL_CACHE_MEMORY_HPP

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "cache/config.hpp"
#include "sim/packet.hpp"
#include "sim/sink.hpp"
#include "sim/telemetry.hpp"

namespace pearl {
namespace cache {

/** Memory node statistics. */
struct MemoryStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t busyStallCycles = 0; //!< cycles the MCs were saturated
};

/** The two-MC memory node. */
class MemoryNode
{
  public:
    /**
     * @param node_id  network node id (16).
     * @param cfg      hierarchy configuration (memory latency).
     * @param responses_per_cycle aggregate MC bandwidth in responses per
     *        network cycle (2 controllers; fractional rates accumulate).
     */
    MemoryNode(sim::NodeId node_id, const HierarchyConfig &cfg,
               double responses_per_cycle = 0.4)
        : nodeId_(node_id), cfg_(cfg), rate_(responses_per_cycle)
    {}

    void
    attach(sim::PacketSink *sink, sim::RouterTelemetry *telemetry)
    {
        sink_ = sink;
        telemetry_ = telemetry;
    }

    /** Handle a packet delivered to the memory node. */
    void
    deliver(const sim::Packet &pkt, sim::Cycle now)
    {
        if (pkt.op == sim::CoherenceOp::Read) {
            ++stats_.reads;
            pending_.push(Pending{now + cfg_.memoryCycles, pkt.src,
                                  pkt.addr, pkt.msgClass});
        } else {
            // Writebacks (and stray data) are absorbed.
            ++stats_.writes;
        }
    }

    /** Issue due responses within the MC bandwidth budget. */
    void
    tick(sim::Cycle now)
    {
        credit_ += rate_;
        bool stalled = false;
        while (!pending_.empty() && pending_.top().due <= now) {
            if (credit_ < 1.0) {
                stalled = true;
                break;
            }
            credit_ -= 1.0;
            const Pending p = pending_.top();
            pending_.pop();

            sim::Packet resp;
            resp.id = (static_cast<std::uint64_t>(nodeId_ + 1) << 48) |
                      ++seq_;
            resp.msgClass = sim::MsgClass::RespL3;
            resp.op = sim::CoherenceOp::Data;
            resp.dstUnit = sim::NodeUnit::L3Bank;
            resp.src = nodeId_;
            resp.dst = p.requester;
            resp.sizeBits = sim::kResponseBits;
            resp.addr = p.addr;
            resp.cycleCreated = now;
            sink_->send(std::move(resp));
        }
        if (stalled)
            ++stats_.busyStallCycles;
        if (credit_ > 8.0)
            credit_ = 8.0; // bound the burst the MCs can absorb
    }

    /**
     * Replay `k` ticks with nothing pending (idle fast-forward).  The
     * per-cycle arithmetic is replicated exactly — `credit_ += rate_`
     * then the burst clamp, `k` times — so the credit is bit-identical
     * to stepping cycle by cycle (an analytic `k * rate_` would round
     * differently and the credit feeds `>= 1.0` comparisons later).
     * The loop is bounded: fast-forward jumps at most one reservation
     * window at a time.
     */
    void
    idleTicks(std::uint64_t k)
    {
        for (std::uint64_t i = 0; i < k; ++i) {
            credit_ += rate_;
            if (credit_ > 8.0)
                credit_ = 8.0;
        }
    }

    const MemoryStats &stats() const { return stats_; }
    bool quiescent() const { return pending_.empty(); }

  private:
    struct Pending
    {
        sim::Cycle due;
        sim::NodeId requester;
        std::uint64_t addr;
        sim::MsgClass reqClass;

        bool
        operator>(const Pending &o) const
        {
            return due > o.due;
        }
    };

    sim::NodeId nodeId_;
    HierarchyConfig cfg_;
    double rate_;
    double credit_ = 0.0;
    sim::PacketSink *sink_ = nullptr;
    sim::RouterTelemetry *telemetry_ = nullptr;
    std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
        pending_;
    MemoryStats stats_;
    std::uint64_t seq_ = 0;
};

} // namespace cache
} // namespace pearl

#endif // PEARL_CACHE_MEMORY_HPP
