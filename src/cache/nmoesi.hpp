/**
 * @file
 * The NMOESI cache-coherence protocol state machine.
 *
 * NMOESI is MOESI extended with an N (non-coherent modified) state, as
 * used by Multi2Sim — the simulator the paper collected its traffic from.
 * N holds data modified outside the coherence domain: GPU compute units
 * write private data in N without read-for-ownership traffic, and evicted
 * N lines are written back like M lines.
 *
 * This header contains *pure* transition functions so the protocol can be
 * unit- and property-tested in isolation from the timing model:
 *  - classifyAccess:  what a local load/store needs in a given state;
 *  - stateAfterHit:   the state after a hit is serviced;
 *  - fillState:       the state a miss response installs;
 *  - applyProbe:      reaction to a directory probe;
 *  - writebackNeeded: whether eviction must push data down.
 */

#ifndef PEARL_CACHE_NMOESI_HPP
#define PEARL_CACHE_NMOESI_HPP

#include <cstdint>

#include "common/log.hpp"

namespace pearl {
namespace cache {

/** NMOESI line states. */
enum class CacheState : std::uint8_t
{
    I = 0, //!< Invalid
    S,     //!< Shared: clean, possibly other sharers
    E,     //!< Exclusive: clean, only copy
    O,     //!< Owned: dirty, other sharers may exist, owner supplies data
    M,     //!< Modified: dirty, only copy
    N      //!< Non-coherent modified: dirty, outside the coherence domain
};

inline const char *
toString(CacheState s)
{
    switch (s) {
      case CacheState::I: return "I";
      case CacheState::S: return "S";
      case CacheState::E: return "E";
      case CacheState::O: return "O";
      case CacheState::M: return "M";
      case CacheState::N: return "N";
      default: return "<invalid>";
    }
}

/** Whether a line in `s` holds valid data. */
inline bool
isValid(CacheState s)
{
    return s != CacheState::I;
}

/** Whether a line in `s` holds dirty data that must be written back. */
inline bool
isDirty(CacheState s)
{
    return s == CacheState::M || s == CacheState::O || s == CacheState::N;
}

/** What a local access needs from the protocol. */
enum class AccessOutcome : std::uint8_t
{
    Hit,           //!< serviced locally, no messages
    Miss,          //!< needs a Read (load) from below
    UpgradeNeeded  //!< store to S/O: needs ReadExcl, keeps data
};

/**
 * Classify a local access against the current state.
 *
 * Stores hit in M, N and E (E upgrades silently to M); stores to S or O
 * need an upgrade (ReadExcl) because other sharers may exist; loads hit in
 * any valid state.
 */
inline AccessOutcome
classifyAccess(CacheState s, bool write)
{
    if (s == CacheState::I)
        return AccessOutcome::Miss;
    if (!write)
        return AccessOutcome::Hit;
    switch (s) {
      case CacheState::M:
      case CacheState::N:
      case CacheState::E:
        return AccessOutcome::Hit;
      case CacheState::S:
      case CacheState::O:
        return AccessOutcome::UpgradeNeeded;
      default:
        panic("classifyAccess on invalid state");
    }
}

/** State after servicing a hit (silent E->M upgrade on store). */
inline CacheState
stateAfterHit(CacheState s, bool write)
{
    PEARL_ASSERT(classifyAccess(s, write) == AccessOutcome::Hit);
    if (write && s == CacheState::E)
        return CacheState::M;
    return s;
}

/**
 * State installed by a fill.
 * @param write        the fill satisfies a store.
 * @param exclusive    the directory granted an exclusive copy.
 * @param non_coherent the requester operates outside the coherence domain
 *                     (GPU private data -> N on store).
 */
inline CacheState
fillState(bool write, bool exclusive, bool non_coherent)
{
    if (non_coherent && write)
        return CacheState::N;
    if (write) {
        PEARL_ASSERT(exclusive, "store fill requires exclusivity");
        return CacheState::M;
    }
    return exclusive ? CacheState::E : CacheState::S;
}

/** Directory probe kinds. */
enum class ProbeType : std::uint8_t
{
    Share,     //!< another cluster wants to read
    Invalidate //!< another cluster wants ownership
};

/** Result of applying a probe to a line. */
struct ProbeOutcome
{
    CacheState next;  //!< state after the probe
    bool supplyData;  //!< holder must send the line's data
    bool dirtyData;   //!< the supplied data is dirty (memory is stale)
};

/**
 * Apply a directory probe.
 *
 * Share probes demote M->O (the owner keeps supplying), E->S, and leave
 * S/O unchanged; dirty states supply data.  Invalidate probes force I and
 * dirty states supply data so ownership can transfer.  N lines are outside
 * the coherence domain but must still honour invalidations (the directory
 * reclaims the line when another cluster claims it); they flush their
 * dirty data.
 */
inline ProbeOutcome
applyProbe(CacheState s, ProbeType probe)
{
    if (probe == ProbeType::Share) {
        switch (s) {
          case CacheState::I:
            return {CacheState::I, false, false};
          case CacheState::S:
            return {CacheState::S, false, false};
          case CacheState::E:
            return {CacheState::S, true, false};
          case CacheState::O:
            return {CacheState::O, true, true};
          case CacheState::M:
            return {CacheState::O, true, true};
          case CacheState::N:
            return {CacheState::N, true, true};
          default:
            panic("applyProbe on invalid state");
        }
    }
    // Invalidate
    const bool dirty = isDirty(s);
    const bool valid = isValid(s);
    return {CacheState::I, valid && dirty, dirty};
}

/** Whether evicting a line in `s` requires a data writeback. */
inline bool
writebackNeeded(CacheState s)
{
    return isDirty(s);
}

} // namespace cache
} // namespace pearl

#endif // PEARL_CACHE_NMOESI_HPP
