/**
 * @file
 * Flat linear-scan address map for small bounded tables (MSHRs).
 *
 * The MSHRs hold at most a few dozen outstanding line addresses
 * (cpuL2MshrEntries / gpuL2MshrEntries, and the L3 transaction table
 * tracks in-flight lines only), yet profiling showed the hash-map
 * machinery of std::unordered_map — bucket indirection, per-node
 * allocation, hashing — dominating the cache-model time.  At these
 * sizes a contiguous scan wins on every lookup.  Keys and values live
 * in parallel arrays so the scan streams over densely packed 8-byte
 * keys instead of striding across full slots.
 *
 * Deliberately minimal API.  Erase is swap-with-last, so pointers
 * returned by find()/tryEmplace() are invalidated by erase and by
 * growth; callers re-find after any mutation (the cache models already
 * do, since std::unordered_map invalidated iterators on rehash too).
 * No iteration is exposed: nothing may depend on element order.
 */

#ifndef PEARL_CACHE_ADDR_MAP_HPP
#define PEARL_CACHE_ADDR_MAP_HPP

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/log.hpp"

namespace pearl {
namespace cache {

/** Flat map from a 64-bit line address to V. */
template <typename V>
class AddrMap
{
  public:
    void
    reserve(std::size_t n)
    {
        keys_.reserve(n);
        values_.reserve(n);
    }

    std::size_t size() const { return keys_.size(); }
    bool empty() const { return keys_.empty(); }

    V *
    find(std::uint64_t key)
    {
        const std::size_t n = keys_.size();
        for (std::size_t i = 0; i < n; ++i) {
            if (keys_[i] == key)
                return &values_[i];
        }
        return nullptr;
    }

    const V *
    find(std::uint64_t key) const
    {
        return const_cast<AddrMap *>(this)->find(key);
    }

    bool contains(std::uint64_t key) const { return find(key) != nullptr; }

    /** Insert a default-constructed value if absent; like try_emplace.
     *  @return the value slot and whether it was freshly inserted. */
    std::pair<V *, bool>
    tryEmplace(std::uint64_t key)
    {
        if (V *existing = find(key))
            return {existing, false};
        keys_.push_back(key);
        values_.emplace_back();
        return {&values_.back(), true};
    }

    /** Insert a value for a key that must be absent. */
    V &
    insertNew(std::uint64_t key, V &&value)
    {
        PEARL_ASSERT(!contains(key));
        keys_.push_back(key);
        values_.push_back(std::move(value));
        return values_.back();
    }

    /** Remove a key that must be present (swap-with-last). */
    void
    erase(std::uint64_t key)
    {
        const std::size_t n = keys_.size();
        for (std::size_t i = 0; i < n; ++i) {
            if (keys_[i] != key)
                continue;
            if (i + 1 != n) {
                keys_[i] = keys_.back();
                values_[i] = std::move(values_.back());
            }
            keys_.pop_back();
            values_.pop_back();
            return;
        }
        PEARL_ASSERT(false, "AddrMap::erase: key not present");
    }

    void
    clear()
    {
        keys_.clear();
        values_.clear();
    }

  private:
    std::vector<std::uint64_t> keys_;
    std::vector<V> values_;
};

} // namespace cache
} // namespace pearl

#endif // PEARL_CACHE_ADDR_MAP_HPP
