/**
 * @file
 * Generic set-associative tag array with LRU replacement.
 *
 * The array stores NMOESI state plus caller-defined per-line metadata
 * (L2 lines track which local L1s hold the line; L3 lines carry directory
 * state).  Addresses are cache-line granular throughout the simulator, so
 * the array indexes directly on line addresses.
 */

#ifndef PEARL_CACHE_CACHE_ARRAY_HPP
#define PEARL_CACHE_CACHE_ARRAY_HPP

#include <cstdint>
#include <vector>

#include "common/log.hpp"
#include "cache/nmoesi.hpp"

namespace pearl {
namespace cache {

/** Empty metadata for caches that need none (L1s). */
struct NoMeta
{};

/** A set-associative array of coherence lines. */
template <typename Meta = NoMeta>
class CacheArray
{
  public:
    struct Line
    {
        std::uint64_t tag = 0;
        CacheState state = CacheState::I;
        std::uint64_t lastUse = 0;
        Meta meta{};
    };

    /**
     * @param total_lines capacity in lines (must be divisible by ways).
     * @param ways        associativity.
     */
    CacheArray(std::uint64_t total_lines, int ways)
        : ways_(ways), numSets_(total_lines / static_cast<std::uint64_t>(ways))
    {
        PEARL_ASSERT(ways > 0);
        PEARL_ASSERT(numSets_ > 0);
        PEARL_ASSERT(numSets_ * static_cast<std::uint64_t>(ways) ==
                     total_lines, "total_lines must be ways-divisible");
        lines_.resize(total_lines);
    }

    std::uint64_t numSets() const { return numSets_; }
    int ways() const { return ways_; }
    std::uint64_t capacityLines() const { return lines_.size(); }

    /** Find a valid line for `line_addr`; nullptr on miss. */
    Line *
    find(std::uint64_t line_addr)
    {
        const std::uint64_t set = line_addr % numSets_;
        for (int w = 0; w < ways_; ++w) {
            Line &line = lines_[set * ways_ + w];
            if (isValid(line.state) && line.tag == line_addr)
                return &line;
        }
        return nullptr;
    }

    const Line *
    find(std::uint64_t line_addr) const
    {
        return const_cast<CacheArray *>(this)->find(line_addr);
    }

    /** Update the LRU stamp on a touch. */
    void
    touch(Line &line)
    {
        line.lastUse = ++useClock_;
    }

    /**
     * Pick the victim way for `line_addr`: an invalid way if one exists,
     * otherwise the LRU way.  The caller must handle the eviction of a
     * valid victim (writeback, probes) before overwriting it.
     */
    Line &
    victim(std::uint64_t line_addr)
    {
        const std::uint64_t set = line_addr % numSets_;
        Line *lru = &lines_[set * ways_];
        for (int w = 0; w < ways_; ++w) {
            Line &line = lines_[set * ways_ + w];
            if (!isValid(line.state))
                return line;
            if (line.lastUse < lru->lastUse)
                lru = &line;
        }
        return *lru;
    }

    /**
     * Like victim(), but avoids lines for which `busy(tag)` returns true
     * (e.g. lines with an in-flight transaction).  Falls back to the
     * plain LRU victim when every valid way is busy.
     */
    template <typename BusyPred>
    Line &
    victimWhere(std::uint64_t line_addr, BusyPred busy)
    {
        const std::uint64_t set = line_addr % numSets_;
        Line *best = nullptr;
        for (int w = 0; w < ways_; ++w) {
            Line &line = lines_[set * ways_ + w];
            if (!isValid(line.state))
                return line;
            if (busy(line.tag))
                continue;
            if (!best || line.lastUse < best->lastUse)
                best = &line;
        }
        return best ? *best : victim(line_addr);
    }

    /**
     * Install `line_addr` into `line` with `state`, resetting metadata and
     * touching LRU.  `line` must come from victim() for the same address.
     */
    void
    install(Line &line, std::uint64_t line_addr, CacheState state)
    {
        line.tag = line_addr;
        line.state = state;
        line.meta = Meta{};
        touch(line);
    }

    /** Invalidate every line (between benchmark phases). */
    void
    reset()
    {
        for (auto &line : lines_)
            line = Line{};
        useClock_ = 0;
    }

    /** Count valid lines (tests / occupancy introspection). */
    std::uint64_t
    validLines() const
    {
        std::uint64_t n = 0;
        for (const auto &line : lines_) {
            if (isValid(line.state))
                ++n;
        }
        return n;
    }

  private:
    int ways_;
    std::uint64_t numSets_;
    std::vector<Line> lines_;
    std::uint64_t useClock_ = 0;
};

} // namespace cache
} // namespace pearl

#endif // PEARL_CACHE_CACHE_ARRAY_HPP
