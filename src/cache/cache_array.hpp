/**
 * @file
 * Generic set-associative tag array with LRU replacement.
 *
 * The array stores NMOESI state plus caller-defined per-line metadata
 * (L2 lines track which local L1s hold the line; L3 lines carry directory
 * state).  Addresses are cache-line granular throughout the simulator, so
 * the array indexes directly on line addresses.
 */

#ifndef PEARL_CACHE_CACHE_ARRAY_HPP
#define PEARL_CACHE_CACHE_ARRAY_HPP

#include <cstdint>
#include <vector>

#include "common/log.hpp"
#include "cache/nmoesi.hpp"
#include "cache/validate.hpp"

namespace pearl {
namespace cache {

/** Empty metadata for caches that need none (L1s). */
struct NoMeta
{};

/** A set-associative array of coherence lines. */
template <typename Meta = NoMeta>
class CacheArray
{
  public:
    struct Line
    {
        // Field order packs the line into 24 bytes (u64s first, then the
        // state byte next to the metadata) — the arrays dwarf the host
        // LLC, so bytes per line are bytes per miss.
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        CacheState state = CacheState::I;
        Meta meta{};
    };

    /**
     * @param total_lines capacity in lines (must be divisible by ways).
     * @param ways        associativity.
     * @throws ConfigError when the geometry is invalid (shared check
     *         with cache::validate(HierarchyConfig)).
     */
    CacheArray(std::uint64_t total_lines, int ways)
        : ways_(ways > 0 ? ways : 1),
          numSets_(ways > 0 ? total_lines / static_cast<std::uint64_t>(ways)
                            : 0)
    {
        throwIfInvalid(
            validateArrayGeometry("CacheArray", total_lines, ways));
        // Every stock configuration has a power-of-two set count, so the
        // per-access set index can be a mask instead of a 64-bit modulo
        // (which sat high in the cycle-loop profile).  Odd set counts
        // keep the modulo path; the mapping is identical either way.
        pow2Sets_ = (numSets_ & (numSets_ - 1)) == 0;
        setMask_ = numSets_ - 1;
        lines_.resize(total_lines);
        tags_.resize(total_lines, 0);
    }

    std::uint64_t numSets() const { return numSets_; }
    int ways() const { return ways_; }
    std::uint64_t capacityLines() const { return lines_.size(); }

    /** Find a valid line for `line_addr`; nullptr on miss. */
    Line *
    find(std::uint64_t line_addr)
    {
        // Scan the densely packed tag shadow first: a set's tags span one
        // or two cache lines, versus one line per way when striding over
        // the full Line records.  The arrays together exceed the host
        // LLC, so touched bytes per lookup are what this costs.  A tag
        // hit still checks the authoritative state — callers invalidate
        // lines by writing `state` directly, which leaves a stale shadow
        // tag behind (and possibly a second, valid copy in another way),
        // so a stale match must not end the scan.
        const std::uint64_t base = setOf(line_addr) *
                                   static_cast<std::uint64_t>(ways_);
        for (int w = 0; w < ways_; ++w) {
            if (tags_[base + static_cast<std::uint64_t>(w)] != line_addr)
                continue;
            Line &line = lines_[base + static_cast<std::uint64_t>(w)];
            if (isValid(line.state))
                return &line;
        }
        return nullptr;
    }

    const Line *
    find(std::uint64_t line_addr) const
    {
        return const_cast<CacheArray *>(this)->find(line_addr);
    }

    /** Update the LRU stamp on a touch. */
    void
    touch(Line &line)
    {
        line.lastUse = ++useClock_;
    }

    /**
     * Pick the victim way for `line_addr`: an invalid way if one exists,
     * otherwise the LRU way.  The caller must handle the eviction of a
     * valid victim (writeback, probes) before overwriting it.
     */
    Line &
    victim(std::uint64_t line_addr)
    {
        const std::uint64_t set = setOf(line_addr);
        Line *lru = &lines_[set * ways_];
        for (int w = 0; w < ways_; ++w) {
            Line &line = lines_[set * ways_ + w];
            if (!isValid(line.state))
                return line;
            if (line.lastUse < lru->lastUse)
                lru = &line;
        }
        return *lru;
    }

    /**
     * Like victim(), but avoids lines for which `busy(tag)` returns true
     * (e.g. lines with an in-flight transaction).  Falls back to the
     * plain LRU victim when every valid way is busy.
     */
    template <typename BusyPred>
    Line &
    victimWhere(std::uint64_t line_addr, BusyPred busy)
    {
        // Probe candidates in LRU order and stop at the first non-busy
        // one.  The LRU stamps are unique (useClock_ strictly
        // increases), so "first non-busy in ascending lastUse order" is
        // exactly "least-recently-used non-busy way" — the same line
        // the old every-way scan picked — while the busy predicate
        // (typically an MSHR scan) usually runs once instead of per way.
        const std::uint64_t set = setOf(line_addr);
        Line *const base = &lines_[set * static_cast<std::uint64_t>(ways_)];
        for (int w = 0; w < ways_; ++w) {
            if (!isValid(base[w].state))
                return base[w];
        }
        bool tried[64] = {};
        PEARL_ASSERT(ways_ <= 64);
        for (int round = 0; round < ways_; ++round) {
            Line *lru = nullptr;
            int lru_w = 0;
            for (int w = 0; w < ways_; ++w) {
                if (tried[w])
                    continue;
                if (!lru || base[w].lastUse < lru->lastUse) {
                    lru = &base[w];
                    lru_w = w;
                }
            }
            if (!busy(lru->tag))
                return *lru;
            tried[lru_w] = true;
        }
        return victim(line_addr); // every valid way is busy: plain LRU
    }

    /**
     * Install `line_addr` into `line` with `state`, resetting metadata and
     * touching LRU.  `line` must come from victim() for the same address.
     */
    void
    install(Line &line, std::uint64_t line_addr, CacheState state)
    {
        line.tag = line_addr;
        tags_[static_cast<std::size_t>(&line - lines_.data())] = line_addr;
        line.state = state;
        line.meta = Meta{};
        touch(line);
    }

    /** Invalidate every line (between benchmark phases). */
    void
    reset()
    {
        for (auto &line : lines_)
            line = Line{};
        tags_.assign(tags_.size(), 0);
        useClock_ = 0;
    }

    /** Count valid lines (tests / occupancy introspection). */
    std::uint64_t
    validLines() const
    {
        std::uint64_t n = 0;
        for (const auto &line : lines_) {
            if (isValid(line.state))
                ++n;
        }
        return n;
    }

  private:
    std::uint64_t
    setOf(std::uint64_t line_addr) const
    {
        return pow2Sets_ ? (line_addr & setMask_) : (line_addr % numSets_);
    }

    int ways_;
    std::uint64_t numSets_;
    std::uint64_t setMask_ = 0;
    bool pow2Sets_ = false;
    std::vector<Line> lines_;
    /** Shadow of each line's tag, written only by install(); see find().
     *  Entries for invalid lines are stale, never cleared. */
    std::vector<std::uint64_t> tags_;
    std::uint64_t useClock_ = 0;
};

} // namespace cache
} // namespace pearl

#endif // PEARL_CACHE_CACHE_ARRAY_HPP
