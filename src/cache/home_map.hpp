/**
 * @file
 * Address-to-home mapping for the banked shared L3.
 *
 * The 8 MB L3 is split into 16 bank slices, one at each cluster router
 * (Figure 1b shows an L3 slice per tile); cache lines are hashed across
 * the banks (Fibonacci hashing breaks up the strided private regions).
 * The 17th node hosts the two memory controllers.
 */

#ifndef PEARL_CACHE_HOME_MAP_HPP
#define PEARL_CACHE_HOME_MAP_HPP

#include <cstdint>

#include "sim/packet.hpp"

namespace pearl {
namespace cache {

/** Maps line addresses to their home L3 bank. */
struct HomeMap
{
    int numBanks = 16;
    sim::NodeId memoryNode = 16;

    /** Home bank (== router/node id) of a line address. */
    sim::NodeId
    homeOf(std::uint64_t line_addr) const
    {
        return static_cast<sim::NodeId>(
            (line_addr * 0x9E3779B97F4A7C15ULL >> 32) %
            static_cast<std::uint64_t>(numBanks));
    }
};

} // namespace cache
} // namespace pearl

#endif // PEARL_CACHE_HOME_MAP_HPP
