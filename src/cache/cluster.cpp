#include "cache/cluster.hpp"

#include "common/log.hpp"

namespace pearl {
namespace cache {

using sim::CoherenceOp;
using sim::CoreType;
using sim::Cycle;
using sim::MsgClass;
using sim::Packet;

namespace {

/** L1-miss request class for an L1 slot. */
MsgClass
l1RequestClass(CoreType t, bool instr)
{
    if (t == CoreType::GPU)
        return MsgClass::ReqGpuL1;
    return instr ? MsgClass::ReqCpuL1I : MsgClass::ReqCpuL1D;
}

/** L2->L1 fill response class. */
MsgClass
l1ResponseClass(CoreType t, bool instr)
{
    if (t == CoreType::GPU)
        return MsgClass::RespGpuL1;
    return instr ? MsgClass::RespCpuL1I : MsgClass::RespCpuL1D;
}

MsgClass
l2DownRequestClass(CoreType t)
{
    return t == CoreType::CPU ? MsgClass::ReqCpuL2Down
                              : MsgClass::ReqGpuL2Down;
}

MsgClass
l2DownResponseClass(CoreType t)
{
    return t == CoreType::CPU ? MsgClass::RespCpuL2Down
                              : MsgClass::RespGpuL2Down;
}

MsgClass
l2UpRequestClass(CoreType t)
{
    return t == CoreType::CPU ? MsgClass::ReqCpuL2Up : MsgClass::ReqGpuL2Up;
}

MsgClass
l2UpResponseClass(CoreType t)
{
    return t == CoreType::CPU ? MsgClass::RespCpuL2Up
                              : MsgClass::RespGpuL2Up;
}

} // namespace

ClusterNode::ClusterNode(int id, const HomeMap &home,
                         const HierarchyConfig &cfg,
                         const traffic::BenchmarkProfile &cpu_prof,
                         const traffic::BenchmarkProfile &gpu_prof, Rng rng,
                         const traffic::GlobalPhase *cpu_phase,
                         const traffic::GlobalPhase *gpu_phase)
    : id_(id), home_(home), cfg_(cfg),
      cpuL2_(cfg.cpuL2Lines, cfg.l2Ways), gpuL2_(cfg.gpuL2Lines, cfg.l2Ways)
{
    const int cpu_cores = cfg.cpuCoresPerCluster;
    const int gpu_cus = cfg.gpuCusPerCluster;

    // Global core ids keep private address regions disjoint across the
    // whole chip.
    for (int c = 0; c < cpu_cores; ++c) {
        cpuCores_.emplace_back(cpu_prof, id * 64 + c, rng.fork(),
                               cpu_phase, cfg.sharedLines);
    }
    for (int g = 0; g < gpu_cus; ++g) {
        gpuCores_.emplace_back(gpu_prof, id * 64 + 32 + g, rng.fork(),
                               gpu_phase, cfg.sharedLines);
    }

    outstanding_[static_cast<int>(CoreType::CPU)].assign(cpu_cores, 0);
    outstanding_[static_cast<int>(CoreType::GPU)].assign(gpu_cus, 0);

    // L1 layout: [0..cpu) CPU L1I, [cpu..2cpu) CPU L1D, then GPU L1s.
    for (int c = 0; c < cpu_cores; ++c)
        l1s_.emplace_back(cfg.cpuL1ILines, cfg.l1Ways);
    for (int c = 0; c < cpu_cores; ++c)
        l1s_.emplace_back(cfg.cpuL1DLines, cfg.l1Ways);
    for (int g = 0; g < gpu_cus; ++g)
        l1s_.emplace_back(cfg.gpuL1Lines, cfg.l1Ways);

    mshr_[static_cast<int>(CoreType::CPU)].reserve(
        static_cast<std::size_t>(cfg.cpuL2MshrEntries));
    mshr_[static_cast<int>(CoreType::GPU)].reserve(
        static_cast<std::size_t>(cfg.gpuL2MshrEntries));
    events_.reserve(256);
}

ClusterNode::L1Array &
ClusterNode::l1Array(int l1_index)
{
    PEARL_ASSERT(l1_index >= 0 &&
                 l1_index < static_cast<int>(l1s_.size()));
    return l1s_[static_cast<std::size_t>(l1_index)];
}

ClusterNode::L2Array &
ClusterNode::l2Array(CoreType t)
{
    return t == CoreType::CPU ? cpuL2_ : gpuL2_;
}

int
ClusterNode::l1IndexFor(CoreType t, int core_slot, bool instr) const
{
    const int cpu_cores = cfg_.cpuCoresPerCluster;
    if (t == CoreType::GPU)
        return 2 * cpu_cores + core_slot;
    return instr ? core_slot : cpu_cores + core_slot;
}

sim::CoreType
ClusterNode::l1Type(int l1_index) const
{
    return l1_index < 2 * cfg_.cpuCoresPerCluster ? CoreType::CPU
                                                  : CoreType::GPU;
}

bool
ClusterNode::isSharedAddr(std::uint64_t line_addr) const
{
    return line_addr >= (1ULL << 60);
}

std::uint64_t
ClusterNode::nextPacketId()
{
    // Cluster-unique ids: high bits carry the cluster, low bits a counter.
    return (static_cast<std::uint64_t>(id_ + 1) << 48) | ++packetSeq_;
}

void
ClusterNode::noteLocalRequest(MsgClass cls)
{
    if (!telemetry_)
        return;
    telemetry_->noteClass(cls);
    ++telemetry_->requestsSent;
    ++telemetry_->incomingFromCores;
}

void
ClusterNode::noteLocalResponse(MsgClass cls)
{
    if (!telemetry_)
        return;
    telemetry_->noteClass(cls);
    ++telemetry_->responsesSent;
    ++telemetry_->packetsToCore;
}

void
ClusterNode::sendNetwork(MsgClass cls, CoherenceOp op, std::uint64_t addr,
                         sim::NodeId dst, Cycle now)
{
    PEARL_ASSERT(sink_, "cluster not attached to a packet sink");
    Packet pkt;
    pkt.id = nextPacketId();
    pkt.msgClass = cls;
    pkt.op = op;
    pkt.dstUnit = sim::NodeUnit::L3Bank;
    pkt.src = id_;
    pkt.dst = dst;
    pkt.sizeBits =
        sim::carriesData(op) ? sim::kResponseBits : sim::kRequestBits;
    pkt.addr = addr;
    pkt.cycleCreated = now;
    sink_->send(std::move(pkt));
}

void
ClusterNode::tick(Cycle now)
{
    // Batch the issue draws before acting on them: the six xoshiro
    // streams are independent, so running the draws back to back lets
    // the out-of-order core overlap their serial state-update chains.
    // Per-generator draw order (and thus every stream) is unchanged,
    // and accesses are still serviced in core-index order.
    std::uint32_t fired = 0;
    for (std::size_t c = 0; c < cpuCores_.size(); ++c)
        fired |= static_cast<std::uint32_t>(cpuCores_[c].draw()) << c;
    for (std::size_t g = 0; g < gpuCores_.size(); ++g)
        fired |= static_cast<std::uint32_t>(gpuCores_[g].draw()) << (16 + g);
    if (fired) [[unlikely]] {
        for (std::size_t c = 0; c < cpuCores_.size(); ++c) {
            if (fired & (1u << c)) {
                const traffic::MemAccess acc = cpuCores_[c].generate();
                coreAccess(CoreType::CPU, static_cast<int>(c), acc, now);
            }
        }
        for (std::size_t g = 0; g < gpuCores_.size(); ++g) {
            if (fired & (1u << (16 + g))) {
                const traffic::MemAccess acc = gpuCores_[g].generate();
                coreAccess(CoreType::GPU, static_cast<int>(g), acc, now);
            }
        }
    }

    while (!events_.empty() && events_.top().due <= now) {
        const LocalEvent ev = events_.top();
        events_.pop();
        if (ev.kind == LocalEvent::Kind::L2Access) {
            if (ev.isRetry) {
                // Memoized MSHR-full retry.  Version match: no MSHR
                // entry was retired for this core type since the retry
                // was queued (and none can have been inserted while the
                // table stayed full), so re-running l2Access would take
                // the identical full-MSHR path (no stats, no state) and
                // requeue.  Version mismatch: an erase happened, but if
                // the table refilled and this address is still absent,
                // l2Access would again reach the full-MSHR path — the L2
                // line can only have been downgraded while the address
                // was outside the MSHR (only fills install or upgrade,
                // and fills require an entry), so the lookup cannot have
                // turned into a hit or an attach.  Either way requeue
                // directly with a fresh stamp, skipping the lookups.
                const int ti = static_cast<int>(ev.type);
                const int capacity = ev.type == sim::CoreType::CPU
                                         ? cfg_.cpuL2MshrEntries
                                         : cfg_.gpuL2MshrEntries;
                if (ev.mshrVersion == mshrVersion_[ti] ||
                    (static_cast<int>(mshr_[ti].size()) >= capacity &&
                     !mshr_[ti].contains(ev.addr))) {
                    LocalEvent retry = ev;
                    retry.due = now + 2 * cfg_.l2AccessCycles;
                    retry.mshrVersion = mshrVersion_[ti];
                    events_.push(retry);
                    continue;
                }
            }
            l2Access(ev, now);
        } else {
            completeFill(ev, now);
        }
    }
}

void
ClusterNode::coreAccess(CoreType type, int core_slot,
                        const traffic::MemAccess &acc, Cycle now)
{
    const int ti = static_cast<int>(type);
    ++stats_.accesses[ti];

    auto &outstanding = outstanding_[ti][static_cast<std::size_t>(core_slot)];
    const int limit = type == CoreType::CPU ? cfg_.cpuCoreMaxOutstanding
                                            : cfg_.gpuCoreMaxOutstanding;
    if (outstanding >= limit) {
        ++stats_.stalled[ti];
        return;
    }

    const int l1_index = l1IndexFor(type, core_slot, acc.instr);
    L1Array &l1 = l1Array(l1_index);
    auto *line = l1.find(acc.lineAddr);

    if (!acc.write) {
        if (line) {
            ++stats_.l1Hits[ti];
            l1.touch(*line);
            return;
        }
        ++stats_.l1Misses[ti];
    } else {
        // Write-through L1: the store always visits the L2; a present L1
        // copy is updated in place and stays valid.
        if (line) {
            ++stats_.l1Hits[ti];
            l1.touch(*line);
        } else {
            ++stats_.l1Misses[ti];
        }
    }

    ++outstanding;
    noteLocalRequest(l1RequestClass(type, acc.instr));
    events_.push(LocalEvent{now + cfg_.l1ToL2Cycles, acc.lineAddr, 0, type,
                            LocalEvent::Kind::L2Access,
                            static_cast<std::int8_t>(l1_index),
                            static_cast<std::int8_t>(core_slot), acc.write,
                            acc.instr, false});
}

void
ClusterNode::l2Access(const LocalEvent &ev, Cycle now)
{
    const int ti = static_cast<int>(ev.type);
    L2Array &l2 = l2Array(ev.type);
    auto *line = l2.find(ev.addr);

    if (line) {
        const AccessOutcome outcome = classifyAccess(line->state, ev.write);
        if (outcome == AccessOutcome::Hit) {
            ++stats_.l2Hits[ti];
            line->state = stateAfterHit(line->state, ev.write);
            l2.touch(*line);
            if (ev.write) {
                // Write-through stores complete at the L2; no L1 fill.
                --outstanding_[ti][static_cast<std::size_t>(ev.coreSlot)];
            } else {
                line->meta.l1Mask |=
                    static_cast<std::uint8_t>(1u << (ev.l1Index % 8));
                LocalEvent fill = ev;
                fill.kind = LocalEvent::Kind::Fill;
                fill.due = now + cfg_.l2AccessCycles;
                events_.push(fill);
            }
            return;
        }
        // UpgradeNeeded falls through to the miss path (keeps the data,
        // needs exclusivity).
    }

    auto &mshr = mshr_[ti];
    if (MshrEntry *attach = mshr.find(ev.addr)) {
        ++stats_.l2Misses[ti];
        attach->waiters.push_back(
            Waiter{ev.l1Index, ev.coreSlot, ev.write, ev.instr});
        return;
    }

    const int capacity = ev.type == CoreType::CPU ? cfg_.cpuL2MshrEntries
                                                  : cfg_.gpuL2MshrEntries;
    if (static_cast<int>(mshr.size()) >= capacity) {
        // MSHR full: retry the access shortly.  Retries are not counted
        // as additional misses.  The version stamp lets tick() requeue
        // the retry without repeating this lookup while the MSHR state
        // is unchanged.
        LocalEvent retry = ev;
        retry.due = now + 2 * cfg_.l2AccessCycles;
        retry.mshrVersion = mshrVersion_[ti];
        retry.isRetry = true;
        events_.push(retry);
        return;
    }
    ++stats_.l2Misses[ti];

    MshrEntry entry;
    entry.write = ev.write;
    entry.nonCoherent = ev.type == CoreType::GPU && ev.write &&
                        !isSharedAddr(ev.addr);
    const bool non_coherent = entry.nonCoherent;
    entry.waiters.push_back(
        Waiter{ev.l1Index, ev.coreSlot, ev.write, ev.instr});
    // No version bump here: a queued retry exists only because this table
    // was full, and while it is full this insert path cannot execute, so
    // an insert can never be the first event that changes a retry's
    // outcome — the erase that made room for it already bumped.
    mshr.insertNew(ev.addr, std::move(entry));

    const CoherenceOp op = (ev.write && !non_coherent)
                               ? CoherenceOp::ReadExcl
                               : CoherenceOp::Read;
    sendNetwork(l2DownRequestClass(ev.type), op, ev.addr,
                home_.homeOf(ev.addr), now);
}

void
ClusterNode::completeFill(const LocalEvent &ev, Cycle now)
{
    (void)now;
    L1Array &l1 = l1Array(ev.l1Index);
    if (!l1.find(ev.addr)) {
        auto &victim = l1.victim(ev.addr);
        l1.install(victim, ev.addr, CacheState::S);
    }
    noteLocalResponse(l1ResponseClass(ev.type, ev.instr));
    --outstanding_[static_cast<int>(ev.type)]
                  [static_cast<std::size_t>(ev.coreSlot)];
}

void
ClusterNode::evictL2Victim(CoreType type, L2Array::Line &victim, Cycle now)
{
    if (!isValid(victim.state))
        return;

    // Invalidate local L1 copies via L2-up probes (local packets).
    if (victim.meta.l1Mask) {
        for (int bit = 0; bit < 8; ++bit) {
            if (!(victim.meta.l1Mask & (1u << bit)))
                continue;
            const int l1_index = bit;
            if (l1_index >= static_cast<int>(l1s_.size()))
                continue;
            if (auto *l1_line = l1Array(l1_index).find(victim.tag))
                l1_line->state = CacheState::I;
            noteLocalRequest(l2UpRequestClass(type));
            noteLocalResponse(l2UpResponseClass(type));
        }
        victim.meta.l1Mask = 0;
    }

    if (writebackNeeded(victim.state)) {
        ++stats_.writebacks[static_cast<int>(type)];
        sendNetwork(l2DownRequestClass(type), CoherenceOp::Writeback,
                    victim.tag, home_.homeOf(victim.tag), now);
    }
    victim.state = CacheState::I;
}

void
ClusterNode::handleFillResponse(const Packet &pkt, Cycle now)
{
    const CoreType type = sim::coreTypeOf(pkt.msgClass);
    const int ti = static_cast<int>(type);
    auto &mshr = mshr_[ti];
    MshrEntry *found = mshr.find(pkt.addr);
    if (!found) {
        warn("cluster ", id_, ": stray fill for addr ", pkt.addr);
        return;
    }
    MshrEntry entry = std::move(*found);
    mshr.erase(pkt.addr);
    ++mshrVersion_[ti];

    const bool exclusive = pkt.op == CoherenceOp::DataExcl;
    if (entry.write && !entry.nonCoherent) {
        PEARL_ASSERT(exclusive, "coherent store fill must grant exclusivity");
    }

    const CacheState fill = fillState(entry.write, exclusive,
                                      entry.nonCoherent);
    L2Array &l2 = l2Array(type);
    auto *line = l2.find(pkt.addr);
    if (line) {
        // Upgrade completion: the data was already here; only the
        // permission changes.
        line->state = fill;
        l2.touch(*line);
    } else {
        auto &victim = l2.victim(pkt.addr);
        evictL2Victim(type, victim, now);
        l2.install(victim, pkt.addr, fill);
        line = &victim;
    }

    for (const Waiter &w : entry.waiters) {
        if (w.write) {
            if (!exclusive && !entry.nonCoherent) {
                // The grant was shared but a store is waiting: retry the
                // store, which will raise an upgrade (ReadExcl) — this is
                // exactly the extra coherence traffic real NMOESI incurs.
                events_.push(LocalEvent{now + cfg_.l2AccessCycles, pkt.addr,
                                        0, type, LocalEvent::Kind::L2Access,
                                        static_cast<std::int8_t>(w.l1Index),
                                        static_cast<std::int8_t>(w.coreSlot),
                                        true, w.instr, false});
            } else {
                --outstanding_[ti][static_cast<std::size_t>(w.coreSlot)];
            }
        } else {
            line->meta.l1Mask |=
                static_cast<std::uint8_t>(1u << (w.l1Index % 8));
            events_.push(LocalEvent{now + cfg_.l2AccessCycles, pkt.addr, 0,
                                    type, LocalEvent::Kind::Fill,
                                    static_cast<std::int8_t>(w.l1Index),
                                    static_cast<std::int8_t>(w.coreSlot),
                                    false, w.instr, false});
        }
    }
}

void
ClusterNode::handleProbe(const Packet &pkt, Cycle now)
{
    ++stats_.probesReceived;
    const CoreType type = sim::coreTypeOf(pkt.msgClass);
    const ProbeType probe = pkt.op == CoherenceOp::ProbeShare
                                ? ProbeType::Share
                                : ProbeType::Invalidate;
    L2Array &l2 = l2Array(type);
    auto *line = l2.find(pkt.addr);

    bool supply = false;
    if (line) {
        const ProbeOutcome outcome = applyProbe(line->state, probe);
        supply = outcome.supplyData;
        if (probe == ProbeType::Invalidate && line->meta.l1Mask) {
            for (int bit = 0; bit < 8; ++bit) {
                if (!(line->meta.l1Mask & (1u << bit)))
                    continue;
                if (bit < static_cast<int>(l1s_.size())) {
                    if (auto *l1_line = l1Array(bit).find(pkt.addr))
                        l1_line->state = CacheState::I;
                }
                noteLocalRequest(l2UpRequestClass(type));
                noteLocalResponse(l2UpResponseClass(type));
            }
            line->meta.l1Mask = 0;
        }
        line->state = outcome.next;
    }

    // The probe reply goes back to the bank that issued the probe.
    sendNetwork(l2DownResponseClass(type),
                supply ? CoherenceOp::Data : CoherenceOp::Ack, pkt.addr,
                pkt.src, now);
}

void
ClusterNode::deliver(const Packet &pkt, Cycle now)
{
    switch (pkt.op) {
      case CoherenceOp::Data:
      case CoherenceOp::DataExcl:
        handleFillResponse(pkt, now);
        break;
      case CoherenceOp::ProbeShare:
      case CoherenceOp::ProbeInv:
        handleProbe(pkt, now);
        break;
      default:
        warn("cluster ", id_, ": unexpected op ", sim::toString(pkt.op));
        break;
    }
}

} // namespace cache
} // namespace pearl
