/**
 * @file
 * The cluster node: 2 CPU cores + 4 GPU compute units, their private L1s,
 * the per-type shared L2s, MSHRs and the local router-side traffic.
 *
 * A cluster is the unit the PEARL checkerboard attaches to one router
 * (Figure 1b).  Core demand comes from traffic::CoreDemandGenerator;
 * memory accesses flow L1 -> L2 -> (network) -> L3.  Local L1<->L2 packets
 * cross only the router crossbar and are recorded in the router telemetry
 * (they are features of the ML model) without occupying the optical link.
 */

#ifndef PEARL_CACHE_CLUSTER_HPP
#define PEARL_CACHE_CLUSTER_HPP

#include <cstdint>
#include <vector>

#include "cache/addr_map.hpp"
#include "cache/cache_array.hpp"
#include "cache/config.hpp"
#include "cache/home_map.hpp"
#include "cache/nmoesi.hpp"
#include "common/rng.hpp"
#include "sim/min_heap.hpp"
#include "sim/packet.hpp"
#include "sim/sink.hpp"
#include "sim/telemetry.hpp"
#include "traffic/generator.hpp"

namespace pearl {
namespace cache {

/** Aggregate hit/miss statistics for one cluster. */
struct ClusterStats
{
    std::uint64_t accesses[sim::kNumCoreTypes] = {};
    std::uint64_t stalled[sim::kNumCoreTypes] = {};
    std::uint64_t l1Hits[sim::kNumCoreTypes] = {};
    std::uint64_t l1Misses[sim::kNumCoreTypes] = {};
    std::uint64_t l2Hits[sim::kNumCoreTypes] = {};
    std::uint64_t l2Misses[sim::kNumCoreTypes] = {};
    std::uint64_t writebacks[sim::kNumCoreTypes] = {};
    std::uint64_t probesReceived = 0;

    double
    l1MissRate(sim::CoreType t) const
    {
        const auto i = static_cast<int>(t);
        const auto total = l1Hits[i] + l1Misses[i];
        return total ? static_cast<double>(l1Misses[i]) /
                           static_cast<double>(total)
                     : 0.0;
    }

    double
    l2MissRate(sim::CoreType t) const
    {
        const auto i = static_cast<int>(t);
        const auto total = l2Hits[i] + l2Misses[i];
        return total ? static_cast<double>(l2Misses[i]) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** One CPU+GPU cluster with its cache hierarchy. */
class ClusterNode
{
  public:
    /**
     * @param id       cluster id == network node id of its router.
     * @param home     address-to-L3-bank mapping.
     * @param cfg      hierarchy configuration.
     * @param cpu_prof benchmark profile for the CPU cores.
     * @param gpu_prof benchmark profile for the GPU compute units.
     * @param rng      forked stream owned by this cluster.
     * @param cpu_phase / gpu_phase optional chip-wide program phases.
     */
    ClusterNode(int id, const HomeMap &home, const HierarchyConfig &cfg,
                const traffic::BenchmarkProfile &cpu_prof,
                const traffic::BenchmarkProfile &gpu_prof, Rng rng,
                const traffic::GlobalPhase *cpu_phase = nullptr,
                const traffic::GlobalPhase *gpu_phase = nullptr);

    /** Wire the packet sink (network) and telemetry before running. */
    void
    attach(sim::PacketSink *sink, sim::RouterTelemetry *telemetry)
    {
        sink_ = sink;
        telemetry_ = telemetry;
    }

    /** Advance one network cycle: demand generation + due local events. */
    void tick(sim::Cycle now);

    /** Handle a packet the network delivered to this cluster's router. */
    void deliver(const sim::Packet &pkt, sim::Cycle now);

    int id() const { return id_; }
    const ClusterStats &stats() const { return stats_; }

    /** Outstanding MSHR entries for one core type (tests). */
    std::size_t
    mshrOccupancy(sim::CoreType t) const
    {
        return mshr_[static_cast<int>(t)].size();
    }

    /** True when no local event or outstanding miss is pending. */
    bool
    quiescent() const
    {
        return events_.empty() && mshr_[0].empty() && mshr_[1].empty();
    }

  private:
    struct L2Meta
    {
        std::uint8_t l1Mask = 0; //!< which local L1s hold this line
    };

    using L1Array = CacheArray<NoMeta>;
    using L2Array = CacheArray<L2Meta>;

    /** A core request waiting on an outstanding miss. */
    struct Waiter
    {
        int l1Index;    //!< local L1 slot (see l1ArrayFor)
        int coreSlot;   //!< per-type core index for outstanding accounting
        bool write;
        bool instr;
    };

    /** One outstanding L2 miss. */
    struct MshrEntry
    {
        bool write = false;
        bool nonCoherent = false;
        std::vector<Waiter> waiters;
    };

    /** Deferred local work (L1->L2 hop, L2 array access, fills).
     *  Deliberately packed to 32 bytes: the event heap is churned every
     *  cycle (MSHR-full retries circulate through it), and sift cost is
     *  proportional to element size.  The comparator is unchanged, so
     *  heap order — and therefore behaviour — is unaffected. */
    struct LocalEvent
    {
        sim::Cycle due;
        std::uint64_t addr;
        /** MSHR-full retry memoization (see tick()): the mshrVersion_
         *  observed when the retry was queued.  Ignored unless
         *  isRetry. */
        std::uint32_t mshrVersion;
        sim::CoreType type;
        enum class Kind : std::uint8_t { L2Access, Fill } kind;
        std::int8_t l1Index;
        std::int8_t coreSlot;
        bool write;
        bool instr;
        bool isRetry;

        bool
        operator>(const LocalEvent &o) const
        {
            return due > o.due;
        }
    };
    static_assert(sizeof(LocalEvent) <= 32,
                  "LocalEvent grew; the event heap is hot");

    // Demand + L1 ----------------------------------------------------------
    void coreAccess(sim::CoreType type, int core_slot,
                    const traffic::MemAccess &acc, sim::Cycle now);
    void l2Access(const LocalEvent &ev, sim::Cycle now);
    void completeFill(const LocalEvent &ev, sim::Cycle now);

    // Coherence ------------------------------------------------------------
    void handleFillResponse(const sim::Packet &pkt, sim::Cycle now);
    void handleProbe(const sim::Packet &pkt, sim::Cycle now);
    void evictL2Victim(sim::CoreType type, L2Array::Line &victim,
                       sim::Cycle now);

    // Helpers ----------------------------------------------------------
    L1Array &l1Array(int l1_index);
    L2Array &l2Array(sim::CoreType t);
    int l1IndexFor(sim::CoreType t, int core_slot, bool instr) const;
    sim::CoreType l1Type(int l1_index) const;
    bool isSharedAddr(std::uint64_t line_addr) const;
    void sendNetwork(sim::MsgClass cls, sim::CoherenceOp op,
                     std::uint64_t addr, sim::NodeId dst, sim::Cycle now);
    void noteLocalRequest(sim::MsgClass cls);
    void noteLocalResponse(sim::MsgClass cls);
    std::uint64_t nextPacketId();

    int id_;
    HomeMap home_;
    HierarchyConfig cfg_;
    sim::PacketSink *sink_ = nullptr;
    sim::RouterTelemetry *telemetry_ = nullptr;

    std::vector<traffic::CoreDemandGenerator> cpuCores_;
    std::vector<traffic::CoreDemandGenerator> gpuCores_;
    std::vector<int> outstanding_[sim::kNumCoreTypes];

    // L1 layout: [0..1] CPU L1I, [2..3] CPU L1D, [4..7] GPU L1.
    std::vector<L1Array> l1s_;
    L2Array cpuL2_;
    L2Array gpuL2_;

    AddrMap<MshrEntry> mshr_[sim::kNumCoreTypes];

    /**
     * Per-type MSHR generation counter, bumped whenever an MSHR entry is
     * erased — the only event that can change a queued MSHR-full retry's
     * outcome.  A retry exists only because the table was full; while it
     * stays full no insert can execute, so capacity can't free and no
     * same-address entry can appear without an erase first (fills erase
     * before they install, so every L2 install bumps too).  A retry
     * event whose stamp still matches is requeued in O(1) without
     * re-running the L2 lookup: provably the same behaviour, since the
     * full-MSHR path touches no stats and probes can only downgrade line
     * states (they never turn a queued retry's miss into a hit).
     */
    std::uint32_t mshrVersion_[sim::kNumCoreTypes] = {0, 0};

    sim::MinHeap<LocalEvent> events_;

    ClusterStats stats_;
    std::uint64_t packetSeq_ = 0;
};

} // namespace cache
} // namespace pearl

#endif // PEARL_CACHE_CLUSTER_HPP
