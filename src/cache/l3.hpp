/**
 * @file
 * An L3 bank + directory slice.
 *
 * The 8 MB shared L3 is banked across the cluster routers (one slice
 * per tile, Figure 1b); each bank owns the lines the HomeMap hashes to it
 * and runs a full-map directory over up to kMaxClusters clusters
 * (SharerMask holds the sharer set).  Transactions are
 * serialised per line with an MSHR: reads may require a share-probe of
 * the owning cluster, read-for-ownership invalidates every holder, and
 * bank misses fetch from the memory-controller node over the network
 * (Request L3 / Response L3 in Table III terms).
 */

#ifndef PEARL_CACHE_L3_HPP
#define PEARL_CACHE_L3_HPP

#include <cstdint>
#include <vector>

#include "cache/addr_map.hpp"
#include "cache/cache_array.hpp"
#include "cache/config.hpp"
#include "cache/home_map.hpp"
#include "cache/sharer_mask.hpp"
#include "sim/min_heap.hpp"
#include "sim/packet.hpp"
#include "sim/sink.hpp"
#include "sim/telemetry.hpp"

namespace pearl {
namespace cache {

/** L3 bank / directory statistics. */
struct L3Stats
{
    std::uint64_t reads = 0;
    std::uint64_t readExcls = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t memoryReads = 0;
    std::uint64_t memoryWrites = 0;
    std::uint64_t probesSent = 0;
    std::uint64_t invalidationsSent = 0;

    double
    hitRate() const
    {
        const auto total = hits + misses;
        return total ? static_cast<double>(hits) /
                           static_cast<double>(total)
                     : 0.0;
    }

    L3Stats &
    operator+=(const L3Stats &o)
    {
        reads += o.reads;
        readExcls += o.readExcls;
        writebacks += o.writebacks;
        hits += o.hits;
        misses += o.misses;
        memoryReads += o.memoryReads;
        memoryWrites += o.memoryWrites;
        probesSent += o.probesSent;
        invalidationsSent += o.invalidationsSent;
        return *this;
    }
};

/** One L3 bank slice with its directory. */
class L3Bank
{
  public:
    /**
     * @param node_id      router this bank lives at.
     * @param num_clusters directory width.
     * @param cfg          hierarchy configuration (total L3 size; the
     *                     bank holds 1/numBanks of it).
     * @param map          home mapping (for the memory node id).
     */
    L3Bank(sim::NodeId node_id, int num_clusters,
           const HierarchyConfig &cfg, const HomeMap &map);

    void
    attach(sim::PacketSink *sink, sim::RouterTelemetry *telemetry)
    {
        sink_ = sink;
        telemetry_ = telemetry;
    }

    /** Advance one cycle: run due L3 array accesses. */
    void tick(sim::Cycle now);

    /** Handle a packet addressed to this bank. */
    void deliver(const sim::Packet &pkt, sim::Cycle now);

    const L3Stats &stats() const { return stats_; }
    std::size_t mshrOccupancy() const { return mshr_.size(); }

    /** True when no transaction or timed event is pending. */
    bool
    quiescent() const
    {
        return mshr_.empty() && events_.empty();
    }

  private:
    /** Directory metadata per line. */
    struct DirMeta
    {
        SharerMask sharers;        //!< clusters with a copy
        std::int16_t owner = -1;   //!< cluster holding M/O/N, or -1
        bool dirty = false;        //!< bank data newer than memory
    };

    using L3Array = CacheArray<DirMeta>;

    /** A queued coherence request from a cluster. */
    struct PendingReq
    {
        int cluster;
        sim::CoherenceOp op; //!< Read or ReadExcl
        sim::CoreType type;
        std::uint64_t reqId;
    };

    /** Per-line transaction state. */
    struct Transaction
    {
        enum class Phase
        {
            Lookup,       //!< waiting for the L3 array access
            MemFetch,     //!< waiting for the memory node's response
            ProbeOwner,   //!< waiting for the owner's share-probe reply
            Invalidating, //!< waiting for invalidation acks
        };

        Phase phase = Phase::Lookup;
        /** Head is being serviced.  A vector, not a deque: transactions
         *  are constructed for every in-flight line and a deque's
         *  eagerly-allocated chunk map dominated the allocation profile;
         *  the queue rarely exceeds a couple of requesters, so the
         *  O(size) pop-front is free in practice. */
        std::vector<PendingReq> requests;
        int pendingAcks = 0;
    };

    struct TimedEvent
    {
        sim::Cycle due;
        std::uint64_t addr;

        bool
        operator>(const TimedEvent &o) const
        {
            return due > o.due;
        }
    };

    void startLookup(std::uint64_t addr, sim::Cycle now);
    void runLookup(std::uint64_t addr, sim::Cycle now);
    void serviceHead(std::uint64_t addr, L3Array::Line &line,
                     sim::Cycle now);
    void finishHead(std::uint64_t addr, L3Array::Line &line,
                    bool exclusive, sim::Cycle now);
    void handleProbeReply(const sim::Packet &pkt, sim::Cycle now);
    void handleWriteback(const sim::Packet &pkt, sim::Cycle now);
    void handleMemResponse(const sim::Packet &pkt, sim::Cycle now);
    void evictVictim(L3Array::Line &victim, sim::Cycle now);
    void sendToCluster(int cluster, sim::CoreType type, sim::CoherenceOp op,
                       std::uint64_t addr, sim::Cycle now);
    void sendToMemory(sim::CoherenceOp op, std::uint64_t addr,
                      sim::Cycle now);

    sim::NodeId nodeId_;
    int numClusters_;
    HierarchyConfig cfg_;
    sim::NodeId memoryNode_;
    sim::PacketSink *sink_ = nullptr;
    sim::RouterTelemetry *telemetry_ = nullptr;

    L3Array l3_;
    AddrMap<Transaction> mshr_;
    sim::MinHeap<TimedEvent> events_;

    L3Stats stats_;
    std::uint64_t packetSeq_ = 0;
};

} // namespace cache
} // namespace pearl

#endif // PEARL_CACHE_L3_HPP
