#include "core/system.hpp"

#include <cstdlib>

#include "common/log.hpp"

namespace pearl {
namespace core {

using sim::Cycle;
using sim::NodeUnit;
using sim::Packet;

namespace {

/** PEARL_FAST_FORWARD gate: on unless the variable is exactly "0". */
bool
envFastForwardEnabled()
{
    const char *v = std::getenv("PEARL_FAST_FORWARD");
    return !(v && v[0] == '0' && v[1] == '\0');
}

/** True when a profile's generators can never issue (both rates zero). */
bool
profileNeverIssues(const traffic::BenchmarkProfile &p)
{
    return Rng::chanceThreshold(p.accessRateOn) == 0 &&
           Rng::chanceThreshold(p.accessRateOff) == 0;
}

} // namespace

HeteroSystem::HeteroSystem(sim::Network &network,
                           const traffic::BenchmarkPair &pair,
                           const SystemConfig &cfg,
                           TelemetryLookup telemetry)
    : network_(network), cfg_(cfg), telemetry_(std::move(telemetry))
{
    // Cluster count decouples from L3 banking: cfg.clusters == 0 keeps
    // the legacy one-bank-per-cluster coupling; banks always sit at the
    // first `numBanks` cluster routers.
    const int clusters = cfg.clusters > 0 ? cfg.clusters
                                          : cfg.home.numBanks;
    const int banks = cfg.home.numBanks;
    PEARL_ASSERT(banks <= clusters,
                 "more L3 banks than cluster routers to host them");
    PEARL_ASSERT(network.numNodes() >= clusters + 1,
                 "network too small for the cluster count");
    Rng rng(cfg.seed);

    // Chip-wide program phases: every CPU core shares one, every GPU CU
    // shares the other (kernel launches and barriers are global).
    cpuPhase_ = std::make_unique<traffic::GlobalPhase>(pair.cpu, rng.fork());
    gpuPhase_ = std::make_unique<traffic::GlobalPhase>(pair.gpu, rng.fork());

    outbox_.resize(static_cast<std::size_t>(clusters + 1));
    clusters_.reserve(static_cast<std::size_t>(clusters));
    banks_.reserve(static_cast<std::size_t>(banks));
    for (int c = 0; c < clusters; ++c) {
        auto *tel = telemetry_ ? telemetry_(c) : nullptr;
        clusters_.push_back(std::make_unique<cache::ClusterNode>(
            c, cfg.home, cfg.hierarchy, pair.cpu, pair.gpu, rng.fork(),
            cpuPhase_.get(), gpuPhase_.get()));
        clusters_.back()->attach(this, tel);
    }
    for (int b = 0; b < banks; ++b) {
        banks_.push_back(std::make_unique<cache::L3Bank>(
            b, clusters, cfg.hierarchy, cfg.home));
        banks_.back()->attach(this, telemetry_ ? telemetry_(b) : nullptr);
    }
    memory_ = std::make_unique<cache::MemoryNode>(
        cfg.home.memoryNode, cfg.hierarchy, cfg.memResponsesPerCycle);
    memory_->attach(this, telemetry_ ? telemetry_(cfg.home.memoryNode)
                                     : nullptr);

    fastForward_ = envFastForwardEnabled() &&
                   profileNeverIssues(pair.cpu) &&
                   profileNeverIssues(pair.gpu);
}

void
HeteroSystem::send(Packet &&pkt)
{
    PEARL_ASSERT(pkt.src >= 0 &&
                 pkt.src < static_cast<int>(outbox_.size()));
    if (pkt.dst == pkt.src) {
        // Same-router traffic (a cluster and its own L3 bank) crosses
        // only the local crossbar: fixed latency, no optical link.  It
        // still shows up in the router's telemetry.
        if (telemetry_) {
            if (auto *tel = telemetry_(pkt.src)) {
                tel->noteClass(pkt.msgClass);
                if (pkt.request())
                    ++tel->requestsSent;
                else
                    ++tel->responsesSent;
            }
        }
        const Cycle now = network_.cycle();
        if (staging_) {
            // Parallel tick region: park the hop in the sender's own
            // staging lane; foldLocalStage() replays the serial push
            // order at the barrier.
            localStage_[static_cast<std::size_t>(pkt.src)].push_back(
                LocalHop{now + cfg_.localHopCycles, std::move(pkt)});
        } else {
            localHops_.push(LocalHop{now + cfg_.localHopCycles,
                                     std::move(pkt)});
        }
        return;
    }
    outbox_[static_cast<std::size_t>(pkt.src)].push_back(std::move(pkt));
}

void
HeteroSystem::dispatch(const Packet &pkt, Cycle now)
{
    switch (pkt.dstUnit) {
      case NodeUnit::Cluster:
        PEARL_ASSERT(pkt.dst < static_cast<int>(clusters_.size()));
        clusters_[static_cast<std::size_t>(pkt.dst)]->deliver(pkt, now);
        break;
      case NodeUnit::L3Bank:
        PEARL_ASSERT(pkt.dst < static_cast<int>(banks_.size()));
        banks_[static_cast<std::size_t>(pkt.dst)]->deliver(pkt, now);
        break;
      case NodeUnit::Memory:
        PEARL_ASSERT(pkt.dst == cfg_.home.memoryNode);
        memory_->deliver(pkt, now);
        break;
    }
}

void
HeteroSystem::stepOnce()
{
    const Cycle now = network_.cycle();

    // 0. Advance the chip-wide program phases.
    cpuPhase_->tick();
    gpuPhase_->tick();

    // 1. Node models generate demand and process due internal events.
    // With a pool installed, cluster ticks and bank ticks run as two
    // barrier-separated sharded regions (cluster c and bank c share
    // node c's outbox/telemetry, and the serial order is clusters
    // first); every node owns a private RNG fork, the global phases
    // are only read (on()), and cross-node effects are confined to the
    // sender's own outbox and staging lane — so the fold reproduces
    // the serial state bit for bit.
    if (pool_) {
        staging_ = true;
        tickNodesParallel(clusters_.size(), [&](std::size_t i) {
            clusters_[i]->tick(now);
        });
        staging_ = false;
        foldLocalStage();
        staging_ = true;
        tickNodesParallel(banks_.size(), [&](std::size_t i) {
            banks_[i]->tick(now);
        });
        staging_ = false;
        foldLocalStage();
    } else {
        for (auto &cluster : clusters_)
            cluster->tick(now);
        for (auto &bank : banks_)
            bank->tick(now);
    }
    memory_->tick(now);

    // 2. Due local (same-router) hops.
    while (!localHops_.empty() && localHops_.top().due <= now) {
        const Packet pkt = localHops_.top().pkt;
        localHops_.pop();
        dispatch(pkt, now);
    }

    // 3. Drain outboxes into the network until buffers push back.
    for (auto &box : outbox_) {
        while (!box.empty() && network_.inject(box.front()))
            box.pop_front();
    }

    // 4. One network cycle.
    network_.step();

    // 5. Hand deliveries to their node models.
    auto &delivered = network_.delivered();
    for (const Packet &pkt : delivered)
        dispatch(pkt, now);
    delivered.clear();
}

void
HeteroSystem::setWorkerPool(sim::WorkerPool *pool)
{
    pool_ = (pool && pool->lanes() > 1) ? pool : nullptr;
    localStage_.clear();
    if (pool_) {
        localStage_.resize(clusters_.size());
        for (auto &stage : localStage_)
            stage.reserve(16);
    }
}

void
HeteroSystem::tickNodesParallel(
    std::size_t count, const std::function<void(std::size_t)> &tick_one)
{
    if (count == 0)
        return;
    const std::size_t lanes = pool_->lanes();
    const int shards = static_cast<int>(std::min(count, lanes));
    pool_->parallelFor(shards, [&](int s) {
        const std::size_t begin =
            count * static_cast<std::size_t>(s) /
            static_cast<std::size_t>(shards);
        const std::size_t end =
            count * (static_cast<std::size_t>(s) + 1) /
            static_cast<std::size_t>(shards);
        for (std::size_t i = begin; i < end; ++i)
            tick_one(i);
    });
}

void
HeteroSystem::foldLocalStage()
{
    for (auto &stage : localStage_) {
        for (auto &hop : stage)
            localHops_.push(std::move(hop));
        stage.clear();
    }
}

bool
HeteroSystem::fastForwardQuiescent() const
{
    if (!localHops_.empty() || !memory_->quiescent())
        return false;
    for (const auto &box : outbox_) {
        if (!box.empty())
            return false;
    }
    for (const auto &cluster : clusters_) {
        if (!cluster->quiescent())
            return false;
    }
    for (const auto &bank : banks_) {
        if (!bank->quiescent())
            return false;
    }
    return true;
}

void
HeteroSystem::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles;) {
        // Idle fast-forward (PEARL_FAST_FORWARD, default on): when the
        // chip is drained and no generator can ever issue, jump the
        // clock to the next cycle with a side effect (a reservation
        // window boundary, or the end of the run) instead of stepping
        // through provable no-ops.  The network model declines the jump
        // (returns 0) whenever any per-cycle process is live, in which
        // case the cycle runs normally.
        if (fastForward_ && fastForwardQuiescent()) {
            const Cycle jumped = network_.advanceIdle(cycles - i);
            if (jumped > 0) {
                memory_->idleTicks(jumped);
                fastForwarded_ += jumped;
                i += jumped;
                continue;
            }
        }
        stepOnce();
        ++i;
    }
}

bool
HeteroSystem::runUntilIdle(Cycle max_cycles)
{
    // Progress watchdog state: injected+delivered packet counts are a
    // monotone progress measure; if they freeze while work is pending,
    // the system is livelocked (e.g. every response of a dropped
    // request chain timed out) and spinning to max_cycles would only
    // waste time and hide the diagnosis.
    std::uint64_t last_progress = network_.stats().injectedPackets() +
                                  network_.stats().deliveredPackets();
    int stalled_windows = 0;

    for (Cycle i = 0; i < max_cycles; ++i) {
        stepOnce();
        bool pending = !localHops_.empty() || !network_.idle() ||
                       !memory_->quiescent();
        for (const auto &box : outbox_) {
            if (pending)
                break;
            pending = !box.empty();
        }
        for (const auto &cluster : clusters_) {
            if (pending)
                break;
            pending = !cluster->quiescent();
        }
        for (const auto &bank : banks_) {
            if (pending)
                break;
            pending = !bank->quiescent();
        }
        if (!pending)
            return true;

        if (cfg_.watchdogWindowCycles != 0 &&
            (i + 1) % cfg_.watchdogWindowCycles == 0) {
            const std::uint64_t progress =
                network_.stats().injectedPackets() +
                network_.stats().deliveredPackets();
            stalled_windows =
                progress == last_progress ? stalled_windows + 1 : 0;
            last_progress = progress;
            if (stalled_windows >= cfg_.watchdogWindows) {
                dumpStallDiagnostics(i + 1);
                return false;
            }
        }
    }
    return false;
}

void
HeteroSystem::dumpStallDiagnostics(Cycle elapsed) const
{
    std::ostringstream oss;
    oss << "watchdog: no network progress over "
        << cfg_.watchdogWindows << " windows of "
        << cfg_.watchdogWindowCycles << " cycles (" << elapsed
        << " cycles into runUntilIdle); giving up instead of spinning."
        << "\n  injected=" << network_.stats().injectedPackets()
        << " delivered=" << network_.stats().deliveredPackets()
        << " dropped=" << network_.stats().droppedPackets()
        << " retransmitted="
        << network_.stats().retransmittedPackets() << "\n  outboxes:";
    for (std::size_t n = 0; n < outbox_.size(); ++n) {
        if (!outbox_[n].empty())
            oss << " node" << n << "=" << outbox_[n].size();
    }
    oss << "\n  localHops=" << localHops_.size() << "\n";
    network_.describeState(oss);
    warn(oss.str());
}

cache::ClusterStats
HeteroSystem::aggregateClusterStats() const
{
    cache::ClusterStats total;
    for (const auto &cluster : clusters_) {
        const cache::ClusterStats &s = cluster->stats();
        for (int t = 0; t < sim::kNumCoreTypes; ++t) {
            total.accesses[t] += s.accesses[t];
            total.stalled[t] += s.stalled[t];
            total.l1Hits[t] += s.l1Hits[t];
            total.l1Misses[t] += s.l1Misses[t];
            total.l2Hits[t] += s.l2Hits[t];
            total.l2Misses[t] += s.l2Misses[t];
            total.writebacks[t] += s.writebacks[t];
        }
        total.probesReceived += s.probesReceived;
    }
    return total;
}

cache::L3Stats
HeteroSystem::aggregateL3Stats() const
{
    cache::L3Stats total;
    for (const auto &bank : banks_)
        total += bank->stats();
    return total;
}

} // namespace core
} // namespace pearl
