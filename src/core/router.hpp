/**
 * @file
 * The PEARL router microarchitecture (Figure 2).
 *
 * Each router owns:
 *  - class-separated injection buffers (CPU / GPU) fed by the local cores
 *    and caches;
 *  - a single-writer data waveguide whose per-cycle bit capacity follows
 *    the laser bank's wavelength state, split between the two classes by
 *    the Dynamic Bandwidth Allocator every cycle;
 *  - per-packet R-SWMR reservation overhead before the first flit;
 *  - class-separated receive buffers (BW_D) drained to the local cores at
 *    a finite ejection bandwidth;
 *  - a laser bank with turn-on stabilisation and energy accounting;
 *  - the telemetry block feeding the ML power scaler.
 */

#ifndef PEARL_CORE_ROUTER_HPP
#define PEARL_CORE_ROUTER_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/arch_config.hpp"
#include "core/dba.hpp"
#include "photonic/laser.hpp"
#include "sim/buffer.hpp"
#include "sim/packet.hpp"
#include "sim/telemetry.hpp"

namespace pearl {
namespace core {

/** A packet that finished serialising onto the waveguide this cycle. */
struct TxCompletion
{
    sim::Packet pkt;
};

/**
 * Per-group express-slot pool for grouped R-SWMR chips.
 *
 * When the chip has more than one reservation domain
 * (cfg.grouped()), a cluster-to-cluster packet crossing a group
 * boundary must hold one of its source group's express slots for the
 * packet's whole serialisation — the slot stands in for a wavelength
 * on the group's shared express reservation channel.  Owned by
 * PearlNetwork; routers acquire in ascending router id (CPU class
 * before GPU within a router), which the verification plane's
 * lockstep mirror reproduces, so arbitration is deterministic.
 *
 * Per-group DBA: under a class-aware allocator (mode != Fcfs) the pool
 * is split between the classes (CPU gets the ceiling half) so a GPU
 * burst cannot monopolise the group's express plane — the same
 * fairness contract the per-router DBA gives the data waveguide.
 *
 * Group-local fault caps: the network lowers a group's cap to
 * max(1, slots - failedLaserBanksInGroup) every cycle while the fault
 * plane is on, so a failing group degrades its own express bandwidth
 * without dragging the other domains down.  A cap reduction never
 * revokes slots already held; it only blocks new acquisitions.
 */
class ExpressArbiter
{
  public:
    void
    configure(int num_groups, int slots, bool class_split)
    {
        slots_ = slots;
        classSplit_ = class_split;
        use_.assign(static_cast<std::size_t>(num_groups), {{0, 0}});
        cap_.assign(static_cast<std::size_t>(num_groups), slots);
    }

    /** Lower/restore a group's slot cap (fault containment). */
    void
    setCap(int group, int cap)
    {
        cap_[static_cast<std::size_t>(group)] = cap;
    }

    bool
    tryAcquire(int group, sim::CoreType type)
    {
        const auto g = static_cast<std::size_t>(group);
        const int total = use_[g].perClass[0] + use_[g].perClass[1];
        if (total >= cap_[g])
            return false;
        const int ci = static_cast<int>(type);
        if (classSplit_ && use_[g].perClass[ci] >= classCap(cap_[g], type))
            return false;
        ++use_[g].perClass[ci];
        return true;
    }

    void
    release(int group, sim::CoreType type)
    {
        --use_[static_cast<std::size_t>(group)]
              .perClass[static_cast<int>(type)];
    }

    int
    inUse(int group) const
    {
        const auto &u = use_[static_cast<std::size_t>(group)];
        return u.perClass[0] + u.perClass[1];
    }

    int cap(int group) const { return cap_[static_cast<std::size_t>(group)]; }
    int slots() const { return slots_; }

    /** Class share of a group's cap: CPU takes the ceiling half.  Both
     *  shares are >= 1 so a cap of 1 serialises the classes on the
     *  total-cap check instead of starving one outright. */
    static int
    classCap(int cap, sim::CoreType type)
    {
        return type == sim::CoreType::CPU ? (cap + 1) / 2
                                          : std::max(1, cap / 2);
    }

  private:
    struct Use
    {
        int perClass[sim::kNumCoreTypes];
    };

    int slots_ = 0;
    bool classSplit_ = false;
    std::vector<Use> use_;
    std::vector<int> cap_;
};

/** One PEARL router. */
class PearlRouter
{
  public:
    /**
     * @param id            router/node id.
     * @param cfg           network configuration.
     * @param power_model   per-router laser power model (already scaled
     *                      for this router's waveguide count).
     * @param dba_cfg       bandwidth allocator configuration.
     * @param waveguides    parallel data waveguides (1 for clusters, the
     *                      l3WaveguideGroup for the L3 router).
     */
    PearlRouter(int id, const PearlConfig &cfg,
                const photonic::PowerModel &power_model,
                const DbaConfig &dba_cfg, int waveguides = 1);

    int id() const { return id_; }
    int waveguides() const { return waveguides_; }

    // Injection ---------------------------------------------------------
    bool canAccept(const sim::Packet &pkt) const;
    bool inject(const sim::Packet &pkt, sim::Cycle now);

    /**
     * Re-enqueue a packet for retransmission after a NACK or ACK
     * timeout.  Unlike inject(), this does not count towards the
     * window's injected-packet label (the demand already happened) —
     * it bumps the retransmit telemetry instead.
     * @return false when the outbound buffer has no room (retry later).
     */
    bool reinject(const sim::Packet &pkt, sim::Cycle now);

    // Per-cycle operation -------------------------------------------------
    /**
     * Run one transmit cycle: DBA split, reservation countdowns, credit
     * accumulation, flit serialisation.  Completed packets are appended
     * to `done`.
     * @return bits transmitted this cycle (for energy accounting).
     */
    int transmitCycle(sim::Cycle now, std::vector<TxCompletion> &done);

    /** Enqueue an arriving packet into the receive buffer.
     *  @return false when the receive buffer is full (retry next cycle). */
    bool rxEnqueue(const sim::Packet &pkt);

    /** Drain receive buffers at the ejection bandwidth; fully ejected
     *  packets are appended to `delivered` with delivery time `now`. */
    void ejectCycle(sim::Cycle now, std::vector<sim::Packet> &delivered);

    /**
     * Collapsed transmit+eject+occupancy cycle for a quiescent router
     * (both buffer pairs empty, so both tx channels are inactive).
     * Touches exactly the state the three full calls would: the DBA
     * share telemetry and credit/back-to-back clearing when the laser
     * is stable under a class-aware allocator, the ejection
     * round-robin pointer, and the window-cycle counter (every
     * occupancy add is exactly zero).  The parallel step path uses
     * this as its active-set skip; the serial path never calls it, and
     * the bit-identity of the shortcut is pinned by the parallel-step
     * test suite.
     */
    void quiescentCycle(sim::Cycle now);

    /** Accumulate the per-cycle occupancy telemetry (call once/cycle). */
    void accumulateOccupancy();

    /**
     * Account `k` idle cycles of window accounting at once (idle
     * fast-forward).  With every buffer empty the per-cycle occupancy
     * adds are all zero, so only the window-cycle counter moves; the
     * beta sum is untouched (x + 0.0 == x for the non-negative sums
     * involved), keeping betaTotalMean() bit-identical to stepping.
     */
    void accountIdleCycles(std::uint64_t k) { windowCycles_ += k; }

    /**
     * Fault-capped wavelength ceiling.  Transmit capacity is computed
     * from min(laser state, cap), so a bank that dies mid-window
     * degrades bandwidth immediately even before the next policy
     * decision clamps the commanded state.  WL64 (the default) is a
     * no-op.
     */
    void setWlCap(photonic::WlState cap) { wlCap_ = cap; }
    photonic::WlState wlCap() const { return wlCap_; }

    // Power scaling -------------------------------------------------------
    photonic::LaserBank &laser() { return laser_; }
    const photonic::LaserBank &laser() const { return laser_; }
    sim::RouterTelemetry &telemetry() { return telemetry_; }
    const sim::RouterTelemetry &telemetry() const { return telemetry_; }

    /** Mean Buf_omega (beta_CPU + beta_GPU) since the last window reset. */
    double betaTotalMean() const;

    /** Reset the window accumulators (at a reservation-window boundary). */
    void resetWindow(photonic::WlState next_state);

    // Introspection ---------------------------------------------------
    const sim::DualClassBuffer &injectBuffers() const { return inject_; }
    const sim::DualClassBuffer &rxBuffers() const { return rx_; }
    bool idle() const;

    /** Snapshot of one class channel's serialisation state, exposed for
     *  the verification plane's credit/reservation legality checks. */
    struct TxAudit
    {
        bool active = false;
        bool backToBack = false;
        int resRemaining = 0;
        int flitsRemaining = 0;
        long creditBits = 0;
        bool holdsExpressSlot = false;
    };

    TxAudit
    txAudit(sim::CoreType type) const
    {
        const TxChannel &ch = tx_[static_cast<int>(type)];
        return {ch.active,         ch.backToBack, ch.resRemaining,
                ch.flitsRemaining, ch.creditBits, ch.holdsExpressSlot};
    }

    // Grouped R-SWMR express plane ------------------------------------
    /** Install the chip's express arbiter (grouped chips only; owned by
     *  the network).  Must be called before the first transmitCycle. */
    void
    setExpressArbiter(ExpressArbiter *arbiter)
    {
        express_ = arbiter;
    }

    /** This router's reservation domain, or -1 (hub / ungrouped). */
    int group() const { return group_; }

    std::uint64_t expressAcquired() const { return expressAcquired_; }
    std::uint64_t expressStallCycles() const { return expressStallCycles_; }

  private:
    /** Serialisation state of one class channel. */
    struct TxChannel
    {
        bool active = false;
        bool backToBack = false; //!< reservation hidden behind prior data
        int resRemaining = 0;
        int flitsRemaining = 0;
        long creditBits = 0;
        bool holdsExpressSlot = false; //!< inter-group slot held
    };

    int transmitClass(sim::CoreType type, double share, int capacity_bits,
                      std::vector<TxCompletion> &done);

    int id_;
    PearlConfig cfg_;
    int waveguides_;
    DynamicBandwidthAllocator dba_;
    sim::DualClassBuffer inject_;
    sim::DualClassBuffer rx_;
    TxChannel tx_[sim::kNumCoreTypes];
    int ejectProgress_[sim::kNumCoreTypes] = {0, 0};
    int ejectRr_ = 0;
    photonic::LaserBank laser_;
    photonic::WlState wlCap_ = photonic::WlState::WL64;
    sim::RouterTelemetry telemetry_;
    double betaWindowSum_ = 0.0;
    std::uint64_t windowCycles_ = 0;

    // Grouped R-SWMR express plane (null/-1 on ungrouped chips).
    ExpressArbiter *express_ = nullptr;
    int group_ = -1;
    std::uint64_t expressAcquired_ = 0;
    std::uint64_t expressStallCycles_ = 0;
};

} // namespace core
} // namespace pearl

#endif // PEARL_CORE_ROUTER_HPP
