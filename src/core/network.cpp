#include "core/network.hpp"

#include <algorithm>
#include <ostream>

#include "common/log.hpp"

namespace pearl {
namespace core {

using sim::Cycle;
using sim::Packet;

PearlNetwork::PearlNetwork(const PearlConfig &cfg,
                           const photonic::PowerModel &power,
                           const DbaConfig &dba, PowerPolicy *policy)
    : cfg_(cfg),
      // The paper's calibrated state powers are network-aggregate laser
      // figures; they are split across the chip's waveguide units (one
      // per cluster router + the MC node's waveguide group).
      routerPower_(power.scaled(
          1.0 / static_cast<double>(cfg.numClusters +
                                    cfg.l3WaveguideGroup))),
      policy_(policy)
{
    PEARL_ASSERT(policy_, "PearlNetwork requires a power policy");
    l3Power_ = routerPower_.scaled(
        static_cast<double>(cfg_.l3WaveguideGroup));
    if (cfg_.faults.enabled) {
        PEARL_ASSERT(cfg_.ackTimeoutCycles >
                         2 * static_cast<std::uint64_t>(
                                 cfg_.linkLatencyCycles),
                     "ackTimeoutCycles must exceed the ACK round trip");
        faults_ = photonic::FaultInjector(cfg_.faults, cfg_.numNodes());
        nextSeq_.assign(static_cast<std::size_t>(cfg_.numNodes()), 0);
        outstanding_.resize(static_cast<std::size_t>(cfg_.numNodes()));
    }
    routers_.reserve(static_cast<std::size_t>(cfg_.numNodes()));
    // Steady-state allocation freedom: reserve the event heaps and the
    // per-step scratch once, here.  The bounds are generous (every
    // router's buffers fully serialised at once) so the cycle loop
    // never grows them.
    const std::size_t inflight_bound =
        static_cast<std::size_t>(cfg_.numNodes()) * 64;
    inFlight_.reserve(inflight_bound);
    retryScratch_.reserve(inflight_bound);
    doneScratch_.reserve(64);
    bitsScratch_.assign(static_cast<std::size_t>(cfg_.numNodes()), 0);
    if (cfg_.faults.enabled) {
        timeouts_.reserve(inflight_bound);
        retx_.reserve(inflight_bound);
        blockedScratch_.reserve(inflight_bound);
    }
    if (cfg_.grouped()) {
        // Per-group DBA: a class-aware allocator also partitions the
        // express pool between the classes.
        express_.configure(cfg_.numGroups(), cfg_.resExpressSlots,
                           dba.mode != DbaConfig::Mode::Fcfs);
    }
    Rng thermal_rng(0xA11CE);
    for (int r = 0; r < cfg_.numNodes(); ++r) {
        const bool is_l3 = r == cfg_.l3Node;
        routers_.push_back(std::make_unique<PearlRouter>(
            r, cfg_, is_l3 ? l3Power_ : routerPower_, dba,
            is_l3 ? cfg_.l3WaveguideGroup : 1));
        if (cfg_.grouped())
            routers_.back()->setExpressArbiter(&express_);
        if (cfg_.useThermalModel) {
            const int rings =
                cfg_.txRings * (is_l3 ? cfg_.l3WaveguideGroup : 1) +
                cfg_.rxRings;
            thermal_.emplace_back(cfg_.thermal, rings,
                                  thermal_rng.fork());
        }
    }
    windowOffsets_.resize(static_cast<std::size_t>(cfg_.numNodes()), 0);
    if (cfg_.reservationWindow > 0) {
        for (int r = 0; r < cfg_.numNodes(); ++r) {
            windowOffsets_[static_cast<std::size_t>(r)] =
                (static_cast<std::uint64_t>(cfg_.windowOffsetPerRouter) *
                 static_cast<std::uint64_t>(r)) %
                cfg_.reservationWindow;
        }
    }
    dynEnergyPerBitJ_ = routerPower_.dynamicEnergyPerBitJ();
    trimPowerW_.resize(routers_.size());
    for (std::size_t r = 0; r < routers_.size(); ++r) {
        const int tx_rings = cfg_.txRings * routers_[r]->waveguides();
        for (int s = 0; s < photonic::kNumWlStates; ++s) {
            trimPowerW_[r][static_cast<std::size_t>(s)] =
                routerPower_.trimmingPowerW(photonic::kWlStates[
                    static_cast<std::size_t>(s)], tx_rings, cfg_.rxRings);
        }
    }
}

bool
PearlNetwork::canInject(const Packet &pkt) const
{
    return routers_[static_cast<std::size_t>(pkt.src)]->canAccept(pkt);
}

bool
PearlNetwork::inject(const Packet &pkt)
{
    auto &router = *routers_[static_cast<std::size_t>(pkt.src)];
    if (!router.inject(pkt, cycle_))
        return false;
    stats_.noteInjected(pkt);
    return true;
}

bool
PearlNetwork::isWindowBoundary(int router, Cycle now) const
{
    const std::uint64_t rw = cfg_.reservationWindow;
    if (rw == 0)
        return false;
    const std::uint64_t offset =
        (static_cast<std::uint64_t>(cfg_.windowOffsetPerRouter) *
         static_cast<std::uint64_t>(router)) % rw;
    return (now % rw) == offset && now > 0;
}

void
PearlNetwork::step()
{
    // 0. Fault plane: advance bank fail/repair processes, fire ACK
    //    timeouts, and re-enter due retransmissions at their sources.
    if (faults_.enabled())
        stepFaultPlane();

    // 1. Land due arrivals into receive buffers; full buffers retry.
    retryScratch_.clear();
    while (!inFlight_.empty() && inFlight_.top().due <= cycle_) {
        InFlight f = inFlight_.top();
        inFlight_.pop();
        auto &dst = *routers_[static_cast<std::size_t>(f.pkt.dst)];
        if (faults_.enabled() && !f.faultChecked) {
            // One BER draw per arrival (not per rx-buffer retry).
            f.faultChecked = true;
            double trim_gap = 0.0;
            bool locked = true;
            receiverThermal(f.pkt.dst, trim_gap, locked);
            auto &src_outstanding =
                outstanding_[static_cast<std::size_t>(f.pkt.src)];
            auto it = src_outstanding.find(f.pkt.seq);
            if (faults_.corruptsPacket(f.pkt.dst, f.pkt.sizeBits,
                                       trim_gap, locked)) {
                // Bad CRC at the receiver: NACK the source.  The NACK
                // rides the (ideal) control plane back in one link
                // latency, then the bounded backoff applies.
                stats_.noteCorrupted(f.pkt);
                ++dst.telemetry().corruptedArrivals;
                if (tracer_)
                    traceFaultEvent("corrupt", f.pkt.dst, f.pkt);
                if (it != src_outstanding.end()) {
                    Outstanding entry = std::move(it->second);
                    src_outstanding.erase(it);
                    armRetry(std::move(entry),
                             static_cast<Cycle>(cfg_.linkLatencyCycles));
                }
                continue; // corrupted flits never enter the rx buffer
            }
            // Clean arrival: the ACK retires the source's copy.  The
            // rx-buffer retry loop below is lossless, so acknowledging
            // here cannot create duplicates.
            if (it != src_outstanding.end())
                src_outstanding.erase(it);
        }
        if (!dst.rxEnqueue(f.pkt)) {
            f.due = cycle_ + 1;
            retryScratch_.push_back(std::move(f));
        }
    }
    for (auto &f : retryScratch_)
        inFlight_.push(std::move(f));

    // 1b. Group-local fault caps: a group's express pool shrinks with
    //     its own failed laser banks (never below one slot), so a sick
    //     domain cannot drag the others' express bandwidth down.
    if (cfg_.grouped() && faults_.enabled()) {
        const int gs = cfg_.reservationGroupSize;
        for (int g = 0; g < cfg_.numGroups(); ++g) {
            int failed = 0;
            for (int r = g * gs; r < (g + 1) * gs; ++r)
                failed += faults_.failedBanks(r);
            express_.setCap(
                g, std::max(1, cfg_.resExpressSlots - failed));
        }
    }

    // 2-4. Transmit, ejection and power integration — the per-router
    // middle of the step, sharded across the worker pool when one is
    // installed.  Both variants produce bit-identical state; the
    // serial one is the pre-parallelism code verbatim.
    if (!shards_.empty())
        stepParallelMiddle();
    else
        stepSerialMiddle();

    // 5. Reservation-window boundaries (staggered per router).  One
    // shared `cycle_ % rw` against precomputed per-router offsets — the
    // same predicate as isWindowBoundary() without 17 modulos per cycle.
    const std::uint64_t rw = cfg_.reservationWindow;
    const std::uint64_t now_mod = rw ? cycle_ % rw : 0;
    for (int r = 0; r < cfg_.numNodes(); ++r) {
        if (rw == 0 || cycle_ == 0 ||
            windowOffsets_[static_cast<std::size_t>(r)] != now_mod)
            continue;
        auto &router = *routers_[static_cast<std::size_t>(r)];

        WindowObservation obs;
        obs.router = r;
        obs.isL3Router = r == cfg_.l3Node;
        obs.currentState = router.laser().state();
        obs.betaTotalMean = router.betaTotalMean();
        obs.telemetry = &router.telemetry();
        obs.windowCycles = cfg_.reservationWindow;
        obs.windowEnd = cycle_;
        obs.wlCeiling = faults_.wlCap(r);

        DecisionTrace decision;
        if (tracer_)
            obs.decision = &decision;
        PolicyFeedback feedback;
        obs.feedback = &feedback;

        // Clamp the policy's choice to what the surviving laser banks
        // can sustain: policies degrade instead of commanding (and
        // paying stabilisation for) unavailable states.
        const photonic::WlState next = photonic::clampToCap(
            policy_->nextState(obs), obs.wlCeiling);

        // Guard-layer outcome: count fallback transitions/windows into
        // the closing window's telemetry (before the collector snapshot
        // and the reset below) and the run-wide stats.
        if (feedback.guarded) {
            sim::RouterTelemetry &t = router.telemetry();
            if (feedback.enteredFallback) {
                ++t.policyFallbackEntries;
                stats_.noteFallbackEntry();
            }
            if (feedback.exitedFallback) {
                ++t.policyFallbackExits;
                stats_.noteFallbackExit();
            }
            if (feedback.fallbackActive) {
                ++t.policyFallbackWindows;
                stats_.noteFallbackWindow();
            }
            if (tracer_ &&
                (feedback.enteredFallback || feedback.exitedFallback)) {
                obs::TraceEvent fb;
                fb.cat = obs::Category::Fault;
                fb.name = "policy_fallback";
                fb.ts = cycle_;
                fb.tid = r + 1;
                fb.arg("active", feedback.fallbackActive ? 1.0 : 0.0)
                    .arg("window_error", feedback.windowError)
                    .arg("clamped",
                         feedback.clampedPrediction ? 1.0 : 0.0);
                tracer_->record(std::move(fb));
            }
        }

        if (tracer_) {
            const sim::RouterTelemetry &t = router.telemetry();
            obs::TraceEvent wl;
            wl.cat = obs::Category::Wavelength;
            wl.name = photonic::toString(next);
            wl.ts = cycle_;
            wl.tid = r + 1;
            wl.arg("state_from",
                   photonic::indexOf(router.laser().state()))
                .arg("state_chosen", photonic::indexOf(next))
                .arg("state_cap", photonic::indexOf(obs.wlCeiling))
                .arg("beta_total", obs.betaTotalMean)
                .arg("packets_injected",
                     static_cast<double>(t.packetsInjected));
            if (decision.hasPrediction) {
                wl.arg("predicted_packets", decision.predictedPackets);
                for (std::size_t i = 0; i < decision.features.size();
                     ++i)
                    wl.arg("f" + std::to_string(i),
                           decision.features[i]);
            }
            tracer_->record(std::move(wl));

            obs::TraceEvent dba;
            dba.cat = obs::Category::Dba;
            dba.name = "dba_window";
            dba.ts = cycle_;
            dba.tid = r + 1;
            const double dba_cycles =
                t.dbaCycles ? static_cast<double>(t.dbaCycles) : 1.0;
            dba.arg("cpu_share_mean", t.dbaCpuShareSum / dba_cycles)
                .arg("gpu_share_mean", t.dbaGpuShareSum / dba_cycles)
                .arg("dba_cycles", static_cast<double>(t.dbaCycles))
                .arg("beta_total", obs.betaTotalMean);
            tracer_->record(std::move(dba));
        }

        if (collector_) {
            WindowRecord rec;
            rec.router = r;
            rec.windowEnd = cycle_;
            rec.windowCycles = cfg_.reservationWindow;
            rec.betaTotalMean = obs.betaTotalMean;
            rec.stateDuringWindow = router.laser().state();
            rec.stateChosen = next;
            rec.telemetry = router.telemetry();
            collector_(rec);
        }

        router.laser().requestState(next, cycle_);
        router.resetWindow(next);
    }

    // Dynamic shard rebalancing: at every full reservation-window
    // boundary, re-pack the shard ranges from the busy counters the
    // parallel middle accumulated.  The trigger and the packing are
    // pure functions of simulation state (never timing), and the
    // serial folds concatenate shards in ascending-router order under
    // any contiguous packing, so results are byte-identical.
    if (rebalance_ && !shards_.empty() && rw > 0 && cycle_ > 0 &&
        now_mod == 0)
        rebalanceShards();

    // Verification plane: the auditor sees the post-step state tagged
    // with the cycle that just executed.
    if (auditor_)
        auditor_->afterStep(*this);

    ++cycle_;
}

void
PearlNetwork::foldCompletion(int r, TxCompletion &completion)
{
    if (faults_.enabled()) {
        Packet &pkt = completion.pkt;
        if (pkt.attempt == 0)
            pkt.seq = nextSeq_[static_cast<std::size_t>(r)]++;
        trackTransmission(pkt);
        if (faults_.dropsReservation(r)) {
            // The receive rings were never tuned: the flits sail past
            // an untuned detector.  Only the ACK timeout recovers this
            // loss.
            stats_.noteReservationDrop();
            if (tracer_)
                traceFaultEvent("res_drop", r, pkt);
            return;
        }
    }
    inFlight_.push(
        InFlight{cycle_ + static_cast<Cycle>(cfg_.linkLatencyCycles),
                 std::move(completion.pkt)});
}

void
PearlNetwork::stepSerialMiddle()
{
    // 2. Transmit: serialise flits onto each router's waveguide.
    // Routers run in ascending id (CPU class before GPU within each),
    // which is also the express-slot arbitration order on grouped
    // chips — deterministic and mirrored by verify::RefNetwork.
    for (std::size_t r = 0; r < routers_.size(); ++r) {
        auto &router = routers_[r];
        if (faults_.enabled())
            router->setWlCap(faults_.wlCap(static_cast<int>(r)));
        doneScratch_.clear();
        const int bits = router->transmitCycle(cycle_, doneScratch_);
        bitsScratch_[r] = bits;
        dynamicEnergyJ_ +=
            static_cast<double>(bits) * dynEnergyPerBitJ_;
        for (auto &completion : doneScratch_)
            foldCompletion(static_cast<int>(r), completion);
    }

    // 3. Ejection to the local cores/caches.
    for (auto &router : routers_) {
        const std::size_t before = delivered_.size();
        router->ejectCycle(cycle_, delivered_);
        for (std::size_t i = before; i < delivered_.size(); ++i)
            stats_.noteDelivered(delivered_[i]);
    }

    // 4. Occupancy telemetry and power integration.
    for (std::size_t r = 0; r < routers_.size(); ++r) {
        auto &router = routers_[r];
        router->accumulateOccupancy();
        router->laser().tick(cfg_.cycleSeconds);
        if (cfg_.useThermalModel) {
            // Switching activity (transceiver + laser share) heats the
            // bank; the heater controller sets the trimming power.
            const double activity_w =
                bitsScratch_[r] * dynEnergyPerBitJ_ /
                    cfg_.cycleSeconds +
                routerPower_.laserPowerW(router->laser().state());
            auto &bank = thermal_[r];
            bank.step(activity_w, cfg_.cycleSeconds);
            trimmingEnergyJ_ += bank.heaterPowerW() * cfg_.cycleSeconds;
            if (!bank.locked()) {
                // Loss of lock is counted even with the fault plane
                // off; with it on, the BER model also reacts (stage 1).
                stats_.noteThermalUnlocked(static_cast<int>(r));
                ++router->telemetry().outOfLockCycles;
            }
            if (tracer_) {
                // Trace lock *transitions*, not one event per
                // unlocked cycle.
                if (tracedLock_.size() != routers_.size())
                    tracedLock_.assign(routers_.size(), 1);
                const char locked_now = bank.locked() ? 1 : 0;
                if (tracedLock_[r] != locked_now) {
                    tracedLock_[r] = locked_now;
                    obs::TraceEvent e;
                    e.cat = obs::Category::Fault;
                    e.name = locked_now ? "thermal_relock"
                                        : "thermal_unlock";
                    e.ts = cycle_;
                    e.tid = static_cast<int>(r) + 1;
                    tracer_->record(std::move(e));
                }
            }
        } else {
            trimmingEnergyJ_ +=
                trimPowerW_[r][static_cast<std::size_t>(
                    static_cast<int>(router->laser().state()))] *
                cfg_.cycleSeconds;
        }
    }
    // Grouped chips keep one always-on express reservation channel per
    // group; ungrouped chips accrue nothing here (bit-identity).
    if (cfg_.grouped()) {
        expressLaserEnergyJ_ += static_cast<double>(cfg_.numGroups()) *
                                cfg_.expressResLaserW *
                                cfg_.cycleSeconds;
    }
}

void
PearlNetwork::stepParallelMiddle()
{
    // Shard-local work: stages 2-4 fused per router.  Fusing is sound
    // because transmit/eject/power of one router read and write only
    // that router's state (plus its group's express pool, which the
    // group-aligned shard owns exclusively) — the stage ordering only
    // matters *within* a router, and that order is preserved.  All
    // cross-shard effects (energy and stats accumulation, the fault
    // plane's per-completion work, heap pushes) are parked in
    // per-shard scratch and applied by the serial folds below in
    // exactly the order the serial path would have produced.
    const bool faults_on = faults_.enabled();
    pool_->parallelFor(
        static_cast<int>(shards_.size()), [&](int s) {
            const StepShard sh = shards_[static_cast<std::size_t>(s)];
            auto &done = shardDone_[static_cast<std::size_t>(s)];
            auto &del = shardDelivered_[static_cast<std::size_t>(s)];
            done.clear();
            del.clear();
            for (int r = sh.begin; r < sh.end; ++r) {
                auto &router = *routers_[static_cast<std::size_t>(r)];
                if (faults_on)
                    router.setWlCap(faults_.wlCap(r));
                if (router.idle()) {
                    // Active-set skip: a quiescent router collapses to
                    // the few counters the full calls would touch.
                    router.quiescentCycle(cycle_);
                    bitsScratch_[static_cast<std::size_t>(r)] = 0;
                } else {
                    bitsScratch_[static_cast<std::size_t>(r)] =
                        router.transmitCycle(cycle_, done);
                    router.ejectCycle(cycle_, del);
                    router.accumulateOccupancy();
                    // Rebalance telemetry: each router belongs to
                    // exactly one shard, so the counter is race-free.
                    if (rebalance_)
                        ++busyScratch_[static_cast<std::size_t>(r)];
                }
                router.laser().tick(cfg_.cycleSeconds);
                if (cfg_.useThermalModel) {
                    const double activity_w =
                        bitsScratch_[static_cast<std::size_t>(r)] *
                            dynEnergyPerBitJ_ / cfg_.cycleSeconds +
                        routerPower_.laserPowerW(router.laser().state());
                    auto &bank = thermal_[static_cast<std::size_t>(r)];
                    bank.step(activity_w, cfg_.cycleSeconds);
                    trimScratch_[static_cast<std::size_t>(r)] =
                        bank.heaterPowerW() * cfg_.cycleSeconds;
                    if (!bank.locked())
                        ++router.telemetry().outOfLockCycles;
                } else {
                    trimScratch_[static_cast<std::size_t>(r)] =
                        trimPowerW_[static_cast<std::size_t>(r)]
                                   [static_cast<std::size_t>(
                                       static_cast<int>(
                                           router.laser().state()))] *
                        cfg_.cycleSeconds;
                }
            }
        });

    // Fold 2a: transmit energy in ascending router order — the exact
    // FP accumulation order of the serial path (the serial loop's
    // interleaved per-completion work touches disjoint state, so
    // separating the two folds preserves both orders).
    for (std::size_t r = 0; r < routers_.size(); ++r) {
        dynamicEnergyJ_ +=
            static_cast<double>(bitsScratch_[r]) * dynEnergyPerBitJ_;
    }

    // Fold 2b: completions in shard order; within a shard the vector
    // is already in ascending-router, per-router-completion order, so
    // the concatenation is the serial order — sequence numbers, the
    // reservation-drop RNG draws (per-router streams) and the
    // timeout/in-flight heap insertions all replay identically.
    for (auto &done : shardDone_) {
        for (auto &completion : done) {
            PEARL_ASSERT(completion.pkt.src >= 0 &&
                         completion.pkt.src < cfg_.numNodes());
            foldCompletion(completion.pkt.src, completion);
        }
    }

    // Fold 3: deliveries, same concatenation argument.
    for (auto &del : shardDelivered_) {
        for (auto &pkt : del) {
            delivered_.push_back(pkt);
            stats_.noteDelivered(delivered_.back());
        }
    }

    // Fold 4: trimming energy and thermal-lock bookkeeping in
    // ascending router order (bank state is frozen after the parallel
    // region, so the lock reads here see what the serial path saw).
    for (std::size_t r = 0; r < routers_.size(); ++r) {
        trimmingEnergyJ_ += trimScratch_[r];
        if (cfg_.useThermalModel) {
            const auto &bank = thermal_[r];
            if (!bank.locked())
                stats_.noteThermalUnlocked(static_cast<int>(r));
            if (tracer_) {
                if (tracedLock_.size() != routers_.size())
                    tracedLock_.assign(routers_.size(), 1);
                const char locked_now = bank.locked() ? 1 : 0;
                if (tracedLock_[r] != locked_now) {
                    tracedLock_[r] = locked_now;
                    obs::TraceEvent e;
                    e.cat = obs::Category::Fault;
                    e.name = locked_now ? "thermal_relock"
                                        : "thermal_unlock";
                    e.ts = cycle_;
                    e.tid = static_cast<int>(r) + 1;
                    tracer_->record(std::move(e));
                }
            }
        }
    }
    if (cfg_.grouped()) {
        expressLaserEnergyJ_ += static_cast<double>(cfg_.numGroups()) *
                                cfg_.expressResLaserW *
                                cfg_.cycleSeconds;
    }
}

void
PearlNetwork::packShards(const std::vector<std::uint64_t> &router_weight)
{
    // Greedy contiguous packing of the indivisible units into at most
    // shardLanes_ shards, balanced by weight: each shard takes units
    // until it reaches ceil(remaining weight / remaining shards).
    // With uniform weights this reproduces the original equal-count
    // packing; skewed weights move the boundaries toward the busy
    // routers.  A heavily skewed window may pack into fewer shards
    // than lanes (even one) — still correct, just less parallel.
    shards_.clear();
    const int n = cfg_.numNodes();
    std::uint64_t remaining_weight = 0;
    for (int r = 0; r < n; ++r)
        remaining_weight += router_weight[static_cast<std::size_t>(r)];
    int begin = 0;
    std::size_t u = 0;
    for (int s = 0; s < shardLanes_ && begin < n; ++s) {
        const std::uint64_t remaining =
            static_cast<std::uint64_t>(shardLanes_ - s);
        const std::uint64_t target =
            (remaining_weight + remaining - 1) / remaining;
        int end = begin;
        std::uint64_t acc = 0;
        while (u < shardUnitEnd_.size() && acc < target) {
            const int unit_end = shardUnitEnd_[u++];
            for (int r = end; r < unit_end; ++r)
                acc += router_weight[static_cast<std::size_t>(r)];
            end = unit_end;
        }
        shards_.push_back(StepShard{begin, end});
        begin = end;
        remaining_weight -= acc;
    }
    if (!shards_.empty() && begin < n)
        shards_.back().end = n;

    // Pre-size the per-shard scratch so the cycle loop stays
    // allocation-free in steady state (same discipline as the shared
    // scratch in the constructor).
    shardDone_.resize(shards_.size());
    shardDelivered_.resize(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        const auto routers_in_shard = static_cast<std::size_t>(
            shards_[s].end - shards_[s].begin);
        shardDone_[s].reserve(routers_in_shard * 8 + 64);
        shardDelivered_[s].reserve(routers_in_shard * 8 + 64);
    }
}

void
PearlNetwork::rebalanceShards()
{
    // Weight = busy cycles + 1: the +1 keeps every router non-zero so
    // packing always terminates, and an all-idle window degenerates to
    // exactly the uniform packing setWorkerPool installed.
    std::vector<std::uint64_t> weight(busyScratch_.size());
    for (std::size_t r = 0; r < weight.size(); ++r)
        weight[r] = busyScratch_[r] + 1;
    packShards(weight);
    std::fill(busyScratch_.begin(), busyScratch_.end(), 0);
}

void
PearlNetwork::setWorkerPool(sim::WorkerPool *pool)
{
    pool_ = pool;
    shards_.clear();
    shardDone_.clear();
    shardDelivered_.clear();
    shardUnitEnd_.clear();
    shardLanes_ = 0;
    const unsigned lanes = pool_ ? pool_->lanes() : 1;
    if (lanes <= 1)
        return;

    // Shard units: whole waveguide groups (a group's express-slot pool
    // is arbitrated in router order within the group, so it must stay
    // single-threaded) plus the hub as its own unit; ungrouped chips
    // shard per router.  Units are packed contiguously and rebalanced
    // as shards fill, so shard sizes differ by at most one unit.
    if (cfg_.grouped()) {
        const int gs = cfg_.reservationGroupSize;
        for (int g = 1; g <= cfg_.numGroups(); ++g)
            shardUnitEnd_.push_back(g * gs);
        if (shardUnitEnd_.empty() ||
            shardUnitEnd_.back() < cfg_.numNodes())
            shardUnitEnd_.push_back(cfg_.numNodes());
    } else {
        for (int r = 1; r <= cfg_.numNodes(); ++r)
            shardUnitEnd_.push_back(r);
    }

    shardLanes_ = static_cast<int>(lanes);
    packShards(std::vector<std::uint64_t>(
        static_cast<std::size_t>(cfg_.numNodes()), 1));
    if (shards_.size() <= 1) {
        shards_.clear();
        shardDone_.clear();
        shardDelivered_.clear();
        shardUnitEnd_.clear();
        shardLanes_ = 0;
        return;
    }
    trimScratch_.assign(routers_.size(), 0.0);

    // Dynamic rebalancing default; setShardRebalance() overrides.
    rebalance_ = envBool("PEARL_REBALANCE", false);
    busyScratch_.assign(routers_.size(), 0);
}

sim::Cycle
PearlNetwork::advanceIdle(Cycle max_cycles)
{
    // A cycle may be skipped only when step() would provably do nothing
    // but advance the clock and integrate constant power: no packet
    // anywhere, no stochastic per-cycle process (fault plane, thermal
    // model) and no reservation-window boundary inside the jump.  The
    // jump stops one cycle short of the earliest boundary so the caller
    // runs it through step(), where the policy may switch laser states.
    if (max_cycles == 0 || faults_.enabled() || cfg_.useThermalModel ||
        !idle() || !delivered_.empty())
        return 0;

    Cycle jump = max_cycles;
    const std::uint64_t rw = cfg_.reservationWindow;
    if (rw > 0) {
        const std::uint64_t now_mod = cycle_ % rw;
        for (int r = 0; r < cfg_.numNodes(); ++r) {
            std::uint64_t dist =
                (windowOffsets_[static_cast<std::size_t>(r)] + rw -
                 now_mod) % rw;
            if (dist == 0) {
                // Boundary at the current cycle: real only past cycle 0
                // (step() skips boundaries at cycle 0), in which case
                // this cycle cannot be skipped.
                if (cycle_ == 0)
                    dist = rw;
                else
                    return 0;
            }
            jump = std::min<Cycle>(jump, dist);
        }
    }

    // Time-integrated accounting for the skipped cycles.  The laser
    // state of every router is constant across the jump (state changes
    // happen only at window boundaries), so the energy integrals are
    // analytic; window-cycle counters advance exactly.
    for (std::size_t r = 0; r < routers_.size(); ++r) {
        auto &router = routers_[r];
        router->accountIdleCycles(jump);
        router->laser().tickIdle(jump, cfg_.cycleSeconds);
        trimmingEnergyJ_ +=
            trimPowerW_[r][static_cast<std::size_t>(
                static_cast<int>(router->laser().state()))] *
            cfg_.cycleSeconds * static_cast<double>(jump);
    }
    if (cfg_.grouped()) {
        expressLaserEnergyJ_ += static_cast<double>(cfg_.numGroups()) *
                                cfg_.expressResLaserW *
                                cfg_.cycleSeconds *
                                static_cast<double>(jump);
    }
    cycle_ += jump;
    return jump;
}

void
PearlNetwork::receiverThermal(int node, double &trim_gap_c,
                              bool &locked) const
{
    trim_gap_c = 0.0;
    locked = true;
    if (!cfg_.useThermalModel)
        return;
    const auto &bank = thermal_[static_cast<std::size_t>(node)];
    locked = bank.locked();
    trim_gap_c = std::max(
        0.0, bank.config().lockPointC - bank.dieTemperatureC());
}

void
PearlNetwork::trackTransmission(const Packet &pkt)
{
    auto &src_outstanding =
        outstanding_[static_cast<std::size_t>(pkt.src)];
    src_outstanding[pkt.seq] = Outstanding{pkt, pkt.attempt};
    timeouts_.push(TimeoutEvent{cycle_ + cfg_.ackTimeoutCycles, pkt.src,
                                pkt.seq, pkt.attempt});
}

void
PearlNetwork::armRetry(Outstanding &&entry, Cycle delay)
{
    if (static_cast<int>(entry.attempt) >= cfg_.retryLimit) {
        // Retry budget spent: the loss is surfaced as a counted drop,
        // never silently swallowed.
        stats_.noteDropped(entry.pkt);
        ++routers_[static_cast<std::size_t>(entry.pkt.src)]
              ->telemetry()
              .packetsDropped;
        if (tracer_)
            traceFaultEvent("drop", entry.pkt.src, entry.pkt);
        return;
    }
    // Bounded exponential backoff keyed on the attempt that failed.
    const int shift = std::min<int>(entry.attempt, 20);
    const Cycle backoff =
        std::min(cfg_.retxBackoffBase << shift, cfg_.retxBackoffMax);
    Packet pkt = std::move(entry.pkt);
    ++pkt.attempt;
    retx_.push(PendingRetx{cycle_ + delay + backoff, std::move(pkt)});
}

void
PearlNetwork::traceFaultEvent(const char *name, int router,
                              const Packet &pkt)
{
    obs::TraceEvent e;
    e.cat = obs::Category::Fault;
    e.name = name;
    e.ts = cycle_;
    e.tid = router + 1;
    e.arg("src", pkt.src)
        .arg("dst", pkt.dst)
        .arg("seq", static_cast<double>(pkt.seq))
        .arg("attempt", pkt.attempt)
        .arg("size_bits", pkt.sizeBits);
    tracer_->record(std::move(e));
}

void
PearlNetwork::stepFaultPlane()
{
    const std::uint64_t fails_before = faults_.bankFailures();
    const std::uint64_t repairs_before = faults_.bankRepairs();
    faults_.step(cycle_);
    if (tracer_) {
        // Bank fail/repair counts only move inside step(); surface the
        // deltas as instant events on the run track.
        for (const auto &[name, delta] :
             {std::pair<const char *, std::uint64_t>{
                  "bank_failure", faults_.bankFailures() - fails_before},
              std::pair<const char *, std::uint64_t>{
                  "bank_repair",
                  faults_.bankRepairs() - repairs_before}}) {
            if (!delta)
                continue;
            obs::TraceEvent e;
            e.cat = obs::Category::Fault;
            e.name = name;
            e.ts = cycle_;
            e.arg("count", static_cast<double>(delta));
            tracer_->record(std::move(e));
        }
    }

    // ACK timeouts: a fired event only matters when the exact
    // transmission attempt it guards is still un-ACKed (reservation
    // drops are the one loss mode with no NACK).
    while (!timeouts_.empty() && timeouts_.top().due <= cycle_) {
        const TimeoutEvent evt = timeouts_.top();
        timeouts_.pop();
        auto &src_outstanding =
            outstanding_[static_cast<std::size_t>(evt.src)];
        auto it = src_outstanding.find(evt.seq);
        if (it == src_outstanding.end() ||
            it->second.attempt != evt.attempt)
            continue;
        stats_.noteAckTimeout();
        Outstanding entry = std::move(it->second);
        src_outstanding.erase(it);
        if (tracer_)
            traceFaultEvent("ack_timeout", evt.src, entry.pkt);
        armRetry(std::move(entry), 0);
    }

    drainRetxQueue();
}

void
PearlNetwork::drainRetxQueue()
{
    // Due retransmissions re-enter their source's outbound queue; a
    // full buffer pushes back one cycle at a time.
    blockedScratch_.clear();
    while (!retx_.empty() && retx_.top().due <= cycle_) {
        PendingRetx p = retx_.top();
        retx_.pop();
        auto &src = *routers_[static_cast<std::size_t>(p.pkt.src)];
        if (src.reinject(p.pkt, cycle_)) {
            stats_.noteRetransmit();
            if (tracer_)
                traceFaultEvent("retx", p.pkt.src, p.pkt);
        } else {
            p.due = cycle_ + 1;
            blockedScratch_.push_back(std::move(p));
        }
    }
    for (auto &p : blockedScratch_)
        retx_.push(std::move(p));
}

bool
PearlNetwork::idle() const
{
    if (!inFlight_.empty())
        return false;
    if (!retx_.empty())
        return false;
    if (faults_.enabled()) {
        for (const auto &src_outstanding : outstanding_) {
            if (!src_outstanding.empty())
                return false;
        }
    }
    for (const auto &router : routers_) {
        if (!router->idle())
            return false;
    }
    return true;
}

void
PearlNetwork::describeState(std::ostream &os) const
{
    os << "PearlNetwork @ cycle " << cycle_ << ": inFlight="
       << inFlight_.size() << " pendingRetx=" << retx_.size()
       << " dropped=" << stats_.droppedPackets() << "\n";
    if (cfg_.grouped()) {
        os << "  express groups:";
        for (int g = 0; g < cfg_.numGroups(); ++g)
            os << " g" << g << "=" << express_.inUse(g) << "/"
               << express_.cap(g);
        os << " | acquired " << expressAcquired() << " stalls "
           << expressStallCycles() << "\n";
    }
    for (std::size_t r = 0; r < routers_.size(); ++r) {
        const auto &router = *routers_[r];
        const auto &inj = router.injectBuffers();
        const auto &rx = router.rxBuffers();
        os << "  router " << r << ": state "
           << photonic::toString(router.laser().state()) << " cap "
           << photonic::toString(router.wlCap()) << " | inject cpu/gpu "
           << inj.of(sim::CoreType::CPU).occupiedSlots() << "/"
           << inj.of(sim::CoreType::GPU).occupiedSlots()
           << " slots | rx cpu/gpu "
           << rx.of(sim::CoreType::CPU).occupiedSlots() << "/"
           << rx.of(sim::CoreType::GPU).occupiedSlots() << " slots";
        if (faults_.enabled()) {
            os << " | unacked "
               << outstanding_[r].size() << " failedBanks "
               << faults_.failedBanks(static_cast<int>(r));
        }
        os << "\n";
    }
}

double
PearlNetwork::laserEnergyJ() const
{
    double total = expressLaserEnergyJ_;
    for (const auto &router : routers_)
        total += router->laser().energyJ();
    return total;
}

std::uint64_t
PearlNetwork::expressAcquired() const
{
    std::uint64_t total = 0;
    for (const auto &router : routers_)
        total += router->expressAcquired();
    return total;
}

std::uint64_t
PearlNetwork::expressStallCycles() const
{
    std::uint64_t total = 0;
    for (const auto &router : routers_)
        total += router->expressStallCycles();
    return total;
}

double
PearlNetwork::staticEnergyJ() const
{
    return cfg_.routerStaticW * static_cast<double>(cfg_.numNodes()) *
           static_cast<double>(cycle_) * cfg_.cycleSeconds;
}

double
PearlNetwork::totalEnergyJ() const
{
    return laserEnergyJ() + trimmingEnergyJ() + dynamicEnergyJ() +
           staticEnergyJ();
}

double
PearlNetwork::averageLaserPowerW() const
{
    if (cycle_ == 0)
        return 0.0;
    return laserEnergyJ() /
           (static_cast<double>(cycle_) * cfg_.cycleSeconds);
}

double
PearlNetwork::thermalUnlockedFraction() const
{
    if (thermal_.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &bank : thermal_)
        total += bank.unlockedFraction();
    return total / static_cast<double>(thermal_.size());
}

AuditCounts
PearlNetwork::auditCounts() const
{
    AuditCounts c;
    c.injected = stats_.injectedPackets();
    c.retransmitted = stats_.retransmittedPackets();
    c.delivered = stats_.deliveredPackets();
    c.dropped = stats_.droppedPackets();
    for (const auto &router : routers_) {
        const auto &inj = router->injectBuffers();
        const auto &rx = router->rxBuffers();
        c.buffered += inj.of(sim::CoreType::CPU).packetCount() +
                      inj.of(sim::CoreType::GPU).packetCount() +
                      rx.of(sim::CoreType::CPU).packetCount() +
                      rx.of(sim::CoreType::GPU).packetCount();
    }
    c.inFlight = inFlight_.size();
    for (const auto &f : inFlight_.items()) {
        if (!f.faultChecked)
            ++c.inFlightUnchecked;
    }
    c.retxQueued = retx_.size();
    for (const auto &src_outstanding : outstanding_)
        c.outstanding += src_outstanding.size();
    return c;
}

double
PearlNetwork::residency(photonic::WlState s) const
{
    double total = 0.0;
    for (const auto &router : routers_)
        total += router->laser().residency(s);
    return total / static_cast<double>(routers_.size());
}

} // namespace core
} // namespace pearl
