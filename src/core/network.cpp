#include "core/network.hpp"

#include "common/log.hpp"

namespace pearl {
namespace core {

using sim::Cycle;
using sim::Packet;

PearlNetwork::PearlNetwork(const PearlConfig &cfg,
                           const photonic::PowerModel &power,
                           const DbaConfig &dba, PowerPolicy *policy)
    : cfg_(cfg),
      // The paper's calibrated state powers are network-aggregate laser
      // figures; they are split across the chip's waveguide units (one
      // per cluster router + the MC node's waveguide group).
      routerPower_(power.scaled(
          1.0 / static_cast<double>(cfg.numClusters +
                                    cfg.l3WaveguideGroup))),
      policy_(policy)
{
    PEARL_ASSERT(policy_, "PearlNetwork requires a power policy");
    l3Power_ = routerPower_.scaled(
        static_cast<double>(cfg_.l3WaveguideGroup));
    routers_.reserve(static_cast<std::size_t>(cfg_.numNodes()));
    Rng thermal_rng(0xA11CE);
    for (int r = 0; r < cfg_.numNodes(); ++r) {
        const bool is_l3 = r == cfg_.l3Node;
        routers_.push_back(std::make_unique<PearlRouter>(
            r, cfg_, is_l3 ? l3Power_ : routerPower_, dba,
            is_l3 ? cfg_.l3WaveguideGroup : 1));
        if (cfg_.useThermalModel) {
            const int rings =
                cfg_.txRings * (is_l3 ? cfg_.l3WaveguideGroup : 1) +
                cfg_.rxRings;
            thermal_.emplace_back(cfg_.thermal, rings,
                                  thermal_rng.fork());
        }
    }
}

bool
PearlNetwork::canInject(const Packet &pkt) const
{
    return routers_[static_cast<std::size_t>(pkt.src)]->canAccept(pkt);
}

bool
PearlNetwork::inject(const Packet &pkt)
{
    auto &router = *routers_[static_cast<std::size_t>(pkt.src)];
    if (!router.inject(pkt, cycle_))
        return false;
    stats_.noteInjected(pkt);
    return true;
}

bool
PearlNetwork::isWindowBoundary(int router, Cycle now) const
{
    const std::uint64_t rw = cfg_.reservationWindow;
    if (rw == 0)
        return false;
    const std::uint64_t offset =
        (static_cast<std::uint64_t>(cfg_.windowOffsetPerRouter) *
         static_cast<std::uint64_t>(router)) % rw;
    return (now % rw) == offset && now > 0;
}

void
PearlNetwork::step()
{
    // 1. Land due arrivals into receive buffers; full buffers retry.
    std::vector<InFlight> retry;
    while (!inFlight_.empty() && inFlight_.top().due <= cycle_) {
        InFlight f = inFlight_.top();
        inFlight_.pop();
        auto &dst = *routers_[static_cast<std::size_t>(f.pkt.dst)];
        if (!dst.rxEnqueue(f.pkt)) {
            f.due = cycle_ + 1;
            retry.push_back(std::move(f));
        }
    }
    for (auto &f : retry)
        inFlight_.push(std::move(f));

    // 2. Transmit: serialise flits onto each router's waveguide.
    std::vector<TxCompletion> done;
    std::vector<int> bits_per_router(routers_.size(), 0);
    for (std::size_t r = 0; r < routers_.size(); ++r) {
        auto &router = routers_[r];
        done.clear();
        const int bits = router->transmitCycle(cycle_, done);
        bits_per_router[r] = bits;
        dynamicEnergyJ_ +=
            static_cast<double>(bits) * routerPower_.dynamicEnergyPerBitJ();
        for (auto &completion : done) {
            inFlight_.push(InFlight{
                cycle_ + static_cast<Cycle>(cfg_.linkLatencyCycles),
                std::move(completion.pkt)});
        }
    }

    // 3. Ejection to the local cores/caches.
    for (auto &router : routers_) {
        const std::size_t before = delivered_.size();
        router->ejectCycle(cycle_, delivered_);
        for (std::size_t i = before; i < delivered_.size(); ++i)
            stats_.noteDelivered(delivered_[i]);
    }

    // 4. Occupancy telemetry and power integration.
    for (std::size_t r = 0; r < routers_.size(); ++r) {
        auto &router = routers_[r];
        router->accumulateOccupancy();
        router->laser().tick(cfg_.cycleSeconds);
        if (cfg_.useThermalModel) {
            // Switching activity (transceiver + laser share) heats the
            // bank; the heater controller sets the trimming power.
            const double activity_w =
                bits_per_router[r] *
                    routerPower_.dynamicEnergyPerBitJ() /
                    cfg_.cycleSeconds +
                routerPower_.laserPowerW(router->laser().state());
            auto &bank = thermal_[r];
            bank.step(activity_w, cfg_.cycleSeconds);
            trimmingEnergyJ_ += bank.heaterPowerW() * cfg_.cycleSeconds;
        } else {
            trimmingEnergyJ_ +=
                routerPower_.trimmingPowerW(
                    router->laser().state(),
                    cfg_.txRings * router->waveguides(), cfg_.rxRings) *
                cfg_.cycleSeconds;
        }
    }

    // 5. Reservation-window boundaries (staggered per router).
    for (int r = 0; r < cfg_.numNodes(); ++r) {
        if (!isWindowBoundary(r, cycle_))
            continue;
        auto &router = *routers_[static_cast<std::size_t>(r)];

        WindowObservation obs;
        obs.router = r;
        obs.isL3Router = r == cfg_.l3Node;
        obs.currentState = router.laser().state();
        obs.betaTotalMean = router.betaTotalMean();
        obs.telemetry = &router.telemetry();
        obs.windowCycles = cfg_.reservationWindow;
        obs.windowEnd = cycle_;

        const photonic::WlState next = policy_->nextState(obs);

        if (collector_) {
            WindowRecord rec;
            rec.router = r;
            rec.windowEnd = cycle_;
            rec.windowCycles = cfg_.reservationWindow;
            rec.betaTotalMean = obs.betaTotalMean;
            rec.stateDuringWindow = router.laser().state();
            rec.stateChosen = next;
            rec.telemetry = router.telemetry();
            collector_(rec);
        }

        router.laser().requestState(next, cycle_);
        router.resetWindow(next);
    }

    ++cycle_;
}

bool
PearlNetwork::idle() const
{
    if (!inFlight_.empty())
        return false;
    for (const auto &router : routers_) {
        if (!router->idle())
            return false;
    }
    return true;
}

double
PearlNetwork::laserEnergyJ() const
{
    double total = 0.0;
    for (const auto &router : routers_)
        total += router->laser().energyJ();
    return total;
}

double
PearlNetwork::staticEnergyJ() const
{
    return cfg_.routerStaticW * static_cast<double>(cfg_.numNodes()) *
           static_cast<double>(cycle_) * cfg_.cycleSeconds;
}

double
PearlNetwork::totalEnergyJ() const
{
    return laserEnergyJ() + trimmingEnergyJ() + dynamicEnergyJ() +
           staticEnergyJ();
}

double
PearlNetwork::averageLaserPowerW() const
{
    if (cycle_ == 0)
        return 0.0;
    return laserEnergyJ() /
           (static_cast<double>(cycle_) * cfg_.cycleSeconds);
}

double
PearlNetwork::thermalUnlockedFraction() const
{
    if (thermal_.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &bank : thermal_)
        total += bank.unlockedFraction();
    return total / static_cast<double>(thermal_.size());
}

double
PearlNetwork::residency(photonic::WlState s) const
{
    double total = 0.0;
    for (const auto &router : routers_)
        total += router->laser().residency(s);
    return total / static_cast<double>(routers_.size());
}

} // namespace core
} // namespace pearl
