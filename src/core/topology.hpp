/**
 * @file
 * TopologySpec: the single source of truth for chip topology.
 *
 * Section III-A2 sketches scaling the PEARL crossbar past one optical
 * layer; this module makes the cluster count a first-class, validated
 * parameter up to cache::kMaxClusters (128).  A TopologySpec names the
 * few quantities a chip architect actually chooses — cluster count,
 * reservation-domain (waveguide-group) fan-out, memory-controller
 * placement, L3 banking, hub waveguide fan-out — and *derives*
 * everything the layers below need:
 *
 *  - core::PearlConfig: node counts, hub waveguide group, grouped
 *    R-SWMR reservation domains (group size, express slots, express
 *    reservation latency from the Section III-A3 sizing formula,
 *    per-group express-channel laser power), receive-ring counts that
 *    scale with the reservation domain instead of the whole chip;
 *  - cache::HomeMap + HierarchyConfig: bank count, memory node, total
 *    L3 capacity held proportional to the cluster count;
 *  - core::SystemConfig: cluster count, banking and memory bandwidth.
 *
 * Every derivation reduces *exactly* to the legacy Table I/II defaults
 * at 16 clusters, so a TopologySpec{16} chip is bit-identical to the
 * hand-built configs the goldens pin.  The previously hand-synced
 * quintet (cfg.numClusters / cfg.l3Node / cfg.l3WaveguideGroup /
 * home.numBanks / home.memoryNode) is now derived state — construct
 * through makeSystemConfig() + pearlConfig() instead of setting the
 * fields by hand (see DESIGN.md "Scale-out").
 */

#ifndef PEARL_CORE_TOPOLOGY_HPP
#define PEARL_CORE_TOPOLOGY_HPP

#include "cache/sharer_mask.hpp"
#include "common/expected.hpp"
#include "core/arch_config.hpp"
#include "core/system.hpp"
#include "photonic/reservation.hpp"

namespace pearl {
namespace core {

/** The architect-chosen topology parameters (see file comment). */
struct TopologySpec
{
    /** Cluster routers on the chip, in [1, cache::kMaxClusters]. */
    int clusters = 16;

    /**
     * Clusters per R-SWMR reservation domain (waveguide group).  Must
     * divide `clusters`.  0 = auto: chips up to 16 clusters keep the
     * legacy single domain; larger chips take domains of 16.  A single
     * domain spanning the whole chip (clustersPerGroup == clusters) is
     * exactly the legacy fabric.
     */
    int clustersPerGroup = 0;

    /**
     * Node hosting the memory controllers + hub waveguide group.
     * -1 = auto: the dedicated hub node (id == clusters).  A value in
     * [0, clusters - 1] co-locates the MC with that cluster's router.
     */
    int mcNode = -1;

    /** L3 bank slices, in [1, clusters].  0 = auto: one per cluster. */
    int l3Banks = 0;

    /** Hub (MC/L3) parallel data waveguides.  0 = auto: one per
     *  cluster, so hub bandwidth tracks chip size. */
    int hubWaveguides = 0;

    // Resolved values ------------------------------------------------
    int resolvedGroupSize() const;
    int resolvedMcNode() const { return mcNode < 0 ? clusters : mcNode; }
    int resolvedL3Banks() const { return l3Banks > 0 ? l3Banks : clusters; }
    int
    resolvedHubWaveguides() const
    {
        return hubWaveguides > 0 ? hubWaveguides : clusters;
    }
    int numGroups() const { return clusters / resolvedGroupSize(); }

    /** Accept/reject the spec with an actionable message. */
    Validation validate() const;

    /** R-SWMR sizing of one reservation domain (Section III-A3). */
    photonic::ReservationConfig reservationConfig() const;

    /** Derived photonic-network configuration.
     *  @throws ConfigError when the spec fails validation. */
    PearlConfig pearlConfig() const;
};

/** Derived system configuration (hierarchy, home map, cluster count,
 *  memory bandwidth).  @throws ConfigError when the spec is invalid. */
SystemConfig makeSystemConfig(const TopologySpec &spec);

} // namespace core
} // namespace pearl

#endif // PEARL_CORE_TOPOLOGY_HPP
