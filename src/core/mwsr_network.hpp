/**
 * @file
 * An MWSR (multiple-writer single-reader) photonic crossbar with
 * token-ring arbitration — the Corona-style design the paper's Related
 * Work contrasts with PEARL's reservation-assisted SWMR.
 *
 * Each *destination* owns a data waveguide; any router may write to it,
 * but only the current holder of that channel's token.  The token
 * circulates over a dedicated arbitration waveguide, costing one cycle
 * per hop, so a writer waits on average half a rotation before it can
 * transmit — the arbitration latency R-SWMR eliminates by replacing the
 * token with a receiver-side reservation broadcast.
 *
 * The model reuses the photonic power/laser machinery; wavelength
 * scaling is intentionally not supported (this is a static baseline for
 * the SWMR-vs-MWSR ablation).
 */

#ifndef PEARL_CORE_MWSR_NETWORK_HPP
#define PEARL_CORE_MWSR_NETWORK_HPP

#include <vector>

#include "core/arch_config.hpp"
#include "photonic/power_model.hpp"
#include "photonic/wl_state.hpp"
#include "sim/min_heap.hpp"
#include "sim/network.hpp"
#include "sim/ring_queue.hpp"

namespace pearl {
namespace core {

/** Configuration of the MWSR baseline. */
struct MwsrConfig
{
    int numNodes = 17;
    photonic::WlState state = photonic::WlState::WL64;
    int linkLatencyCycles = 2;   //!< propagation + receive pipeline
    int tokenHopCycles = 1;      //!< token pass latency per router
    int voqDepthPackets = 8;     //!< per (source, destination) queue
    double cycleSeconds = 0.5e-9;
};

/** Token-arbitrated multiple-writer single-reader crossbar. */
class MwsrNetwork : public sim::Network
{
  public:
    MwsrNetwork(const MwsrConfig &cfg, const photonic::PowerModel &power);

    // sim::Network ------------------------------------------------------
    bool inject(const sim::Packet &pkt) override;
    bool canInject(const sim::Packet &pkt) const override;
    void step() override;
    std::vector<sim::Packet> &delivered() override { return delivered_; }
    sim::Cycle cycle() const override { return cycle_; }
    int numNodes() const override { return cfg_.numNodes; }
    const sim::NetworkStats &stats() const override { return stats_; }
    bool idle() const override;

    /** Total laser energy (all channels always lit), joules. */
    double laserEnergyJ() const;

    /** Mean cycles writers spent waiting for a token (arbitration
     *  latency — the quantity R-SWMR removes). */
    double avgTokenWaitCycles() const;

    /** Current token holder of a destination channel (tests). */
    int
    tokenHolder(int dst) const
    {
        return channels_[static_cast<std::size_t>(dst)].holder;
    }

  private:
    /** One destination's waveguide + its circulating token. */
    struct Channel
    {
        int holder = 0;          //!< router currently holding the token
        int hopCountdown = 0;    //!< cycles until the token lands
        bool transmitting = false;
        int flitsRemaining = 0;
        long creditBits = 0;
        sim::Cycle grabStart = 0;
    };

    struct InFlight
    {
        sim::Cycle due;
        sim::Packet pkt;

        bool
        operator>(const InFlight &o) const
        {
            return due > o.due;
        }
    };

    sim::RingQueue<sim::Packet> &voq(int src, int dst);
    const sim::RingQueue<sim::Packet> &voq(int src, int dst) const;

    MwsrConfig cfg_;
    photonic::PowerModel power_;
    std::vector<Channel> channels_;                   //!< per destination
    std::vector<sim::RingQueue<sim::Packet>> voqs_;   //!< src*N + dst
    sim::MinHeap<InFlight> inFlight_;
    std::vector<sim::Packet> delivered_;
    sim::NetworkStats stats_;
    sim::Cycle cycle_ = 0;
    std::uint64_t tokenWaitTotal_ = 0;
    std::uint64_t tokenGrabs_ = 0;
    std::uint64_t flitsInFlight_ = 0;
};

} // namespace core
} // namespace pearl

#endif // PEARL_CORE_MWSR_NETWORK_HPP
