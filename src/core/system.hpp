/**
 * @file
 * The heterogeneous system driver.
 *
 * Wires 16 ClusterNodes (2 CPU + 4 GPU cores each, running one benchmark
 * pair), the 16 L3 bank slices co-located with the cluster routers, and
 * the memory-controller node to any sim::Network implementation — the
 * PEARL photonic crossbar or the electrical CMESH — and runs the cycle
 * loop: core demand -> caches -> per-node outboxes -> network injection
 * -> delivery -> cache/bank/memory handlers.  Packets whose source and
 * destination share a router (a cluster talking to its own L3 bank) are
 * short-circuited through the local crossbar with a fixed latency instead
 * of touching the optical link.
 */

#ifndef PEARL_CORE_SYSTEM_HPP
#define PEARL_CORE_SYSTEM_HPP

#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "cache/cluster.hpp"
#include "cache/l3.hpp"
#include "cache/memory.hpp"
#include "core/arch_config.hpp"
#include "sim/network.hpp"
#include "sim/sink.hpp"
#include "sim/worker_pool.hpp"
#include "traffic/suite.hpp"

namespace pearl {
namespace core {

/** System-level configuration. */
struct SystemConfig
{
    cache::HierarchyConfig hierarchy;
    ArchSpec arch;
    cache::HomeMap home;          //!< 16 banks, memory at node 16
    /** Cluster count; 0 = auto (one cluster per L3 bank, the legacy
     *  coupling).  Set explicitly (via core::makeSystemConfig) to run
     *  fewer banks than clusters. */
    int clusters = 0;
    std::uint64_t seed = 1;
    std::uint64_t localHopCycles = 4; //!< same-router crossbar round
    double memResponsesPerCycle = 1.6; //!< aggregate MC bandwidth

    /**
     * Livelock watchdog for runUntilIdle: when the system is still
     * pending but neither injects nor delivers a single packet for
     * `watchdogWindows` consecutive windows of `watchdogWindowCycles`
     * cycles, runUntilIdle dumps a diagnostic snapshot (per-router
     * queue depths, outstanding retries) and returns false instead of
     * spinning to max_cycles.  0 window cycles disables the watchdog.
     */
    std::uint64_t watchdogWindowCycles = 10000;
    int watchdogWindows = 5;
};

/** Looks up the telemetry block of a node, or nullptr if none. */
using TelemetryLookup = std::function<sim::RouterTelemetry *(int)>;

/** The full chip: clusters + L3 banks + memory + network. */
class HeteroSystem : public sim::PacketSink
{
  public:
    /**
     * @param network   the interconnect under test (not owned).
     * @param pair      CPU benchmark + GPU benchmark to run.
     * @param cfg       system configuration.
     * @param telemetry optional per-node telemetry lookup (PEARL only).
     */
    HeteroSystem(sim::Network &network, const traffic::BenchmarkPair &pair,
                 const SystemConfig &cfg = SystemConfig{},
                 TelemetryLookup telemetry = nullptr);

    /** Run `cycles` network cycles. */
    void run(sim::Cycle cycles);

    /** Run until nothing is pending or `max_cycles` elapse.
     *  @return true if the system drained. */
    bool runUntilIdle(sim::Cycle max_cycles);

    // sim::PacketSink ----------------------------------------------------
    void send(sim::Packet &&pkt) override;

    /**
     * Install a worker pool for deterministic parallel node ticking
     * (not owned, may be null).  Cluster ticks and bank ticks then run
     * as two separate sharded regions (a cluster and the bank with the
     * same id share a router's outbox and telemetry, so the regions
     * are barrier-separated exactly like the serial loop order), with
     * same-router hops staged per sender and folded into the local-hop
     * queue in node order — the serial push order.  Null or a 1-lane
     * pool keeps the exact serial path.
     */
    void setWorkerPool(sim::WorkerPool *pool);

    // Introspection ---------------------------------------------------
    sim::Network &network() { return network_; }
    const cache::ClusterNode &cluster(int i) const { return *clusters_[i]; }
    const cache::L3Bank &bank(int i) const { return *banks_[i]; }
    const cache::MemoryNode &memory() const { return *memory_; }
    std::size_t outboxDepth(int node) const { return outbox_[node].size(); }

    /** Aggregate cluster statistics over the whole chip. */
    cache::ClusterStats aggregateClusterStats() const;

    /** Aggregate L3 statistics over all banks. */
    cache::L3Stats aggregateL3Stats() const;

    /** Cycles skipped by idle fast-forward (0 when FF is off/inert). */
    sim::Cycle fastForwardedCycles() const { return fastForwarded_; }

  private:
    struct LocalHop
    {
        sim::Cycle due;
        sim::Packet pkt;

        bool
        operator>(const LocalHop &o) const
        {
            return due > o.due;
        }
    };

    void stepOnce();
    void dispatch(const sim::Packet &pkt, sim::Cycle now);
    void dumpStallDiagnostics(sim::Cycle elapsed) const;

    /** Run tick_one(0..count-1) sharded across the pool, contiguous
     *  ranges per lane (each node's state is touched by one lane). */
    void tickNodesParallel(std::size_t count,
                           const std::function<void(std::size_t)> &tick_one);

    /** Drain the per-sender local-hop staging vectors into localHops_
     *  in ascending node order — the serial push order. */
    void foldLocalStage();

    /** True when every node model is drained (idle fast-forward gate). */
    bool fastForwardQuiescent() const;

    sim::Network &network_;
    SystemConfig cfg_;
    TelemetryLookup telemetry_;
    std::unique_ptr<traffic::GlobalPhase> cpuPhase_;
    std::unique_ptr<traffic::GlobalPhase> gpuPhase_;
    std::vector<std::unique_ptr<cache::ClusterNode>> clusters_;
    std::vector<std::unique_ptr<cache::L3Bank>> banks_;
    std::unique_ptr<cache::MemoryNode> memory_;
    std::vector<std::deque<sim::Packet>> outbox_;
    std::priority_queue<LocalHop, std::vector<LocalHop>,
                        std::greater<LocalHop>>
        localHops_;

    /**
     * Idle fast-forward is armed only when (a) PEARL_FAST_FORWARD is
     * not "0" and (b) no generator can ever issue an access (every
     * access-rate threshold is zero).  Under (b) the generator and
     * phase RNG streams are dead code — their values can never reach
     * an observable output — so skipping whole cycles (draws included)
     * is bit-identical to stepping.  Generators with a nonzero rate
     * can fire on any cycle (Bernoulli per cycle), so their honest
     * next-injection bound is 1 and fast-forward stays off.
     */
    bool fastForward_ = false;
    sim::Cycle fastForwarded_ = 0;

    // Deterministic parallel node ticking (inert without a pool).
    sim::WorkerPool *pool_ = nullptr; //!< not owned, may be null
    /** Per-sender staging for same-router hops issued inside a
     *  parallel tick region; folded into localHops_ at the barrier. */
    std::vector<std::vector<LocalHop>> localStage_;
    /** True only inside a parallel tick region: send() then stages
     *  same-router hops instead of pushing the shared queue. */
    bool staging_ = false;
};

} // namespace core
} // namespace pearl

#endif // PEARL_CORE_SYSTEM_HPP
