/**
 * @file
 * PEARL architecture configuration (Tables I and II, Section III).
 */

#ifndef PEARL_CORE_ARCH_CONFIG_HPP
#define PEARL_CORE_ARCH_CONFIG_HPP

#include <cstdint>

#include "photonic/faults.hpp"
#include "photonic/thermal.hpp"
#include "photonic/wl_state.hpp"

namespace pearl {
namespace core {

/** Table I architecture specification (informational + derived clocks). */
struct ArchSpec
{
    int cpuCores = 32;
    int cpuThreadsPerCore = 4;
    double cpuFreqGhz = 4.0;
    int cpuL1InstrKb = 32;
    int cpuL1DataKb = 64;
    int cpuL2Kb = 256;

    int gpuComputeUnits = 64;
    double gpuFreqGhz = 2.0;
    int gpuL1Kb = 64;
    int gpuL2Kb = 512;

    double networkFreqGhz = 2.0;
    int l3CacheMb = 8;
    int mainMemoryGb = 16;

    /** Seconds per network cycle. */
    double
    networkCycleSeconds() const
    {
        return 1e-9 / networkFreqGhz;
    }
};

/** Configuration of the PEARL photonic network model. */
struct PearlConfig
{
    int numClusters = 16;
    int l3Node = 16;              //!< node id of the L3 router

    // Input buffering (slots are 128-bit flits, Section IV).
    int cpuInjectSlots = 64;      //!< CPU-class injection buffer per router
    int gpuInjectSlots = 64;      //!< GPU-class injection buffer per router
    int rxSlotsPerClass = 64;     //!< receive-side buffer per class

    // Link timing.
    int reservationCycles = 2;    //!< R-SWMR reservation + ring tune
    int linkLatencyCycles = 2;    //!< propagation + receive pipeline
    int ejectFlitsPerCycle = 4;   //!< router-to-core ejection bandwidth

    /**
     * The L3 router aggregates the request/response traffic of all 16
     * clusters, so its optical interface is a *group* of parallel data
     * waveguides (the paper connects the split L3 + two memory
     * controllers through their own optical crossbar).  Its transmit
     * capacity, laser power and ring counts scale by this factor.
     */
    int l3WaveguideGroup = 16;

    // Power scaling.
    std::uint64_t reservationWindow = 500; //!< RW in network cycles
    std::uint64_t laserTurnOnCycles = 4;   //!< 2 ns at 2 GHz
    int windowOffsetPerRouter = 10;        //!< staggered RW boundaries

    photonic::WlState initialState = photonic::WlState::WL64;

    /** Seconds per network cycle (2 GHz network clock). */
    double cycleSeconds = 0.5e-9;

    // Ring counts per router for trimming power (64 modulators on the
    // transmit waveguide, 64 detectors across the four receive sets).
    int txRings = 64;
    int rxRings = 64;

    /**
     * When true, the flat Table V trimming power is replaced by the
     * thermal drift + heater feedback model: each router's ring bank
     * tracks die temperature (ambient walk + switching activity) and
     * spends heater power proportional to the trim gap.
     */
    bool useThermalModel = false;
    photonic::ThermalConfig thermal;

    /**
     * Fault-injection scenario (disabled by default).  When
     * `faults.enabled` is false no fault draws happen, no retransmission
     * state is kept, and the network behaves bit-identically to the
     * ideal-fabric model.
     */
    photonic::FaultConfig faults;

    // End-to-end recovery (active only when the fault plane is on).
    /** Cycles a source waits for an ACK before re-arming a packet.
     *  Must comfortably exceed linkLatencyCycles. */
    std::uint64_t ackTimeoutCycles = 128;
    /** Maximum retransmission attempts before a packet is dropped and
     *  counted in NetworkStats::droppedPackets(). */
    int retryLimit = 8;
    /** First-retry backoff in cycles; doubles per attempt. */
    std::uint64_t retxBackoffBase = 8;
    /** Upper bound of the exponential retransmit backoff, cycles. */
    std::uint64_t retxBackoffMax = 1024;

    // Electrical back-end static power of one PEARL router (crossbar,
    // buffers, control), watts.
    double routerStaticW = 0.15;

    // Scale-out: grouped R-SWMR reservation domains ---------------------
    /**
     * Clusters per reservation domain (waveguide group).  0 keeps the
     * legacy single chip-wide domain.  When >0 and smaller than
     * numClusters, each contiguous block of this many cluster routers
     * shares one reservation channel; packets crossing a group boundary
     * (cluster-to-cluster only — hub traffic rides the hub waveguide
     * group and is exempt) go through the per-group *express* plane:
     * they acquire one of `resExpressSlots` slots from the source
     * group's pool and pay the `expressReservationCycles` latency of
     * the chip-wide express reservation channel, exposed only when the
     * transmit channel comes out of idle (a busy channel hides the next
     * packet's express broadcast behind the current packet's data, like
     * the intra-group channel does).  Derive these through
     * core::TopologySpec rather than setting them by hand.
     */
    int reservationGroupSize = 0;
    /** Concurrent inter-group reservations a group may hold. */
    int resExpressSlots = 4;
    /** Reservation cycles for inter-group (express) packets. */
    int expressReservationCycles = 3;
    /** Per-group express reservation-channel laser power, watts
     *  (accrued only when the chip has more than one group). */
    double expressResLaserW = 0.0;

    /**
     * When true, a router's class channel may complete up to
     * `waveguides` packets per cycle — the waveguide group's parallel
     * serializers drain independent packets side by side instead of
     * strictly one at a time.  Matters only for the hub (the one router
     * with a waveguide group): without it the hub serialises memory
     * fills at ~1 packet/cycle/class no matter how many waveguides it
     * has, which caps the whole chip past ~32 clusters.  Off by default
     * (legacy single-serializer hub); TopologySpec switches it on for
     * chips above 16 clusters.
     */
    bool multiPacketTx = false;

    int
    numNodes() const
    {
        return numClusters + 1;
    }

    /** True when the chip has more than one reservation domain. */
    bool
    grouped() const
    {
        return reservationGroupSize > 0 &&
               reservationGroupSize < numClusters;
    }

    /** Reservation domains on the chip (1 when ungrouped). */
    int
    numGroups() const
    {
        return grouped() ? numClusters / reservationGroupSize : 1;
    }

    /** Reservation domain of a node, or -1 for the hub node (hub
     *  traffic is exempt from express arbitration). */
    int
    groupOf(int node) const
    {
        if (!grouped() || node == l3Node || node >= numClusters)
            return -1;
        return node / reservationGroupSize;
    }

    /** True when a src->dst packet crosses a group boundary. */
    bool
    interGroup(int src, int dst) const
    {
        if (!grouped())
            return false;
        const int gs = groupOf(src);
        const int gd = groupOf(dst);
        return gs >= 0 && gd >= 0 && gs != gd;
    }
};

} // namespace core
} // namespace pearl

#endif // PEARL_CORE_ARCH_CONFIG_HPP
