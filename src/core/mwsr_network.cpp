#include "core/mwsr_network.hpp"

#include "common/log.hpp"

namespace pearl {
namespace core {

using sim::Cycle;
using sim::Packet;

MwsrNetwork::MwsrNetwork(const MwsrConfig &cfg,
                         const photonic::PowerModel &power)
    : cfg_(cfg), power_(power),
      channels_(static_cast<std::size_t>(cfg.numNodes)),
      voqs_(static_cast<std::size_t>(cfg.numNodes) *
                static_cast<std::size_t>(cfg.numNodes),
            sim::RingQueue<Packet>(
                static_cast<std::size_t>(cfg.voqDepthPackets)))
{
    PEARL_ASSERT(cfg_.numNodes > 1);
    // Stagger the initial token positions so the channels don't move in
    // lockstep.
    for (int d = 0; d < cfg_.numNodes; ++d)
        channels_[static_cast<std::size_t>(d)].holder = d;
}

sim::RingQueue<Packet> &
MwsrNetwork::voq(int src, int dst)
{
    return voqs_[static_cast<std::size_t>(src) *
                     static_cast<std::size_t>(cfg_.numNodes) +
                 static_cast<std::size_t>(dst)];
}

const sim::RingQueue<Packet> &
MwsrNetwork::voq(int src, int dst) const
{
    return const_cast<MwsrNetwork *>(this)->voq(src, dst);
}

bool
MwsrNetwork::canInject(const Packet &pkt) const
{
    return static_cast<int>(voq(pkt.src, pkt.dst).size()) <
           cfg_.voqDepthPackets;
}

bool
MwsrNetwork::inject(const Packet &pkt)
{
    if (!canInject(pkt))
        return false;
    auto &queue = voq(pkt.src, pkt.dst);
    queue.push_back(pkt);
    Packet &stored = queue.back();
    stored.cycleInjected = cycle_;
    stats_.noteInjected(stored);
    flitsInFlight_ += static_cast<std::uint64_t>(stored.numFlits());
    return true;
}

void
MwsrNetwork::step()
{
    // 1. Land due arrivals.
    while (!inFlight_.empty() && inFlight_.top().due <= cycle_) {
        Packet pkt = inFlight_.top().pkt;
        inFlight_.pop();
        pkt.cycleDelivered = cycle_;
        flitsInFlight_ -= static_cast<std::uint64_t>(pkt.numFlits());
        stats_.noteDelivered(pkt);
        delivered_.push_back(pkt);
    }

    // 2. Each destination channel: serialise, or move the token.
    const int capacity = photonic::bitsPerCycle(cfg_.state);
    for (int d = 0; d < cfg_.numNodes; ++d) {
        Channel &ch = channels_[static_cast<std::size_t>(d)];

        if (ch.transmitting) {
            ch.creditBits += capacity;
            auto &queue = voq(ch.holder, d);
            PEARL_ASSERT(!queue.empty());
            while (ch.creditBits >= sim::kFlitBits &&
                   ch.flitsRemaining > 0) {
                ch.creditBits -= sim::kFlitBits;
                --ch.flitsRemaining;
            }
            if (ch.flitsRemaining == 0) {
                Packet pkt = queue.front();
                queue.pop_front();
                inFlight_.push(InFlight{
                    cycle_ +
                        static_cast<Cycle>(cfg_.linkLatencyCycles),
                    pkt});
                ch.transmitting = false;
                ch.creditBits = 0;
                // The token moves on after a transmission (fairness).
                ch.holder = (ch.holder + 1) % cfg_.numNodes;
                ch.hopCountdown = cfg_.tokenHopCycles;
            }
            continue;
        }

        // Arbitration-wait accounting: traffic is pending for this
        // destination but the channel is idle.
        bool pending = false;
        for (int s = 0; s < cfg_.numNodes && !pending; ++s)
            pending = !voq(s, d).empty();
        if (pending)
            ++tokenWaitTotal_;

        if (ch.hopCountdown > 0) {
            --ch.hopCountdown;
            continue;
        }

        auto &queue = voq(ch.holder, d);
        if (!queue.empty()) {
            ch.transmitting = true;
            ch.flitsRemaining = queue.front().numFlits();
            ch.creditBits = 0;
            ch.grabStart = cycle_;
            ++tokenGrabs_;
        } else {
            ch.holder = (ch.holder + 1) % cfg_.numNodes;
            ch.hopCountdown = cfg_.tokenHopCycles;
        }
    }

    ++cycle_;
}

bool
MwsrNetwork::idle() const
{
    if (!inFlight_.empty())
        return false;
    for (const auto &queue : voqs_) {
        if (!queue.empty())
            return false;
    }
    return true;
}

double
MwsrNetwork::laserEnergyJ() const
{
    // All destination channels are lit at the static state; the power
    // model's per-state value is the network aggregate.
    return power_.laserPowerW(cfg_.state) * static_cast<double>(cycle_) *
           cfg_.cycleSeconds;
}

double
MwsrNetwork::avgTokenWaitCycles() const
{
    return tokenGrabs_ ? static_cast<double>(tokenWaitTotal_) /
                             static_cast<double>(tokenGrabs_)
                       : 0.0;
}

} // namespace core
} // namespace pearl
