/**
 * @file
 * Wavelength-state (laser power) selection policies.
 *
 * At every reservation-window boundary each router asks its policy which
 * of the five wavelength states to run next.  Implementations:
 *  - StaticPolicy:   fixed state (the 64WL baseline and the static 32/16
 *                    configurations of Figure 5);
 *  - ReactivePolicy: Algorithm 1 steps 7-8 — thresholds on the window's
 *                    mean total buffer occupancy;
 *  - RandomPolicy:   uniformly random states, used for the first ML data-
 *                    collection pass (Section IV-A);
 *  - the ML policy lives in src/ml/ (ridge regression + Equation 7).
 */

#ifndef PEARL_CORE_POWER_POLICY_HPP
#define PEARL_CORE_POWER_POLICY_HPP

#include <array>
#include <vector>

#include "common/rng.hpp"
#include "photonic/wl_state.hpp"
#include "sim/packet.hpp"
#include "sim/telemetry.hpp"

namespace pearl {
namespace core {

/**
 * Optional per-decision introspection record for the observability
 * plane.  When tracing is on, the network hangs one of these off the
 * WindowObservation; policies that compute a demand prediction (the ML
 * policy) fill it in so the trace can show *why* a state was picked.
 * A null pointer (the default) costs policies a single branch.
 */
struct DecisionTrace
{
    bool hasPrediction = false;
    /** Predicted packets injected next window (ML policy). */
    double predictedPackets = 0.0;
    /** The feature vector the prediction was made from (Table III). */
    std::vector<double> features;
};

/**
 * Guard-layer outcome of one decision, reported back to the network so
 * fallback transitions land in telemetry, NetworkStats and the trace.
 * Plain policies never touch it (`guarded` stays false); the guarded ML
 * wrapper (ml::GuardedPolicy) fills it on every window.
 */
struct PolicyFeedback
{
    bool guarded = false;         //!< a guard layer produced this decision
    bool fallbackActive = false;  //!< decision came from the fallback policy
    bool enteredFallback = false; //!< guard tripped at this boundary
    bool exitedFallback = false;  //!< guard recovered at this boundary
    bool clampedPrediction = false; //!< raw prediction was insane
    /** Windowed mean of the normalised prediction error in [0, 1]. */
    double windowError = 0.0;
};

/** Everything a policy may look at when picking the next state. */
struct WindowObservation
{
    int router = 0;                      //!< router id
    bool isL3Router = false;
    photonic::WlState currentState = photonic::WlState::WL64;
    /** Mean of Buf_omega (beta_CPU + beta_GPU, in [0,2]) over the window
     *  — Algorithm 1 step 7's beta_total. */
    double betaTotalMean = 0.0;
    /** The full telemetry of the window that just ended. */
    const sim::RouterTelemetry *telemetry = nullptr;
    std::uint64_t windowCycles = 0;
    sim::Cycle windowEnd = 0;
    /**
     * Highest state the router's surviving laser banks can sustain
     * (WL64 on a healthy fabric).  The network clamps whatever the
     * policy returns, but policies may use the ceiling to avoid wasting
     * a window commanding unavailable states.
     */
    photonic::WlState wlCeiling = photonic::WlState::WL64;
    /** Non-null only while tracing: policies record their prediction
     *  here for the wavelength trace events. */
    DecisionTrace *decision = nullptr;
    /** Non-null when the network wants guard-layer outcomes (fallback
     *  transitions) reported; plain policies ignore it. */
    PolicyFeedback *feedback = nullptr;
};

/** Per-router wavelength-state selection policy. */
class PowerPolicy
{
  public:
    virtual ~PowerPolicy() = default;

    /** Pick the wavelength state for the next reservation window. */
    virtual photonic::WlState nextState(const WindowObservation &obs) = 0;

    /** Human-readable policy name for result tables. */
    virtual const char *name() const = 0;
};

/** Fixed wavelength state. */
class StaticPolicy : public PowerPolicy
{
  public:
    explicit StaticPolicy(photonic::WlState state) : state_(state) {}

    photonic::WlState
    nextState(const WindowObservation &) override
    {
        return state_;
    }

    const char *name() const override { return "static"; }

  private:
    photonic::WlState state_;
};

/** Thresholds for the reactive scaler (Algorithm 1 step 8). */
struct ReactiveThresholds
{
    double upper = 0.80;    //!< beta_total above this -> 64 WL
    double midUpper = 0.45; //!< -> 48 WL
    double midLower = 0.22; //!< -> 32 WL
    double lower = 0.09;    //!< -> 16 WL; below -> 8 WL

    /** Whether the 8WL low state may be used (else 16WL is the floor). */
    bool enable8Wl = true;
};

/** Reactive buffer-occupancy power scaling (Algorithm 1 steps 7-8). */
class ReactivePolicy : public PowerPolicy
{
  public:
    explicit ReactivePolicy(const ReactiveThresholds &t = {}) : t_(t) {}

    photonic::WlState
    nextState(const WindowObservation &obs) override
    {
        const double beta = obs.betaTotalMean;
        if (beta > t_.upper)
            return photonic::WlState::WL64;
        if (beta > t_.midUpper)
            return photonic::WlState::WL48;
        if (beta > t_.midLower)
            return photonic::WlState::WL32;
        if (beta > t_.lower)
            return photonic::WlState::WL16;
        return t_.enable8Wl ? photonic::WlState::WL8
                            : photonic::WlState::WL16;
    }

    const char *name() const override { return "reactive"; }

    const ReactiveThresholds &thresholds() const { return t_; }

  private:
    ReactiveThresholds t_;
};

/** Uniformly random states (first ML data-collection pass). */
class RandomPolicy : public PowerPolicy
{
  public:
    /**
     * @param rng          forked stream.
     * @param include8Wl   include the 8WL state in the draw (the paper
     *                     excludes it during training).
     */
    explicit RandomPolicy(Rng rng, bool include8_wl = false)
        : rng_(rng), include8Wl_(include8_wl)
    {}

    photonic::WlState
    nextState(const WindowObservation &) override
    {
        const int lo = include8Wl_ ? 0 : 1;
        return photonic::stateFromIndex(
            static_cast<int>(rng_.range(lo, photonic::kNumWlStates - 1)));
    }

    const char *name() const override { return "random"; }

  private:
    Rng rng_;
    bool include8Wl_;
};

} // namespace core
} // namespace pearl

#endif // PEARL_CORE_POWER_POLICY_HPP
