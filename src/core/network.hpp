/**
 * @file
 * The PEARL photonic crossbar network (Section III).
 *
 * Seventeen routers (16 clusters + L3) each own a single-writer
 * multiple-reader data waveguide; there is no inter-router contention on
 * the transmit side beyond the source's own serialisation, and receives
 * land in per-class receive buffers drained at a finite ejection
 * bandwidth.  Reservation-window boundaries (staggered 10 cycles per
 * router, Section IV-A) invoke the installed PowerPolicy per router and
 * hand the closing window's telemetry to an optional collector callback —
 * that is the hook the ML training pipeline uses.
 */

#ifndef PEARL_CORE_NETWORK_HPP
#define PEARL_CORE_NETWORK_HPP

#include <array>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/arch_config.hpp"
#include "core/power_policy.hpp"
#include "core/router.hpp"
#include "obs/trace.hpp"
#include "photonic/faults.hpp"
#include "photonic/power_model.hpp"
#include "photonic/thermal.hpp"
#include "common/log.hpp"
#include "sim/min_heap.hpp"
#include "sim/network.hpp"
#include "sim/worker_pool.hpp"

namespace pearl {
namespace core {

/** Data handed to the window collector when a router's window closes. */
struct WindowRecord
{
    int router = 0;
    sim::Cycle windowEnd = 0;
    std::uint64_t windowCycles = 0;
    double betaTotalMean = 0.0;
    photonic::WlState stateDuringWindow = photonic::WlState::WL64;
    photonic::WlState stateChosen = photonic::WlState::WL64;
    sim::RouterTelemetry telemetry; //!< snapshot before the reset
};

/** Callback observing every closed reservation window. */
using WindowCollector = std::function<void(const WindowRecord &)>;

class PearlNetwork;

/**
 * Per-step hook for the verification plane (src/verify).
 *
 * The network calls afterStep() at the end of every step(), before the
 * cycle counter increments, so the auditor sees the post-step state
 * tagged with the cycle that just executed.  With no auditor installed —
 * the default — the hook is a single null-pointer test; idle
 * fast-forward (advanceIdle) does not call it, auditors must tolerate
 * cycle jumps between calls.
 */
class StepAuditor
{
  public:
    virtual ~StepAuditor() = default;

    /** Inspect the network after one step(); throw to abort the run. */
    virtual void afterStep(const PearlNetwork &net) = 0;
};

/**
 * Packet-population counts for conservation checking.  Every packet the
 * network has accepted is, at a step boundary, in exactly one place:
 * delivered, dropped, buffered in a router, on a waveguide (inFlight),
 * waiting out a retransmit backoff (retxQueued) — or it exists only as
 * an un-ACKed source copy (a reservation-dropped or corrupted instance
 * whose timeout has not fired yet).  `outstanding` double-counts the
 * in-flight packets that have not had their fault check yet, which is
 * what `inFlightUnchecked` lets the checker subtract.
 */
struct AuditCounts
{
    std::uint64_t injected = 0;      //!< accepted first injections
    std::uint64_t retransmitted = 0; //!< accepted re-injections
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;       //!< retry budget exhausted
    std::uint64_t buffered = 0;      //!< packets in inject + rx buffers
    std::uint64_t inFlight = 0;
    std::uint64_t inFlightUnchecked = 0; //!< BER draw still pending
    std::uint64_t retxQueued = 0;
    std::uint64_t outstanding = 0;   //!< un-ACKed source copies
};

/** The PEARL network model. */
class PearlNetwork : public sim::Network
{
  public:
    /**
     * @param cfg    network configuration.
     * @param power  photonic power model with *network-aggregate* laser
     *               state powers (scaled per router internally).
     * @param dba    dynamic bandwidth allocator configuration.
     * @param policy wavelength-state policy shared by all routers; must
     *               outlive the network.
     */
    PearlNetwork(const PearlConfig &cfg,
                 const photonic::PowerModel &power, const DbaConfig &dba,
                 PowerPolicy *policy);

    /** Install a collector for closed reservation windows (ML pipeline). */
    void setWindowCollector(WindowCollector collector)
    {
        collector_ = std::move(collector);
    }

    /**
     * Attach an event tracer (observability plane; not owned, may be
     * null).  With no tracer installed — the default — every hook is a
     * single null-pointer test and the simulation is bit-identical to
     * an uninstrumented build; tracing never draws from the RNG.
     */
    void setTracer(obs::Tracer *tracer) { tracer_ = tracer; }

    /**
     * Install a per-step auditor (verification plane; not owned, may be
     * null).  Same zero-cost contract as the tracer: without one the
     * hook is a single branch and the simulation is unchanged.
     */
    void setAuditor(StepAuditor *auditor) { auditor_ = auditor; }

    /**
     * Install a worker pool for deterministic intra-run parallel
     * stepping (not owned, may be null).  step()'s per-router middle
     * stages (transmit, eject, power integration) then run sharded
     * across the pool's lanes into per-shard scratch, and a fixed-order
     * serial reduction folds the scratch back, so the simulation is
     * bit-identical at any lane count.  Shard boundaries never split a
     * waveguide group (express-slot arbitration stays single-threaded
     * per group) and the hub is its own unit.  A null pool or a 1-lane
     * pool keeps the exact serial code path.
     */
    void setWorkerPool(sim::WorkerPool *pool);

    /**
     * Enable/disable dynamic shard rebalancing (PEARL_REBALANCE sets
     * the default when setWorkerPool runs).  When on, the parallel
     * step counts busy (non-quiescent) cycles per router and re-packs
     * the shard boundaries from those counters at every full
     * reservation-window boundary.  Deterministic: the counters are a
     * pure function of simulation state, and any contiguous ascending
     * packing folds in the same serial order — results are unchanged,
     * only the per-lane work split moves.
     */
    void setShardRebalance(bool on) { rebalance_ = on; }
    bool shardRebalance() const { return rebalance_; }

    // sim::Network --------------------------------------------------------
    bool inject(const sim::Packet &pkt) override;
    bool canInject(const sim::Packet &pkt) const override;
    void step() override;
    sim::Cycle advanceIdle(sim::Cycle max_cycles) override;
    std::vector<sim::Packet> &delivered() override { return delivered_; }
    sim::Cycle cycle() const override { return cycle_; }
    int numNodes() const override { return cfg_.numNodes(); }
    const sim::NetworkStats &stats() const override { return stats_; }
    bool idle() const override;
    void describeState(std::ostream &os) const override;

    // Grouped R-SWMR express plane ------------------------------------
    /** The chip's express-slot arbiter (configured only when grouped). */
    const ExpressArbiter &expressArbiter() const { return express_; }

    /** Express slots acquired across the run (grouped chips only). */
    std::uint64_t expressAcquired() const;

    /** Head-of-line cycles lost waiting for an express slot. */
    std::uint64_t expressStallCycles() const;

    /** Energy of the per-group express reservation channels, joules
     *  (also included in laserEnergyJ()). */
    double expressLaserEnergyJ() const { return expressLaserEnergyJ_; }

    // Energy / power --------------------------------------------------
    double laserEnergyJ() const;
    double trimmingEnergyJ() const { return trimmingEnergyJ_; }
    double dynamicEnergyJ() const { return dynamicEnergyJ_; }
    double staticEnergyJ() const;
    double totalEnergyJ() const;

    /** Network-wide average laser power in watts over the run. */
    double averageLaserPowerW() const;

    /** Fraction of router-cycles spent in `s` (Figure 8). */
    double residency(photonic::WlState s) const;

    /** Thermal bank of a router (only when useThermalModel). */
    const photonic::ThermalRingBank &thermalBank(int node) const
    {
        PEARL_ASSERT(node < static_cast<int>(thermal_.size()));
        return thermal_[static_cast<std::size_t>(node)];
    }

    /** Fraction of router-steps with rings out of thermal lock. */
    double thermalUnlockedFraction() const;

    // Fault plane / resilience ----------------------------------------
    /** The fault injector (inert unless cfg.faults.enabled). */
    const photonic::FaultInjector &faults() const { return faults_; }

    /** Packets transmitted by `node` still awaiting an ACK. */
    std::size_t
    outstandingAcks(int node) const
    {
        return faults_.enabled()
                   ? outstanding_[static_cast<std::size_t>(node)].size()
                   : 0;
    }

    /** Packets network-wide waiting in the retransmit backoff queue. */
    std::size_t pendingRetransmits() const { return retx_.size(); }

    // Introspection ---------------------------------------------------
    PearlRouter &router(int node) { return *routers_[node]; }
    const PearlRouter &router(int node) const { return *routers_[node]; }
    sim::RouterTelemetry &telemetryOf(int node)
    {
        return routers_[node]->telemetry();
    }
    const PearlConfig &config() const { return cfg_; }
    const photonic::PowerModel &routerPowerModel() const
    {
        return routerPower_;
    }

    // Verification plane ----------------------------------------------
    /** Where every accepted packet currently is (see AuditCounts). */
    AuditCounts auditCounts() const;

    /** Bits put on `node`'s waveguide during the last step(). */
    int
    bitsTransmitted(int node) const
    {
        return bitsScratch_[static_cast<std::size_t>(node)];
    }

  private:
    struct InFlight
    {
        sim::Cycle due;
        sim::Packet pkt;
        bool faultChecked = false; //!< BER draw already taken (rx retry)

        bool
        operator>(const InFlight &o) const
        {
            return due > o.due;
        }
    };

    /** A transmitted packet the source keeps until it is ACKed. */
    struct Outstanding
    {
        sim::Packet pkt;
        std::uint16_t attempt = 0;
    };

    /** Scheduled ACK-timeout check for one (source, seq, attempt). */
    struct TimeoutEvent
    {
        sim::Cycle due;
        int src;
        std::uint64_t seq;
        std::uint16_t attempt;

        bool
        operator>(const TimeoutEvent &o) const
        {
            return due > o.due;
        }
    };

    /** A packet waiting out its retransmit backoff. */
    struct PendingRetx
    {
        sim::Cycle due;
        sim::Packet pkt;

        bool
        operator>(const PendingRetx &o) const
        {
            return due > o.due;
        }
    };

    bool isWindowBoundary(int router, sim::Cycle now) const;

    /** Receiver-side thermal condition feeding the BER model. */
    void receiverThermal(int node, double &trim_gap_c,
                         bool &locked) const;

    /** Schedule a retransmission (or count the drop when the retry
     *  budget is spent).  `delay` models NACK/timeout signalling time. */
    void armRetry(Outstanding &&entry, sim::Cycle delay);

    /** Track a fresh transmission: outstanding entry + timeout event. */
    void trackTransmission(const sim::Packet &pkt);

    void stepFaultPlane();
    void drainRetxQueue();

    /** Shared tail of stage 2 for one completed transmission from
     *  router `r`: sequence assignment, ACK tracking, the reservation
     *  drop draw and the in-flight push.  Called in ascending router
     *  order (per-router completion order within) by both step paths,
     *  so the fault-plane RNG and heap insertion orders match. */
    void foldCompletion(int r, TxCompletion &completion);

    /** Stages 2-4 of step(): transmit, ejection and power integration.
     *  The serial variant is the pre-parallelism code verbatim; the
     *  parallel variant runs the per-router work sharded into
     *  per-shard scratch, then applies the deterministic serial folds
     *  (see DESIGN.md "Parallel stepping"). */
    void stepSerialMiddle();
    void stepParallelMiddle();

    /** Emit an instant fault event (tracer_ checked by the caller). */
    void traceFaultEvent(const char *name, int router,
                         const sim::Packet &pkt);

    PearlConfig cfg_;
    photonic::PowerModel routerPower_; //!< per-router scaled model
    photonic::PowerModel l3Power_;     //!< L3 router (waveguide group)
    PowerPolicy *policy_;
    WindowCollector collector_;
    obs::Tracer *tracer_ = nullptr;    //!< observability plane (optional)
    StepAuditor *auditor_ = nullptr;   //!< verification plane (optional)
    /** Per-router thermal lock state last traced (1 = locked); used to
     *  emit lock-transition events instead of one event per cycle. */
    std::vector<char> tracedLock_;
    std::vector<std::unique_ptr<PearlRouter>> routers_;
    sim::MinHeap<InFlight> inFlight_;
    std::vector<sim::Packet> delivered_;
    std::vector<photonic::ThermalRingBank> thermal_; //!< optional
    photonic::FaultInjector faults_;
    /** Per-source next sequence number (faults enabled only). */
    std::vector<std::uint64_t> nextSeq_;
    /** Per-source un-ACKed transmissions, keyed by sequence number. */
    std::vector<std::unordered_map<std::uint64_t, Outstanding>>
        outstanding_;
    sim::MinHeap<TimeoutEvent> timeouts_;
    sim::MinHeap<PendingRetx> retx_;
    sim::NetworkStats stats_;
    sim::Cycle cycle_ = 0;
    double trimmingEnergyJ_ = 0.0;
    double dynamicEnergyJ_ = 0.0;
    /** Grouped chips: per-group express reservation channels (slot pool
     *  + always-on laser energy).  Inert when cfg_.grouped() is false,
     *  so ungrouped chips stay bit-identical. */
    ExpressArbiter express_;
    double expressLaserEnergyJ_ = 0.0;
    /** Constants of the power model hoisted out of the cycle loop: the
     *  per-bit dynamic energy, and the trimming power per router per
     *  laser state (a pure function of both).  Values come from the
     *  same PowerModel calls the loop used to make, so the per-cycle
     *  energy accumulation is bit-identical. */
    double dynEnergyPerBitJ_ = 0.0;
    std::vector<std::array<double, photonic::kNumWlStates>> trimPowerW_;
    /** Per-router staggered window offset: (windowOffsetPerRouter * r)
     *  mod reservationWindow, precomputed for the boundary check. */
    std::vector<std::uint64_t> windowOffsets_;

    // Per-step scratch, hoisted out of step()/drainRetxQueue() so the
    // steady-state cycle loop performs no heap allocation.
    std::vector<InFlight> retryScratch_;
    std::vector<TxCompletion> doneScratch_;
    std::vector<int> bitsScratch_;
    std::vector<PendingRetx> blockedScratch_;

    // Deterministic parallel stepping (inert without a worker pool).
    /** Contiguous, group-aligned router range one shard owns. */
    struct StepShard
    {
        int begin = 0;
        int end = 0; //!< exclusive
    };
    sim::WorkerPool *pool_ = nullptr; //!< not owned, may be null
    std::vector<StepShard> shards_;   //!< empty == serial stepping
    /** Per-shard scratch the parallel middle writes and the serial
     *  folds consume, pre-sized so the cycle loop stays allocation-free
     *  in steady state. */
    std::vector<std::vector<TxCompletion>> shardDone_;
    std::vector<std::vector<sim::Packet>> shardDelivered_;
    std::vector<double> trimScratch_; //!< per-router trimming joules

    /** Pack `shardUnitEnd_` units into ≤ shardLanes_ contiguous shards
     *  balanced by per-router weight (uniform weights reproduce the
     *  original equal-count packing exactly). */
    void packShards(const std::vector<std::uint64_t> &router_weight);
    /** Re-pack from busyScratch_ + 1 and reset the counters. */
    void rebalanceShards();

    // Dynamic shard rebalancing (PEARL_REBALANCE; parallel path only).
    bool rebalance_ = false;
    int shardLanes_ = 0;              //!< lane count captured at install
    std::vector<int> shardUnitEnd_;   //!< indivisible unit boundaries
    std::vector<std::uint64_t> busyScratch_; //!< busy cycles per router
};

} // namespace core
} // namespace pearl

#endif // PEARL_CORE_NETWORK_HPP
