/**
 * @file
 * The PEARL photonic crossbar network (Section III).
 *
 * Seventeen routers (16 clusters + L3) each own a single-writer
 * multiple-reader data waveguide; there is no inter-router contention on
 * the transmit side beyond the source's own serialisation, and receives
 * land in per-class receive buffers drained at a finite ejection
 * bandwidth.  Reservation-window boundaries (staggered 10 cycles per
 * router, Section IV-A) invoke the installed PowerPolicy per router and
 * hand the closing window's telemetry to an optional collector callback —
 * that is the hook the ML training pipeline uses.
 */

#ifndef PEARL_CORE_NETWORK_HPP
#define PEARL_CORE_NETWORK_HPP

#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "core/arch_config.hpp"
#include "core/power_policy.hpp"
#include "core/router.hpp"
#include "photonic/power_model.hpp"
#include "photonic/thermal.hpp"
#include "common/log.hpp"
#include "sim/network.hpp"

namespace pearl {
namespace core {

/** Data handed to the window collector when a router's window closes. */
struct WindowRecord
{
    int router = 0;
    sim::Cycle windowEnd = 0;
    std::uint64_t windowCycles = 0;
    double betaTotalMean = 0.0;
    photonic::WlState stateDuringWindow = photonic::WlState::WL64;
    photonic::WlState stateChosen = photonic::WlState::WL64;
    sim::RouterTelemetry telemetry; //!< snapshot before the reset
};

/** Callback observing every closed reservation window. */
using WindowCollector = std::function<void(const WindowRecord &)>;

/** The PEARL network model. */
class PearlNetwork : public sim::Network
{
  public:
    /**
     * @param cfg    network configuration.
     * @param power  photonic power model with *network-aggregate* laser
     *               state powers (scaled per router internally).
     * @param dba    dynamic bandwidth allocator configuration.
     * @param policy wavelength-state policy shared by all routers; must
     *               outlive the network.
     */
    PearlNetwork(const PearlConfig &cfg,
                 const photonic::PowerModel &power, const DbaConfig &dba,
                 PowerPolicy *policy);

    /** Install a collector for closed reservation windows (ML pipeline). */
    void setWindowCollector(WindowCollector collector)
    {
        collector_ = std::move(collector);
    }

    // sim::Network --------------------------------------------------------
    bool inject(const sim::Packet &pkt) override;
    bool canInject(const sim::Packet &pkt) const override;
    void step() override;
    std::vector<sim::Packet> &delivered() override { return delivered_; }
    sim::Cycle cycle() const override { return cycle_; }
    int numNodes() const override { return cfg_.numNodes(); }
    const sim::NetworkStats &stats() const override { return stats_; }
    bool idle() const override;

    // Energy / power --------------------------------------------------
    double laserEnergyJ() const;
    double trimmingEnergyJ() const { return trimmingEnergyJ_; }
    double dynamicEnergyJ() const { return dynamicEnergyJ_; }
    double staticEnergyJ() const;
    double totalEnergyJ() const;

    /** Network-wide average laser power in watts over the run. */
    double averageLaserPowerW() const;

    /** Fraction of router-cycles spent in `s` (Figure 8). */
    double residency(photonic::WlState s) const;

    /** Thermal bank of a router (only when useThermalModel). */
    const photonic::ThermalRingBank &thermalBank(int node) const
    {
        PEARL_ASSERT(node < static_cast<int>(thermal_.size()));
        return thermal_[static_cast<std::size_t>(node)];
    }

    /** Fraction of router-steps with rings out of thermal lock. */
    double thermalUnlockedFraction() const;

    // Introspection ---------------------------------------------------
    PearlRouter &router(int node) { return *routers_[node]; }
    const PearlRouter &router(int node) const { return *routers_[node]; }
    sim::RouterTelemetry &telemetryOf(int node)
    {
        return routers_[node]->telemetry();
    }
    const PearlConfig &config() const { return cfg_; }
    const photonic::PowerModel &routerPowerModel() const
    {
        return routerPower_;
    }

  private:
    struct InFlight
    {
        sim::Cycle due;
        sim::Packet pkt;

        bool
        operator>(const InFlight &o) const
        {
            return due > o.due;
        }
    };

    bool isWindowBoundary(int router, sim::Cycle now) const;

    PearlConfig cfg_;
    photonic::PowerModel routerPower_; //!< per-router scaled model
    photonic::PowerModel l3Power_;     //!< L3 router (waveguide group)
    PowerPolicy *policy_;
    WindowCollector collector_;
    std::vector<std::unique_ptr<PearlRouter>> routers_;
    std::priority_queue<InFlight, std::vector<InFlight>,
                        std::greater<InFlight>>
        inFlight_;
    std::vector<sim::Packet> delivered_;
    std::vector<photonic::ThermalRingBank> thermal_; //!< optional
    sim::NetworkStats stats_;
    sim::Cycle cycle_ = 0;
    double trimmingEnergyJ_ = 0.0;
    double dynamicEnergyJ_ = 0.0;
};

} // namespace core
} // namespace pearl

#endif // PEARL_CORE_NETWORK_HPP
