/**
 * @file
 * Area model (Table II): per-component silicon area of the PEARL chip,
 * including the overheads of the dynamic allocation scheme and the ML
 * power-scaling unit.
 */

#ifndef PEARL_CORE_AREA_MODEL_HPP
#define PEARL_CORE_AREA_MODEL_HPP

namespace pearl {
namespace core {

/** Component areas in mm^2 (Table II, per instance unless noted). */
struct AreaModel
{
    double clusterMm2 = 25.0;          //!< CPUs + GPUs + L1s, per cluster
    double l2PerClusterMm2 = 2.1;      //!< both L2s, per cluster
    double opticalComponentsMm2 = 24.4; //!< MRRs + waveguides, whole chip
    double l3Mm2 = 8.5;                //!< shared L3, whole chip
    double routerMm2 = 0.342;          //!< per router
    double laserPerRouterMm2 = 0.312;  //!< on-chip laser array, per router
    double dynamicAllocationMm2 = 0.576; //!< DBA logic, whole chip
    double machineLearningMm2 = 0.018; //!< ML unit, whole chip

    double waveguideWidthUm = 5.28;
    double mrrDiameterUm = 3.3;

    /** Total chip area for `clusters` clusters and `routers` routers. */
    double
    totalMm2(int clusters = 16, int routers = 17) const
    {
        return clusterMm2 * clusters + l2PerClusterMm2 * clusters +
               opticalComponentsMm2 + l3Mm2 + routerMm2 * routers +
               laserPerRouterMm2 * routers + dynamicAllocationMm2 +
               machineLearningMm2;
    }

    /** Area overhead fraction of the adaptive machinery (DBA + ML). */
    double
    adaptiveOverheadFraction(int clusters = 16, int routers = 17) const
    {
        return (dynamicAllocationMm2 + machineLearningMm2) /
               totalMm2(clusters, routers);
    }
};

} // namespace core
} // namespace pearl

#endif // PEARL_CORE_AREA_MODEL_HPP
