#include "core/topology.hpp"

#include <algorithm>

#include "core/validate.hpp"

namespace pearl {
namespace core {

namespace {

/** Per-wavelength laser power of a reservation channel, watts.  The
 *  Table V WL8 bank spends 145 mW across the whole 32-waveguide data
 *  fabric; one reservation wavelength is the matching slice
 *  (~0.6 mW). */
constexpr double kResWavelengthW = 0.0006;

} // namespace

int
TopologySpec::resolvedGroupSize() const
{
    if (clustersPerGroup > 0)
        return clustersPerGroup;
    if (clusters <= 16)
        return clusters; // legacy single reservation domain
    // Auto: the largest divisor of `clusters` no wider than the legacy
    // 16-router domain, so reservation latency never regresses.
    for (int size = 16; size > 1; --size) {
        if (clusters % size == 0)
            return size;
    }
    return 1;
}

Validation
TopologySpec::validate() const
{
    if (clusters < 1 || clusters > cache::kMaxClusters)
        return configError("TopologySpec.clusters must be in [1, ",
                           cache::kMaxClusters, "] (directory mask "
                           "width), got ", clusters);
    if (clustersPerGroup < 0 || clustersPerGroup > clusters)
        return configError("TopologySpec.clustersPerGroup must be in "
                           "[0, clusters=", clusters, "], got ",
                           clustersPerGroup);
    if (clustersPerGroup > 0 && clusters % clustersPerGroup != 0)
        return configError("TopologySpec.clustersPerGroup=",
                           clustersPerGroup, " must divide clusters=",
                           clusters,
                           " (reservation domains are equal-sized "
                           "waveguide groups)");
    if (mcNode < -1 || mcNode > clusters)
        return configError("TopologySpec.mcNode must be -1 (dedicated "
                           "hub node) or in [0, clusters=", clusters,
                           "], got ", mcNode);
    if (l3Banks < 0 || l3Banks > clusters)
        return configError("TopologySpec.l3Banks must be in [0, "
                           "clusters=", clusters, "] (one slice per "
                           "cluster router at most), got ", l3Banks);
    if (hubWaveguides < 0)
        return configError("TopologySpec.hubWaveguides must be >= 0, "
                           "got ", hubWaveguides);
    return {};
}

photonic::ReservationConfig
TopologySpec::reservationConfig() const
{
    photonic::ReservationConfig cfg;
    cfg.numRouters = resolvedGroupSize();
    return cfg;
}

PearlConfig
TopologySpec::pearlConfig() const
{
    throwIfInvalid(validate());

    PearlConfig cfg;
    cfg.numClusters = clusters;
    cfg.l3Node = resolvedMcNode();
    cfg.l3WaveguideGroup = resolvedHubWaveguides();

    // Reservation latency from the Section III-A3 sizing formula over
    // one reservation domain (group 16 -> 12-bit packet -> 2
    // wavelengths -> 2 cycles, the legacy Table II figure).
    const photonic::ReservationChannel channel(reservationConfig());
    cfg.reservationCycles = channel.latencyCycles(channel.wavelengthsNeeded());

    // Receivers tune per reservation domain, not per chip: four
    // detector sets per listener in the group (group 16 -> 64, the
    // legacy ring count).
    cfg.rxRings = 4 * resolvedGroupSize();

    // Scale-out chips drain the hub's waveguide group with parallel
    // serializers; otherwise memory fills serialise at one packet per
    // cycle per class and the hub caps the whole chip (the paper-sized
    // chip keeps the legacy single-serializer hub, bit-identically).
    cfg.multiPacketTx = clusters > 16;

    // Grouped R-SWMR express plane — active only with >1 domain.
    if (numGroups() > 1) {
        cfg.reservationGroupSize = resolvedGroupSize();
        // One express slot per router in the group: every router can
        // keep an inter-group packet in flight, and the pool only
        // throttles when one class piles on (or faults shrink the cap).
        // Sized below that, the pool itself becomes the scale-out
        // bottleneck — measured at 64 clusters, a quarter-sized pool
        // cut per-cluster throughput 2.5x.  The floor of 2 keeps both
        // class channels of a single-router domain transmitting.
        cfg.resExpressSlots = std::max(2, resolvedGroupSize());
        // Inter-group reservations broadcast chip-wide on a single
        // shared wavelength: always exposed, never back-to-back.
        photonic::ReservationConfig express;
        express.numRouters = clusters;
        cfg.expressReservationCycles =
            photonic::ReservationChannel(express).latencyCycles(1);
        cfg.expressResLaserW = kResWavelengthW;
    }

    throwIfInvalid(core::validate(cfg));
    return cfg;
}

SystemConfig
makeSystemConfig(const TopologySpec &spec)
{
    throwIfInvalid(spec.validate());

    SystemConfig sys;
    sys.clusters = spec.clusters;
    sys.home.numBanks = spec.resolvedL3Banks();
    sys.home.memoryNode = spec.resolvedMcNode();

    // Hold the per-cluster L3 slice constant (512 kB = 8192 lines per
    // cluster), so cache behaviour stays comparable across chip sizes
    // and the 16-cluster chip keeps its 8 MB Table I capacity.
    sys.hierarchy.l3Lines =
        static_cast<std::uint64_t>(spec.clusters) * 8192;
    sys.arch.l3CacheMb = std::max(1, spec.clusters / 2);

    // Weak-scale the shared working set past the paper-sized chip (128
    // lines per cluster, the legacy 2048 at 16 clusters).  With a fixed
    // shared region, per-line coherence contention grows linearly with
    // the core count and serialises the whole machine — Gustafson, not
    // Amdahl, is the scale-out regime.  Chips at or below 16 clusters
    // keep the legacy size exactly.
    if (spec.clusters > 16) {
        sys.hierarchy.sharedLines =
            sys.hierarchy.sharedLines * spec.clusters / 16;
    }

    // Aggregate MC bandwidth tracks chip size (16 clusters -> the
    // legacy 1.6 responses/cycle).
    sys.memResponsesPerCycle = 0.1 * spec.clusters;
    return sys;
}

} // namespace core
} // namespace pearl
