#include "core/router.hpp"

#include <cmath>

#include "common/log.hpp"

namespace pearl {
namespace core {

using sim::CoreType;
using sim::Cycle;
using sim::Packet;

PearlRouter::PearlRouter(int id, const PearlConfig &cfg,
                         const photonic::PowerModel &power_model,
                         const DbaConfig &dba_cfg, int waveguides)
    : id_(id), cfg_(cfg), waveguides_(waveguides), dba_(dba_cfg),
      inject_(cfg.cpuInjectSlots, cfg.gpuInjectSlots),
      rx_(cfg.rxSlotsPerClass, cfg.rxSlotsPerClass),
      laser_(power_model, cfg.laserTurnOnCycles, cfg.initialState)
{
    telemetry_.wavelengths = photonic::wavelengths(cfg.initialState);
}

bool
PearlRouter::canAccept(const Packet &pkt) const
{
    return inject_.of(pkt.coreType()).canAccept(pkt.numFlits());
}

bool
PearlRouter::inject(const Packet &pkt, Cycle now)
{
    Packet copy = pkt;
    copy.cycleInjected = now;
    if (!inject_.of(copy.coreType()).push(copy))
        return false;
    // Telemetry: the packet entered the router from the local cores or
    // caches and is the quantity the ML model predicts (the label).
    telemetry_.noteClass(copy.msgClass);
    ++telemetry_.incomingFromCores;
    ++telemetry_.packetsInjected;
    if (copy.request())
        ++telemetry_.requestsSent;
    else
        ++telemetry_.responsesSent;
    return true;
}

bool
PearlRouter::reinject(const Packet &pkt, Cycle now)
{
    Packet copy = pkt;
    copy.cycleInjected = now;
    if (!inject_.of(copy.coreType()).push(copy))
        return false;
    ++telemetry_.retransmitsQueued;
    return true;
}

void
PearlRouter::accumulateOccupancy()
{
    telemetry_.cpuCoreBufOccupancy += inject_.occupancy(CoreType::CPU);
    telemetry_.gpuCoreBufOccupancy += inject_.occupancy(CoreType::GPU);
    telemetry_.otherRouterCpuBufOccupancy += rx_.occupancy(CoreType::CPU);
    telemetry_.otherRouterGpuBufOccupancy += rx_.occupancy(CoreType::GPU);
    betaWindowSum_ += inject_.totalOccupancy();
    ++windowCycles_;
}

int
PearlRouter::transmitClass(CoreType type, double share, int capacity_bits,
                           std::vector<TxCompletion> &done)
{
    sim::FlitBuffer &buf = inject_.of(type);
    TxChannel &ch = tx_[static_cast<int>(type)];

    if (buf.empty()) {
        // Nothing queued: credits don't bank across idle periods, and
        // the next packet's reservation can no longer hide behind data.
        ch.creditBits = 0;
        ch.backToBack = false;
        return 0;
    }

    if (!ch.active) {
        // New head packet.  The reservation broadcast runs on its own
        // waveguide, so it overlaps the previous packet's data: the
        // overhead is only exposed when the channel comes out of idle.
        ch.active = true;
        ch.resRemaining = ch.backToBack ? 0 : cfg_.reservationCycles;
        ch.flitsRemaining = buf.front().numFlits();
        ch.creditBits = 0;
    }

    if (ch.resRemaining > 0) {
        --ch.resRemaining;
        return 0;
    }

    const long bits =
        std::lround(share * static_cast<double>(capacity_bits));
    ch.creditBits += bits;

    int sent_bits = 0;
    while (ch.creditBits >= sim::kFlitBits && ch.flitsRemaining > 0) {
        ch.creditBits -= sim::kFlitBits;
        --ch.flitsRemaining;
        sent_bits += sim::kFlitBits;
    }
    if (ch.flitsRemaining == 0) {
        done.push_back(TxCompletion{buf.pop()});
        ch.active = false;
        ch.creditBits = 0;
        ch.backToBack = true;
    }
    return sent_bits;
}

int
PearlRouter::transmitCycle(Cycle now, std::vector<TxCompletion> &done)
{
    if (!laser_.stable(now))
        return 0; // lasers still stabilising after an upward switch

    const int capacity =
        photonic::bitsPerCycle(
            photonic::clampToCap(laser_.state(), wlCap_)) *
        waveguides_;

    int bits = 0;
    if (dba_.config().mode == DbaConfig::Mode::Fcfs) {
        // PEARL-FCFS baseline: no per-class allocation.  The whole link
        // serves one packet at a time in arrival order, so a GPU burst
        // can monopolise the channel — exactly the unfairness the DBA
        // exists to prevent.
        CoreType target;
        if (tx_[0].active) {
            target = CoreType::CPU;
        } else if (tx_[1].active) {
            target = CoreType::GPU;
        } else {
            const auto &cpu_buf = inject_.of(CoreType::CPU);
            const auto &gpu_buf = inject_.of(CoreType::GPU);
            if (cpu_buf.empty() && gpu_buf.empty())
                return 0;
            if (cpu_buf.empty()) {
                target = CoreType::GPU;
            } else if (gpu_buf.empty()) {
                target = CoreType::CPU;
            } else {
                target = cpu_buf.front().cycleInjected <=
                                 gpu_buf.front().cycleInjected
                             ? CoreType::CPU
                             : CoreType::GPU;
            }
        }
        bits = transmitClass(target, 1.0, capacity, done);
        if (target == CoreType::CPU)
            telemetry_.dbaCpuShareSum += 1.0;
        else
            telemetry_.dbaGpuShareSum += 1.0;
        ++telemetry_.dbaCycles;
    } else {
        const Allocation alloc =
            dba_.allocate(inject_.occupancy(CoreType::CPU),
                          inject_.occupancy(CoreType::GPU));
        telemetry_.dbaCpuShareSum += alloc.cpuShare;
        telemetry_.dbaGpuShareSum += alloc.gpuShare;
        ++telemetry_.dbaCycles;
        bits += transmitClass(CoreType::CPU, alloc.cpuShare, capacity,
                              done);
        bits += transmitClass(CoreType::GPU, alloc.gpuShare, capacity,
                              done);
    }
    if (bits > 0)
        ++telemetry_.linkBusyCycles;
    return bits;
}

bool
PearlRouter::rxEnqueue(const Packet &pkt)
{
    if (!rx_.of(pkt.coreType()).push(pkt))
        return false;
    telemetry_.noteClass(pkt.msgClass);
    ++telemetry_.incomingFromRouters;
    if (pkt.request())
        ++telemetry_.requestsReceived;
    else
        ++telemetry_.responsesReceived;
    return true;
}

void
PearlRouter::ejectCycle(Cycle now, std::vector<Packet> &delivered)
{
    int budget = cfg_.ejectFlitsPerCycle;
    // Round-robin between the class buffers so neither starves ejection.
    for (int i = 0; i < sim::kNumCoreTypes && budget > 0; ++i) {
        const int ci = (ejectRr_ + i) % sim::kNumCoreTypes;
        const CoreType type = static_cast<CoreType>(ci);
        sim::FlitBuffer &buf = rx_.of(type);
        int &progress = ejectProgress_[ci];
        while (budget > 0 && !buf.empty()) {
            if (progress == 0)
                progress = buf.front().numFlits();
            const int take = std::min(budget, progress);
            progress -= take;
            budget -= take;
            if (progress == 0) {
                Packet pkt = buf.pop();
                pkt.cycleDelivered = now;
                ++telemetry_.packetsToCore;
                delivered.push_back(pkt);
            }
        }
    }
    ejectRr_ = (ejectRr_ + 1) % sim::kNumCoreTypes;
}

double
PearlRouter::betaTotalMean() const
{
    return windowCycles_
               ? betaWindowSum_ / static_cast<double>(windowCycles_)
               : 0.0;
}

void
PearlRouter::resetWindow(photonic::WlState next_state)
{
    betaWindowSum_ = 0.0;
    windowCycles_ = 0;
    telemetry_.reset();
    telemetry_.wavelengths = photonic::wavelengths(next_state);
}

bool
PearlRouter::idle() const
{
    return inject_.empty() && rx_.empty();
}

} // namespace core
} // namespace pearl
