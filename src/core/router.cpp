#include "core/router.hpp"

#include <cmath>

#include "common/log.hpp"

namespace pearl {
namespace core {

using sim::CoreType;
using sim::Cycle;
using sim::Packet;

PearlRouter::PearlRouter(int id, const PearlConfig &cfg,
                         const photonic::PowerModel &power_model,
                         const DbaConfig &dba_cfg, int waveguides)
    : id_(id), cfg_(cfg), waveguides_(waveguides), dba_(dba_cfg),
      inject_(cfg.cpuInjectSlots, cfg.gpuInjectSlots),
      rx_(cfg.rxSlotsPerClass, cfg.rxSlotsPerClass),
      laser_(power_model, cfg.laserTurnOnCycles, cfg.initialState),
      group_(cfg.groupOf(id))
{
    telemetry_.wavelengths = photonic::wavelengths(cfg.initialState);
}

bool
PearlRouter::canAccept(const Packet &pkt) const
{
    return inject_.of(pkt.coreType()).canAccept(pkt.numFlits());
}

bool
PearlRouter::inject(const Packet &pkt, Cycle now)
{
    Packet copy = pkt;
    copy.cycleInjected = now;
    if (!inject_.of(copy.coreType()).push(copy))
        return false;
    // Telemetry: the packet entered the router from the local cores or
    // caches and is the quantity the ML model predicts (the label).
    telemetry_.noteClass(copy.msgClass);
    ++telemetry_.incomingFromCores;
    ++telemetry_.packetsInjected;
    if (copy.request())
        ++telemetry_.requestsSent;
    else
        ++telemetry_.responsesSent;
    return true;
}

bool
PearlRouter::reinject(const Packet &pkt, Cycle now)
{
    Packet copy = pkt;
    copy.cycleInjected = now;
    if (!inject_.of(copy.coreType()).push(copy))
        return false;
    ++telemetry_.retransmitsQueued;
    return true;
}

void
PearlRouter::accumulateOccupancy()
{
    telemetry_.cpuCoreBufOccupancy += inject_.occupancy(CoreType::CPU);
    telemetry_.gpuCoreBufOccupancy += inject_.occupancy(CoreType::GPU);
    telemetry_.otherRouterCpuBufOccupancy += rx_.occupancy(CoreType::CPU);
    telemetry_.otherRouterGpuBufOccupancy += rx_.occupancy(CoreType::GPU);
    betaWindowSum_ += inject_.totalOccupancy();
    ++windowCycles_;
}

int
PearlRouter::transmitClass(CoreType type, double share, int capacity_bits,
                           std::vector<TxCompletion> &done)
{
    sim::FlitBuffer &buf = inject_.of(type);
    TxChannel &ch = tx_[static_cast<int>(type)];

    if (buf.empty()) {
        // Nothing queued: credits don't bank across idle periods, and
        // the next packet's reservation can no longer hide behind data.
        ch.creditBits = 0;
        ch.backToBack = false;
        return 0;
    }

    if (!ch.active) {
        // New head packet.  The reservation broadcast runs on its own
        // waveguide, so it overlaps the previous packet's data: the
        // overhead is only exposed when the channel comes out of idle.
        if (express_ && cfg_.interGroup(id_, buf.front().dst)) {
            // Inter-group head: win an express slot from this group's
            // pool first.  The chip-wide express broadcast hides behind
            // the previous packet's data like the intra-group one; its
            // (longer) latency is exposed only out of idle.
            if (!express_->tryAcquire(group_, type)) {
                ++expressStallCycles_;
                return 0; // head-of-line stall until a slot frees
            }
            ch.holdsExpressSlot = true;
            ++expressAcquired_;
            ch.resRemaining =
                ch.backToBack ? 0 : cfg_.expressReservationCycles;
        } else {
            ch.resRemaining = ch.backToBack ? 0 : cfg_.reservationCycles;
        }
        ch.active = true;
        ch.flitsRemaining = buf.front().numFlits();
        ch.creditBits = 0;
    }

    if (ch.resRemaining > 0) {
        --ch.resRemaining;
        return 0;
    }

    const long bits =
        std::lround(share * static_cast<double>(capacity_bits));
    ch.creditBits += bits;

    // A waveguide group's serializers can drain packets side by side;
    // the single-waveguide (legacy) channel strictly serialises.
    int packet_budget = cfg_.multiPacketTx ? waveguides_ : 1;

    int sent_bits = 0;
    while (true) {
        while (ch.creditBits >= sim::kFlitBits && ch.flitsRemaining > 0) {
            ch.creditBits -= sim::kFlitBits;
            --ch.flitsRemaining;
            sent_bits += sim::kFlitBits;
        }
        if (ch.flitsRemaining > 0)
            break; // out of credit mid-packet; remainder carries over
        done.push_back(TxCompletion{buf.pop()});
        ch.active = false;
        ch.backToBack = true;
        if (ch.holdsExpressSlot) {
            // The slot covers the packet's whole serialisation; hand
            // it back only now so the group's express concurrency is
            // honest.
            express_->release(group_, type);
            ch.holdsExpressSlot = false;
        }
        --packet_budget;
        if (packet_budget <= 0 || buf.empty() ||
            ch.creditBits < sim::kFlitBits) {
            ch.creditBits = 0; // credits never bank across packets
            break;
        }
        // Another head this cycle (multi-packet drain): back-to-back,
        // so no reservation is exposed, but an inter-group head still
        // needs a slot from the pool.
        if (express_ && cfg_.interGroup(id_, buf.front().dst)) {
            if (!express_->tryAcquire(group_, type)) {
                ++expressStallCycles_;
                ch.creditBits = 0;
                break;
            }
            ch.holdsExpressSlot = true;
            ++expressAcquired_;
        }
        ch.active = true;
        ch.flitsRemaining = buf.front().numFlits();
    }
    return sent_bits;
}

int
PearlRouter::transmitCycle(Cycle now, std::vector<TxCompletion> &done)
{
    if (!laser_.stable(now))
        return 0; // lasers still stabilising after an upward switch

    const int capacity =
        photonic::bitsPerCycle(
            photonic::clampToCap(laser_.state(), wlCap_)) *
        waveguides_;

    int bits = 0;
    if (dba_.config().mode == DbaConfig::Mode::Fcfs) {
        // PEARL-FCFS baseline: no per-class allocation.  The whole link
        // serves one packet at a time in arrival order, so a GPU burst
        // can monopolise the channel — exactly the unfairness the DBA
        // exists to prevent.
        CoreType target;
        if (tx_[0].active) {
            target = CoreType::CPU;
        } else if (tx_[1].active) {
            target = CoreType::GPU;
        } else {
            const auto &cpu_buf = inject_.of(CoreType::CPU);
            const auto &gpu_buf = inject_.of(CoreType::GPU);
            if (cpu_buf.empty() && gpu_buf.empty())
                return 0;
            if (cpu_buf.empty()) {
                target = CoreType::GPU;
            } else if (gpu_buf.empty()) {
                target = CoreType::CPU;
            } else {
                target = cpu_buf.front().cycleInjected <=
                                 gpu_buf.front().cycleInjected
                             ? CoreType::CPU
                             : CoreType::GPU;
            }
        }
        bits = transmitClass(target, 1.0, capacity, done);
        if (target == CoreType::CPU)
            telemetry_.dbaCpuShareSum += 1.0;
        else
            telemetry_.dbaGpuShareSum += 1.0;
        ++telemetry_.dbaCycles;
    } else {
        const Allocation alloc =
            dba_.allocate(inject_.occupancy(CoreType::CPU),
                          inject_.occupancy(CoreType::GPU));
        telemetry_.dbaCpuShareSum += alloc.cpuShare;
        telemetry_.dbaGpuShareSum += alloc.gpuShare;
        ++telemetry_.dbaCycles;
        bits += transmitClass(CoreType::CPU, alloc.cpuShare, capacity,
                              done);
        bits += transmitClass(CoreType::GPU, alloc.gpuShare, capacity,
                              done);
    }
    if (bits > 0)
        ++telemetry_.linkBusyCycles;
    return bits;
}

bool
PearlRouter::rxEnqueue(const Packet &pkt)
{
    if (!rx_.of(pkt.coreType()).push(pkt))
        return false;
    telemetry_.noteClass(pkt.msgClass);
    ++telemetry_.incomingFromRouters;
    if (pkt.request())
        ++telemetry_.requestsReceived;
    else
        ++telemetry_.responsesReceived;
    return true;
}

void
PearlRouter::ejectCycle(Cycle now, std::vector<Packet> &delivered)
{
    int budget = cfg_.ejectFlitsPerCycle;
    // Round-robin between the class buffers so neither starves ejection.
    for (int i = 0; i < sim::kNumCoreTypes && budget > 0; ++i) {
        const int ci = (ejectRr_ + i) % sim::kNumCoreTypes;
        const CoreType type = static_cast<CoreType>(ci);
        sim::FlitBuffer &buf = rx_.of(type);
        int &progress = ejectProgress_[ci];
        while (budget > 0 && !buf.empty()) {
            if (progress == 0)
                progress = buf.front().numFlits();
            const int take = std::min(budget, progress);
            progress -= take;
            budget -= take;
            if (progress == 0) {
                Packet pkt = buf.pop();
                pkt.cycleDelivered = now;
                ++telemetry_.packetsToCore;
                delivered.push_back(pkt);
            }
        }
    }
    ejectRr_ = (ejectRr_ + 1) % sim::kNumCoreTypes;
}

void
PearlRouter::quiescentCycle(Cycle now)
{
    PEARL_ASSERT(idle());
    PEARL_ASSERT(!tx_[0].active && !tx_[1].active);
    // transmitCycle: the stability gate comes before any telemetry; an
    // FCFS link with both buffers empty returns before the share
    // accounting, while a class-aware allocator charges the (0, 0)
    // split every cycle and transmitClass clears each empty channel's
    // credit and back-to-back hiding.
    if (laser_.stable(now) &&
        dba_.config().mode != DbaConfig::Mode::Fcfs) {
        const Allocation alloc = dba_.allocate(0, 0);
        telemetry_.dbaCpuShareSum += alloc.cpuShare;
        telemetry_.dbaGpuShareSum += alloc.gpuShare;
        ++telemetry_.dbaCycles;
        for (TxChannel &ch : tx_) {
            ch.creditBits = 0;
            ch.backToBack = false;
        }
    }
    // ejectCycle on empty rx buffers only advances the round-robin.
    ejectRr_ = (ejectRr_ + 1) % sim::kNumCoreTypes;
    // accumulateOccupancy: all four occupancy adds and the beta add are
    // exactly zero; only the cycle counter moves.
    ++windowCycles_;
}

double
PearlRouter::betaTotalMean() const
{
    return windowCycles_
               ? betaWindowSum_ / static_cast<double>(windowCycles_)
               : 0.0;
}

void
PearlRouter::resetWindow(photonic::WlState next_state)
{
    betaWindowSum_ = 0.0;
    windowCycles_ = 0;
    telemetry_.reset();
    telemetry_.wavelengths = photonic::wavelengths(next_state);
}

bool
PearlRouter::idle() const
{
    return inject_.empty() && rx_.empty();
}

} // namespace core
} // namespace pearl
