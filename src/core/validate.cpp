#include "core/validate.hpp"

#include <cmath>

#include "photonic/faults.hpp"
#include "photonic/thermal.hpp"

namespace pearl {
namespace core {

namespace {

/** Probability fields must be finite and inside [0, 1]. */
bool
isProbability(double p)
{
    return std::isfinite(p) && p >= 0.0 && p <= 1.0;
}

Validation
validateFaults(const photonic::FaultConfig &f)
{
    if (!f.enabled)
        return {};
    if (f.bankMtbfCycles < 0.0 || !std::isfinite(f.bankMtbfCycles))
        return configError("faults.bankMtbfCycles must be >= 0 cycles "
                           "(0 disables bank failures), got ",
                           f.bankMtbfCycles);
    if (f.bankMtbfCycles > 0.0 &&
        (f.bankMttrCycles <= 0.0 || !std::isfinite(f.bankMttrCycles)))
        return configError("faults.bankMttrCycles must be > 0 cycles when "
                           "bank failures are enabled, got ",
                           f.bankMttrCycles);
    if (!isProbability(f.baseBer))
        return configError("faults.baseBer must be a probability in "
                           "[0, 1], got ", f.baseBer);
    if (!isProbability(f.unlockedBer))
        return configError("faults.unlockedBer must be a probability in "
                           "[0, 1], got ", f.unlockedBer);
    if (f.berPerTrimGapC < 0.0 || !std::isfinite(f.berPerTrimGapC))
        return configError("faults.berPerTrimGapC must be >= 0, got ",
                           f.berPerTrimGapC);
    if (!isProbability(f.reservationDropRate))
        return configError("faults.reservationDropRate must be a "
                           "probability in [0, 1], got ",
                           f.reservationDropRate);
    return {};
}

} // namespace

Validation
validate(const PearlConfig &cfg)
{
    if (cfg.numClusters <= 0)
        return configError("numClusters must be > 0, got ",
                           cfg.numClusters);
    if (cfg.l3Node < 0 || cfg.l3Node >= cfg.numNodes())
        return configError("l3Node must be a node id in [0, ",
                           cfg.numNodes() - 1, "], got ", cfg.l3Node);
    if (cfg.cpuInjectSlots <= 0 || cfg.gpuInjectSlots <= 0)
        return configError("injection buffers must be > 0 slots, got "
                           "cpuInjectSlots=", cfg.cpuInjectSlots,
                           " gpuInjectSlots=", cfg.gpuInjectSlots);
    if (cfg.rxSlotsPerClass <= 0)
        return configError("rxSlotsPerClass must be > 0, got ",
                           cfg.rxSlotsPerClass);
    if (cfg.reservationCycles < 0 || cfg.linkLatencyCycles < 0)
        return configError("link timing must be >= 0 cycles, got "
                           "reservationCycles=", cfg.reservationCycles,
                           " linkLatencyCycles=", cfg.linkLatencyCycles);
    if (cfg.ejectFlitsPerCycle <= 0)
        return configError("ejectFlitsPerCycle must be > 0, got ",
                           cfg.ejectFlitsPerCycle);
    if (cfg.l3WaveguideGroup <= 0)
        return configError("l3WaveguideGroup must be > 0 waveguides, "
                           "got ", cfg.l3WaveguideGroup);
    if (cfg.reservationWindow == 0)
        return configError("reservationWindow must be > 0 cycles — the "
                           "power policies run at window boundaries");
    if (cfg.windowOffsetPerRouter < 0)
        return configError("windowOffsetPerRouter must be >= 0, got ",
                           cfg.windowOffsetPerRouter);
    if (!(cfg.cycleSeconds > 0.0) || !std::isfinite(cfg.cycleSeconds))
        return configError("cycleSeconds must be > 0, got ",
                           cfg.cycleSeconds);
    if (cfg.txRings <= 0 || cfg.rxRings <= 0)
        return configError("ring counts must be > 0, got txRings=",
                           cfg.txRings, " rxRings=", cfg.rxRings);
    if (cfg.routerStaticW < 0.0 || !std::isfinite(cfg.routerStaticW))
        return configError("routerStaticW must be >= 0 watts, got ",
                           cfg.routerStaticW);

    // End-to-end recovery knobs (only consulted when faults are on, but
    // a nonsense value is a config bug either way).
    if (cfg.retryLimit < 0)
        return configError("retryLimit must be >= 0 attempts, got ",
                           cfg.retryLimit);
    if (cfg.faults.enabled) {
        // The timeout must outlast the full ACK round trip (data out +
        // ACK back), matching the PearlNetwork constructor's assertion,
        // and must leave the receiver's fault check (which happens at
        // least one cycle after transmit even at zero link latency) in
        // front of the timeout — otherwise a timeout retry races the
        // in-flight ACK and the packet is delivered twice.
        if (cfg.ackTimeoutCycles <=
                2 * static_cast<std::uint64_t>(cfg.linkLatencyCycles) ||
            cfg.ackTimeoutCycles < 2)
            return configError(
                "ackTimeoutCycles (", cfg.ackTimeoutCycles,
                ") must be >= 2 and exceed the ACK round trip (2 * "
                "linkLatencyCycles = ", 2 * cfg.linkLatencyCycles,
                ") or deliveries time out spuriously");
        if (cfg.retxBackoffBase == 0)
            return configError("retxBackoffBase must be > 0 cycles");
        if (cfg.retxBackoffMax < cfg.retxBackoffBase)
            return configError("retxBackoffMax (", cfg.retxBackoffMax,
                               ") must be >= retxBackoffBase (",
                               cfg.retxBackoffBase, ")");
    }
    // Grouped R-SWMR reservation domains (scale-out plane).
    if (cfg.reservationGroupSize < 0 ||
        cfg.reservationGroupSize > cfg.numClusters)
        return configError("reservationGroupSize must be in [0, "
                           "numClusters=", cfg.numClusters, "], got ",
                           cfg.reservationGroupSize);
    if (cfg.reservationGroupSize > 0 &&
        cfg.numClusters % cfg.reservationGroupSize != 0)
        return configError("reservationGroupSize=",
                           cfg.reservationGroupSize,
                           " must divide numClusters=", cfg.numClusters,
                           " (reservation domains are equal-sized)");
    if (cfg.grouped()) {
        if (cfg.resExpressSlots <= 0)
            return configError("resExpressSlots must be > 0 on a "
                               "grouped chip, got ", cfg.resExpressSlots);
        if (cfg.expressReservationCycles < 0)
            return configError("expressReservationCycles must be >= 0, "
                               "got ", cfg.expressReservationCycles);
        if (cfg.expressResLaserW < 0.0 ||
            !std::isfinite(cfg.expressResLaserW))
            return configError("expressResLaserW must be >= 0 watts, "
                               "got ", cfg.expressResLaserW);
    }

    if (Validation f = validateFaults(cfg.faults); !f)
        return f;
    return {};
}

Validation
validate(const DbaConfig &cfg)
{
    if (!(cfg.stepFraction > 0.0) || cfg.stepFraction > 0.5 ||
        !std::isfinite(cfg.stepFraction))
        return configError("dba.stepFraction must be in (0, 0.5], got ",
                           cfg.stepFraction);
    if (!std::isfinite(cfg.cpuUpperBound) || cfg.cpuUpperBound < 0.0 ||
        cfg.cpuUpperBound > 1.0)
        return configError("dba.cpuUpperBound must be an occupancy "
                           "fraction in [0, 1], got ", cfg.cpuUpperBound);
    if (!std::isfinite(cfg.gpuUpperBound) || cfg.gpuUpperBound < 0.0 ||
        cfg.gpuUpperBound > 1.0)
        return configError("dba.gpuUpperBound must be an occupancy "
                           "fraction in [0, 1], got ", cfg.gpuUpperBound);
    return {};
}

Validation
validate(const ReactiveThresholds &t)
{
    for (double v : {t.upper, t.midUpper, t.midLower, t.lower}) {
        if (!std::isfinite(v) || v < 0.0 || v > 2.0)
            return configError("reactive thresholds must be beta_total "
                               "values in [0, 2], got ", v);
    }
    if (!(t.upper > t.midUpper && t.midUpper > t.midLower &&
          t.midLower > t.lower))
        return configError(
            "reactive thresholds must descend strictly "
            "(upper > midUpper > midLower > lower), got ",
            t.upper, " / ", t.midUpper, " / ", t.midLower, " / ",
            t.lower);
    return {};
}

} // namespace core
} // namespace pearl
