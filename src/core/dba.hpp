/**
 * @file
 * The Dynamic Bandwidth Allocator (Algorithm 1, steps 1-3).
 *
 * Every cycle, each router splits its optical link bandwidth between the
 * CPU-class and GPU-class injection queues using only local buffer
 * occupancy.  The paper's ladder assigns {0,25,50,75,100}% with CPU
 * considered first for the 75% share (CPU latency sensitivity); the upper
 * bounds beta_CPU = 16% and beta_GPU = 6% were found by offline search.
 *
 * A proportional-quantised mode generalises the allocation step for the
 * ablation the paper mentions (steps of 6.25% / 12.5% / 25%).
 */

#ifndef PEARL_CORE_DBA_HPP
#define PEARL_CORE_DBA_HPP

#include <cmath>

#include "common/log.hpp"

namespace pearl {
namespace core {

/** Bandwidth split produced by the allocator; shares sum to 1. */
struct Allocation
{
    double cpuShare = 0.5;
    double gpuShare = 0.5;
};

/** DBA configuration. */
struct DbaConfig
{
    /** Allocation strategy. */
    enum class Mode
    {
        PaperLadder,  //!< Algorithm 1 step 3 verbatim (25% steps)
        Proportional, //!< occupancy-proportional, quantised to stepFraction
        Fcfs          //!< no allocation: first-come first-served
                      //!< (the PEARL-FCFS baseline)
    };

    Mode mode = Mode::PaperLadder;
    double cpuUpperBound = 0.16; //!< beta_CPU-UpperBound (fraction)
    double gpuUpperBound = 0.06; //!< beta_GPU-UpperBound (fraction)
    double stepFraction = 0.25;  //!< quantisation step (Proportional mode)
};

/** Stateless allocator implementing Algorithm 1 steps 1-3. */
class DynamicBandwidthAllocator
{
  public:
    explicit DynamicBandwidthAllocator(const DbaConfig &cfg = DbaConfig{})
        : cfg_(cfg)
    {
        PEARL_ASSERT(cfg_.stepFraction > 0.0 && cfg_.stepFraction <= 0.5);
    }

    /**
     * Compute the split from per-class buffer occupancies in [0,1].
     */
    Allocation
    allocate(double beta_cpu, double beta_gpu) const
    {
        if (cfg_.mode == DbaConfig::Mode::PaperLadder)
            return ladder(beta_cpu, beta_gpu);
        if (cfg_.mode == DbaConfig::Mode::Proportional)
            return proportional(beta_cpu, beta_gpu);
        // Fcfs: the router bypasses the allocator entirely; an even
        // split is returned for callers that ask anyway.
        return {0.5, 0.5};
    }

    const DbaConfig &config() const { return cfg_; }

  private:
    Allocation
    ladder(double beta_cpu, double beta_gpu) const
    {
        // Algorithm 1 step 3, cases (a) through (e).
        if (beta_gpu == 0.0 && beta_cpu > 0.0)
            return {1.00, 0.00};
        if (beta_cpu == 0.0 && beta_gpu > 0.0)
            return {0.00, 1.00};
        if (beta_gpu < cfg_.gpuUpperBound)
            return {0.75, 0.25};
        if (beta_cpu < cfg_.cpuUpperBound)
            return {0.25, 0.75};
        return {0.50, 0.50};
    }

    Allocation
    proportional(double beta_cpu, double beta_gpu) const
    {
        if (beta_cpu == 0.0 && beta_gpu == 0.0)
            return {0.5, 0.5};
        const double raw = beta_cpu / (beta_cpu + beta_gpu);
        const double step = cfg_.stepFraction;
        double cpu = std::round(raw / step) * step;
        cpu = std::min(1.0, std::max(0.0, cpu));
        return {cpu, 1.0 - cpu};
    }

    DbaConfig cfg_;
};

} // namespace core
} // namespace pearl

#endif // PEARL_CORE_DBA_HPP
