/**
 * @file
 * Validation entry points for the user-facing core configuration
 * structs (DESIGN.md "Resilience").
 *
 * Each `validate()` checks every field a user can set against the
 * constraints the simulator otherwise only enforces via PEARL_ASSERT
 * (or not at all: several bad values — a zero reservation window, a
 * negative buffer depth — previously produced wrong numbers or UB
 * instead of a diagnostic).  Validators return `Validation`
 * (`Expected<void>`) with an actionable message naming the field, the
 * constraint and the offending value; they never log or abort, so
 * callers decide whether to throw (`throwIfInvalid`), record a
 * structured job failure, or print and exit.
 */

#ifndef PEARL_CORE_VALIDATE_HPP
#define PEARL_CORE_VALIDATE_HPP

#include "common/expected.hpp"
#include "core/arch_config.hpp"
#include "core/dba.hpp"
#include "core/power_policy.hpp"

namespace pearl {
namespace core {

/** Validate a PEARL network configuration (Tables I/II constraints,
 *  fault-plane and recovery knobs included). */
Validation validate(const PearlConfig &cfg);

/** Validate a dynamic-bandwidth-allocator configuration. */
Validation validate(const DbaConfig &cfg);

/** Validate reactive-scaler thresholds (must be a descending ladder
 *  within [0, 1]). */
Validation validate(const ReactiveThresholds &t);

} // namespace core
} // namespace pearl

#endif // PEARL_CORE_VALIDATE_HPP
