/**
 * @file
 * On-chip laser bank with fast turn-on and wavelength-state switching.
 *
 * Each PEARL router owns four banks of 16 InP Fabry-Perot lasers feeding
 * its data waveguide.  Power scaling lights a subset (the five WlStates);
 * switching *up* incurs a stabilization delay (2 ns by default, i.e. 4
 * network cycles at 2 GHz) during which no data can be transmitted on the
 * waveguide (Section IV-C sensitivity study).  Switching down is
 * immediate.  The bank integrates laser energy and tracks the residency
 * of every state for Figure 8.
 */

#ifndef PEARL_PHOTONIC_LASER_HPP
#define PEARL_PHOTONIC_LASER_HPP

#include <cstdint>

#include "common/stats.hpp"
#include "photonic/power_model.hpp"
#include "photonic/wl_state.hpp"

namespace pearl {
namespace photonic {

/** The laser array of one router. */
class LaserBank
{
  public:
    /**
     * @param model          power model supplying per-state laser power.
     * @param turn_on_cycles stabilization delay for an upward switch,
     *                       in network cycles.
     * @param initial        initial wavelength state.
     */
    LaserBank(const PowerModel &model, std::uint64_t turn_on_cycles,
              WlState initial = WlState::WL64)
        : model_(&model), turnOnCycles_(turn_on_cycles), state_(initial)
    {}

    /** Current wavelength state. */
    WlState state() const { return state_; }

    /**
     * Request a state change at `now`.  Upward switches start a
     * stabilization window during which `stable()` is false; downward
     * switches (and no-ops) complete immediately.
     */
    void
    requestState(WlState next, std::uint64_t now)
    {
        if (next == state_)
            return;
        if (indexOf(next) > indexOf(state_)) {
            // Newly lit lasers need to stabilise; the already-lit banks
            // could keep transmitting, but the serializer reconfigures
            // with them, so the link is treated as dark for the window.
            stableAt_ = now + turnOnCycles_;
            ++upSwitches_;
        } else {
            ++downSwitches_;
        }
        state_ = next;
    }

    /** True when the waveguide can carry data at `now`. */
    bool
    stable(std::uint64_t now) const
    {
        return now >= stableAt_;
    }

    /**
     * Account one cycle of laser operation at `cycle_seconds` per cycle.
     * Call exactly once per network cycle.
     */
    void
    tick(double cycle_seconds)
    {
        energyJ_ += model_->laserPowerW(state_) * cycle_seconds;
        residency_.add(indexOf(state_));
        ++cycles_;
    }

    /**
     * Account `k` consecutive idle cycles at once (idle fast-forward).
     * The state is constant across the interval, so the energy integral
     * is the analytic `k * P * dt` — one multiply-add instead of `k`
     * sequential adds (the sums can differ from the stepped run in the
     * last ULPs; counters are exact).
     */
    void
    tickIdle(std::uint64_t k, double cycle_seconds)
    {
        energyJ_ += model_->laserPowerW(state_) * cycle_seconds *
                    static_cast<double>(k);
        residency_.add(indexOf(state_), k);
        cycles_ += k;
    }

    /** Integrated laser energy in joules. */
    double energyJ() const { return energyJ_; }

    /** Average laser power in watts over the ticked interval. */
    double
    averagePowerW(double cycle_seconds) const
    {
        return cycles_ ? energyJ_ / (cycles_ * cycle_seconds) : 0.0;
    }

    /** Fraction of ticked cycles spent in `s` (Figure 8). */
    double
    residency(WlState s) const
    {
        return residency_.fraction(indexOf(s));
    }

    std::uint64_t upSwitches() const { return upSwitches_; }
    std::uint64_t downSwitches() const { return downSwitches_; }
    std::uint64_t cycles() const { return cycles_; }
    std::uint64_t turnOnCycles() const { return turnOnCycles_; }

    void
    resetStats()
    {
        energyJ_ = 0.0;
        cycles_ = 0;
        upSwitches_ = downSwitches_ = 0;
        residency_.reset();
    }

  private:
    const PowerModel *model_;
    std::uint64_t turnOnCycles_;
    WlState state_;
    std::uint64_t stableAt_ = 0;
    double energyJ_ = 0.0;
    std::uint64_t cycles_ = 0;
    std::uint64_t upSwitches_ = 0;
    std::uint64_t downSwitches_ = 0;
    DiscreteHistogram residency_;
};

} // namespace photonic
} // namespace pearl

#endif // PEARL_PHOTONIC_LASER_HPP
