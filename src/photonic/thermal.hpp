/**
 * @file
 * Thermal drift and ring-trimming model.
 *
 * Microring resonators are thermally sensitive (Section III-A1): the
 * resonance wavelength drifts with temperature, and ring heaters keep
 * each ring locked to its channel.  This model captures the feedback
 * loop the paper assumes away behind the flat 26 uW/ring figure:
 *
 *  - each router's ring bank sees a die temperature = ambient + a term
 *    proportional to its recent switching activity + a slow random walk
 *    (neighbouring-logic workload changes);
 *  - a proportional heater controller trims the rings back to their
 *    locked temperature; heater power grows with the temperature gap
 *    *below* the lock point (heaters can only heat, so the lock point
 *    sits above the hottest expected die temperature);
 *  - if the die exceeds the lock point the ring cannot be trimmed back
 *    and the bank reports loss of lock (detection errors in a real
 *    system).
 *
 * The model plugs into PearlNetwork as an optional replacement for the
 * constant trimming power and is exercised standalone by the thermal
 * ablation bench.
 */

#ifndef PEARL_PHOTONIC_THERMAL_HPP
#define PEARL_PHOTONIC_THERMAL_HPP

#include <cstdint>

#include "common/rng.hpp"

namespace pearl {
namespace photonic {

/** Thermal model parameters. */
struct ThermalConfig
{
    double ambientC = 45.0;       //!< die baseline temperature
    double lockPointC = 65.0;     //!< temperature rings are tuned for
    /** Temperature rise per watt of local switching activity. */
    double heatingCPerWatt = 8.0;
    /** Std-dev of the slow ambient random walk per step. */
    double driftSigmaC = 0.02;
    /** Mean-reversion rate of the random walk toward ambientC. */
    double driftReversion = 0.001;
    /** Heater electrical power per ring per degree of trim. */
    double heaterWPerRingPerC = 1.3e-6;
    /** Max degrees a heater can trim (power-limited). */
    double heaterRangeC = 25.0;
};

/** Thermal state + heater controller of one router's ring bank. */
class ThermalRingBank
{
  public:
    /**
     * @param cfg   model parameters.
     * @param rings number of rings in the bank.
     * @param rng   forked stream for the drift walk.
     */
    ThermalRingBank(const ThermalConfig &cfg, int rings, Rng rng)
        : cfg_(cfg), rings_(rings), rng_(rng), dieC_(cfg.ambientC)
    {}

    /**
     * Advance one step.
     * @param activity_w local switching power this step, watts.
     * @param dt_s       step duration, seconds (energy accounting).
     */
    void
    step(double activity_w, double dt_s)
    {
        // Slow environmental walk with mean reversion.
        const double noise =
            (rng_.uniform() * 2.0 - 1.0) * cfg_.driftSigmaC;
        walk_ += noise - cfg_.driftReversion * walk_;
        dieC_ = cfg_.ambientC + walk_ +
                cfg_.heatingCPerWatt * activity_w;

        // Heaters trim the rings up to the lock point.
        const double gap = cfg_.lockPointC - dieC_;
        if (gap < 0.0) {
            // Die hotter than the lock point: rings drift past their
            // channel and cannot be pulled back by heating.
            locked_ = false;
            heaterPowerW_ = 0.0;
        } else if (gap > cfg_.heaterRangeC) {
            // Too cold: the heaters saturate before reaching the lock
            // point.
            locked_ = false;
            heaterPowerW_ =
                cfg_.heaterWPerRingPerC * rings_ * cfg_.heaterRangeC;
        } else {
            locked_ = true;
            heaterPowerW_ = cfg_.heaterWPerRingPerC * rings_ * gap;
        }
        heaterEnergyJ_ += heaterPowerW_ * dt_s;
        ++steps_;
        unlockedSteps_ += locked_ ? 0 : 1;
    }

    double dieTemperatureC() const { return dieC_; }
    double heaterPowerW() const { return heaterPowerW_; }
    double heaterEnergyJ() const { return heaterEnergyJ_; }
    bool locked() const { return locked_; }

    /** Fraction of steps the bank was out of lock. */
    double
    unlockedFraction() const
    {
        return steps_ ? static_cast<double>(unlockedSteps_) /
                            static_cast<double>(steps_)
                      : 0.0;
    }

    const ThermalConfig &config() const { return cfg_; }

  private:
    ThermalConfig cfg_;
    int rings_;
    Rng rng_;
    double dieC_;
    double walk_ = 0.0;
    double heaterPowerW_ = 0.0;
    double heaterEnergyJ_ = 0.0;
    bool locked_ = true;
    std::uint64_t steps_ = 0;
    std::uint64_t unlockedSteps_ = 0;
};

} // namespace photonic
} // namespace pearl

#endif // PEARL_PHOTONIC_THERMAL_HPP
