#include "photonic/power_model.hpp"

#include "common/units.hpp"

namespace pearl {
namespace photonic {

PowerModel::PowerModel(const DeviceConstants &dev)
    : dev_(dev), laserW_(kPaperLaserW)
{}

PowerModel
PowerModel::fromLossBudget(const LossBudget &budget,
                           double wall_plug_efficiency)
{
    PowerModel model(budget.devices());
    for (int i = 0; i < kNumWlStates; ++i) {
        model.laserW_[i] = budget.electricalLaserW(stateFromIndex(i),
                                                   wall_plug_efficiency);
    }
    return model;
}

double
PowerModel::trimmingPowerW(WlState state, int tx_rings, int rx_rings) const
{
    // Transmit-side heaters scale with the lit banks; receive-side rings
    // must stay tuned regardless of the local laser state because other
    // routers may still address this node at full width.
    const double lit_fraction = litBanks(state) / 4.0;
    const double tx = dev_.ringHeatingW * tx_rings * lit_fraction;
    const double rx = dev_.ringHeatingW * rx_rings;
    return tx + rx;
}

double
PowerModel::dynamicEnergyPerBitJ() const
{
    // A ring modulating at the per-wavelength data rate spends
    // ringModulatingW continuously; per bit that is P / rate.
    const double modulation =
        dev_.ringModulatingW / (dev_.dataRateGbps * units::giga);
    const double transceiver = dev_.transceiverPjPerBit * units::pico;
    return modulation + transceiver;
}

} // namespace photonic
} // namespace pearl
