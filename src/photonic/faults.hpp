/**
 * @file
 * Deterministic fault injection for the photonic fabric.
 *
 * The paper evaluates PEARL on an ideal optical fabric: reservations
 * always arrive, every lit wavelength detects correctly, and laser banks
 * never die.  Real photonic interconnects degrade — loss and BER vary at
 * runtime with thermal conditions, and multi-chip photonic fabrics treat
 * link-level retry as table stakes.  This module models three per-router
 * fault processes so every power policy can be evaluated under
 * degradation:
 *
 *  1. *Laser-bank failure/repair*: each of the four 16-laser banks fails
 *     with an exponentially distributed time-between-failures and is
 *     repaired (re-provisioned from spares) after an exponentially
 *     distributed repair time.  Dead banks cap the router's usable
 *     wavelength state: three live banks force <=48 WL, two force
 *     <=32 WL, and so on.  The half-lit low state (8 WL) runs on a
 *     protected redundant half-bank, so a router never goes fully dark —
 *     total outage would deadlock the coherence protocol rather than
 *     exercise recovery.
 *  2. *BER-driven packet corruption*: every arriving packet survives a
 *     Bernoulli draw with p = 1 - (1 - BER)^bits.  The BER floor rises
 *     with the destination ring bank's thermal trim gap and jumps to a
 *     much higher rate when the bank has lost thermal lock (detectors
 *     off-resonance mis-sample bits).
 *  3. *Transient reservation drops*: the R-SWMR broadcast occasionally
 *     fails to tune the receive rings, so the data flits sail past an
 *     untuned detector and vanish.  The source only learns via ACK
 *     timeout.
 *
 * All draws come from per-router streams forked off one seeded
 * common/rng.hpp generator, so a run is reproducible bit-for-bit and the
 * fault schedule of router i is independent of how often router j is
 * queried.
 */

#ifndef PEARL_PHOTONIC_FAULTS_HPP
#define PEARL_PHOTONIC_FAULTS_HPP

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "obs/registry.hpp"
#include "photonic/wl_state.hpp"

namespace pearl {
namespace photonic {

/** Fault-scenario parameters (part of the PearlConfig surface). */
struct FaultConfig
{
    /** Master switch: when false the injector performs no RNG draws and
     *  every query returns "healthy" — the simulation is bit-identical
     *  to a build without the fault plane. */
    bool enabled = false;

    /** Seed of the fault-plane RNG (decorrelated from traffic seeds). */
    std::uint64_t seed = 0xFA017;

    // Laser-bank failure/repair process ------------------------------
    /** Mean cycles between failures of one laser bank (exponential).
     *  0 disables bank failures. */
    double bankMtbfCycles = 0.0;
    /** Mean cycles to repair a failed bank (exponential). */
    double bankMttrCycles = 50000.0;

    // BER-driven corruption ------------------------------------------
    /** Per-bit error rate with rings locked and fully trimmed. */
    double baseBer = 0.0;
    /** Fractional BER increase per degree Celsius of thermal trim gap
     *  (rings far from their lock point detect more marginally). */
    double berPerTrimGapC = 0.05;
    /** Per-bit error rate while the ring bank is out of thermal lock. */
    double unlockedBer = 1e-5;

    // Reservation channel --------------------------------------------
    /** Probability that one packet's reservation broadcast fails to
     *  tune the receive rings (the data is silently lost). */
    double reservationDropRate = 0.0;
};

/** Per-router fault processes driving the resilience layer. */
class FaultInjector
{
  public:
    static constexpr int kBanksPerRouter = 4;

    FaultInjector() = default;

    /**
     * @param cfg     scenario parameters.
     * @param routers number of routers to model.
     */
    FaultInjector(const FaultConfig &cfg, int routers) : cfg_(cfg)
    {
        if (!cfg_.enabled)
            return;
        Rng root(cfg_.seed);
        banks_.resize(static_cast<std::size_t>(routers));
        bankRng_.reserve(static_cast<std::size_t>(routers));
        dataRng_.reserve(static_cast<std::size_t>(routers));
        resRng_.reserve(static_cast<std::size_t>(routers));
        for (int r = 0; r < routers; ++r) {
            bankRng_.push_back(root.fork());
            dataRng_.push_back(root.fork());
            resRng_.push_back(root.fork());
            auto &router_banks = banks_[static_cast<std::size_t>(r)];
            for (auto &bank : router_banks.bank) {
                bank.failed = false;
                bank.nextEvent = scheduleFailure(
                    bankRng_[static_cast<std::size_t>(r)]);
            }
        }
    }

    bool enabled() const { return cfg_.enabled; }
    const FaultConfig &config() const { return cfg_; }

    /** Advance the bank fail/repair schedules to `now` (call once per
     *  network cycle, before transmission). */
    void
    step(std::uint64_t now)
    {
        if (!cfg_.enabled || cfg_.bankMtbfCycles <= 0.0)
            return;
        for (std::size_t r = 0; r < banks_.size(); ++r) {
            auto &router_banks = banks_[r];
            for (auto &bank : router_banks.bank) {
                while (bank.nextEvent <= now) {
                    if (bank.failed) {
                        bank.failed = false;
                        ++bankRepairs_;
                        bank.nextEvent += scheduleFailure(bankRng_[r]);
                    } else {
                        bank.failed = true;
                        ++bankFailures_;
                        bank.nextEvent += scheduleRepair(bankRng_[r]);
                    }
                }
            }
        }
    }

    /**
     * Highest wavelength state the router's surviving laser banks can
     * sustain.  Healthy routers (and a disabled injector) report WL64.
     */
    WlState
    wlCap(int router) const
    {
        if (!cfg_.enabled)
            return WlState::WL64;
        const auto &router_banks =
            banks_[static_cast<std::size_t>(router)];
        int live = 0;
        for (const auto &bank : router_banks.bank)
            live += bank.failed ? 0 : 1;
        // live banks -> 16*live wavelengths; the protected half-bank
        // keeps WL8 available even with every full bank dead.
        switch (live) {
          case 4: return WlState::WL64;
          case 3: return WlState::WL48;
          case 2: return WlState::WL32;
          case 1: return WlState::WL16;
          default: return WlState::WL8;
        }
    }

    /** Number of currently failed banks at a router (diagnostics). */
    int
    failedBanks(int router) const
    {
        if (!cfg_.enabled)
            return 0;
        const auto &router_banks =
            banks_[static_cast<std::size_t>(router)];
        int failed = 0;
        for (const auto &bank : router_banks.bank)
            failed += bank.failed ? 1 : 0;
        return failed;
    }

    /**
     * Bernoulli draw: is a packet of `size_bits` corrupted on arrival at
     * `router`?  The per-bit error rate is the configured floor scaled
     * by the receiver's thermal trim gap, or the (much higher)
     * out-of-lock rate while the rings are off-resonance.
     *
     * @param trim_gap_c degrees of heater trim at the receiving bank
     *                   (0 when the thermal model is off).
     * @param locked     whether the receiving ring bank holds lock.
     */
    bool
    corruptsPacket(int router, int size_bits, double trim_gap_c,
                   bool locked)
    {
        if (!cfg_.enabled)
            return false;
        const double ber =
            locked ? cfg_.baseBer * (1.0 + cfg_.berPerTrimGapC *
                                               std::max(0.0, trim_gap_c))
                   : cfg_.unlockedBer;
        if (ber <= 0.0)
            return false;
        // P(>=1 bit error) = 1 - (1-ber)^bits, computed stably.
        const double p_ok =
            -std::expm1(static_cast<double>(size_bits) *
                        std::log1p(-ber));
        return dataRng_[static_cast<std::size_t>(router)].chance(p_ok);
    }

    /** Bernoulli draw: did this packet's reservation broadcast fail? */
    bool
    dropsReservation(int router)
    {
        if (!cfg_.enabled || cfg_.reservationDropRate <= 0.0)
            return false;
        return resRng_[static_cast<std::size_t>(router)].chance(
            cfg_.reservationDropRate);
    }

    std::uint64_t bankFailures() const { return bankFailures_; }
    std::uint64_t bankRepairs() const { return bankRepairs_; }

    /** Publish the fault plane's totals into the observability
     *  registry under `prefix` (default "fault"). */
    void
    publishTo(obs::MetricsRegistry &reg,
              const std::string &prefix = "fault") const
    {
        reg.counter(prefix + ".bank_failures") += bankFailures_;
        reg.counter(prefix + ".bank_repairs") += bankRepairs_;
        reg.gauge(prefix + ".enabled") = cfg_.enabled ? 1.0 : 0.0;
        if (!cfg_.enabled)
            return;
        int failed_now = 0;
        for (std::size_t r = 0; r < banks_.size(); ++r)
            failed_now += failedBanks(static_cast<int>(r));
        reg.gauge(prefix + ".failed_banks_now") =
            static_cast<double>(failed_now);
    }

  private:
    struct BankState
    {
        bool failed = false;
        std::uint64_t nextEvent = 0;
    };

    struct RouterBanks
    {
        BankState bank[kBanksPerRouter];
    };

    /** Exponential inter-failure sample, >= 1 cycle. */
    std::uint64_t
    scheduleFailure(Rng &rng)
    {
        if (cfg_.bankMtbfCycles <= 0.0)
            return ~0ULL >> 1; // never
        return sampleExp(rng, cfg_.bankMtbfCycles);
    }

    std::uint64_t
    scheduleRepair(Rng &rng)
    {
        return sampleExp(rng, std::max(1.0, cfg_.bankMttrCycles));
    }

    static std::uint64_t
    sampleExp(Rng &rng, double mean_cycles)
    {
        const double u = rng.uniform();
        const double t = -mean_cycles * std::log1p(-u);
        return t < 1.0 ? 1
                       : static_cast<std::uint64_t>(std::llround(t));
    }

    FaultConfig cfg_;
    std::vector<RouterBanks> banks_;
    std::vector<Rng> bankRng_;
    std::vector<Rng> dataRng_;
    std::vector<Rng> resRng_;
    std::uint64_t bankFailures_ = 0;
    std::uint64_t bankRepairs_ = 0;
};

/** Clamp a policy's chosen state to a fault-capped ceiling. */
inline WlState
clampToCap(WlState chosen, WlState cap)
{
    return indexOf(chosen) > indexOf(cap) ? cap : chosen;
}

} // namespace photonic
} // namespace pearl

#endif // PEARL_PHOTONIC_FAULTS_HPP
