/**
 * @file
 * R-SWMR reservation-channel sizing (Section III-A3).
 *
 * Before data moves on a single-writer waveguide, the writer broadcasts a
 * reservation packet telling every listener which router should tune its
 * detectors and how the bandwidth is split.  The paper sizes it as
 *
 *   ResPacket_size = log2(2 * N * S_CPU * S_GPU * D * N_L3)
 *
 * with N non-L3 routers, S_CPU/S_GPU packet-type counts (request and
 * response -> 2 each), D = 5 dynamic-allocation possibilities and N_L3 L3
 * routers.  From the packet size, the per-wavelength data rate and the
 * network frequency we derive the number of reservation wavelengths.
 */

#ifndef PEARL_PHOTONIC_RESERVATION_HPP
#define PEARL_PHOTONIC_RESERVATION_HPP

#include <cmath>

#include "common/log.hpp"

namespace pearl {
namespace photonic {

/** Parameters of the reservation channel. */
struct ReservationConfig
{
    int numRouters = 16;        //!< N: non-L3 routers
    int numL3Routers = 1;       //!< N_L3
    int cpuPacketTypes = 2;     //!< S_CPU: request + response
    int gpuPacketTypes = 2;     //!< S_GPU: request + response
    int allocationLevels = 5;   //!< D: {0,25,50,75,100}% splits
    double dataRateGbps = 16.0; //!< per reservation wavelength
    double networkFreqGhz = 2.0;
};

/** Sizing calculations for the reservation waveguide. */
class ReservationChannel
{
  public:
    explicit ReservationChannel(const ReservationConfig &cfg = {}) : cfg_(cfg)
    {
        PEARL_ASSERT(cfg_.numRouters > 0 && cfg_.numL3Routers > 0);
    }

    /** Reservation packet size in bits (the paper's formula, rounded up). */
    int
    packetBits() const
    {
        const double combinations = 2.0 * cfg_.numRouters *
                                    cfg_.cpuPacketTypes * cfg_.gpuPacketTypes *
                                    cfg_.allocationLevels * cfg_.numL3Routers;
        return static_cast<int>(std::ceil(std::log2(combinations)));
    }

    /** Bits one reservation wavelength carries per network cycle. */
    double
    bitsPerWavelengthPerCycle() const
    {
        return cfg_.dataRateGbps / cfg_.networkFreqGhz;
    }

    /**
     * Wavelengths needed so a reservation broadcast completes within one
     * network cycle.
     */
    int
    wavelengthsNeeded() const
    {
        return static_cast<int>(
            std::ceil(packetBits() / bitsPerWavelengthPerCycle()));
    }

    /**
     * Latency in network cycles for a reservation using `wavelengths`
     * reservation wavelengths (>= 1 cycle; plus one cycle for the
     * listeners to tune their rings).
     */
    int
    latencyCycles(int wavelengths) const
    {
        PEARL_ASSERT(wavelengths > 0);
        const double per_cycle =
            bitsPerWavelengthPerCycle() * wavelengths;
        const int broadcast = static_cast<int>(
            std::ceil(static_cast<double>(packetBits()) / per_cycle));
        const int tune = 1;
        return broadcast + tune;
    }

    const ReservationConfig &config() const { return cfg_; }

  private:
    ReservationConfig cfg_;
};

} // namespace photonic
} // namespace pearl

#endif // PEARL_PHOTONIC_RESERVATION_HPP
