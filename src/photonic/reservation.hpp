/**
 * @file
 * R-SWMR reservation-channel sizing (Section III-A3).
 *
 * Before data moves on a single-writer waveguide, the writer broadcasts a
 * reservation packet telling every listener which router should tune its
 * detectors and how the bandwidth is split.  The paper sizes it as
 *
 *   ResPacket_size = log2(2 * N * S_CPU * S_GPU * D * N_L3)
 *
 * with N non-L3 routers, S_CPU/S_GPU packet-type counts (request and
 * response -> 2 each), D = 5 dynamic-allocation possibilities and N_L3 L3
 * routers.  From the packet size, the per-wavelength data rate and the
 * network frequency we derive the number of reservation wavelengths.
 */

#ifndef PEARL_PHOTONIC_RESERVATION_HPP
#define PEARL_PHOTONIC_RESERVATION_HPP

#include <cmath>

#include "common/expected.hpp"
#include "common/log.hpp"

namespace pearl {
namespace photonic {

/** Parameters of the reservation channel. */
struct ReservationConfig
{
    int numRouters = 16;        //!< N: non-L3 routers
    int numL3Routers = 1;       //!< N_L3
    int cpuPacketTypes = 2;     //!< S_CPU: request + response
    int gpuPacketTypes = 2;     //!< S_GPU: request + response
    int allocationLevels = 5;   //!< D: {0,25,50,75,100}% splits
    double dataRateGbps = 16.0; //!< per reservation wavelength
    double networkFreqGhz = 2.0;
};

/** Validate a reservation-channel configuration (every field feeds the
 *  log2 sizing formula, so zeros/negatives produce garbage sizes). */
inline Validation
validate(const ReservationConfig &cfg)
{
    if (cfg.numRouters <= 0 || cfg.numL3Routers <= 0)
        return configError("reservation router counts must be > 0, got "
                           "numRouters=", cfg.numRouters,
                           " numL3Routers=", cfg.numL3Routers);
    if (cfg.cpuPacketTypes <= 0 || cfg.gpuPacketTypes <= 0 ||
        cfg.allocationLevels <= 0)
        return configError("reservation packet-type/allocation counts "
                           "must be > 0, got cpu=", cfg.cpuPacketTypes,
                           " gpu=", cfg.gpuPacketTypes, " levels=",
                           cfg.allocationLevels);
    if (!(cfg.dataRateGbps > 0.0) || !(cfg.networkFreqGhz > 0.0))
        return configError("reservation dataRateGbps and networkFreqGhz "
                           "must be > 0, got ", cfg.dataRateGbps,
                           " Gbps / ", cfg.networkFreqGhz, " GHz");
    return {};
}

/** Sizing calculations for the reservation waveguide. */
class ReservationChannel
{
  public:
    /** @throws ConfigError when `cfg` fails validation. */
    explicit ReservationChannel(const ReservationConfig &cfg = {}) : cfg_(cfg)
    {
        throwIfInvalid(validate(cfg_));
    }

    /** Reservation packet size in bits (the paper's formula, rounded up). */
    int
    packetBits() const
    {
        const double combinations = 2.0 * cfg_.numRouters *
                                    cfg_.cpuPacketTypes * cfg_.gpuPacketTypes *
                                    cfg_.allocationLevels * cfg_.numL3Routers;
        return static_cast<int>(std::ceil(std::log2(combinations)));
    }

    /** Bits one reservation wavelength carries per network cycle. */
    double
    bitsPerWavelengthPerCycle() const
    {
        return cfg_.dataRateGbps / cfg_.networkFreqGhz;
    }

    /**
     * Wavelengths needed so a reservation broadcast completes within one
     * network cycle.
     */
    int
    wavelengthsNeeded() const
    {
        return static_cast<int>(
            std::ceil(packetBits() / bitsPerWavelengthPerCycle()));
    }

    /**
     * Latency in network cycles for a reservation using `wavelengths`
     * reservation wavelengths (>= 1 cycle; plus one cycle for the
     * listeners to tune their rings).
     */
    int
    latencyCycles(int wavelengths) const
    {
        if (wavelengths <= 0) {
            throw ConfigError(Error(
                ErrorCode::InvalidArgument,
                detail::formatMessage(
                    "reservation latency needs wavelengths > 0, got ",
                    wavelengths)));
        }
        const double per_cycle =
            bitsPerWavelengthPerCycle() * wavelengths;
        const int broadcast = static_cast<int>(
            std::ceil(static_cast<double>(packetBits()) / per_cycle));
        const int tune = 1;
        return broadcast + tune;
    }

    const ReservationConfig &config() const { return cfg_; }

  private:
    ReservationConfig cfg_;
};

} // namespace photonic
} // namespace pearl

#endif // PEARL_PHOTONIC_RESERVATION_HPP
