/**
 * @file
 * Wavelength (laser power) states of a PEARL router's optical transmitter.
 *
 * The 64 wavelengths of each data waveguide are organised as four banks of
 * 16 lasers; power scaling lights a subset of the banks, and the lowest
 * bank can additionally be half-lit, giving five states: 64, 48, 32, 16
 * and 8 wavelengths (Section III-C).
 */

#ifndef PEARL_PHOTONIC_WL_STATE_HPP
#define PEARL_PHOTONIC_WL_STATE_HPP

#include <array>

#include "common/log.hpp"

namespace pearl {
namespace photonic {

/** The five laser power states, ordered from lowest to highest power. */
enum class WlState : int { WL8 = 0, WL16 = 1, WL32 = 2, WL48 = 3, WL64 = 4 };

constexpr int kNumWlStates = 5;

/** All states in ascending power order. */
constexpr std::array<WlState, kNumWlStates> kWlStates = {
    WlState::WL8, WlState::WL16, WlState::WL32, WlState::WL48, WlState::WL64
};

/** Number of lit wavelengths in a state. */
inline int
wavelengths(WlState s)
{
    static constexpr int counts[kNumWlStates] = {8, 16, 32, 48, 64};
    return counts[static_cast<int>(s)];
}

/** State index (0 = WL8 ... 4 = WL64). */
inline int
indexOf(WlState s)
{
    return static_cast<int>(s);
}

inline WlState
stateFromIndex(int idx)
{
    PEARL_ASSERT(idx >= 0 && idx < kNumWlStates);
    return static_cast<WlState>(idx);
}

/**
 * Sustained serializer bandwidth in bits per network cycle.  Each lit
 * wavelength carries one bit per network cycle through the 4-bank
 * serializer (a 128-bit flit at the full 64-wavelength state takes two
 * cycles, matching Section III-C).
 */
inline int
bitsPerCycle(WlState s)
{
    return wavelengths(s);
}

/**
 * Quantised per-flit serialization latency in cycles, as described for
 * the four-bank multiplexer design: 64 WL -> 2 cycles, 48/32 WL -> 4,
 * 16 WL -> 8, 8 WL -> 16.
 */
inline int
cyclesPerFlit(WlState s)
{
    static constexpr int cycles[kNumWlStates] = {16, 8, 4, 4, 2};
    return cycles[static_cast<int>(s)];
}

/** Number of fully lit 16-laser banks (the 8-WL state half-lights one). */
inline double
litBanks(WlState s)
{
    return static_cast<double>(wavelengths(s)) / 16.0;
}

inline const char *
toString(WlState s)
{
    static constexpr const char *names[kNumWlStates] = {
        "8WL", "16WL", "32WL", "48WL", "64WL"
    };
    return names[static_cast<int>(s)];
}

} // namespace photonic
} // namespace pearl

#endif // PEARL_PHOTONIC_WL_STATE_HPP
