#include "photonic/loss_budget.hpp"

#include <cmath>

#include "common/expected.hpp"
#include "common/log.hpp"
#include "common/units.hpp"

namespace pearl {
namespace photonic {

int
LossBudget::ringsPassedWorstCase() const
{
    // On a single-writer waveguide each of the other routers' receive
    // banks sits on the channel; in the worst case a wavelength passes
    // every bank except the destination's own drop ring.  Each bank holds
    // one ring per wavelength, and only the same-wavelength ring of each
    // bank couples appreciably, so the count is one ring per non-target
    // router.
    return geom_.totalRouters() - 1;
}

double
LossBudget::worstCasePathLossDb() const
{
    const double waveguide =
        dev_.waveguideDbPerCm * geom_.worstCasePathCm();
    const double through =
        dev_.filterThroughDb * static_cast<double>(ringsPassedWorstCase());
    return dev_.couplerDb + dev_.modulatorInsertionDb + waveguide + through +
           dev_.filterDropDb + dev_.photodetectorDb;
}

double
LossBudget::reservationPathLossDb() const
{
    // Broadcast: a 1:N split costs 10*log10(N) intrinsic plus the excess
    // splitter loss at each of the log2(N) stages of the split tree.
    const int fanout = geom_.totalRouters() - 1;
    const double intrinsic =
        10.0 * std::log10(static_cast<double>(fanout));
    const double stages = std::ceil(std::log2(static_cast<double>(fanout)));
    const double excess = dev_.splitterDb * stages;
    const double waveguide =
        dev_.waveguideDbPerCm * geom_.worstCasePathCm();
    return dev_.couplerDb + dev_.modulatorInsertionDb + waveguide +
           intrinsic + excess + dev_.filterDropDb + dev_.photodetectorDb;
}

double
LossBudget::requiredLaserOpticalW() const
{
    const double sensitivity_w =
        units::dbmToWatts(dev_.receiverSensitivityDbm);
    return sensitivity_w * units::dbToLinear(worstCasePathLossDb());
}

double
LossBudget::electricalLaserW(WlState state, double wall_plug_efficiency) const
{
    if (!(wall_plug_efficiency > 0.0) || wall_plug_efficiency > 1.0) {
        throw ConfigError(Error(
            ErrorCode::InvalidArgument,
            detail::formatMessage(
                "wall-plug efficiency must be in (0, 1], got ",
                wall_plug_efficiency)));
    }
    const double per_wavelength =
        requiredLaserOpticalW() / wall_plug_efficiency;
    return per_wavelength * static_cast<double>(wavelengths(state));
}

double
LossBudget::calibratedEfficiency(double paper_full_state_w) const
{
    if (!(paper_full_state_w > 0.0)) {
        throw ConfigError(Error(
            ErrorCode::InvalidArgument,
            detail::formatMessage(
                "calibration needs a full-state laser power > 0 W, "
                "got ", paper_full_state_w)));
    }
    const double optical_total = requiredLaserOpticalW() * 64.0;
    return optical_total / paper_full_state_w;
}

} // namespace photonic
} // namespace pearl
