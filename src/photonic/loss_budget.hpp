/**
 * @file
 * Optical loss budget and laser-power derivation for the PEARL crossbar.
 *
 * Works bottom-up from the Table V component losses: given the worst-case
 * path a wavelength travels on the single-writer multiple-reader data
 * waveguide, compute the optical power each laser must emit so the target
 * receiver still sees its sensitivity floor, and from that the electrical
 * (wall-plug) laser power per wavelength state.
 *
 * The paper reports calibrated electrical powers of 1.16 / 0.871 / 0.581 /
 * 0.29 / 0.145 W for the 64/48/32/16/8-wavelength states; the model exposes
 * both the bottom-up derivation and the wall-plug efficiency implied by
 * matching the paper's numbers (see `calibratedEfficiency`).
 */

#ifndef PEARL_PHOTONIC_LOSS_BUDGET_HPP
#define PEARL_PHOTONIC_LOSS_BUDGET_HPP

#include "photonic/devices.hpp"
#include "photonic/wl_state.hpp"

namespace pearl {
namespace photonic {

/** Loss budget over one R-SWMR data waveguide. */
class LossBudget
{
  public:
    LossBudget(const DeviceConstants &dev, const ChipGeometry &geom)
        : dev_(dev), geom_(geom)
    {}

    /**
     * Worst-case path loss in dB from laser output to photodetector for a
     * data wavelength: coupler, modulator, full-die waveguide run, the
     * through-loss of every off-resonance receive ring passed, the drop
     * filter and the detector.
     */
    double worstCasePathLossDb() const;

    /**
     * Loss of the reservation broadcast waveguide in dB.  Unlike the data
     * waveguide, the reservation signal is split to every router, so it
     * pays a 1:N splitting penalty on top of the component losses.
     */
    double reservationPathLossDb() const;

    /** Optical power in watts one data laser must emit (worst case). */
    double requiredLaserOpticalW() const;

    /**
     * Electrical laser power for `state` at the given wall-plug
     * efficiency (0 < eta <= 1).
     */
    double electricalLaserW(WlState state, double wall_plug_efficiency) const;

    /**
     * Wall-plug efficiency implied by calibrating the bottom-up budget to
     * the paper's 1.16 W figure for the full 64-wavelength state.
     */
    double calibratedEfficiency(double paper_full_state_w = 1.16) const;

    /** Number of off-resonance rings a data wavelength passes (worst case). */
    int ringsPassedWorstCase() const;

    const DeviceConstants &devices() const { return dev_; }
    const ChipGeometry &geometry() const { return geom_; }

  private:
    DeviceConstants dev_;
    ChipGeometry geom_;
};

} // namespace photonic
} // namespace pearl

#endif // PEARL_PHOTONIC_LOSS_BUDGET_HPP
