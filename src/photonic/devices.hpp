/**
 * @file
 * Photonic device constants (Table V of the paper plus Section III-A).
 *
 * All losses are in dB, powers in watts, dimensions in metres unless the
 * field name says otherwise.  The defaults reproduce Table V; alternative
 * device assumptions can be explored by constructing a modified struct.
 */

#ifndef PEARL_PHOTONIC_DEVICES_HPP
#define PEARL_PHOTONIC_DEVICES_HPP

namespace pearl {
namespace photonic {

/** Optical component losses and powers used in the PEARL power budget. */
struct DeviceConstants
{
    // Losses (Table V) -------------------------------------------------
    double modulatorInsertionDb = 1.0;   //!< modulator insertion loss
    double waveguideDbPerCm = 1.0;       //!< straight waveguide loss
    double couplerDb = 1.0;              //!< laser-to-waveguide coupler
    double splitterDb = 0.2;             //!< per split on broadcast paths
    double filterThroughDb = 1.00e-3;    //!< per off-resonance ring passed
    double filterDropDb = 1.5;           //!< drop into the target ring
    double photodetectorDb = 0.1;        //!< detector insertion loss
    double receiverSensitivityDbm = -15.0; //!< minimum detectable power

    // Ring powers (Table V) ---------------------------------------------
    double ringHeatingW = 26e-6;         //!< trimming heater, per ring
    double ringModulatingW = 500e-6;     //!< modulation driver, per ring

    // Link/device parameters (Section III-A) ------------------------------
    double dataRateGbps = 16.0;          //!< per-wavelength data rate
    double mrrDiameterUm = 3.3;          //!< MRR diameter (Table II)
    double waveguidePitchUm = 5.28;      //!< waveguide pitch (Table II)
    double propagationPsPerMm = 10.45;   //!< waveguide group delay
    double laserTurnOnNs = 2.0;          //!< on-chip InP FP laser turn-on

    // E/O + O/E electrical back-end energy, per bit.  Covers serializer,
    // modulator driver, TIA and voltage amplifier (Section III-A devices).
    double transceiverPjPerBit = 0.25;
};

/** Geometry of the 4x4-cluster + L3 PEARL chip used for loss budgets. */
struct ChipGeometry
{
    double chipWidthMm = 20.0;          //!< die edge (Table II areas ~ 400mm2)
    double clusterPitchMm = 5.0;        //!< spacing between router sites
    int numClusterRouters = 16;
    int numL3Routers = 1;

    int totalRouters() const { return numClusterRouters + numL3Routers; }

    /**
     * Worst-case waveguide length between two routers on the serpentine
     * crossbar layout: roughly one full traversal of the die.
     */
    double
    worstCasePathCm() const
    {
        return 2.0 * chipWidthMm / 10.0;
    }
};

} // namespace photonic
} // namespace pearl

#endif // PEARL_PHOTONIC_DEVICES_HPP
