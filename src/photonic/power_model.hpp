/**
 * @file
 * Per-router photonic power model.
 *
 * Splits the optical power of one PEARL router into:
 *  - laser power, a function of the wavelength state (static while lit);
 *  - trimming (ring heating) power, scaling with the lit banks because the
 *    four-bank design lets heaters of dark banks be relaxed (Section III-C);
 *  - modulation + transceiver energy, dynamic per transmitted bit.
 *
 * Laser power per state defaults to the paper's calibrated values; the
 * bottom-up derivation from the loss budget is available through
 * `fromLossBudget` for sensitivity studies.
 */

#ifndef PEARL_PHOTONIC_POWER_MODEL_HPP
#define PEARL_PHOTONIC_POWER_MODEL_HPP

#include <array>

#include "photonic/devices.hpp"
#include "photonic/loss_budget.hpp"
#include "photonic/wl_state.hpp"

namespace pearl {
namespace photonic {

/** Power/energy model of one router's optical front-end. */
class PowerModel
{
  public:
    /** Paper-calibrated per-state laser powers in watts (Section IV-B). */
    static constexpr std::array<double, kNumWlStates> kPaperLaserW = {
        0.145, 0.29, 0.581, 0.871, 1.16
    };

    /** Construct with the paper's calibrated laser powers. */
    explicit PowerModel(const DeviceConstants &dev = DeviceConstants{});

    /**
     * Construct with laser powers derived bottom-up from a loss budget at
     * a given wall-plug efficiency.
     */
    static PowerModel fromLossBudget(const LossBudget &budget,
                                     double wall_plug_efficiency);

    /** Electrical laser power in watts while in `state`. */
    double
    laserPowerW(WlState state) const
    {
        return laserW_[static_cast<int>(state)];
    }

    /**
     * A copy with all laser powers multiplied by `factor`.  The paper's
     * calibrated state powers are network-aggregate figures; dividing by
     * the router count yields the per-router laser array power.
     */
    PowerModel
    scaled(double factor) const
    {
        PowerModel copy = *this;
        for (auto &w : copy.laserW_)
            w *= factor;
        return copy;
    }

    /**
     * Ring-trimming (heating) power in watts while in `state`.
     * @param tx_rings modulator rings on this router's data waveguide.
     * @param rx_rings detector rings this router keeps tuned.
     */
    double trimmingPowerW(WlState state, int tx_rings, int rx_rings) const;

    /**
     * Dynamic energy per transmitted bit in joules: ring modulation plus
     * the electrical transceiver back-end (serializer, driver, TIA).
     */
    double dynamicEnergyPerBitJ() const;

    const DeviceConstants &devices() const { return dev_; }

  private:
    DeviceConstants dev_;
    std::array<double, kNumWlStates> laserW_;
};

} // namespace photonic
} // namespace pearl

#endif // PEARL_PHOTONIC_POWER_MODEL_HPP
