#include "verify/fuzzer.hpp"

#include <chrono>
#include <fstream>
#include <istream>
#include <sstream>
#include <unordered_map>

#include "common/env.hpp"
#include "common/log.hpp"
#include "core/validate.hpp"
#include "ml/features.hpp"
#include "ml/guarded_policy.hpp"
#include "ml/policy.hpp"

namespace pearl {
namespace verify {

FuzzCase
generateCase(std::uint64_t base_seed, std::uint64_t index)
{
    FuzzCase c;
    c.seed = deriveSeed(base_seed, index);
    Rng rng(c.seed);

    c.numClusters = static_cast<int>(rng.range(2, 4));
    c.l3WaveguideGroup = static_cast<int>(rng.range(1, 3));
    c.cpuInjectSlots = static_cast<int>(rng.range(6, 16));
    c.gpuInjectSlots = static_cast<int>(rng.range(6, 16));
    c.rxSlotsPerClass = static_cast<int>(rng.range(6, 16));

    c.reservationCycles = static_cast<int>(rng.range(0, 3));
    c.linkLatencyCycles = static_cast<int>(rng.range(1, 4));
    c.ejectFlitsPerCycle = static_cast<int>(rng.range(1, 8));

    c.reservationWindow = static_cast<std::uint64_t>(rng.range(40, 200));
    c.windowOffsetPerRouter = static_cast<int>(rng.range(0, 30));
    c.laserTurnOnCycles = static_cast<std::uint64_t>(rng.range(0, 8));
    c.initialState =
        static_cast<int>(rng.range(0, photonic::kNumWlStates - 1));

    c.policy = static_cast<int>(rng.range(0, kNumPolicyKinds - 1));
    c.dbaMode = static_cast<int>(rng.range(0, 2));

    // Half the cases run grouped so the express plane's arbitration,
    // fault caps and energy paths are fuzzed alongside the legacy
    // single-domain chips.  Only proper divisors keep numGroups > 1.
    if (rng.chance(0.5)) {
        c.reservationGroupSize =
            (c.numClusters == 4 && rng.chance(0.5)) ? 2 : 1;
        c.resExpressSlots = static_cast<int>(rng.range(1, 3));
        c.expressReservationCycles = static_cast<int>(rng.range(0, 4));
    }
    // Independent of grouping: the hub's multi-waveguide channel drains
    // in parallel on half the cases, legacy-serialised on the rest.
    c.multiPacketTx = rng.chance(0.5);

    c.faultsEnabled = rng.chance(0.75);
    if (c.faultsEnabled) {
        c.bankMtbfCycles = rng.chance(0.5)
                               ? static_cast<double>(rng.range(200, 4000))
                               : 0.0;
        c.bankMttrCycles = static_cast<double>(rng.range(100, 1000));
        static constexpr double kBers[] = {0.0, 1e-4, 1e-3, 5e-3};
        c.baseBer = kBers[rng.range(0, 3)];
        static constexpr double kDropRates[] = {0.0, 0.001, 0.01, 0.05};
        c.reservationDropRate = kDropRates[rng.range(0, 3)];
        c.faultSeed = deriveSeed(c.seed, 1);
        // Always > 2 * linkLatency and >= 2: validate's floor.
        c.ackTimeoutCycles =
            2 * static_cast<std::uint64_t>(c.linkLatencyCycles) + 2 +
            static_cast<std::uint64_t>(rng.range(0, 64));
        c.retryLimit = static_cast<int>(rng.range(0, 6));
        c.retxBackoffBase = static_cast<std::uint64_t>(rng.range(1, 16));
        c.retxBackoffMax = c.retxBackoffBase
                           << static_cast<unsigned>(rng.range(0, 6));
    }

    c.cycles = static_cast<std::uint64_t>(rng.range(300, 1200));
    c.cpuRate = 0.25 * rng.uniform();
    c.gpuRate = 0.25 * rng.uniform();
    c.trafficSeed = deriveSeed(c.seed, 2);
    return c;
}

core::PearlConfig
toPearlConfig(const FuzzCase &c)
{
    core::PearlConfig cfg;
    cfg.numClusters = c.numClusters;
    cfg.l3Node = c.numClusters; // the extra node, as in the default map
    cfg.l3WaveguideGroup = c.l3WaveguideGroup;
    cfg.reservationGroupSize = c.reservationGroupSize;
    if (c.reservationGroupSize > 0) {
        cfg.resExpressSlots = c.resExpressSlots;
        cfg.expressReservationCycles = c.expressReservationCycles;
        cfg.expressResLaserW = 0.0006;
    }
    cfg.multiPacketTx = c.multiPacketTx;
    cfg.cpuInjectSlots = c.cpuInjectSlots;
    cfg.gpuInjectSlots = c.gpuInjectSlots;
    cfg.rxSlotsPerClass = c.rxSlotsPerClass;
    cfg.reservationCycles = c.reservationCycles;
    cfg.linkLatencyCycles = c.linkLatencyCycles;
    cfg.ejectFlitsPerCycle = c.ejectFlitsPerCycle;
    cfg.reservationWindow = c.reservationWindow;
    cfg.windowOffsetPerRouter = c.windowOffsetPerRouter;
    cfg.laserTurnOnCycles = c.laserTurnOnCycles;
    cfg.initialState = photonic::stateFromIndex(c.initialState);
    cfg.useThermalModel = false; // outside the oracle's scope
    cfg.faults.enabled = c.faultsEnabled;
    if (c.faultsEnabled) {
        cfg.faults.seed = c.faultSeed;
        cfg.faults.bankMtbfCycles = c.bankMtbfCycles;
        cfg.faults.bankMttrCycles = c.bankMttrCycles;
        cfg.faults.baseBer = c.baseBer;
        cfg.faults.reservationDropRate = c.reservationDropRate;
        cfg.ackTimeoutCycles = c.ackTimeoutCycles;
        cfg.retryLimit = c.retryLimit;
        cfg.retxBackoffBase = c.retxBackoffBase;
        cfg.retxBackoffMax = c.retxBackoffMax;
    }
    return cfg;
}

core::DbaConfig
toDbaConfig(const FuzzCase &c)
{
    core::DbaConfig dba;
    dba.mode = static_cast<core::DbaConfig::Mode>(c.dbaMode);
    return dba;
}

const ml::RidgeRegression &
fuzzModel()
{
    static const ml::RidgeRegression model = [] {
        ml::Dataset data;
        Rng rng(0xF17ull);
        for (int i = 0; i < 8 * ml::kNumFeatures; ++i) {
            std::vector<double> x(ml::kNumFeatures);
            for (double &v : x)
                v = 32.0 * rng.uniform();
            // A noisy linear target over a few features keeps the fit
            // well conditioned and the predictions non-degenerate.
            const double label =
                0.3 * x[2] + 0.2 * x[10] + 4.0 * rng.uniform();
            data.features.push_back(std::move(x));
            data.labels.push_back(label);
        }
        ml::RidgeRegression m;
        m.fit(data, 1.0);
        return m;
    }();
    return model;
}

DiffCase
toDiffCase(const FuzzCase &c)
{
    DiffCase d;
    d.cfg = toPearlConfig(c);
    d.dba = toDbaConfig(c);
    d.cycles = c.cycles;
    d.trafficSeed = c.trafficSeed;
    d.cpuRate = c.cpuRate;
    d.gpuRate = c.gpuRate;

    const auto kind = static_cast<PolicyKind>(c.policy);
    const auto initial = photonic::stateFromIndex(c.initialState);
    const std::uint64_t policy_seed = deriveSeed(c.seed, 3);
    d.makePolicy = [kind, initial,
                    policy_seed]() -> std::unique_ptr<core::PowerPolicy> {
        switch (kind) {
          case PolicyKind::Reactive:
            return std::make_unique<core::ReactivePolicy>();
          case PolicyKind::Ml:
            return std::make_unique<ml::MlPowerPolicy>(&fuzzModel());
          case PolicyKind::Guarded: {
            // Tight guardrails so fuzzed runs actually exercise the
            // fallback transitions, not just the ML path.
            ml::GuardrailConfig guard;
            guard.errorWindow = 2;
            guard.enterError = 0.50;
            guard.exitError = 0.20;
            guard.enterStreak = 1;
            guard.exitStreak = 2;
            return std::make_unique<ml::GuardedPolicy>(
                &fuzzModel(), ml::MlPolicyConfig{}, guard);
          }
          case PolicyKind::Random:
            // Both simulators get their own copy seeded identically, so
            // the draws line up window for window.
            return std::make_unique<core::RandomPolicy>(Rng(policy_seed),
                                                        true);
          case PolicyKind::Static:
          default:
            return std::make_unique<core::StaticPolicy>(initial);
        }
    };
    return d;
}

namespace {

/** Single source of truth for the reproducer field list; `v(name,
 *  field)` is called once per field, in file order. */
template <typename Case, typename Visitor>
void
visitCaseFields(Case &c, Visitor &&v)
{
    v("seed", c.seed);
    v("numClusters", c.numClusters);
    v("l3WaveguideGroup", c.l3WaveguideGroup);
    v("reservationGroupSize", c.reservationGroupSize);
    v("resExpressSlots", c.resExpressSlots);
    v("expressReservationCycles", c.expressReservationCycles);
    v("multiPacketTx", c.multiPacketTx);
    v("cpuInjectSlots", c.cpuInjectSlots);
    v("gpuInjectSlots", c.gpuInjectSlots);
    v("rxSlotsPerClass", c.rxSlotsPerClass);
    v("reservationCycles", c.reservationCycles);
    v("linkLatencyCycles", c.linkLatencyCycles);
    v("ejectFlitsPerCycle", c.ejectFlitsPerCycle);
    v("reservationWindow", c.reservationWindow);
    v("windowOffsetPerRouter", c.windowOffsetPerRouter);
    v("laserTurnOnCycles", c.laserTurnOnCycles);
    v("initialState", c.initialState);
    v("policy", c.policy);
    v("dbaMode", c.dbaMode);
    v("faultsEnabled", c.faultsEnabled);
    v("bankMtbfCycles", c.bankMtbfCycles);
    v("bankMttrCycles", c.bankMttrCycles);
    v("baseBer", c.baseBer);
    v("reservationDropRate", c.reservationDropRate);
    v("faultSeed", c.faultSeed);
    v("ackTimeoutCycles", c.ackTimeoutCycles);
    v("retryLimit", c.retryLimit);
    v("retxBackoffBase", c.retxBackoffBase);
    v("retxBackoffMax", c.retxBackoffMax);
    v("cycles", c.cycles);
    v("cpuRate", c.cpuRate);
    v("gpuRate", c.gpuRate);
    v("trafficSeed", c.trafficSeed);
}

void
printField(std::ostream &os, const char *name, double value)
{
    std::ostringstream text;
    text.precision(17); // max_digits10: parses back bit-exactly
    text << value;
    os << name << '=' << text.str() << '\n';
}

void
printField(std::ostream &os, const char *name, bool value)
{
    os << name << '=' << (value ? 1 : 0) << '\n';
}

template <typename T>
void
printField(std::ostream &os, const char *name, T value)
{
    os << name << '=' << value << '\n';
}

bool
assignField(const std::string &text, double &out)
{
    return parseDouble(text, out);
}

bool
assignField(const std::string &text, bool &out)
{
    return parseBool(text, out);
}

bool
assignField(const std::string &text, std::uint64_t &out)
{
    return parseU64(text, out);
}

bool
assignField(const std::string &text, int &out)
{
    std::uint64_t v = 0;
    if (!parseU64(text, v) || v > static_cast<std::uint64_t>(INT32_MAX))
        return false;
    out = static_cast<int>(v);
    return true;
}

} // namespace

std::string
describeCase(const FuzzCase &c)
{
    std::ostringstream os;
    FuzzCase copy = c;
    visitCaseFields(copy, [&os](const char *name, auto &field) {
        printField(os, name, field);
    });
    return os.str();
}

void
writeReproducer(const FuzzCase &c, const std::string &why,
                const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot write fuzz reproducer to ", path);
        return;
    }
    os << "# pearl fuzz reproducer\n";
    os << "# failure: " << why << '\n';
    os << describeCase(c);
}

bool
parseReproducer(std::istream &is, FuzzCase &out)
{
    std::unordered_map<std::string, std::string> kv;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            return false;
        kv[line.substr(0, eq)] = line.substr(eq + 1);
    }
    bool ok = true;
    visitCaseFields(out, [&kv, &ok](const char *name, auto &field) {
        auto it = kv.find(name);
        if (it == kv.end() || !assignField(it->second, field))
            ok = false;
    });
    return ok;
}

FuzzCase
shrinkCase(const FuzzCase &failing,
           const std::function<bool(const FuzzCase &)> &still_fails)
{
    FuzzCase best = failing;
    const auto keep = [&](const FuzzCase &candidate) {
        if (!still_fails(candidate))
            return false;
        best = candidate;
        return true;
    };

    bool changed = true;
    for (int round = 0; changed && round < 20; ++round) {
        changed = false;

        while (best.cycles > 50) {
            FuzzCase candidate = best;
            candidate.cycles /= 2;
            if (!keep(candidate))
                break;
            changed = true;
        }

        if (best.reservationDropRate != 0.0) {
            FuzzCase candidate = best;
            candidate.reservationDropRate = 0.0;
            changed |= keep(candidate);
        }
        if (best.baseBer != 0.0) {
            FuzzCase candidate = best;
            candidate.baseBer = 0.0;
            changed |= keep(candidate);
        }
        if (best.bankMtbfCycles != 0.0) {
            FuzzCase candidate = best;
            candidate.bankMtbfCycles = 0.0;
            changed |= keep(candidate);
        }
        if (best.faultsEnabled) {
            FuzzCase candidate = best;
            candidate.faultsEnabled = false;
            changed |= keep(candidate);
        }
        if (best.gpuRate != 0.0) {
            FuzzCase candidate = best;
            candidate.gpuRate = 0.0;
            changed |= keep(candidate);
        }
        if (best.cpuRate > 0.01) {
            FuzzCase candidate = best;
            candidate.cpuRate /= 2.0;
            changed |= keep(candidate);
        }
        if (best.policy != static_cast<int>(PolicyKind::Static)) {
            FuzzCase candidate = best;
            candidate.policy = static_cast<int>(PolicyKind::Static);
            changed |= keep(candidate);
        }
        if (best.reservationGroupSize != 0) {
            FuzzCase candidate = best;
            candidate.reservationGroupSize = 0;
            changed |= keep(candidate);
        }
        if (best.multiPacketTx) {
            FuzzCase candidate = best;
            candidate.multiPacketTx = false;
            changed |= keep(candidate);
        }
        if (best.numClusters > 2) {
            FuzzCase candidate = best;
            candidate.numClusters = 2;
            // Keep the group size a divisor of the shrunk chip.
            if (candidate.reservationGroupSize > 2)
                candidate.reservationGroupSize = 1;
            changed |= keep(candidate);
        }
    }
    return best;
}

FuzzReport
runFuzz(const FuzzOptions &opts)
{
    const auto start = std::chrono::steady_clock::now();
    const auto out_of_time = [&] {
        if (opts.maxSeconds <= 0.0)
            return false;
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        return elapsed.count() >= opts.maxSeconds;
    };

    const auto failure = [](const FuzzCase &c) -> std::string {
        const core::PearlConfig cfg = toPearlConfig(c);
        if (Validation v = core::validate(cfg); !v)
            return "generated config failed validate: " +
                   v.error().message;
        const DiffResult r = runDiff(toDiffCase(c));
        return r.diverged ? r.description : std::string();
    };

    FuzzReport report;
    for (std::uint64_t i = 0; i < opts.maxCases; ++i) {
        if (out_of_time())
            break;
        const FuzzCase c = generateCase(opts.baseSeed, i);
        ++report.casesRun;
        const std::string why = failure(c);
        if (why.empty())
            continue;
        report.failed = true;
        report.description = why;
        report.minimal = shrinkCase(c, [&](const FuzzCase &candidate) {
            return !failure(candidate).empty();
        });
        if (!opts.reproducerPath.empty())
            writeReproducer(report.minimal, why, opts.reproducerPath);
        break;
    }
    return report;
}

} // namespace verify
} // namespace pearl
