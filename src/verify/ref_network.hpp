/**
 * @file
 * A deliberately naive reference implementation of the PEARL network.
 *
 * RefNetwork re-implements PearlNetwork's externally visible semantics
 * — packet movement, DBA splits, R-SWMR reservation arbitration,
 * wavelength-state selection, fault recovery and energy integration —
 * with the simplest possible code: std::deque buffers with O(n)
 * occupancy recomputation, std::priority_queue event channels, per-call
 * modulo window checks, fresh power-model calls per cycle, and no idle
 * fast-forward (advanceIdle keeps the interface default of 0).  It
 * shares only leaf components with the optimized simulator: the
 * photonic::FaultInjector (so both sides see the same fault schedule
 * from the same seed), sim::NetworkStats and sim::RouterTelemetry
 * (plain accumulators), and the installed PowerPolicy.
 *
 * The point is divergence detection, not speed: the differential driver
 * (verify/diff.hpp) steps a RefNetwork and a PearlNetwork in lockstep
 * and compares per-cycle deliveries, counters, per-router laser/buffer
 * state and energy integrals bit for bit.  Scope note: the thermal
 * model is excluded (the constructor asserts !useThermalModel); its
 * physics are pinned by test_thermal separately.
 */

#ifndef PEARL_VERIFY_REF_NETWORK_HPP
#define PEARL_VERIFY_REF_NETWORK_HPP

#include <array>
#include <cstdint>
#include <deque>
#include <queue>
#include <unordered_map>
#include <vector>

#include "core/arch_config.hpp"
#include "core/dba.hpp"
#include "core/power_policy.hpp"
#include "photonic/faults.hpp"
#include "photonic/power_model.hpp"
#include "photonic/wl_state.hpp"
#include "sim/network.hpp"
#include "sim/stats.hpp"
#include "sim/telemetry.hpp"

namespace pearl {
namespace verify {

/** The naive reference simulator (see file comment). */
class RefNetwork : public sim::Network
{
  public:
    RefNetwork(const core::PearlConfig &cfg,
               const photonic::PowerModel &power,
               const core::DbaConfig &dba, core::PowerPolicy *policy);

    // sim::Network --------------------------------------------------------
    bool inject(const sim::Packet &pkt) override;
    bool canInject(const sim::Packet &pkt) const override;
    void step() override;
    std::vector<sim::Packet> &delivered() override { return delivered_; }
    sim::Cycle cycle() const override { return cycle_; }
    int numNodes() const override { return cfg_.numNodes(); }
    const sim::NetworkStats &stats() const override { return stats_; }
    bool idle() const override;

    // State exposed to the differential driver -------------------------
    photonic::WlState laserState(int node) const;
    bool laserStable(int node, sim::Cycle now) const;
    photonic::WlState wlCap(int node) const;
    std::uint64_t laserCycles(int node) const;
    std::uint64_t upSwitches(int node) const;
    std::uint64_t downSwitches(int node) const;
    int bufferSlots(int node, bool rx, sim::CoreType type) const;
    sim::RouterTelemetry &telemetryOf(int node);

    double laserEnergyJ() const;
    double trimmingEnergyJ() const { return trimmingEnergyJ_; }
    double dynamicEnergyJ() const { return dynamicEnergyJ_; }
    double residency(photonic::WlState s) const;

    // Grouped R-SWMR express plane (mirrors core::ExpressArbiter) ------
    int expressInUse(int group) const;
    int expressCap(int group) const;
    bool txHoldsExpress(int node, sim::CoreType type) const;

  private:
    /** Naive laser bank: same semantics as photonic::LaserBank with
     *  plain counters instead of a histogram. */
    struct RefLaser
    {
        const photonic::PowerModel *model = nullptr;
        std::uint64_t turnOnCycles = 0;
        photonic::WlState state = photonic::WlState::WL64;
        std::uint64_t stableAt = 0;
        double energyJ = 0.0;
        std::uint64_t stateCycles[photonic::kNumWlStates] = {};
        std::uint64_t cycles = 0;
        std::uint64_t upSwitches = 0;
        std::uint64_t downSwitches = 0;

        void requestState(photonic::WlState next, sim::Cycle now);
        bool stable(sim::Cycle now) const { return now >= stableAt; }
        void tick(double dt);
        double residency(photonic::WlState s) const;
    };

    /** Serialisation state of one class channel (verbatim semantics). */
    struct RefTxChannel
    {
        bool active = false;
        bool backToBack = false;
        int resRemaining = 0;
        int flitsRemaining = 0;
        long creditBits = 0;
        bool holdsExpressSlot = false;
    };

    struct RefRouter
    {
        int id = 0;
        int waveguides = 1;
        std::deque<sim::Packet> inject[sim::kNumCoreTypes];
        std::deque<sim::Packet> rx[sim::kNumCoreTypes];
        int injectCap[sim::kNumCoreTypes] = {0, 0};
        int rxCap[sim::kNumCoreTypes] = {0, 0};
        RefTxChannel tx[sim::kNumCoreTypes];
        int ejectProgress[sim::kNumCoreTypes] = {0, 0};
        int ejectRr = 0;
        RefLaser laser;
        photonic::WlState cap = photonic::WlState::WL64;
        sim::RouterTelemetry telemetry;
        double betaWindowSum = 0.0;
        std::uint64_t windowCycles = 0;
    };

    struct InFlight
    {
        sim::Cycle due;
        sim::Packet pkt;
        bool faultChecked = false;
        bool operator>(const InFlight &o) const { return due > o.due; }
    };

    struct Outstanding
    {
        sim::Packet pkt;
        std::uint16_t attempt = 0;
    };

    struct TimeoutEvent
    {
        sim::Cycle due;
        int src;
        std::uint64_t seq;
        std::uint16_t attempt;
        bool
        operator>(const TimeoutEvent &o) const
        {
            return due > o.due;
        }
    };

    struct PendingRetx
    {
        sim::Cycle due;
        sim::Packet pkt;
        bool
        operator>(const PendingRetx &o) const
        {
            return due > o.due;
        }
    };

    template <typename T>
    using RefHeap = std::priority_queue<T, std::vector<T>, std::greater<T>>;

    // O(n) occupancy recomputation — intentionally the slow honest way.
    static int occupiedSlots(const std::deque<sim::Packet> &buf);
    static double occupancy(const std::deque<sim::Packet> &buf, int cap);
    static bool pushPacket(std::deque<sim::Packet> &buf, int cap,
                           const sim::Packet &pkt);

    core::Allocation allocate(const RefRouter &router) const;
    int transmitClass(RefRouter &router, sim::CoreType type, double share,
                      int capacity_bits,
                      std::vector<sim::Packet> &done);
    int transmitCycle(RefRouter &router,
                      std::vector<sim::Packet> &done);
    void ejectCycle(RefRouter &router);
    void armRetry(Outstanding &&entry, sim::Cycle delay);
    void trackTransmission(const sim::Packet &pkt);
    void stepFaultPlane();

    core::PearlConfig cfg_;
    photonic::PowerModel routerPower_;
    photonic::PowerModel l3Power_;
    core::DbaConfig dba_;
    core::PowerPolicy *policy_;
    std::vector<RefRouter> routers_;
    RefHeap<InFlight> inFlight_;
    std::vector<sim::Packet> delivered_;
    photonic::FaultInjector faults_;
    std::vector<std::uint64_t> nextSeq_;
    std::vector<std::unordered_map<std::uint64_t, Outstanding>>
        outstanding_;
    RefHeap<TimeoutEvent> timeouts_;
    RefHeap<PendingRetx> retx_;
    sim::NetworkStats stats_;
    sim::Cycle cycle_ = 0;
    double trimmingEnergyJ_ = 0.0;
    double dynamicEnergyJ_ = 0.0;

    // Naive per-group express pool (grouped chips only): plain vectors
    // updated inline — the honest mirror of core::ExpressArbiter.
    std::vector<std::array<int, sim::kNumCoreTypes>> expressUse_;
    std::vector<int> expressCap_;
    double expressLaserEnergyJ_ = 0.0;
};

} // namespace verify
} // namespace pearl

#endif // PEARL_VERIFY_REF_NETWORK_HPP
