#include "verify/diff.hpp"

#include <bit>
#include <memory>
#include <sstream>

#include "core/network.hpp"
#include "core/router.hpp"
#include "photonic/laser.hpp"
#include "verify/invariants.hpp"
#include "verify/ref_network.hpp"

namespace pearl {
namespace verify {

using sim::CoreType;
using sim::Cycle;
using sim::Packet;

std::vector<Packet>
TrafficGen::cycleTraffic(Cycle now)
{
    std::vector<Packet> out;
    for (int r = 0; r < numNodes_; ++r) {
        for (int c = 0; c < sim::kNumCoreTypes; ++c) {
            const double rate = c == 0 ? cpuRate_ : gpuRate_;
            if (!rng_.chance(rate))
                continue;
            Packet pkt;
            pkt.id = nextId_++;
            pkt.src = r;
            int dst = rng_.range(0, numNodes_ - 2);
            if (dst >= r)
                ++dst;
            pkt.dst = dst;
            const bool request = rng_.chance(0.5);
            if (c == 0) {
                pkt.msgClass = request ? sim::MsgClass::ReqCpuL2Down
                                       : sim::MsgClass::RespCpuL2Down;
            } else {
                pkt.msgClass = request ? sim::MsgClass::ReqGpuL2Down
                                       : sim::MsgClass::RespGpuL2Down;
            }
            pkt.sizeBits = request ? sim::kRequestBits : sim::kResponseBits;
            pkt.op = request ? sim::CoherenceOp::Read
                             : sim::CoherenceOp::Data;
            pkt.cycleCreated = now;
            out.push_back(pkt);
        }
    }
    return out;
}

namespace {

/** Bit-for-bit double comparison (0.0 vs -0.0 counts as a divergence —
 *  both sides must run the exact same arithmetic). */
bool
sameBits(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
           std::bit_cast<std::uint64_t>(b);
}

struct Divergence
{
    bool hit = false;
    std::string what;
};

template <typename T>
void
expectEq(Divergence &d, const char *label, const T &pearl, const T &ref)
{
    if (d.hit || pearl == ref)
        return;
    std::ostringstream os;
    os << label << ": optimized=" << pearl << " reference=" << ref;
    d.hit = true;
    d.what = os.str();
}

void
expectBits(Divergence &d, const char *label, double pearl, double ref)
{
    if (d.hit || sameBits(pearl, ref))
        return;
    std::ostringstream os;
    os.precision(17);
    os << label << ": optimized=" << pearl << " reference=" << ref;
    d.hit = true;
    d.what = os.str();
}

void
comparePacket(Divergence &d, std::size_t index, const Packet &pearl,
              const Packet &ref)
{
    if (d.hit)
        return;
    std::ostringstream prefix;
    prefix << "delivered[" << index << "].";
    const std::string p = prefix.str();
    expectEq(d, (p + "id").c_str(), pearl.id, ref.id);
    expectEq(d, (p + "seq").c_str(), pearl.seq, ref.seq);
    expectEq(d, (p + "attempt").c_str(), pearl.attempt, ref.attempt);
    expectEq(d, (p + "src").c_str(), pearl.src, ref.src);
    expectEq(d, (p + "dst").c_str(), pearl.dst, ref.dst);
    expectEq(d, (p + "sizeBits").c_str(), pearl.sizeBits, ref.sizeBits);
    expectEq(d, (p + "msgClass").c_str(),
             static_cast<int>(pearl.msgClass),
             static_cast<int>(ref.msgClass));
    expectEq(d, (p + "cycleInjected").c_str(), pearl.cycleInjected,
             ref.cycleInjected);
    expectEq(d, (p + "cycleDelivered").c_str(), pearl.cycleDelivered,
             ref.cycleDelivered);
}

Divergence
compareCycle(core::PearlNetwork &pearl, RefNetwork &ref)
{
    Divergence d;

    expectEq(d, "cycle", pearl.cycle(), ref.cycle());

    // Deliveries of this cycle, field by field.
    auto &pd = pearl.delivered();
    auto &rd = ref.delivered();
    expectEq(d, "deliveries this cycle", pd.size(), rd.size());
    if (!d.hit) {
        for (std::size_t i = 0; i < pd.size(); ++i)
            comparePacket(d, i, pd[i], rd[i]);
    }
    pd.clear();
    rd.clear();

    // Cumulative statistics.
    const sim::NetworkStats &ps = pearl.stats();
    const sim::NetworkStats &rs = ref.stats();
    expectEq(d, "injectedPackets", ps.injectedPackets(),
             rs.injectedPackets());
    expectEq(d, "injectedFlits", ps.injectedFlits(), rs.injectedFlits());
    expectEq(d, "deliveredPackets", ps.deliveredPackets(),
             rs.deliveredPackets());
    expectEq(d, "deliveredFlits", ps.deliveredFlits(),
             rs.deliveredFlits());
    expectEq(d, "deliveredBits", ps.deliveredBits(), rs.deliveredBits());
    expectEq(d, "cpuDeliveredPackets", ps.cpuDeliveredPackets(),
             rs.cpuDeliveredPackets());
    expectEq(d, "gpuDeliveredPackets", ps.gpuDeliveredPackets(),
             rs.gpuDeliveredPackets());
    expectEq(d, "corruptedPackets", ps.corruptedPackets(),
             rs.corruptedPackets());
    expectEq(d, "reservationDrops", ps.reservationDrops(),
             rs.reservationDrops());
    expectEq(d, "ackTimeouts", ps.ackTimeouts(), rs.ackTimeouts());
    expectEq(d, "retransmittedPackets", ps.retransmittedPackets(),
             rs.retransmittedPackets());
    expectEq(d, "droppedPackets", ps.droppedPackets(),
             rs.droppedPackets());
    expectEq(d, "policyFallbackEntries", ps.policyFallbackEntries(),
             rs.policyFallbackEntries());
    expectEq(d, "policyFallbackExits", ps.policyFallbackExits(),
             rs.policyFallbackExits());
    expectEq(d, "policyFallbackWindows", ps.policyFallbackWindows(),
             rs.policyFallbackWindows());
    expectBits(d, "avgLatency", ps.avgLatency(), rs.avgLatency());

    // Per-router laser, fault-cap and buffer state.
    const Cycle now = pearl.cycle();
    for (int r = 0; r < pearl.numNodes() && !d.hit; ++r) {
        std::ostringstream prefix;
        prefix << "router " << r << " ";
        const std::string p = prefix.str();
        const core::PearlRouter &router = pearl.router(r);
        expectEq(d, (p + "laser state").c_str(),
                 static_cast<int>(router.laser().state()),
                 static_cast<int>(ref.laserState(r)));
        expectEq(d, (p + "laser stable").c_str(),
                 router.laser().stable(now), ref.laserStable(r, now));
        expectEq(d, (p + "laser cycles").c_str(), router.laser().cycles(),
                 ref.laserCycles(r));
        expectEq(d, (p + "up switches").c_str(),
                 router.laser().upSwitches(), ref.upSwitches(r));
        expectEq(d, (p + "down switches").c_str(),
                 router.laser().downSwitches(), ref.downSwitches(r));
        expectEq(d, (p + "wl cap").c_str(),
                 static_cast<int>(router.wlCap()),
                 static_cast<int>(ref.wlCap(r)));
        for (auto type : {CoreType::CPU, CoreType::GPU}) {
            const char *t = type == CoreType::CPU ? "cpu" : "gpu";
            expectEq(d, (p + t + " inject slots").c_str(),
                     router.injectBuffers().of(type).occupiedSlots(),
                     ref.bufferSlots(r, false, type));
            expectEq(d, (p + t + " rx slots").c_str(),
                     router.rxBuffers().of(type).occupiedSlots(),
                     ref.bufferSlots(r, true, type));
            if (pearl.config().grouped()) {
                expectEq(d, (p + t + " express slot").c_str(),
                         router.txAudit(type).holdsExpressSlot,
                         ref.txHoldsExpress(r, type));
            }
        }
    }

    // Grouped chips: express-slot pools, group by group.
    if (pearl.config().grouped()) {
        for (int g = 0; g < pearl.config().numGroups() && !d.hit; ++g) {
            std::ostringstream prefix;
            prefix << "express group " << g << " ";
            const std::string p = prefix.str();
            expectEq(d, (p + "in use").c_str(),
                     pearl.expressArbiter().inUse(g), ref.expressInUse(g));
            expectEq(d, (p + "cap").c_str(),
                     pearl.expressArbiter().cap(g), ref.expressCap(g));
        }
    }

    expectEq(d, "idle", pearl.idle(), ref.idle());

    // Energy integrals and laser residency, bit for bit.
    expectBits(d, "laserEnergyJ", pearl.laserEnergyJ(),
               ref.laserEnergyJ());
    expectBits(d, "trimmingEnergyJ", pearl.trimmingEnergyJ(),
               ref.trimmingEnergyJ());
    expectBits(d, "dynamicEnergyJ", pearl.dynamicEnergyJ(),
               ref.dynamicEnergyJ());
    for (int s = 0; s < photonic::kNumWlStates; ++s) {
        const auto state = photonic::stateFromIndex(s);
        expectBits(d,
                   (std::string("residency ") + photonic::toString(state))
                       .c_str(),
                   pearl.residency(state), ref.residency(state));
    }

    return d;
}

} // namespace

DiffResult
runDiff(const DiffCase &c)
{
    PEARL_ASSERT(c.makePolicy, "DiffCase needs a policy factory");

    const photonic::PowerModel power{};
    std::unique_ptr<core::PowerPolicy> pearl_policy = c.makePolicy();
    std::unique_ptr<core::PowerPolicy> ref_policy = c.makePolicy();

    core::PearlNetwork pearl(c.cfg, power, c.dba, pearl_policy.get());
    RefNetwork ref(c.cfg, power, c.dba, ref_policy.get());

    // Parallel stepping on the optimized side only: the serial
    // reference then certifies the sharded step bit for bit.
    sim::PoolLease lease = sim::ExecutionEngine::instance().lease(
        sim::resolveStepThreads(c.stepThreads));
    if (lease.pool()) {
        pearl.setWorkerPool(lease.pool());
        if (c.rebalance)
            pearl.setShardRebalance(true);
    }

    Invariants invariants;
    if (c.checkInvariants)
        pearl.setAuditor(&invariants);

    TrafficGen traffic(c.trafficSeed, c.cpuRate, c.gpuRate,
                       c.cfg.numNodes());

    DiffResult out;
    for (std::uint64_t i = 0; i < c.cycles; ++i) {
        const Cycle now = pearl.cycle();
        for (const Packet &pkt : traffic.cycleTraffic(now)) {
            const bool pearl_took = pearl.inject(pkt);
            const bool ref_took = ref.inject(pkt);
            if (pearl_took != ref_took) {
                std::ostringstream os;
                os << "injection acceptance for packet " << pkt.id
                   << " (src " << pkt.src << " dst " << pkt.dst
                   << "): optimized=" << pearl_took
                   << " reference=" << ref_took;
                out.diverged = true;
                out.cycle = now;
                out.description = os.str();
                return out;
            }
        }

        try {
            pearl.step();
        } catch (const InvariantViolation &e) {
            out.diverged = true;
            out.cycle = now;
            out.description = e.what();
            return out;
        }
        ref.step();

        Divergence d = compareCycle(pearl, ref);
        if (d.hit) {
            out.diverged = true;
            out.cycle = now;
            out.description = d.what;
            return out;
        }
    }

    out.injectedPackets = pearl.stats().injectedPackets();
    out.deliveredPackets = pearl.stats().deliveredPackets();
    return out;
}

namespace {

/** One cycle's comparison of the two CMESH instances (the optimized
 *  one possibly stepping in parallel, the reference serial). */
Divergence
compareCmeshCycle(electrical::CmeshNetwork &opt,
                  electrical::CmeshNetwork &ref, bool check_invariants)
{
    Divergence d;

    expectEq(d, "cycle", opt.cycle(), ref.cycle());

    auto &od = opt.delivered();
    auto &rd = ref.delivered();
    expectEq(d, "deliveries this cycle", od.size(), rd.size());
    if (!d.hit) {
        for (std::size_t i = 0; i < od.size(); ++i)
            comparePacket(d, i, od[i], rd[i]);
    }
    od.clear();
    rd.clear();

    const sim::NetworkStats &os = opt.stats();
    const sim::NetworkStats &rs = ref.stats();
    expectEq(d, "injectedPackets", os.injectedPackets(),
             rs.injectedPackets());
    expectEq(d, "deliveredPackets", os.deliveredPackets(),
             rs.deliveredPackets());
    expectEq(d, "deliveredFlits", os.deliveredFlits(),
             rs.deliveredFlits());
    expectEq(d, "deliveredBits", os.deliveredBits(), rs.deliveredBits());
    expectEq(d, "cpuDeliveredPackets", os.cpuDeliveredPackets(),
             rs.cpuDeliveredPackets());
    expectEq(d, "gpuDeliveredPackets", os.gpuDeliveredPackets(),
             rs.gpuDeliveredPackets());
    expectBits(d, "avgLatency", os.avgLatency(), rs.avgLatency());
    expectBits(d, "dynamicEnergyJ", opt.dynamicEnergyJ(),
               ref.dynamicEnergyJ());
    expectEq(d, "flitsInFlight", opt.flitsInFlight(),
             ref.flitsInFlight());
    expectEq(d, "idle", opt.idle(), ref.idle());

    // Flit conservation on the optimized side: every flit the fabric
    // holds is in an input FIFO or a link register, nowhere else.
    if (check_invariants && !d.hit) {
        expectEq(d, "flit conservation (inFlight vs buffered)",
                 opt.flitsInFlight(), opt.countBufferedFlits());
    }
    return d;
}

} // namespace

DiffResult
runCmeshDiff(const CmeshDiffCase &c)
{
    electrical::CmeshNetwork opt(c.cfg);
    electrical::CmeshNetwork ref(c.cfg);

    sim::PoolLease lease = sim::ExecutionEngine::instance().lease(
        sim::resolveStepThreads(c.stepThreads));
    if (lease.pool())
        opt.setWorkerPool(lease.pool());

    TrafficGen traffic(c.trafficSeed, c.cpuRate, c.gpuRate,
                       opt.numNodes());

    DiffResult out;
    for (std::uint64_t i = 0; i < c.cycles; ++i) {
        const Cycle now = opt.cycle();
        for (const Packet &pkt : traffic.cycleTraffic(now)) {
            const bool opt_took = opt.inject(pkt);
            const bool ref_took = ref.inject(pkt);
            if (opt_took != ref_took) {
                std::ostringstream os;
                os << "injection acceptance for packet " << pkt.id
                   << " (src " << pkt.src << " dst " << pkt.dst
                   << "): optimized=" << opt_took
                   << " reference=" << ref_took;
                out.diverged = true;
                out.cycle = now;
                out.description = os.str();
                return out;
            }
        }

        opt.step();
        ref.step();

        Divergence d = compareCmeshCycle(opt, ref, c.checkInvariants);
        if (d.hit) {
            out.diverged = true;
            out.cycle = now;
            out.description = d.what;
            return out;
        }
    }

    out.injectedPackets = opt.stats().injectedPackets();
    out.deliveredPackets = opt.stats().deliveredPackets();
    return out;
}

} // namespace verify
} // namespace pearl
