/**
 * @file
 * Runtime invariant checker for the PEARL network (verification plane).
 *
 * Invariants installs as a core::StepAuditor and, after every step(),
 * asserts properties that must hold no matter what the optimized cycle
 * loop does internally:
 *
 *  - packet conservation: every accepted packet is in exactly one place
 *    — injected equals delivered + dropped + buffered + in-flight +
 *    backoff-queued + the un-ACKed source copies that no longer have a
 *    live in-flight instance (a reinjection creates one instance and
 *    consumes one queued loss, so retransmissions cancel out);
 *  - buffer bounds: every inject/rx FlitBuffer's occupied slots stay
 *    within [0, capacity] and bound the packet count;
 *  - transmit-channel legality: credit only accumulates on an active
 *    channel past its reservation, never reaches a whole flit, and the
 *    remaining-flit count matches the head packet;
 *  - wavelength-state legality: at a window boundary the laser state
 *    honours the fault-capped ceiling;
 *  - monotone accounting: energy integrals never decrease and the cycle
 *    counter strictly increases.
 *
 * A violation throws InvariantViolation.  Checks are meant for Debug
 * builds and PEARL_VERIFY=1 runs: runtimeChecksEnabled() defaults on
 * under !NDEBUG and off in Release, and metrics::runPearl consults it
 * before installing an auditor, so Release runs keep a bare null-test
 * hook in the hot path.
 */

#ifndef PEARL_VERIFY_INVARIANTS_HPP
#define PEARL_VERIFY_INVARIANTS_HPP

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "common/env.hpp"
#include "core/network.hpp"

namespace pearl {
namespace verify {

/** Thrown when a runtime invariant fails; message names the cycle. */
class InvariantViolation : public std::runtime_error
{
  public:
    explicit InvariantViolation(const std::string &what)
        : std::runtime_error(what)
    {}
};

/**
 * Pure conservation check over a counts snapshot; exposed separately so
 * tests can feed deliberately corrupted counts (the injected-bug drill)
 * without a live network.
 * @return the violation description, or nullopt when conserved.
 */
std::optional<std::string> checkConservation(const core::AuditCounts &c,
                                             bool faults_enabled);

/** True when runtime invariant checks should be installed: PEARL_VERIFY
 *  when set, else on in Debug builds and off in Release. */
inline bool
runtimeChecksEnabled()
{
#ifndef NDEBUG
    const bool fallback = true;
#else
    const bool fallback = false;
#endif
    return envBool("PEARL_VERIFY", fallback);
}

/** The runtime invariant checker (see file comment). */
class Invariants : public core::StepAuditor
{
  public:
    void afterStep(const core::PearlNetwork &net) override;

    /** Steps audited so far (tests assert the hook actually ran). */
    std::uint64_t stepsAudited() const { return steps_; }

  private:
    std::uint64_t steps_ = 0;
    bool seen_ = false;
    sim::Cycle prevCycle_ = 0;
    double prevLaserJ_ = 0.0;
    double prevTrimJ_ = 0.0;
    double prevDynJ_ = 0.0;
};

} // namespace verify
} // namespace pearl

#endif // PEARL_VERIFY_INVARIANTS_HPP
