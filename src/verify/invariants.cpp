#include "verify/invariants.hpp"

#include <sstream>

#include "sim/packet.hpp"

namespace pearl {
namespace verify {

namespace {

[[noreturn]] void
fail(sim::Cycle cycle, const std::string &what)
{
    std::ostringstream os;
    os << "invariant violated at cycle " << cycle << ": " << what;
    throw InvariantViolation(os.str());
}

} // namespace

std::optional<std::string>
checkConservation(const core::AuditCounts &c, bool faults_enabled)
{
    // Every in-flight instance that has not had its fault check yet
    // still owns an outstanding source copy; subtracting it leaves the
    // copies whose instance is already gone — reservation drops waiting
    // out their ACK timeout (corrupted arrivals are NACKed and requeued
    // immediately, so they never sit in limbo).
    std::uint64_t limbo = 0;
    if (faults_enabled) {
        if (c.outstanding < c.inFlightUnchecked) {
            std::ostringstream os;
            os << "outstanding ACK copies (" << c.outstanding
               << ") fewer than unchecked in-flight packets ("
               << c.inFlightUnchecked << ")";
            return os.str();
        }
        limbo = c.outstanding - c.inFlightUnchecked;
    }
    // Each accepted packet is, at all times, in exactly one place.
    // Retransmissions do not enter the ledger: a reinjection creates a
    // new instance but consumes one queued loss, so the two sides of
    // that exchange cancel and the balance stays pinned to `injected`.
    const std::uint64_t accounted = c.delivered + c.dropped + c.buffered +
                                    c.inFlight + c.retxQueued + limbo;
    if (c.injected != accounted) {
        std::ostringstream os;
        os << "packet conservation: injected(" << c.injected
           << ") != delivered(" << c.delivered << ") + dropped("
           << c.dropped << ") + buffered(" << c.buffered
           << ") + inFlight(" << c.inFlight << ") + retxQueued("
           << c.retxQueued << ") + limbo(" << limbo
           << ") = " << accounted;
        return os.str();
    }
    return std::nullopt;
}

void
Invariants::afterStep(const core::PearlNetwork &net)
{
    const sim::Cycle now = net.cycle();
    const core::PearlConfig &cfg = net.config();
    const bool faults = net.faults().enabled();

    // 1. Packet conservation across the whole fabric.
    if (auto violation = checkConservation(net.auditCounts(), faults))
        fail(now, *violation);

    // Per-group express-slot tally (grouped chips), rebuilt from the
    // channel snapshots and reconciled against the arbiter below.
    std::vector<int> expressHeld(
        cfg.grouped() ? static_cast<std::size_t>(cfg.numGroups()) : 0, 0);

    for (int r = 0; r < net.numNodes(); ++r) {
        const core::PearlRouter &router = net.router(r);

        // 2. Buffer bounds from the RingQueue capacities.
        for (const auto *pool :
             {&router.injectBuffers(), &router.rxBuffers()}) {
            for (auto type : {sim::CoreType::CPU, sim::CoreType::GPU}) {
                const sim::FlitBuffer &buf = pool->of(type);
                const int occupied = buf.occupiedSlots();
                if (occupied < 0 || occupied > buf.capacitySlots()) {
                    std::ostringstream os;
                    os << "router " << r << " buffer occupancy "
                       << occupied << " outside [0, "
                       << buf.capacitySlots() << "]";
                    fail(now, os.str());
                }
                if (buf.packetCount() >
                    static_cast<std::size_t>(occupied)) {
                    std::ostringstream os;
                    os << "router " << r << " holds "
                       << buf.packetCount() << " packets in " << occupied
                       << " occupied slots";
                    fail(now, os.str());
                }
            }
        }

        // 3. Transmit-channel legality: credit accumulates only on an
        //    active channel past its reservation and never reaches a
        //    whole flit (it would have been drained); the remaining
        //    flit count always refers to the head packet.
        for (auto type : {sim::CoreType::CPU, sim::CoreType::GPU}) {
            const auto tx = router.txAudit(type);
            const sim::FlitBuffer &buf = router.injectBuffers().of(type);
            if (!tx.active) {
                if (tx.creditBits != 0 || tx.flitsRemaining != 0) {
                    std::ostringstream os;
                    os << "router " << r << " idle tx channel carries "
                       << tx.creditBits << " credit bits / "
                       << tx.flitsRemaining << " flits";
                    fail(now, os.str());
                }
                if (tx.holdsExpressSlot)
                    fail(now, "idle tx channel holds an express slot");
                continue;
            }
            // 3b. Express legality: a held slot implies a grouped chip
            //     and an inter-group head packet; an inter-group head
            //     past acquisition always holds its slot.
            if (tx.holdsExpressSlot && !cfg.grouped())
                fail(now, "express slot held on an ungrouped chip");
            if (tx.holdsExpressSlot)
                ++expressHeld[static_cast<std::size_t>(cfg.groupOf(r))];
            const int res_bound = tx.holdsExpressSlot
                                      ? cfg.expressReservationCycles
                                      : cfg.reservationCycles;
            if (tx.resRemaining < 0 || tx.resRemaining > res_bound) {
                std::ostringstream os;
                os << "router " << r << " reservation countdown "
                   << tx.resRemaining << " outside [0, " << res_bound
                   << "]";
                fail(now, os.str());
            }
            if (tx.resRemaining > 0 && tx.creditBits != 0)
                fail(now, "credit accumulated during reservation");
            if (tx.creditBits < 0 || tx.creditBits >= sim::kFlitBits)
                fail(now, "credit bits outside [0, one flit)");
            if (buf.empty())
                fail(now, "active tx channel over an empty buffer");
            if (cfg.grouped() &&
                tx.holdsExpressSlot !=
                    cfg.interGroup(r, buf.front().dst)) {
                std::ostringstream os;
                os << "router " << r << " express slot held="
                   << tx.holdsExpressSlot
                   << " disagrees with head packet dst "
                   << buf.front().dst;
                fail(now, os.str());
            }
            if (tx.flitsRemaining < 1 ||
                tx.flitsRemaining > buf.front().numFlits()) {
                std::ostringstream os;
                os << "router " << r << " has " << tx.flitsRemaining
                   << " flits remaining of a "
                   << buf.front().numFlits() << "-flit head packet";
                fail(now, os.str());
            }
        }

        // 4. Wavelength-state legality under the fault-capped ceiling.
        const photonic::WlState state = router.laser().state();
        const int state_idx = photonic::indexOf(state);
        if (state_idx < 0 || state_idx >= photonic::kNumWlStates)
            fail(now, "laser state outside the WL enum");
        const std::uint64_t rw = cfg.reservationWindow;
        const bool boundary =
            rw > 0 && now > 0 &&
            now % rw == (static_cast<std::uint64_t>(
                             cfg.windowOffsetPerRouter) *
                         static_cast<std::uint64_t>(r)) %
                            rw;
        if (boundary) {
            const photonic::WlState cap = net.faults().wlCap(r);
            if (state_idx > photonic::indexOf(cap)) {
                std::ostringstream os;
                os << "router " << r << " laser state "
                   << photonic::toString(state)
                   << " above the fault cap " << photonic::toString(cap)
                   << " at a window boundary";
                fail(now, os.str());
            }
        }
    }

    // 4b. Express pools reconcile with the channel snapshots: the
    //     arbiter's per-group in-use count is exactly the number of
    //     channels holding a slot, and never exceeds the configured
    //     pool (caps may transiently sit below in-use after a fault —
    //     held slots are not revoked — but the pool size bounds both).
    if (cfg.grouped()) {
        const auto &arbiter = net.expressArbiter();
        for (int g = 0; g < cfg.numGroups(); ++g) {
            const int in_use = arbiter.inUse(g);
            if (in_use != expressHeld[static_cast<std::size_t>(g)]) {
                std::ostringstream os;
                os << "express group " << g << " arbiter in-use "
                   << in_use << " != " << expressHeld[
                       static_cast<std::size_t>(g)]
                   << " channels holding a slot";
                fail(now, os.str());
            }
            if (in_use < 0 || in_use > cfg.resExpressSlots) {
                std::ostringstream os;
                os << "express group " << g << " in-use " << in_use
                   << " outside [0, " << cfg.resExpressSlots << "]";
                fail(now, os.str());
            }
            if (arbiter.cap(g) < 1 ||
                arbiter.cap(g) > cfg.resExpressSlots) {
                std::ostringstream os;
                os << "express group " << g << " cap " << arbiter.cap(g)
                   << " outside [1, " << cfg.resExpressSlots << "]";
                fail(now, os.str());
            }
        }
    }

    // 5. Monotone accounting.
    const double laser = net.laserEnergyJ();
    const double trim = net.trimmingEnergyJ();
    const double dyn = net.dynamicEnergyJ();
    if (seen_) {
        if (now <= prevCycle_)
            fail(now, "cycle counter did not advance");
        if (laser < prevLaserJ_ || trim < prevTrimJ_ || dyn < prevDynJ_)
            fail(now, "an energy integral decreased");
    }
    seen_ = true;
    prevCycle_ = now;
    prevLaserJ_ = laser;
    prevTrimJ_ = trim;
    prevDynJ_ = dyn;
    ++steps_;
}

} // namespace verify
} // namespace pearl
