#include "verify/ref_network.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "core/router.hpp"

namespace pearl {
namespace verify {

using sim::CoreType;
using sim::Cycle;
using sim::Packet;

RefNetwork::RefNetwork(const core::PearlConfig &cfg,
                       const photonic::PowerModel &power,
                       const core::DbaConfig &dba,
                       core::PowerPolicy *policy)
    : cfg_(cfg),
      routerPower_(power.scaled(
          1.0 / static_cast<double>(cfg.numClusters +
                                    cfg.l3WaveguideGroup))),
      dba_(dba), policy_(policy)
{
    PEARL_ASSERT(policy_, "RefNetwork requires a power policy");
    PEARL_ASSERT(!cfg_.useThermalModel,
                 "the reference model excludes the thermal plane");
    l3Power_ = routerPower_.scaled(
        static_cast<double>(cfg_.l3WaveguideGroup));
    if (cfg_.faults.enabled) {
        PEARL_ASSERT(cfg_.ackTimeoutCycles >
                         2 * static_cast<std::uint64_t>(
                                 cfg_.linkLatencyCycles),
                     "ackTimeoutCycles must exceed the ACK round trip");
        faults_ = photonic::FaultInjector(cfg_.faults, cfg_.numNodes());
        nextSeq_.assign(static_cast<std::size_t>(cfg_.numNodes()), 0);
        outstanding_.resize(static_cast<std::size_t>(cfg_.numNodes()));
    }
    routers_.resize(static_cast<std::size_t>(cfg_.numNodes()));
    for (int r = 0; r < cfg_.numNodes(); ++r) {
        RefRouter &router = routers_[static_cast<std::size_t>(r)];
        const bool is_l3 = r == cfg_.l3Node;
        router.id = r;
        router.waveguides = is_l3 ? cfg_.l3WaveguideGroup : 1;
        router.injectCap[0] = cfg_.cpuInjectSlots;
        router.injectCap[1] = cfg_.gpuInjectSlots;
        router.rxCap[0] = cfg_.rxSlotsPerClass;
        router.rxCap[1] = cfg_.rxSlotsPerClass;
        router.laser.model = is_l3 ? &l3Power_ : &routerPower_;
        router.laser.turnOnCycles = cfg_.laserTurnOnCycles;
        router.laser.state = cfg_.initialState;
        router.telemetry.wavelengths =
            photonic::wavelengths(cfg_.initialState);
    }
    if (cfg_.grouped()) {
        expressUse_.assign(static_cast<std::size_t>(cfg_.numGroups()),
                           {{0, 0}});
        expressCap_.assign(static_cast<std::size_t>(cfg_.numGroups()),
                           cfg_.resExpressSlots);
    }
}

void
RefNetwork::RefLaser::requestState(photonic::WlState next, Cycle now)
{
    if (next == state)
        return;
    if (photonic::indexOf(next) > photonic::indexOf(state)) {
        stableAt = now + turnOnCycles;
        ++upSwitches;
    } else {
        ++downSwitches;
    }
    state = next;
}

void
RefNetwork::RefLaser::tick(double dt)
{
    energyJ += model->laserPowerW(state) * dt;
    ++stateCycles[photonic::indexOf(state)];
    ++cycles;
}

double
RefNetwork::RefLaser::residency(photonic::WlState s) const
{
    return cycles ? static_cast<double>(
                        stateCycles[photonic::indexOf(s)]) /
                        static_cast<double>(cycles)
                  : 0.0;
}

int
RefNetwork::occupiedSlots(const std::deque<Packet> &buf)
{
    int slots = 0;
    for (const Packet &pkt : buf)
        slots += pkt.numFlits();
    return slots;
}

double
RefNetwork::occupancy(const std::deque<Packet> &buf, int cap)
{
    return static_cast<double>(occupiedSlots(buf)) /
           static_cast<double>(cap);
}

bool
RefNetwork::pushPacket(std::deque<Packet> &buf, int cap,
                       const Packet &pkt)
{
    if (pkt.numFlits() > cap - occupiedSlots(buf))
        return false;
    buf.push_back(pkt);
    return true;
}

bool
RefNetwork::canInject(const Packet &pkt) const
{
    const RefRouter &router = routers_[static_cast<std::size_t>(pkt.src)];
    const int type = static_cast<int>(pkt.coreType());
    return pkt.numFlits() <=
           router.injectCap[type] - occupiedSlots(router.inject[type]);
}

bool
RefNetwork::inject(const Packet &pkt)
{
    RefRouter &router = routers_[static_cast<std::size_t>(pkt.src)];
    Packet copy = pkt;
    copy.cycleInjected = cycle_;
    const int type = static_cast<int>(copy.coreType());
    if (!pushPacket(router.inject[type], router.injectCap[type], copy))
        return false;
    router.telemetry.noteClass(copy.msgClass);
    ++router.telemetry.incomingFromCores;
    ++router.telemetry.packetsInjected;
    if (copy.request())
        ++router.telemetry.requestsSent;
    else
        ++router.telemetry.responsesSent;
    stats_.noteInjected(pkt);
    return true;
}

core::Allocation
RefNetwork::allocate(const RefRouter &router) const
{
    const double beta_cpu =
        occupancy(router.inject[0], router.injectCap[0]);
    const double beta_gpu =
        occupancy(router.inject[1], router.injectCap[1]);
    if (dba_.mode == core::DbaConfig::Mode::PaperLadder) {
        if (beta_gpu == 0.0 && beta_cpu > 0.0)
            return {1.00, 0.00};
        if (beta_cpu == 0.0 && beta_gpu > 0.0)
            return {0.00, 1.00};
        if (beta_gpu < dba_.gpuUpperBound)
            return {0.75, 0.25};
        if (beta_cpu < dba_.cpuUpperBound)
            return {0.25, 0.75};
        return {0.50, 0.50};
    }
    if (dba_.mode == core::DbaConfig::Mode::Proportional) {
        if (beta_cpu == 0.0 && beta_gpu == 0.0)
            return {0.5, 0.5};
        const double raw = beta_cpu / (beta_cpu + beta_gpu);
        const double step = dba_.stepFraction;
        double cpu = std::round(raw / step) * step;
        cpu = std::min(1.0, std::max(0.0, cpu));
        return {cpu, 1.0 - cpu};
    }
    return {0.5, 0.5};
}

int
RefNetwork::transmitClass(RefRouter &router, CoreType type, double share,
                          int capacity_bits, std::vector<Packet> &done)
{
    std::deque<Packet> &buf = router.inject[static_cast<int>(type)];
    RefTxChannel &ch = router.tx[static_cast<int>(type)];

    if (buf.empty()) {
        ch.creditBits = 0;
        ch.backToBack = false;
        return 0;
    }

    // Inter-group head: the naive express pool, updated inline.  Same
    // acquisition rule as core::ExpressArbiter (whose classCap we share
    // as a leaf function), same order: the caller walks routers
    // ascending, CPU before GPU.
    const auto tryAcquireExpress = [&](const Packet &head) {
        if (!cfg_.grouped() || !cfg_.interGroup(router.id, head.dst))
            return true; // not an express packet: nothing to win
        const auto g = static_cast<std::size_t>(cfg_.groupOf(router.id));
        const int ci = static_cast<int>(type);
        const int total = expressUse_[g][0] + expressUse_[g][1];
        bool granted = total < expressCap_[g];
        if (granted && dba_.mode != core::DbaConfig::Mode::Fcfs)
            granted = expressUse_[g][ci] <
                      core::ExpressArbiter::classCap(expressCap_[g],
                                                     type);
        if (granted) {
            ++expressUse_[g][ci];
            ch.holdsExpressSlot = true;
        }
        return granted;
    };

    if (!ch.active) {
        const bool express_head =
            cfg_.grouped() && cfg_.interGroup(router.id, buf.front().dst);
        if (!tryAcquireExpress(buf.front()))
            return 0;
        ch.resRemaining =
            ch.backToBack ? 0
                          : (express_head ? cfg_.expressReservationCycles
                                          : cfg_.reservationCycles);
        ch.active = true;
        ch.flitsRemaining = buf.front().numFlits();
        ch.creditBits = 0;
    }

    if (ch.resRemaining > 0) {
        --ch.resRemaining;
        return 0;
    }

    const long bits =
        std::lround(share * static_cast<double>(capacity_bits));
    ch.creditBits += bits;

    int packet_budget = cfg_.multiPacketTx ? router.waveguides : 1;

    int sent_bits = 0;
    while (true) {
        while (ch.creditBits >= sim::kFlitBits && ch.flitsRemaining > 0) {
            ch.creditBits -= sim::kFlitBits;
            --ch.flitsRemaining;
            sent_bits += sim::kFlitBits;
        }
        if (ch.flitsRemaining > 0)
            break; // out of credit mid-packet; remainder carries over
        done.push_back(buf.front());
        buf.pop_front();
        ch.active = false;
        ch.backToBack = true;
        if (ch.holdsExpressSlot) {
            const auto g =
                static_cast<std::size_t>(cfg_.groupOf(router.id));
            --expressUse_[g][static_cast<int>(type)];
            ch.holdsExpressSlot = false;
        }
        --packet_budget;
        if (packet_budget <= 0 || buf.empty() ||
            ch.creditBits < sim::kFlitBits) {
            ch.creditBits = 0; // credits never bank across packets
            break;
        }
        if (!tryAcquireExpress(buf.front())) {
            ch.creditBits = 0;
            break;
        }
        ch.active = true;
        ch.flitsRemaining = buf.front().numFlits();
    }
    return sent_bits;
}

int
RefNetwork::transmitCycle(RefRouter &router, std::vector<Packet> &done)
{
    if (!router.laser.stable(cycle_))
        return 0;

    const int capacity =
        photonic::bitsPerCycle(
            photonic::clampToCap(router.laser.state, router.cap)) *
        router.waveguides;

    int bits = 0;
    if (dba_.mode == core::DbaConfig::Mode::Fcfs) {
        CoreType target;
        if (router.tx[0].active) {
            target = CoreType::CPU;
        } else if (router.tx[1].active) {
            target = CoreType::GPU;
        } else {
            const auto &cpu_buf = router.inject[0];
            const auto &gpu_buf = router.inject[1];
            if (cpu_buf.empty() && gpu_buf.empty())
                return 0;
            if (cpu_buf.empty()) {
                target = CoreType::GPU;
            } else if (gpu_buf.empty()) {
                target = CoreType::CPU;
            } else {
                target = cpu_buf.front().cycleInjected <=
                                 gpu_buf.front().cycleInjected
                             ? CoreType::CPU
                             : CoreType::GPU;
            }
        }
        bits = transmitClass(router, target, 1.0, capacity, done);
        if (target == CoreType::CPU)
            router.telemetry.dbaCpuShareSum += 1.0;
        else
            router.telemetry.dbaGpuShareSum += 1.0;
        ++router.telemetry.dbaCycles;
    } else {
        const core::Allocation alloc = allocate(router);
        router.telemetry.dbaCpuShareSum += alloc.cpuShare;
        router.telemetry.dbaGpuShareSum += alloc.gpuShare;
        ++router.telemetry.dbaCycles;
        bits += transmitClass(router, CoreType::CPU, alloc.cpuShare,
                              capacity, done);
        bits += transmitClass(router, CoreType::GPU, alloc.gpuShare,
                              capacity, done);
    }
    if (bits > 0)
        ++router.telemetry.linkBusyCycles;
    return bits;
}

void
RefNetwork::ejectCycle(RefRouter &router)
{
    int budget = cfg_.ejectFlitsPerCycle;
    for (int i = 0; i < sim::kNumCoreTypes && budget > 0; ++i) {
        const int ci = (router.ejectRr + i) % sim::kNumCoreTypes;
        std::deque<Packet> &buf = router.rx[ci];
        int &progress = router.ejectProgress[ci];
        while (budget > 0 && !buf.empty()) {
            if (progress == 0)
                progress = buf.front().numFlits();
            const int take = std::min(budget, progress);
            progress -= take;
            budget -= take;
            if (progress == 0) {
                Packet pkt = buf.front();
                buf.pop_front();
                pkt.cycleDelivered = cycle_;
                ++router.telemetry.packetsToCore;
                delivered_.push_back(pkt);
            }
        }
    }
    router.ejectRr = (router.ejectRr + 1) % sim::kNumCoreTypes;
}

void
RefNetwork::trackTransmission(const Packet &pkt)
{
    outstanding_[static_cast<std::size_t>(pkt.src)][pkt.seq] =
        Outstanding{pkt, pkt.attempt};
    timeouts_.push(TimeoutEvent{cycle_ + cfg_.ackTimeoutCycles, pkt.src,
                                pkt.seq, pkt.attempt});
}

void
RefNetwork::armRetry(Outstanding &&entry, Cycle delay)
{
    if (static_cast<int>(entry.attempt) >= cfg_.retryLimit) {
        stats_.noteDropped(entry.pkt);
        ++routers_[static_cast<std::size_t>(entry.pkt.src)]
              .telemetry.packetsDropped;
        return;
    }
    const int shift = std::min<int>(entry.attempt, 20);
    const Cycle backoff =
        std::min(cfg_.retxBackoffBase << shift, cfg_.retxBackoffMax);
    Packet pkt = entry.pkt;
    ++pkt.attempt;
    retx_.push(PendingRetx{cycle_ + delay + backoff, pkt});
}

void
RefNetwork::stepFaultPlane()
{
    faults_.step(cycle_);

    while (!timeouts_.empty() && timeouts_.top().due <= cycle_) {
        const TimeoutEvent evt = timeouts_.top();
        timeouts_.pop();
        auto &src_outstanding =
            outstanding_[static_cast<std::size_t>(evt.src)];
        auto it = src_outstanding.find(evt.seq);
        if (it == src_outstanding.end() ||
            it->second.attempt != evt.attempt)
            continue;
        stats_.noteAckTimeout();
        Outstanding entry = std::move(it->second);
        src_outstanding.erase(it);
        armRetry(std::move(entry), 0);
    }

    std::vector<PendingRetx> blocked;
    while (!retx_.empty() && retx_.top().due <= cycle_) {
        PendingRetx p = retx_.top();
        retx_.pop();
        RefRouter &src = routers_[static_cast<std::size_t>(p.pkt.src)];
        Packet copy = p.pkt;
        copy.cycleInjected = cycle_;
        const int type = static_cast<int>(copy.coreType());
        if (pushPacket(src.inject[type], src.injectCap[type], copy)) {
            ++src.telemetry.retransmitsQueued;
            stats_.noteRetransmit();
        } else {
            p.due = cycle_ + 1;
            blocked.push_back(std::move(p));
        }
    }
    for (auto &p : blocked)
        retx_.push(std::move(p));
}

void
RefNetwork::step()
{
    // 0. Fault plane.
    if (faults_.enabled())
        stepFaultPlane();

    // 1. Arrivals (full rx buffers retry next cycle, in pop order).
    std::vector<InFlight> retries;
    while (!inFlight_.empty() && inFlight_.top().due <= cycle_) {
        InFlight f = inFlight_.top();
        inFlight_.pop();
        RefRouter &dst = routers_[static_cast<std::size_t>(f.pkt.dst)];
        if (faults_.enabled() && !f.faultChecked) {
            f.faultChecked = true;
            auto &src_outstanding =
                outstanding_[static_cast<std::size_t>(f.pkt.src)];
            auto it = src_outstanding.find(f.pkt.seq);
            // Thermal plane excluded: rings locked, zero trim gap.
            if (faults_.corruptsPacket(f.pkt.dst, f.pkt.sizeBits, 0.0,
                                       true)) {
                stats_.noteCorrupted(f.pkt);
                ++dst.telemetry.corruptedArrivals;
                if (it != src_outstanding.end()) {
                    Outstanding entry = std::move(it->second);
                    src_outstanding.erase(it);
                    armRetry(std::move(entry),
                             static_cast<Cycle>(cfg_.linkLatencyCycles));
                }
                continue;
            }
            if (it != src_outstanding.end())
                src_outstanding.erase(it);
        }
        const int type = static_cast<int>(f.pkt.coreType());
        if (pushPacket(dst.rx[type], dst.rxCap[type], f.pkt)) {
            dst.telemetry.noteClass(f.pkt.msgClass);
            ++dst.telemetry.incomingFromRouters;
            if (f.pkt.request())
                ++dst.telemetry.requestsReceived;
            else
                ++dst.telemetry.responsesReceived;
        } else {
            f.due = cycle_ + 1;
            retries.push_back(std::move(f));
        }
    }
    for (auto &f : retries)
        inFlight_.push(std::move(f));

    // 1b. Group-local fault caps (mirrors the optimized stage 1b).
    if (cfg_.grouped() && faults_.enabled()) {
        const int gs = cfg_.reservationGroupSize;
        for (int g = 0; g < cfg_.numGroups(); ++g) {
            int failed = 0;
            for (int r = g * gs; r < (g + 1) * gs; ++r)
                failed += faults_.failedBanks(r);
            expressCap_[static_cast<std::size_t>(g)] =
                std::max(1, cfg_.resExpressSlots - failed);
        }
    }

    // 2. Transmit.
    for (int r = 0; r < cfg_.numNodes(); ++r) {
        RefRouter &router = routers_[static_cast<std::size_t>(r)];
        if (faults_.enabled())
            router.cap = faults_.wlCap(r);
        std::vector<Packet> done;
        const int bits = transmitCycle(router, done);
        dynamicEnergyJ_ += static_cast<double>(bits) *
                           routerPower_.dynamicEnergyPerBitJ();
        for (Packet &pkt : done) {
            if (faults_.enabled()) {
                if (pkt.attempt == 0)
                    pkt.seq = nextSeq_[static_cast<std::size_t>(r)]++;
                trackTransmission(pkt);
                if (faults_.dropsReservation(r)) {
                    stats_.noteReservationDrop();
                    continue;
                }
            }
            inFlight_.push(InFlight{
                cycle_ + static_cast<Cycle>(cfg_.linkLatencyCycles),
                pkt});
        }
    }

    // 3. Ejection.
    for (auto &router : routers_) {
        const std::size_t before = delivered_.size();
        ejectCycle(router);
        for (std::size_t i = before; i < delivered_.size(); ++i)
            stats_.noteDelivered(delivered_[i]);
    }

    // 4. Occupancy telemetry and power integration; the trimming power
    //    is recomputed from the power model every cycle (the optimized
    //    loop hoists it into a table — same pure function, same bits).
    for (auto &router : routers_) {
        sim::RouterTelemetry &t = router.telemetry;
        t.cpuCoreBufOccupancy +=
            occupancy(router.inject[0], router.injectCap[0]);
        t.gpuCoreBufOccupancy +=
            occupancy(router.inject[1], router.injectCap[1]);
        t.otherRouterCpuBufOccupancy +=
            occupancy(router.rx[0], router.rxCap[0]);
        t.otherRouterGpuBufOccupancy +=
            occupancy(router.rx[1], router.rxCap[1]);
        router.betaWindowSum +=
            occupancy(router.inject[0], router.injectCap[0]) +
            occupancy(router.inject[1], router.injectCap[1]);
        ++router.windowCycles;
        router.laser.tick(cfg_.cycleSeconds);
        trimmingEnergyJ_ +=
            routerPower_.trimmingPowerW(
                router.laser.state, cfg_.txRings * router.waveguides,
                cfg_.rxRings) *
            cfg_.cycleSeconds;
    }
    if (cfg_.grouped()) {
        expressLaserEnergyJ_ += static_cast<double>(cfg_.numGroups()) *
                                cfg_.expressResLaserW *
                                cfg_.cycleSeconds;
    }

    // 5. Reservation-window boundaries, modulo recomputed per router.
    const std::uint64_t rw = cfg_.reservationWindow;
    for (int r = 0; r < cfg_.numNodes(); ++r) {
        if (rw == 0 || cycle_ == 0)
            continue;
        const std::uint64_t offset =
            (static_cast<std::uint64_t>(cfg_.windowOffsetPerRouter) *
             static_cast<std::uint64_t>(r)) %
            rw;
        if (cycle_ % rw != offset)
            continue;
        RefRouter &router = routers_[static_cast<std::size_t>(r)];

        core::WindowObservation obs;
        obs.router = r;
        obs.isL3Router = r == cfg_.l3Node;
        obs.currentState = router.laser.state;
        obs.betaTotalMean =
            router.windowCycles
                ? router.betaWindowSum /
                      static_cast<double>(router.windowCycles)
                : 0.0;
        obs.telemetry = &router.telemetry;
        obs.windowCycles = cfg_.reservationWindow;
        obs.windowEnd = cycle_;
        obs.wlCeiling = faults_.wlCap(r);
        core::PolicyFeedback feedback;
        obs.feedback = &feedback;

        const photonic::WlState next = photonic::clampToCap(
            policy_->nextState(obs), obs.wlCeiling);

        if (feedback.guarded) {
            if (feedback.enteredFallback) {
                ++router.telemetry.policyFallbackEntries;
                stats_.noteFallbackEntry();
            }
            if (feedback.exitedFallback) {
                ++router.telemetry.policyFallbackExits;
                stats_.noteFallbackExit();
            }
            if (feedback.fallbackActive) {
                ++router.telemetry.policyFallbackWindows;
                stats_.noteFallbackWindow();
            }
        }

        router.laser.requestState(next, cycle_);
        router.betaWindowSum = 0.0;
        router.windowCycles = 0;
        router.telemetry.reset();
        router.telemetry.wavelengths = photonic::wavelengths(next);
    }

    ++cycle_;
}

bool
RefNetwork::idle() const
{
    if (!inFlight_.empty() || !retx_.empty())
        return false;
    if (faults_.enabled()) {
        for (const auto &src_outstanding : outstanding_) {
            if (!src_outstanding.empty())
                return false;
        }
    }
    for (const auto &router : routers_) {
        for (int c = 0; c < sim::kNumCoreTypes; ++c) {
            if (!router.inject[c].empty() || !router.rx[c].empty())
                return false;
        }
    }
    return true;
}

photonic::WlState
RefNetwork::laserState(int node) const
{
    return routers_[static_cast<std::size_t>(node)].laser.state;
}

bool
RefNetwork::laserStable(int node, Cycle now) const
{
    return routers_[static_cast<std::size_t>(node)].laser.stable(now);
}

photonic::WlState
RefNetwork::wlCap(int node) const
{
    return routers_[static_cast<std::size_t>(node)].cap;
}

std::uint64_t
RefNetwork::laserCycles(int node) const
{
    return routers_[static_cast<std::size_t>(node)].laser.cycles;
}

std::uint64_t
RefNetwork::upSwitches(int node) const
{
    return routers_[static_cast<std::size_t>(node)].laser.upSwitches;
}

std::uint64_t
RefNetwork::downSwitches(int node) const
{
    return routers_[static_cast<std::size_t>(node)].laser.downSwitches;
}

int
RefNetwork::bufferSlots(int node, bool rx, CoreType type) const
{
    const RefRouter &router = routers_[static_cast<std::size_t>(node)];
    const int c = static_cast<int>(type);
    return occupiedSlots(rx ? router.rx[c] : router.inject[c]);
}

sim::RouterTelemetry &
RefNetwork::telemetryOf(int node)
{
    return routers_[static_cast<std::size_t>(node)].telemetry;
}

double
RefNetwork::laserEnergyJ() const
{
    double total = expressLaserEnergyJ_;
    for (const auto &router : routers_)
        total += router.laser.energyJ;
    return total;
}

int
RefNetwork::expressInUse(int group) const
{
    const auto &u = expressUse_[static_cast<std::size_t>(group)];
    return u[0] + u[1];
}

int
RefNetwork::expressCap(int group) const
{
    return expressCap_[static_cast<std::size_t>(group)];
}

bool
RefNetwork::txHoldsExpress(int node, CoreType type) const
{
    return routers_[static_cast<std::size_t>(node)]
        .tx[static_cast<int>(type)]
        .holdsExpressSlot;
}

double
RefNetwork::residency(photonic::WlState s) const
{
    double total = 0.0;
    for (const auto &router : routers_)
        total += router.laser.residency(s);
    return total / static_cast<double>(routers_.size());
}

} // namespace verify
} // namespace pearl
