/**
 * @file
 * Differential driver: optimized PearlNetwork vs naive RefNetwork.
 *
 * runDiff builds both simulators from the same config, offers them the
 * same seeded traffic, steps them in lockstep, and after every cycle
 * compares all externally visible state: injection acceptance,
 * delivered packets field by field, cumulative NetworkStats (latency
 * mean compared bit for bit), per-router laser state / switch counts /
 * fault caps / buffer occupancies, idleness, and the three energy
 * integrals compared bit for bit.  The optimized side also carries the
 * runtime invariant checker, so a conservation or legality violation
 * surfaces through the same DiffResult as a divergence.
 */

#ifndef PEARL_VERIFY_DIFF_HPP
#define PEARL_VERIFY_DIFF_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/arch_config.hpp"
#include "core/dba.hpp"
#include "core/power_policy.hpp"
#include "electrical/cmesh.hpp"
#include "sim/packet.hpp"

namespace pearl {
namespace verify {

/**
 * Deterministic open-loop traffic source shared by both simulators.
 * Each cycle every router flips a weighted coin per core type; accepted
 * flips become single packets to a uniformly random other node, split
 * evenly between 1-flit requests and 5-flit responses.
 */
class TrafficGen
{
  public:
    TrafficGen(std::uint64_t seed, double cpu_rate, double gpu_rate,
               int num_nodes)
        : rng_(seed), cpuRate_(cpu_rate), gpuRate_(gpu_rate),
          numNodes_(num_nodes)
    {}

    /** Injection attempts for one cycle (may be empty). */
    std::vector<sim::Packet> cycleTraffic(sim::Cycle now);

  private:
    Rng rng_;
    double cpuRate_;
    double gpuRate_;
    int numNodes_;
    std::uint64_t nextId_ = 1;
};

/** One differential run: a config, a traffic pattern, and a policy
 *  factory invoked once per simulator so each side owns stateful
 *  policies (guardrails) independently. */
struct DiffCase
{
    core::PearlConfig cfg;
    core::DbaConfig dba;
    std::uint64_t cycles = 500;
    std::uint64_t trafficSeed = 1;
    double cpuRate = 0.05;
    double gpuRate = 0.05;
    std::function<std::unique_ptr<core::PowerPolicy>()> makePolicy;
    /** Install the runtime invariant checker on the optimized side. */
    bool checkInvariants = true;
    /** Worker lanes for the optimized side's parallel stepping: 0
     *  resolves the shared PEARL_THREADS budget (then the deprecated
     *  PEARL_STEP_THREADS; default 1 = serial); a nonzero value
     *  overrides.  The reference side always steps serially, so the
     *  lockstep comparison proves the parallel path bit-exact. */
    unsigned stepThreads = 0;
    /** Force dynamic shard rebalancing on the optimized side (only
     *  meaningful with > 1 lanes), so the diff also certifies that
     *  re-packed shard boundaries leave every byte unchanged. */
    bool rebalance = false;
};

/** Outcome of a differential run. */
struct DiffResult
{
    bool diverged = false;
    sim::Cycle cycle = 0;      //!< first divergent cycle when diverged
    std::string description;   //!< what differed, both values
    std::uint64_t injectedPackets = 0;
    std::uint64_t deliveredPackets = 0;
    bool ok() const { return !diverged; }
};

/** Run the two simulators in lockstep (see file comment). */
DiffResult runDiff(const DiffCase &c);

/**
 * Differential case for the electrical CMESH baseline: the optimized
 * side steps in parallel (stepThreads lanes leased from the execution
 * engine), the reference side is a second CmeshNetwork stepping
 * serially.  Lockstep comparison covers delivered packets field by
 * field, cumulative stats (latency mean bit for bit), the dynamic
 * energy integral bit for bit, idleness, and the flit-conservation
 * invariant (flitsInFlight == recounted buffered flits).
 */
struct CmeshDiffCase
{
    electrical::CmeshConfig cfg;
    std::uint64_t cycles = 500;
    std::uint64_t trafficSeed = 1;
    double cpuRate = 0.05;
    double gpuRate = 0.05;
    /** Lanes for the optimized side; same resolution as DiffCase. */
    unsigned stepThreads = 0;
    /** Check flit conservation on the optimized side every cycle. */
    bool checkInvariants = true;
};

/** Run the parallel-vs-serial CMESH lockstep (see CmeshDiffCase). */
DiffResult runCmeshDiff(const CmeshDiffCase &c);

} // namespace verify
} // namespace pearl

#endif // PEARL_VERIFY_DIFF_HPP
