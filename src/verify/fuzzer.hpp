/**
 * @file
 * Deterministic config/trace fuzzer for the verification plane.
 *
 * generateCase(base_seed, index) expands a SplitMix64-derived seed into
 * a randomized-but-validate()-passing FuzzCase: a small PEARL config
 * (2-4 clusters), a policy (static/reactive/ml/guarded/random), a DBA
 * mode, an optional fault schedule, and an open-loop traffic pattern.
 * Each case runs through the differential driver (reference simulator
 * vs optimized simulator, invariants installed); a failing case is
 * shrunk with greedy passes to a minimal reproducer and written to disk
 * as key=value lines that parseReproducer can load back.
 *
 * Everything is derived from the case seed, so a reported case replays
 * bit-identically from its reproducer file or from (base_seed, index).
 */

#ifndef PEARL_VERIFY_FUZZER_HPP
#define PEARL_VERIFY_FUZZER_HPP

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "ml/ridge.hpp"
#include "verify/diff.hpp"

namespace pearl {
namespace verify {

/** Wavelength policy a fuzz case drives the routers with. */
enum class PolicyKind : int
{
    Static = 0,
    Reactive = 1,
    Ml = 2,
    Guarded = 3,
    Random = 4
};

constexpr int kNumPolicyKinds = 5;

/** A flat, serialisable description of one fuzz case.  Every field is a
 *  plain scalar so the reproducer file round-trips exactly. */
struct FuzzCase
{
    std::uint64_t seed = 0; //!< case identity; derives all sub-seeds

    // Topology and buffering.
    int numClusters = 2;
    int l3WaveguideGroup = 1;
    /** Grouped express plane: 0 keeps the single legacy reservation
     *  domain; a proper divisor of numClusters splits the chip into
     *  waveguide groups with slot-arbitrated inter-group traffic. */
    int reservationGroupSize = 0;
    int resExpressSlots = 2;
    int expressReservationCycles = 3;
    /** Parallel per-class serializers on multi-waveguide channels (the
     *  scale-out hub drain); off is the legacy one-packet-per-cycle
     *  serialisation. */
    bool multiPacketTx = false;
    int cpuInjectSlots = 8;
    int gpuInjectSlots = 8;
    int rxSlotsPerClass = 8;

    // Link timing.
    int reservationCycles = 2;
    int linkLatencyCycles = 2;
    int ejectFlitsPerCycle = 4;

    // Power scaling.
    std::uint64_t reservationWindow = 100;
    int windowOffsetPerRouter = 10;
    std::uint64_t laserTurnOnCycles = 4;
    int initialState = 4; //!< photonic::indexOf of the initial WlState

    int policy = static_cast<int>(PolicyKind::Reactive);
    int dbaMode = 0; //!< core::DbaConfig::Mode

    // Fault plane.
    bool faultsEnabled = false;
    double bankMtbfCycles = 0.0;
    double bankMttrCycles = 500.0;
    double baseBer = 0.0;
    double reservationDropRate = 0.0;
    std::uint64_t faultSeed = 1;
    std::uint64_t ackTimeoutCycles = 64;
    int retryLimit = 4;
    std::uint64_t retxBackoffBase = 8;
    std::uint64_t retxBackoffMax = 64;

    // Traffic.
    std::uint64_t cycles = 600;
    double cpuRate = 0.05;
    double gpuRate = 0.05;
    std::uint64_t trafficSeed = 1;
};

/** Deterministically expand (base_seed, index) into a case that passes
 *  core::validate on both the PearlConfig and the DbaConfig. */
FuzzCase generateCase(std::uint64_t base_seed, std::uint64_t index);

core::PearlConfig toPearlConfig(const FuzzCase &c);
core::DbaConfig toDbaConfig(const FuzzCase &c);

/** Full differential-run description, including the policy factory. */
DiffCase toDiffCase(const FuzzCase &c);

/** The shared deterministic ridge model behind Ml/Guarded fuzz cases
 *  (fitted once on a seeded synthetic dataset). */
const ml::RidgeRegression &fuzzModel();

/** key=value serialisation of a case (one field per line). */
std::string describeCase(const FuzzCase &c);

/** Write a shrunk case plus the failure description to `path`. */
void writeReproducer(const FuzzCase &c, const std::string &why,
                     const std::string &path);

/** Load a case back from reproducer text.  @return false on any
 *  missing/unparseable field. */
bool parseReproducer(std::istream &is, FuzzCase &out);

/**
 * Greedy shrinking: repeatedly tries simplifications (halve the cycle
 * budget, drop fault features, silence traffic classes, shrink the
 * topology, simplify the policy) and keeps each one while the case
 * still fails, iterating to a fixpoint.
 */
FuzzCase
shrinkCase(const FuzzCase &failing,
           const std::function<bool(const FuzzCase &)> &still_fails);

/** Fuzz campaign parameters. */
struct FuzzOptions
{
    std::uint64_t baseSeed = 0xF0CC;
    std::uint64_t maxCases = 200;
    /** Wall-clock budget in seconds; 0 means unlimited. */
    double maxSeconds = 0.0;
    /** When non-empty, a failing case's minimal reproducer lands here. */
    std::string reproducerPath;
};

/** Outcome of a fuzz campaign. */
struct FuzzReport
{
    std::uint64_t casesRun = 0;
    bool failed = false;
    FuzzCase minimal;        //!< shrunk reproducer when failed
    std::string description; //!< first failure's divergence message
};

/** Run up to maxCases differential runs within the time budget,
 *  shrinking and persisting the first failure. */
FuzzReport runFuzz(const FuzzOptions &opts);

} // namespace verify
} // namespace pearl

#endif // PEARL_VERIFY_FUZZER_HPP
