/**
 * @file
 * Parallel sweep engine with deterministic replay and fault tolerance.
 *
 * Every figure/table bench and example runs a (configuration x
 * benchmark-pair) grid of independent `metrics::runExperiment`-style
 * simulations.  `SweepRunner` executes such a grid on a pool of worker
 * threads while guaranteeing that the results are *bit-identical* to a
 * serial run:
 *
 *  - each job's RNG stream is derived from (base seed, job index) with
 *    `deriveSeed` — never from shared global state or scheduling order;
 *  - results are returned in submission order regardless of completion
 *    order;
 *  - per-run state (network, system, policy) is constructed inside the
 *    worker, so jobs share nothing mutable.
 *
 * Thread budget: an explicit `SweepOptions::threads` wins, else the
 * shared `PEARL_THREADS` budget, else the deprecated
 * `PEARL_SWEEP_THREADS`, else `hardware_concurrency()` (see
 * `sim::resolveThreadBudget`); `1` forces the serial path (no worker
 * threads are spawned at all).  Under the shared budget the runner
 * leases hierarchically from `sim::ExecutionEngine`: C threads over N
 * jobs become W = min(C, N) job workers stepping floor(C / W) lanes
 * each, with every lane pool leased on the calling thread in
 * submission order — the lease plan is a function of the grid shape,
 * never of timing, so sweep results stay byte-identical to serial at
 * any core count.
 *
 * Fault tolerance (DESIGN.md "Resilience"):
 *
 *  - every spec is *validated* before it runs; a malformed config
 *    becomes a structured per-job failure (ErrorCode::InvalidConfig)
 *    with an actionable message, never UB or an abort;
 *  - a throwing job is captured as a structured failure in its result
 *    slot; `cancelOnError = false` lets the rest of the grid finish;
 *  - `retryLimit` re-runs a failed job up to N more times with the
 *    *identical* derived seed (deterministic replay), so a transient
 *    host-level failure — an OOM kill of one worker, a flaky filesystem
 *    under the trace sink — does not cost the sweep.  Validation
 *    failures are deterministic and are never retried;
 *  - `journalPath` streams every completed job's RunMetrics row to an
 *    append-only journal (flushed per job, so a crash loses at most the
 *    in-flight jobs), and `resume = true` restores finished jobs from
 *    that journal instead of re-running them.  Restored metrics are
 *    byte-identical to the original run's (the journal stores the
 *    canonical CSV row, whose max_digits10 doubles round-trip exactly).
 */

#ifndef PEARL_METRICS_SWEEP_HPP
#define PEARL_METRICS_SWEEP_HPP

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "electrical/cmesh.hpp"
#include "metrics/experiment.hpp"
#include "obs/trace.hpp"

namespace pearl {
namespace metrics {

/**
 * One runnable simulation: config + pair + seed + cycle counts (inside
 * `options`) + observability sinks.  This is the single run descriptor
 * of the `metrics::Runner` facade and one cell of a sweep grid.
 */
struct RunSpec
{
    /** Which fabric the descriptor fields drive (ignored if `custom`
     *  is set). */
    enum class Fabric { Pearl, Cmesh };

    std::string configName;           //!< stamped into RunMetrics
    std::string label;                //!< overrides pairLabel if set
    traffic::BenchmarkPair pair;
    RunOptions options;               //!< seed is replaced per job
    Fabric fabric = Fabric::Pearl;

    core::PearlConfig pearl;
    core::DbaConfig dba;
    /** Builds this job's private policy instance.  Called from a worker
     *  thread, so the factory must be safe to invoke concurrently with
     *  the other jobs' factories (capture only immutable state). */
    std::function<std::unique_ptr<core::PowerPolicy>()> makePolicy;

    electrical::CmeshConfig cmesh;

    /**
     * Custom runner: replaces the descriptor path entirely.  Receives
     * the spec and its effective seed and returns the metrics.  Throwing
     * marks the job failed (and cancels the sweep when
     * `SweepOptions::cancelOnError` is set).  Custom runs manage their
     * own observability sinks; the sweep engine only auto-attaches
     * tracers on the descriptor path.
     */
    std::function<RunMetrics(const RunSpec &, std::uint64_t seed)> custom;

    /**
     * Fixed seed for this job instead of the derived (baseSeed, index)
     * stream — for grids where several cells must see identical traffic
     * (e.g. comparing policies under the same fault realisation).
     */
    std::optional<std::uint64_t> explicitSeed;
};

/** Sweep-wide knobs. */
struct SweepOptions
{
    /** Worker threads.  Nonzero pins the count; 0 — the default —
     *  resolves the shared PEARL_THREADS budget, then the deprecated
     *  PEARL_SWEEP_THREADS, then hardware_concurrency(). */
    unsigned threads = 0;
    /** Base of the per-job seed derivation. */
    std::uint64_t baseSeed = 100;
    /** Skip jobs that have not started once any job fails. */
    bool cancelOnError = true;
    /**
     * Extra attempts for a failed job, each with the identical
     * effective seed (deterministic replay).  Validation failures are
     * never retried.  The PEARL_SWEEP_RETRY environment variable sets
     * this through fromEnv().
     */
    int retryLimit = 0;
    /**
     * Crash-safe checkpointing: when non-empty, every completed job's
     * canonical RunMetrics CSV row is appended (and flushed) to this
     * file.  PEARL_SWEEP_JOURNAL sets it through fromEnv().
     */
    std::string journalPath;
    /**
     * Resume from an existing journal at `journalPath`: jobs whose
     * (index, config, pair, seed) row is present are restored without
     * re-running — the final metrics (and any CSV written from them)
     * are byte-identical to an uninterrupted run.  PEARL_SWEEP_RESUME
     * sets it through fromEnv().
     */
    bool resume = false;
    /**
     * Observability plane: when `trace.enabled`, every descriptor-path
     * job gets its own Tracer writing to `jobTracePath(trace, i, ...)`
     * — one file per job, so trace bytes are independent of the thread
     * count.  Disabled (the default) costs nothing.
     */
    obs::TraceOptions trace;

    /**
     * Defaults + the PEARL_SWEEP_RETRY / PEARL_SWEEP_JOURNAL /
     * PEARL_SWEEP_RESUME / PEARL_TRACE* environment knobs (strict
     * warn-and-fallback parsing).  Thread count is resolved separately
     * (resolveThreads), preserving existing precedence.
     */
    static SweepOptions fromEnv();
};

/** Outcome of one job. */
struct SweepJobResult
{
    RunMetrics metrics;
    std::uint64_t seed = 0;     //!< effective seed the job ran with
    double wallSeconds = 0.0;
    PhaseTimings phases;        //!< build/warmup/run/collect split
    bool ok = false;
    bool skipped = false;       //!< cancelled before it started
    bool resumed = false;       //!< restored from the journal, not run
    int attempts = 0;           //!< executions performed (retries incl.)
    ErrorCode errorCode = ErrorCode::None; //!< failure class when !ok
    std::string error;          //!< failure reason when !ok
};

/** Aggregate timing of a sweep (for the bench summary footer). */
struct SweepSummary
{
    std::size_t jobs = 0;
    std::size_t failed = 0;
    std::size_t skipped = 0;
    std::size_t resumed = 0;   //!< jobs restored from the journal
    std::size_t retries = 0;   //!< extra attempts across all jobs
    unsigned threads = 1;
    double wallSeconds = 0.0;          //!< whole-sweep wall time
    double aggregateJobSeconds = 0.0;  //!< sum of per-job wall times
    /** Sum of the per-job phase splits (observability plane). */
    PhaseTimings phaseSeconds;

    /** Aggregate-to-wall ratio: the parallel speedup actually achieved. */
    double
    speedup() const
    {
        return wallSeconds > 0.0 ? aggregateJobSeconds / wallSeconds : 1.0;
    }
};

/** Everything a sweep produced, in submission order. */
struct SweepResult
{
    std::vector<SweepJobResult> jobs;
    SweepSummary summary;

    bool
    allOk() const
    {
        for (const auto &j : jobs) {
            if (!j.ok)
                return false;
        }
        return true;
    }

    /** First failed (not merely skipped) job, or nullptr. */
    const SweepJobResult *
    firstError() const
    {
        for (const auto &j : jobs) {
            if (!j.ok && !j.skipped)
                return &j;
        }
        return nullptr;
    }

    /** Metrics of every job, in submission order.  @throws
     *  std::runtime_error if any job failed. */
    std::vector<RunMetrics> metricsOrThrow() const;
};

/**
 * Validate a run descriptor before any simulation state is built: the
 * run options, the fabric-specific network config (PearlConfig + DBA,
 * or CmeshConfig), the cache hierarchy and the policy factory.  Custom
 * jobs validate only the shared options — the custom callable owns the
 * rest.  Returns an actionable message naming the offending field.
 */
Validation validate(const RunSpec &spec);

/**
 * Execute one spec's simulation (descriptor or custom path) with the
 * given effective seed.  The descriptor path validates the spec first
 * (throwing ConfigError with the validation message) and honours the
 * spec's RunOptions sinks (tracer/registry/phases); this is the single
 * run engine beneath both SweepRunner and the metrics::Runner facade.
 */
RunMetrics executeSpec(const RunSpec &spec, std::uint64_t seed);

/** Thread-pool executor for sweep grids. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {}) : opts_(opts) {}

    /** Run all jobs; results come back in submission order. */
    SweepResult run(const std::vector<RunSpec> &jobs) const;

    /**
     * Effective job-worker budget: `requested` if nonzero, else the
     * shared PEARL_THREADS budget, else the deprecated
     * PEARL_SWEEP_THREADS (warns once), else hardware_concurrency().
     * One precedence rule for every tier — see
     * sim::resolveThreadBudget().
     */
    static unsigned resolveThreads(unsigned requested);

    const SweepOptions &options() const { return opts_; }

  private:
    SweepOptions opts_;
};

} // namespace metrics
} // namespace pearl

#endif // PEARL_METRICS_SWEEP_HPP
