#include "metrics/experiment.hpp"

#include "common/log.hpp"
#include "core/network.hpp"
#include "photonic/power_model.hpp"

namespace pearl {
namespace metrics {

using sim::Cycle;

namespace {

/** Counter snapshot for warmup exclusion. */
struct Snapshot
{
    std::uint64_t packets = 0;
    std::uint64_t flits = 0;
    std::uint64_t bits = 0;
    std::uint64_t cpuPackets = 0;
    std::uint64_t gpuPackets = 0;
    double energyJ = 0.0;
    double laserJ = 0.0;
    std::uint64_t corrupted = 0;
    std::uint64_t resDrops = 0;
    std::uint64_t retransmitted = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t dropped = 0;
    std::uint64_t unlockedCycles = 0;

    static Snapshot
    of(const sim::NetworkStats &s, double energy, double laser)
    {
        Snapshot snap;
        snap.packets = s.deliveredPackets();
        snap.flits = s.deliveredFlits();
        snap.bits = s.deliveredBits();
        snap.cpuPackets = s.cpuDeliveredPackets();
        snap.gpuPackets = s.gpuDeliveredPackets();
        snap.energyJ = energy;
        snap.laserJ = laser;
        snap.corrupted = s.corruptedPackets();
        snap.resDrops = s.reservationDrops();
        snap.retransmitted = s.retransmittedPackets();
        snap.timeouts = s.ackTimeouts();
        snap.dropped = s.droppedPackets();
        snap.unlockedCycles = s.thermalUnlockedCycles();
        return snap;
    }
};

void
fillCommon(RunMetrics &m, const sim::NetworkStats &stats,
           const Snapshot &warm, Cycle measure_cycles,
           double cycle_seconds, double total_energy)
{
    m.cycles = measure_cycles;
    m.deliveredPackets = stats.deliveredPackets() - warm.packets;
    m.deliveredFlits = stats.deliveredFlits() - warm.flits;
    m.deliveredBits = stats.deliveredBits() - warm.bits;
    m.cpuPackets = stats.cpuDeliveredPackets() - warm.cpuPackets;
    m.gpuPackets = stats.gpuDeliveredPackets() - warm.gpuPackets;
    m.throughputFlitsPerCycle =
        measure_cycles ? static_cast<double>(m.deliveredFlits) /
                             static_cast<double>(measure_cycles)
                       : 0.0;
    m.throughputGbps = measure_cycles
                           ? static_cast<double>(m.deliveredBits) /
                                 (measure_cycles * cycle_seconds) * 1e-9
                           : 0.0;
    m.avgLatencyCycles = stats.avgLatency();
    m.cpuLatencyCycles = stats.avgLatency(sim::CoreType::CPU);
    m.gpuLatencyCycles = stats.avgLatency(sim::CoreType::GPU);
    m.totalEnergyJ = total_energy - warm.energyJ;
    m.energyPerBitPj =
        m.deliveredBits
            ? m.totalEnergyJ / static_cast<double>(m.deliveredBits) * 1e12
            : 0.0;
    m.corruptedPackets = stats.corruptedPackets() - warm.corrupted;
    m.reservationDrops = stats.reservationDrops() - warm.resDrops;
    m.retransmittedPackets =
        stats.retransmittedPackets() - warm.retransmitted;
    m.ackTimeouts = stats.ackTimeouts() - warm.timeouts;
    m.droppedPackets = stats.droppedPackets() - warm.dropped;
    m.thermalUnlockedCycles =
        stats.thermalUnlockedCycles() - warm.unlockedCycles;
}

} // namespace

RunMetrics
runPearl(const traffic::BenchmarkPair &pair,
         const core::PearlConfig &net_cfg, const core::DbaConfig &dba,
         core::PowerPolicy &policy, const RunOptions &opts,
         const std::string &config_name)
{
    const photonic::PowerModel power;
    core::PearlNetwork net(net_cfg, power, dba, &policy);

    core::SystemConfig sys = opts.system;
    sys.seed = opts.seed;
    core::HeteroSystem system(
        net, pair, sys,
        [&net](int node) { return &net.telemetryOf(node); });

    system.run(opts.warmupCycles);
    const Snapshot warm =
        Snapshot::of(net.stats(), net.totalEnergyJ(), net.laserEnergyJ());

    system.run(opts.measureCycles);

    RunMetrics m;
    m.configName = config_name;
    m.pairLabel = pair.label();
    fillCommon(m, net.stats(), warm, opts.measureCycles,
               net_cfg.cycleSeconds, net.totalEnergyJ());
    m.laserPowerW =
        (net.laserEnergyJ() - warm.laserJ) /
        (static_cast<double>(opts.measureCycles) * net_cfg.cycleSeconds);
    for (int s = 0; s < photonic::kNumWlStates; ++s) {
        m.residency[static_cast<std::size_t>(s)] =
            net.residency(photonic::stateFromIndex(s));
    }
    return m;
}

RunMetrics
runCmesh(const traffic::BenchmarkPair &pair,
         const electrical::CmeshConfig &net_cfg, const RunOptions &opts,
         const std::string &config_name)
{
    electrical::CmeshNetwork net(net_cfg);

    core::SystemConfig sys = opts.system;
    sys.seed = opts.seed;
    core::HeteroSystem system(net, pair, sys);

    const double dt = sys.arch.networkCycleSeconds();
    system.run(opts.warmupCycles);
    const Snapshot warm =
        Snapshot::of(net.stats(), net.totalEnergyJ(dt), 0.0);

    system.run(opts.measureCycles);

    RunMetrics m;
    m.configName = config_name;
    m.pairLabel = pair.label();
    fillCommon(m, net.stats(), warm, opts.measureCycles, dt,
               net.totalEnergyJ(dt));
    return m;
}

RunMetrics
average(const std::vector<RunMetrics> &runs, const std::string &label)
{
    PEARL_ASSERT(!runs.empty());
    RunMetrics avg;
    avg.configName = runs.front().configName;
    avg.pairLabel = label;
    const double n = static_cast<double>(runs.size());
    for (const RunMetrics &r : runs) {
        avg.cycles += r.cycles;
        avg.deliveredPackets += r.deliveredPackets;
        avg.deliveredFlits += r.deliveredFlits;
        avg.deliveredBits += r.deliveredBits;
        avg.cpuPackets += r.cpuPackets;
        avg.gpuPackets += r.gpuPackets;
        avg.throughputFlitsPerCycle += r.throughputFlitsPerCycle / n;
        avg.throughputGbps += r.throughputGbps / n;
        avg.avgLatencyCycles += r.avgLatencyCycles / n;
        avg.cpuLatencyCycles += r.cpuLatencyCycles / n;
        avg.gpuLatencyCycles += r.gpuLatencyCycles / n;
        avg.totalEnergyJ += r.totalEnergyJ;
        avg.energyPerBitPj += r.energyPerBitPj / n;
        avg.laserPowerW += r.laserPowerW / n;
        avg.corruptedPackets += r.corruptedPackets;
        avg.reservationDrops += r.reservationDrops;
        avg.retransmittedPackets += r.retransmittedPackets;
        avg.ackTimeouts += r.ackTimeouts;
        avg.droppedPackets += r.droppedPackets;
        avg.thermalUnlockedCycles += r.thermalUnlockedCycles;
        for (std::size_t s = 0; s < avg.residency.size(); ++s)
            avg.residency[s] += r.residency[s] / n;
    }
    return avg;
}

} // namespace metrics
} // namespace pearl
