#include "metrics/experiment.hpp"

#include <chrono>
#include <memory>

#include "common/log.hpp"
#include "core/network.hpp"
#include "photonic/power_model.hpp"
#include "sim/worker_pool.hpp"
#include "verify/invariants.hpp"

namespace pearl {
namespace metrics {

using sim::Cycle;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Deterministic run-metadata event ("sweep" category, run track). */
void
traceRunStart(const RunOptions &opts, const std::string &config_name,
              const std::string &pair_label)
{
    obs::TraceEvent e;
    e.cat = obs::Category::Sweep;
    e.name = "run";
    e.ts = 0;
    e.sarg("config", config_name).sarg("pair", pair_label);
    e.arg("seed", static_cast<double>(opts.seed))
        .arg("warmup_cycles", static_cast<double>(opts.warmupCycles))
        .arg("measure_cycles", static_cast<double>(opts.measureCycles));
    opts.tracer->record(std::move(e));
}

/**
 * Phase-timing events on the run track (tid 0).  Timeline positions
 * are cycle-based and deterministic; only the "seconds" arguments carry
 * (nondeterministic) wall time — tests filter the "sweep" category
 * before byte-comparing traces.
 */
void
tracePhases(const RunOptions &opts, const PhaseTimings &t)
{
    const std::uint64_t warmup = opts.warmupCycles;
    const std::uint64_t measure = opts.measureCycles;
    obs::TraceEvent build;
    build.cat = obs::Category::Sweep;
    build.name = "phase:build";
    build.ts = 0;
    build.arg("seconds", t.buildSeconds);
    opts.tracer->record(std::move(build));

    obs::TraceEvent warm;
    warm.cat = obs::Category::Sweep;
    warm.name = "phase:warmup";
    warm.phase = 'X';
    warm.ts = 0;
    warm.dur = warmup;
    warm.arg("seconds", t.warmupSeconds);
    opts.tracer->record(std::move(warm));

    obs::TraceEvent run;
    run.cat = obs::Category::Sweep;
    run.name = "phase:run";
    run.phase = 'X';
    run.ts = warmup;
    run.dur = measure;
    run.arg("seconds", t.runSeconds);
    opts.tracer->record(std::move(run));

    obs::TraceEvent collect;
    collect.cat = obs::Category::Sweep;
    collect.name = "phase:collect";
    collect.ts = warmup + measure;
    collect.arg("seconds", t.collectSeconds);
    opts.tracer->record(std::move(collect));
}

/**
 * End-of-run fault/resilience roll-up ("fault" category).  Emitted on
 * every traced run — healthy runs report zeros — so a trace always
 * carries all four event categories.
 */
void
traceFaultSummary(const RunOptions &opts, const sim::NetworkStats &stats,
                  std::uint64_t bank_failures,
                  std::uint64_t bank_repairs)
{
    obs::TraceEvent e;
    e.cat = obs::Category::Fault;
    e.name = "fault_summary";
    e.ts = static_cast<std::uint64_t>(opts.warmupCycles) +
           static_cast<std::uint64_t>(opts.measureCycles);
    e.arg("corrupted_packets",
          static_cast<double>(stats.corruptedPackets()))
        .arg("reservation_drops",
             static_cast<double>(stats.reservationDrops()))
        .arg("retransmitted_packets",
             static_cast<double>(stats.retransmittedPackets()))
        .arg("ack_timeouts", static_cast<double>(stats.ackTimeouts()))
        .arg("dropped_packets",
             static_cast<double>(stats.droppedPackets()))
        .arg("thermal_unlocked_cycles",
             static_cast<double>(stats.thermalUnlockedCycles()))
        .arg("bank_failures", static_cast<double>(bank_failures))
        .arg("bank_repairs", static_cast<double>(bank_repairs));
    opts.tracer->record(std::move(e));
}

/** Counter snapshot for warmup exclusion. */
struct Snapshot
{
    std::uint64_t packets = 0;
    std::uint64_t flits = 0;
    std::uint64_t bits = 0;
    std::uint64_t cpuPackets = 0;
    std::uint64_t gpuPackets = 0;
    double energyJ = 0.0;
    double laserJ = 0.0;
    std::uint64_t corrupted = 0;
    std::uint64_t resDrops = 0;
    std::uint64_t retransmitted = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t dropped = 0;
    std::uint64_t unlockedCycles = 0;
    std::uint64_t fallbackEntries = 0;
    std::uint64_t fallbackExits = 0;
    std::uint64_t fallbackWindows = 0;

    static Snapshot
    of(const sim::NetworkStats &s, double energy, double laser)
    {
        Snapshot snap;
        snap.packets = s.deliveredPackets();
        snap.flits = s.deliveredFlits();
        snap.bits = s.deliveredBits();
        snap.cpuPackets = s.cpuDeliveredPackets();
        snap.gpuPackets = s.gpuDeliveredPackets();
        snap.energyJ = energy;
        snap.laserJ = laser;
        snap.corrupted = s.corruptedPackets();
        snap.resDrops = s.reservationDrops();
        snap.retransmitted = s.retransmittedPackets();
        snap.timeouts = s.ackTimeouts();
        snap.dropped = s.droppedPackets();
        snap.unlockedCycles = s.thermalUnlockedCycles();
        snap.fallbackEntries = s.policyFallbackEntries();
        snap.fallbackExits = s.policyFallbackExits();
        snap.fallbackWindows = s.policyFallbackWindows();
        return snap;
    }
};

void
fillCommon(RunMetrics &m, const sim::NetworkStats &stats,
           const Snapshot &warm, Cycle measure_cycles,
           double cycle_seconds, double total_energy)
{
    m.cycles = measure_cycles;
    m.deliveredPackets = stats.deliveredPackets() - warm.packets;
    m.deliveredFlits = stats.deliveredFlits() - warm.flits;
    m.deliveredBits = stats.deliveredBits() - warm.bits;
    m.cpuPackets = stats.cpuDeliveredPackets() - warm.cpuPackets;
    m.gpuPackets = stats.gpuDeliveredPackets() - warm.gpuPackets;
    m.throughputFlitsPerCycle =
        measure_cycles ? static_cast<double>(m.deliveredFlits) /
                             static_cast<double>(measure_cycles)
                       : 0.0;
    m.throughputGbps = measure_cycles
                           ? static_cast<double>(m.deliveredBits) /
                                 (measure_cycles * cycle_seconds) * 1e-9
                           : 0.0;
    m.avgLatencyCycles = stats.avgLatency();
    m.cpuLatencyCycles = stats.avgLatency(sim::CoreType::CPU);
    m.gpuLatencyCycles = stats.avgLatency(sim::CoreType::GPU);
    m.totalEnergyJ = total_energy - warm.energyJ;
    m.energyPerBitPj =
        m.deliveredBits
            ? m.totalEnergyJ / static_cast<double>(m.deliveredBits) * 1e12
            : 0.0;
    m.corruptedPackets = stats.corruptedPackets() - warm.corrupted;
    m.reservationDrops = stats.reservationDrops() - warm.resDrops;
    m.retransmittedPackets =
        stats.retransmittedPackets() - warm.retransmitted;
    m.ackTimeouts = stats.ackTimeouts() - warm.timeouts;
    m.droppedPackets = stats.droppedPackets() - warm.dropped;
    m.thermalUnlockedCycles =
        stats.thermalUnlockedCycles() - warm.unlockedCycles;
    m.policyFallbackEntries =
        stats.policyFallbackEntries() - warm.fallbackEntries;
    m.policyFallbackExits =
        stats.policyFallbackExits() - warm.fallbackExits;
    m.policyFallbackWindows =
        stats.policyFallbackWindows() - warm.fallbackWindows;
}

} // namespace

RunMetrics
runPearl(const traffic::BenchmarkPair &pair,
         const core::PearlConfig &net_cfg, const core::DbaConfig &dba,
         core::PowerPolicy &policy, const RunOptions &opts,
         const std::string &config_name)
{
    PhaseTimings timing;
    const Clock::time_point t_build = Clock::now();
    const photonic::PowerModel power;
    core::PearlNetwork net(net_cfg, power, dba, &policy);

    // Verification plane: audit every step in Debug builds or under
    // PEARL_VERIFY=1; Release runs keep a bare null-pointer test in the
    // cycle loop (see verify::runtimeChecksEnabled).
    verify::Invariants invariants;
    if (verify::runtimeChecksEnabled())
        net.setAuditor(&invariants);

    if (opts.tracer) {
        net.setTracer(opts.tracer);
        traceRunStart(opts, config_name, pair.label());
    }

    core::SystemConfig sys = opts.system;
    sys.seed = opts.seed;
    core::HeteroSystem system(
        net, pair, sys,
        [&net](int node) { return &net.telemetryOf(node); });

    // Deterministic intra-run parallelism: shard the network step and
    // the node ticks across a pool leased from the shared execution
    // engine (or one pre-leased by SweepRunner).  Bit-identical at any
    // lane count; 1 lane (the default) never installs a pool, keeping
    // the serial code path untouched.
    sim::PoolLease lease;
    sim::WorkerPool *pool = opts.pool;
    if (!pool) {
        lease = sim::ExecutionEngine::instance().lease(
            sim::resolveStepThreads(opts.stepThreads));
        pool = lease.pool();
    }
    if (pool && pool->lanes() > 1) {
        net.setWorkerPool(pool);
        system.setWorkerPool(pool);
    }
    timing.buildSeconds = secondsSince(t_build);

    const Clock::time_point t_warmup = Clock::now();
    system.run(opts.warmupCycles);
    const Snapshot warm =
        Snapshot::of(net.stats(), net.totalEnergyJ(), net.laserEnergyJ());
    timing.warmupSeconds = secondsSince(t_warmup);

    const Clock::time_point t_run = Clock::now();
    system.run(opts.measureCycles);
    timing.runSeconds = secondsSince(t_run);

    const Clock::time_point t_collect = Clock::now();
    RunMetrics m;
    m.configName = config_name;
    m.pairLabel = pair.label();
    fillCommon(m, net.stats(), warm, opts.measureCycles,
               net_cfg.cycleSeconds, net.totalEnergyJ());
    m.laserPowerW =
        (net.laserEnergyJ() - warm.laserJ) /
        (static_cast<double>(opts.measureCycles) * net_cfg.cycleSeconds);
    for (int s = 0; s < photonic::kNumWlStates; ++s) {
        m.residency[static_cast<std::size_t>(s)] =
            net.residency(photonic::stateFromIndex(s));
    }
    if (opts.registry) {
        net.stats().publishTo(*opts.registry);
        net.faults().publishTo(*opts.registry);
        // Per-router telemetry covers the final (possibly partial)
        // window — the window counters reset at every boundary.
        for (int r = 0; r < net.numNodes(); ++r)
            net.telemetryOf(r).publishTo(*opts.registry,
                                         "router" + std::to_string(r));
        opts.registry->gauge("power.laser_w") = m.laserPowerW;
        opts.registry->gauge("power.energy_per_bit_pj") =
            m.energyPerBitPj;
    }
    if (opts.tracer) {
        traceFaultSummary(opts, net.stats(), net.faults().bankFailures(),
                          net.faults().bankRepairs());
        timing.collectSeconds = secondsSince(t_collect);
        tracePhases(opts, timing);
        net.setTracer(nullptr); // the network outlives this scope's use
    } else {
        timing.collectSeconds = secondsSince(t_collect);
    }
    if (opts.phases)
        *opts.phases = timing;
    return m;
}

RunMetrics
runCmesh(const traffic::BenchmarkPair &pair,
         const electrical::CmeshConfig &net_cfg, const RunOptions &opts,
         const std::string &config_name)
{
    PhaseTimings timing;
    const Clock::time_point t_build = Clock::now();
    electrical::CmeshNetwork net(net_cfg);

    core::SystemConfig sys = opts.system;
    sys.seed = opts.seed;
    core::HeteroSystem system(net, pair, sys);
    if (opts.tracer)
        traceRunStart(opts, config_name, pair.label());

    // The electrical baseline shards its step the same way as the
    // photonic fabric (see cmesh.cpp); same lease, same determinism.
    sim::PoolLease lease;
    sim::WorkerPool *pool = opts.pool;
    if (!pool) {
        lease = sim::ExecutionEngine::instance().lease(
            sim::resolveStepThreads(opts.stepThreads));
        pool = lease.pool();
    }
    if (pool && pool->lanes() > 1) {
        net.setWorkerPool(pool);
        system.setWorkerPool(pool);
    }
    timing.buildSeconds = secondsSince(t_build);

    const double dt = sys.arch.networkCycleSeconds();
    const Clock::time_point t_warmup = Clock::now();
    system.run(opts.warmupCycles);
    const Snapshot warm =
        Snapshot::of(net.stats(), net.totalEnergyJ(dt), 0.0);
    timing.warmupSeconds = secondsSince(t_warmup);

    const Clock::time_point t_run = Clock::now();
    system.run(opts.measureCycles);
    timing.runSeconds = secondsSince(t_run);

    const Clock::time_point t_collect = Clock::now();
    RunMetrics m;
    m.configName = config_name;
    m.pairLabel = pair.label();
    fillCommon(m, net.stats(), warm, opts.measureCycles, dt,
               net.totalEnergyJ(dt));
    if (opts.registry)
        net.stats().publishTo(*opts.registry);
    if (opts.tracer) {
        // The electrical mesh has no fault plane; the zero summary
        // still stamps the "fault" category into the trace.
        traceFaultSummary(opts, net.stats(), 0, 0);
        timing.collectSeconds = secondsSince(t_collect);
        tracePhases(opts, timing);
    } else {
        timing.collectSeconds = secondsSince(t_collect);
    }
    if (opts.phases)
        *opts.phases = timing;
    return m;
}

RunMetrics
average(const std::vector<RunMetrics> &runs, const std::string &label)
{
    PEARL_ASSERT(!runs.empty());
    RunMetrics avg;
    avg.configName = runs.front().configName;
    avg.pairLabel = label;
    const double n = static_cast<double>(runs.size());
    for (const RunMetrics &r : runs) {
        avg.cycles += r.cycles;
        avg.deliveredPackets += r.deliveredPackets;
        avg.deliveredFlits += r.deliveredFlits;
        avg.deliveredBits += r.deliveredBits;
        avg.cpuPackets += r.cpuPackets;
        avg.gpuPackets += r.gpuPackets;
        avg.throughputFlitsPerCycle += r.throughputFlitsPerCycle / n;
        avg.throughputGbps += r.throughputGbps / n;
        avg.avgLatencyCycles += r.avgLatencyCycles / n;
        avg.cpuLatencyCycles += r.cpuLatencyCycles / n;
        avg.gpuLatencyCycles += r.gpuLatencyCycles / n;
        avg.totalEnergyJ += r.totalEnergyJ;
        avg.energyPerBitPj += r.energyPerBitPj / n;
        avg.laserPowerW += r.laserPowerW / n;
        avg.corruptedPackets += r.corruptedPackets;
        avg.reservationDrops += r.reservationDrops;
        avg.retransmittedPackets += r.retransmittedPackets;
        avg.ackTimeouts += r.ackTimeouts;
        avg.droppedPackets += r.droppedPackets;
        avg.thermalUnlockedCycles += r.thermalUnlockedCycles;
        avg.policyFallbackEntries += r.policyFallbackEntries;
        avg.policyFallbackExits += r.policyFallbackExits;
        avg.policyFallbackWindows += r.policyFallbackWindows;
        for (std::size_t s = 0; s < avg.residency.size(); ++s)
            avg.residency[s] += r.residency[s] / n;
    }
    return avg;
}

} // namespace metrics
} // namespace pearl
