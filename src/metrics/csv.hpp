/**
 * @file
 * The one RunMetrics CSV schema.
 *
 * Header text, field order and value formatting are defined here and
 * nowhere else — the golden-metrics regression suite, the benches and
 * the Runner's PEARL_METRICS_DUMP output all share this module, so the
 * checked-in golden files and bench output can never silently diverge.
 *
 * Format contract (matches the checked-in goldens under tests/golden
 * byte for byte): integers print via std::to_string, doubles via the default
 * ostream format at max_digits10 precision (round-trippable).
 */

#ifndef PEARL_METRICS_CSV_HPP
#define PEARL_METRICS_CSV_HPP

#include <string>
#include <vector>

#include "metrics/experiment.hpp"

namespace pearl {
namespace metrics {

/** One named, typed field of a RunMetrics row. */
struct MetricField
{
    std::string name;
    bool isInteger = false;
    std::uint64_t u = 0;
    double d = 0.0;
};

/** Every metric field of `m`, in the canonical CSV column order. */
std::vector<MetricField> metricFields(const RunMetrics &m);

/** Render one field's value exactly as the CSV schema prescribes. */
std::string formatMetricValue(const MetricField &f);

/**
 * The canonical header line: the key columns (e.g. {"pair"} for the
 * golden files, {"config", "pair"} for metric dumps) followed by every
 * metric field name.  No trailing newline.
 */
std::string csvHeader(const std::vector<std::string> &key_columns);

/** One data row matching csvHeader(keys-of-`key_cells`).  No newline. */
std::string csvRow(const std::vector<std::string> &key_cells,
                   const RunMetrics &m);

/** Split one CSV line on commas (no quoting — labels never contain
 *  commas). */
std::vector<std::string> splitCsvLine(const std::string &line);

/**
 * Parse the metric cells of one canonical row (everything after the key
 * columns) back into `out` — the exact inverse of csvRow's field
 * rendering.  Doubles round-trip bit-exactly (max_digits10).  Used by
 * the sweep journal to restore completed jobs on resume.
 * @return false on a column-count or number-format mismatch (stale or
 *         corrupt journal rows are skipped, never trusted).
 */
bool parseMetricCells(const std::vector<std::string> &cells,
                      RunMetrics &out);

} // namespace metrics
} // namespace pearl

#endif // PEARL_METRICS_CSV_HPP
