#include "metrics/runner.hpp"

#include <fstream>
#include <stdexcept>

#include "common/env.hpp"
#include "common/log.hpp"

namespace pearl {
namespace metrics {

RunnerOptions
RunnerOptions::fromEnv()
{
    RunnerOptions opts;
    opts.sweep = SweepOptions::fromEnv();
    opts.metricsDumpPath = envStr("PEARL_METRICS_DUMP", "");
    return opts;
}

RunMetrics
Runner::run(const RunSpec &spec) const
{
    const std::uint64_t seed =
        spec.explicitSeed ? *spec.explicitSeed : spec.options.seed;

    // A single run writes exactly the configured trace path — no
    // per-job suffix — unless the spec already carries its own tracer.
    RunSpec local = spec;
    std::unique_ptr<obs::Tracer> tracer;
    if (opts_.sweep.trace.enabled && !spec.custom &&
        !spec.options.tracer) {
        tracer = obs::makeTracer(opts_.sweep.trace.path);
        local.options.tracer = tracer.get();
    }

    RunMetrics m = executeSpec(local, seed);
    if (tracer)
        tracer->finish();
    dumpMetrics({m});
    return m;
}

SweepResult
Runner::sweep(const std::vector<RunSpec> &specs) const
{
    const SweepResult result = SweepRunner(opts_.sweep).run(specs);
    std::vector<RunMetrics> ok_runs;
    ok_runs.reserve(result.jobs.size());
    for (const SweepJobResult &j : result.jobs) {
        if (j.ok)
            ok_runs.push_back(j.metrics);
    }
    dumpMetrics(ok_runs);
    return result;
}

std::vector<RunMetrics>
Runner::runAll(const std::vector<RunSpec> &specs) const
{
    return sweep(specs).metricsOrThrow();
}

void
Runner::dumpMetrics(const std::vector<RunMetrics> &runs) const
{
    if (opts_.metricsDumpPath.empty() || runs.empty())
        return;
    // Serialized post-join on the calling thread, in submission order:
    // the dump is deterministic for any sweep thread count.
    const bool fresh = [this] {
        std::ifstream probe(opts_.metricsDumpPath);
        return !probe.good() || probe.peek() == std::ifstream::traits_type::eof();
    }();
    std::ofstream out(opts_.metricsDumpPath, std::ios::app);
    if (!out) {
        warn("cannot open PEARL_METRICS_DUMP file ",
             opts_.metricsDumpPath, "; dump skipped");
        return;
    }
    if (fresh)
        out << csvHeader({"config", "pair"}) << "\n";
    for (const RunMetrics &m : runs)
        out << csvRow({m.configName, m.pairLabel}, m) << "\n";
}

std::vector<RunSpec>
pearlGrid(const std::string &config_name,
          const std::vector<traffic::BenchmarkPair> &pairs,
          const core::PearlConfig &net_cfg, const core::DbaConfig &dba,
          std::function<std::unique_ptr<core::PowerPolicy>()> make_policy,
          const RunOptions &opts)
{
    std::vector<RunSpec> specs;
    specs.reserve(pairs.size());
    for (const auto &pair : pairs) {
        RunSpec spec;
        spec.configName = config_name;
        spec.pair = pair;
        spec.options = opts;
        spec.fabric = RunSpec::Fabric::Pearl;
        spec.pearl = net_cfg;
        spec.dba = dba;
        spec.makePolicy = make_policy;
        specs.push_back(std::move(spec));
    }
    return specs;
}

std::vector<RunSpec>
cmeshGrid(const std::string &config_name,
          const std::vector<traffic::BenchmarkPair> &pairs,
          const electrical::CmeshConfig &net_cfg, const RunOptions &opts)
{
    std::vector<RunSpec> specs;
    specs.reserve(pairs.size());
    for (const auto &pair : pairs) {
        RunSpec spec;
        spec.configName = config_name;
        spec.pair = pair;
        spec.options = opts;
        spec.fabric = RunSpec::Fabric::Cmesh;
        spec.cmesh = net_cfg;
        specs.push_back(std::move(spec));
    }
    return specs;
}

} // namespace metrics
} // namespace pearl
