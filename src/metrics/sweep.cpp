#include "metrics/sweep.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/env.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"

namespace pearl {
namespace metrics {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

RunMetrics
executeSpec(const RunSpec &job, std::uint64_t seed)
{
    if (job.custom)
        return job.custom(job, seed);

    RunOptions opts = job.options;
    opts.seed = seed;
    RunMetrics m;
    switch (job.fabric) {
    case RunSpec::Fabric::Pearl: {
        if (!job.makePolicy) {
            throw std::runtime_error("sweep job '" + job.configName +
                                     "' has no policy factory");
        }
        std::unique_ptr<core::PowerPolicy> policy = job.makePolicy();
        if (!policy) {
            throw std::runtime_error("sweep job '" + job.configName +
                                     "' produced a null policy");
        }
        m = runPearl(job.pair, job.pearl, job.dba, *policy, opts,
                     job.configName);
        break;
    }
    case RunSpec::Fabric::Cmesh:
        m = runCmesh(job.pair, job.cmesh, opts, job.configName);
        break;
    }
    if (!job.label.empty())
        m.pairLabel = job.label;
    return m;
}

std::vector<RunMetrics>
SweepResult::metricsOrThrow() const
{
    if (const SweepJobResult *bad = firstError()) {
        throw std::runtime_error("sweep job '" +
                                 bad->metrics.configName + "/" +
                                 bad->metrics.pairLabel +
                                 "' failed: " + bad->error);
    }
    std::vector<RunMetrics> out;
    out.reserve(jobs.size());
    for (const auto &j : jobs)
        out.push_back(j.metrics);
    return out;
}

unsigned
SweepRunner::resolveThreads(unsigned requested)
{
    if (const char *v = std::getenv("PEARL_SWEEP_THREADS")) {
        std::uint64_t n = 0;
        if (parseU64(v, n) && n > 0) {
            return static_cast<unsigned>(n);
        }
        warn("ignoring invalid PEARL_SWEEP_THREADS=\"", v, "\"");
    }
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

SweepResult
SweepRunner::run(const std::vector<RunSpec> &jobs) const
{
    SweepResult result;
    result.jobs.resize(jobs.size());

    const std::size_t n = jobs.size();
    const unsigned threads = std::min<std::size_t>(
        resolveThreads(opts_.threads), n > 0 ? n : 1);
    result.summary.jobs = n;
    result.summary.threads = threads;
    if (n == 0)
        return result;

    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancelled{false};

    // Each worker claims job indices from the shared counter and writes
    // only its own result slot, so the slots need no lock; joining the
    // workers publishes everything to the caller.
    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            const RunSpec &job = jobs[i];
            SweepJobResult &slot = result.jobs[i];
            slot.metrics.configName = job.configName;
            slot.metrics.pairLabel =
                job.label.empty() ? job.pair.label() : job.label;
            slot.seed = job.explicitSeed
                            ? *job.explicitSeed
                            : deriveSeed(opts_.baseSeed, i);

            if (opts_.cancelOnError &&
                cancelled.load(std::memory_order_acquire)) {
                slot.skipped = true;
                slot.error = "skipped: sweep cancelled by an earlier "
                             "failure";
                continue;
            }

            // Observability: each descriptor-path job gets a private
            // tracer writing its own file, so trace content does not
            // depend on the thread count and needs no locking.  The
            // phase split lands in the result slot either way.
            RunSpec traced;
            const RunSpec *to_run = &job;
            if (!job.custom) {
                traced = job;
                traced.options.phases = &slot.phases;
                to_run = &traced;
            }
            std::unique_ptr<obs::Tracer> tracer;
            if (opts_.trace.enabled && !job.custom) {
                tracer = obs::makeTracer(obs::jobTracePath(
                    opts_.trace, i, slot.metrics.configName,
                    slot.metrics.pairLabel));
                traced.options.tracer = tracer.get();
            }

            const Clock::time_point start = Clock::now();
            try {
                slot.metrics = executeSpec(*to_run, slot.seed);
                slot.ok = true;
            } catch (const std::exception &e) {
                slot.error = e.what();
                cancelled.store(true, std::memory_order_release);
            } catch (...) {
                slot.error = "unknown exception";
                cancelled.store(true, std::memory_order_release);
            }
            slot.wallSeconds = secondsSince(start);
        }
    };

    const Clock::time_point sweep_start = Clock::now();
    if (threads <= 1) {
        worker(); // serial path: no threads spawned at all
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    result.summary.wallSeconds = secondsSince(sweep_start);

    for (const SweepJobResult &j : result.jobs) {
        result.summary.aggregateJobSeconds += j.wallSeconds;
        result.summary.phaseSeconds.buildSeconds +=
            j.phases.buildSeconds;
        result.summary.phaseSeconds.warmupSeconds +=
            j.phases.warmupSeconds;
        result.summary.phaseSeconds.runSeconds += j.phases.runSeconds;
        result.summary.phaseSeconds.collectSeconds +=
            j.phases.collectSeconds;
        if (!j.ok) {
            if (j.skipped)
                ++result.summary.skipped;
            else
                ++result.summary.failed;
        }
    }
    return result;
}

} // namespace metrics
} // namespace pearl
