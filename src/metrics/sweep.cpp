#include "metrics/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "cache/validate.hpp"
#include "common/env.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "core/validate.hpp"
#include "electrical/validate.hpp"
#include "metrics/csv.hpp"
#include "sim/worker_pool.hpp"

namespace pearl {
namespace metrics {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Crash-safe sweep journal.  One CSV-format file: a header line, then
 * one row per completed job — `index,seed,config,pair` followed by the
 * canonical metric cells.  Rows are appended and flushed as each job
 * finishes, so an interrupted sweep's journal holds everything except
 * the jobs that were in flight.  On resume the last row per index wins
 * (a crash mid-append leaves a short row, which parseMetricCells
 * rejects), and a row is only trusted when its seed/config/pair still
 * match the job — a changed grid invalidates the entry, never corrupts
 * the result.
 */
class SweepJournal
{
  public:
    struct Entry
    {
        std::uint64_t seed = 0;
        std::string configName;
        std::string pairLabel;
        std::vector<std::string> cells;
    };

    /** Load entries from an existing journal; missing file is fine
     *  (nothing to resume).  @throws ConfigError on an unreadable
     *  header (the file is not a journal — refuse to append to it). */
    static std::unordered_map<std::size_t, Entry>
    load(const std::string &path)
    {
        std::unordered_map<std::size_t, Entry> entries;
        std::ifstream in(path);
        if (!in.is_open())
            return entries;
        std::string line;
        if (!std::getline(in, line))
            return entries; // empty file: nothing recorded yet
        if (line != header()) {
            throw ConfigError(Error(
                ErrorCode::IoError,
                "sweep journal \"" + path + "\" has an unexpected "
                "header (not a journal, or from an incompatible "
                "version) — move it aside or pick another "
                "PEARL_SWEEP_JOURNAL path"));
        }
        std::size_t dropped = 0;
        while (std::getline(in, line)) {
            std::vector<std::string> cells = splitCsvLine(line);
            if (cells.size() < 5) {
                ++dropped; // truncated row from a mid-append crash
                continue;
            }
            std::uint64_t index = 0;
            Entry e;
            if (!parseU64(cells[0], index) ||
                !parseU64(cells[1], e.seed)) {
                ++dropped;
                continue;
            }
            e.configName = cells[2];
            e.pairLabel = cells[3];
            e.cells.assign(cells.begin() + 4, cells.end());
            entries[static_cast<std::size_t>(index)] = std::move(e);
        }
        if (dropped > 0)
            warn("sweep journal \"", path, "\": skipped ", dropped,
                 " malformed row(s)");
        return entries;
    }

    /** Open for appending.  `fresh` truncates (non-resume sweeps start
     *  a new journal); otherwise rows accumulate after the existing
     *  ones.  A header is written whenever the file starts empty. */
    void
    open(const std::string &path, bool fresh)
    {
        const auto mode = fresh
                              ? std::ios::out | std::ios::trunc
                              : std::ios::out | std::ios::app;
        out_.open(path, mode);
        if (!out_.is_open()) {
            throw ConfigError(Error(
                ErrorCode::IoError,
                "cannot open sweep journal \"" + path +
                "\" for writing"));
        }
        if (out_.tellp() == std::ofstream::pos_type(0)) {
            out_ << header() << "\n";
            out_.flush();
        }
        path_ = path;
    }

    bool isOpen() const { return out_.is_open(); }

    /** Append one completed job's row and flush it to disk. */
    void
    record(std::size_t index, const SweepJobResult &slot)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out_ << index << "," << slot.seed << ","
             << csvRow({slot.metrics.configName,
                        slot.metrics.pairLabel},
                       slot.metrics)
             << "\n";
        out_.flush();
        if (!out_)
            warn("sweep journal \"", path_, "\": write failed; resume "
                 "data may be incomplete");
    }

  private:
    static const char *
    header()
    {
        static const std::string line =
            "index,seed," + csvHeader({"config", "pair"});
        return line.c_str();
    }

    std::mutex mutex_;
    std::ofstream out_;
    std::string path_;
};

} // namespace

SweepOptions
SweepOptions::fromEnv()
{
    SweepOptions opts;
    opts.retryLimit = static_cast<int>(envU64(
        "PEARL_SWEEP_RETRY",
        static_cast<std::uint64_t>(opts.retryLimit)));
    opts.journalPath = envStr("PEARL_SWEEP_JOURNAL", opts.journalPath);
    opts.resume = envBool("PEARL_SWEEP_RESUME", opts.resume);
    if (opts.resume && opts.journalPath.empty())
        warn("PEARL_SWEEP_RESUME is set but PEARL_SWEEP_JOURNAL is "
             "not; nothing to resume from");
    opts.trace = obs::TraceOptions::fromEnv();
    return opts;
}

Validation
validate(const RunSpec &spec)
{
    const std::string where =
        "job '" + spec.configName +
        (spec.label.empty() ? "" : "/" + spec.label) + "': ";
    if (spec.options.measureCycles == 0)
        return configError(where, "measureCycles must be > 0");
    if (spec.custom)
        return {}; // the custom callable owns everything else

    if (Validation v =
            cache::validate(spec.options.system.hierarchy);
        !v)
        return configError(where, "cache hierarchy: ",
                           v.error().message);
    switch (spec.fabric) {
    case RunSpec::Fabric::Pearl:
        if (!spec.makePolicy)
            return configError(where, "PEARL jobs need a policy "
                               "factory (makePolicy is empty)");
        if (Validation v = core::validate(spec.pearl); !v)
            return configError(where, "pearl config: ",
                               v.error().message);
        if (Validation v = core::validate(spec.dba); !v)
            return configError(where, v.error().message);
        break;
    case RunSpec::Fabric::Cmesh:
        if (Validation v = electrical::validate(spec.cmesh); !v)
            return configError(where, v.error().message);
        break;
    }
    return {};
}

RunMetrics
executeSpec(const RunSpec &job, std::uint64_t seed)
{
    throwIfInvalid(validate(job));
    if (job.custom)
        return job.custom(job, seed);

    RunOptions opts = job.options;
    opts.seed = seed;
    RunMetrics m;
    switch (job.fabric) {
    case RunSpec::Fabric::Pearl: {
        std::unique_ptr<core::PowerPolicy> policy = job.makePolicy();
        if (!policy) {
            throw ConfigError(Error(
                ErrorCode::InvalidConfig,
                "sweep job '" + job.configName +
                "' produced a null policy"));
        }
        m = runPearl(job.pair, job.pearl, job.dba, *policy, opts,
                     job.configName);
        break;
    }
    case RunSpec::Fabric::Cmesh:
        m = runCmesh(job.pair, job.cmesh, opts, job.configName);
        break;
    }
    if (!job.label.empty())
        m.pairLabel = job.label;
    return m;
}

std::vector<RunMetrics>
SweepResult::metricsOrThrow() const
{
    if (const SweepJobResult *bad = firstError()) {
        throw std::runtime_error("sweep job '" +
                                 bad->metrics.configName + "/" +
                                 bad->metrics.pairLabel +
                                 "' failed: " + bad->error);
    }
    std::vector<RunMetrics> out;
    out.reserve(jobs.size());
    for (const auto &j : jobs)
        out.push_back(j.metrics);
    return out;
}

unsigned
SweepRunner::resolveThreads(unsigned requested)
{
    const unsigned hw = std::thread::hardware_concurrency();
    return sim::resolveThreadBudget(requested, "PEARL_SWEEP_THREADS",
                                    hw > 0 ? hw : 1);
}

SweepResult
SweepRunner::run(const std::vector<RunSpec> &jobs) const
{
    SweepResult result;
    result.jobs.resize(jobs.size());

    const std::size_t n = jobs.size();
    const unsigned budget = resolveThreads(opts_.threads);
    const unsigned threads =
        std::min<std::size_t>(budget, n > 0 ? n : 1);
    result.summary.jobs = n;
    result.summary.threads = threads;
    if (n == 0)
        return result;

    // Hierarchical lane leasing (shared budget only): with
    // PEARL_THREADS set, the C-thread budget is split across the W job
    // workers as floor(C / W) step lanes each.  The W pools are leased
    // here, on the calling thread, in index order — the plan is a pure
    // function of (budget, job count), never of timing — and a job
    // only adopts its worker's pool when it did not pin its own
    // stepThreads.  Without the shared budget, lane_quota stays 0 and
    // each job resolves its step lanes independently as before.
    const unsigned lane_quota =
        sim::ExecutionEngine::configuredBudget() > 0
            ? std::max(1u, budget / std::max(threads, 1u))
            : 0;
    std::vector<sim::PoolLease> lane_pools;
    if (lane_quota > 1) {
        lane_pools.reserve(threads);
        for (unsigned w = 0; w < threads; ++w) {
            lane_pools.push_back(
                sim::ExecutionEngine::instance().lease(lane_quota));
        }
    }

    // Crash-safe checkpointing: restore finished jobs from the journal
    // (resume), then stream every newly completed row into it.
    std::unordered_map<std::size_t, SweepJournal::Entry> restored;
    SweepJournal journal;
    if (!opts_.journalPath.empty()) {
        if (opts_.resume)
            restored = SweepJournal::load(opts_.journalPath);
        journal.open(opts_.journalPath, /*fresh=*/!opts_.resume);
    }

    const int max_attempts = 1 + std::max(0, opts_.retryLimit);
    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancelled{false};
    std::atomic<std::size_t> retries{0};

    // Each worker claims job indices from the shared counter and writes
    // only its own result slot, so the slots need no lock; joining the
    // workers publishes everything to the caller.  `w` is the worker's
    // submission index, which names its pre-leased lane pool.
    auto worker = [&](unsigned w) {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            const RunSpec &job = jobs[i];
            SweepJobResult &slot = result.jobs[i];
            slot.metrics.configName = job.configName;
            slot.metrics.pairLabel =
                job.label.empty() ? job.pair.label() : job.label;
            slot.seed = job.explicitSeed
                            ? *job.explicitSeed
                            : deriveSeed(opts_.baseSeed, i);

            // Resume: a journal row with matching identity replays the
            // original metrics bit-exactly (max_digits10 round-trip) —
            // the job never runs.
            if (auto it = restored.find(i); it != restored.end()) {
                const SweepJournal::Entry &e = it->second;
                if (e.seed == slot.seed &&
                    e.configName == slot.metrics.configName &&
                    e.pairLabel == slot.metrics.pairLabel &&
                    parseMetricCells(e.cells, slot.metrics)) {
                    slot.ok = true;
                    slot.resumed = true;
                    continue;
                }
                warn("sweep journal entry for job ", i,
                     " does not match the grid (stale journal?); "
                     "re-running");
            }

            if (opts_.cancelOnError &&
                cancelled.load(std::memory_order_acquire)) {
                slot.skipped = true;
                slot.errorCode = ErrorCode::InvalidState;
                slot.error = "skipped: sweep cancelled by an earlier "
                             "failure";
                continue;
            }

            // Observability: each descriptor-path job gets a private
            // tracer writing its own file, so trace content does not
            // depend on the thread count and needs no locking.  The
            // phase split lands in the result slot either way.
            RunSpec traced;
            const RunSpec *to_run = &job;
            if (!job.custom) {
                traced = job;
                traced.options.phases = &slot.phases;
                // Shared budget: the job steps on this worker's
                // pre-leased lane slice instead of re-resolving
                // PEARL_THREADS (which would oversubscribe W × C).
                // An explicit per-job stepThreads or pool still wins.
                if (lane_quota > 0 && traced.options.stepThreads == 0 &&
                    traced.options.pool == nullptr) {
                    traced.options.stepThreads = lane_quota;
                    if (lane_quota > 1)
                        traced.options.pool = lane_pools[w].pool();
                }
                to_run = &traced;
            }
            std::unique_ptr<obs::Tracer> tracer;
            if (opts_.trace.enabled && !job.custom) {
                tracer = obs::makeTracer(obs::jobTracePath(
                    opts_.trace, i, slot.metrics.configName,
                    slot.metrics.pairLabel));
                traced.options.tracer = tracer.get();
            }

            // Bounded retry with the identical derived seed: a
            // transient failure replays deterministically; a validation
            // failure is deterministic by construction and fails fast.
            const Clock::time_point start = Clock::now();
            for (int attempt = 0; attempt < max_attempts; ++attempt) {
                slot.attempts = attempt + 1;
                if (attempt > 0) {
                    retries.fetch_add(1, std::memory_order_relaxed);
                    warn("sweep job ", i, " (",
                         slot.metrics.configName, "/",
                         slot.metrics.pairLabel, "): retry ", attempt,
                         "/", max_attempts - 1, " after: ",
                         slot.error);
                }
                try {
                    slot.metrics = executeSpec(*to_run, slot.seed);
                    slot.ok = true;
                    slot.errorCode = ErrorCode::None;
                    slot.error.clear();
                    break;
                } catch (const ConfigError &e) {
                    slot.errorCode = e.code();
                    slot.error = e.what();
                    break; // deterministic: retrying cannot help
                } catch (const std::exception &e) {
                    slot.errorCode = ErrorCode::JobFailed;
                    slot.error = e.what();
                } catch (...) {
                    slot.errorCode = ErrorCode::JobFailed;
                    slot.error = "unknown exception";
                }
            }
            slot.wallSeconds = secondsSince(start);
            if (slot.ok) {
                if (journal.isOpen())
                    journal.record(i, slot);
            } else {
                cancelled.store(true, std::memory_order_release);
            }
        }
    };

    const Clock::time_point sweep_start = Clock::now();
    if (threads <= 1) {
        worker(0); // serial path: no job threads spawned at all
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker, t);
        for (std::thread &t : pool)
            t.join();
    }
    result.summary.wallSeconds = secondsSince(sweep_start);
    result.summary.retries = retries.load(std::memory_order_relaxed);

    for (const SweepJobResult &j : result.jobs) {
        result.summary.aggregateJobSeconds += j.wallSeconds;
        result.summary.phaseSeconds.buildSeconds +=
            j.phases.buildSeconds;
        result.summary.phaseSeconds.warmupSeconds +=
            j.phases.warmupSeconds;
        result.summary.phaseSeconds.runSeconds += j.phases.runSeconds;
        result.summary.phaseSeconds.collectSeconds +=
            j.phases.collectSeconds;
        if (j.resumed)
            ++result.summary.resumed;
        if (!j.ok) {
            if (j.skipped)
                ++result.summary.skipped;
            else
                ++result.summary.failed;
        }
    }
    return result;
}

} // namespace metrics
} // namespace pearl
