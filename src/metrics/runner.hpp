/**
 * @file
 * The unified run API.
 *
 * `metrics::Runner` is the single entry point every bench, example and
 * test uses to execute simulations: a `RunSpec` (config + pair + seed +
 * cycles + sinks) goes in, `RunMetrics` comes out.  It folds together
 * what used to live in three places — the bench harness's
 * runPearlConfig/runCmeshConfig free functions, the examples'
 * hand-rolled loops and the raw `metrics::experiment` helpers — and
 * owns the observability-plane wiring:
 *
 *   PEARL_TRACE         enable per-window event tracing (default off)
 *   PEARL_TRACE_PATH    trace output stem (".jsonl" ext -> JSONL
 *                       backend, else Chrome trace format); sweeps
 *                       write one file per job
 *   PEARL_METRICS_DUMP  append every run's RunMetrics row (canonical
 *                       CSV schema from metrics/csv.hpp) to this file
 *
 * All three knobs parse with the strict warn-and-fallback contract of
 * common/env.hpp.  With every knob off, Runner adds nothing on top of
 * the sweep engine — runs stay bit-identical to the seed behaviour.
 */

#ifndef PEARL_METRICS_RUNNER_HPP
#define PEARL_METRICS_RUNNER_HPP

#include <string>
#include <vector>

#include "metrics/csv.hpp"
#include "metrics/sweep.hpp"

namespace pearl {
namespace metrics {

/** Runner-wide configuration (normally from the environment). */
struct RunnerOptions
{
    /** Sweep engine knobs, including `sweep.trace` (the trace sink). */
    SweepOptions sweep;
    /** Append canonical CSV rows here after each run/sweep ("" = off). */
    std::string metricsDumpPath;

    /** Defaults + PEARL_TRACE / PEARL_TRACE_PATH / PEARL_METRICS_DUMP. */
    static RunnerOptions fromEnv();
};

/** The unified facade: RunSpec in, RunMetrics out. */
class Runner
{
  public:
    /** Environment-configured runner (the common case). */
    Runner() : Runner(RunnerOptions::fromEnv()) {}
    explicit Runner(RunnerOptions opts) : opts_(std::move(opts)) {}

    /**
     * Execute one spec serially on the calling thread.  The effective
     * seed is `spec.explicitSeed` if set, else `spec.options.seed`
     * (no sweep-style derivation).  @throws std::runtime_error on
     * simulation failure.
     */
    RunMetrics run(const RunSpec &spec) const;

    /** Execute a grid through the parallel sweep engine; per-job
     *  results (including failures) come back in submission order. */
    SweepResult sweep(const std::vector<RunSpec> &specs) const;

    /** sweep() + metricsOrThrow(): the common happy-path shape. */
    std::vector<RunMetrics> runAll(const std::vector<RunSpec> &specs) const;

    const RunnerOptions &options() const { return opts_; }

  private:
    void dumpMetrics(const std::vector<RunMetrics> &runs) const;

    RunnerOptions opts_;
};

// Spec builders — the grid shapes every figure bench uses. -------------

/** One Pearl-fabric spec per benchmark pair. */
std::vector<RunSpec>
pearlGrid(const std::string &config_name,
          const std::vector<traffic::BenchmarkPair> &pairs,
          const core::PearlConfig &net_cfg, const core::DbaConfig &dba,
          std::function<std::unique_ptr<core::PowerPolicy>()> make_policy,
          const RunOptions &opts);

/** One CMESH-baseline spec per benchmark pair. */
std::vector<RunSpec>
cmeshGrid(const std::string &config_name,
          const std::vector<traffic::BenchmarkPair> &pairs,
          const electrical::CmeshConfig &net_cfg, const RunOptions &opts);

} // namespace metrics
} // namespace pearl

#endif // PEARL_METRICS_RUNNER_HPP
