/**
 * @file
 * Experiment runner: one call = one (network configuration, benchmark
 * pair) simulation, returning the metrics every figure of the paper is
 * built from — throughput, latency, energy per bit, average laser power
 * and wavelength-state residency.
 */

#ifndef PEARL_METRICS_EXPERIMENT_HPP
#define PEARL_METRICS_EXPERIMENT_HPP

#include <array>
#include <string>

#include "core/arch_config.hpp"
#include "core/dba.hpp"
#include "core/power_policy.hpp"
#include "core/system.hpp"
#include "electrical/cmesh.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "photonic/wl_state.hpp"
#include "traffic/suite.hpp"

namespace pearl {

namespace sim {
class WorkerPool;
} // namespace sim

namespace metrics {

/** Wall-clock split of one run, by phase (observability plane). */
struct PhaseTimings
{
    double buildSeconds = 0.0;   //!< network/system construction
    double warmupSeconds = 0.0;  //!< warmup cycles
    double runSeconds = 0.0;     //!< measured cycles
    double collectSeconds = 0.0; //!< metric extraction / publishing

    double
    totalSeconds() const
    {
        return buildSeconds + warmupSeconds + runSeconds +
               collectSeconds;
    }
};

/** Everything a figure needs from one run. */
struct RunMetrics
{
    std::string configName;
    std::string pairLabel;

    sim::Cycle cycles = 0;
    std::uint64_t deliveredPackets = 0;
    std::uint64_t deliveredFlits = 0;
    std::uint64_t deliveredBits = 0;
    std::uint64_t cpuPackets = 0;
    std::uint64_t gpuPackets = 0;

    double throughputFlitsPerCycle = 0.0;
    double throughputGbps = 0.0;
    double avgLatencyCycles = 0.0;
    double cpuLatencyCycles = 0.0; //!< CPU-class packets only
    double gpuLatencyCycles = 0.0; //!< GPU-class packets only

    double totalEnergyJ = 0.0;
    double energyPerBitPj = 0.0;
    double laserPowerW = 0.0; //!< average laser power (photonic only)

    // Resilience counters (nonzero only with the fault plane enabled,
    // except thermalUnlockedCycles which the thermal model feeds too).
    std::uint64_t corruptedPackets = 0;
    std::uint64_t reservationDrops = 0;
    std::uint64_t retransmittedPackets = 0;
    std::uint64_t ackTimeouts = 0;
    std::uint64_t droppedPackets = 0;
    std::uint64_t thermalUnlockedCycles = 0;

    // Guard-layer counters (nonzero only under ml::GuardedPolicy).
    // Deliberately outside the canonical CSV schema — see
    // metrics/csv.cpp — so goldens and dump consumers are unaffected.
    std::uint64_t policyFallbackEntries = 0;
    std::uint64_t policyFallbackExits = 0;
    std::uint64_t policyFallbackWindows = 0;

    /** Time share per wavelength state, WL8..WL64 (photonic only). */
    std::array<double, photonic::kNumWlStates> residency = {};
};

/** Options shared by all runs. */
struct RunOptions
{
    sim::Cycle warmupCycles = 2000;  //!< excluded from metrics
    sim::Cycle measureCycles = 30000;
    std::uint64_t seed = 1;
    core::SystemConfig system;

    /**
     * Worker lanes for deterministic intra-run parallel stepping
     * (PEARL and CMESH fabrics; results are bit-identical at any
     * count).  0 — the default — resolves the shared PEARL_THREADS
     * budget (then the deprecated PEARL_STEP_THREADS, then 1, the
     * exact serial path); a nonzero value overrides the environment,
     * which is how the parallel-step tests pin both sides of a
     * comparison.  See sim::resolveThreadBudget().
     */
    unsigned stepThreads = 0;

    /**
     * Pre-leased worker pool (non-owning).  When set, the run steps
     * on exactly this pool and `stepThreads` is ignored — this is how
     * SweepRunner hands each job its slice of the shared budget.
     * Null — the default — makes the run lease its own pool from
     * sim::ExecutionEngine using `stepThreads`.
     */
    sim::WorkerPool *pool = nullptr;

    // Observability-plane sinks (all optional, non-owning; null — the
    // default — keeps the run bit-identical to an uninstrumented one).
    obs::Tracer *tracer = nullptr;        //!< per-window event trace
    obs::MetricsRegistry *registry = nullptr; //!< end-of-run metrics
    PhaseTimings *phases = nullptr;       //!< wall-clock phase split
};

/**
 * Run a benchmark pair on the PEARL photonic network.
 * @param policy wavelength policy (shared across routers).
 */
RunMetrics runPearl(const traffic::BenchmarkPair &pair,
                    const core::PearlConfig &net_cfg,
                    const core::DbaConfig &dba, core::PowerPolicy &policy,
                    const RunOptions &opts, const std::string &config_name);

/** Run a benchmark pair on the electrical CMESH baseline. */
RunMetrics runCmesh(const traffic::BenchmarkPair &pair,
                    const electrical::CmeshConfig &net_cfg,
                    const RunOptions &opts, const std::string &config_name);

/** Arithmetic mean of the numeric fields over several runs (used to
 *  aggregate the 16 test pairs into one figure bar). */
RunMetrics average(const std::vector<RunMetrics> &runs,
                   const std::string &label);

} // namespace metrics
} // namespace pearl

#endif // PEARL_METRICS_EXPERIMENT_HPP
