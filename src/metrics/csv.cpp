#include "metrics/csv.hpp"

#include <iomanip>
#include <limits>
#include <sstream>

#include "common/env.hpp"

namespace pearl {
namespace metrics {

namespace {

/**
 * The one canonical field list.  Both directions — rendering
 * (metricFields) and journal restore (parseMetricCells) — walk this
 * visitor, so the schema cannot diverge between them.  `f` must expose
 * integer(name, u64&) and real(name, double&) overload points.
 *
 * The policy-fallback counters (RunMetrics::policyFallback*) are
 * deliberately NOT part of the canonical schema: the checked-in golden
 * CSVs and every PEARL_METRICS_DUMP consumer keep their byte-exact
 * column set, and the counters are zero except under the guarded ML
 * policy (they are published to the MetricsRegistry and printed by the
 * fault-sweep example instead).
 */
template <typename F>
void
visitMetricFields(RunMetrics &m, F &&f)
{
    f.integer("cycles", m.cycles);
    f.integer("deliveredPackets", m.deliveredPackets);
    f.integer("deliveredFlits", m.deliveredFlits);
    f.integer("deliveredBits", m.deliveredBits);
    f.integer("cpuPackets", m.cpuPackets);
    f.integer("gpuPackets", m.gpuPackets);
    f.real("throughputFlitsPerCycle", m.throughputFlitsPerCycle);
    f.real("throughputGbps", m.throughputGbps);
    f.real("avgLatencyCycles", m.avgLatencyCycles);
    f.real("cpuLatencyCycles", m.cpuLatencyCycles);
    f.real("gpuLatencyCycles", m.gpuLatencyCycles);
    f.real("totalEnergyJ", m.totalEnergyJ);
    f.real("energyPerBitPj", m.energyPerBitPj);
    f.real("laserPowerW", m.laserPowerW);
    f.integer("corruptedPackets", m.corruptedPackets);
    f.integer("reservationDrops", m.reservationDrops);
    f.integer("retransmittedPackets", m.retransmittedPackets);
    f.integer("ackTimeouts", m.ackTimeouts);
    f.integer("droppedPackets", m.droppedPackets);
    f.integer("thermalUnlockedCycles", m.thermalUnlockedCycles);
    for (std::size_t s = 0; s < m.residency.size(); ++s)
        f.real("residency" + std::to_string(s), m.residency[s]);
}

/** Visitor collecting (name, value) descriptors for rendering. */
struct CollectFields
{
    std::vector<MetricField> fields;

    void
    integer(const char *name, std::uint64_t &v)
    {
        fields.push_back({name, true, v, 0.0});
    }

    void
    real(const std::string &name, double &v)
    {
        fields.push_back({name, false, 0, v});
    }
};

/** Visitor assigning parsed cells back into a RunMetrics. */
struct AssignFields
{
    const std::vector<std::string> &cells;
    std::size_t next = 0;
    bool ok = true;

    void
    integer(const char *, std::uint64_t &v)
    {
        if (!ok || next >= cells.size() ||
            !parseU64(cells[next], v))
            ok = false;
        ++next;
    }

    void
    real(const std::string &, double &v)
    {
        if (!ok || next >= cells.size() ||
            !parseDouble(cells[next], v))
            ok = false;
        ++next;
    }
};

} // namespace

std::vector<MetricField>
metricFields(const RunMetrics &m)
{
    CollectFields collect;
    // The visitor takes mutable refs (shared with the parser); rendering
    // only reads them.
    visitMetricFields(const_cast<RunMetrics &>(m), collect);
    return std::move(collect.fields);
}

bool
parseMetricCells(const std::vector<std::string> &cells, RunMetrics &out)
{
    RunMetrics parsed;
    AssignFields assign{cells};
    visitMetricFields(parsed, assign);
    if (!assign.ok || assign.next != cells.size())
        return false;
    parsed.configName = out.configName;
    parsed.pairLabel = out.pairLabel;
    out = parsed;
    return true;
}

std::string
formatMetricValue(const MetricField &f)
{
    if (f.isInteger)
        return std::to_string(f.u);
    std::ostringstream oss;
    oss << std::setprecision(std::numeric_limits<double>::max_digits10)
        << f.d;
    return oss.str();
}

std::string
csvHeader(const std::vector<std::string> &key_columns)
{
    std::string line;
    for (const std::string &key : key_columns) {
        if (!line.empty())
            line += ",";
        line += key;
    }
    for (const MetricField &f : metricFields(RunMetrics{}))
        line += "," + f.name;
    return line;
}

std::string
csvRow(const std::vector<std::string> &key_cells, const RunMetrics &m)
{
    std::string line;
    for (const std::string &cell : key_cells) {
        if (!line.empty())
            line += ",";
        line += cell;
    }
    for (const MetricField &f : metricFields(m))
        line += "," + formatMetricValue(f);
    return line;
}

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ','))
        cells.push_back(cell);
    return cells;
}

} // namespace metrics
} // namespace pearl
