#include "metrics/csv.hpp"

#include <iomanip>
#include <limits>
#include <sstream>

namespace pearl {
namespace metrics {

std::vector<MetricField>
metricFields(const RunMetrics &m)
{
    std::vector<MetricField> f;
    auto addU = [&f](const char *n, std::uint64_t v) {
        f.push_back({n, true, v, 0.0});
    };
    auto addD = [&f](const std::string &n, double v) {
        f.push_back({n, false, 0, v});
    };
    addU("cycles", m.cycles);
    addU("deliveredPackets", m.deliveredPackets);
    addU("deliveredFlits", m.deliveredFlits);
    addU("deliveredBits", m.deliveredBits);
    addU("cpuPackets", m.cpuPackets);
    addU("gpuPackets", m.gpuPackets);
    addD("throughputFlitsPerCycle", m.throughputFlitsPerCycle);
    addD("throughputGbps", m.throughputGbps);
    addD("avgLatencyCycles", m.avgLatencyCycles);
    addD("cpuLatencyCycles", m.cpuLatencyCycles);
    addD("gpuLatencyCycles", m.gpuLatencyCycles);
    addD("totalEnergyJ", m.totalEnergyJ);
    addD("energyPerBitPj", m.energyPerBitPj);
    addD("laserPowerW", m.laserPowerW);
    addU("corruptedPackets", m.corruptedPackets);
    addU("reservationDrops", m.reservationDrops);
    addU("retransmittedPackets", m.retransmittedPackets);
    addU("ackTimeouts", m.ackTimeouts);
    addU("droppedPackets", m.droppedPackets);
    addU("thermalUnlockedCycles", m.thermalUnlockedCycles);
    for (std::size_t s = 0; s < m.residency.size(); ++s)
        addD("residency" + std::to_string(s), m.residency[s]);
    return f;
}

std::string
formatMetricValue(const MetricField &f)
{
    if (f.isInteger)
        return std::to_string(f.u);
    std::ostringstream oss;
    oss << std::setprecision(std::numeric_limits<double>::max_digits10)
        << f.d;
    return oss.str();
}

std::string
csvHeader(const std::vector<std::string> &key_columns)
{
    std::string line;
    for (const std::string &key : key_columns) {
        if (!line.empty())
            line += ",";
        line += key;
    }
    for (const MetricField &f : metricFields(RunMetrics{}))
        line += "," + f.name;
    return line;
}

std::string
csvRow(const std::vector<std::string> &key_cells, const RunMetrics &m)
{
    std::string line;
    for (const std::string &cell : key_cells) {
        if (!line.empty())
            line += ",";
        line += cell;
    }
    for (const MetricField &f : metricFields(m))
        line += "," + formatMetricValue(f);
    return line;
}

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ','))
        cells.push_back(cell);
    return cells;
}

} // namespace metrics
} // namespace pearl
