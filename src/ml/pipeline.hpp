/**
 * @file
 * The offline ML training pipeline (Section IV-A).
 *
 * Reproduces the paper's procedure:
 *  1. collect features over the 36 training pairs with *random*
 *     wavelength states (so no policy biases the data);
 *  2. fit ridge models over a lambda grid, tune lambda on the 4
 *     validation pairs (NRMSE);
 *  3. second pass: re-collect training data with the first model driving
 *     the wavelength states ("designed to best mimic the testing
 *     environment"), refit;
 *  4. evaluate NRMSE and state-selection accuracy on the 16 test pairs.
 */

#ifndef PEARL_ML_PIPELINE_HPP
#define PEARL_ML_PIPELINE_HPP

#include <cstdint>
#include <vector>

#include "core/arch_config.hpp"
#include "core/dba.hpp"
#include "core/power_policy.hpp"
#include "core/system.hpp"
#include "ml/policy.hpp"
#include "ml/ridge.hpp"
#include "traffic/suite.hpp"

namespace pearl {
namespace ml {

/** Pipeline configuration. */
struct PipelineConfig
{
    std::uint64_t reservationWindow = 500;
    std::uint64_t simCycles = 40000;     //!< cycles per benchmark pair
    std::vector<double> lambdaGrid = {1e-2, 1e-1, 1.0, 10.0, 100.0, 1e3};
    bool secondPass = true;
    std::uint64_t seed = 7;
    int maxTrainPairs = 0;               //!< 0 = use all 36
    int maxValPairs = 0;                 //!< 0 = use all 4

    core::PearlConfig pearl;             //!< RW is overridden per run
    core::SystemConfig system;
    core::DbaConfig dba;
    MlPolicyConfig policy;               //!< 8WL excluded during training
};

/** Result of the training pipeline. */
struct PipelineResult
{
    RidgeRegression model;
    double bestLambda = 0.0;
    double validationNrmse = 0.0;
    std::size_t trainSamples = 0;
    std::size_t valSamples = 0;
};

/** Offline evaluation of a trained model on a dataset. */
struct EvalResult
{
    double nrmse = 0.0;
    /** Fraction of windows where the state chosen from the prediction
     *  matches the state the true label would have chosen (Eq. 7). */
    double stateAccuracy = 0.0;
    /** Same, counting only windows whose true demand needs 64 WL. */
    double topStateAccuracy = 0.0;
    std::size_t samples = 0;
};

/** Orchestrates data collection, fitting and evaluation. */
class TrainingPipeline
{
  public:
    TrainingPipeline(const traffic::BenchmarkSuite &suite,
                     PipelineConfig cfg);

    /** Run the full train/validate procedure. */
    PipelineResult run();

    /**
     * Simulate one benchmark pair under `policy` and return the labelled
     * window dataset.
     */
    Dataset collect(const traffic::BenchmarkPair &pair,
                    core::PowerPolicy &policy, std::uint64_t seed) const;

    /** Collect a dataset over several pairs. */
    Dataset collectAll(const std::vector<traffic::BenchmarkPair> &pairs,
                       core::PowerPolicy &policy) const;

    /** Evaluate a model on a dataset with Equation 7 state selection. */
    EvalResult evaluate(const RidgeRegression &model,
                        const Dataset &data) const;

    const PipelineConfig &config() const { return cfg_; }

  private:
    const traffic::BenchmarkSuite &suite_;
    PipelineConfig cfg_;
};

} // namespace ml
} // namespace pearl

#endif // PEARL_ML_PIPELINE_HPP
