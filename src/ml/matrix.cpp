#include "ml/matrix.hpp"

#include <cmath>

namespace pearl {
namespace ml {

Matrix
Matrix::operator+(const Matrix &o) const
{
    PEARL_ASSERT(rows_ == o.rows_ && cols_ == o.cols_);
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] + o.data_[i];
    return out;
}

Matrix
Matrix::operator*(const Matrix &o) const
{
    PEARL_ASSERT(cols_ == o.rows_);
    Matrix out(rows_, o.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(i, k);
            if (a == 0.0)
                continue;
            for (std::size_t j = 0; j < o.cols_; ++j)
                out(i, j) += a * o(k, j);
        }
    }
    return out;
}

std::vector<double>
Matrix::operator*(const std::vector<double> &v) const
{
    PEARL_ASSERT(cols_ == v.size());
    std::vector<double> out(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < cols_; ++j)
            acc += (*this)(i, j) * v[j];
        out[i] = acc;
    }
    return out;
}

Matrix
Matrix::transpose() const
{
    Matrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t j = 0; j < cols_; ++j)
            out(j, i) = (*this)(i, j);
    }
    return out;
}

Matrix
Matrix::gram() const
{
    Matrix out(cols_, cols_);
    for (std::size_t n = 0; n < rows_; ++n) {
        for (std::size_t i = 0; i < cols_; ++i) {
            const double xi = (*this)(n, i);
            if (xi == 0.0)
                continue;
            for (std::size_t j = i; j < cols_; ++j)
                out(i, j) += xi * (*this)(n, j);
        }
    }
    // Mirror the upper triangle.
    for (std::size_t i = 0; i < cols_; ++i) {
        for (std::size_t j = 0; j < i; ++j)
            out(i, j) = out(j, i);
    }
    return out;
}

std::vector<double>
Matrix::transposeTimes(const std::vector<double> &y) const
{
    PEARL_ASSERT(rows_ == y.size());
    std::vector<double> out(cols_, 0.0);
    for (std::size_t n = 0; n < rows_; ++n) {
        const double yn = y[n];
        if (yn == 0.0)
            continue;
        for (std::size_t j = 0; j < cols_; ++j)
            out[j] += (*this)(n, j) * yn;
    }
    return out;
}

std::vector<double>
Matrix::choleskySolve(Matrix a, std::vector<double> b)
{
    const std::size_t n = a.rows();
    PEARL_ASSERT(a.cols() == n && b.size() == n);

    // In-place lower-triangular Cholesky factorisation A = L L^T.
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a(j, j);
        for (std::size_t k = 0; k < j; ++k)
            diag -= a(j, k) * a(j, k);
        if (diag <= 0.0) {
            fatal("choleskySolve: matrix is not positive definite "
                  "(pivot ", diag, " at ", j, "); increase lambda");
        }
        const double ljj = std::sqrt(diag);
        a(j, j) = ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double v = a(i, j);
            for (std::size_t k = 0; k < j; ++k)
                v -= a(i, k) * a(j, k);
            a(i, j) = v / ljj;
        }
    }

    // Forward substitution L z = b.
    for (std::size_t i = 0; i < n; ++i) {
        double v = b[i];
        for (std::size_t k = 0; k < i; ++k)
            v -= a(i, k) * b[k];
        b[i] = v / a(i, i);
    }
    // Back substitution L^T x = z.
    for (std::size_t ii = n; ii-- > 0;) {
        double v = b[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            v -= a(k, ii) * b[k];
        b[ii] = v / a(ii, ii);
    }
    return b;
}

} // namespace ml
} // namespace pearl
