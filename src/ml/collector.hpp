/**
 * @file
 * Turns the PEARL network's window-record stream into a labelled dataset.
 *
 * The features of window k are labelled with the packets injected during
 * window k+1 of the *same* router (Section IV-A: the label is the
 * injected-packet count of the window being predicted).
 */

#ifndef PEARL_ML_COLLECTOR_HPP
#define PEARL_ML_COLLECTOR_HPP

#include <optional>
#include <vector>

#include "core/network.hpp"
#include "ml/features.hpp"
#include "ml/ridge.hpp"

namespace pearl {
namespace ml {

/** What the model is trained to predict. */
enum class LabelKind
{
    InjectedPackets,  //!< the paper's choice (Section IV-A)
    BufferUtilization //!< the rejected alternative (ablation)
};

/** Collects (features, next-window label) pairs per router. */
class WindowDatasetCollector
{
  public:
    /**
     * @param num_routers routers being observed.
     * @param l3_router   node id of the L3 router (feature 1).
     * @param label       quantity used as the label.
     */
    WindowDatasetCollector(int num_routers, int l3_router,
                           LabelKind label = LabelKind::InjectedPackets)
        : l3Router_(l3_router), label_(label),
          pending_(static_cast<std::size_t>(num_routers))
    {}

    /** Feed one closed window. */
    void
    observe(const core::WindowRecord &rec)
    {
        auto &slot = pending_[static_cast<std::size_t>(rec.router)];
        if (slot) {
            double label;
            if (label_ == LabelKind::InjectedPackets) {
                label =
                    static_cast<double>(rec.telemetry.packetsInjected);
            } else {
                // Mean total input-buffer occupancy of the window; this
                // is the label the paper rejects because it depends on
                // the wavelength state itself.
                const double w = rec.windowCycles
                                     ? static_cast<double>(
                                           rec.windowCycles)
                                     : 1.0;
                label = (rec.telemetry.cpuCoreBufOccupancy +
                         rec.telemetry.gpuCoreBufOccupancy) / w;
            }
            data_.add(std::move(*slot), label);
        }
        slot = FeatureExtractor::extract(rec, rec.router == l3Router_);
    }

    /** A callback bound to this collector for PearlNetwork. */
    core::WindowCollector
    callback()
    {
        return [this](const core::WindowRecord &rec) { observe(rec); };
    }

    const Dataset &dataset() const { return data_; }
    Dataset takeDataset() { return std::move(data_); }

  private:
    int l3Router_;
    LabelKind label_;
    std::vector<std::optional<std::vector<double>>> pending_;
    Dataset data_;
};

} // namespace ml
} // namespace pearl

#endif // PEARL_ML_COLLECTOR_HPP
