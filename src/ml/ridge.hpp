/**
 * @file
 * Ridge (L2-regularised) linear regression — Equations 4-6 of the paper.
 *
 * The model predicts the number of packets injected into a router over
 * the next reservation window from the 30 Table III features.  Features
 * are standardised (zero mean, unit variance) before solving the normal
 * equations  w = (lambda I + X^T X)^{-1} X^T t  with a Cholesky
 * factorisation; the intercept absorbs the label mean and is not
 * regularised.
 */

#ifndef PEARL_ML_RIDGE_HPP
#define PEARL_ML_RIDGE_HPP

#include <istream>
#include <ostream>
#include <vector>

#include "ml/matrix.hpp"

namespace pearl {
namespace ml {

/** A training/evaluation dataset: one row per (features, label) sample. */
struct Dataset
{
    std::vector<std::vector<double>> features;
    std::vector<double> labels;

    std::size_t size() const { return labels.size(); }
    bool empty() const { return labels.empty(); }

    void
    add(std::vector<double> x, double y)
    {
        features.push_back(std::move(x));
        labels.push_back(y);
    }

    /** Append all samples of `other`. */
    void
    append(const Dataset &other)
    {
        features.insert(features.end(), other.features.begin(),
                        other.features.end());
        labels.insert(labels.end(), other.labels.begin(),
                      other.labels.end());
    }
};

/** Ridge-regression model. */
class RidgeRegression
{
  public:
    /** Fit on `data` with regularisation `lambda` (Equation 6). */
    void fit(const Dataset &data, double lambda);

    /** Predict the label for one feature vector. */
    double predict(const std::vector<double> &x) const;

    /** Predictions for every row of `data`. */
    std::vector<double> predictAll(const Dataset &data) const;

    /** Serialise the trained model (text format). */
    void save(std::ostream &os) const;

    /** Load a model saved by save().  @return false on format error. */
    bool load(std::istream &is);

    bool trained() const { return !weights_.empty(); }
    double lambda() const { return lambda_; }
    const std::vector<double> &weights() const { return weights_; }
    double intercept() const { return intercept_; }

  private:
    std::vector<double> mean_;
    std::vector<double> scale_; //!< per-feature std (1 where degenerate)
    std::vector<double> weights_;
    double intercept_ = 0.0;
    double lambda_ = 0.0;
};

/**
 * Normalised root-mean-square error in the paper's convention: 1 is a
 * perfect fit, -inf the worst (MATLAB goodness-of-fit NRMSE):
 *   1 - ||y - yhat|| / ||y - mean(y)||.
 */
double nrmseFit(const std::vector<double> &truth,
                const std::vector<double> &predicted);

} // namespace ml
} // namespace pearl

#endif // PEARL_ML_RIDGE_HPP
