#include "ml/ridge.hpp"

#include <cmath>
#include <iomanip>

#include <string>

#include "common/log.hpp"

namespace pearl {
namespace ml {

void
RidgeRegression::fit(const Dataset &data, double lambda)
{
    PEARL_ASSERT(!data.empty(), "cannot fit on an empty dataset");
    PEARL_ASSERT(lambda >= 0.0);
    const std::size_t n = data.size();
    const std::size_t d = data.features.front().size();

    // Feature standardisation.
    mean_.assign(d, 0.0);
    scale_.assign(d, 0.0);
    for (const auto &row : data.features) {
        PEARL_ASSERT(row.size() == d, "ragged feature rows");
        for (std::size_t j = 0; j < d; ++j)
            mean_[j] += row[j];
    }
    for (std::size_t j = 0; j < d; ++j)
        mean_[j] /= static_cast<double>(n);
    for (const auto &row : data.features) {
        for (std::size_t j = 0; j < d; ++j) {
            const double c = row[j] - mean_[j];
            scale_[j] += c * c;
        }
    }
    for (std::size_t j = 0; j < d; ++j) {
        scale_[j] = std::sqrt(scale_[j] / static_cast<double>(n));
        if (scale_[j] < 1e-12)
            scale_[j] = 1.0; // constant feature: centred to 0, weight ~0
    }

    // Centred label; the intercept is the label mean (unregularised).
    double ymean = 0.0;
    for (double y : data.labels)
        ymean += y;
    ymean /= static_cast<double>(n);

    // Build standardised design and the normal equations.
    Matrix x(n, d);
    std::vector<double> yc(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < d; ++j)
            x(i, j) = (data.features[i][j] - mean_[j]) / scale_[j];
        yc[i] = data.labels[i] - ymean;
    }

    Matrix a = x.gram();
    for (std::size_t j = 0; j < d; ++j)
        a(j, j) += lambda > 0.0 ? lambda : 1e-9;
    std::vector<double> b = x.transposeTimes(yc);

    weights_ = Matrix::choleskySolve(std::move(a), std::move(b));
    intercept_ = ymean;
    lambda_ = lambda;
}

double
RidgeRegression::predict(const std::vector<double> &x) const
{
    PEARL_ASSERT(trained(), "predict before fit");
    PEARL_ASSERT(x.size() == weights_.size());
    double y = intercept_;
    for (std::size_t j = 0; j < x.size(); ++j)
        y += weights_[j] * (x[j] - mean_[j]) / scale_[j];
    return y;
}

std::vector<double>
RidgeRegression::predictAll(const Dataset &data) const
{
    std::vector<double> out;
    out.reserve(data.size());
    for (const auto &row : data.features)
        out.push_back(predict(row));
    return out;
}

void
RidgeRegression::save(std::ostream &os) const
{
    PEARL_ASSERT(trained(), "save before fit");
    os << "pearl-ridge-v1\n" << weights_.size() << " "
       << std::setprecision(17) << lambda_ << " " << intercept_ << "\n";
    for (std::size_t j = 0; j < weights_.size(); ++j)
        os << mean_[j] << " " << scale_[j] << " " << weights_[j] << "\n";
}

bool
RidgeRegression::load(std::istream &is)
{
    std::string magic;
    std::size_t d = 0;
    if (!(is >> magic >> d >> lambda_ >> intercept_) ||
        magic != "pearl-ridge-v1" || d == 0 || d > 10000) {
        return false;
    }
    mean_.assign(d, 0.0);
    scale_.assign(d, 1.0);
    weights_.assign(d, 0.0);
    for (std::size_t j = 0; j < d; ++j) {
        if (!(is >> mean_[j] >> scale_[j] >> weights_[j]))
            return false;
    }
    return true;
}

double
nrmseFit(const std::vector<double> &truth,
         const std::vector<double> &predicted)
{
    PEARL_ASSERT(truth.size() == predicted.size() && !truth.empty());
    double mean = 0.0;
    for (double y : truth)
        mean += y;
    mean /= static_cast<double>(truth.size());

    double err = 0.0, dev = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        err += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
        dev += (truth[i] - mean) * (truth[i] - mean);
    }
    if (dev < 1e-12)
        return err < 1e-12 ? 1.0 : -std::sqrt(err);
    return 1.0 - std::sqrt(err) / std::sqrt(dev);
}

} // namespace ml
} // namespace pearl
