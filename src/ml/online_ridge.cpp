#include "ml/online_ridge.hpp"

#include <cmath>

namespace pearl {
namespace ml {

// Internally the feature vector is augmented with a constant 1 so the
// intercept is learned by the same RLS recursion as the weights:
// index 0 of the augmented space is the bias.

OnlineRidge::OnlineRidge(std::size_t dims, double lambda,
                         double forgetting)
    : dims_(dims), forgetting_(forgetting), w_(dims, 0.0),
      p_((dims + 1) * (dims + 1), 0.0), px_(dims + 1, 0.0)
{
    PEARL_ASSERT(dims_ > 0);
    PEARL_ASSERT(lambda > 0.0);
    PEARL_ASSERT(forgetting_ > 0.0 && forgetting_ <= 1.0);
    const std::size_t n = dims_ + 1;
    // P = (lambda I)^{-1} over the augmented space.
    for (std::size_t i = 0; i < n; ++i)
        p_[i * n + i] = 1.0 / lambda;
}

void
OnlineRidge::warmStart(const RidgeRegression &offline)
{
    PEARL_ASSERT(offline.trained());
    PEARL_ASSERT(offline.weights().size() == dims_);
    // The offline model predicts
    //   y = intercept + sum_j w_j (x_j - mean_j) / scale_j
    // which is an affine function of the raw features.  Recover it by
    // probing: the bias is the prediction at x = 0, the raw weights the
    // finite differences along each axis.
    const std::vector<double> zero(dims_, 0.0);
    bias_ = offline.predict(zero);
    for (std::size_t j = 0; j < dims_; ++j) {
        std::vector<double> e(dims_, 0.0);
        e[j] = 1.0;
        w_[j] = offline.predict(e) - bias_;
    }
}

void
OnlineRidge::update(const std::vector<double> &x, double y)
{
    PEARL_ASSERT(x.size() == dims_);
    const std::size_t n = dims_ + 1;

    // Augmented sample z = [1, x...].
    auto z = [&x](std::size_t i) { return i == 0 ? 1.0 : x[i - 1]; };

    // Classic RLS with forgetting factor f:
    //   k = P z / (f + z' P z)
    //   w += k (y - w' z)
    //   P = (P - k z' P) / f
    double zpz = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        const double *row = &p_[i * n];
        for (std::size_t j = 0; j < n; ++j)
            acc += row[j] * z(j);
        px_[i] = acc;
        zpz += z(i) * acc;
    }
    const double denom = forgetting_ + zpz;
    if (denom <= 1e-12)
        return; // numerically degenerate sample; skip

    const double err = y - predict(x);

    bias_ += px_[0] / denom * err;
    for (std::size_t j = 0; j < dims_; ++j)
        w_[j] += px_[j + 1] / denom * err;

    for (std::size_t i = 0; i < n; ++i) {
        const double ki = px_[i] / denom;
        double *row = &p_[i * n];
        for (std::size_t j = 0; j < n; ++j)
            row[j] = (row[j] - ki * px_[j]) / forgetting_;
    }
    ++updates_;
}

double
OnlineRidge::predict(const std::vector<double> &x) const
{
    PEARL_ASSERT(x.size() == dims_);
    double y = bias_;
    for (std::size_t j = 0; j < dims_; ++j)
        y += w_[j] * x[j];
    return y;
}

} // namespace ml
} // namespace pearl
