/**
 * @file
 * Guardrails around the ML power policy (DESIGN.md "Resilience").
 *
 * The ridge model is trained offline; nothing stops a stale or badly
 * trained model from systematically under-predicting demand and parking
 * the fabric in a starving low-wavelength state.  `GuardedPolicy` wraps
 * `MlPowerPolicy` with three defenses, per router:
 *
 *  1. *Clamping*: a non-finite, negative or absurdly large prediction is
 *     clamped and the state recomputed from the clamped demand
 *     (Equation 7), so one bad inference never commands a nonsense
 *     state.
 *  2. *Online error tracking*: at every window boundary the previous
 *     window's prediction is compared against the packets actually
 *     injected (the same label the trainer uses); the normalised error
 *     `|pred - actual| / max(pred, actual, floor)` feeds a short sliding
 *     window.
 *  3. *Reactive fallback with hysteresis*: when the windowed mean error
 *     stays above `enterError` for `enterStreak` consecutive windows the
 *     router falls back to the paper's reactive threshold policy
 *     (Algorithm 1) — which needs no model — and returns to ML only
 *     after the (still shadow-evaluated) model's error stays below
 *     `exitError` for `exitStreak` windows.
 *
 * When the guard never trips, the chosen states — and therefore the run
 * metrics — are bit-identical to a bare `MlPowerPolicy` run: the wrapped
 * policy is evaluated exactly once per window either way, and neither
 * wrapper nor fallback consumes randomness.  The network reports
 * transitions through `core::PolicyFeedback` into telemetry,
 * NetworkStats and `policy_fallback` trace events.
 */

#ifndef PEARL_ML_GUARDED_POLICY_HPP
#define PEARL_ML_GUARDED_POLICY_HPP

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/env.hpp"
#include "core/power_policy.hpp"
#include "ml/policy.hpp"

namespace pearl {
namespace ml {

/** Guardrail thresholds (the PEARL_GUARD_* environment knobs). */
struct GuardrailConfig
{
    /** Sliding-window length of per-window error samples. */
    int errorWindow = 8;
    /** Windowed mean error above this counts against the model. */
    double enterError = 0.70;
    /** Windowed mean error below this counts toward recovery. */
    double exitError = 0.40;
    /** Consecutive bad windows before falling back (K). */
    int enterStreak = 4;
    /** Consecutive good windows before returning to ML (hysteresis). */
    int exitStreak = 8;
    /** Error-normalisation floor in packets: tiny windows where both
     *  prediction and truth are a handful of packets never produce
     *  large relative errors. */
    double floorPackets = 8.0;
    /** Predictions above this many packets per window are insane for
     *  any supported configuration and are clamped. */
    double maxPredictedPackets = 1.0e6;

    /**
     * Defaults + PEARL_GUARD_ERROR_WINDOW / PEARL_GUARD_ENTER_ERROR /
     * PEARL_GUARD_EXIT_ERROR / PEARL_GUARD_ENTER_STREAK /
     * PEARL_GUARD_EXIT_STREAK / PEARL_GUARD_MAX_PREDICTION, with the
     * strict warn-and-fallback parsing of common/env.hpp.
     */
    static GuardrailConfig
    fromEnv()
    {
        GuardrailConfig cfg;
        cfg.errorWindow = static_cast<int>(envU64(
            "PEARL_GUARD_ERROR_WINDOW",
            static_cast<std::uint64_t>(cfg.errorWindow)));
        cfg.enterError =
            envDouble("PEARL_GUARD_ENTER_ERROR", cfg.enterError);
        cfg.exitError =
            envDouble("PEARL_GUARD_EXIT_ERROR", cfg.exitError);
        cfg.enterStreak = static_cast<int>(envU64(
            "PEARL_GUARD_ENTER_STREAK",
            static_cast<std::uint64_t>(cfg.enterStreak)));
        cfg.exitStreak = static_cast<int>(envU64(
            "PEARL_GUARD_EXIT_STREAK",
            static_cast<std::uint64_t>(cfg.exitStreak)));
        cfg.maxPredictedPackets = envDouble("PEARL_GUARD_MAX_PREDICTION",
                                            cfg.maxPredictedPackets);
        return cfg;
    }
};

/** Validate guardrail thresholds. */
inline Validation
validate(const GuardrailConfig &cfg)
{
    if (cfg.errorWindow <= 0)
        return configError("guard.errorWindow must be > 0 windows, "
                           "got ", cfg.errorWindow);
    if (!std::isfinite(cfg.enterError) || cfg.enterError <= 0.0 ||
        cfg.enterError > 1.0)
        return configError("guard.enterError must be in (0, 1], got ",
                           cfg.enterError);
    if (!std::isfinite(cfg.exitError) || cfg.exitError < 0.0 ||
        cfg.exitError >= cfg.enterError)
        return configError("guard.exitError must be in [0, enterError) "
                           "for hysteresis, got ", cfg.exitError,
                           " with enterError=", cfg.enterError);
    if (cfg.enterStreak <= 0 || cfg.exitStreak <= 0)
        return configError("guard streaks must be > 0 windows, got "
                           "enter=", cfg.enterStreak, " exit=",
                           cfg.exitStreak);
    if (!std::isfinite(cfg.floorPackets) || cfg.floorPackets <= 0.0)
        return configError("guard.floorPackets must be > 0, got ",
                           cfg.floorPackets);
    if (!std::isfinite(cfg.maxPredictedPackets) ||
        cfg.maxPredictedPackets <= 0.0)
        return configError("guard.maxPredictedPackets must be > 0, "
                           "got ", cfg.maxPredictedPackets);
    return {};
}

/** MlPowerPolicy wrapped in clamping + error-tracked reactive fallback. */
class GuardedPolicy : public core::PowerPolicy
{
  public:
    /**
     * @param model      trained ridge model (not owned; must outlive).
     * @param ml_cfg     Equation 7 selection-rule configuration.
     * @param guard      guardrail thresholds (validated here).
     * @param reactive   fallback thresholds (Algorithm 1 step 8).
     */
    explicit GuardedPolicy(const RidgeRegression *model,
                           MlPolicyConfig ml_cfg = MlPolicyConfig{},
                           GuardrailConfig guard = GuardrailConfig{},
                           core::ReactiveThresholds reactive = {})
        : ml_(model, ml_cfg), reactive_(reactive), cfg_(guard)
    {
        throwIfInvalid(ml::validate(cfg_));
    }

    photonic::WlState
    nextState(const core::WindowObservation &obs) override
    {
        RouterGuard &g = guardFor(obs.router);

        // Always evaluate (shadow-run) the ML policy: when healthy its
        // decision is used verbatim, and during fallback its error keeps
        // being scored so recovery is possible.  The decision trace is
        // forwarded so traced runs still show the prediction.
        core::WindowObservation ml_obs = obs;
        core::DecisionTrace decision;
        ml_obs.decision = &decision;
        ml_obs.feedback = nullptr;
        photonic::WlState ml_state = ml_.nextState(ml_obs);
        if (obs.decision)
            *obs.decision = decision;

        // Defense 1: clamp an insane prediction and recompute Eq. 7.
        double pred = decision.predictedPackets;
        bool clamped = false;
        if (!std::isfinite(pred) || pred < 0.0) {
            pred = 0.0;
            clamped = true;
        } else if (pred > cfg_.maxPredictedPackets) {
            pred = cfg_.maxPredictedPackets;
            clamped = true;
        }
        if (clamped)
            ml_state = MlPowerPolicy::stateForDemand(
                pred, obs.windowCycles, ml_.config());

        // Defense 2: score the *previous* window's prediction against
        // the injections that actually happened (obs.telemetry covers
        // the window that just closed).
        if (g.hasPrediction && obs.telemetry) {
            const double actual = static_cast<double>(
                obs.telemetry->packetsInjected);
            const double denom = std::max(
                {g.lastPrediction, actual, cfg_.floorPackets});
            g.pushError(
                std::min(1.0, std::abs(g.lastPrediction - actual) /
                                  denom),
                cfg_.errorWindow);
        }
        g.lastPrediction = pred;
        g.hasPrediction = true;

        // Defense 3: hysteresis between ML and the reactive fallback.
        bool entered = false;
        bool exited = false;
        if (g.sampleCount() >= cfg_.errorWindow) {
            const double err = g.meanError();
            if (err > cfg_.enterError) {
                ++g.badStreak;
                g.goodStreak = 0;
            } else if (err < cfg_.exitError) {
                ++g.goodStreak;
                g.badStreak = 0;
            } else {
                g.badStreak = 0;
                g.goodStreak = 0;
            }
            if (!g.fallback && g.badStreak >= cfg_.enterStreak) {
                g.fallback = true;
                g.goodStreak = 0;
                entered = true;
            } else if (g.fallback && g.goodStreak >= cfg_.exitStreak) {
                g.fallback = false;
                g.badStreak = 0;
                exited = true;
            }
        }

        if (obs.feedback) {
            obs.feedback->guarded = true;
            obs.feedback->fallbackActive = g.fallback;
            obs.feedback->enteredFallback = entered;
            obs.feedback->exitedFallback = exited;
            obs.feedback->clampedPrediction = clamped;
            obs.feedback->windowError = g.meanError();
        }

        return g.fallback ? reactive_.nextState(obs) : ml_state;
    }

    const char *name() const override { return "guarded-ml"; }

    const GuardrailConfig &guardrails() const { return cfg_; }

    /** Whether router `r`'s guard is currently in fallback. */
    bool
    inFallback(int router) const
    {
        return router < static_cast<int>(guards_.size()) &&
               guards_[static_cast<std::size_t>(router)].fallback;
    }

  private:
    /** Per-router guard state (routers are observed independently). */
    struct RouterGuard
    {
        double lastPrediction = 0.0;
        bool hasPrediction = false;
        std::vector<double> errors; //!< ring buffer of error samples
        int errorNext = 0;          //!< ring write cursor
        double errorSum = 0.0;
        int badStreak = 0;
        int goodStreak = 0;
        bool fallback = false;

        void
        pushError(double e, int window)
        {
            if (static_cast<int>(errors.size()) < window) {
                errors.push_back(e);
                errorSum += e;
                return;
            }
            errorSum += e - errors[static_cast<std::size_t>(errorNext)];
            errors[static_cast<std::size_t>(errorNext)] = e;
            errorNext = (errorNext + 1) % window;
        }

        int sampleCount() const
        {
            return static_cast<int>(errors.size());
        }

        double
        meanError() const
        {
            return errors.empty()
                       ? 0.0
                       : errorSum /
                             static_cast<double>(errors.size());
        }
    };

    RouterGuard &
    guardFor(int router)
    {
        if (router >= static_cast<int>(guards_.size()))
            guards_.resize(static_cast<std::size_t>(router) + 1);
        return guards_[static_cast<std::size_t>(router)];
    }

    MlPowerPolicy ml_;
    core::ReactivePolicy reactive_;
    GuardrailConfig cfg_;
    std::vector<RouterGuard> guards_;
};

} // namespace ml
} // namespace pearl

#endif // PEARL_ML_GUARDED_POLICY_HPP
