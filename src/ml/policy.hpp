/**
 * @file
 * The proactive ML power-scaling policy (Section III-D).
 *
 * At each reservation-window boundary the policy extracts the closing
 * window's 30 features, predicts the number of packets the router will
 * inject in the next window with the ridge model, converts that demand
 * into bits, and picks the smallest wavelength state whose window
 * capacity covers it (Equation 7).  The 8WL low state can be excluded to
 * reproduce the paper's "no 8WL" configurations.
 */

#ifndef PEARL_ML_POLICY_HPP
#define PEARL_ML_POLICY_HPP

#include <algorithm>

#include "core/power_policy.hpp"
#include "ml/features.hpp"
#include "ml/ridge.hpp"

namespace pearl {
namespace ml {

/** Tunables of the Equation 7 state-selection rule. */
struct MlPolicyConfig
{
    bool enable8Wl = true;
    /** Mean packet size in bits used to convert packets to demand
     *  (requests are 128 b, responses 640 b; the default assumes an even
     *  mix). */
    double avgPacketBits = 384.0;
    /** Demand-to-capacity overcommit: the serializer is work-conserving
     *  and bursts tolerate brief queueing, so a state is considered
     *  adequate when predicted demand <= capacity * this factor. */
    double utilizationTarget = 1.45;
};

/** Proactive regression-driven wavelength-state policy. */
class MlPowerPolicy : public core::PowerPolicy
{
  public:
    /**
     * @param model trained ridge model (not owned; must outlive).
     * @param cfg   selection-rule configuration.
     */
    explicit MlPowerPolicy(const RidgeRegression *model,
                           MlPolicyConfig cfg = MlPolicyConfig{})
        : model_(model), cfg_(cfg)
    {
        PEARL_ASSERT(model_ && model_->trained(),
                     "MlPowerPolicy requires a trained model");
    }

    photonic::WlState
    nextState(const core::WindowObservation &obs) override
    {
        PEARL_ASSERT(obs.telemetry, "observation lacks telemetry");
        const std::vector<double> x = FeatureExtractor::extract(
            *obs.telemetry, obs.windowCycles, obs.isL3Router);
        const double predicted = std::max(0.0, model_->predict(x));
        if (obs.decision) {
            obs.decision->hasPrediction = true;
            obs.decision->predictedPackets = predicted;
            obs.decision->features = x;
        }
        return stateForDemand(predicted, obs.windowCycles, cfg_);
    }

    const char *name() const override { return "ml"; }

    const MlPolicyConfig &config() const { return cfg_; }

    /**
     * Equation 7: smallest state whose usable window capacity covers the
     * predicted injected packets.  Shared with the offline evaluation of
     * state-selection accuracy.
     */
    static photonic::WlState
    stateForDemand(double predicted_packets, std::uint64_t window_cycles,
                   const MlPolicyConfig &cfg)
    {
        const double demand_bits = predicted_packets * cfg.avgPacketBits;
        const int lo = cfg.enable8Wl ? 0 : 1;
        for (int i = lo; i < photonic::kNumWlStates; ++i) {
            const photonic::WlState s = photonic::stateFromIndex(i);
            const double capacity =
                static_cast<double>(photonic::bitsPerCycle(s)) *
                static_cast<double>(window_cycles) * cfg.utilizationTarget;
            if (demand_bits <= capacity)
                return s;
        }
        return photonic::WlState::WL64;
    }

  private:
    const RidgeRegression *model_;
    MlPolicyConfig cfg_;
};

} // namespace ml
} // namespace pearl

#endif // PEARL_ML_POLICY_HPP
