/**
 * @file
 * The 30-feature extractor of Table III.
 *
 * One closed reservation window's RouterTelemetry becomes one feature
 * vector; occupancy integrals are normalised to window-mean utilisations,
 * count features stay raw (standardisation inside the ridge solver takes
 * care of scale).  Feature order is fixed and matches Table III exactly —
 * the tests pin it.
 */

#ifndef PEARL_ML_FEATURES_HPP
#define PEARL_ML_FEATURES_HPP

#include <array>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "sim/telemetry.hpp"

namespace pearl {
namespace ml {

/** Number of features (Table III). */
constexpr int kNumFeatures = 30;

/** Extracts Table III feature vectors from window records. */
class FeatureExtractor
{
  public:
    /** Feature names in order (Table III wording). */
    static const std::array<std::string, kNumFeatures> &names();

    /**
     * Build the feature vector for one closed window.
     * @param rec window record from the PEARL network collector.
     * @param is_l3_router feature 1.
     */
    static std::vector<double> extract(const core::WindowRecord &rec,
                                       bool is_l3_router);

    /** Same, from raw telemetry (used by the online policy). */
    static std::vector<double> extract(const sim::RouterTelemetry &t,
                                       std::uint64_t window_cycles,
                                       bool is_l3_router);
};

} // namespace ml
} // namespace pearl

#endif // PEARL_ML_FEATURES_HPP
