/**
 * @file
 * Hardware cost model of the online ML inference unit (Section IV-B).
 *
 * One prediction is a 30-feature dot product: 30 multiplies and 29 adds
 * on 16-bit values.  Energy per operation follows Horowitz's ISSCC'14
 * numbers (reference [49]); the paper reports 44.6 pJ per prediction,
 * a 5 ns compute time (Synopsys DC estimate) and 178.4 uW of average
 * power at a 500-cycle reservation window.
 */

#ifndef PEARL_ML_COST_MODEL_HPP
#define PEARL_ML_COST_MODEL_HPP

#include <cstdint>

namespace pearl {
namespace ml {

/** Energy/latency model of the router-local inference unit. */
struct MlCostModel
{
    int numFeatures = 30;

    // 16-bit operation energies (Horowitz, ISSCC'14), joules.  These
    // reproduce the paper's split: 132 uW for the multiplies and
    // 46.4 uW for the adds at a 250 ns window.
    double multiplyEnergyJ = 1.1e-12;
    double addEnergyJ = 0.4e-12;

    double computeTimeNs = 5.0; //!< Synopsys DC estimate

    int multiplies() const { return numFeatures; }
    int adds() const { return numFeatures - 1; }

    /** Energy of one prediction, joules (~44.6 pJ for 30 features). */
    double
    inferenceEnergyJ() const
    {
        return multiplies() * multiplyEnergyJ + adds() * addEnergyJ;
    }

    /**
     * Average power when predicting once per reservation window,
     * in watts (~178 uW at RW = 500 cycles of 0.5 ns).
     */
    double
    averagePowerW(std::uint64_t window_cycles,
                  double cycle_seconds = 0.5e-9) const
    {
        const double window_s =
            static_cast<double>(window_cycles) * cycle_seconds;
        return window_s > 0.0 ? inferenceEnergyJ() / window_s : 0.0;
    }

    /** Power of the multiplier array alone (the paper's 132 uW). */
    double
    multiplierPowerW(std::uint64_t window_cycles,
                     double cycle_seconds = 0.5e-9) const
    {
        const double window_s =
            static_cast<double>(window_cycles) * cycle_seconds;
        return window_s > 0.0
                   ? multiplies() * multiplyEnergyJ / window_s
                   : 0.0;
    }
};

} // namespace ml
} // namespace pearl

#endif // PEARL_ML_COST_MODEL_HPP
