#include "ml/features.hpp"

#include "common/log.hpp"

namespace pearl {
namespace ml {

const std::array<std::string, kNumFeatures> &
FeatureExtractor::names()
{
    static const std::array<std::string, kNumFeatures> kNames = {
        "L3 router",
        "CPU Core Input Buffer Utilization",
        "Other Router CPU Input Buffer Utilization",
        "GPU Core Input Buffer Utilization",
        "Other Router GPU Input Buffer Utilization",
        "Outgoing Link Utilization",
        "Number of Packets Sent to a Core",
        "Incoming Packets from Other Routers",
        "Incoming Packets from the Cores",
        "Request Sent",
        "Request Received",
        "Responses Sent",
        "Responses Received",
        "Request CPU L1 instruction",
        "Request CPU L1 data",
        "Request CPU L2 up",
        "Request CPU L2 down",
        "Request GPU L1",
        "Request GPU L2 up",
        "Request GPU L2 down",
        "Request L3",
        "Response CPU L1 instruction",
        "Response CPU L1 data",
        "Response CPU L2 up",
        "Response CPU L2 down",
        "Response GPU L1",
        "Response GPU L2 up",
        "Response GPU L2 down",
        "Response L3",
        "Number of Wavelengths",
    };
    return kNames;
}

std::vector<double>
FeatureExtractor::extract(const core::WindowRecord &rec, bool is_l3_router)
{
    return extract(rec.telemetry, rec.windowCycles, is_l3_router);
}

std::vector<double>
FeatureExtractor::extract(const sim::RouterTelemetry &t,
                          std::uint64_t window_cycles, bool is_l3_router)
{
    const double w =
        window_cycles ? static_cast<double>(window_cycles) : 1.0;

    std::vector<double> x;
    x.reserve(kNumFeatures);
    x.push_back(is_l3_router ? 1.0 : 0.0);                        // 1
    x.push_back(t.cpuCoreBufOccupancy / w);                       // 2
    x.push_back(t.otherRouterCpuBufOccupancy / w);                // 3
    x.push_back(t.gpuCoreBufOccupancy / w);                       // 4
    x.push_back(t.otherRouterGpuBufOccupancy / w);                // 5
    x.push_back(static_cast<double>(t.linkBusyCycles) / w);       // 6
    x.push_back(static_cast<double>(t.packetsToCore));            // 7
    x.push_back(static_cast<double>(t.incomingFromRouters));      // 8
    x.push_back(static_cast<double>(t.incomingFromCores));        // 9
    x.push_back(static_cast<double>(t.requestsSent));             // 10
    x.push_back(static_cast<double>(t.requestsReceived));         // 11
    x.push_back(static_cast<double>(t.responsesSent));            // 12
    x.push_back(static_cast<double>(t.responsesReceived));        // 13

    // Features 14-29: Table III orders requests then responses, with the
    // class order matching sim::MsgClass exactly.
    for (int c = 0; c < sim::kNumMsgClasses; ++c)
        x.push_back(static_cast<double>(t.classCounts[c]));

    x.push_back(static_cast<double>(t.wavelengths));              // 30
    PEARL_ASSERT(static_cast<int>(x.size()) == kNumFeatures);
    return x;
}

} // namespace ml
} // namespace pearl
