/**
 * @file
 * Minimal dense linear algebra for the ridge-regression solver.
 *
 * Row-major double matrix with the operations Equation 6 needs:
 * Gram accumulation (X^T X), matrix-vector products, and a Cholesky
 * solver for the symmetric positive-definite normal equations.
 */

#ifndef PEARL_ML_MATRIX_HPP
#define PEARL_ML_MATRIX_HPP

#include <cstddef>
#include <vector>

#include "common/log.hpp"

namespace pearl {
namespace ml {

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {}

    /** Identity matrix scaled by `diag`. */
    static Matrix
    identity(std::size_t n, double diag = 1.0)
    {
        Matrix m(n, n);
        for (std::size_t i = 0; i < n; ++i)
            m(i, i) = diag;
        return m;
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double &
    operator()(std::size_t r, std::size_t c)
    {
        PEARL_ASSERT(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    double
    operator()(std::size_t r, std::size_t c) const
    {
        PEARL_ASSERT(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    Matrix operator+(const Matrix &o) const;
    Matrix operator*(const Matrix &o) const;

    /** Matrix-vector product. */
    std::vector<double> operator*(const std::vector<double> &v) const;

    Matrix transpose() const;

    /** X^T X of this matrix (n x d -> d x d). */
    Matrix gram() const;

    /** X^T y of this matrix with vector y (length rows()). */
    std::vector<double> transposeTimes(const std::vector<double> &y) const;

    /**
     * Solve A x = b for symmetric positive-definite A via Cholesky.
     * @return the solution vector; fatal on a non-SPD system.
     */
    static std::vector<double> choleskySolve(Matrix a,
                                             std::vector<double> b);

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace ml
} // namespace pearl

#endif // PEARL_ML_MATRIX_HPP
