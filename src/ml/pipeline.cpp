#include "ml/pipeline.hpp"

#include "common/log.hpp"
#include "core/network.hpp"
#include "ml/collector.hpp"
#include "photonic/power_model.hpp"

namespace pearl {
namespace ml {

using traffic::BenchmarkPair;

TrainingPipeline::TrainingPipeline(const traffic::BenchmarkSuite &suite,
                                   PipelineConfig cfg)
    : suite_(suite), cfg_(std::move(cfg))
{
    cfg_.pearl.reservationWindow = cfg_.reservationWindow;
}

Dataset
TrainingPipeline::collect(const BenchmarkPair &pair,
                          core::PowerPolicy &policy,
                          std::uint64_t seed) const
{
    const photonic::PowerModel power;
    core::PearlNetwork net(cfg_.pearl, power, cfg_.dba, &policy);

    WindowDatasetCollector collector(net.numNodes(), cfg_.pearl.l3Node);
    net.setWindowCollector(collector.callback());

    core::SystemConfig sys = cfg_.system;
    sys.seed = seed;
    core::HeteroSystem system(
        net, pair, sys,
        [&net](int node) { return &net.telemetryOf(node); });

    system.run(cfg_.simCycles);
    return collector.takeDataset();
}

Dataset
TrainingPipeline::collectAll(const std::vector<BenchmarkPair> &pairs,
                             core::PowerPolicy &policy) const
{
    Dataset all;
    std::uint64_t seed = cfg_.seed;
    for (const auto &pair : pairs)
        all.append(collect(pair, policy, ++seed));
    return all;
}

EvalResult
TrainingPipeline::evaluate(const RidgeRegression &model,
                           const Dataset &data) const
{
    EvalResult result;
    result.samples = data.size();
    if (data.empty())
        return result;

    const std::vector<double> predicted = model.predictAll(data);
    result.nrmse = nrmseFit(data.labels, predicted);

    std::size_t agree = 0;
    std::size_t top_total = 0, top_agree = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        const auto chosen = MlPowerPolicy::stateForDemand(
            std::max(0.0, predicted[i]), cfg_.reservationWindow,
            cfg_.policy);
        const auto truth = MlPowerPolicy::stateForDemand(
            std::max(0.0, data.labels[i]), cfg_.reservationWindow,
            cfg_.policy);
        if (chosen == truth)
            ++agree;
        if (truth == photonic::WlState::WL64) {
            ++top_total;
            if (chosen == photonic::WlState::WL64)
                ++top_agree;
        }
    }
    result.stateAccuracy =
        static_cast<double>(agree) / static_cast<double>(data.size());
    result.topStateAccuracy =
        top_total ? static_cast<double>(top_agree) /
                        static_cast<double>(top_total)
                  : 1.0;
    return result;
}

namespace {

/** Fit over the lambda grid, keep the model with the best val NRMSE. */
std::pair<RidgeRegression, double>
fitWithGrid(const Dataset &train, const Dataset &val,
            const std::vector<double> &grid)
{
    RidgeRegression best;
    double best_nrmse = -1e300;
    for (double lambda : grid) {
        RidgeRegression model;
        model.fit(train, lambda);
        const double score =
            nrmseFit(val.labels, model.predictAll(val));
        if (score > best_nrmse) {
            best_nrmse = score;
            best = std::move(model);
        }
    }
    return {std::move(best), best_nrmse};
}

template <typename Vec>
Vec
truncated(Vec v, int max_items)
{
    if (max_items > 0 && static_cast<int>(v.size()) > max_items)
        v.resize(static_cast<std::size_t>(max_items));
    return v;
}

} // namespace

PipelineResult
TrainingPipeline::run()
{
    const auto train_pairs =
        truncated(suite_.trainingPairs(), cfg_.maxTrainPairs);
    const auto val_pairs =
        truncated(suite_.validationPairs(), cfg_.maxValPairs);

    // Pass 1: random wavelength states (8WL excluded, Section IV-B).
    Rng rng(cfg_.seed);
    core::RandomPolicy random_policy(rng.fork(), /*include8_wl=*/false);
    Dataset train = collectAll(train_pairs, random_policy);
    Dataset val = collectAll(val_pairs, random_policy);
    PEARL_ASSERT(!train.empty() && !val.empty(),
                 "data collection produced no windows; "
                 "increase simCycles or shrink the reservation window");

    auto [model, val_nrmse] = fitWithGrid(train, val, cfg_.lambdaGrid);

    if (cfg_.secondPass) {
        // Pass 2: collect under the first model's policy so training
        // matches the deployment distribution, then refit.
        MlPolicyConfig pol = cfg_.policy;
        pol.enable8Wl = false;
        MlPowerPolicy ml_policy(&model, pol);
        Dataset train2 = collectAll(train_pairs, ml_policy);
        Dataset val2 = collectAll(val_pairs, ml_policy);
        auto [model2, val2_nrmse] =
            fitWithGrid(train2, val2, cfg_.lambdaGrid);
        model = std::move(model2);
        val_nrmse = val2_nrmse;
        train = std::move(train2);
        val = std::move(val2);
    }

    PipelineResult result;
    result.bestLambda = model.lambda();
    result.validationNrmse = val_nrmse;
    result.trainSamples = train.size();
    result.valSamples = val.size();
    result.model = std::move(model);
    return result;
}

} // namespace ml
} // namespace pearl
