/**
 * @file
 * Online ridge regression via recursive least squares (RLS).
 *
 * The paper's conclusion names better prediction accuracy as the main
 * avenue for future work.  This extension keeps learning *after*
 * deployment: each closed reservation window contributes its
 * (features, realised packets) pair through the Sherman-Morrison rank-1
 * update, so the model tracks workload drift the offline model never
 * saw.  A forgetting factor < 1 exponentially discounts stale windows.
 *
 * The update is O(d^2) per window for d = 30 features — trivially
 * cheap next to a 500-cycle window — and the policy wrapper
 * (`OnlineMlPolicy`) predicts with the current weights, then feeds the
 * realised label back when the next window closes.
 */

#ifndef PEARL_ML_ONLINE_RIDGE_HPP
#define PEARL_ML_ONLINE_RIDGE_HPP

#include <optional>
#include <vector>

#include "common/log.hpp"
#include "core/power_policy.hpp"
#include "ml/features.hpp"
#include "ml/policy.hpp"
#include "ml/ridge.hpp"

namespace pearl {
namespace ml {

/** Recursive-least-squares ridge regression. */
class OnlineRidge
{
  public:
    /**
     * @param dims       feature dimensionality.
     * @param lambda     initial ridge strength (P = I/lambda).
     * @param forgetting exponential forgetting factor in (0, 1]; 1 means
     *                   remember everything.
     */
    explicit OnlineRidge(std::size_t dims, double lambda = 10.0,
                         double forgetting = 0.999);

    /**
     * Seed the weights (and bias) from an offline ridge model so the
     * online phase refines instead of restarting.  The offline model's
     * standardisation is folded into the weights.
     */
    void warmStart(const RidgeRegression &offline);

    /** Incorporate one observation. */
    void update(const std::vector<double> &x, double y);

    /** Predict the label for `x`. */
    double predict(const std::vector<double> &x) const;

    std::size_t dims() const { return dims_; }
    std::uint64_t updates() const { return updates_; }
    const std::vector<double> &weights() const { return w_; }
    double bias() const { return bias_; }

  private:
    std::size_t dims_;
    double forgetting_;
    std::vector<double> w_;      //!< weights over raw features
    double bias_ = 0.0;
    std::vector<double> p_;      //!< inverse covariance, row-major d x d
    std::uint64_t updates_ = 0;

    // Scratch buffers reused across updates.
    mutable std::vector<double> px_;
};

/** Online policy knobs. */
struct OnlinePolicyConfig
{
    /**
     * Only train on windows that could not have been throttled by the
     * chosen state: either the window ran at the full 64-wavelength
     * state or its mean input-buffer occupancy stayed low.  Without
     * this guard the model learns the *throttled* injection counts as
     * demand and drifts toward ever-lower states (the online version
     * of the label-contamination problem the paper discusses for
     * buffer utilization).
     */
    bool trainOnlyUnthrottled = true;
    double unthrottledOccupancyBound = 0.25;
};

/**
 * Power policy that predicts with an OnlineRidge and feeds every closed
 * window back into it (predict-then-train, per router).
 */
class OnlineMlPolicy : public core::PowerPolicy
{
  public:
    /**
     * @param model  shared online model (not owned; must outlive).
     * @param cfg    Equation 7 selection-rule configuration.
     */
    OnlineMlPolicy(OnlineRidge *model, int num_routers,
                   MlPolicyConfig cfg = MlPolicyConfig{},
                   OnlinePolicyConfig online_cfg = OnlinePolicyConfig{})
        : model_(model), cfg_(cfg), onlineCfg_(online_cfg),
          lastFeatures_(static_cast<std::size_t>(num_routers))
    {
        PEARL_ASSERT(model_);
    }

    photonic::WlState
    nextState(const core::WindowObservation &obs) override
    {
        PEARL_ASSERT(obs.telemetry, "observation lacks telemetry");
        std::vector<double> x = FeatureExtractor::extract(
            *obs.telemetry, obs.windowCycles, obs.isL3Router);

        // Train on the previous window's features, labelled by this
        // window's realised injections — but only when the label is a
        // trustworthy demand signal (see OnlinePolicyConfig).
        const double w = obs.windowCycles
                             ? static_cast<double>(obs.windowCycles)
                             : 1.0;
        const double mean_occupancy =
            (obs.telemetry->cpuCoreBufOccupancy +
             obs.telemetry->gpuCoreBufOccupancy) / w;
        const bool unthrottled =
            obs.telemetry->wavelengths >= 64 ||
            mean_occupancy < onlineCfg_.unthrottledOccupancyBound;
        auto &slot = lastFeatures_[static_cast<std::size_t>(obs.router)];
        if (slot && (!onlineCfg_.trainOnlyUnthrottled || unthrottled)) {
            model_->update(*slot, static_cast<double>(
                                      obs.telemetry->packetsInjected));
        }

        const double predicted = std::max(0.0, model_->predict(x));
        if (obs.decision) {
            obs.decision->hasPrediction = true;
            obs.decision->predictedPackets = predicted;
            obs.decision->features = x;
        }
        slot = std::move(x);
        return MlPowerPolicy::stateForDemand(predicted, obs.windowCycles,
                                             cfg_);
    }

    const char *name() const override { return "online-ml"; }

  private:
    OnlineRidge *model_;
    MlPolicyConfig cfg_;
    OnlinePolicyConfig onlineCfg_;
    std::vector<std::optional<std::vector<double>>> lastFeatures_;
};

} // namespace ml
} // namespace pearl

#endif // PEARL_ML_ONLINE_RIDGE_HPP
