/**
 * @file
 * Process-wide, mutex-guarded cache of trained pipeline results, keyed
 * by reservation-window size.
 *
 * The figure benches share one trained ridge model per window size and
 * persist it as pearl_ml_rw<RW>.model.  With the parallel sweep engine
 * several jobs may want the same model at once; this cache makes the
 * load-or-train step load-once: the first caller for a key runs the
 * factory (file load / full training) under the lock while concurrent
 * callers for that key block until the entry is ready, so nobody
 * retrains redundantly or races on the model file.
 *
 * Entries are stored behind stable pointers, so the returned references
 * stay valid for the life of the process even as more keys are added.
 */

#ifndef PEARL_ML_MODEL_CACHE_HPP
#define PEARL_ML_MODEL_CACHE_HPP

#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "ml/pipeline.hpp"

namespace pearl {
namespace ml {

/** Load-once cache of trained models, keyed by reservation window. */
class ModelCache
{
  public:
    using Factory = std::function<PipelineResult()>;

    /** The process-wide instance the benches share. */
    static ModelCache &
    instance()
    {
        static ModelCache cache;
        return cache;
    }

    /**
     * Return the cached entry for `rw`, running `make` (at most once
     * per key) to create it.  Safe to call from concurrent sweep jobs;
     * the factory runs under the cache lock, so a slow training run
     * simply makes the other callers wait for the finished model.
     */
    const PipelineResult &
    get(std::uint64_t rw, const Factory &make)
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = models_.find(rw);
        if (it == models_.end()) {
            it = models_
                     .emplace(rw, std::make_unique<PipelineResult>(make()))
                     .first;
        }
        return *it->second;
    }

    /** Drop all entries (tests only). */
    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mu_);
        models_.clear();
    }

  private:
    std::mutex mu_;
    std::map<std::uint64_t, std::unique_ptr<PipelineResult>> models_;
};

} // namespace ml
} // namespace pearl

#endif // PEARL_ML_MODEL_CACHE_HPP
