#include "obs/registry.hpp"

#include <iomanip>
#include <limits>

namespace pearl {
namespace obs {

void
MetricsRegistry::write(std::ostream &out) const
{
    const auto flags = out.flags();
    const auto precision = out.precision();
    out << std::setprecision(std::numeric_limits<double>::max_digits10);
    for (const auto &[name, value] : counters_)
        out << "counter," << name << "," << value << "\n";
    for (const auto &[name, value] : gauges_)
        out << "gauge," << name << "," << value << "\n";
    for (const auto &[name, h] : histograms_)
        out << "histogram," << name << "," << h.count << "," << h.mean
            << "," << h.p50 << "," << h.p95 << "," << h.p99 << "\n";
    out.flags(flags);
    out.precision(precision);
}

} // namespace obs
} // namespace pearl
