/**
 * @file
 * Named-metric registry for the observability plane.
 *
 * Subsystems publish their end-of-run state into a MetricsRegistry
 * under dotted names (naming convention: "<subsystem>.<metric>", e.g.
 * "net.delivered_packets", "fault.bank_failures",
 * "router3.packets_injected") instead of each component growing ad-hoc
 * result fields.  Three metric kinds:
 *
 *   counter    monotonically accumulated uint64 (packets, drops, ...)
 *   gauge      point-in-time double (power draw, residency share, ...)
 *   histogram  distribution summary {count, mean, p50, p95, p99}
 *              fed from the existing ReservoirSampler latency pools.
 *
 * The registry is a plain single-threaded value type: each sweep job
 * publishes into its own instance.  Iteration order is the sorted name
 * order (std::map), so dumps are deterministic.
 */

#ifndef PEARL_OBS_REGISTRY_HPP
#define PEARL_OBS_REGISTRY_HPP

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace pearl {
namespace obs {

/** Distribution summary published from a ReservoirSampler. */
struct HistogramSummary
{
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

class MetricsRegistry
{
  public:
    /** Get-or-create a counter; increment via the returned reference. */
    std::uint64_t &counter(const std::string &name)
    {
        return counters_[name];
    }

    /** Get-or-create a gauge. */
    double &gauge(const std::string &name) { return gauges_[name]; }

    /** Get-or-create a histogram summary slot. */
    HistogramSummary &histogram(const std::string &name)
    {
        return histograms_[name];
    }

    /** Read-only views; name-sorted, so iteration is deterministic. */
    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, double> &gauges() const
    {
        return gauges_;
    }
    const std::map<std::string, HistogramSummary> &histograms() const
    {
        return histograms_;
    }

    bool empty() const
    {
        return counters_.empty() && gauges_.empty() &&
               histograms_.empty();
    }

    void clear()
    {
        counters_.clear();
        gauges_.clear();
        histograms_.clear();
    }

    /** Dump every metric as "kind,name,value..." CSV-ish lines. */
    void write(std::ostream &out) const;

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, HistogramSummary> histograms_;
};

} // namespace obs
} // namespace pearl

#endif // PEARL_OBS_REGISTRY_HPP
