#include "obs/trace.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/env.hpp"
#include "common/log.hpp"

namespace pearl {
namespace obs {

const char *
toString(Category cat)
{
    switch (cat) {
    case Category::Wavelength:
        return "wavelength";
    case Category::Dba:
        return "dba";
    case Category::Fault:
        return "fault";
    case Category::Sweep:
        return "sweep";
    }
    return "unknown";
}

namespace {

/** JSON string escaping for event names and string args. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::ostringstream oss;
                oss << "\\u" << std::hex << std::setw(4)
                    << std::setfill('0') << static_cast<int>(c);
                out += oss.str();
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Round-trippable double rendering; JSON has no inf/nan literals. */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    std::ostringstream oss;
    oss << std::setprecision(std::numeric_limits<double>::max_digits10)
        << v;
    return oss.str();
}

/** Render one event as a Chrome-trace event object (single line). */
std::string
eventJson(const TraceEvent &e)
{
    std::ostringstream oss;
    oss << "{\"name\":\"" << jsonEscape(e.name) << "\",\"cat\":\""
        << toString(e.cat) << "\",\"ph\":\"" << e.phase
        << "\",\"ts\":" << e.ts;
    if (e.phase == 'X')
        oss << ",\"dur\":" << e.dur;
    oss << ",\"pid\":1,\"tid\":" << e.tid;
    if (!e.args.empty() || !e.sargs.empty()) {
        oss << ",\"args\":{";
        bool first = true;
        for (const auto &[key, value] : e.args) {
            if (!first)
                oss << ",";
            first = false;
            oss << "\"" << jsonEscape(key) << "\":" << jsonNumber(value);
        }
        for (const auto &[key, value] : e.sargs) {
            if (!first)
                oss << ",";
            first = false;
            oss << "\"" << jsonEscape(key) << "\":\"" << jsonEscape(value)
                << "\"";
        }
        oss << "}";
    }
    oss << "}";
    return oss.str();
}

} // namespace

// ---------------------------------------------------------------------------
// JsonlTraceSink

struct JsonlTraceSink::Impl
{
    std::ofstream out;
    std::string path;
};

JsonlTraceSink::JsonlTraceSink(const std::string &path)
    : impl_(std::make_unique<Impl>())
{
    impl_->path = path;
    impl_->out.open(path, std::ios::trunc);
    if (!impl_->out)
        warn("cannot open trace file ", path, "; events discarded");
}

JsonlTraceSink::~JsonlTraceSink() { close(); }

void
JsonlTraceSink::write(const TraceEvent &event)
{
    if (impl_->out)
        impl_->out << eventJson(event) << "\n";
}

void
JsonlTraceSink::close()
{
    if (impl_->out.is_open())
        impl_->out.close();
}

// ---------------------------------------------------------------------------
// ChromeTraceSink

struct ChromeTraceSink::Impl
{
    std::ofstream out;
    std::string path;
    bool any = false;
    bool closed = false;
};

ChromeTraceSink::ChromeTraceSink(const std::string &path)
    : impl_(std::make_unique<Impl>())
{
    impl_->path = path;
    impl_->out.open(path, std::ios::trunc);
    if (!impl_->out)
        warn("cannot open trace file ", path, "; events discarded");
    else
        impl_->out << "{\"traceEvents\":[\n";
}

ChromeTraceSink::~ChromeTraceSink() { close(); }

void
ChromeTraceSink::write(const TraceEvent &event)
{
    if (!impl_->out || impl_->closed)
        return;
    if (impl_->any)
        impl_->out << ",\n";
    impl_->any = true;
    impl_->out << eventJson(event);
}

void
ChromeTraceSink::close()
{
    if (!impl_->out.is_open() || impl_->closed)
        return;
    impl_->closed = true;
    impl_->out << "\n]}\n";
    impl_->out.close();
}

// ---------------------------------------------------------------------------
// TraceOptions

TraceOptions
TraceOptions::fromEnv()
{
    TraceOptions opts;
    opts.enabled = envBool("PEARL_TRACE", false);
    opts.path = envStr("PEARL_TRACE_PATH", opts.path);
    return opts;
}

namespace {

bool
hasSuffix(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

/** File-name-safe job label: alnum kept, everything else becomes '_'. */
std::string
sanitize(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '.';
        out += ok ? c : '_';
    }
    return out;
}

} // namespace

std::unique_ptr<TraceSink>
makeSink(const std::string &path)
{
    if (hasSuffix(path, ".jsonl"))
        return std::make_unique<JsonlTraceSink>(path);
    return std::make_unique<ChromeTraceSink>(path);
}

std::string
jobTracePath(const TraceOptions &opts, std::size_t job_index,
             const std::string &config_name,
             const std::string &pair_label)
{
    if (!opts.perJobSuffix)
        return opts.path;
    std::string stem = opts.path;
    std::string ext = ".json";
    for (const char *candidate : {".jsonl", ".json"}) {
        if (hasSuffix(stem, candidate)) {
            ext = candidate;
            stem.resize(stem.size() - ext.size());
            break;
        }
    }
    return stem + "-job" + std::to_string(job_index) + "-" +
           sanitize(config_name) + "-" + sanitize(pair_label) + ext;
}

// ---------------------------------------------------------------------------
// Tracer

Tracer::Tracer(std::unique_ptr<TraceSink> sink, std::size_t capacity)
    : sink_(std::move(sink)), capacity_(capacity ? capacity : 1)
{
    buffer_.reserve(capacity_);
}

Tracer::~Tracer() { finish(); }

void
Tracer::record(TraceEvent event)
{
    if (finished_)
        return;
    buffer_.push_back(std::move(event));
    ++recorded_;
    if (buffer_.size() >= capacity_)
        flush();
}

void
Tracer::flush()
{
    for (const TraceEvent &event : buffer_)
        sink_->write(event);
    buffer_.clear();
}

void
Tracer::finish()
{
    if (finished_)
        return;
    flush();
    sink_->close();
    finished_ = true;
}

std::unique_ptr<Tracer>
makeTracer(const std::string &path)
{
    return std::make_unique<Tracer>(makeSink(path));
}

} // namespace obs
} // namespace pearl
