/**
 * @file
 * Window-level event tracing for the observability plane.
 *
 * The simulator emits TraceEvents — wavelength-state transitions with
 * the triggering occupancy/prediction, per-window DBA splits, fault and
 * retransmission events, and per-job sweep phases — into a Tracer that
 * ring-buffers them and flushes to a TraceSink off the hot path.  Two
 * sink backends exist: JSONL (one event object per line, easy to grep)
 * and Chrome trace format ({"traceEvents":[...]}, loadable in
 * chrome://tracing or Perfetto).
 *
 * Zero-cost-when-off guarantee: every instrumentation site is guarded
 * by a null Tracer pointer test, no event is constructed when tracing
 * is disabled, and tracing never draws from the simulation RNG — so a
 * traced run produces bit-identical RunMetrics to an untraced one.
 *
 * Determinism: event timestamps are simulation cycles (rendered as
 * microseconds on the trace timeline), never wall-clock, so per-job
 * trace files are byte-identical across sweep thread counts.  The only
 * nondeterministic payloads are the wall-seconds arguments on "sweep"
 * phase events; tests filter that category before byte comparison.
 */

#ifndef PEARL_OBS_TRACE_HPP
#define PEARL_OBS_TRACE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace pearl {
namespace obs {

/** Event categories; the strings below are the "cat" field in sinks. */
enum class Category {
    Wavelength, //!< window-boundary power-state decisions
    Dba,        //!< per-window dynamic bandwidth allocation splits
    Fault,      //!< corruption / drops / retransmission / thermal
    Sweep,      //!< per-job metadata and phase timings
};

/** Stable category name used by both sink backends. */
const char *toString(Category cat);

/**
 * One trace event.  `ts` is the timeline position in simulation cycles
 * (1 cycle renders as 1 us); `dur` is only meaningful for phase 'X'
 * (complete) events.  `tid` separates tracks: 0 is the run/phase track,
 * router r uses track r + 1.
 */
struct TraceEvent
{
    Category cat = Category::Sweep;
    std::string name;
    char phase = 'i'; //!< 'i' instant, 'X' complete
    std::uint64_t ts = 0;
    std::uint64_t dur = 0;
    int tid = 0;
    std::vector<std::pair<std::string, double>> args;
    std::vector<std::pair<std::string, std::string>> sargs;

    TraceEvent &arg(std::string key, double value)
    {
        args.emplace_back(std::move(key), value);
        return *this;
    }
    TraceEvent &sarg(std::string key, std::string value)
    {
        sargs.emplace_back(std::move(key), std::move(value));
        return *this;
    }
};

/** Destination for flushed events.  Implementations own their stream. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void write(const TraceEvent &event) = 0;
    /** Finalise the output (close JSON arrays, flush the file). */
    virtual void close() = 0;
};

/** One JSON object per line; no enclosing array, greppable. */
class JsonlTraceSink : public TraceSink
{
  public:
    explicit JsonlTraceSink(const std::string &path);
    ~JsonlTraceSink() override;
    void write(const TraceEvent &event) override;
    void close() override;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Chrome trace format: {"traceEvents":[...]} — loads in Perfetto. */
class ChromeTraceSink : public TraceSink
{
  public:
    explicit ChromeTraceSink(const std::string &path);
    ~ChromeTraceSink() override;
    void write(const TraceEvent &event) override;
    void close() override;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Trace knobs, normally read from the environment:
 *   PEARL_TRACE       enable tracing (0/1/true/false..., default off)
 *   PEARL_TRACE_PATH  output stem; a ".jsonl" extension selects the
 *                     JSONL backend, anything else Chrome trace format
 *                     (default "pearl_trace.json").
 */
struct TraceOptions
{
    bool enabled = false;
    std::string path = "pearl_trace.json";
    /** Sweeps write one file per job ("<stem>-job<i>-<config>-<pair>");
     *  single runs via Runner::run() write exactly `path`. */
    bool perJobSuffix = true;

    static TraceOptions fromEnv();
};

/** Pick the sink backend from the path extension (".jsonl" → JSONL). */
std::unique_ptr<TraceSink> makeSink(const std::string &path);

/** Per-job trace file path: stem + "-job<i>-<config>-<pair>" + ext. */
std::string jobTracePath(const TraceOptions &opts, std::size_t job_index,
                         const std::string &config_name,
                         const std::string &pair_label);

/**
 * Ring-buffered event recorder.  record() appends to an in-memory
 * buffer (no IO on the hot path); the buffer drains to the sink when
 * full and on flush()/destruction.  One Tracer per job — never shared
 * across sweep threads, so no locking is needed.
 */
class Tracer
{
  public:
    explicit Tracer(std::unique_ptr<TraceSink> sink,
                    std::size_t capacity = 4096);
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    void record(TraceEvent event);
    /** Drain the ring buffer to the sink (called off the hot path). */
    void flush();
    /** Flush and finalise the sink; further record() calls are lost. */
    void finish();

    std::uint64_t recorded() const { return recorded_; }

  private:
    std::unique_ptr<TraceSink> sink_;
    std::vector<TraceEvent> buffer_;
    std::size_t capacity_;
    std::uint64_t recorded_ = 0;
    bool finished_ = false;
};

/** Convenience: open a Tracer on the right backend for `path`. */
std::unique_ptr<Tracer> makeTracer(const std::string &path);

} // namespace obs
} // namespace pearl

#endif // PEARL_OBS_TRACE_HPP
