/**
 * @file
 * Electrical interconnect energy model (28 nm, 1.0 V — Section III-A2).
 *
 * The CMESH baseline's energy per bit is dominated by (a) static router
 * power — clocking and leakage of wide-datapath concentrated routers —
 * and (b) per-hop dynamic energy that grows with hop count, unlike the
 * distance-independent photonic link.  Constants are calibrated to DSENT-
 * class numbers for a 28 nm process; DESIGN.md records the calibration.
 */

#ifndef PEARL_ELECTRICAL_ENERGY_HPP
#define PEARL_ELECTRICAL_ENERGY_HPP

namespace pearl {
namespace electrical {

/** Energy/power constants for the electrical mesh. */
struct ElectricalConstants
{
    /** Static power per mesh router (clock + leakage), watts. */
    double routerStaticW = 0.30;

    /** Buffer write + read energy, pJ per bit. */
    double bufferPjPerBit = 0.08;

    /** Crossbar traversal energy, pJ per bit. */
    double crossbarPjPerBit = 0.05;

    /** Arbitration energy, pJ per flit (VC + switch allocation). */
    double arbitrationPjPerFlit = 1.0;

    /** Link energy, pJ per bit per millimetre. */
    double linkPjPerBitPerMm = 0.04;

    /** Distance between adjacent routers, millimetres. */
    double hopDistanceMm = 5.0;

    /** Dynamic energy of one flit-hop through router + outgoing link. */
    double
    hopEnergyJ(int flit_bits) const
    {
        const double per_bit =
            (bufferPjPerBit + crossbarPjPerBit +
             linkPjPerBitPerMm * hopDistanceMm) * 1e-12;
        return per_bit * flit_bits + arbitrationPjPerFlit * 1e-12;
    }

    /** Dynamic energy of local ejection (no link traversal). */
    double
    ejectEnergyJ(int flit_bits) const
    {
        const double per_bit = (bufferPjPerBit + crossbarPjPerBit) * 1e-12;
        return per_bit * flit_bits;
    }
};

} // namespace electrical
} // namespace pearl

#endif // PEARL_ELECTRICAL_ENERGY_HPP
