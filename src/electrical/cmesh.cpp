#include "electrical/cmesh.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "sim/worker_pool.hpp"

namespace pearl {
namespace electrical {

using sim::Cycle;
using sim::NodeId;
using sim::Packet;

CmeshNetwork::CmeshNetwork(const CmeshConfig &cfg)
    : cfg_(cfg), numRouters_(cfg.meshX * cfg.meshY),
      numEndpoints_(numRouters_ + 1)
{
    PEARL_ASSERT(cfg_.numVcs >= 2 && cfg_.numVcs % 2 == 0,
                 "need an even VC count for request/response classes");
    PEARL_ASSERT(cfg_.l3Router >= 0 && cfg_.l3Router < numRouters_);

    routers_.resize(static_cast<std::size_t>(numRouters_));
    interfaces_.resize(static_cast<std::size_t>(numEndpoints_));
    endpointPort_.resize(static_cast<std::size_t>(numEndpoints_));

    for (int r = 0; r < numRouters_; ++r) {
        Router &router = routers_[static_cast<std::size_t>(r)];
        router.localEndpoints.push_back(r); // the cluster endpoint
        if (r == cfg_.l3Router)
            router.localEndpoints.push_back(numRouters_); // the L3
        const int num_ports =
            4 + static_cast<int>(router.localEndpoints.size());
        router.inputs.assign(static_cast<std::size_t>(num_ports), {});
        router.outputs.resize(static_cast<std::size_t>(num_ports));
        for (int p = 0; p < num_ports; ++p) {
            router.inputs[static_cast<std::size_t>(p)].resize(
                static_cast<std::size_t>(cfg_.numVcs));
            auto &out = router.outputs[static_cast<std::size_t>(p)];
            out.vcs.resize(static_cast<std::size_t>(cfg_.numVcs));
            for (auto &vc : out.vcs)
                vc.credits = cfg_.vcDepthFlits;
        }
        for (std::size_t i = 0; i < router.localEndpoints.size(); ++i) {
            endpointPort_[static_cast<std::size_t>(
                router.localEndpoints[i])] = {r, 4 + static_cast<int>(i)};
        }
    }
}

int
CmeshNetwork::routerOf(NodeId endpoint) const
{
    PEARL_ASSERT(endpoint >= 0 && endpoint < numEndpoints_);
    return endpointPort_[static_cast<std::size_t>(endpoint)].first;
}

int
CmeshNetwork::localWidth(sim::NodeId endpoint) const
{
    return endpoint == numRouters_ ? cfg_.mcLocalFlitsPerCycle
                                   : cfg_.clusterLocalFlitsPerCycle;
}

int
CmeshNetwork::neighbor(int router, int dir) const
{
    const int x = routerX(router);
    const int y = routerY(router);
    switch (dir) {
      case kPortN: return y + 1 < cfg_.meshY ? router + cfg_.meshX : -1;
      case kPortS: return y > 0 ? router - cfg_.meshX : -1;
      case kPortE: return x + 1 < cfg_.meshX ? router + 1 : -1;
      case kPortW: return x > 0 ? router - 1 : -1;
      default: return -1;
    }
}

int
CmeshNetwork::oppositePort(int dir) const
{
    switch (dir) {
      case kPortN: return kPortS;
      case kPortS: return kPortN;
      case kPortE: return kPortW;
      case kPortW: return kPortE;
      default: panic("oppositePort of a local port");
    }
}

int
CmeshNetwork::computeRoute(int router, const Packet &pkt) const
{
    const auto [dst_router, dst_port] =
        endpointPort_[static_cast<std::size_t>(pkt.dst)];
    const int x = routerX(router), y = routerY(router);
    const int dx = routerX(dst_router), dy = routerY(dst_router);
    if (x < dx)
        return kPortE;
    if (x > dx)
        return kPortW;
    if (y < dy)
        return kPortN;
    if (y > dy)
        return kPortS;
    return dst_port;
}

bool
CmeshNetwork::isLocalPort(int router, int port) const
{
    return port >= 4 &&
           port < 4 + static_cast<int>(
                          routers_[static_cast<std::size_t>(router)]
                              .localEndpoints.size());
}

int
CmeshNetwork::vcClassBase(const Packet &pkt) const
{
    // Requests (and probes, which are op-requests) use the lower half of
    // the VCs; responses the upper half.  This breaks protocol deadlock.
    const bool response = pkt.op == sim::CoherenceOp::Data ||
                          pkt.op == sim::CoherenceOp::DataExcl ||
                          pkt.op == sim::CoherenceOp::Ack;
    return response ? cfg_.numVcs / 2 : 0;
}

bool
CmeshNetwork::canInject(const Packet &pkt) const
{
    const auto &ni = interfaces_[static_cast<std::size_t>(pkt.src)];
    return static_cast<int>(ni.queue.size()) < cfg_.injectionQueueDepth;
}

bool
CmeshNetwork::inject(const Packet &pkt)
{
    if (!canInject(pkt))
        return false;
    Packet copy = pkt;
    copy.cycleInjected = cycle_;
    stats_.noteInjected(copy);
    interfaces_[static_cast<std::size_t>(pkt.src)].queue.push_back(copy);
    return true;
}

void
CmeshNetwork::ejectFlit(int, int, const Flit &flit, StepScratch *scratch)
{
    if (scratch) {
        // Parallel step: stage every shared-accumulator side effect;
        // the ascending-router fold replays them in serial order.
        scratch->energyTermsJ.push_back(
            cfg_.energy.ejectEnergyJ(sim::kFlitBits));
        --scratch->flitDelta;
        if (flit.tail) {
            Packet pkt = *flit.pkt;
            pkt.cycleDelivered = cycle_;
            scratch->delivered.push_back(pkt);
        }
        return;
    }
    dynamicEnergyJ_ += cfg_.energy.ejectEnergyJ(sim::kFlitBits);
    --flitsInFlight_;
    if (flit.tail) {
        Packet pkt = *flit.pkt;
        pkt.cycleDelivered = cycle_;
        stats_.noteDelivered(pkt);
        delivered_.push_back(pkt);
    }
}

void
CmeshNetwork::deliverLinkFlits()
{
    for (int r = 0; r < numRouters_; ++r) {
        Router &router = routers_[static_cast<std::size_t>(r)];
        const int num_ports = static_cast<int>(router.outputs.size());
        for (int p = 0; p < num_ports; ++p) {
            OutputPort &out = router.outputs[static_cast<std::size_t>(p)];
            if (!out.linkReg || cycle_ < out.linkReadyAt)
                continue;
            {
                const int n = neighbor(r, p);
                PEARL_ASSERT(n >= 0, "flit sent off the mesh edge");
                const int in_port = oppositePort(p);
                auto &fifo =
                    routers_[static_cast<std::size_t>(n)]
                        .inputs[static_cast<std::size_t>(in_port)]
                               [static_cast<std::size_t>(out.linkVc)]
                        .fifo;
                PEARL_ASSERT(static_cast<int>(fifo.size()) <
                                 cfg_.vcDepthFlits,
                             "credit protocol violated");
                fifo.push_back(*out.linkReg);
            }
            out.linkReg.reset();
            out.linkVc = -1;
        }
    }
}

void
CmeshNetwork::pullLinkFlitsFor(int router_id)
{
    // Pull-based twin of deliverLinkFlits(), sharded by *destination*:
    // router r drains the link register feeding each of its mesh input
    // ports.  Every (upstream router, output port) pair has exactly one
    // puller — r = neighbor(up, port) is unique — so concurrent shards
    // touch disjoint registers and FIFOs, and the resulting state is
    // identical to the serial source-ordered push.
    Router &router = routers_[static_cast<std::size_t>(router_id)];
    for (int p = 0; p < 4; ++p) {
        const int up = neighbor(router_id, p);
        if (up < 0)
            continue;
        OutputPort &out =
            routers_[static_cast<std::size_t>(up)]
                .outputs[static_cast<std::size_t>(oppositePort(p))];
        if (!out.linkReg || cycle_ < out.linkReadyAt)
            continue;
        auto &fifo = router.inputs[static_cast<std::size_t>(p)]
                                  [static_cast<std::size_t>(out.linkVc)]
                         .fifo;
        PEARL_ASSERT(static_cast<int>(fifo.size()) < cfg_.vcDepthFlits,
                     "credit protocol violated");
        fifo.push_back(*out.linkReg);
        out.linkReg.reset();
        out.linkVc = -1;
    }
}

void
CmeshNetwork::injectFromInterface(int e, StepScratch *scratch)
{
    NetworkInterface &ni = interfaces_[static_cast<std::size_t>(e)];
    if (ni.queue.empty())
        return;
    const auto [r, port] = endpointPort_[static_cast<std::size_t>(e)];
    Router &router = routers_[static_cast<std::size_t>(r)];
    auto &vcs = router.inputs[static_cast<std::size_t>(port)];

    Packet &pkt = ni.queue.front();
    const int flits = pkt.numFlits();

    // Find (or continue with) the VC carrying this packet.
    if (ni.flitsSent == 0) {
        const int base = vcClassBase(pkt);
        int chosen = -1;
        for (int v = base; v < base + cfg_.numVcs / 2; ++v) {
            InputVc &vc = vcs[static_cast<std::size_t>(v)];
            if (vc.fifo.empty() && !vc.routed) {
                chosen = v;
                break;
            }
        }
        if (chosen < 0)
            return; // all class VCs busy; retry next cycle
        ni.curVc = chosen;
        ni.pktShared = std::make_shared<Packet>(pkt);
    }

    // The NI datapath pushes up to the local-port width per cycle.
    int budget = localWidth(e);
    while (budget-- > 0) {
        InputVc &vc = vcs[static_cast<std::size_t>(ni.curVc)];
        if (static_cast<int>(vc.fifo.size()) >= cfg_.vcDepthFlits)
            break;
        Flit flit;
        flit.pkt = ni.pktShared;
        flit.seq = ni.flitsSent;
        flit.head = ni.flitsSent == 0;
        flit.tail = ni.flitsSent == flits - 1;
        vc.fifo.push_back(flit);
        if (scratch)
            ++scratch->flitDelta;
        else
            ++flitsInFlight_;
        ++ni.flitsSent;
        if (ni.flitsSent == flits) {
            ni.queue.pop_front();
            ni.flitsSent = 0;
            ni.pktShared.reset();
            break; // next packet picks a VC next cycle
        }
    }
}

void
CmeshNetwork::injectFromInterfaces()
{
    for (int e = 0; e < numEndpoints_; ++e)
        injectFromInterface(e, nullptr);
}

void
CmeshNetwork::routeAndAllocate(int router_id)
{
    Router &router = routers_[static_cast<std::size_t>(router_id)];
    const int num_ports = static_cast<int>(router.inputs.size());

    // Route computation for fresh head flits.
    for (int p = 0; p < num_ports; ++p) {
        for (int v = 0; v < cfg_.numVcs; ++v) {
            InputVc &vc =
                router.inputs[static_cast<std::size_t>(p)]
                             [static_cast<std::size_t>(v)];
            if (vc.routed || vc.fifo.empty() || !vc.fifo.front().head)
                continue;
            vc.outPort = computeRoute(router_id, *vc.fifo.front().pkt);
            vc.routed = true;
        }
    }

    // VC allocation for routed heads without a downstream VC.
    const int total_vcs = num_ports * cfg_.numVcs;
    for (int i = 0; i < total_vcs; ++i) {
        const int idx = (router.vaPointer + i) % total_vcs;
        const int p = idx / cfg_.numVcs;
        const int v = idx % cfg_.numVcs;
        InputVc &vc = router.inputs[static_cast<std::size_t>(p)]
                                   [static_cast<std::size_t>(v)];
        if (!vc.routed || vc.outVc >= 0 || vc.fifo.empty())
            continue;
        if (isLocalPort(router_id, vc.outPort)) {
            // Ejection needs no downstream VC.
            vc.outVc = v;
            continue;
        }
        OutputPort &out =
            router.outputs[static_cast<std::size_t>(vc.outPort)];
        const int base = vcClassBase(*vc.fifo.front().pkt);
        for (int ov = base; ov < base + cfg_.numVcs / 2; ++ov) {
            OutputVc &ovc = out.vcs[static_cast<std::size_t>(ov)];
            if (!ovc.allocated) {
                ovc.allocated = true;
                vc.outVc = ov;
                break;
            }
        }
    }
    router.vaPointer = (router.vaPointer + 1) % total_vcs;
}

void
CmeshNetwork::switchAllocate(int router_id, StepScratch *scratch)
{
    Router &router = routers_[static_cast<std::size_t>(router_id)];
    const int num_ports = static_cast<int>(router.inputs.size());
    const int total_vcs = num_ports * cfg_.numVcs;

    for (int out_port = 0; out_port < num_ports; ++out_port) {
        OutputPort &out =
            router.outputs[static_cast<std::size_t>(out_port)];
        const bool local = isLocalPort(router_id, out_port);
        if (!local && out.linkReg)
            continue; // link busy this cycle
        // Local (ejection) ports are as wide as the endpoint interface;
        // mesh links carry one flit per cycle.
        int budget = 1;
        if (local) {
            budget = localWidth(
                router.localEndpoints[static_cast<std::size_t>(out_port -
                                                               4)]);
        }
        for (int i = 0; i < total_vcs && budget > 0; ++i) {
            const int idx = (out.rrPointer + i) % total_vcs;
            const int p = idx / cfg_.numVcs;
            const int v = idx % cfg_.numVcs;
            InputVc &vc = router.inputs[static_cast<std::size_t>(p)]
                                       [static_cast<std::size_t>(v)];
            if (!vc.routed || vc.outPort != out_port || vc.fifo.empty() ||
                vc.outVc < 0) {
                continue;
            }
            if (!local) {
                OutputVc &ovc =
                    out.vcs[static_cast<std::size_t>(vc.outVc)];
                if (ovc.credits <= 0)
                    continue;
                --ovc.credits;
            }

            Flit flit = vc.fifo.front();
            vc.fifo.pop_front();
            if (local) {
                ejectFlit(router_id, out_port, flit, scratch);
                --budget;
            } else {
                out.linkReg = flit;
                out.linkVc = vc.outVc;
                out.linkReadyAt =
                    cycle_ + static_cast<sim::Cycle>(cfg_.linkCyclesPerFlit);
                if (scratch) {
                    scratch->energyTermsJ.push_back(
                        cfg_.energy.hopEnergyJ(sim::kFlitBits));
                } else {
                    dynamicEnergyJ_ += cfg_.energy.hopEnergyJ(sim::kFlitBits);
                }
            }
            out.rrPointer = (idx + 1) % total_vcs;

            // Credit return to the upstream router this VC drains from.
            if (p < 4) {
                const int up = neighbor(router_id, p);
                if (up >= 0) {
                    const int up_out = oppositePort(p);
                    ++routers_[static_cast<std::size_t>(up)]
                          .outputs[static_cast<std::size_t>(up_out)]
                          .vcs[static_cast<std::size_t>(v)]
                          .credits;
                }
            }

            if (flit.tail) {
                if (!local) {
                    out.vcs[static_cast<std::size_t>(vc.outVc)].allocated =
                        false;
                }
                vc.routed = false;
                vc.outPort = -1;
                vc.outVc = -1;
            }
            if (!local)
                break; // one flit per mesh link per cycle
        }
    }
}

void
CmeshNetwork::step()
{
    if (shards_.empty())
        stepSerial();
    else
        stepParallel();
}

void
CmeshNetwork::stepSerial()
{
    deliverLinkFlits();
    injectFromInterfaces();
    for (int r = 0; r < numRouters_; ++r)
        routeAndAllocate(r);
    for (int r = 0; r < numRouters_; ++r)
        switchAllocate(r);
    ++cycle_;
}

void
CmeshNetwork::stepParallel()
{
    // Region A — link delivery + NI injection, sharded by destination
    // router.  All writes are disjoint (see pullLinkFlitsFor; each
    // endpoint owns its NI and its private local input port), so the
    // post-barrier state equals the serial one.  Injection never reads
    // mesh-port FIFOs, so fusing it with delivery is order-safe.
    pool_->parallelFor(
        static_cast<int>(shards_.size()), [this](int s) {
            const StepShard shard =
                shards_[static_cast<std::size_t>(s)];
            for (int r = shard.begin; r < shard.end; ++r) {
                StepScratch &scratch =
                    scratch_[static_cast<std::size_t>(r)];
                scratch.energyTermsJ.clear();
                scratch.delivered.clear();
                scratch.flitDelta = 0;
                pullLinkFlitsFor(r);
                for (sim::NodeId e :
                     routers_[static_cast<std::size_t>(r)]
                         .localEndpoints) {
                    injectFromInterface(static_cast<int>(e), &scratch);
                }
            }
        });

    // Region B — route + VC + switch allocation as an anti-diagonal
    // wavefront.  routeAndAllocate is router-local; switchAllocate's
    // only cross-router write is the credit return to the upstream
    // router, whose serial in-cycle visibility (writer d seen by
    // reader u iff d < u) coincides exactly with diag(d) < diag(u)
    // for mesh neighbours — so barriers between diagonals reproduce
    // serial semantics, and same-diagonal routers never touch the
    // same output port (one unique writer per port).
    for (const std::vector<int> &diag : diagonals_) {
        pool_->parallelFor(
            static_cast<int>(diag.size()), [this, &diag](int i) {
                const int r = diag[static_cast<std::size_t>(i)];
                routeAndAllocate(r);
                switchAllocate(
                    r, &scratch_[static_cast<std::size_t>(r)]);
            });
    }

    // Serial fold in ascending router order: replays the energy adds
    // and delivery notes in the exact serial program order, so every
    // floating-point accumulator matches the serial step bit-for-bit.
    std::int64_t flit_delta = 0;
    for (int r = 0; r < numRouters_; ++r) {
        StepScratch &scratch = scratch_[static_cast<std::size_t>(r)];
        for (const double term : scratch.energyTermsJ)
            dynamicEnergyJ_ += term;
        for (const Packet &pkt : scratch.delivered) {
            stats_.noteDelivered(pkt);
            delivered_.push_back(pkt);
        }
        flit_delta += scratch.flitDelta;
    }
    flitsInFlight_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(flitsInFlight_) + flit_delta);
    ++cycle_;
}

void
CmeshNetwork::setWorkerPool(sim::WorkerPool *pool)
{
    pool_ = nullptr;
    shards_.clear();
    diagonals_.clear();
    scratch_.clear();
    if (!pool || pool->lanes() <= 1)
        return;
    pool_ = pool;

    // Contiguous equal shards for region A, one per lane.
    const int lanes = static_cast<int>(
        std::min<unsigned>(pool->lanes(),
                           static_cast<unsigned>(numRouters_)));
    int begin = 0;
    for (int s = 0; s < lanes; ++s) {
        const int remaining = lanes - s;
        const int take = (numRouters_ - begin + remaining - 1) /
                         remaining;
        shards_.push_back({begin, begin + take});
        begin += take;
    }

    // Wavefront order for region B: routers grouped by x + y.
    diagonals_.assign(
        static_cast<std::size_t>(cfg_.meshX + cfg_.meshY - 1), {});
    for (int r = 0; r < numRouters_; ++r) {
        diagonals_[static_cast<std::size_t>(routerX(r) + routerY(r))]
            .push_back(r);
    }

    scratch_.resize(static_cast<std::size_t>(numRouters_));
    for (StepScratch &s : scratch_) {
        s.energyTermsJ.reserve(64);
        s.delivered.reserve(16);
    }
}

std::uint64_t
CmeshNetwork::countBufferedFlits() const
{
    std::uint64_t count = 0;
    for (const Router &router : routers_) {
        for (const auto &port : router.inputs) {
            for (const InputVc &vc : port)
                count += vc.fifo.size();
        }
        for (const OutputPort &out : router.outputs)
            count += out.linkReg ? 1 : 0;
    }
    return count;
}

bool
CmeshNetwork::idle() const
{
    if (flitsInFlight_ > 0)
        return false;
    for (const auto &ni : interfaces_) {
        if (!ni.queue.empty())
            return false;
    }
    return true;
}

double
CmeshNetwork::staticEnergyJ(double cycle_seconds) const
{
    return cfg_.energy.routerStaticW * numRouters_ *
           static_cast<double>(cycle_) * cycle_seconds;
}

} // namespace electrical
} // namespace pearl
