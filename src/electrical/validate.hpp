/**
 * @file
 * Validation of the CMESH baseline configuration (DESIGN.md
 * "Resilience").  Checks every user-settable field before a
 * CmeshNetwork is built, so a bad sweep spec becomes a ConfigError
 * with the offending field named instead of an assert in the
 * constructor.
 */

#ifndef PEARL_ELECTRICAL_VALIDATE_HPP
#define PEARL_ELECTRICAL_VALIDATE_HPP

#include "common/expected.hpp"
#include "electrical/cmesh.hpp"

namespace pearl {
namespace electrical {

/** Validate a CMESH baseline configuration. */
inline Validation
validate(const CmeshConfig &cfg)
{
    if (cfg.meshX <= 0 || cfg.meshY <= 0)
        return configError("cmesh mesh dimensions must be > 0, got ",
                           cfg.meshX, "x", cfg.meshY);
    if (cfg.numVcs < 2 || cfg.numVcs % 2 != 0)
        return configError("cmesh.numVcs must be even and >= 2 (the "
                           "halves carry request/response classes), "
                           "got ", cfg.numVcs);
    if (cfg.vcDepthFlits <= 0)
        return configError("cmesh.vcDepthFlits must be > 0, got ",
                           cfg.vcDepthFlits);
    if (cfg.l3Router < 0 || cfg.l3Router >= cfg.meshX * cfg.meshY)
        return configError("cmesh.l3Router must be a router id in [0, ",
                           cfg.meshX * cfg.meshY - 1, "], got ",
                           cfg.l3Router);
    if (cfg.injectionQueueDepth <= 0)
        return configError("cmesh.injectionQueueDepth must be > 0, "
                           "got ", cfg.injectionQueueDepth);
    if (cfg.clusterLocalFlitsPerCycle <= 0 ||
        cfg.mcLocalFlitsPerCycle <= 0)
        return configError("cmesh local interface widths must be > 0 "
                           "flits/cycle, got cluster=",
                           cfg.clusterLocalFlitsPerCycle, " mc=",
                           cfg.mcLocalFlitsPerCycle);
    if (cfg.linkCyclesPerFlit <= 0)
        return configError("cmesh.linkCyclesPerFlit must be > 0, got ",
                           cfg.linkCyclesPerFlit);
    return {};
}

} // namespace electrical
} // namespace pearl

#endif // PEARL_ELECTRICAL_VALIDATE_HPP
