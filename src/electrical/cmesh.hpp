/**
 * @file
 * The electrical CMESH baseline: a 4x4 concentrated mesh with XY routing,
 * virtual-channel wormhole flow control and credit-based backpressure
 * (Section IV: "4 VCs, 4 input buffers per VC, each buffer slot is 128
 * bits").
 *
 * Endpoints 0-15 are the clusters, one per router; endpoint 16 is the L3,
 * concentrated onto a centre router.  Requests travel in VCs {0,1} and
 * responses in VCs {2,3}, which breaks request-response protocol deadlock;
 * XY dimension order keeps routing deadlock-free.  The link width equals
 * one flit per cycle, matching the PEARL crossbar's bisection bandwidth
 * at the full 64-wavelength state (see DESIGN.md).
 *
 * Parallel stepping (setWorkerPool): the step is sharded across worker
 * lanes with the same recipe as core::PearlNetwork — per-router scratch,
 * stage barriers, and a serial submission-order fold — so results are
 * bit-identical to the serial step at any lane count.  Link delivery and
 * NI injection run pull-based per destination router (disjoint writes);
 * route/VC/switch allocation runs as an anti-diagonal wavefront, which
 * reproduces the serial pass's in-cycle credit visibility exactly (a
 * credit written by router d is seen by upstream router u in the same
 * cycle iff d < u, and for mesh neighbours d < u ⟺ diag(d) < diag(u)).
 * See DESIGN.md "Execution engine".
 */

#ifndef PEARL_ELECTRICAL_CMESH_HPP
#define PEARL_ELECTRICAL_CMESH_HPP

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "electrical/energy.hpp"
#include "sim/network.hpp"
#include "sim/packet.hpp"
#include "sim/stats.hpp"

namespace pearl {

namespace sim {
class WorkerPool;
} // namespace sim

namespace electrical {

/** Configuration of the CMESH baseline. */
struct CmeshConfig
{
    int meshX = 4;
    int meshY = 4;
    int numVcs = 4;              //!< VCs per input port (2 req + 2 resp)
    int vcDepthFlits = 4;        //!< buffer slots per VC
    int l3Router = 5;            //!< mesh router hosting the MC endpoint
    int injectionQueueDepth = 16; //!< packets queued per endpoint NI
    int clusterLocalFlitsPerCycle = 2; //!< cluster ejection/injection width
    int mcLocalFlitsPerCycle = 4;      //!< MC endpoint width (2 channels)
    /** Cycles a flit occupies a mesh link: 1 for the full-width CMESH,
     *  2 / 4 for the proportionally bandwidth-reduced variants compared
     *  against the 32- and 16-wavelength photonic states (Figure 5). */
    int linkCyclesPerFlit = 1;
    ElectricalConstants energy;
};

/** A flit in flight; head flits carry the packet. */
struct Flit
{
    std::shared_ptr<sim::Packet> pkt;
    int seq = 0;
    bool head = false;
    bool tail = false;
};

/** The CMESH network model. */
class CmeshNetwork : public sim::Network
{
  public:
    explicit CmeshNetwork(const CmeshConfig &cfg = CmeshConfig{});

    // sim::Network interface ------------------------------------------------
    bool inject(const sim::Packet &pkt) override;
    bool canInject(const sim::Packet &pkt) const override;
    void step() override;
    std::vector<sim::Packet> &delivered() override { return delivered_; }
    sim::Cycle cycle() const override { return cycle_; }
    int numNodes() const override { return numEndpoints_; }
    const sim::NetworkStats &stats() const override { return stats_; }
    bool idle() const override;

    // Energy ---------------------------------------------------------------
    /** Total dynamic energy spent so far, joules. */
    double dynamicEnergyJ() const { return dynamicEnergyJ_; }

    /** Static energy over the elapsed cycles, joules. */
    double staticEnergyJ(double cycle_seconds) const;

    /** Total network energy (static + dynamic), joules. */
    double
    totalEnergyJ(double cycle_seconds) const
    {
        return dynamicEnergyJ() + staticEnergyJ(cycle_seconds);
    }

    const CmeshConfig &config() const { return cfg_; }

    /** Mesh router hosting an endpoint. */
    int routerOf(sim::NodeId endpoint) const;

    /** Flits per cycle an endpoint's local interface moves. */
    int localWidth(sim::NodeId endpoint) const;

    /**
     * Install (or remove, with nullptr) a worker pool for deterministic
     * parallel stepping.  Non-owning; the pool must outlive its use.
     * A ≤1-lane pool keeps the serial step path.  Results are
     * bit-identical to serial at any lane count — see the file comment
     * for the argument.
     */
    void setWorkerPool(sim::WorkerPool *pool);

    /** Flits inside the router fabric (input FIFOs + link registers). */
    std::uint64_t flitsInFlight() const { return flitsInFlight_; }

    /** Recount buffered flits from the FIFOs and link registers — the
     *  verification plane checks it equals flitsInFlight(). */
    std::uint64_t countBufferedFlits() const;

  private:
    struct InputVc
    {
        std::deque<Flit> fifo;
        int outPort = -1;
        int outVc = -1;
        bool routed = false;
    };

    struct OutputVc
    {
        bool allocated = false;
        int credits = 0;
    };

    struct OutputPort
    {
        std::vector<OutputVc> vcs;
        std::optional<Flit> linkReg; //!< flit traversing the link
        int linkVc = -1;             //!< downstream VC of linkReg
        sim::Cycle linkReadyAt = 0;  //!< when linkReg reaches downstream
        int rrPointer = 0;           //!< switch-allocation round robin
    };

    struct Router
    {
        // Ports 0..3: mesh N/E/S/W; 4..: local endpoint ports.
        std::vector<std::vector<InputVc>> inputs; //!< [port][vc]
        std::vector<OutputPort> outputs;
        std::vector<sim::NodeId> localEndpoints;  //!< per local port
        int vaPointer = 0;                        //!< VC-allocation RR
    };

    /** Per-endpoint network interface: packets waiting to become flits. */
    struct NetworkInterface
    {
        std::deque<sim::Packet> queue;
        int flitsSent = 0;  //!< of the head packet
        int curVc = -1;     //!< VC carrying the head packet
        std::shared_ptr<sim::Packet> pktShared; //!< head packet, shared
    };

    /**
     * Per-router staging for the parallel step: every side effect the
     * serial step applies to shared accumulators is recorded here and
     * replayed in ascending router order after the barrier, so the FP
     * add sequence (energy, latency EWMAs inside NetworkStats) is the
     * serial one bit-for-bit.
     */
    struct StepScratch
    {
        std::vector<double> energyTermsJ;   //!< hop/eject adds, in order
        std::vector<sim::Packet> delivered; //!< tails ejected, in order
        std::int64_t flitDelta = 0;         //!< injected − ejected
    };

    /** Contiguous router range owned by one lane in region A. */
    struct StepShard
    {
        int begin = 0;
        int end = 0;
    };

    static constexpr int kPortN = 0;
    static constexpr int kPortE = 1;
    static constexpr int kPortS = 2;
    static constexpr int kPortW = 3;

    int routerX(int r) const { return r % cfg_.meshX; }
    int routerY(int r) const { return r / cfg_.meshX; }
    int neighbor(int router, int dir) const;
    int oppositePort(int dir) const;
    int computeRoute(int router, const sim::Packet &pkt) const;
    bool isLocalPort(int router, int port) const;
    int vcClassBase(const sim::Packet &pkt) const;

    void deliverLinkFlits();
    void injectFromInterfaces();
    void injectFromInterface(int endpoint, StepScratch *scratch);
    void routeAndAllocate(int router_id);
    void switchAllocate(int router_id, StepScratch *scratch = nullptr);
    void ejectFlit(int router_id, int port, const Flit &flit,
                   StepScratch *scratch = nullptr);

    void stepSerial();
    void stepParallel();
    /** Pull-based link delivery into router r's mesh input FIFOs
     *  (resets the upstream link registers; each (router, port) pair
     *  has exactly one puller, so shard writes are disjoint). */
    void pullLinkFlitsFor(int router_id);

    CmeshConfig cfg_;
    int numRouters_;
    int numEndpoints_;
    std::vector<Router> routers_;
    std::vector<NetworkInterface> interfaces_;
    std::vector<std::pair<int, int>> endpointPort_; //!< endpoint->(router,port)
    std::vector<sim::Packet> delivered_;
    sim::NetworkStats stats_;
    sim::Cycle cycle_ = 0;
    double dynamicEnergyJ_ = 0.0;
    std::uint64_t flitsInFlight_ = 0;

    // Parallel stepping (empty shards_ = serial path).
    sim::WorkerPool *pool_ = nullptr;      //!< non-owning
    std::vector<StepShard> shards_;        //!< region-A router ranges
    std::vector<std::vector<int>> diagonals_; //!< wavefront order (x+y)
    std::vector<StepScratch> scratch_;     //!< per-router staging
};

} // namespace electrical
} // namespace pearl

#endif // PEARL_ELECTRICAL_CMESH_HPP
