/**
 * @file
 * Structured errors and an `Expected<T>` result type.
 *
 * PEARL_ASSERT is for simulator invariants — it aborts, which is the
 * right reaction to a bug but the wrong one to a user typo.  Everything
 * a *user* can get wrong (configuration structs, RunSpecs, environment
 * knobs) flows through this layer instead: validation entry points
 * return `Expected<void>` carrying an actionable message, callers that
 * cannot continue throw `ConfigError`, and the sweep engine captures
 * such exceptions as structured per-job failures instead of taking the
 * whole run down.
 *
 * `Expected<T>` is a deliberately small subset of C++23 std::expected
 * (value-or-Error), enough for validation and parsing call sites; it is
 * not a coroutine-friendly monad and does not try to be.
 */

#ifndef PEARL_COMMON_EXPECTED_HPP
#define PEARL_COMMON_EXPECTED_HPP

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/log.hpp"

namespace pearl {

/** Coarse error taxonomy (DESIGN.md "Resilience": error taxonomy). */
enum class ErrorCode
{
    None = 0,
    InvalidConfig,   //!< a configuration struct fails validation
    InvalidArgument, //!< a bad value passed to an API entry point
    InvalidState,    //!< an operation is illegal in the current state
    IoError,         //!< file / journal read or write failure
    JobFailed,       //!< a sweep job raised an unclassified exception
};

/** Stable string form of an ErrorCode (logs, journal, job results). */
inline const char *
toString(ErrorCode code)
{
    switch (code) {
    case ErrorCode::None: return "none";
    case ErrorCode::InvalidConfig: return "invalid_config";
    case ErrorCode::InvalidArgument: return "invalid_argument";
    case ErrorCode::InvalidState: return "invalid_state";
    case ErrorCode::IoError: return "io_error";
    case ErrorCode::JobFailed: return "job_failed";
    }
    return "unknown";
}

/** One structured error: code + actionable message. */
struct Error
{
    ErrorCode code = ErrorCode::None;
    std::string message;

    Error() = default;
    Error(ErrorCode c, std::string msg) : code(c), message(std::move(msg)) {}

    /** "invalid_config: reservationWindow must be > 0 (got 0)". */
    std::string
    describe() const
    {
        return std::string(toString(code)) + ": " + message;
    }
};

/**
 * Exception form of an Error, for call sites that cannot return one
 * (constructors, deep call chains).  The sweep engine catches these and
 * records the code + message as a structured job failure.
 */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(Error err)
        : std::runtime_error(err.describe()), err_(std::move(err))
    {}

    const Error &error() const { return err_; }
    ErrorCode code() const { return err_.code; }

  private:
    Error err_;
};

/** Value-or-Error result.  Default-constructed as an empty error. */
template <typename T>
class Expected
{
  public:
    Expected(T value) : value_(std::move(value)) {} // NOLINT(google-explicit-constructor)
    Expected(Error err) : error_(std::move(err)) {} // NOLINT(google-explicit-constructor)

    bool hasValue() const { return value_.has_value(); }
    explicit operator bool() const { return hasValue(); }

    /** The value; throws ConfigError when this holds an error. */
    T &
    value()
    {
        if (!value_)
            throw ConfigError(error_);
        return *value_;
    }
    const T &
    value() const
    {
        if (!value_)
            throw ConfigError(error_);
        return *value_;
    }

    T
    valueOr(T fallback) const
    {
        return value_ ? *value_ : std::move(fallback);
    }

    /** The error; only meaningful when !hasValue(). */
    const Error &error() const { return error_; }

  private:
    std::optional<T> value_;
    Error error_;
};

/** Success-or-Error result of a validation entry point. */
template <>
class Expected<void>
{
  public:
    Expected() = default;                           //!< success
    Expected(Error err) : error_(std::move(err)) {} // NOLINT(google-explicit-constructor)

    bool hasValue() const { return error_.code == ErrorCode::None; }
    explicit operator bool() const { return hasValue(); }

    /** Throws ConfigError when this holds an error; no-op on success. */
    void
    value() const
    {
        if (!hasValue())
            throw ConfigError(error_);
    }

    const Error &error() const { return error_; }

  private:
    Error error_;
};

/** The canonical return type of `validate()` entry points. */
using Validation = Expected<void>;

/** Build an InvalidConfig error from streamable parts. */
template <typename... Args>
Error
configError(Args &&...args)
{
    return Error(ErrorCode::InvalidConfig,
                 detail::formatMessage(std::forward<Args>(args)...));
}

/** Throw ConfigError if `v` holds an error (validate-or-throw). */
inline void
throwIfInvalid(const Validation &v)
{
    v.value();
}

} // namespace pearl

#endif // PEARL_COMMON_EXPECTED_HPP
