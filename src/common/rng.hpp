/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the simulator draws from an explicitly
 * seeded Rng so that runs are reproducible bit-for-bit.  The generator is
 * SplitMix64-seeded xoshiro256** — fast, high quality, and trivially
 * forkable so independent subsystems get decorrelated streams.
 */

#ifndef PEARL_COMMON_RNG_HPP
#define PEARL_COMMON_RNG_HPP

#include <cmath>
#include <cstdint>
#include <limits>

namespace pearl {

/** One SplitMix64 output step (the mixer xoshiro seeds with). */
inline std::uint64_t
splitMix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/**
 * Derive a decorrelated per-job seed from a base seed and a job index.
 * Used by the sweep engine so job i's RNG stream depends only on
 * (base, i) — never on thread scheduling or shared state — which makes
 * sweep results bit-identical across any thread count.
 */
inline std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t index)
{
    return splitMix64(splitMix64(base) ^
                      splitMix64(index * 0xBF58476D1CE4E5B9ULL + 1));
}

/** Deterministic, forkable PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any value (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
    {
        // SplitMix64 expansion of the seed into the 256-bit state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9E3779B97F4A7C15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound) ; bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded generation.
        const __uint128_t m =
            static_cast<__uint128_t>(next()) * static_cast<__uint128_t>(bound);
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Precompute the integer threshold for chanceT():
     * `chance(p) == chanceT(chanceThreshold(p))` for every p, with the
     * identical draw consumed.  Proof: uniform() is k * 2^-53 with
     * k = next() >> 11 an integer below 2^53, so `uniform() < p` is
     * `k < p * 2^53` (scaling by a power of two is exact), which for
     * integer k is `k < ceil(p * 2^53)`.  Hot per-cycle draws against a
     * fixed probability save the int-to-double convert and FP compare.
     */
    static std::uint64_t
    chanceThreshold(double p)
    {
        const double t = p * 0x1p53;
        if (!(t > 0.0))
            return 0; // p <= 0 (or NaN): chance() is always false
        if (t >= 0x1p63)
            return std::uint64_t(1) << 53; // p >= 1: always true
        return static_cast<std::uint64_t>(std::ceil(t));
    }

    /** Bernoulli trial against a chanceThreshold() value. */
    bool
    chanceT(std::uint64_t threshold)
    {
        return (next() >> 11) < threshold;
    }

    /**
     * Geometric inter-arrival sample with mean 1/p (support >= 1); used
     * for Bernoulli-process packet injection.
     */
    std::uint64_t
    geometric(double p)
    {
        if (p >= 1.0)
            return 1;
        if (p <= 0.0)
            return std::numeric_limits<std::uint64_t>::max();
        std::uint64_t n = 1;
        while (!chance(p) && n < (1ULL << 40))
            ++n;
        return n;
    }

    /**
     * Fork a decorrelated child stream.  The child is seeded from this
     * stream's output so sibling forks differ.
     */
    Rng
    fork()
    {
        return Rng(next() ^ 0xD1B54A32D192ED03ULL);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

} // namespace pearl

#endif // PEARL_COMMON_RNG_HPP
