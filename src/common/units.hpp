/**
 * @file
 * Unit helpers for the photonic/electrical power models.
 *
 * Optical budgets are naturally expressed in decibels while the simulator
 * accounts energy in joules and power in watts; these helpers keep the
 * conversions in one audited place.
 */

#ifndef PEARL_COMMON_UNITS_HPP
#define PEARL_COMMON_UNITS_HPP

#include <cmath>
#include <cstdint>

namespace pearl {
namespace units {

/** Convert a power ratio expressed in dB to a linear ratio. */
inline double
dbToLinear(double db)
{
    return std::pow(10.0, db / 10.0);
}

/** Convert a linear power ratio to dB. */
inline double
linearToDb(double ratio)
{
    return 10.0 * std::log10(ratio);
}

/** Convert absolute power in dBm to watts. */
inline double
dbmToWatts(double dbm)
{
    return 1e-3 * std::pow(10.0, dbm / 10.0);
}

/** Convert absolute power in watts to dBm. */
inline double
wattsToDbm(double watts)
{
    return 10.0 * std::log10(watts / 1e-3);
}

// Scalar prefixes -----------------------------------------------------------

constexpr double kilo = 1e3;
constexpr double mega = 1e6;
constexpr double giga = 1e9;
constexpr double milli = 1e-3;
constexpr double micro = 1e-6;
constexpr double nano = 1e-9;
constexpr double pico = 1e-12;
constexpr double femto = 1e-15;

/** Seconds per cycle at a given clock frequency in Hz. */
inline double
cycleTime(double freq_hz)
{
    return 1.0 / freq_hz;
}

/** Number of whole clock cycles needed to cover `seconds` at `freq_hz`. */
inline std::uint64_t
cyclesFor(double seconds, double freq_hz)
{
    return static_cast<std::uint64_t>(std::ceil(seconds * freq_hz - 1e-12));
}

} // namespace units
} // namespace pearl

#endif // PEARL_COMMON_UNITS_HPP
