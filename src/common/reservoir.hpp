/**
 * @file
 * Reservoir sampling for streaming percentile estimates.
 *
 * Mean latency hides tail behaviour; p95/p99 packet latency is the
 * metric latency-sensitive CPU traffic actually cares about.  The
 * reservoir keeps a bounded uniform sample of an unbounded stream
 * (Vitter's Algorithm R) and answers percentile queries from it.
 */

#ifndef PEARL_COMMON_RESERVOIR_HPP
#define PEARL_COMMON_RESERVOIR_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace pearl {

/** Bounded uniform sample of a stream with percentile queries. */
class ReservoirSampler
{
  public:
    /**
     * @param capacity sample size (larger = tighter estimates).
     * @param seed     RNG seed for the replacement draws.
     */
    explicit ReservoirSampler(std::size_t capacity = 4096,
                              std::uint64_t seed = 0x5EED)
        : capacity_(capacity), rng_(seed)
    {
        PEARL_ASSERT(capacity_ > 0);
        sample_.reserve(capacity_);
    }

    /** Offer one value from the stream. */
    void
    add(double x)
    {
        ++seen_;
        if (sample_.size() < capacity_) {
            sample_.push_back(x);
            return;
        }
        // Algorithm R: keep x with probability capacity/seen.
        const std::uint64_t j = rng_.below(seen_);
        if (j < capacity_)
            sample_[static_cast<std::size_t>(j)] = x;
    }

    /** Values offered so far. */
    std::uint64_t count() const { return seen_; }

    /** Current sample size (== min(count, capacity)). */
    std::size_t sampleSize() const { return sample_.size(); }

    /**
     * Estimate the q-quantile (q in [0,1]) from the sample; 0 when the
     * stream is empty.
     */
    double
    quantile(double q) const
    {
        PEARL_ASSERT(q >= 0.0 && q <= 1.0);
        if (sample_.empty())
            return 0.0;
        std::vector<double> sorted = sample_;
        std::sort(sorted.begin(), sorted.end());
        const double pos = q * static_cast<double>(sorted.size() - 1);
        const std::size_t lo = static_cast<std::size_t>(pos);
        const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
        const double frac = pos - static_cast<double>(lo);
        return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
    }

    double median() const { return quantile(0.5); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    void
    reset()
    {
        sample_.clear();
        seen_ = 0;
    }

  private:
    std::size_t capacity_;
    Rng rng_;
    std::vector<double> sample_;
    std::uint64_t seen_ = 0;
};

} // namespace pearl

#endif // PEARL_COMMON_RESERVOIR_HPP
