/**
 * @file
 * Lightweight statistics primitives shared by all subsystems.
 *
 * Counters are plain integers with names; ScalarStat adds rate queries;
 * RunningStat keeps an online mean/variance (Welford) without storing
 * samples; Histogram buckets values for distribution-shaped results such as
 * the wavelength-state residency of Figure 8.
 */

#ifndef PEARL_COMMON_STATS_HPP
#define PEARL_COMMON_STATS_HPP

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/log.hpp"

namespace pearl {

/** Online mean / variance / extrema accumulator (Welford's algorithm). */
class RunningStat
{
  public:
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = n_ == 1 ? x : std::min(min_, x);
        max_ = n_ == 1 ? x : std::max(max_, x);
    }

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }

    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    void
    reset()
    {
        n_ = 0;
        mean_ = m2_ = min_ = max_ = 0.0;
    }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Discrete histogram keyed by integer bucket (e.g. wavelength state). */
class DiscreteHistogram
{
  public:
    void
    add(int bucket, std::uint64_t weight = 1)
    {
        counts_[bucket] += weight;
        total_ += weight;
    }

    std::uint64_t total() const { return total_; }

    std::uint64_t
    count(int bucket) const
    {
        auto it = counts_.find(bucket);
        return it == counts_.end() ? 0 : it->second;
    }

    /** Fraction of total weight in `bucket`; 0 when empty. */
    double
    fraction(int bucket) const
    {
        return total_ ? static_cast<double>(count(bucket)) /
                            static_cast<double>(total_)
                      : 0.0;
    }

    const std::map<int, std::uint64_t> &buckets() const { return counts_; }

    void
    reset()
    {
        counts_.clear();
        total_ = 0;
    }

  private:
    std::map<int, std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * A named group of integer counters, used for per-router accounting where
 * the set of counter names is fixed at construction.
 */
class CounterGroup
{
  public:
    explicit CounterGroup(std::vector<std::string> names)
        : names_(std::move(names)), values_(names_.size(), 0)
    {}

    std::size_t size() const { return values_.size(); }

    std::uint64_t &
    operator[](std::size_t idx)
    {
        PEARL_ASSERT(idx < values_.size());
        return values_[idx];
    }

    std::uint64_t
    operator[](std::size_t idx) const
    {
        PEARL_ASSERT(idx < values_.size());
        return values_[idx];
    }

    const std::string &
    name(std::size_t idx) const
    {
        PEARL_ASSERT(idx < names_.size());
        return names_[idx];
    }

    void
    reset()
    {
        std::fill(values_.begin(), values_.end(), 0);
    }

  private:
    std::vector<std::string> names_;
    std::vector<std::uint64_t> values_;
};

} // namespace pearl

#endif // PEARL_COMMON_STATS_HPP
