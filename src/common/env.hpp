/**
 * @file
 * Strictly-validated environment-variable parsing.
 *
 * Every runtime knob (PEARL_BENCH_*, PEARL_THREADS, ...) goes through
 * these helpers so a typo like PEARL_BENCH_CYCLES=abc warns and falls
 * back to the default instead of silently becoming 0.
 */

#ifndef PEARL_COMMON_ENV_HPP
#define PEARL_COMMON_ENV_HPP

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hpp"

namespace pearl {

/**
 * Parse `text` as an unsigned 64-bit integer.  Leading whitespace,
 * trailing garbage, negative values and out-of-range values all count
 * as parse failures.  @return true and set `out` on success.
 */
inline bool
parseU64(const std::string &text, std::uint64_t &out)
{
    const char *begin = text.c_str();
    // strtoull silently accepts "-5" (wrapping it); reject any minus.
    for (const char *p = begin; *p != '\0'; ++p) {
        if (*p == '-')
            return false;
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(begin, &end, 10);
    if (end == begin || errno == ERANGE)
        return false;
    while (*end == ' ' || *end == '\t')
        ++end;
    if (*end != '\0')
        return false;
    out = static_cast<std::uint64_t>(v);
    return true;
}

/**
 * Read an unsigned integer environment variable.  An unset variable
 * yields `fallback`; an unparseable value warns and yields `fallback`.
 */
inline std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v)
        return fallback;
    std::uint64_t out = 0;
    if (!parseU64(v, out)) {
        warn("ignoring unparseable ", name, "=\"", v, "\"; using ",
             fallback);
        return fallback;
    }
    return out;
}

/**
 * Parse `text` as a double.  Leading whitespace is accepted (strtod
 * semantics); trailing garbage, empty strings and overflow ("1e999")
 * count as parse failures.  Gradual underflow is NOT a failure: strtod
 * sets ERANGE for subnormal results too, but a subnormal is still the
 * correctly rounded value of its decimal spelling — and the canonical
 * CSV writer prints subnormals (max_digits10), so the parser must
 * round-trip them.  Only the overflow half of ERANGE rejects.
 * @return true and set `out` on success.
 */
inline bool
parseDouble(const std::string &text, double &out)
{
    const char *begin = text.c_str();
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin)
        return false;
    if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL))
        return false;
    while (*end == ' ' || *end == '\t')
        ++end;
    if (*end != '\0')
        return false;
    out = v;
    return true;
}

/**
 * Parse `text` as a boolean.  Accepts 0/1, true/false, yes/no, on/off
 * (case-insensitive, surrounding spaces/tabs ignored); anything else is
 * a parse failure.  @return true and set `out` on success.
 */
inline bool
parseBool(const std::string &text, bool &out)
{
    std::size_t first = text.find_first_not_of(" \t");
    if (first == std::string::npos)
        return false;
    std::size_t last = text.find_last_not_of(" \t");
    std::string word = text.substr(first, last - first + 1);
    for (char &c : word)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (word == "1" || word == "true" || word == "yes" || word == "on") {
        out = true;
        return true;
    }
    if (word == "0" || word == "false" || word == "no" || word == "off") {
        out = false;
        return true;
    }
    return false;
}

/**
 * Read a double environment variable.  An unset variable yields
 * `fallback`; an unparseable value warns and yields `fallback` — same
 * contract as envU64.
 */
inline double
envDouble(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    if (!v)
        return fallback;
    double out = 0.0;
    if (!parseDouble(v, out)) {
        warn("ignoring unparseable ", name, "=\"", v, "\"; using ",
             fallback);
        return fallback;
    }
    return out;
}

/**
 * Read a string environment variable.  An unset variable yields
 * `fallback`; any set value (including "") is returned verbatim — there
 * is no unparseable case for strings, so no warn path.
 */
inline std::string
envStr(const char *name, const std::string &fallback)
{
    const char *v = std::getenv(name);
    return v ? std::string(v) : fallback;
}

/**
 * Read a boolean environment variable (PEARL_TRACE and friends).  An
 * unset variable yields `fallback`; an unparseable value warns and
 * yields `fallback` — same contract as envU64.
 */
inline bool
envBool(const char *name, bool fallback)
{
    const char *v = std::getenv(name);
    if (!v)
        return fallback;
    bool out = false;
    if (!parseBool(v, out)) {
        warn("ignoring unparseable ", name, "=\"", v, "\"; using ",
             fallback ? "true" : "false");
        return fallback;
    }
    return out;
}

/** One documented runtime knob (an entry of envRegistry()). */
struct EnvKnob
{
    const char *name;     //!< environment variable
    const char *type;     //!< "bool", "u64", "double" or "string"
    const char *fallback; //!< human-readable default
    const char *summary;  //!< one-line description of the effect
};

/**
 * Single source of truth for every PEARL_* runtime environment knob.
 * The README's knob tables are generated from this list (the drift
 * test in test_common pins them to each other), and envHelp() renders
 * it for `quickstart --env-help`.  Add new knobs HERE when you add the
 * env*() call site, keeping each group alphabetical.
 */
inline const std::vector<EnvKnob> &
envRegistry()
{
    static const std::vector<EnvKnob> knobs = {
        // Simulation core.
        {"PEARL_FAST_FORWARD", "bool", "1",
         "analytic idle fast-forward in system runs; set 0 to force "
         "cycle-by-cycle stepping"},
        {"PEARL_PIN", "bool", "0",
         "pin leased worker lanes to consecutive cores "
         "(pthread_setaffinity_np; no-op where unsupported, never "
         "affects results)"},
        {"PEARL_REBALANCE", "bool", "0",
         "re-pack PEARL step shards from per-router busy counters at "
         "every full reservation-window boundary (deterministic, "
         "results unchanged)"},
        {"PEARL_STEP_THREADS", "u64", "1",
         "DEPRECATED alias consulted only while PEARL_THREADS is "
         "unset: worker lanes for intra-run parallel stepping"},
        {"PEARL_THREADS", "u64", "0 (= tier defaults)",
         "shared execution-engine thread budget: step lanes for single "
         "runs, and for sweeps the job x lane split (N jobs on C "
         "threads get min(C, N) workers x floor(C/W) lanes); "
         "bit-identical results at any value"},
        {"PEARL_VERIFY", "bool", "0",
         "install the invariant auditor on every network built through "
         "the Runner facade (packet conservation, buffer and express "
         "legality each cycle)"},
        // Observability.
        {"PEARL_METRICS_DUMP", "string", "unset",
         "append every run's metrics as canonical CSV rows to this "
         "file"},
        {"PEARL_TRACE", "bool", "0",
         "emit a structured event trace for each run"},
        {"PEARL_TRACE_PATH", "string", "pearl_trace.json",
         "trace output path; extension picks the sink (.jsonl or "
         "Chrome .json)"},
        // Sweep engine.
        {"PEARL_SWEEP_JOURNAL", "string", "unset",
         "crash-safe checkpoint journal: finished jobs append here"},
        {"PEARL_SWEEP_RESUME", "bool", "0",
         "restore finished jobs from the journal instead of re-running "
         "them"},
        {"PEARL_SWEEP_RETRY", "u64", "0",
         "extra attempts for a failed sweep job with the identical "
         "seed; config errors still fail fast"},
        {"PEARL_SWEEP_THREADS", "u64", "hardware threads",
         "DEPRECATED alias consulted only while PEARL_THREADS is "
         "unset: job worker threads for every sweep"},
        // Guarded-ML thresholds (ml::GuardrailConfig::fromEnv).
        {"PEARL_GUARD_ENTER_ERROR", "double", "0.7",
         "windowed mean error above this counts against the model"},
        {"PEARL_GUARD_ENTER_STREAK", "u64", "4",
         "consecutive bad windows before falling back to the reactive "
         "policy"},
        {"PEARL_GUARD_ERROR_WINDOW", "u64", "8",
         "samples per guard error window"},
        {"PEARL_GUARD_EXIT_ERROR", "double", "0.4",
         "windowed mean error below this counts toward recovery"},
        {"PEARL_GUARD_EXIT_STREAK", "u64", "8",
         "consecutive good windows before returning to ML"},
        {"PEARL_GUARD_MAX_PREDICTION", "double", "1e6",
         "predictions above this many packets are clamped as insane"},
        // Benchmarks (bench/*).
        {"PEARL_BENCH_CSV", "u64", "0",
         "non-zero appends a CSV copy after each bench table"},
        {"PEARL_BENCH_CYCLES", "u64", "60000",
         "measured cycles per bench run"},
        {"PEARL_BENCH_JSON", "string", "per-bench",
         "committed-baseline JSON path (bench_hotpath, "
         "bench_ext_scaling)"},
        {"PEARL_BENCH_PAIRS", "u64", "0 (= all)",
         "cap on benchmark pairs a figure aggregates over"},
        {"PEARL_BENCH_REPS", "u64", "3",
         "repetitions per timing bench; the best rep is reported"},
        {"PEARL_BENCH_TRAIN", "u64", "30000",
         "training-simulation cycles for ML benches"},
        {"PEARL_BENCH_TRAIN_PAIRS", "u64", "0 (= all)",
         "cap on training pairs for ML benches"},
        {"PEARL_BENCH_WARMUP", "u64", "per-bench",
         "warm-up cycles excluded from measurement (10000 for figure "
         "benches, 2000 for bench_hotpath)"},
        // Tests and fuzzing.
        {"PEARL_FUZZ_CASES", "u64", "200",
         "differential fuzz cases per campaign"},
        {"PEARL_FUZZ_SECONDS", "double", "0 (= unlimited)",
         "wall-clock budget for a fuzz campaign"},
        {"PEARL_FUZZ_SEED", "u64", "0xF0CC",
         "base seed a fuzz campaign derives every case from"},
        {"PEARL_UPDATE_GOLDEN", "u64", "0",
         "non-zero makes test_golden_metrics regenerate the golden "
         "CSVs instead of diffing"},
        // Scripts.
        {"PEARL_CHECK_JOBS", "u64", "4",
         "parallel build jobs for scripts/check.sh"},
    };
    return knobs;
}

/** Plain-text rendering of envRegistry() (for --env-help flags). */
inline std::string
envHelp()
{
    std::size_t width = 0;
    for (const EnvKnob &k : envRegistry())
        width = std::max(width, std::string(k.name).size());
    std::ostringstream os;
    os << "Runtime environment knobs (unset or unparseable values fall "
          "back to the default):\n";
    for (const EnvKnob &k : envRegistry()) {
        os << "  " << k.name
           << std::string(width - std::string(k.name).size(), ' ')
           << "  [" << k.type << ", default " << k.fallback << "] "
           << k.summary << '\n';
    }
    return os.str();
}

/** Markdown rendering of envRegistry(); the README embeds this table
 *  verbatim (test_common checks for drift). */
inline std::string
envMarkdownTable()
{
    std::ostringstream os;
    os << "| Variable | Type | Default | Effect |\n";
    os << "| --- | --- | --- | --- |\n";
    for (const EnvKnob &k : envRegistry()) {
        os << "| `" << k.name << "` | " << k.type << " | " << k.fallback
           << " | " << k.summary << " |\n";
    }
    return os.str();
}

} // namespace pearl

#endif // PEARL_COMMON_ENV_HPP
