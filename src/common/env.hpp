/**
 * @file
 * Strictly-validated environment-variable parsing.
 *
 * Every runtime knob (PEARL_BENCH_*, PEARL_SWEEP_THREADS, ...) goes
 * through these helpers so a typo like PEARL_BENCH_CYCLES=abc warns and
 * falls back to the default instead of silently becoming 0.
 */

#ifndef PEARL_COMMON_ENV_HPP
#define PEARL_COMMON_ENV_HPP

#include <cerrno>
#include <cstdlib>
#include <cstdint>
#include <string>

#include "common/log.hpp"

namespace pearl {

/**
 * Parse `text` as an unsigned 64-bit integer.  Leading whitespace,
 * trailing garbage, negative values and out-of-range values all count
 * as parse failures.  @return true and set `out` on success.
 */
inline bool
parseU64(const std::string &text, std::uint64_t &out)
{
    const char *begin = text.c_str();
    // strtoull silently accepts "-5" (wrapping it); reject any minus.
    for (const char *p = begin; *p != '\0'; ++p) {
        if (*p == '-')
            return false;
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(begin, &end, 10);
    if (end == begin || errno == ERANGE)
        return false;
    while (*end == ' ' || *end == '\t')
        ++end;
    if (*end != '\0')
        return false;
    out = static_cast<std::uint64_t>(v);
    return true;
}

/**
 * Read an unsigned integer environment variable.  An unset variable
 * yields `fallback`; an unparseable value warns and yields `fallback`.
 */
inline std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v)
        return fallback;
    std::uint64_t out = 0;
    if (!parseU64(v, out)) {
        warn("ignoring unparseable ", name, "=\"", v, "\"; using ",
             fallback);
        return fallback;
    }
    return out;
}

} // namespace pearl

#endif // PEARL_COMMON_ENV_HPP
