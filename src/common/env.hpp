/**
 * @file
 * Strictly-validated environment-variable parsing.
 *
 * Every runtime knob (PEARL_BENCH_*, PEARL_SWEEP_THREADS, ...) goes
 * through these helpers so a typo like PEARL_BENCH_CYCLES=abc warns and
 * falls back to the default instead of silently becoming 0.
 */

#ifndef PEARL_COMMON_ENV_HPP
#define PEARL_COMMON_ENV_HPP

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstdint>
#include <string>

#include "common/log.hpp"

namespace pearl {

/**
 * Parse `text` as an unsigned 64-bit integer.  Leading whitespace,
 * trailing garbage, negative values and out-of-range values all count
 * as parse failures.  @return true and set `out` on success.
 */
inline bool
parseU64(const std::string &text, std::uint64_t &out)
{
    const char *begin = text.c_str();
    // strtoull silently accepts "-5" (wrapping it); reject any minus.
    for (const char *p = begin; *p != '\0'; ++p) {
        if (*p == '-')
            return false;
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(begin, &end, 10);
    if (end == begin || errno == ERANGE)
        return false;
    while (*end == ' ' || *end == '\t')
        ++end;
    if (*end != '\0')
        return false;
    out = static_cast<std::uint64_t>(v);
    return true;
}

/**
 * Read an unsigned integer environment variable.  An unset variable
 * yields `fallback`; an unparseable value warns and yields `fallback`.
 */
inline std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v)
        return fallback;
    std::uint64_t out = 0;
    if (!parseU64(v, out)) {
        warn("ignoring unparseable ", name, "=\"", v, "\"; using ",
             fallback);
        return fallback;
    }
    return out;
}

/**
 * Parse `text` as a double.  Leading whitespace is accepted (strtod
 * semantics); trailing garbage, empty strings and overflow ("1e999")
 * count as parse failures.  Gradual underflow is NOT a failure: strtod
 * sets ERANGE for subnormal results too, but a subnormal is still the
 * correctly rounded value of its decimal spelling — and the canonical
 * CSV writer prints subnormals (max_digits10), so the parser must
 * round-trip them.  Only the overflow half of ERANGE rejects.
 * @return true and set `out` on success.
 */
inline bool
parseDouble(const std::string &text, double &out)
{
    const char *begin = text.c_str();
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin)
        return false;
    if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL))
        return false;
    while (*end == ' ' || *end == '\t')
        ++end;
    if (*end != '\0')
        return false;
    out = v;
    return true;
}

/**
 * Parse `text` as a boolean.  Accepts 0/1, true/false, yes/no, on/off
 * (case-insensitive, surrounding spaces/tabs ignored); anything else is
 * a parse failure.  @return true and set `out` on success.
 */
inline bool
parseBool(const std::string &text, bool &out)
{
    std::size_t first = text.find_first_not_of(" \t");
    if (first == std::string::npos)
        return false;
    std::size_t last = text.find_last_not_of(" \t");
    std::string word = text.substr(first, last - first + 1);
    for (char &c : word)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (word == "1" || word == "true" || word == "yes" || word == "on") {
        out = true;
        return true;
    }
    if (word == "0" || word == "false" || word == "no" || word == "off") {
        out = false;
        return true;
    }
    return false;
}

/**
 * Read a double environment variable.  An unset variable yields
 * `fallback`; an unparseable value warns and yields `fallback` — same
 * contract as envU64.
 */
inline double
envDouble(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    if (!v)
        return fallback;
    double out = 0.0;
    if (!parseDouble(v, out)) {
        warn("ignoring unparseable ", name, "=\"", v, "\"; using ",
             fallback);
        return fallback;
    }
    return out;
}

/**
 * Read a string environment variable.  An unset variable yields
 * `fallback`; any set value (including "") is returned verbatim — there
 * is no unparseable case for strings, so no warn path.
 */
inline std::string
envStr(const char *name, const std::string &fallback)
{
    const char *v = std::getenv(name);
    return v ? std::string(v) : fallback;
}

/**
 * Read a boolean environment variable (PEARL_TRACE and friends).  An
 * unset variable yields `fallback`; an unparseable value warns and
 * yields `fallback` — same contract as envU64.
 */
inline bool
envBool(const char *name, bool fallback)
{
    const char *v = std::getenv(name);
    if (!v)
        return fallback;
    bool out = false;
    if (!parseBool(v, out)) {
        warn("ignoring unparseable ", name, "=\"", v, "\"; using ",
             fallback ? "true" : "false");
        return fallback;
    }
    return out;
}

} // namespace pearl

#endif // PEARL_COMMON_ENV_HPP
