/**
 * @file
 * Logging and error-reporting helpers in the gem5 spirit.
 *
 * `panic()` is for internal invariant violations (simulator bugs) and
 * aborts; `fatal()` is for user/configuration errors and exits cleanly;
 * `warn()` and `inform()` are status messages that never stop the run.
 */

#ifndef PEARL_COMMON_LOG_HPP
#define PEARL_COMMON_LOG_HPP

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace pearl {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel { Silent = 0, Error = 1, Warn = 2, Info = 3, Debug = 4 };

/** Global log configuration (process-wide). */
class Log
{
  public:
    /** Current verbosity; messages above this level are suppressed. */
    static LogLevel &
    level()
    {
        static LogLevel lvl = LogLevel::Warn;
        return lvl;
    }

    /** Output stream used for all log messages (defaults to stderr). */
    static std::ostream *&
    stream()
    {
        static std::ostream *os = &std::cerr;
        return os;
    }
};

namespace detail {

template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Informational message: normal operating status, nothing is wrong. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (Log::level() >= LogLevel::Info) {
        *Log::stream() << "info: "
                       << detail::formatMessage(std::forward<Args>(args)...)
                       << "\n";
    }
}

/** Warning: something may behave suboptimally but the run continues. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (Log::level() >= LogLevel::Warn) {
        *Log::stream() << "warn: "
                       << detail::formatMessage(std::forward<Args>(args)...)
                       << "\n";
    }
}

/**
 * Fatal error: the run cannot continue because of a user-visible problem
 * (bad configuration, invalid arguments).  Exits with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    *Log::stream() << "fatal: "
                   << detail::formatMessage(std::forward<Args>(args)...)
                   << "\n";
    std::exit(1);
}

/**
 * Panic: an internal invariant was violated — a simulator bug, not a user
 * error.  Aborts so a core dump / debugger can catch it.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    *Log::stream() << "panic: "
                   << detail::formatMessage(std::forward<Args>(args)...)
                   << "\n";
    std::abort();
}

/** Panic unless `cond` holds. */
#define PEARL_ASSERT(cond, ...)                                              \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::pearl::panic("assertion failed: ", #cond, " @ ", __FILE__,    \
                           ":", __LINE__, " ", ##__VA_ARGS__);               \
        }                                                                    \
    } while (0)

} // namespace pearl

#endif // PEARL_COMMON_LOG_HPP
