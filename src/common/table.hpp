/**
 * @file
 * Aligned text-table and CSV emission for the benchmark harness.
 *
 * Every bench binary regenerates one of the paper's tables or figures; the
 * TextTable renders the rows in a human-readable aligned form, and the same
 * data can be dumped as CSV for plotting.
 */

#ifndef PEARL_COMMON_TABLE_HPP
#define PEARL_COMMON_TABLE_HPP

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace pearl {

/** A simple column-aligned table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header)
        : header_(std::move(header))
    {}

    /** Append one row; the cell count should match the header. */
    void
    addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    /** Format a double with fixed precision for table cells. */
    static std::string
    num(double value, int precision = 3)
    {
        std::ostringstream oss;
        oss << std::fixed << std::setprecision(precision) << value;
        return oss.str();
    }

    /** Format a percentage (0.034 -> "3.4%"). */
    static std::string
    pct(double fraction, int precision = 1)
    {
        std::ostringstream oss;
        oss << std::fixed << std::setprecision(precision)
            << (fraction * 100.0) << "%";
        return oss.str();
    }

    /** Render the table with aligned columns. */
    void
    print(std::ostream &os) const
    {
        std::vector<std::size_t> width(header_.size(), 0);
        auto grow = [&](const std::vector<std::string> &row) {
            for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
                width[c] = std::max(width[c], row[c].size());
        };
        grow(header_);
        for (const auto &row : rows_)
            grow(row);

        auto emit = [&](const std::vector<std::string> &row) {
            for (std::size_t c = 0; c < width.size(); ++c) {
                const std::string &cell = c < row.size() ? row[c] : "";
                os << std::left << std::setw(static_cast<int>(width[c]) + 2)
                   << cell;
            }
            os << "\n";
        };
        emit(header_);
        for (std::size_t c = 0; c < width.size(); ++c)
            os << std::string(width[c], '-') << "  ";
        os << "\n";
        for (const auto &row : rows_)
            emit(row);
    }

    /** Render the table as CSV. */
    void
    printCsv(std::ostream &os) const
    {
        auto emit = [&](const std::vector<std::string> &row) {
            for (std::size_t c = 0; c < row.size(); ++c) {
                if (c)
                    os << ",";
                os << row[c];
            }
            os << "\n";
        };
        emit(header_);
        for (const auto &row : rows_)
            emit(row);
    }

    const std::vector<std::string> &header() const { return header_; }
    const std::vector<std::vector<std::string>> &rows() const { return rows_; }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace pearl

#endif // PEARL_COMMON_TABLE_HPP
