#!/usr/bin/env sh
# CI entry point: build and run the tier-1 test suite under the
# default toolchain, AddressSanitizer+UBSan and ThreadSanitizer, plus
# the verification plane (differential suite + time-boxed fuzz smoke).
#
#   scripts/check.sh            # all four flavours
#   scripts/check.sh default    # just one (default | asan | tsan | verify)
#
# Each flavour uses its own build directory (build-check-<flavour>) so
# repeated runs are incremental and the user's ./build is untouched.
# Exits non-zero on the first failing flavour.
#
# The verify flavour reuses the asan build tree (sanitized binaries),
# runs only tests labelled `verify` with the runtime invariant checker
# forced on, and budgets the fuzz campaign through PEARL_FUZZ_CASES /
# PEARL_FUZZ_SECONDS (defaults: 200 seed-pinned cases, 30 s box).
# The label also covers the scale-out smokes: a 64-cluster grouped chip
# through the Runner facade (Invariants.ScaleOut64ClusterSmoke, pinned
# seed, bounded cycles) and the 128-cluster invariant-clean run
# (Invariants.MaxScaleChipRunsInvariantClean), both audited step by
# step under ASan.

set -eu

cd "$(dirname "$0")/.."

JOBS="${PEARL_CHECK_JOBS:-4}"
FLAVOURS="${1:-default asan tsan verify}"

run_flavour() {
    flavour="$1"
    dir="build-check-$flavour"
    case "$flavour" in
    default) sanitize=OFF ;;
    asan) sanitize=ON ;;
    tsan) sanitize=TSAN ;;
    verify) dir="build-check-asan" sanitize=ON ;;
    *)
        echo "check.sh: unknown flavour '$flavour'" \
             "(want default | asan | tsan | verify)" >&2
        exit 2
        ;;
    esac

    echo "==> [$flavour] configure (PEARL_SANITIZE=$sanitize)"
    cmake -B "$dir" -DPEARL_SANITIZE="$sanitize" \
        -DPEARL_BUILD_BENCH=OFF -DPEARL_BUILD_EXAMPLES=OFF \
        >"$dir.configure.log" 2>&1 || {
        cat "$dir.configure.log"
        exit 1
    }

    echo "==> [$flavour] build"
    cmake --build "$dir" -j "$JOBS" >"$dir.build.log" 2>&1 || {
        tail -n 100 "$dir.build.log"
        exit 1
    }

    if [ "$flavour" = verify ]; then
        # PEARL_THREADS=4 drives the whole differential suite —
        # including the 128-cluster invariant-clean smoke — through the
        # shared-engine parallel step path, audited under ASan.
        echo "==> [verify] ctest -L verify (invariants on, fuzz smoke," \
             "PEARL_THREADS=4)"
        PEARL_VERIFY=1 \
        PEARL_THREADS=4 \
        PEARL_FUZZ_CASES="${PEARL_FUZZ_CASES:-200}" \
        PEARL_FUZZ_SECONDS="${PEARL_FUZZ_SECONDS:-30}" \
            ctest --test-dir "$dir" -L verify --output-on-failure
    elif [ "$flavour" = tsan ]; then
        # A shared engine budget forces worker lanes on, so
        # ThreadSanitizer race-checks the execution engine — nested
        # sweep x step leasing included — across the whole suite.
        echo "==> [tsan] ctest -L tier1 (PEARL_THREADS=8)"
        PEARL_THREADS=8 \
            ctest --test-dir "$dir" -L tier1 --output-on-failure
    else
        echo "==> [$flavour] ctest -L tier1"
        ctest --test-dir "$dir" -L tier1 --output-on-failure
    fi
}

for f in $FLAVOURS; do
    run_flavour "$f"
done

echo "==> all flavours passed: $FLAVOURS"
