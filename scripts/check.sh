#!/usr/bin/env sh
# CI entry point: build and run the tier-1 test suite under the
# default toolchain, AddressSanitizer+UBSan and ThreadSanitizer.
#
#   scripts/check.sh            # all three flavours
#   scripts/check.sh default    # just one (default | asan | tsan)
#
# Each flavour uses its own build directory (build-check-<flavour>) so
# repeated runs are incremental and the user's ./build is untouched.
# Exits non-zero on the first failing flavour.

set -eu

cd "$(dirname "$0")/.."

JOBS="${PEARL_CHECK_JOBS:-4}"
FLAVOURS="${1:-default asan tsan}"

run_flavour() {
    flavour="$1"
    dir="build-check-$flavour"
    case "$flavour" in
    default) sanitize=OFF ;;
    asan) sanitize=ON ;;
    tsan) sanitize=TSAN ;;
    *)
        echo "check.sh: unknown flavour '$flavour'" \
             "(want default | asan | tsan)" >&2
        exit 2
        ;;
    esac

    echo "==> [$flavour] configure (PEARL_SANITIZE=$sanitize)"
    cmake -B "$dir" -DPEARL_SANITIZE="$sanitize" \
        -DPEARL_BUILD_BENCH=OFF -DPEARL_BUILD_EXAMPLES=OFF \
        >"$dir.configure.log" 2>&1 || {
        cat "$dir.configure.log"
        exit 1
    }

    echo "==> [$flavour] build"
    cmake --build "$dir" -j "$JOBS" >"$dir.build.log" 2>&1 || {
        tail -n 100 "$dir.build.log"
        exit 1
    }

    echo "==> [$flavour] ctest -L tier1"
    ctest --test-dir "$dir" -L tier1 --output-on-failure
}

for f in $FLAVOURS; do
    run_flavour "$f"
done

echo "==> all flavours passed: $FLAVOURS"
