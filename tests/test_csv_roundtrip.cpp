/**
 * @file
 * Property test: the CSV schema round-trips RunMetrics exactly.
 *
 * csvRow -> splitCsvLine -> parseMetricCells must be the identity on
 * every representable value, including the awkward corners of IEEE 754
 * (NaN, infinities, subnormals, negative zero, extreme magnitudes) —
 * the sweep journal trusts this inverse to restore completed jobs on
 * resume.  Subnormals are the regression this suite pins: strtod sets
 * ERANGE on underflow, and parseDouble used to reject that, silently
 * dropping journal rows whose residency shares had denormalised.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "metrics/csv.hpp"

namespace pearl {
namespace metrics {
namespace {

/** Bitwise equality, with all NaNs identified: the formatter spells
 *  every NaN payload "nan"/"-nan", so payload bits cannot survive the
 *  trip and must not be asserted. */
bool
sameValue(double a, double b)
{
    if (std::isnan(a) || std::isnan(b))
        return std::isnan(a) && std::isnan(b) &&
               std::signbit(a) == std::signbit(b);
    return std::bit_cast<std::uint64_t>(a) ==
           std::bit_cast<std::uint64_t>(b);
}

/** Adversarial double corpus: every IEEE 754 corner the formatter and
 *  parser could disagree on. */
std::vector<double>
specialDoubles()
{
    using lim = std::numeric_limits<double>;
    return {
        0.0,
        -0.0,
        lim::quiet_NaN(),
        -lim::quiet_NaN(),
        lim::infinity(),
        -lim::infinity(),
        lim::denorm_min(),
        -lim::denorm_min(),
        437.0 * lim::denorm_min(),
        lim::min(),                     // smallest normal
        std::nextafter(lim::min(), 0.0), // largest subnormal
        lim::max(),
        -lim::max(),
        lim::epsilon(),
        1.0 / 3.0,
        -123456.789e-200,
        9.87654321e300,
    };
}

RunMetrics
fuzzedMetrics(Rng &rng, const std::vector<double> &corpus)
{
    RunMetrics m;
    m.configName = "fuzz";
    m.pairLabel = "FZ+FZ";
    // Integer fields: arbitrary 64-bit values.
    m.cycles = rng.next();
    m.deliveredPackets = rng.next();
    m.deliveredFlits = rng.next();
    m.deliveredBits = rng.next();
    m.cpuPackets = rng.next();
    m.gpuPackets = rng.next();
    m.corruptedPackets = rng.next();
    m.reservationDrops = rng.next();
    m.retransmittedPackets = rng.next();
    m.ackTimeouts = rng.next();
    m.droppedPackets = rng.next();
    m.thermalUnlockedCycles = rng.next();
    // Double fields: a special value or a raw random bit pattern.
    const auto draw = [&]() -> double {
        if (rng.chance(0.5))
            return corpus[rng.below(corpus.size())];
        return std::bit_cast<double>(rng.next());
    };
    m.throughputFlitsPerCycle = draw();
    m.throughputGbps = draw();
    m.avgLatencyCycles = draw();
    m.cpuLatencyCycles = draw();
    m.gpuLatencyCycles = draw();
    m.totalEnergyJ = draw();
    m.energyPerBitPj = draw();
    m.laserPowerW = draw();
    for (double &r : m.residency)
        r = draw();
    return m;
}

/** The metric cells of a rendered row (key columns stripped). */
std::vector<std::string>
metricCells(const RunMetrics &m, std::size_t num_keys)
{
    std::vector<std::string> cells =
        splitCsvLine(csvRow({"cfg", "pair"}, m));
    cells.erase(cells.begin(),
                cells.begin() + static_cast<std::ptrdiff_t>(num_keys));
    return cells;
}

TEST(CsvRoundTrip, FuzzedMetricsSurviveRenderParseRender)
{
    const std::vector<double> corpus = specialDoubles();
    Rng rng(0xC5F);
    for (int trial = 0; trial < 500; ++trial) {
        const RunMetrics original = fuzzedMetrics(rng, corpus);
        const std::vector<std::string> cells = metricCells(original, 2);

        RunMetrics parsed;
        parsed.configName = original.configName;
        parsed.pairLabel = original.pairLabel;
        ASSERT_TRUE(parseMetricCells(cells, parsed))
            << "trial " << trial << " row: " << csvRow({"c", "p"}, original);

        // Value-level inverse: every field identical (doubles bitwise,
        // NaN sign preserved, payload identified).
        const auto want = metricFields(original);
        const auto got = metricFields(parsed);
        ASSERT_EQ(want.size(), got.size());
        for (std::size_t i = 0; i < want.size(); ++i) {
            ASSERT_EQ(want[i].isInteger, got[i].isInteger);
            if (want[i].isInteger)
                EXPECT_EQ(want[i].u, got[i].u)
                    << "trial " << trial << " field " << want[i].name;
            else
                EXPECT_TRUE(sameValue(want[i].d, got[i].d))
                    << "trial " << trial << " field " << want[i].name
                    << ": " << formatMetricValue(want[i]) << " vs "
                    << formatMetricValue(got[i]);
        }

        // String-level inverse: re-rendering the parsed row reproduces
        // the original bytes (the sweep journal appends these verbatim).
        EXPECT_EQ(csvRow({"cfg", "pair"}, parsed),
                  csvRow({"cfg", "pair"}, original))
            << "trial " << trial;
    }
}

TEST(CsvRoundTrip, HeaderAndRowColumnCountsAgree)
{
    const RunMetrics m;
    const auto header = splitCsvLine(csvHeader({"config", "pair"}));
    const auto row = splitCsvLine(csvRow({"c", "p"}, m));
    EXPECT_EQ(header.size(), row.size());
    EXPECT_EQ(header.size(), 2 + metricFields(m).size());
}

TEST(CsvRoundTrip, RejectsMalformedRows)
{
    const RunMetrics m;
    std::vector<std::string> cells = metricCells(m, 2);

    {
        RunMetrics out;
        auto extra = cells;
        extra.push_back("0");
        EXPECT_FALSE(parseMetricCells(extra, out));
    }
    {
        RunMetrics out;
        auto missing = cells;
        missing.pop_back();
        EXPECT_FALSE(parseMetricCells(missing, out));
    }
    {
        RunMetrics out;
        auto garbage = cells;
        garbage[0] = "12x"; // trailing junk on an integer field
        EXPECT_FALSE(parseMetricCells(garbage, out));
    }
    {
        RunMetrics out;
        auto negative = cells;
        negative[0] = "-3"; // integer fields are unsigned counters
        EXPECT_FALSE(parseMetricCells(negative, out));
    }
    {
        // A failed parse must not clobber the output row (the journal
        // skips the line and keeps the previously restored state).
        RunMetrics out;
        out.cycles = 42;
        auto garbage = cells;
        garbage.back() = "not-a-number";
        EXPECT_FALSE(parseMetricCells(garbage, out));
        EXPECT_EQ(out.cycles, 42u);
    }
}

// parseDouble itself: the primitive under the schema ------------------------

TEST(CsvRoundTrip, ParseDoubleAcceptsSubnormalsBitExactly)
{
    // strtod reports ERANGE on gradual underflow even though the
    // rounded subnormal it returns is the correct closest value;
    // parseDouble must accept it (only overflow to +/-HUGE_VAL is a
    // genuine range failure).
    using lim = std::numeric_limits<double>;
    for (double v : {lim::denorm_min(), 437.0 * lim::denorm_min(),
                     std::nextafter(lim::min(), 0.0),
                     -lim::denorm_min()}) {
        MetricField f;
        f.isInteger = false;
        f.d = v;
        double out = 0.0;
        ASSERT_TRUE(parseDouble(formatMetricValue(f), out))
            << formatMetricValue(f);
        EXPECT_EQ(std::bit_cast<std::uint64_t>(out),
                  std::bit_cast<std::uint64_t>(v))
            << formatMetricValue(f);
    }
}

TEST(CsvRoundTrip, ParseDoubleStillRejectsOverflowAndGarbage)
{
    double out = 0.0;
    EXPECT_FALSE(parseDouble("1e999", out));
    EXPECT_FALSE(parseDouble("-1e999", out));
    EXPECT_FALSE(parseDouble("", out));
    EXPECT_FALSE(parseDouble("4.2q", out));
    EXPECT_TRUE(parseDouble("inf", out));
    EXPECT_TRUE(std::isinf(out));
    EXPECT_TRUE(parseDouble("nan", out));
    EXPECT_TRUE(std::isnan(out));
    EXPECT_TRUE(parseDouble("-0", out));
    EXPECT_TRUE(std::signbit(out));
}

} // namespace
} // namespace metrics
} // namespace pearl
