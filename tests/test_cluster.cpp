/**
 * @file
 * Behavioural tests of the cluster node: L1 filtering, write-through
 * stores, MSHR merging, upgrades, probes and telemetry.
 */

#include <gtest/gtest.h>

#include "cache/cluster.hpp"
#include "fakes.hpp"
#include "traffic/suite.hpp"

namespace pearl {
namespace cache {
namespace {

using sim::CoherenceOp;
using sim::CoreType;
using sim::Cycle;
using sim::MsgClass;
using sim::NodeUnit;
using sim::Packet;
using test::CapturingSink;

/** A profile that never issues accesses on its own (we drive manually
 *  through deterministic single-access profiles instead). */
traffic::BenchmarkProfile
silentProfile(sim::CoreType type)
{
    traffic::BenchmarkProfile p;
    p.name = "silent";
    p.abbrev = "sil";
    p.coreType = type;
    p.accessRateOn = 0.0;
    p.accessRateOff = 0.0;
    p.instrFraction = 0.0;
    p.writeFraction = 0.0;
    p.sharedFraction = 0.0;
    return p;
}

/** A profile that issues a data access every cycle. */
traffic::BenchmarkProfile
firehoseProfile(sim::CoreType type, double write_fraction = 0.0,
                std::uint64_t ws = 1024)
{
    traffic::BenchmarkProfile p = silentProfile(type);
    p.name = "firehose";
    p.abbrev = "fh";
    p.accessRateOn = 1.0;
    p.accessRateOff = 1.0;
    p.writeFraction = write_fraction;
    p.workingSetLines = ws;
    p.streamFraction = 1.0;
    return p;
}

class ClusterTest : public ::testing::Test
{
  protected:
    ClusterTest()
    {
        cfg_.l1ToL2Cycles = 1;
        cfg_.l2AccessCycles = 1;
    }

    void
    makeCluster(const traffic::BenchmarkProfile &cpu,
                const traffic::BenchmarkProfile &gpu)
    {
        HomeMap map;
        cluster_ = std::make_unique<ClusterNode>(2, map, cfg_, cpu, gpu,
                                                 Rng(77));
        cluster_->attach(&sink_, &telemetry_);
    }

    void
    runCycles(int n)
    {
        for (int i = 0; i < n; ++i, ++now_)
            cluster_->tick(now_);
    }

    /** Respond to every outstanding network read with a fill. */
    void
    answerReads(CoherenceOp grant = CoherenceOp::DataExcl)
    {
        auto reads = sink_.packets;
        sink_.clear();
        for (const auto &req : reads) {
            if (req.op != CoherenceOp::Read &&
                req.op != CoherenceOp::ReadExcl) {
                sink_.packets.push_back(req); // keep non-reads
                continue;
            }
            Packet fill;
            // Coherent store misses (ReadExcl) must always be granted
            // exclusively; `grant` only selects the grant for plain reads.
            fill.op = req.op == CoherenceOp::ReadExcl
                          ? CoherenceOp::DataExcl
                          : grant;
            fill.msgClass = sim::coreTypeOf(req.msgClass) == CoreType::CPU
                                ? MsgClass::RespCpuL2Down
                                : MsgClass::RespGpuL2Down;
            fill.dstUnit = NodeUnit::Cluster;
            fill.src = req.dst;
            fill.dst = 2;
            fill.addr = req.addr;
            fill.sizeBits = sim::kResponseBits;
            cluster_->deliver(fill, now_);
        }
    }

    HierarchyConfig cfg_;
    CapturingSink sink_;
    sim::RouterTelemetry telemetry_;
    std::unique_ptr<ClusterNode> cluster_;
    Cycle now_ = 0;
};

TEST_F(ClusterTest, FirstTouchMissesGoToHomeBank)
{
    makeCluster(firehoseProfile(CoreType::CPU), silentProfile(CoreType::GPU));
    runCycles(10);
    const auto reads = sink_.withOp(CoherenceOp::Read);
    ASSERT_GT(reads.size(), 0u);
    HomeMap map;
    for (const auto &r : reads) {
        EXPECT_EQ(r.dst, map.homeOf(r.addr));
        EXPECT_EQ(r.dstUnit, NodeUnit::L3Bank);
        EXPECT_EQ(r.msgClass, MsgClass::ReqCpuL2Down);
        EXPECT_EQ(r.sizeBits, sim::kRequestBits);
    }
}

TEST_F(ClusterTest, StreamingIsL1Filtered)
{
    // Eight word accesses per line: once the fill lands, the remaining
    // accesses to the line hit the L1.
    auto prof = firehoseProfile(CoreType::CPU);
    prof.accessRateOn = prof.accessRateOff = 0.2;
    makeCluster(prof, silentProfile(CoreType::GPU));
    for (int i = 0; i < 600; ++i) {
        runCycles(1);
        answerReads();
    }
    const auto &s = cluster_->stats();
    EXPECT_GT(s.l1Hits[0], s.l1Misses[0]);
}

TEST_F(ClusterTest, SecondaryMissesMergeInMshr)
{
    // All accesses stream through the same lines; with no responses the
    // requests pile onto existing MSHR entries instead of the network.
    makeCluster(firehoseProfile(CoreType::CPU), silentProfile(CoreType::GPU));
    runCycles(30);
    const auto reads = sink_.withOp(CoherenceOp::Read);
    // Far fewer network reads than accesses: one per distinct line.
    EXPECT_LE(reads.size(), 10u);
    EXPECT_GT(cluster_->mshrOccupancy(CoreType::CPU), 0u);
}

TEST_F(ClusterTest, CpuStoreMissesUseReadExclusive)
{
    // Coherent CPU store misses must request ownership, not a plain read.
    makeCluster(firehoseProfile(CoreType::CPU, /*write=*/1.0),
                silentProfile(CoreType::GPU));
    runCycles(5);
    EXPECT_GT(sink_.countOp(CoherenceOp::ReadExcl), 0u);
    EXPECT_EQ(sink_.countOp(CoherenceOp::Read), 0u);
}

TEST_F(ClusterTest, MixedLoadStoreWaiters)
{
    // Loads and stores to the same streamed lines: loads create the MSHR
    // entry (op Read), stores join as waiters; a shared grant then forces
    // an upgrade ReadExcl for the stores.
    makeCluster(firehoseProfile(CoreType::CPU, /*write=*/0.5),
                silentProfile(CoreType::GPU));
    runCycles(20);
    answerReads(CoherenceOp::Data); // shared grants
    runCycles(5);
    EXPECT_GT(sink_.countOp(CoherenceOp::ReadExcl), 0u);
}

TEST_F(ClusterTest, GpuPrivateStoresAreNonCoherent)
{
    // GPU stores to private data use plain reads (N-state fill), not RFO.
    makeCluster(silentProfile(CoreType::CPU),
                firehoseProfile(CoreType::GPU, /*write=*/1.0));
    runCycles(10);
    EXPECT_GT(sink_.countOp(CoherenceOp::Read), 0u);
    EXPECT_EQ(sink_.countOp(CoherenceOp::ReadExcl), 0u);
}

TEST_F(ClusterTest, ProbeInvalidateAcksAndInvalidates)
{
    makeCluster(firehoseProfile(CoreType::CPU), silentProfile(CoreType::GPU));
    runCycles(4);
    answerReads();
    runCycles(4);
    sink_.clear();

    // Probe an address the cluster now holds.
    Packet probe;
    probe.op = CoherenceOp::ProbeInv;
    probe.msgClass = MsgClass::ReqCpuL2Down;
    probe.src = 9; // bank node
    probe.dst = 2;
    probe.addr = traffic::AddressSpace::privateBase(2 * 64) + 0;
    cluster_->deliver(probe, now_);

    ASSERT_EQ(sink_.packets.size(), 1u);
    const Packet &reply = sink_.packets[0];
    EXPECT_EQ(reply.dst, 9); // back to the probing bank
    EXPECT_EQ(reply.dstUnit, NodeUnit::L3Bank);
    EXPECT_TRUE(reply.op == CoherenceOp::Ack ||
                reply.op == CoherenceOp::Data);
    EXPECT_EQ(cluster_->stats().probesReceived, 1u);

    // A second probe for a line we never had: plain Ack.
    sink_.clear();
    probe.addr = 0xDEAD0000;
    cluster_->deliver(probe, now_);
    ASSERT_EQ(sink_.packets.size(), 1u);
    EXPECT_EQ(sink_.packets[0].op, CoherenceOp::Ack);
}

TEST_F(ClusterTest, OutstandingLimitStallsCore)
{
    cfg_.cpuCoreMaxOutstanding = 2;
    makeCluster(firehoseProfile(CoreType::CPU), silentProfile(CoreType::GPU));
    runCycles(50); // no responses -> outstanding saturates
    const auto &s = cluster_->stats();
    EXPECT_GT(s.stalled[0], 0u);
}

TEST_F(ClusterTest, TelemetryCountsLocalTraffic)
{
    makeCluster(firehoseProfile(CoreType::CPU), silentProfile(CoreType::GPU));
    runCycles(10);
    // L1 miss requests were recorded as local core traffic.
    EXPECT_GT(telemetry_.incomingFromCores, 0u);
    EXPECT_GT(telemetry_.classCounts[static_cast<int>(
                  MsgClass::ReqCpuL1D)], 0u);
}

TEST_F(ClusterTest, FillDeliversToL1AndReleasesOutstanding)
{
    makeCluster(firehoseProfile(CoreType::CPU), silentProfile(CoreType::GPU));
    runCycles(4);
    answerReads();
    runCycles(4);
    EXPECT_GT(telemetry_.packetsToCore, 0u); // L2->L1 fills happened
    EXPECT_EQ(cluster_->mshrOccupancy(CoreType::CPU), 0u);
}

TEST_F(ClusterTest, WritebacksOnCapacityEviction)
{
    // Tiny L2 so dirty lines get evicted quickly.
    cfg_.cpuL2Lines = 32;
    cfg_.l2Ways = 2;
    cfg_.cpuL2MshrEntries = 8;
    makeCluster(firehoseProfile(CoreType::CPU, /*write=*/1.0, 512),
                silentProfile(CoreType::GPU));
    for (int i = 0; i < 300; ++i) {
        runCycles(1);
        answerReads(CoherenceOp::DataExcl);
    }
    EXPECT_GT(sink_.countOp(CoherenceOp::Writeback), 0u);
    EXPECT_GT(cluster_->stats().writebacks[0], 0u);
}

TEST_F(ClusterTest, QuiescentWhenIdle)
{
    makeCluster(silentProfile(CoreType::CPU), silentProfile(CoreType::GPU));
    runCycles(10);
    EXPECT_TRUE(cluster_->quiescent());
    EXPECT_EQ(sink_.packets.size(), 0u);
}

} // namespace
} // namespace cache
} // namespace pearl
