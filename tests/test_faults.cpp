/**
 * @file
 * Tests of the fault-injection plane and the end-to-end retransmission
 * layer: determinism of the fault schedule, retry-cap accounting,
 * wavelength-ceiling clamping, loss-of-lock counting, and the guard
 * that a zero-fault configuration behaves exactly like the ideal
 * fabric.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/network.hpp"
#include "photonic/faults.hpp"
#include "photonic/power_model.hpp"

namespace pearl {
namespace core {
namespace {

using photonic::FaultConfig;
using photonic::FaultInjector;
using photonic::PowerModel;
using photonic::WlState;
using sim::MsgClass;
using sim::Packet;

Packet
makePacket(std::uint64_t id, int src, int dst,
           MsgClass cls = MsgClass::ReqCpuL2Down,
           int size = sim::kRequestBits)
{
    Packet p;
    p.id = id;
    p.msgClass = cls;
    p.src = src;
    p.dst = dst;
    p.sizeBits = size;
    return p;
}

/** Drive a network with a fixed deterministic traffic pattern. */
struct StatsSummary
{
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t resDrops = 0;
    std::uint64_t retransmitted = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t dropped = 0;
    double latency = 0.0;

    bool
    operator==(const StatsSummary &o) const
    {
        return injected == o.injected && delivered == o.delivered &&
               corrupted == o.corrupted && resDrops == o.resDrops &&
               retransmitted == o.retransmitted &&
               timeouts == o.timeouts && dropped == o.dropped &&
               latency == o.latency;
    }
};

StatsSummary
runPattern(const PearlConfig &cfg, PowerPolicy &policy, int cycles,
           int drain_cycles = 4000)
{
    PowerModel power;
    PearlNetwork net(cfg, power, DbaConfig{}, &policy);
    std::uint64_t id = 0;
    for (int c = 0; c < cycles; ++c) {
        // Three sources ship a packet every fourth cycle.
        if (c % 4 == 0) {
            net.inject(makePacket(++id, 0, 5));
            net.inject(makePacket(++id, 3, 9, MsgClass::RespGpuL2Down,
                                  sim::kResponseBits));
            net.inject(makePacket(++id, 7, 1, MsgClass::ReqGpuL2Down));
        }
        net.step();
    }
    for (int c = 0; c < drain_cycles && !net.idle(); ++c)
        net.step();

    StatsSummary s;
    s.injected = net.stats().injectedPackets();
    s.delivered = net.stats().deliveredPackets();
    s.corrupted = net.stats().corruptedPackets();
    s.resDrops = net.stats().reservationDrops();
    s.retransmitted = net.stats().retransmittedPackets();
    s.timeouts = net.stats().ackTimeouts();
    s.dropped = net.stats().droppedPackets();
    s.latency = net.stats().avgLatency();
    return s;
}

FaultConfig
lossyConfig()
{
    FaultConfig f;
    f.enabled = true;
    f.seed = 1234;
    f.baseBer = 2e-4;            // ~2.5% corruption per request packet
    f.reservationDropRate = 0.02;
    f.bankMtbfCycles = 4000.0;
    f.bankMttrCycles = 1500.0;
    return f;
}

TEST(FaultInjector, DisabledIsInert)
{
    FaultInjector inj(FaultConfig{}, 17);
    EXPECT_FALSE(inj.enabled());
    inj.step(1000);
    EXPECT_EQ(inj.wlCap(0), WlState::WL64);
    EXPECT_EQ(inj.failedBanks(3), 0);
    EXPECT_FALSE(inj.corruptsPacket(0, sim::kResponseBits, 10.0, false));
    EXPECT_FALSE(inj.dropsReservation(5));
}

TEST(FaultInjector, SameSeedSameSchedule)
{
    FaultConfig f;
    f.enabled = true;
    f.seed = 99;
    f.bankMtbfCycles = 500.0;
    f.bankMttrCycles = 200.0;
    FaultInjector a(f, 8);
    FaultInjector b(f, 8);
    for (std::uint64_t now = 0; now < 20000; now += 7) {
        a.step(now);
        b.step(now);
        for (int r = 0; r < 8; ++r) {
            ASSERT_EQ(a.wlCap(r), b.wlCap(r)) << "cycle " << now;
            ASSERT_EQ(a.failedBanks(r), b.failedBanks(r));
        }
    }
    EXPECT_EQ(a.bankFailures(), b.bankFailures());
    EXPECT_GT(a.bankFailures(), 0u);
    EXPECT_GT(a.bankRepairs(), 0u);
}

TEST(FaultInjector, BankFailuresCapTheWavelengthState)
{
    // With MTBF far below MTTR every bank is failed almost always, so
    // the cap must visit degraded states.
    FaultConfig f;
    f.enabled = true;
    f.seed = 5;
    f.bankMtbfCycles = 50.0;
    f.bankMttrCycles = 10000.0;
    FaultInjector inj(f, 2);
    bool saw_degraded = false;
    for (std::uint64_t now = 0; now < 5000; ++now) {
        inj.step(now);
        if (inj.wlCap(0) != WlState::WL64)
            saw_degraded = true;
    }
    EXPECT_TRUE(saw_degraded);
    // All four banks dead floors at the protected WL8 half-bank.
    EXPECT_EQ(inj.failedBanks(0), FaultInjector::kBanksPerRouter);
    EXPECT_EQ(inj.wlCap(0), WlState::WL8);
}

TEST(FaultInjector, ClampCoversAllFiveStates)
{
    using photonic::clampToCap;
    const WlState cap = WlState::WL16;
    EXPECT_EQ(clampToCap(WlState::WL8, cap), WlState::WL8);
    EXPECT_EQ(clampToCap(WlState::WL16, cap), WlState::WL16);
    EXPECT_EQ(clampToCap(WlState::WL32, cap), WlState::WL16);
    EXPECT_EQ(clampToCap(WlState::WL48, cap), WlState::WL16);
    EXPECT_EQ(clampToCap(WlState::WL64, cap), WlState::WL16);
    // A healthy cap never alters the choice.
    for (auto s : photonic::kWlStates)
        EXPECT_EQ(clampToCap(s, WlState::WL64), s);
}

TEST(FaultInjector, CorruptionScalesWithTrimGapAndLock)
{
    FaultConfig f;
    f.enabled = true;
    f.baseBer = 1e-5;
    f.berPerTrimGapC = 1.0;
    f.unlockedBer = 1e-3;
    const int trials = 20000;
    auto rate = [&](double gap, bool locked) {
        FaultInjector inj(f, 1);
        int hits = 0;
        for (int i = 0; i < trials; ++i) {
            hits += inj.corruptsPacket(0, sim::kResponseBits, gap,
                                       locked)
                        ? 1
                        : 0;
        }
        return static_cast<double>(hits) / trials;
    };
    const double locked_cool = rate(0.0, true);
    const double locked_hot = rate(20.0, true);
    const double unlocked = rate(0.0, false);
    EXPECT_GT(locked_hot, locked_cool);
    EXPECT_GT(unlocked, locked_hot);
}

TEST(PearlNetworkFaults, SeededRunIsReproducible)
{
    PearlConfig cfg;
    cfg.faults = lossyConfig();
    StaticPolicy policy(WlState::WL64);
    const StatsSummary a = runPattern(cfg, policy, 6000);
    StaticPolicy policy2(WlState::WL64);
    const StatsSummary b = runPattern(cfg, policy2, 6000);
    EXPECT_TRUE(a == b);
    // The lossy scenario actually exercised the recovery machinery.
    EXPECT_GT(a.corrupted + a.resDrops, 0u);
    EXPECT_GT(a.retransmitted, 0u);
}

TEST(PearlNetworkFaults, NoPacketIsSilentlyLost)
{
    PearlConfig cfg;
    cfg.faults = lossyConfig();
    cfg.faults.reservationDropRate = 0.1;
    cfg.ackTimeoutCycles = 32;
    StaticPolicy policy(WlState::WL64);
    const StatsSummary s = runPattern(cfg, policy, 4000, 20000);
    // Conservation: every injected packet is either delivered or a
    // counted drop once the network drains.
    EXPECT_EQ(s.injected, s.delivered + s.dropped);
    EXPECT_GT(s.timeouts, 0u);
}

TEST(PearlNetworkFaults, RetryCapExhaustionCountsDrops)
{
    PearlConfig cfg;
    cfg.faults.enabled = true;
    cfg.faults.reservationDropRate = 1.0; // every transmission vanishes
    cfg.ackTimeoutCycles = 16;
    cfg.retryLimit = 2;
    cfg.retxBackoffBase = 2;
    cfg.retxBackoffMax = 8;

    PowerModel power;
    StaticPolicy policy(WlState::WL64);
    PearlNetwork net(cfg, power, DbaConfig{}, &policy);
    ASSERT_TRUE(net.inject(makePacket(1, 0, 5)));
    for (int c = 0; c < 2000 && !net.idle(); ++c)
        net.step();

    EXPECT_EQ(net.stats().deliveredPackets(), 0u);
    EXPECT_EQ(net.stats().droppedPackets(), 1u);
    // Initial send + retryLimit retransmissions all timed out.
    EXPECT_EQ(net.stats().ackTimeouts(),
              static_cast<std::uint64_t>(cfg.retryLimit) + 1);
    EXPECT_EQ(net.stats().retransmittedPackets(),
              static_cast<std::uint64_t>(cfg.retryLimit));
    EXPECT_EQ(net.router(0).telemetry().packetsDropped, 1u);
    EXPECT_TRUE(net.idle());
}

TEST(PearlNetworkFaults, ZeroRateConfigMatchesDisabledFaultPlane)
{
    // Guard for the seed baseline: turning the plane on with all fault
    // rates at zero must not change any observable statistic relative
    // to the default (disabled) configuration.
    PearlConfig ideal;
    StaticPolicy p1(WlState::WL64);
    const StatsSummary a = runPattern(ideal, p1, 6000);

    PearlConfig zero_rate;
    zero_rate.faults.enabled = true;
    zero_rate.faults.bankMtbfCycles = 0.0;
    zero_rate.faults.baseBer = 0.0;
    zero_rate.faults.reservationDropRate = 0.0;
    StaticPolicy p2(WlState::WL64);
    const StatsSummary b = runPattern(zero_rate, p2, 6000);

    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.corrupted, 0u);
    EXPECT_EQ(a.retransmitted, 0u);
    EXPECT_EQ(a.dropped, 0u);
}

TEST(PearlNetworkFaults, PolicyChoicesAreClampedToTheCeiling)
{
    // Every bank dies almost immediately and stays dead, so the WL64
    // static policy must be forced down to the WL8 floor.
    PearlConfig cfg;
    cfg.faults.enabled = true;
    cfg.faults.bankMtbfCycles = 10.0;
    cfg.faults.bankMttrCycles = 1e9;
    cfg.reservationWindow = 100;

    PowerModel power;
    StaticPolicy policy(WlState::WL64);
    PearlNetwork net(cfg, power, DbaConfig{}, &policy);
    for (int c = 0; c < 2000; ++c)
        net.step();
    for (int r = 0; r < cfg.numNodes(); ++r) {
        EXPECT_EQ(net.faults().wlCap(r), WlState::WL8);
        EXPECT_EQ(net.router(r).laser().state(), WlState::WL8)
            << "router " << r;
    }
}

TEST(PearlNetworkFaults, ThermalLossOfLockIsCountedWithoutFaultPlane)
{
    // Lock point below ambient: the bank can never lock, and the
    // per-router out-of-lock cycles must be counted even though the
    // fault plane is disabled.
    PearlConfig cfg;
    cfg.useThermalModel = true;
    cfg.thermal.ambientC = 80.0;
    cfg.thermal.lockPointC = 65.0;

    PowerModel power;
    StaticPolicy policy(WlState::WL64);
    PearlNetwork net(cfg, power, DbaConfig{}, &policy);
    const int steps = 200;
    for (int c = 0; c < steps; ++c)
        net.step();

    EXPECT_EQ(net.stats().thermalUnlockedCycles(0),
              static_cast<std::uint64_t>(steps));
    EXPECT_EQ(net.stats().thermalUnlockedCycles(),
              static_cast<std::uint64_t>(steps) *
                  static_cast<std::uint64_t>(cfg.numNodes()));
    EXPECT_EQ(net.router(0).telemetry().outOfLockCycles,
              static_cast<std::uint64_t>(steps));
}

TEST(PearlNetworkFaults, DescribeStateReportsQueuesAndBanks)
{
    PearlConfig cfg;
    cfg.faults = lossyConfig();
    PowerModel power;
    StaticPolicy policy(WlState::WL64);
    PearlNetwork net(cfg, power, DbaConfig{}, &policy);
    net.inject(makePacket(1, 0, 5));
    net.step();
    std::ostringstream oss;
    net.describeState(oss);
    const std::string dump = oss.str();
    EXPECT_NE(dump.find("PearlNetwork @ cycle"), std::string::npos);
    EXPECT_NE(dump.find("router 0"), std::string::npos);
    EXPECT_NE(dump.find("failedBanks"), std::string::npos);
}

} // namespace
} // namespace core
} // namespace pearl
