/**
 * @file
 * Parameterized property sweeps across the simulator's state spaces:
 * every wavelength state, every laser-state transition pair, mesh
 * geometries, buffer operation sequences, and cross-network drop-in
 * compatibility of the sim::Network interface.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/mwsr_network.hpp"
#include "core/network.hpp"
#include "core/router.hpp"
#include "core/system.hpp"
#include "electrical/cmesh.hpp"
#include "photonic/laser.hpp"
#include "photonic/power_model.hpp"
#include "photonic/reservation.hpp"
#include "traffic/suite.hpp"

namespace pearl {
namespace {

// ---- Per-wavelength-state router properties ---------------------------

class WlStateSweep
    : public ::testing::TestWithParam<photonic::WlState>
{};

TEST_P(WlStateSweep, RouterDeliversAtEveryState)
{
    const auto state = GetParam();
    core::PearlConfig cfg;
    cfg.initialState = state;
    photonic::PowerModel power;
    core::PearlRouter router(0, cfg, power, core::DbaConfig{});

    sim::Packet pkt;
    pkt.msgClass = sim::MsgClass::RespCpuL2Down;
    pkt.sizeBits = sim::kResponseBits;
    ASSERT_TRUE(router.inject(pkt, 0));

    std::vector<core::TxCompletion> done;
    sim::Cycle t = 0;
    while (done.empty() && t < 1000)
        router.transmitCycle(t++, done);
    ASSERT_EQ(done.size(), 1u);

    // Serialisation time = reservation + ceil(bits / bandwidth).
    const int expected =
        cfg.reservationCycles +
        (sim::kResponseBits + photonic::bitsPerCycle(state) - 1) /
            photonic::bitsPerCycle(state);
    EXPECT_EQ(static_cast<int>(t), expected);
}

TEST_P(WlStateSweep, LaserPowerMatchesModel)
{
    const auto state = GetParam();
    photonic::PowerModel model;
    photonic::LaserBank bank(model, 4, state);
    bank.tick(1.0);
    EXPECT_DOUBLE_EQ(bank.energyJ(), model.laserPowerW(state));
}

TEST_P(WlStateSweep, TrimmingNeverExceedsFullState)
{
    const auto state = GetParam();
    photonic::PowerModel model;
    EXPECT_LE(model.trimmingPowerW(state, 64, 64),
              model.trimmingPowerW(photonic::WlState::WL64, 64, 64));
    EXPECT_GE(model.trimmingPowerW(state, 64, 64),
              model.trimmingPowerW(photonic::WlState::WL8, 64, 64));
}

INSTANTIATE_TEST_SUITE_P(
    AllStates, WlStateSweep,
    ::testing::Values(photonic::WlState::WL8, photonic::WlState::WL16,
                      photonic::WlState::WL32, photonic::WlState::WL48,
                      photonic::WlState::WL64),
    [](const ::testing::TestParamInfo<photonic::WlState> &info) {
        return photonic::toString(info.param);
    });

// ---- Laser transition matrix ---------------------------------------

class LaserTransitionSweep
    : public ::testing::TestWithParam<std::pair<int, int>>
{};

TEST_P(LaserTransitionSweep, BlackoutExactlyOnUpSwitch)
{
    const auto [from, to] = GetParam();
    photonic::PowerModel model;
    photonic::LaserBank bank(model, 6, photonic::stateFromIndex(from));
    bank.requestState(photonic::stateFromIndex(to), 100);
    EXPECT_EQ(bank.state(), photonic::stateFromIndex(to));
    if (to > from) {
        EXPECT_FALSE(bank.stable(100));
        EXPECT_FALSE(bank.stable(105));
        EXPECT_TRUE(bank.stable(106));
        EXPECT_EQ(bank.upSwitches(), 1u);
    } else {
        EXPECT_TRUE(bank.stable(100));
        EXPECT_EQ(bank.upSwitches(), 0u);
    }
}

std::vector<std::pair<int, int>>
allTransitions()
{
    std::vector<std::pair<int, int>> pairs;
    for (int a = 0; a < photonic::kNumWlStates; ++a) {
        for (int b = 0; b < photonic::kNumWlStates; ++b)
            pairs.push_back({a, b});
    }
    return pairs;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, LaserTransitionSweep, ::testing::ValuesIn(allTransitions()),
    [](const ::testing::TestParamInfo<std::pair<int, int>> &info) {
        return std::string(photonic::toString(
                   photonic::stateFromIndex(info.param.first))) +
               "_to_" +
               photonic::toString(
                   photonic::stateFromIndex(info.param.second));
    });

// ---- CMESH geometry sweep ----------------------------------------------

class MeshGeometrySweep
    : public ::testing::TestWithParam<std::pair<int, int>>
{};

TEST_P(MeshGeometrySweep, RandomTrafficDrainsOnAnyGeometry)
{
    const auto [x, y] = GetParam();
    electrical::CmeshConfig cfg;
    cfg.meshX = x;
    cfg.meshY = y;
    cfg.l3Router = (x * y) / 2;
    electrical::CmeshNetwork net(cfg);
    const int nodes = net.numNodes();

    Rng rng(41);
    int injected = 0;
    for (sim::Cycle t = 0; t < 600; ++t) {
        const int src = static_cast<int>(rng.below(nodes));
        int dst = static_cast<int>(rng.below(nodes));
        if (dst == src)
            dst = (dst + 1) % nodes;
        sim::Packet p;
        p.id = t + 1;
        p.msgClass = rng.chance(0.5) ? sim::MsgClass::RespGpuL2Down
                                     : sim::MsgClass::ReqCpuL2Down;
        p.op = rng.chance(0.5) ? sim::CoherenceOp::Data
                               : sim::CoherenceOp::Read;
        p.src = src;
        p.dst = dst;
        p.sizeBits = p.op == sim::CoherenceOp::Data
                         ? sim::kResponseBits
                         : sim::kRequestBits;
        injected += net.inject(p);
        net.step();
    }
    for (int i = 0; i < 20000 && !net.idle(); ++i)
        net.step();
    EXPECT_TRUE(net.idle());
    EXPECT_EQ(net.stats().deliveredPackets(),
              static_cast<std::uint64_t>(injected));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, MeshGeometrySweep,
    ::testing::Values(std::pair<int, int>{2, 2}, std::pair<int, int>{4, 2},
                      std::pair<int, int>{4, 4},
                      std::pair<int, int>{2, 8}),
    [](const ::testing::TestParamInfo<std::pair<int, int>> &info) {
        return std::to_string(info.param.first) + "x" +
               std::to_string(info.param.second);
    });

// ---- Buffer operation-sequence invariant -----------------------------

TEST(BufferProperty, OccupancyAlwaysSumOfQueuedFlits)
{
    Rng rng(77);
    sim::FlitBuffer buf(32);
    std::deque<int> shadow; // flit counts of queued packets
    for (int op = 0; op < 5000; ++op) {
        if (rng.chance(0.6)) {
            sim::Packet p;
            p.sizeBits = rng.chance(0.5) ? sim::kRequestBits
                                         : sim::kResponseBits;
            const int flits = p.numFlits();
            const bool could = buf.canAccept(flits);
            const bool did = buf.push(p);
            ASSERT_EQ(could, did);
            if (did)
                shadow.push_back(flits);
        } else if (!buf.empty()) {
            const sim::Packet p = buf.pop();
            ASSERT_EQ(p.numFlits(), shadow.front());
            shadow.pop_front();
        }
        int expected = 0;
        for (int f : shadow)
            expected += f;
        ASSERT_EQ(buf.occupiedSlots(), expected);
        ASSERT_EQ(buf.packetCount(), shadow.size());
        ASSERT_LE(buf.occupiedSlots(), buf.capacitySlots());
    }
}

// ---- Reservation-channel monotonicity --------------------------------

TEST(ReservationProperty, PacketBitsMonotoneInRouters)
{
    int prev = 0;
    for (int n : {4, 8, 16, 32, 64, 128}) {
        photonic::ReservationConfig cfg;
        cfg.numRouters = n;
        const int bits = photonic::ReservationChannel(cfg).packetBits();
        EXPECT_GE(bits, prev);
        prev = bits;
    }
}

// ---- Drop-in Network compatibility -----------------------------------

TEST(NetworkInterop, HeteroSystemRunsOnMwsr)
{
    // The full cache stack must run unchanged on the MWSR baseline —
    // the sim::Network abstraction is the seam.
    traffic::BenchmarkSuite suite;
    traffic::BenchmarkPair pair{suite.find("Rad"), suite.find("QRS")};
    photonic::PowerModel power;
    core::MwsrNetwork net(core::MwsrConfig{}, power);
    core::HeteroSystem system(net, pair, core::SystemConfig{});
    system.run(5000);
    EXPECT_GT(net.stats().deliveredPackets(), 50u);
}

TEST(NetworkInterop, ThermalModelDoesNotChangeTraffic)
{
    // Enabling the thermal model changes the energy accounting, never
    // the packet behaviour.
    traffic::BenchmarkSuite suite;
    traffic::BenchmarkPair pair{suite.find("Rad"), suite.find("QRS")};
    photonic::PowerModel power;

    auto run = [&](bool thermal) {
        core::PearlConfig cfg;
        cfg.useThermalModel = thermal;
        core::StaticPolicy policy(photonic::WlState::WL64);
        core::PearlNetwork net(cfg, power, core::DbaConfig{}, &policy);
        core::HeteroSystem system(
            net, pair, core::SystemConfig{},
            [&net](int n) { return &net.telemetryOf(n); });
        system.run(4000);
        return std::pair<std::uint64_t, double>(
            net.stats().deliveredFlits(), net.trimmingEnergyJ());
    };
    const auto flat = run(false);
    const auto thermal = run(true);
    EXPECT_EQ(flat.first, thermal.first);
    EXPECT_NE(flat.second, thermal.second);
}

} // namespace
} // namespace pearl
