/**
 * @file
 * Tests of the Dynamic Bandwidth Allocator — Algorithm 1 steps 1-3
 * verbatim, plus the proportional-quantised ablation mode.
 */

#include <gtest/gtest.h>

#include "core/dba.hpp"

namespace pearl {
namespace core {
namespace {

TEST(DbaLadder, CaseA_OnlyCpuTraffic)
{
    DynamicBandwidthAllocator dba;
    const auto a = dba.allocate(/*cpu=*/0.5, /*gpu=*/0.0);
    EXPECT_DOUBLE_EQ(a.cpuShare, 1.0);
    EXPECT_DOUBLE_EQ(a.gpuShare, 0.0);
}

TEST(DbaLadder, CaseB_OnlyGpuTraffic)
{
    DynamicBandwidthAllocator dba;
    const auto a = dba.allocate(0.0, 0.5);
    EXPECT_DOUBLE_EQ(a.cpuShare, 0.0);
    EXPECT_DOUBLE_EQ(a.gpuShare, 1.0);
}

TEST(DbaLadder, CaseC_LowGpuFavoursCpu)
{
    // GPU occupancy below its 6% upper bound: CPU gets 75%.
    DynamicBandwidthAllocator dba;
    const auto a = dba.allocate(0.30, 0.05);
    EXPECT_DOUBLE_EQ(a.cpuShare, 0.75);
    EXPECT_DOUBLE_EQ(a.gpuShare, 0.25);
}

TEST(DbaLadder, CaseD_LowCpuFavoursGpu)
{
    // GPU above its bound, CPU below its 16% bound: GPU gets 75%.
    DynamicBandwidthAllocator dba;
    const auto a = dba.allocate(0.10, 0.50);
    EXPECT_DOUBLE_EQ(a.cpuShare, 0.25);
    EXPECT_DOUBLE_EQ(a.gpuShare, 0.75);
}

TEST(DbaLadder, CaseE_BothBusyEvenSplit)
{
    DynamicBandwidthAllocator dba;
    const auto a = dba.allocate(0.50, 0.50);
    EXPECT_DOUBLE_EQ(a.cpuShare, 0.50);
    EXPECT_DOUBLE_EQ(a.gpuShare, 0.50);
}

TEST(DbaLadder, CpuConsideredFirstForThe75Share)
{
    // Both below their bounds: the CPU case (c) is evaluated first
    // because of its latency sensitivity.
    DynamicBandwidthAllocator dba;
    const auto a = dba.allocate(0.05, 0.03);
    EXPECT_DOUBLE_EQ(a.cpuShare, 0.75);
}

TEST(DbaLadder, BothIdleFallsToEvenSplit)
{
    DynamicBandwidthAllocator dba;
    const auto a = dba.allocate(0.0, 0.0);
    // Neither case (a) nor (b) fires; GPU < bound -> case (c).
    EXPECT_DOUBLE_EQ(a.cpuShare + a.gpuShare, 1.0);
}

TEST(DbaLadder, SharesAlwaysSumToOne)
{
    DynamicBandwidthAllocator dba;
    for (double c = 0.0; c <= 1.0; c += 0.07) {
        for (double g = 0.0; g <= 1.0; g += 0.07) {
            const auto a = dba.allocate(c, g);
            EXPECT_NEAR(a.cpuShare + a.gpuShare, 1.0, 1e-12);
            EXPECT_GE(a.cpuShare, 0.0);
            EXPECT_LE(a.cpuShare, 1.0);
        }
    }
}

TEST(DbaLadder, CustomBounds)
{
    DbaConfig cfg;
    cfg.gpuUpperBound = 0.5;
    DynamicBandwidthAllocator dba(cfg);
    // GPU occupancy 0.4 < 0.5 bound: CPU still favoured.
    const auto a = dba.allocate(0.3, 0.4);
    EXPECT_DOUBLE_EQ(a.cpuShare, 0.75);
}

TEST(DbaProportional, QuantisesToStep)
{
    DbaConfig cfg;
    cfg.mode = DbaConfig::Mode::Proportional;
    cfg.stepFraction = 0.25;
    DynamicBandwidthAllocator dba(cfg);
    const auto a = dba.allocate(0.6, 0.4); // raw 0.6 -> 0.5 at 25% steps
    EXPECT_DOUBLE_EQ(a.cpuShare, 0.5);
    const auto b = dba.allocate(0.9, 0.1); // raw 0.9 -> 1.0
    EXPECT_DOUBLE_EQ(b.cpuShare, 1.0);
}

TEST(DbaProportional, FinerSteps)
{
    DbaConfig cfg;
    cfg.mode = DbaConfig::Mode::Proportional;
    cfg.stepFraction = 0.0625;
    DynamicBandwidthAllocator dba(cfg);
    const auto a = dba.allocate(0.6, 0.4);
    EXPECT_NEAR(a.cpuShare, 0.625, 1e-12);
}

TEST(DbaProportional, IdleIsEven)
{
    DbaConfig cfg;
    cfg.mode = DbaConfig::Mode::Proportional;
    DynamicBandwidthAllocator dba(cfg);
    const auto a = dba.allocate(0.0, 0.0);
    EXPECT_DOUBLE_EQ(a.cpuShare, 0.5);
}

} // namespace
} // namespace core
} // namespace pearl
