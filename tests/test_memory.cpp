/**
 * @file
 * Tests for the memory-controller node and the home-bank address map.
 */

#include <gtest/gtest.h>

#include <array>

#include "cache/home_map.hpp"
#include "cache/memory.hpp"
#include "fakes.hpp"

namespace pearl {
namespace cache {
namespace {

using sim::CoherenceOp;
using sim::Cycle;
using sim::MsgClass;
using sim::NodeUnit;
using sim::Packet;
using test::CapturingSink;

Packet
memRead(int bank, std::uint64_t addr)
{
    Packet p;
    p.op = CoherenceOp::Read;
    p.msgClass = MsgClass::ReqL3;
    p.dstUnit = NodeUnit::Memory;
    p.src = bank;
    p.dst = 16;
    p.addr = addr;
    p.sizeBits = sim::kRequestBits;
    return p;
}

TEST(MemoryNode, RespondsAfterLatency)
{
    HierarchyConfig cfg;
    cfg.memoryCycles = 20;
    CapturingSink sink;
    MemoryNode mem(16, cfg, /*responses_per_cycle=*/2.0);
    mem.attach(&sink, nullptr);

    mem.deliver(memRead(3, 0x42), /*now=*/5);
    for (Cycle t = 5; t < 24; ++t)
        mem.tick(t);
    EXPECT_EQ(sink.packets.size(), 0u); // not yet due
    mem.tick(25);
    ASSERT_EQ(sink.packets.size(), 1u);
    const Packet &resp = sink.packets[0];
    EXPECT_EQ(resp.op, CoherenceOp::Data);
    EXPECT_EQ(resp.msgClass, MsgClass::RespL3);
    EXPECT_EQ(resp.dst, 3);
    EXPECT_EQ(resp.dstUnit, NodeUnit::L3Bank);
    EXPECT_EQ(resp.addr, 0x42u);
    EXPECT_EQ(resp.sizeBits, sim::kResponseBits);
}

TEST(MemoryNode, AbsorbsWritebacks)
{
    HierarchyConfig cfg;
    CapturingSink sink;
    MemoryNode mem(16, cfg, 2.0);
    mem.attach(&sink, nullptr);

    Packet wb = memRead(4, 0x99);
    wb.op = CoherenceOp::Writeback;
    wb.sizeBits = sim::kResponseBits;
    mem.deliver(wb, 0);
    for (Cycle t = 0; t < 300; ++t)
        mem.tick(t);
    EXPECT_EQ(sink.packets.size(), 0u);
    EXPECT_EQ(mem.stats().writes, 1u);
    EXPECT_TRUE(mem.quiescent());
}

TEST(MemoryNode, BandwidthCapThrottlesResponses)
{
    HierarchyConfig cfg;
    cfg.memoryCycles = 1;
    CapturingSink sink;
    MemoryNode mem(16, cfg, /*responses_per_cycle=*/0.5);
    mem.attach(&sink, nullptr);

    // 40 requests all due immediately: at 0.5 responses/cycle they take
    // about 80 cycles to drain.
    for (int i = 0; i < 40; ++i)
        mem.deliver(memRead(i % 16, 0x1000 + i), 0);
    Cycle t = 0;
    for (; t < 200 && sink.packets.size() < 40; ++t)
        mem.tick(t);
    EXPECT_GE(t, 70u);
    EXPECT_EQ(sink.packets.size(), 40u);
    EXPECT_GT(mem.stats().busyStallCycles, 0u);
}

TEST(MemoryNode, ReadsCounted)
{
    HierarchyConfig cfg;
    CapturingSink sink;
    MemoryNode mem(16, cfg, 2.0);
    mem.attach(&sink, nullptr);
    mem.deliver(memRead(0, 1), 0);
    mem.deliver(memRead(1, 2), 0);
    EXPECT_EQ(mem.stats().reads, 2u);
}

TEST(HomeMap, Deterministic)
{
    HomeMap map;
    for (std::uint64_t a : {0ULL, 17ULL, 1ULL << 40, 1ULL << 60})
        EXPECT_EQ(map.homeOf(a), map.homeOf(a));
}

TEST(HomeMap, WithinRange)
{
    HomeMap map;
    for (std::uint64_t a = 0; a < 10000; ++a) {
        const auto h = map.homeOf(a * 977 + (1ULL << 33));
        EXPECT_GE(h, 0);
        EXPECT_LT(h, map.numBanks);
    }
}

TEST(HomeMap, RoughlyBalanced)
{
    HomeMap map;
    std::array<int, 16> counts = {};
    const int n = 16000;
    for (int i = 0; i < n; ++i)
        ++counts[static_cast<std::size_t>(
            map.homeOf((1ULL << 33) + static_cast<std::uint64_t>(i)))];
    for (int c : counts) {
        EXPECT_GT(c, n / 16 / 2);
        EXPECT_LT(c, n / 16 * 2);
    }
}

TEST(HomeMap, StridedAddressesSpread)
{
    // Private regions are strided by 2^32; the hash must not alias them
    // onto one bank.
    HomeMap map;
    std::array<int, 16> counts = {};
    for (int core = 0; core < 96; ++core) {
        ++counts[static_cast<std::size_t>(map.homeOf(
            (static_cast<std::uint64_t>(core) + 1) << 32))];
    }
    int max_count = 0;
    for (int c : counts)
        max_count = std::max(max_count, c);
    EXPECT_LT(max_count, 20);
}

} // namespace
} // namespace cache
} // namespace pearl
