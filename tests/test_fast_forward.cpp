/**
 * @file
 * Idle fast-forward (PEARL_FAST_FORWARD): when the chip is drained and
 * no generator can ever issue, HeteroSystem::run jumps the clock to the
 * next reservation-window boundary instead of stepping no-op cycles.
 *
 * The tests compare a fast-forwarded run against the same configuration
 * stepped cycle by cycle: every counter (cycles, window closures, laser
 * residency, switch counts) must match exactly; the energy integrals are
 * computed analytically during a jump (k * P * dt instead of k sequential
 * adds), so they match to rounding.  On any configuration with live
 * traffic the fast path never engages and runs are bit-identical by
 * construction — the golden-metrics suite pins that separately.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/network.hpp"
#include "core/system.hpp"
#include "photonic/power_model.hpp"
#include "traffic/suite.hpp"

namespace pearl {
namespace core {
namespace {

using sim::Cycle;
using traffic::BenchmarkPair;
using traffic::BenchmarkProfile;

/** A profile whose generators can never issue an access. */
BenchmarkProfile
quietProfile(sim::CoreType t)
{
    BenchmarkProfile p;
    p.name = "quiet";
    p.abbrev = "QU";
    p.coreType = t;
    p.accessRateOn = 0.0;
    p.accessRateOff = 0.0;
    return p;
}

/** RAII env-var override for PEARL_FAST_FORWARD. */
class FastForwardEnv
{
  public:
    explicit FastForwardEnv(const char *value)
    {
        const char *old = std::getenv("PEARL_FAST_FORWARD");
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        ::setenv("PEARL_FAST_FORWARD", value, 1);
    }
    ~FastForwardEnv()
    {
        if (had_)
            ::setenv("PEARL_FAST_FORWARD", old_.c_str(), 1);
        else
            ::unsetenv("PEARL_FAST_FORWARD");
    }

  private:
    bool had_ = false;
    std::string old_;
};

struct QuietRun
{
    Cycle networkCycle = 0;
    Cycle fastForwarded = 0;
    std::uint64_t windowsClosed = 0;
    std::uint64_t windowCyclesSum = 0;
    double betaSum = 0.0;
    std::uint64_t laserCycles = 0;
    std::uint64_t upSwitches = 0;
    std::uint64_t downSwitches = 0;
    double residencyWl8 = 0.0;
    double laserEnergyJ = 0.0;
    double trimmingEnergyJ = 0.0;
    std::uint64_t delivered = 0;
};

QuietRun
runQuiet(bool fast_forward, Cycle cycles, PowerPolicy &policy)
{
    FastForwardEnv env(fast_forward ? "1" : "0");
    PearlConfig cfg;
    photonic::PowerModel power;
    PearlNetwork net(cfg, power, DbaConfig{}, &policy);

    QuietRun out;
    net.setWindowCollector([&out](const WindowRecord &rec) {
        ++out.windowsClosed;
        out.windowCyclesSum += rec.windowCycles;
        out.betaSum += rec.betaTotalMean;
    });

    BenchmarkPair pair{quietProfile(sim::CoreType::CPU),
                       quietProfile(sim::CoreType::GPU)};
    HeteroSystem system(net, pair, SystemConfig{},
                        [&net](int n) { return &net.telemetryOf(n); });
    system.run(cycles);

    out.networkCycle = net.cycle();
    out.fastForwarded = system.fastForwardedCycles();
    out.delivered = net.stats().deliveredPackets();
    for (int r = 0; r < net.numNodes(); ++r) {
        const auto &laser = net.router(r).laser();
        out.laserCycles += laser.cycles();
        out.upSwitches += laser.upSwitches();
        out.downSwitches += laser.downSwitches();
    }
    out.residencyWl8 = net.residency(photonic::WlState::WL8);
    out.laserEnergyJ = net.laserEnergyJ();
    out.trimmingEnergyJ = net.trimmingEnergyJ();
    return out;
}

TEST(FastForward, SkipsIdleCyclesOnQuietConfig)
{
    StaticPolicy policy(photonic::WlState::WL64);
    const QuietRun ff = runQuiet(true, 20000, policy);
    EXPECT_EQ(ff.networkCycle, 20000u);
    // Nearly every cycle is skippable: only window-boundary cycles (one
    // per router per window) must execute.
    EXPECT_GT(ff.fastForwarded, 15000u);
    EXPECT_EQ(ff.delivered, 0u);
}

TEST(FastForward, MatchesSteppedRunExactlyOnCounters)
{
    StaticPolicy policy(photonic::WlState::WL64);
    const QuietRun ff = runQuiet(true, 20000, policy);
    const QuietRun stepped = runQuiet(false, 20000, policy);

    EXPECT_EQ(stepped.fastForwarded, 0u);
    EXPECT_EQ(ff.networkCycle, stepped.networkCycle);
    EXPECT_EQ(ff.windowsClosed, stepped.windowsClosed);
    EXPECT_EQ(ff.windowCyclesSum, stepped.windowCyclesSum);
    EXPECT_EQ(ff.betaSum, stepped.betaSum); // exactly 0.0 on both
    EXPECT_EQ(ff.laserCycles, stepped.laserCycles);
    EXPECT_EQ(ff.upSwitches, stepped.upSwitches);
    EXPECT_EQ(ff.downSwitches, stepped.downSwitches);
    EXPECT_EQ(ff.residencyWl8, stepped.residencyWl8);
    EXPECT_EQ(ff.delivered, stepped.delivered);
}

TEST(FastForward, EnergyIntegralsMatchToRounding)
{
    StaticPolicy policy(photonic::WlState::WL64);
    const QuietRun ff = runQuiet(true, 20000, policy);
    const QuietRun stepped = runQuiet(false, 20000, policy);

    // The jump integrates k cycles with one multiply-add; the stepped
    // run adds k times.  Same integral, different rounding path.
    EXPECT_NEAR(ff.laserEnergyJ, stepped.laserEnergyJ,
                1e-9 * stepped.laserEnergyJ);
    EXPECT_NEAR(ff.trimmingEnergyJ, stepped.trimmingEnergyJ,
                1e-9 * stepped.trimmingEnergyJ);
    EXPECT_GT(ff.laserEnergyJ, 0.0);
    EXPECT_GT(ff.trimmingEnergyJ, 0.0);
}

TEST(FastForward, PolicyStateChangesAtBoundariesStillHappen)
{
    // A reactive policy on a silent chip walks the laser down to WL8;
    // the downswitches happen at window boundaries, which fast-forward
    // must land on and execute — never skip.
    ReactivePolicy ff_policy{ReactiveThresholds{}};
    const QuietRun ff = runQuiet(true, 20000, ff_policy);
    ReactivePolicy stepped_policy{ReactiveThresholds{}};
    const QuietRun stepped = runQuiet(false, 20000, stepped_policy);

    EXPECT_GT(ff.downSwitches, 0u);
    EXPECT_EQ(ff.downSwitches, stepped.downSwitches);
    EXPECT_EQ(ff.upSwitches, stepped.upSwitches);
    EXPECT_GT(ff.residencyWl8, 0.9); // settled in the lowest state
    EXPECT_EQ(ff.residencyWl8, stepped.residencyWl8);
}

TEST(FastForward, EnvVarZeroDisables)
{
    StaticPolicy policy(photonic::WlState::WL64);
    const QuietRun off = runQuiet(false, 5000, policy);
    EXPECT_EQ(off.fastForwarded, 0u);
    EXPECT_EQ(off.networkCycle, 5000u);
}

TEST(FastForward, InertWhenGeneratorsAreLive)
{
    // Any nonzero access rate means a generator can fire on any cycle:
    // the fast path must never engage, keeping live-traffic runs
    // bit-identical with FF on or off.
    FastForwardEnv env("1");
    traffic::BenchmarkSuite suite;
    BenchmarkPair pair{suite.find("FA"), suite.find("DCT")};
    PearlConfig cfg;
    photonic::PowerModel power;
    StaticPolicy policy(photonic::WlState::WL64);
    PearlNetwork net(cfg, power, DbaConfig{}, &policy);
    HeteroSystem system(net, pair, SystemConfig{},
                        [&net](int n) { return &net.telemetryOf(n); });
    system.run(3000);
    EXPECT_EQ(system.fastForwardedCycles(), 0u);
    EXPECT_GT(net.stats().deliveredPackets(), 0u);
}

} // namespace
} // namespace core
} // namespace pearl
