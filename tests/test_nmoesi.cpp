/**
 * @file
 * Exhaustive tests of the NMOESI protocol table, including parameterized
 * property sweeps over every state.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/nmoesi.hpp"

namespace pearl {
namespace cache {
namespace {

const std::vector<CacheState> kAllStates = {
    CacheState::I, CacheState::S, CacheState::E,
    CacheState::O, CacheState::M, CacheState::N,
};

TEST(Nmoesi, ValidityAndDirtiness)
{
    EXPECT_FALSE(isValid(CacheState::I));
    for (auto s : {CacheState::S, CacheState::E, CacheState::O,
                   CacheState::M, CacheState::N})
        EXPECT_TRUE(isValid(s)) << toString(s);

    EXPECT_TRUE(isDirty(CacheState::M));
    EXPECT_TRUE(isDirty(CacheState::O));
    EXPECT_TRUE(isDirty(CacheState::N));
    EXPECT_FALSE(isDirty(CacheState::S));
    EXPECT_FALSE(isDirty(CacheState::E));
    EXPECT_FALSE(isDirty(CacheState::I));
}

TEST(Nmoesi, LoadsHitInAnyValidState)
{
    for (auto s : kAllStates) {
        const auto outcome = classifyAccess(s, /*write=*/false);
        if (s == CacheState::I)
            EXPECT_EQ(outcome, AccessOutcome::Miss);
        else
            EXPECT_EQ(outcome, AccessOutcome::Hit) << toString(s);
    }
}

TEST(Nmoesi, StoreClassification)
{
    EXPECT_EQ(classifyAccess(CacheState::M, true), AccessOutcome::Hit);
    EXPECT_EQ(classifyAccess(CacheState::N, true), AccessOutcome::Hit);
    EXPECT_EQ(classifyAccess(CacheState::E, true), AccessOutcome::Hit);
    EXPECT_EQ(classifyAccess(CacheState::S, true),
              AccessOutcome::UpgradeNeeded);
    EXPECT_EQ(classifyAccess(CacheState::O, true),
              AccessOutcome::UpgradeNeeded);
    EXPECT_EQ(classifyAccess(CacheState::I, true), AccessOutcome::Miss);
}

TEST(Nmoesi, SilentEToMUpgrade)
{
    EXPECT_EQ(stateAfterHit(CacheState::E, true), CacheState::M);
    EXPECT_EQ(stateAfterHit(CacheState::E, false), CacheState::E);
    EXPECT_EQ(stateAfterHit(CacheState::M, true), CacheState::M);
    EXPECT_EQ(stateAfterHit(CacheState::N, true), CacheState::N);
    EXPECT_EQ(stateAfterHit(CacheState::S, false), CacheState::S);
    EXPECT_EQ(stateAfterHit(CacheState::O, false), CacheState::O);
}

TEST(Nmoesi, FillStates)
{
    EXPECT_EQ(fillState(false, false, false), CacheState::S);
    EXPECT_EQ(fillState(false, true, false), CacheState::E);
    EXPECT_EQ(fillState(true, true, false), CacheState::M);
    EXPECT_EQ(fillState(true, false, true), CacheState::N);
    EXPECT_EQ(fillState(true, true, true), CacheState::N);
    // Non-coherent loads fill like coherent ones.
    EXPECT_EQ(fillState(false, false, true), CacheState::S);
    EXPECT_EQ(fillState(false, true, true), CacheState::E);
}

TEST(Nmoesi, ShareProbeTransitions)
{
    EXPECT_EQ(applyProbe(CacheState::M, ProbeType::Share).next,
              CacheState::O);
    EXPECT_EQ(applyProbe(CacheState::E, ProbeType::Share).next,
              CacheState::S);
    EXPECT_EQ(applyProbe(CacheState::S, ProbeType::Share).next,
              CacheState::S);
    EXPECT_EQ(applyProbe(CacheState::O, ProbeType::Share).next,
              CacheState::O);
    EXPECT_EQ(applyProbe(CacheState::N, ProbeType::Share).next,
              CacheState::N);
    EXPECT_EQ(applyProbe(CacheState::I, ProbeType::Share).next,
              CacheState::I);
}

TEST(Nmoesi, ShareProbeSupply)
{
    // E supplies clean data; M/O/N supply dirty data; S and I don't.
    EXPECT_TRUE(applyProbe(CacheState::E, ProbeType::Share).supplyData);
    EXPECT_FALSE(applyProbe(CacheState::E, ProbeType::Share).dirtyData);
    EXPECT_TRUE(applyProbe(CacheState::M, ProbeType::Share).dirtyData);
    EXPECT_TRUE(applyProbe(CacheState::O, ProbeType::Share).dirtyData);
    EXPECT_TRUE(applyProbe(CacheState::N, ProbeType::Share).dirtyData);
    EXPECT_FALSE(applyProbe(CacheState::S, ProbeType::Share).supplyData);
    EXPECT_FALSE(applyProbe(CacheState::I, ProbeType::Share).supplyData);
}

// Property sweep: invalidation probes always end in I, and supply data
// exactly when the state was dirty.
class NmoesiInvalidateSweep
    : public ::testing::TestWithParam<CacheState>
{};

TEST_P(NmoesiInvalidateSweep, AlwaysEndsInvalid)
{
    const auto outcome = applyProbe(GetParam(), ProbeType::Invalidate);
    EXPECT_EQ(outcome.next, CacheState::I);
}

TEST_P(NmoesiInvalidateSweep, SuppliesDataIffDirty)
{
    const CacheState s = GetParam();
    const auto outcome = applyProbe(s, ProbeType::Invalidate);
    EXPECT_EQ(outcome.supplyData, isDirty(s)) << toString(s);
    EXPECT_EQ(outcome.dirtyData, isDirty(s)) << toString(s);
}

INSTANTIATE_TEST_SUITE_P(
    AllStates, NmoesiInvalidateSweep,
    ::testing::Values(CacheState::I, CacheState::S, CacheState::E,
                      CacheState::O, CacheState::M, CacheState::N),
    [](const ::testing::TestParamInfo<CacheState> &info) {
        return toString(info.param);
    });

// Property sweep: writebacks are needed exactly for dirty states.
class NmoesiWritebackSweep : public ::testing::TestWithParam<CacheState>
{};

TEST_P(NmoesiWritebackSweep, WritebackIffDirty)
{
    EXPECT_EQ(writebackNeeded(GetParam()), isDirty(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllStates, NmoesiWritebackSweep,
    ::testing::Values(CacheState::I, CacheState::S, CacheState::E,
                      CacheState::O, CacheState::M, CacheState::N),
    [](const ::testing::TestParamInfo<CacheState> &info) {
        return toString(info.param);
    });

// Property: share probes never lose data (valid stays valid) and never
// create dirtiness out of clean states.
class NmoesiShareSweep : public ::testing::TestWithParam<CacheState>
{};

TEST_P(NmoesiShareSweep, ShareProbePreservesValidity)
{
    const CacheState s = GetParam();
    const auto outcome = applyProbe(s, ProbeType::Share);
    EXPECT_EQ(isValid(outcome.next), isValid(s));
}

TEST_P(NmoesiShareSweep, CleanStatesSupplyCleanData)
{
    const CacheState s = GetParam();
    const auto outcome = applyProbe(s, ProbeType::Share);
    if (outcome.supplyData && !isDirty(s)) {
        EXPECT_FALSE(outcome.dirtyData);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllStates, NmoesiShareSweep,
    ::testing::Values(CacheState::I, CacheState::S, CacheState::E,
                      CacheState::O, CacheState::M, CacheState::N),
    [](const ::testing::TestParamInfo<CacheState> &info) {
        return toString(info.param);
    });

} // namespace
} // namespace cache
} // namespace pearl
