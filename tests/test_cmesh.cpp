/**
 * @file
 * Tests of the electrical CMESH baseline: routing, wormhole/VC flow
 * control, backpressure, deadlock-free drainage under random traffic,
 * and the energy model.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "electrical/cmesh.hpp"

namespace pearl {
namespace electrical {
namespace {

using sim::CoherenceOp;
using sim::Cycle;
using sim::MsgClass;
using sim::Packet;

Packet
meshPacket(int src, int dst, CoherenceOp op = CoherenceOp::Read,
           int size = sim::kRequestBits)
{
    static std::uint64_t seq = 0;
    Packet p;
    p.id = ++seq;
    p.op = op;
    p.msgClass = op == CoherenceOp::Data ? MsgClass::RespCpuL2Down
                                         : MsgClass::ReqCpuL2Down;
    p.src = src;
    p.dst = dst;
    p.sizeBits = size;
    return p;
}

void
stepN(CmeshNetwork &net, int n)
{
    for (int i = 0; i < n; ++i)
        net.step();
}

TEST(Cmesh, Topology)
{
    CmeshNetwork net;
    EXPECT_EQ(net.numNodes(), 17);
    EXPECT_EQ(net.routerOf(0), 0);
    EXPECT_EQ(net.routerOf(15), 15);
    EXPECT_EQ(net.routerOf(16), CmeshConfig{}.l3Router);
}

TEST(Cmesh, DeliversSingleFlit)
{
    CmeshNetwork net;
    ASSERT_TRUE(net.inject(meshPacket(0, 15)));
    stepN(net, 60);
    ASSERT_EQ(net.delivered().size(), 1u);
    EXPECT_EQ(net.delivered()[0].dst, 15);
}

TEST(Cmesh, DeliversMultiFlitPacket)
{
    CmeshNetwork net;
    ASSERT_TRUE(
        net.inject(meshPacket(3, 12, CoherenceOp::Data,
                              sim::kResponseBits)));
    stepN(net, 80);
    ASSERT_EQ(net.delivered().size(), 1u);
    EXPECT_EQ(net.stats().deliveredFlits(), 5u);
}

TEST(Cmesh, LocalDelivery)
{
    // Endpoint 16 (MC) and endpoint 5 share router 5.
    CmeshNetwork net;
    ASSERT_TRUE(net.inject(meshPacket(5, 16)));
    stepN(net, 20);
    ASSERT_EQ(net.delivered().size(), 1u);
}

TEST(Cmesh, LatencyGrowsWithHops)
{
    CmeshNetwork near_net, far_net;
    near_net.inject(meshPacket(5, 6));   // 1 hop
    far_net.inject(meshPacket(0, 15));   // 6 hops
    stepN(near_net, 60);
    stepN(far_net, 60);
    ASSERT_EQ(near_net.delivered().size(), 1u);
    ASSERT_EQ(far_net.delivered().size(), 1u);
    EXPECT_LT(near_net.delivered()[0].latency(),
              far_net.delivered()[0].latency());
}

TEST(Cmesh, InjectionQueueBackpressure)
{
    CmeshConfig cfg;
    cfg.injectionQueueDepth = 4;
    CmeshNetwork net(cfg);
    int accepted = 0;
    while (net.inject(meshPacket(0, 15)) && accepted < 100)
        ++accepted;
    EXPECT_EQ(accepted, 4);
    EXPECT_FALSE(net.canInject(meshPacket(0, 15)));
}

TEST(Cmesh, RandomTrafficDrains)
{
    // Deadlock-freedom smoke test: a burst of mixed request/response
    // traffic between random endpoints must fully drain.
    CmeshNetwork net;
    Rng rng(17);
    int injected = 0;
    for (int i = 0; i < 400; ++i) {
        const int src = static_cast<int>(rng.below(17));
        int dst = static_cast<int>(rng.below(17));
        if (dst == src)
            dst = (dst + 1) % 17;
        const bool resp = rng.chance(0.5);
        Packet p = meshPacket(src, dst,
                              resp ? CoherenceOp::Data : CoherenceOp::Read,
                              resp ? sim::kResponseBits
                                   : sim::kRequestBits);
        if (net.inject(p))
            ++injected;
        net.step();
    }
    for (int i = 0; i < 3000 && !net.idle(); ++i)
        net.step();
    EXPECT_TRUE(net.idle());
    EXPECT_EQ(net.stats().deliveredPackets(),
              static_cast<std::uint64_t>(injected));
}

TEST(Cmesh, RequestsAndResponsesUseSeparateVcClasses)
{
    // Saturate the request VCs between two endpoints; a response must
    // still get through (protocol-deadlock freedom by VC classes).
    CmeshNetwork net;
    for (int i = 0; i < 8; ++i)
        net.inject(meshPacket(0, 15));
    net.inject(meshPacket(0, 15, CoherenceOp::Data, sim::kResponseBits));
    stepN(net, 200);
    EXPECT_EQ(net.stats().deliveredPackets(), 9u);
}

TEST(Cmesh, ThroughputBoundedByLinkWidth)
{
    // A single source cannot push more than ~1 flit per cycle onto its
    // first mesh link.
    CmeshNetwork net;
    int injected = 0;
    for (int i = 0; i < 400; ++i) {
        if (net.inject(meshPacket(0, 15, CoherenceOp::Data,
                                  sim::kResponseBits)))
            ++injected;
        net.step();
    }
    const double flits_per_cycle =
        static_cast<double>(net.stats().deliveredFlits()) / 400.0;
    EXPECT_LE(flits_per_cycle, 1.05);
}

TEST(Cmesh, EnergyAccounting)
{
    CmeshNetwork net;
    const double dt = 0.5e-9;
    stepN(net, 100);
    EXPECT_GT(net.staticEnergyJ(dt), 0.0);
    const double before = net.dynamicEnergyJ();
    net.inject(meshPacket(0, 15, CoherenceOp::Data, sim::kResponseBits));
    stepN(net, 80);
    EXPECT_GT(net.dynamicEnergyJ(), before);
    // More hops cost more dynamic energy than fewer.
    CmeshNetwork near_net;
    near_net.inject(meshPacket(5, 6, CoherenceOp::Data,
                               sim::kResponseBits));
    stepN(near_net, 80);
    EXPECT_GT(net.dynamicEnergyJ(), near_net.dynamicEnergyJ());
}

TEST(Cmesh, SlowLinksStretchDelivery)
{
    CmeshConfig slow;
    slow.linkCyclesPerFlit = 4; // bandwidth-reduced CMESH (Figure 5)
    CmeshNetwork fast_net, slow_net(slow);
    fast_net.inject(meshPacket(0, 15, CoherenceOp::Data,
                               sim::kResponseBits));
    slow_net.inject(meshPacket(0, 15, CoherenceOp::Data,
                               sim::kResponseBits));
    stepN(fast_net, 300);
    stepN(slow_net, 300);
    ASSERT_EQ(fast_net.delivered().size(), 1u);
    ASSERT_EQ(slow_net.delivered().size(), 1u);
    EXPECT_GT(slow_net.delivered()[0].latency(),
              fast_net.delivered()[0].latency());
}

TEST(Cmesh, StatsCountInjectionsAndDeliveries)
{
    CmeshNetwork net;
    net.inject(meshPacket(2, 9));
    EXPECT_EQ(net.stats().injectedPackets(), 1u);
    stepN(net, 60);
    EXPECT_EQ(net.stats().deliveredPackets(), 1u);
    EXPECT_GT(net.stats().avgLatency(), 0.0);
}

} // namespace
} // namespace electrical
} // namespace pearl
