/**
 * @file
 * Tests of the Table III feature extractor, the window dataset collector
 * and the Equation 7 state-selection rule of the ML policy.
 */

#include <gtest/gtest.h>

#include "ml/collector.hpp"
#include "ml/cost_model.hpp"
#include "ml/features.hpp"
#include "ml/policy.hpp"

namespace pearl {
namespace ml {
namespace {

using core::WindowRecord;
using photonic::WlState;
using sim::MsgClass;
using sim::RouterTelemetry;

WindowRecord
makeRecord(int router, std::uint64_t injected,
           std::uint64_t window = 500)
{
    WindowRecord rec;
    rec.router = router;
    rec.windowCycles = window;
    rec.telemetry.packetsInjected = injected;
    rec.telemetry.wavelengths = 64;
    return rec;
}

TEST(Features, ThirtyNamesMatchingTableIII)
{
    const auto &names = FeatureExtractor::names();
    EXPECT_EQ(names.size(), 30u);
    EXPECT_EQ(names[0], "L3 router");
    EXPECT_EQ(names[1], "CPU Core Input Buffer Utilization");
    EXPECT_EQ(names[13], "Request CPU L1 instruction");
    EXPECT_EQ(names[20], "Request L3");
    EXPECT_EQ(names[28], "Response L3");
    EXPECT_EQ(names[29], "Number of Wavelengths");
}

TEST(Features, VectorIsThirtyWide)
{
    const auto x = FeatureExtractor::extract(makeRecord(0, 5), false);
    EXPECT_EQ(x.size(), 30u);
}

TEST(Features, L3Flag)
{
    EXPECT_DOUBLE_EQ(
        FeatureExtractor::extract(makeRecord(16, 0), true)[0], 1.0);
    EXPECT_DOUBLE_EQ(
        FeatureExtractor::extract(makeRecord(3, 0), false)[0], 0.0);
}

TEST(Features, OccupancyNormalisedByWindow)
{
    WindowRecord rec = makeRecord(1, 0, 100);
    rec.telemetry.cpuCoreBufOccupancy = 25.0; // integral over 100 cycles
    rec.telemetry.linkBusyCycles = 40;
    const auto x = FeatureExtractor::extract(rec, false);
    EXPECT_DOUBLE_EQ(x[1], 0.25);
    EXPECT_DOUBLE_EQ(x[5], 0.40);
}

TEST(Features, ClassCountsMapToFeatures14Through29)
{
    WindowRecord rec = makeRecord(2, 0);
    rec.telemetry.noteClass(MsgClass::ReqCpuL1I);   // feature 14 (idx 13)
    rec.telemetry.noteClass(MsgClass::RespL3);      // feature 29 (idx 28)
    rec.telemetry.noteClass(MsgClass::RespL3);
    const auto x = FeatureExtractor::extract(rec, false);
    EXPECT_DOUBLE_EQ(x[13], 1.0);
    EXPECT_DOUBLE_EQ(x[28], 2.0);
}

TEST(Features, WavelengthFeature)
{
    WindowRecord rec = makeRecord(4, 0);
    rec.telemetry.wavelengths = 48;
    EXPECT_DOUBLE_EQ(FeatureExtractor::extract(rec, false)[29], 48.0);
}

TEST(Collector, PairsWindowWithNextLabel)
{
    WindowDatasetCollector collector(17, 16);
    collector.observe(makeRecord(0, 7));   // features, no label yet
    EXPECT_EQ(collector.dataset().size(), 0u);
    collector.observe(makeRecord(0, 11));  // labels the previous window
    ASSERT_EQ(collector.dataset().size(), 1u);
    EXPECT_DOUBLE_EQ(collector.dataset().labels[0], 11.0);
    collector.observe(makeRecord(0, 13));
    EXPECT_EQ(collector.dataset().size(), 2u);
    EXPECT_DOUBLE_EQ(collector.dataset().labels[1], 13.0);
}

TEST(Collector, RoutersAreIndependent)
{
    WindowDatasetCollector collector(17, 16);
    collector.observe(makeRecord(0, 7));
    collector.observe(makeRecord(1, 9));
    EXPECT_EQ(collector.dataset().size(), 0u); // no router saw 2 windows
    collector.observe(makeRecord(1, 4));
    ASSERT_EQ(collector.dataset().size(), 1u);
    EXPECT_DOUBLE_EQ(collector.dataset().labels[0], 4.0);
}

TEST(Collector, CallbackFeedsObserve)
{
    WindowDatasetCollector collector(17, 16);
    auto cb = collector.callback();
    cb(makeRecord(5, 1));
    cb(makeRecord(5, 2));
    EXPECT_EQ(collector.dataset().size(), 1u);
}

TEST(MlPolicy, StateForDemandThresholds)
{
    MlPolicyConfig cfg;
    cfg.avgPacketBits = 384.0;
    cfg.utilizationTarget = 1.0;
    const std::uint64_t rw = 500;
    // Zero demand -> lowest state.
    EXPECT_EQ(MlPowerPolicy::stateForDemand(0.0, rw, cfg), WlState::WL8);
    // 8WL capacity = 8 * 500 = 4000 bits ~ 10.4 packets.
    EXPECT_EQ(MlPowerPolicy::stateForDemand(10.0, rw, cfg), WlState::WL8);
    EXPECT_EQ(MlPowerPolicy::stateForDemand(11.0, rw, cfg), WlState::WL16);
    // 64WL needed beyond 48WL capacity (24000 bits = 62.5 packets).
    EXPECT_EQ(MlPowerPolicy::stateForDemand(80.0, rw, cfg), WlState::WL64);
    // Demand beyond even 64WL still returns the top state.
    EXPECT_EQ(MlPowerPolicy::stateForDemand(1e9, rw, cfg), WlState::WL64);
}

TEST(MlPolicy, No8WlFloor)
{
    MlPolicyConfig cfg;
    cfg.enable8Wl = false;
    EXPECT_EQ(MlPowerPolicy::stateForDemand(0.0, 500, cfg),
              WlState::WL16);
}

TEST(MlPolicy, LongerWindowsNeedFewerWavelengths)
{
    MlPolicyConfig cfg;
    cfg.utilizationTarget = 1.0;
    const double pkts = 50.0;
    const auto s500 = MlPowerPolicy::stateForDemand(pkts, 500, cfg);
    const auto s2000 = MlPowerPolicy::stateForDemand(pkts, 2000, cfg);
    EXPECT_LE(photonic::indexOf(s2000), photonic::indexOf(s500));
}

TEST(MlPolicy, EndToEndNextState)
{
    // Train a trivial model that predicts the label = packetsInjected
    // feature-independent (constant), then check the policy runs.
    Dataset d;
    for (int i = 0; i < 40; ++i) {
        auto x = FeatureExtractor::extract(makeRecord(0, 5), false);
        d.add(std::move(x), 5.0);
    }
    RidgeRegression model;
    model.fit(d, 1.0);

    MlPolicyConfig cfg;
    MlPowerPolicy policy(&model, cfg);
    sim::RouterTelemetry tel;
    tel.packetsInjected = 5;
    core::WindowObservation obs;
    obs.telemetry = &tel;
    obs.windowCycles = 500;
    const auto state = policy.nextState(obs);
    // Predicted ~5 packets * 384 bits << 8WL window capacity.
    EXPECT_EQ(state, WlState::WL8);
    EXPECT_STREQ(policy.name(), "ml");
}

TEST(CostModel, MatchesPaperNumbers)
{
    MlCostModel cost;
    EXPECT_EQ(cost.multiplies(), 30);
    EXPECT_EQ(cost.adds(), 29);
    EXPECT_NEAR(cost.inferenceEnergyJ() * 1e12, 44.6, 0.1);
    EXPECT_NEAR(cost.averagePowerW(500) * 1e6, 178.4, 0.5);
    EXPECT_NEAR(cost.multiplierPowerW(500) * 1e6, 132.0, 0.5);
}

TEST(CostModel, PowerScalesInverselyWithWindow)
{
    MlCostModel cost;
    EXPECT_NEAR(cost.averagePowerW(2000) * 4.0, cost.averagePowerW(500),
                1e-9);
}

TEST(Collector, BufferUtilizationLabel)
{
    WindowDatasetCollector collector(17, 16,
                                     LabelKind::BufferUtilization);
    WindowRecord a = makeRecord(0, 100, 200);
    a.telemetry.cpuCoreBufOccupancy = 50.0;
    a.telemetry.gpuCoreBufOccupancy = 30.0;
    collector.observe(a);
    WindowRecord b = makeRecord(0, 999, 200);
    b.telemetry.cpuCoreBufOccupancy = 20.0;
    b.telemetry.gpuCoreBufOccupancy = 20.0;
    collector.observe(b);
    ASSERT_EQ(collector.dataset().size(), 1u);
    // Label is window b's mean occupancy, not its packet count.
    EXPECT_DOUBLE_EQ(collector.dataset().labels[0], 40.0 / 200.0);
}

} // namespace
} // namespace ml
} // namespace pearl
