/**
 * @file
 * Tests for the generic set-associative cache array.
 */

#include <gtest/gtest.h>

#include "cache/cache_array.hpp"

namespace pearl {
namespace cache {
namespace {

TEST(CacheArray, MissOnEmpty)
{
    CacheArray<> arr(64, 4);
    EXPECT_EQ(arr.find(0x1234), nullptr);
    EXPECT_EQ(arr.validLines(), 0u);
}

TEST(CacheArray, InstallThenFind)
{
    CacheArray<> arr(64, 4);
    auto &victim = arr.victim(0x1234);
    arr.install(victim, 0x1234, CacheState::E);
    auto *line = arr.find(0x1234);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->tag, 0x1234u);
    EXPECT_EQ(line->state, CacheState::E);
    EXPECT_EQ(arr.validLines(), 1u);
}

TEST(CacheArray, GeometryChecks)
{
    CacheArray<> arr(128, 8);
    EXPECT_EQ(arr.numSets(), 16u);
    EXPECT_EQ(arr.ways(), 8);
    EXPECT_EQ(arr.capacityLines(), 128u);
}

TEST(CacheArray, VictimPrefersInvalidWays)
{
    CacheArray<> arr(16, 4); // 4 sets
    // Fill 3 of 4 ways in set 0.
    for (std::uint64_t addr : {0ULL, 4ULL, 8ULL}) {
        auto &v = arr.victim(addr);
        EXPECT_FALSE(isValid(v.state));
        arr.install(v, addr, CacheState::S);
    }
    // The next victim in set 0 must still be the remaining invalid way.
    auto &v = arr.victim(12);
    EXPECT_FALSE(isValid(v.state));
}

TEST(CacheArray, LruEviction)
{
    CacheArray<> arr(8, 2); // 4 sets, 2 ways
    // Two lines mapping to set 0 (addr % 4 == 0).
    auto &v0 = arr.victim(0);
    arr.install(v0, 0, CacheState::S);
    auto &v4 = arr.victim(4);
    arr.install(v4, 4, CacheState::S);
    // Touch line 0 so line 4 is LRU.
    arr.touch(*arr.find(0));
    auto &victim = arr.victim(8);
    EXPECT_EQ(victim.tag, 4u);
}

TEST(CacheArray, VictimWhereSkipsBusyLines)
{
    CacheArray<> arr(8, 2);
    auto &v0 = arr.victim(0);
    arr.install(v0, 0, CacheState::S);
    auto &v4 = arr.victim(4);
    arr.install(v4, 4, CacheState::S);
    arr.touch(*arr.find(0)); // line 4 would be the LRU victim
    auto &victim =
        arr.victimWhere(8, [](std::uint64_t tag) { return tag == 4; });
    EXPECT_EQ(victim.tag, 0u); // busy line 4 skipped
}

TEST(CacheArray, VictimWhereFallsBackWhenAllBusy)
{
    CacheArray<> arr(8, 2);
    auto &v0 = arr.victim(0);
    arr.install(v0, 0, CacheState::S);
    auto &v4 = arr.victim(4);
    arr.install(v4, 4, CacheState::S);
    auto &victim = arr.victimWhere(8, [](std::uint64_t) { return true; });
    EXPECT_TRUE(isValid(victim.state)); // still returns something
}

TEST(CacheArray, MetadataResetOnInstall)
{
    struct Meta
    {
        int value = 0;
    };
    CacheArray<Meta> arr(8, 2);
    auto &v = arr.victim(3);
    arr.install(v, 3, CacheState::M);
    arr.find(3)->meta.value = 42;
    // Reinstall a different line into the same way.
    auto *line = arr.find(3);
    line->state = CacheState::I;
    auto &v2 = arr.victim(7);
    arr.install(v2, 7, CacheState::S);
    EXPECT_EQ(arr.find(7)->meta.value, 0);
}

TEST(CacheArray, SetIsolation)
{
    CacheArray<> arr(16, 4); // 4 sets
    // Fill set 0 completely.
    for (std::uint64_t addr : {0ULL, 4ULL, 8ULL, 12ULL}) {
        auto &v = arr.victim(addr);
        arr.install(v, addr, CacheState::S);
    }
    // Set 1 is untouched: its victim is invalid.
    EXPECT_FALSE(isValid(arr.victim(1).state));
    // All of set 0 findable.
    for (std::uint64_t addr : {0ULL, 4ULL, 8ULL, 12ULL})
        EXPECT_NE(arr.find(addr), nullptr);
}

TEST(CacheArray, ResetInvalidatesEverything)
{
    CacheArray<> arr(8, 2);
    auto &v = arr.victim(1);
    arr.install(v, 1, CacheState::M);
    arr.reset();
    EXPECT_EQ(arr.find(1), nullptr);
    EXPECT_EQ(arr.validLines(), 0u);
}

TEST(CacheArray, InvalidLinesNotFound)
{
    CacheArray<> arr(8, 2);
    auto &v = arr.victim(5);
    arr.install(v, 5, CacheState::S);
    arr.find(5)->state = CacheState::I;
    EXPECT_EQ(arr.find(5), nullptr);
}

} // namespace
} // namespace cache
} // namespace pearl
