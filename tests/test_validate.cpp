/**
 * @file
 * Tests of the structured-error layer (common/expected.hpp) and the
 * config validators: every user-facing configuration struct has a
 * validate() whose failures carry an actionable message, and the
 * construction paths that used to PEARL_ASSERT on user input now throw
 * ConfigError instead.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cache/cache_array.hpp"
#include "cache/validate.hpp"
#include "common/expected.hpp"
#include "core/validate.hpp"
#include "electrical/validate.hpp"
#include "metrics/sweep.hpp"
#include "ml/guarded_policy.hpp"
#include "photonic/loss_budget.hpp"
#include "photonic/reservation.hpp"
#include "traffic/suite.hpp"

namespace pearl {
namespace {

/** True when the validation failed and its message mentions `needle`. */
testing::AssertionResult
failsMentioning(const Validation &v, const std::string &needle)
{
    if (v)
        return testing::AssertionFailure()
               << "expected a validation failure mentioning '" << needle
               << "' but validation passed";
    if (v.error().code != ErrorCode::InvalidConfig)
        return testing::AssertionFailure()
               << "expected InvalidConfig, got "
               << static_cast<int>(v.error().code) << ": "
               << v.error().message;
    if (v.error().message.find(needle) == std::string::npos)
        return testing::AssertionFailure()
               << "message does not mention '" << needle
               << "': " << v.error().message;
    return testing::AssertionSuccess();
}

// Expected<T> ------------------------------------------------------------

TEST(Expected, ValueAndErrorStates)
{
    Expected<int> ok(42);
    EXPECT_TRUE(ok.hasValue());
    EXPECT_EQ(ok.value(), 42);

    Expected<int> bad(Error(ErrorCode::InvalidArgument, "nope"));
    EXPECT_FALSE(bad.hasValue());
    EXPECT_FALSE(bad);
    EXPECT_EQ(bad.error().code, ErrorCode::InvalidArgument);
    EXPECT_EQ(bad.error().message, "nope");

    Validation v; // default: success
    EXPECT_TRUE(v);
    EXPECT_NO_THROW(throwIfInvalid(v));

    const Validation fail = configError("field must be > ", 3, ", got ", 0);
    EXPECT_FALSE(fail);
    EXPECT_EQ(fail.error().message, "field must be > 3, got 0");
    EXPECT_THROW(throwIfInvalid(fail), ConfigError);
    try {
        throwIfInvalid(fail);
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find(fail.error().message),
                  std::string::npos);
        EXPECT_EQ(e.error().code, ErrorCode::InvalidConfig);
    }
}

// Core -------------------------------------------------------------------

TEST(Validate, PearlConfigDefaultsPassAndBadFieldsNameThemselves)
{
    core::PearlConfig cfg;
    EXPECT_TRUE(core::validate(cfg));

    cfg.reservationWindow = 0;
    EXPECT_TRUE(failsMentioning(core::validate(cfg),
                                "reservationWindow"));
    cfg = {};

    cfg.l3Node = 99;
    EXPECT_TRUE(failsMentioning(core::validate(cfg), "l3Node"));
    cfg = {};

    cfg.faults.enabled = true;
    cfg.faults.baseBer = 1.5; // not a probability
    EXPECT_TRUE(failsMentioning(core::validate(cfg), "baseBer"));
    cfg.faults.baseBer = 1e-6;
    cfg.ackTimeoutCycles = 0; // every delivery would "time out"
    EXPECT_TRUE(failsMentioning(core::validate(cfg),
                                "ackTimeoutCycles"));
}

TEST(Validate, DbaAndReactiveThresholds)
{
    core::DbaConfig dba;
    EXPECT_TRUE(core::validate(dba));
    dba.stepFraction = 0.9;
    EXPECT_TRUE(failsMentioning(core::validate(dba), "stepFraction"));

    core::ReactiveThresholds t;
    EXPECT_TRUE(core::validate(t));
    t.midLower = t.midUpper; // ladder no longer strictly descending
    EXPECT_TRUE(failsMentioning(core::validate(t), "descend"));
}

// Cache ------------------------------------------------------------------

TEST(Validate, CacheHierarchyAndArrayGeometry)
{
    cache::HierarchyConfig cfg;
    EXPECT_TRUE(cache::validate(cfg));

    cfg.l3Ways = 0;
    EXPECT_TRUE(failsMentioning(cache::validate(cfg), "l3"));
    cfg = {};

    cfg.cpuL2Lines = 1000; // not divisible by 8 ways
    cfg.l2Ways = 7;
    EXPECT_TRUE(failsMentioning(cache::validate(cfg), "divisible"));

    EXPECT_TRUE(cache::validateArrayGeometry("x", 1024, 8));
    EXPECT_TRUE(failsMentioning(
        cache::validateArrayGeometry("tagArray", 1024, 128), "tagArray"));
}

TEST(Validate, CacheArrayConstructionThrowsConfigError)
{
    EXPECT_NO_THROW((cache::CacheArray<>(1024, 8)));
    EXPECT_THROW((cache::CacheArray<>(1024, 0)), ConfigError);
    EXPECT_THROW((cache::CacheArray<>(0, 8)), ConfigError);
    EXPECT_THROW((cache::CacheArray<>(1000, 7)), ConfigError);
    EXPECT_THROW((cache::CacheArray<>(1024, 100)), ConfigError);
}

// Electrical -------------------------------------------------------------

TEST(Validate, CmeshConfig)
{
    electrical::CmeshConfig cfg;
    EXPECT_TRUE(electrical::validate(cfg));

    cfg.numVcs = 3; // must stay even (req/resp pairing)
    EXPECT_TRUE(failsMentioning(electrical::validate(cfg), "numVcs"));
    cfg = {};

    cfg.l3Router = 16; // out of the 4x4 mesh
    EXPECT_TRUE(failsMentioning(electrical::validate(cfg), "l3Router"));
    cfg = {};

    cfg.linkCyclesPerFlit = 0;
    EXPECT_TRUE(failsMentioning(electrical::validate(cfg),
                                "linkCyclesPerFlit"));
}

// Photonic ---------------------------------------------------------------

TEST(Validate, ReservationChannel)
{
    photonic::ReservationConfig cfg;
    EXPECT_TRUE(photonic::validate(cfg));
    EXPECT_NO_THROW(photonic::ReservationChannel{cfg});

    cfg.numRouters = 0;
    EXPECT_TRUE(failsMentioning(photonic::validate(cfg), "numRouters"));
    EXPECT_THROW(photonic::ReservationChannel{cfg}, ConfigError);

    photonic::ReservationChannel chan;
    EXPECT_THROW(chan.latencyCycles(0), ConfigError);
    try {
        chan.latencyCycles(-1);
    } catch (const ConfigError &e) {
        EXPECT_EQ(e.error().code, ErrorCode::InvalidArgument);
    }
}

TEST(Validate, LossBudgetArgumentsThrowStructuredErrors)
{
    const photonic::LossBudget budget{photonic::DeviceConstants{},
                                      photonic::ChipGeometry{}};
    EXPECT_GT(budget.electricalLaserW(photonic::WlState::WL64, 0.1),
              0.0);
    EXPECT_THROW(budget.electricalLaserW(photonic::WlState::WL64, 0.0),
                 ConfigError);
    EXPECT_THROW(budget.electricalLaserW(photonic::WlState::WL64, 1.5),
                 ConfigError);
    EXPECT_THROW(budget.calibratedEfficiency(0.0), ConfigError);
    EXPECT_THROW(budget.calibratedEfficiency(-3.0), ConfigError);
}

// Run descriptors --------------------------------------------------------

metrics::RunSpec
validPearlSpec()
{
    traffic::BenchmarkSuite suite;
    metrics::RunSpec spec;
    spec.configName = "unit";
    spec.pair = {suite.find("Rad"), suite.find("QRS")};
    spec.options.warmupCycles = 100;
    spec.options.measureCycles = 500;
    spec.makePolicy = [] {
        return std::make_unique<core::ReactivePolicy>();
    };
    return spec;
}

TEST(Validate, RunSpecPaths)
{
    EXPECT_TRUE(metrics::validate(validPearlSpec()));

    // Shared options: a zero measurement phase can never be right.
    metrics::RunSpec spec = validPearlSpec();
    spec.options.measureCycles = 0;
    EXPECT_TRUE(failsMentioning(metrics::validate(spec),
                                "measureCycles"));

    // The Pearl descriptor path needs a policy factory.
    spec = validPearlSpec();
    spec.makePolicy = nullptr;
    EXPECT_TRUE(failsMentioning(metrics::validate(spec), "policy"));

    // Fabric config errors surface with the job name as a prefix.
    spec = validPearlSpec();
    spec.configName = "bad-window";
    spec.pearl.reservationWindow = 0;
    const Validation v = metrics::validate(spec);
    EXPECT_TRUE(failsMentioning(v, "reservationWindow"));
    EXPECT_TRUE(failsMentioning(v, "bad-window"));

    // Cmesh jobs validate the mesh config instead.
    spec = validPearlSpec();
    spec.fabric = metrics::RunSpec::Fabric::Cmesh;
    spec.makePolicy = nullptr; // not needed on the electrical path
    spec.cmesh.meshX = 0;
    EXPECT_TRUE(failsMentioning(metrics::validate(spec), "mesh"));

    // Custom jobs own everything beyond the shared options.
    spec = validPearlSpec();
    spec.pearl.reservationWindow = 0; // would fail the descriptor path
    spec.custom = [](const metrics::RunSpec &,
                     std::uint64_t) { return metrics::RunMetrics{}; };
    EXPECT_TRUE(metrics::validate(spec));
}

TEST(Validate, ExecuteSpecThrowsOnInvalidDescriptor)
{
    metrics::RunSpec spec = validPearlSpec();
    spec.pearl.reservationWindow = 0;
    EXPECT_THROW(metrics::executeSpec(spec, 1), ConfigError);

    spec = validPearlSpec();
    spec.makePolicy = nullptr;
    EXPECT_THROW(metrics::executeSpec(spec, 1), ConfigError);
}

// Guardrails (the remaining validate() entry point) ----------------------

TEST(Validate, GuardrailConfig)
{
    ml::GuardrailConfig cfg;
    EXPECT_TRUE(ml::validate(cfg));
    cfg.enterStreak = 0;
    EXPECT_TRUE(failsMentioning(ml::validate(cfg), "streak"));
}

} // namespace
} // namespace pearl
