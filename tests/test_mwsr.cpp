/**
 * @file
 * Tests of the MWSR token-arbitrated photonic crossbar baseline.
 */

#include <gtest/gtest.h>

#include "core/mwsr_network.hpp"
#include "core/network.hpp"
#include "traffic/synthetic.hpp"

namespace pearl {
namespace core {
namespace {

using sim::Cycle;
using sim::MsgClass;
using sim::Packet;

Packet
mwsrPacket(int src, int dst, int size = sim::kRequestBits)
{
    static std::uint64_t seq = 0;
    Packet p;
    p.id = ++seq;
    p.msgClass = MsgClass::ReqCpuL2Down;
    p.src = src;
    p.dst = dst;
    p.sizeBits = size;
    return p;
}

MwsrNetwork
makeNet(MwsrConfig cfg = MwsrConfig{})
{
    static photonic::PowerModel power;
    return MwsrNetwork(cfg, power);
}

TEST(Mwsr, DeliversPacket)
{
    auto net = makeNet();
    ASSERT_TRUE(net.inject(mwsrPacket(0, 5)));
    for (int i = 0; i < 100 && net.delivered().empty(); ++i)
        net.step();
    ASSERT_EQ(net.delivered().size(), 1u);
    EXPECT_EQ(net.delivered()[0].dst, 5);
}

TEST(Mwsr, TokenMustArriveBeforeTransmit)
{
    // Channel 5's token starts at router 5; a packet from router 0 waits
    // for the token to circulate 0 -> ... -> 0 before transmitting.
    auto net = makeNet();
    net.inject(mwsrPacket(0, 5));
    for (int i = 0; i < 200 && net.delivered().empty(); ++i)
        net.step();
    ASSERT_EQ(net.delivered().size(), 1u);
    // 12 hops (5->...->16->0) x 2 cycles/hop-ish + serialisation.
    EXPECT_GT(net.delivered()[0].latency(), 10u);
}

TEST(Mwsr, VoqBackpressure)
{
    MwsrConfig cfg;
    cfg.voqDepthPackets = 3;
    auto net = makeNet(cfg);
    EXPECT_TRUE(net.inject(mwsrPacket(1, 2)));
    EXPECT_TRUE(net.inject(mwsrPacket(1, 2)));
    EXPECT_TRUE(net.inject(mwsrPacket(1, 2)));
    EXPECT_FALSE(net.canInject(mwsrPacket(1, 2)));
    // Other destinations have their own queues.
    EXPECT_TRUE(net.canInject(mwsrPacket(1, 3)));
}

TEST(Mwsr, SingleWriterPerChannel)
{
    // Two writers to one destination are serialised by the token; all
    // packets still arrive.
    auto net = makeNet();
    for (int i = 0; i < 5; ++i) {
        net.inject(mwsrPacket(0, 9, sim::kResponseBits));
        net.inject(mwsrPacket(1, 9, sim::kResponseBits));
    }
    for (int i = 0; i < 2000 && !net.idle(); ++i)
        net.step();
    EXPECT_TRUE(net.idle());
    EXPECT_EQ(net.stats().deliveredPackets(), 10u);
}

TEST(Mwsr, DrainsRandomTraffic)
{
    auto net = makeNet();
    Rng rng(5);
    int injected = 0;
    for (Cycle t = 0; t < 2000; ++t) {
        if (rng.chance(0.3)) {
            const int src = static_cast<int>(rng.below(17));
            int dst = static_cast<int>(rng.below(17));
            if (dst == src)
                dst = (dst + 1) % 17;
            injected += net.inject(mwsrPacket(src, dst));
        }
        net.step();
    }
    for (int i = 0; i < 20000 && !net.idle(); ++i)
        net.step();
    EXPECT_TRUE(net.idle());
    EXPECT_EQ(net.stats().deliveredPackets(),
              static_cast<std::uint64_t>(injected));
}

TEST(Mwsr, ArbitrationLatencyExceedsSwmr)
{
    // The ablation's point: under uniform traffic the token wait makes
    // MWSR latency visibly worse than the per-source SWMR of PEARL at
    // light load.
    photonic::PowerModel power;
    MwsrNetwork mwsr(MwsrConfig{}, power);
    StaticPolicy policy(photonic::WlState::WL64);
    PearlNetwork swmr(PearlConfig{}, power, DbaConfig{}, &policy);

    traffic::SyntheticConfig cfg;
    cfg.flitsPerSourcePerCycle = 0.02;
    traffic::SyntheticInjector inj_a(cfg);
    traffic::SyntheticInjector inj_b(cfg);
    for (Cycle t = 0; t < 10000; ++t) {
        inj_a.step(mwsr);
        inj_b.step(swmr);
    }
    EXPECT_GT(mwsr.avgTokenWaitCycles(), 1.0);
    EXPECT_GT(mwsr.stats().avgLatency(), swmr.stats().avgLatency());
}

TEST(Mwsr, LaserEnergyAlwaysOn)
{
    auto net = makeNet();
    for (int i = 0; i < 1000; ++i)
        net.step();
    EXPECT_NEAR(net.laserEnergyJ(), 1.16 * 1000 * 0.5e-9, 1e-12);
}

} // namespace
} // namespace core
} // namespace pearl
