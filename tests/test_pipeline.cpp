/**
 * @file
 * Tests of the ML training pipeline (data collection, lambda selection,
 * evaluation).  Uses reduced pair counts and short runs to stay fast.
 */

#include <gtest/gtest.h>

#include "ml/pipeline.hpp"

namespace pearl {
namespace ml {
namespace {

PipelineConfig
smallConfig()
{
    PipelineConfig cfg;
    cfg.reservationWindow = 250;
    cfg.simCycles = 4000;
    cfg.maxTrainPairs = 2;
    cfg.maxValPairs = 1;
    cfg.secondPass = false;
    cfg.lambdaGrid = {0.1, 10.0};
    return cfg;
}

TEST(Pipeline, CollectsLabelledWindows)
{
    traffic::BenchmarkSuite suite;
    TrainingPipeline pipe(suite, smallConfig());
    core::StaticPolicy policy(photonic::WlState::WL64);
    const auto data = pipe.collect(
        traffic::BenchmarkPair{suite.find("FA"), suite.find("DCT")},
        policy, 3);
    // 4000 cycles / 250-cycle windows = ~16 windows per router, minus
    // the first unlabelled one, times 17 routers.
    EXPECT_GT(data.size(), 17u * 10u);
    EXPECT_EQ(data.features.front().size(),
              static_cast<std::size_t>(kNumFeatures));
}

TEST(Pipeline, RunTrainsAModel)
{
    traffic::BenchmarkSuite suite;
    TrainingPipeline pipe(suite, smallConfig());
    const auto result = pipe.run();
    EXPECT_TRUE(result.model.trained());
    EXPECT_GT(result.trainSamples, 100u);
    EXPECT_GT(result.valSamples, 10u);
    EXPECT_TRUE(result.bestLambda == 0.1 || result.bestLambda == 10.0);
    // The model should beat the mean predictor on validation data.
    EXPECT_GT(result.validationNrmse, -1.0);
}

TEST(Pipeline, EvaluateComputesAccuracy)
{
    traffic::BenchmarkSuite suite;
    TrainingPipeline pipe(suite, smallConfig());
    const auto result = pipe.run();
    core::StaticPolicy policy(photonic::WlState::WL64);
    const auto test_data = pipe.collect(
        traffic::BenchmarkPair{suite.find("Rad"), suite.find("QRS")},
        policy, 11);
    const auto eval = pipe.evaluate(result.model, test_data);
    EXPECT_EQ(eval.samples, test_data.size());
    EXPECT_GE(eval.stateAccuracy, 0.0);
    EXPECT_LE(eval.stateAccuracy, 1.0);
    EXPECT_GE(eval.topStateAccuracy, 0.0);
    EXPECT_LE(eval.topStateAccuracy, 1.0);
}

TEST(Pipeline, SecondPassRefits)
{
    traffic::BenchmarkSuite suite;
    PipelineConfig cfg = smallConfig();
    cfg.secondPass = true;
    TrainingPipeline pipe(suite, cfg);
    const auto result = pipe.run();
    EXPECT_TRUE(result.model.trained());
}

} // namespace
} // namespace ml
} // namespace pearl
