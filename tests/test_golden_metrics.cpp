/**
 * @file
 * Golden-metrics regression suite.
 *
 * Runs a small fixed grid — 3 benchmark pairs x {FCFS, reactive, ML} at
 * short cycle counts — through the sweep engine and compares every
 * RunMetrics field against checked-in CSVs under tests/golden/.  Any
 * drift in simulation output fails with a field-level diff naming the
 * config, pair and field.  The CSV schema (column set, order and value
 * formatting) is the canonical one from metrics/csv.hpp — the same one
 * PEARL_METRICS_DUMP writes.
 *
 * Regenerate the golden files after an intentional behaviour change:
 *   PEARL_UPDATE_GOLDEN=1 ./test_golden_metrics
 * and commit the updated tests/golden/*.csv.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "core/topology.hpp"
#include "metrics/csv.hpp"
#include "metrics/sweep.hpp"
#include "ml/pipeline.hpp"
#include "ml/policy.hpp"
#include "traffic/suite.hpp"

#ifndef PEARL_GOLDEN_DIR
#error "PEARL_GOLDEN_DIR must point at tests/golden"
#endif

namespace pearl {
namespace metrics {
namespace {

/** Doubles must round-trip exactly through the CSV; the tiny relative
 *  tolerance only absorbs printf/strtod last-ulp asymmetries, never a
 *  real behaviour change. */
bool
doubleMatches(double golden, double actual)
{
    if (golden == actual)
        return true;
    const double scale =
        std::max(std::abs(golden), std::abs(actual));
    return std::abs(golden - actual) <= 1e-12 * scale;
}

/** The fixed grid: one sweep per config over three test pairs. */
struct GoldenConfig
{
    std::string name;                       //!< also the CSV stem
    std::vector<RunSpec> jobs;
};

RunOptions
goldenOptions()
{
    RunOptions opts;
    opts.warmupCycles = 400;
    opts.measureCycles = 2500;
    return opts;
}

std::vector<traffic::BenchmarkPair>
goldenPairs(const traffic::BenchmarkSuite &suite)
{
    return {
        {suite.find("Rad"), suite.find("QRS")},
        {suite.find("FA"), suite.find("Reduc")},
        {suite.find("x264"), suite.find("DCT")},
    };
}

/** Tiny deterministic training run for the ML column (fixed pipeline
 *  seed; no model-file involvement, so the test is state-free). */
const ml::PipelineResult &
goldenModel(const traffic::BenchmarkSuite &suite)
{
    static const ml::PipelineResult trained = [&suite] {
        ml::PipelineConfig cfg;
        cfg.reservationWindow = 500;
        cfg.simCycles = 4000;
        cfg.maxTrainPairs = 2;
        cfg.maxValPairs = 1;
        cfg.secondPass = false;
        cfg.lambdaGrid = {0.1, 10.0};
        return ml::TrainingPipeline(suite, cfg).run();
    }();
    return trained;
}

std::vector<GoldenConfig>
goldenGrid(const traffic::BenchmarkSuite &suite)
{
    const RunOptions opts = goldenOptions();
    const auto pairs = goldenPairs(suite);

    std::vector<GoldenConfig> grid;
    auto addConfig =
        [&](const std::string &name, const core::DbaConfig &dba,
            std::function<std::unique_ptr<core::PowerPolicy>()> make) {
            GoldenConfig cfg;
            cfg.name = name;
            for (const auto &pair : pairs) {
                RunSpec job;
                job.configName = name;
                job.pair = pair;
                job.options = opts;
                job.dba = dba;
                job.pearl.reservationWindow = 500;
                job.makePolicy = make;
                cfg.jobs.push_back(std::move(job));
            }
            grid.push_back(std::move(cfg));
        };

    core::DbaConfig fcfs;
    fcfs.mode = core::DbaConfig::Mode::Fcfs;
    addConfig("fcfs", fcfs, [] {
        return std::make_unique<core::StaticPolicy>(
            photonic::WlState::WL64);
    });
    addConfig("reactive", core::DbaConfig{}, [] {
        return std::make_unique<core::ReactivePolicy>();
    });
    const ml::RidgeRegression &model = goldenModel(suite).model;
    addConfig("ml", core::DbaConfig{}, [&model] {
        return std::make_unique<ml::MlPowerPolicy>(&model);
    });
    return grid;
}

std::string
goldenPath(const std::string &config)
{
    return std::string(PEARL_GOLDEN_DIR) + "/" + config + ".csv";
}

void
writeGolden(const GoldenConfig &cfg,
            const std::vector<RunMetrics> &runs)
{
    const std::string path = goldenPath(cfg.name);
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << csvHeader({"pair"}) << "\n";
    for (const RunMetrics &m : runs)
        out << csvRow({m.pairLabel}, m) << "\n";
}

void
compareGolden(const GoldenConfig &cfg,
              const std::vector<RunMetrics> &runs)
{
    const std::string path = goldenPath(cfg.name);
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " — regenerate with PEARL_UPDATE_GOLDEN=1";

    std::string line;
    ASSERT_TRUE(std::getline(in, line)) << "empty golden " << path;
    const std::vector<std::string> header = splitCsvLine(line);

    for (const RunMetrics &m : runs) {
        ASSERT_TRUE(std::getline(in, line))
            << path << ": fewer rows than the grid has runs";
        const std::vector<std::string> cells = splitCsvLine(line);
        const std::vector<MetricField> fields = metricFields(m);
        ASSERT_EQ(cells.size(), fields.size() + 1)
            << path << ": column count mismatch (stale golden format?)";
        EXPECT_EQ(cells[0], m.pairLabel) << path << ": row order drift";

        for (std::size_t i = 0; i < fields.size(); ++i) {
            const MetricField &f = fields[i];
            ASSERT_EQ(header[i + 1], f.name)
                << path << ": header mismatch at column " << i + 1;
            const std::string where = cfg.name + "/" + m.pairLabel +
                                      " field " + f.name;
            if (f.isInteger) {
                EXPECT_EQ(cells[i + 1], std::to_string(f.u))
                    << where << ": golden " << cells[i + 1]
                    << " vs actual " << f.u;
            } else {
                const double golden = std::strtod(cells[i + 1].c_str(),
                                                  nullptr);
                EXPECT_TRUE(doubleMatches(golden, f.d))
                    << where << ": golden " << cells[i + 1]
                    << " vs actual " << formatMetricValue(f);
            }
        }
    }
    EXPECT_FALSE(std::getline(in, line))
        << path << ": more rows than the grid has runs";
}

/** RAII env-var override.  Set before the sweep workers launch and
 *  restored after they join, so the getenv inside worker threads never
 *  races a setenv. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        ::setenv(name, value, 1);
    }
    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_ = false;
    std::string old_;
};

/** Canonical CSV rows for one golden config under a given
 *  PEARL_FAST_FORWARD setting. */
std::vector<std::string>
rowsWithFastForward(const GoldenConfig &cfg, const char *ff)
{
    ScopedEnv env("PEARL_FAST_FORWARD", ff);
    SweepOptions so;
    so.baseSeed = 100;
    const SweepResult result = SweepRunner(so).run(cfg.jobs);
    std::vector<std::string> rows;
    for (const RunMetrics &m : result.metricsOrThrow())
        rows.push_back(csvRow({m.pairLabel}, m));
    return rows;
}

TEST(GoldenMetrics, FastForwardOnOffRowsAreByteIdentical)
{
    // Idle fast-forward must be unobservable: on every golden config the
    // generators are live, so the fast path never engages, and a run
    // with PEARL_FAST_FORWARD on must produce byte-identical canonical
    // CSV rows to a run with it forced off.
    traffic::BenchmarkSuite suite;
    for (const GoldenConfig &cfg : goldenGrid(suite)) {
        SCOPED_TRACE("config " + cfg.name);
        const std::vector<std::string> on = rowsWithFastForward(cfg, "1");
        const std::vector<std::string> off = rowsWithFastForward(cfg, "0");
        ASSERT_EQ(on.size(), off.size());
        for (std::size_t i = 0; i < on.size(); ++i)
            EXPECT_EQ(on[i], off[i]) << "row " << i;
    }
}

TEST(GoldenMetrics, FixedGridMatchesCheckedInResults)
{
    const bool update = pearl::envU64("PEARL_UPDATE_GOLDEN", 0) != 0;

    traffic::BenchmarkSuite suite;
    for (const GoldenConfig &cfg : goldenGrid(suite)) {
        SCOPED_TRACE("config " + cfg.name);
        SweepOptions so;
        so.baseSeed = 100;
        const SweepResult result = SweepRunner(so).run(cfg.jobs);
        ASSERT_TRUE(result.allOk())
            << (result.firstError() ? result.firstError()->error
                                    : "unknown");
        const std::vector<RunMetrics> runs = result.metricsOrThrow();

        // Sanity: the grid must simulate real traffic, or the goldens
        // would freeze trivial zeros.
        for (const RunMetrics &m : runs)
            ASSERT_GT(m.deliveredPackets, 0u);

        if (update) {
            writeGolden(cfg, runs);
            std::cout << "[golden] updated " << goldenPath(cfg.name)
                      << "\n";
        } else {
            compareGolden(cfg, runs);
        }
    }
}

/** The scale-out row: a 32-cluster grouped chip (2 waveguide groups of
 *  16, express inter-group slots) derived entirely from a TopologySpec,
 *  pinned with the same field-exact CSV machinery as the legacy grid. */
GoldenConfig
scale32Config(const traffic::BenchmarkSuite &suite)
{
    core::TopologySpec topo;
    topo.clusters = 32;
    GoldenConfig cfg;
    cfg.name = "scale32";
    for (const auto &pair : goldenPairs(suite)) {
        RunSpec job;
        job.configName = cfg.name;
        job.pair = pair;
        job.options = goldenOptions();
        job.options.system = core::makeSystemConfig(topo);
        job.pearl = topo.pearlConfig();
        job.makePolicy = [] {
            return std::make_unique<core::ReactivePolicy>();
        };
        cfg.jobs.push_back(std::move(job));
    }
    return cfg;
}

TEST(GoldenMetrics, Scale32GroupedRowsMatchCheckedInResults)
{
    const bool update = pearl::envU64("PEARL_UPDATE_GOLDEN", 0) != 0;

    traffic::BenchmarkSuite suite;
    const GoldenConfig cfg = scale32Config(suite);
    SCOPED_TRACE("config " + cfg.name);

    // The whole pinned run is invariant-audited: any express-slot
    // legality or packet-conservation violation on the grouped fabric
    // surfaces as a job failure here, not just as metric drift.
    ScopedEnv verify_env("PEARL_VERIFY", "1");
    SweepOptions so;
    so.baseSeed = 100;
    const SweepResult result = SweepRunner(so).run(cfg.jobs);
    ASSERT_TRUE(result.allOk())
        << (result.firstError() ? result.firstError()->error : "unknown");
    const std::vector<RunMetrics> runs = result.metricsOrThrow();
    for (const RunMetrics &m : runs)
        ASSERT_GT(m.deliveredPackets, 0u);

    if (update) {
        writeGolden(cfg, runs);
        std::cout << "[golden] updated " << goldenPath(cfg.name) << "\n";
    } else {
        compareGolden(cfg, runs);
    }
}

/** The electrical-baseline row: the default 4x4 CMESH driven through
 *  the same sweep machinery.  This is the reference fabric of every
 *  paper figure, and since PR 10 it shares the parallel stepper, so
 *  its goldens also anchor the parallel-vs-serial identity tests in
 *  test_parstep. */
GoldenConfig
cmeshConfig(const traffic::BenchmarkSuite &suite)
{
    GoldenConfig cfg;
    cfg.name = "cmesh";
    for (const auto &pair : goldenPairs(suite)) {
        RunSpec job;
        job.configName = cfg.name;
        job.pair = pair;
        job.options = goldenOptions();
        job.fabric = RunSpec::Fabric::Cmesh;
        cfg.jobs.push_back(std::move(job));
    }
    return cfg;
}

TEST(GoldenMetrics, CmeshRowsMatchCheckedInResults)
{
    const bool update = pearl::envU64("PEARL_UPDATE_GOLDEN", 0) != 0;

    traffic::BenchmarkSuite suite;
    const GoldenConfig cfg = cmeshConfig(suite);
    SCOPED_TRACE("config " + cfg.name);
    SweepOptions so;
    so.baseSeed = 100;
    const SweepResult result = SweepRunner(so).run(cfg.jobs);
    ASSERT_TRUE(result.allOk())
        << (result.firstError() ? result.firstError()->error : "unknown");
    const std::vector<RunMetrics> runs = result.metricsOrThrow();
    for (const RunMetrics &m : runs)
        ASSERT_GT(m.deliveredPackets, 0u);

    if (update) {
        writeGolden(cfg, runs);
        std::cout << "[golden] updated " << goldenPath(cfg.name) << "\n";
    } else {
        compareGolden(cfg, runs);
    }
}

} // namespace
} // namespace metrics
} // namespace pearl
