/**
 * @file
 * Tests for the synthetic traffic substrate: profiles, the benchmark
 * suite splits, the demand generator and the global phase process.
 */

#include <gtest/gtest.h>

#include <set>

#include "traffic/generator.hpp"
#include "traffic/suite.hpp"

namespace pearl {
namespace traffic {
namespace {

TEST(Profile, OnFraction)
{
    BenchmarkProfile p;
    p.pOnToOff = 0.01;
    p.pOffToOn = 0.03;
    EXPECT_NEAR(p.onFraction(), 0.75, 1e-12);
    p.pOnToOff = 0.0;
    p.pOffToOn = 0.0;
    EXPECT_DOUBLE_EQ(p.onFraction(), 1.0);
}

TEST(Profile, MeanAccessRate)
{
    BenchmarkProfile p;
    p.pOnToOff = 0.01;
    p.pOffToOn = 0.01; // 50% on
    p.accessRateOn = 0.2;
    p.accessRateOff = 0.0;
    EXPECT_NEAR(p.meanAccessRate(), 0.1, 1e-12);
}

TEST(Suite, TwelvePlusTwelveProfiles)
{
    BenchmarkSuite suite;
    EXPECT_EQ(suite.cpuBenchmarks().size(), 12u);
    EXPECT_EQ(suite.gpuBenchmarks().size(), 12u);
    for (const auto &p : suite.cpuBenchmarks())
        EXPECT_EQ(p.coreType, sim::CoreType::CPU);
    for (const auto &p : suite.gpuBenchmarks())
        EXPECT_EQ(p.coreType, sim::CoreType::GPU);
}

TEST(Suite, TableIVTestBenchmarks)
{
    // The test benchmarks are exactly the ones Table IV names.
    BenchmarkSuite suite;
    EXPECT_EQ(suite.find("FA").name, "Fluid Animate");
    EXPECT_EQ(suite.find("fmm").name, "Fast Multipole Method");
    EXPECT_EQ(suite.find("Rad").name, "Radiosity");
    EXPECT_EQ(suite.find("x264").name, "x264");
    EXPECT_EQ(suite.find("DCT").name, "Discrete Cosine Transforms");
    EXPECT_EQ(suite.find("Dwrt").name, "1-D Haar Wavelet Transform");
    EXPECT_EQ(suite.find("QRS").name, "Quasi Random Sequence");
    EXPECT_EQ(suite.find("Reduc").name, "Reduction");
}

TEST(Suite, SplitSizes)
{
    // 6x6 training, 2x2 validation, 4x4 test (Section IV-A).
    BenchmarkSuite suite;
    EXPECT_EQ(suite.trainingPairs().size(), 36u);
    EXPECT_EQ(suite.validationPairs().size(), 4u);
    EXPECT_EQ(suite.testPairs().size(), 16u);
}

TEST(Suite, SplitsAreDisjoint)
{
    BenchmarkSuite suite;
    std::set<std::string> train, val, test;
    for (const auto &p : suite.trainingPairs()) {
        train.insert(p.cpu.abbrev);
        train.insert(p.gpu.abbrev);
    }
    for (const auto &p : suite.validationPairs()) {
        val.insert(p.cpu.abbrev);
        val.insert(p.gpu.abbrev);
    }
    for (const auto &p : suite.testPairs()) {
        test.insert(p.cpu.abbrev);
        test.insert(p.gpu.abbrev);
    }
    for (const auto &b : test) {
        EXPECT_EQ(train.count(b), 0u) << b;
        EXPECT_EQ(val.count(b), 0u) << b;
    }
    for (const auto &b : val)
        EXPECT_EQ(train.count(b), 0u) << b;
}

TEST(Suite, PairLabels)
{
    BenchmarkSuite suite;
    BenchmarkPair pair{suite.find("FA"), suite.find("DCT")};
    EXPECT_EQ(pair.label(), "FA+DCT");
}

TEST(Generator, DeterministicWithSeed)
{
    BenchmarkSuite suite;
    const auto prof = suite.find("FA");
    CoreDemandGenerator a(prof, 5, Rng(123));
    CoreDemandGenerator b(prof, 5, Rng(123));
    for (int i = 0; i < 2000; ++i) {
        auto ra = a.tick();
        auto rb = b.tick();
        ASSERT_EQ(ra.has_value(), rb.has_value());
        if (ra) {
            EXPECT_EQ(ra->lineAddr, rb->lineAddr);
            EXPECT_EQ(ra->write, rb->write);
            EXPECT_EQ(ra->instr, rb->instr);
        }
    }
}

TEST(Generator, RateMatchesProfile)
{
    BenchmarkProfile p;
    p.coreType = sim::CoreType::CPU;
    p.accessRateOn = 0.25;
    p.accessRateOff = 0.25; // phase-independent
    p.instrFraction = 0.0;
    CoreDemandGenerator gen(p, 0, Rng(9));
    int issued = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        issued += gen.tick().has_value();
    EXPECT_NEAR(static_cast<double>(issued) / n, 0.25, 0.02);
}

TEST(Generator, AddressesStayInRegions)
{
    BenchmarkSuite suite;
    auto prof = suite.find("DCT");
    prof.accessRateOn = 1.0;
    prof.accessRateOff = 1.0;
    CoreDemandGenerator gen(prof, 33, Rng(4));
    const std::uint64_t priv = AddressSpace::privateBase(33);
    const std::uint64_t shared = AddressSpace::sharedBase(sim::CoreType::GPU);
    for (int i = 0; i < 5000; ++i) {
        auto acc = gen.tick();
        ASSERT_TRUE(acc.has_value());
        const bool in_priv =
            acc->lineAddr >= priv &&
            acc->lineAddr < priv + prof.workingSetLines + (1ULL << 29);
        const bool in_shared =
            acc->lineAddr >= shared &&
            acc->lineAddr < shared + AddressSpace::kSharedLines;
        EXPECT_TRUE(in_priv || in_shared) << acc->lineAddr;
    }
}

TEST(Generator, StreamingReusesLines)
{
    // Eight consecutive stream accesses land in the same cache line.
    BenchmarkProfile p;
    p.coreType = sim::CoreType::CPU;
    p.accessRateOn = 1.0;
    p.accessRateOff = 1.0;
    p.streamFraction = 1.0;
    p.instrFraction = 0.0;
    p.writeFraction = 0.0;
    p.sharedFraction = 0.0;
    CoreDemandGenerator gen(p, 0, Rng(6));
    std::set<std::uint64_t> lines;
    const int n = 800;
    for (int i = 0; i < n; ++i)
        lines.insert(gen.tick()->lineAddr);
    // ~n/8 distinct lines.
    EXPECT_NEAR(static_cast<double>(lines.size()), n / 8.0, 4.0);
}

TEST(Generator, InstrFractionRespected)
{
    BenchmarkProfile p;
    p.coreType = sim::CoreType::CPU;
    p.accessRateOn = 1.0;
    p.accessRateOff = 1.0;
    p.instrFraction = 0.4;
    CoreDemandGenerator gen(p, 0, Rng(10));
    int instr = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        instr += gen.tick()->instr;
    EXPECT_NEAR(static_cast<double>(instr) / n, 0.4, 0.02);
}

TEST(Generator, InstructionFetchesNeverWrite)
{
    BenchmarkProfile p;
    p.coreType = sim::CoreType::CPU;
    p.accessRateOn = 1.0;
    p.accessRateOff = 1.0;
    p.instrFraction = 0.5;
    p.writeFraction = 1.0;
    CoreDemandGenerator gen(p, 0, Rng(12));
    for (int i = 0; i < 5000; ++i) {
        auto acc = gen.tick();
        if (acc->instr) {
            EXPECT_FALSE(acc->write);
        }
    }
}

TEST(GlobalPhase, LongRunOnFraction)
{
    GlobalPhase phase(0.001, 0.003, Rng(77)); // expect 75% on
    int on = 0;
    const int n = 400000;
    for (int i = 0; i < n; ++i) {
        phase.tick();
        on += phase.on();
    }
    EXPECT_NEAR(static_cast<double>(on) / n, 0.75, 0.05);
}

TEST(GlobalPhase, SharedPhaseSynchronisesCores)
{
    BenchmarkProfile p;
    p.coreType = sim::CoreType::GPU;
    p.accessRateOn = 1.0;
    p.accessRateOff = 0.0;
    GlobalPhase phase(0.01, 0.01, Rng(3));
    CoreDemandGenerator a(p, 0, Rng(1), &phase);
    CoreDemandGenerator b(p, 1, Rng(2), &phase);
    for (int i = 0; i < 5000; ++i) {
        phase.tick();
        const bool ia = a.tick().has_value();
        const bool ib = b.tick().has_value();
        // With rate 1/0, issuance equals the shared phase for both.
        EXPECT_EQ(ia, phase.on());
        EXPECT_EQ(ib, phase.on());
    }
}

TEST(Suite, FindUnknownAborts)
{
    BenchmarkSuite suite;
    EXPECT_EXIT(suite.find("nope"), ::testing::ExitedWithCode(1),
                "unknown benchmark");
}

} // namespace
} // namespace traffic
} // namespace pearl
