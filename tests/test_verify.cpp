/**
 * @file
 * Verification plane: differential harness (RefNetwork vs PearlNetwork),
 * runtime invariant checker, and the deterministic config fuzzer.
 *
 * The fuzz campaign is budgeted through environment knobs so CI can run
 * it time-boxed without editing the test:
 *   PEARL_FUZZ_CASES    cases to attempt (default 200)
 *   PEARL_FUZZ_SECONDS  wall-clock budget, 0 = unlimited (default 0)
 *   PEARL_FUZZ_SEED     campaign base seed (default 0xF0CC)
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "common/env.hpp"
#include "core/network.hpp"
#include "core/router.hpp"
#include "core/system.hpp"
#include "core/topology.hpp"
#include "core/validate.hpp"
#include "metrics/sweep.hpp"
#include "ml/guarded_policy.hpp"
#include "photonic/laser.hpp"
#include "photonic/power_model.hpp"
#include "traffic/suite.hpp"
#include "verify/diff.hpp"
#include "verify/fuzzer.hpp"
#include "verify/invariants.hpp"
#include "verify/ref_network.hpp"

namespace pearl {
namespace verify {
namespace {

using sim::CoreType;
using sim::Cycle;

/** Small hand-written config the explicit differential cases share. */
core::PearlConfig
smallConfig()
{
    core::PearlConfig cfg;
    cfg.numClusters = 3;
    cfg.l3Node = 3;
    cfg.l3WaveguideGroup = 2;
    cfg.cpuInjectSlots = 8;
    cfg.gpuInjectSlots = 8;
    cfg.rxSlotsPerClass = 8;
    cfg.reservationWindow = 60;
    cfg.windowOffsetPerRouter = 7;
    cfg.laserTurnOnCycles = 3;
    return cfg;
}

DiffCase
smallCase(core::PearlConfig cfg)
{
    DiffCase d;
    d.cfg = cfg;
    d.cycles = 900;
    d.trafficSeed = 0x5EED;
    d.cpuRate = 0.10;
    d.gpuRate = 0.08;
    d.makePolicy = [] {
        return std::make_unique<core::ReactivePolicy>();
    };
    return d;
}

// Differential harness -----------------------------------------------------

TEST(RefDiff, HealthyFabricReactivePolicy)
{
    const DiffResult r = runDiff(smallCase(smallConfig()));
    EXPECT_TRUE(r.ok()) << "cycle " << r.cycle << ": " << r.description;
    EXPECT_GT(r.deliveredPackets, 0u);
}

TEST(RefDiff, FaultPlaneWithRetransmissions)
{
    core::PearlConfig cfg = smallConfig();
    cfg.faults.enabled = true;
    cfg.faults.seed = 0xFA11;
    cfg.faults.bankMtbfCycles = 400.0;
    cfg.faults.bankMttrCycles = 250.0;
    cfg.faults.baseBer = 1e-3;
    cfg.faults.reservationDropRate = 0.01;
    cfg.ackTimeoutCycles = 12;
    cfg.retryLimit = 3;
    cfg.retxBackoffBase = 4;
    cfg.retxBackoffMax = 32;
    ASSERT_TRUE(core::validate(cfg));

    DiffCase d = smallCase(cfg);
    d.cycles = 1500;
    const DiffResult r = runDiff(d);
    EXPECT_TRUE(r.ok()) << "cycle " << r.cycle << ": " << r.description;
    EXPECT_GT(r.deliveredPackets, 0u);
}

TEST(RefDiff, GuardedMlPolicy)
{
    DiffCase d = smallCase(smallConfig());
    d.makePolicy = [] {
        ml::GuardrailConfig guard;
        guard.errorWindow = 2;
        guard.enterError = 0.50;
        guard.exitError = 0.20;
        guard.enterStreak = 1;
        guard.exitStreak = 2;
        return std::make_unique<ml::GuardedPolicy>(
            &fuzzModel(), ml::MlPolicyConfig{}, guard);
    };
    const DiffResult r = runDiff(d);
    EXPECT_TRUE(r.ok()) << "cycle " << r.cycle << ": " << r.description;
}

/** The smallest grouped express chip: 4 clusters in two groups of 2,
 *  one express slot per group so inter-group packets contend. */
core::PearlConfig
groupedConfig()
{
    core::PearlConfig cfg = smallConfig();
    cfg.numClusters = 4;
    cfg.l3Node = 4;
    cfg.reservationGroupSize = 2;
    cfg.resExpressSlots = 1;
    cfg.expressReservationCycles = 3;
    cfg.expressResLaserW = 0.0006;
    return cfg;
}

TEST(RefDiff, GroupedExpressMatchesReferenceClassSplitDba)
{
    // The default DBA mode (PaperLadder) splits each group's express
    // pool per traffic class; the reference mirrors the split inline.
    core::PearlConfig cfg = groupedConfig();
    cfg.resExpressSlots = 2;
    ASSERT_TRUE(core::validate(cfg));
    const DiffResult r = runDiff(smallCase(cfg));
    EXPECT_TRUE(r.ok()) << "cycle " << r.cycle << ": " << r.description;
    EXPECT_GT(r.deliveredPackets, 0u);
}

TEST(RefDiff, GroupedExpressMatchesReferenceFcfsSharedPool)
{
    core::PearlConfig cfg = groupedConfig();
    ASSERT_TRUE(core::validate(cfg));
    DiffCase d = smallCase(cfg);
    d.dba.mode = core::DbaConfig::Mode::Fcfs;
    const DiffResult r = runDiff(d);
    EXPECT_TRUE(r.ok()) << "cycle " << r.cycle << ": " << r.description;
    EXPECT_GT(r.deliveredPackets, 0u);
}

TEST(RefDiff, GroupedExpressWithFaultCappedPools)
{
    // Laser-bank failures shrink a group's express cap cycle by cycle;
    // both simulators must agree on caps, grants and energy bit for
    // bit while the invariant checker audits slot conservation.
    core::PearlConfig cfg = groupedConfig();
    cfg.resExpressSlots = 2;
    cfg.faults.enabled = true;
    cfg.faults.seed = 0xFA22;
    cfg.faults.bankMtbfCycles = 300.0;
    cfg.faults.bankMttrCycles = 200.0;
    cfg.faults.reservationDropRate = 0.01;
    cfg.ackTimeoutCycles = 12;
    cfg.retryLimit = 3;
    cfg.retxBackoffBase = 4;
    cfg.retxBackoffMax = 32;
    ASSERT_TRUE(core::validate(cfg));

    DiffCase d = smallCase(cfg);
    d.cycles = 1500;
    const DiffResult r = runDiff(d);
    EXPECT_TRUE(r.ok()) << "cycle " << r.cycle << ": " << r.description;
    EXPECT_GT(r.deliveredPackets, 0u);
}

TEST(RefDiff, SingleGroupChipRunsUngrouped)
{
    // reservationGroupSize == numClusters means one group spanning the
    // chip: grouped() is false, no express plane on either simulator —
    // the scale-out plane's backward-compatibility contract (the
    // golden-metrics suite pins the byte-identity half at 16 clusters).
    core::PearlConfig cfg = smallConfig();
    cfg.reservationGroupSize = cfg.numClusters;
    ASSERT_TRUE(core::validate(cfg));
    EXPECT_FALSE(cfg.grouped());
    const DiffResult r = runDiff(smallCase(cfg));
    EXPECT_TRUE(r.ok()) << "cycle " << r.cycle << ": " << r.description;
}

TEST(RefDiff, DetectsSeededDivergence)
{
    // Self-test of the comparator: run the optimized side with one more
    // eject slot per cycle than the reference and the ejection schedules
    // must visibly diverge — a harness that can't see a planted bug
    // can't certify the absence of real ones.
    DiffCase d = smallCase(smallConfig());
    core::PearlConfig skewed = d.cfg;
    skewed.ejectFlitsPerCycle = 1; // reference still runs 4
    const photonic::PowerModel power{};
    auto pearl_policy = d.makePolicy();
    auto ref_policy = d.makePolicy();
    core::PearlNetwork pearl(skewed, power, d.dba, pearl_policy.get());
    RefNetwork ref(d.cfg, power, d.dba, ref_policy.get());
    TrafficGen traffic(d.trafficSeed, d.cpuRate, d.gpuRate,
                       d.cfg.numNodes());
    bool diverged = false;
    for (Cycle i = 0; i < 400 && !diverged; ++i) {
        for (const sim::Packet &pkt : traffic.cycleTraffic(pearl.cycle())) {
            pearl.inject(pkt);
            ref.inject(pkt);
        }
        pearl.step();
        ref.step();
        diverged = pearl.stats().deliveredPackets() !=
                       ref.stats().deliveredPackets() ||
                   pearl.delivered().size() != ref.delivered().size();
        pearl.delivered().clear();
        ref.delivered().clear();
    }
    EXPECT_TRUE(diverged);
}

// Idle fast-forward vs the reference simulator (no fast path) --------------

/** RAII override of PEARL_FAST_FORWARD. */
class FastForwardEnv
{
  public:
    explicit FastForwardEnv(const char *value)
    {
        const char *old = std::getenv("PEARL_FAST_FORWARD");
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        ::setenv("PEARL_FAST_FORWARD", value, 1);
    }
    ~FastForwardEnv()
    {
        if (had_)
            ::setenv("PEARL_FAST_FORWARD", old_.c_str(), 1);
        else
            ::unsetenv("PEARL_FAST_FORWARD");
    }

  private:
    bool had_ = false;
    std::string old_;
};

traffic::BenchmarkProfile
quietProfile(CoreType t)
{
    traffic::BenchmarkProfile p;
    p.name = "quiet";
    p.abbrev = "QU";
    p.coreType = t;
    p.accessRateOn = 0.0;
    p.accessRateOff = 0.0;
    return p;
}

struct QuietOutcome
{
    Cycle cycle = 0;
    Cycle fastForwarded = 0;
    std::uint64_t delivered = 0;
    std::uint64_t laserCycles = 0;
    std::uint64_t upSwitches = 0;
    std::uint64_t downSwitches = 0;
    double residencyWl8 = 0.0;
    double laserEnergyJ = 0.0;
    double trimmingEnergyJ = 0.0;
};

QuietOutcome
runQuietSystem(sim::Network &net, core::HeteroSystem &system, Cycle cycles)
{
    system.run(cycles);
    QuietOutcome out;
    out.cycle = net.cycle();
    out.fastForwarded = system.fastForwardedCycles();
    out.delivered = net.stats().deliveredPackets();
    return out;
}

QuietOutcome
runQuietPearl(Cycle cycles, core::PowerPolicy &policy)
{
    FastForwardEnv env("1");
    const core::PearlConfig cfg;
    const photonic::PowerModel power;
    core::PearlNetwork net(cfg, power, core::DbaConfig{}, &policy);
    traffic::BenchmarkPair pair{quietProfile(CoreType::CPU),
                                quietProfile(CoreType::GPU)};
    core::HeteroSystem system(
        net, pair, core::SystemConfig{},
        [&net](int n) { return &net.telemetryOf(n); });
    QuietOutcome out = runQuietSystem(net, system, cycles);
    for (int r = 0; r < net.numNodes(); ++r) {
        const auto &laser = net.router(r).laser();
        out.laserCycles += laser.cycles();
        out.upSwitches += laser.upSwitches();
        out.downSwitches += laser.downSwitches();
    }
    out.residencyWl8 = net.residency(photonic::WlState::WL8);
    out.laserEnergyJ = net.laserEnergyJ();
    out.trimmingEnergyJ = net.trimmingEnergyJ();
    return out;
}

QuietOutcome
runQuietRef(Cycle cycles, core::PowerPolicy &policy)
{
    // RefNetwork keeps the interface's default advanceIdle (0), so the
    // system steps it through every single cycle — the honest baseline
    // fastForwardQuiescent must be indistinguishable from.
    FastForwardEnv env("1");
    const core::PearlConfig cfg;
    const photonic::PowerModel power;
    RefNetwork net(cfg, power, core::DbaConfig{}, &policy);
    traffic::BenchmarkPair pair{quietProfile(CoreType::CPU),
                                quietProfile(CoreType::GPU)};
    core::HeteroSystem system(
        net, pair, core::SystemConfig{},
        [&net](int n) { return &net.telemetryOf(n); });
    QuietOutcome out = runQuietSystem(net, system, cycles);
    for (int r = 0; r < net.numNodes(); ++r) {
        out.laserCycles += net.laserCycles(r);
        out.upSwitches += net.upSwitches(r);
        out.downSwitches += net.downSwitches(r);
    }
    out.residencyWl8 = net.residency(photonic::WlState::WL8);
    out.laserEnergyJ = net.laserEnergyJ();
    out.trimmingEnergyJ = net.trimmingEnergyJ();
    return out;
}

TEST(RefDiff, FastForwardQuiescentMatchesReferenceStaticPolicy)
{
    core::StaticPolicy ff_policy(photonic::WlState::WL64);
    core::StaticPolicy ref_policy(photonic::WlState::WL64);
    const QuietOutcome ff = runQuietPearl(12000, ff_policy);
    const QuietOutcome ref = runQuietRef(12000, ref_policy);

    EXPECT_GT(ff.fastForwarded, 0u) << "fast path never engaged";
    EXPECT_EQ(ref.fastForwarded, 0u);
    EXPECT_EQ(ff.cycle, ref.cycle);
    EXPECT_EQ(ff.delivered, ref.delivered);
    EXPECT_EQ(ff.laserCycles, ref.laserCycles);
    EXPECT_EQ(ff.upSwitches, ref.upSwitches);
    EXPECT_EQ(ff.downSwitches, ref.downSwitches);
    EXPECT_EQ(ff.residencyWl8, ref.residencyWl8);
    // The jump integrates k cycles as one multiply-add; the reference
    // adds per cycle.  Same integral, different rounding path.
    EXPECT_NEAR(ff.laserEnergyJ, ref.laserEnergyJ,
                1e-9 * ref.laserEnergyJ);
    EXPECT_NEAR(ff.trimmingEnergyJ, ref.trimmingEnergyJ,
                1e-9 * ref.trimmingEnergyJ);
}

TEST(RefDiff, FastForwardQuiescentMatchesReferenceReactivePolicy)
{
    // A reactive policy on a silent fabric walks every laser down to
    // WL8 through window-boundary downswitches — cycles fast-forward
    // must land on exactly, never skip.
    core::ReactivePolicy ff_policy;
    core::ReactivePolicy ref_policy;
    const QuietOutcome ff = runQuietPearl(12000, ff_policy);
    const QuietOutcome ref = runQuietRef(12000, ref_policy);

    EXPECT_GT(ff.fastForwarded, 0u);
    EXPECT_GT(ff.downSwitches, 0u);
    EXPECT_EQ(ff.downSwitches, ref.downSwitches);
    EXPECT_EQ(ff.upSwitches, ref.upSwitches);
    EXPECT_EQ(ff.laserCycles, ref.laserCycles);
    EXPECT_GT(ff.residencyWl8, 0.9);
    EXPECT_EQ(ff.residencyWl8, ref.residencyWl8);
    EXPECT_NEAR(ff.laserEnergyJ, ref.laserEnergyJ,
                1e-9 * ref.laserEnergyJ);
}

// Runtime invariant checker ------------------------------------------------

TEST(Invariants, AuditsEveryStepSilently)
{
    const core::PearlConfig cfg = smallConfig();
    const photonic::PowerModel power;
    core::ReactivePolicy policy;
    core::PearlNetwork net(cfg, power, core::DbaConfig{}, &policy);
    Invariants inv;
    net.setAuditor(&inv);
    TrafficGen traffic(7, 0.15, 0.10, cfg.numNodes());
    for (Cycle i = 0; i < 600; ++i) {
        for (const sim::Packet &pkt : traffic.cycleTraffic(net.cycle()))
            net.inject(pkt);
        ASSERT_NO_THROW(net.step());
        net.delivered().clear();
    }
    EXPECT_EQ(inv.stepsAudited(), 600u);
}

TEST(Invariants, MaxScaleChipRunsInvariantClean)
{
    // The acceptance ceiling of the scale-out plane: a 128-cluster chip
    // (8 waveguide groups of 16) running the full system with every
    // step audited — express-slot legality, packet conservation, energy
    // monotonicity — for a bounded cycle budget.
    core::TopologySpec topo;
    topo.clusters = 128;
    const core::PearlConfig cfg = topo.pearlConfig();
    ASSERT_TRUE(cfg.grouped());
    const photonic::PowerModel power;
    core::StaticPolicy policy(photonic::WlState::WL64);
    core::PearlNetwork net(cfg, power, core::DbaConfig{}, &policy);
    Invariants inv;
    net.setAuditor(&inv);

    traffic::BenchmarkSuite suite;
    traffic::BenchmarkPair pair{suite.find("FA"), suite.find("DCT")};
    core::HeteroSystem system(
        net, pair, core::makeSystemConfig(topo),
        [&net](int n) { return &net.telemetryOf(n); });

    // The CI verify job exports PEARL_THREADS=4 so this max-scale
    // audit also covers the sharded step path under ASan; the default
    // (1) keeps it serial.
    std::unique_ptr<sim::WorkerPool> pool;
    const unsigned lanes = sim::resolveStepThreads(0);
    if (lanes > 1) {
        pool = std::make_unique<sim::WorkerPool>(lanes);
        net.setWorkerPool(pool.get());
        system.setWorkerPool(pool.get());
    }
    ASSERT_NO_THROW(system.run(3000));

    EXPECT_EQ(inv.stepsAudited(), 3000u);
    EXPECT_GT(net.stats().deliveredPackets(), 100u);
    // Inter-group traffic actually exercised the express plane.
    EXPECT_GT(net.expressAcquired(), 0u);
}

TEST(Invariants, ScaleOut64ClusterSmoke)
{
    // The CI scale-out smoke (scripts/check.sh verify runs this under
    // ASan with PEARL_VERIFY=1): a 64-cluster chip — 4 waveguide groups
    // of 16 — through metrics::runPearl with a pinned seed and a
    // bounded cycle budget, so the whole derived-config path
    // (TopologySpec -> PearlConfig/SystemConfig -> Runner) is audited,
    // not just a hand-assembled network.
    core::TopologySpec topo;
    topo.clusters = 64;
    ASSERT_TRUE(topo.pearlConfig().grouped());

    traffic::BenchmarkSuite suite;
    metrics::RunSpec spec;
    spec.configName = "scale64-smoke";
    spec.pair = {suite.find("FA"), suite.find("DCT")};
    spec.options.system = core::makeSystemConfig(topo);
    spec.pearl = topo.pearlConfig();
    spec.options.warmupCycles = 500;
    spec.options.measureCycles = 2000;
    spec.makePolicy = [] {
        return std::make_unique<core::ReactivePolicy>(
            core::ReactiveThresholds{});
    };

    const metrics::RunMetrics m = metrics::executeSpec(spec, /*seed=*/7);
    EXPECT_GT(m.deliveredPackets, 100u);
    EXPECT_GT(m.throughputFlitsPerCycle, 0.0);
}

TEST(Invariants, ConservationHoldsOnBalancedCounts)
{
    core::AuditCounts c;
    c.injected = 10;
    c.delivered = 4;
    c.buffered = 3;
    c.inFlight = 3;
    EXPECT_FALSE(checkConservation(c, false).has_value());

    // Fault plane: 2 of the 3 in-flight packets still await their fault
    // check (their source copies are among the 3 outstanding); the third
    // source copy is a reservation-dropped packet in limbo awaiting its
    // ACK timeout.  The retransmission count never enters the balance:
    // each reinjection consumed one queued loss.
    c.retransmitted = 2;
    c.inFlightUnchecked = 2;
    c.outstanding = 3;
    c.dropped = 1;
    c.buffered = 2;
    c.delivered = 3;
    EXPECT_FALSE(checkConservation(c, true).has_value());
}

TEST(Invariants, ConservationCatchesUndercountedDelivery)
{
    core::AuditCounts c;
    c.injected = 10;
    c.delivered = 4;
    c.buffered = 3;
    c.inFlight = 3;
    --c.delivered; // the planted bug
    const auto violation = checkConservation(c, false);
    ASSERT_TRUE(violation.has_value());
    EXPECT_NE(violation->find("conservation"), std::string::npos);
}

TEST(Invariants, ConservationCatchesOutstandingUnderflow)
{
    core::AuditCounts c;
    c.injected = 1;
    c.inFlight = 1;
    c.inFlightUnchecked = 1;
    c.outstanding = 0; // fewer source copies than unchecked instances
    EXPECT_TRUE(checkConservation(c, true).has_value());
}

TEST(Invariants, RuntimeChecksEnabledFollowsEnv)
{
    ::setenv("PEARL_VERIFY", "1", 1);
    EXPECT_TRUE(runtimeChecksEnabled());
    ::setenv("PEARL_VERIFY", "0", 1);
    EXPECT_FALSE(runtimeChecksEnabled());
    ::unsetenv("PEARL_VERIFY");
#ifdef NDEBUG
    EXPECT_FALSE(runtimeChecksEnabled());
#else
    EXPECT_TRUE(runtimeChecksEnabled());
#endif
}

// Fuzzer --------------------------------------------------------------------

TEST(Fuzzer, GeneratedConfigsAlwaysValidate)
{
    for (std::uint64_t i = 0; i < 300; ++i) {
        const FuzzCase c = generateCase(0xABCD, i);
        const auto cfg = toPearlConfig(c);
        const auto v = core::validate(cfg);
        EXPECT_TRUE(v.hasValue())
            << "case " << i << ": " << v.error().message << "\n"
            << describeCase(c);
        EXPECT_TRUE(core::validate(toDbaConfig(c)).hasValue());
    }
}

TEST(Fuzzer, CasesAreDeterministicInSeedAndIndex)
{
    const FuzzCase a = generateCase(42, 7);
    const FuzzCase b = generateCase(42, 7);
    EXPECT_EQ(describeCase(a), describeCase(b));
    const FuzzCase other = generateCase(42, 8);
    EXPECT_NE(describeCase(a), describeCase(other));
}

TEST(Fuzzer, ReproducerRoundTrips)
{
    const FuzzCase c = generateCase(0xBEEF, 3);
    std::stringstream file;
    file << "# pearl fuzz reproducer\n" << describeCase(c);
    FuzzCase parsed;
    ASSERT_TRUE(parseReproducer(file, parsed));
    EXPECT_EQ(describeCase(parsed), describeCase(c));

    std::stringstream truncated("seed=1\nnumClusters=2\n");
    FuzzCase incomplete;
    EXPECT_FALSE(parseReproducer(truncated, incomplete));
}

TEST(Fuzzer, ShrinkReachesFixpointOnSyntheticPredicate)
{
    FuzzCase start = generateCase(1, 0);
    start.cycles = 600;
    start.cpuRate = 0.1;
    start.gpuRate = 0.05;
    start.faultsEnabled = true;
    start.baseBer = 1e-3;
    start.reservationDropRate = 0.01;
    start.bankMtbfCycles = 500.0;
    start.numClusters = 4;
    start.policy = static_cast<int>(PolicyKind::Guarded);

    const auto predicate = [](const FuzzCase &c) {
        return c.cycles >= 64 && c.cpuRate > 0.0;
    };
    ASSERT_TRUE(predicate(start));
    const FuzzCase minimal = shrinkCase(start, predicate);
    EXPECT_TRUE(predicate(minimal));
    EXPECT_EQ(minimal.cycles, 75u); // 600 -> 300 -> 150 -> 75 (37 < 64)
    EXPECT_FALSE(minimal.faultsEnabled);
    EXPECT_EQ(minimal.baseBer, 0.0);
    EXPECT_EQ(minimal.reservationDropRate, 0.0);
    EXPECT_EQ(minimal.bankMtbfCycles, 0.0);
    EXPECT_EQ(minimal.gpuRate, 0.0);
    EXPECT_EQ(minimal.numClusters, 2);
    EXPECT_EQ(minimal.policy, static_cast<int>(PolicyKind::Static));
}

/** The injected-bug drill's instrumented run: execute the optimized
 *  simulator alone, under-report the delivered count by one, and ask
 *  the conservation check whether it notices. */
bool
buggedRunTripsConservation(const FuzzCase &c)
{
    const DiffCase d = toDiffCase(c);
    const photonic::PowerModel power{};
    const auto policy = d.makePolicy();
    core::PearlNetwork net(d.cfg, power, d.dba, policy.get());
    TrafficGen traffic(d.trafficSeed, d.cpuRate, d.gpuRate,
                       d.cfg.numNodes());
    for (Cycle i = 0; i < d.cycles; ++i) {
        for (const sim::Packet &pkt : traffic.cycleTraffic(net.cycle()))
            net.inject(pkt);
        net.step();
        net.delivered().clear();
        core::AuditCounts counts = net.auditCounts();
        if (counts.delivered > 0)
            --counts.delivered; // the planted conservation bug
        if (checkConservation(counts, net.faults().enabled()))
            return true;
    }
    return false;
}

TEST(Fuzzer, InjectedConservationBugIsCaughtShrunkAndPersisted)
{
    // Find a fuzzed case where the planted undercount is observable
    // (any case that delivers at least one packet qualifies).
    FuzzCase failing;
    bool found = false;
    for (std::uint64_t i = 0; i < 40 && !found; ++i) {
        const FuzzCase c = generateCase(0xB06, i);
        if (buggedRunTripsConservation(c)) {
            failing = c;
            found = true;
        }
    }
    ASSERT_TRUE(found) << "no fuzzed case delivered any packet";

    const FuzzCase minimal =
        shrinkCase(failing, buggedRunTripsConservation);
    EXPECT_TRUE(buggedRunTripsConservation(minimal));
    EXPECT_LE(minimal.cycles, failing.cycles);

    // The minimal reproducer round-trips through disk and still fails.
    const std::string path =
        ::testing::TempDir() + "/pearl_bug_reproducer.txt";
    std::remove(path.c_str());
    writeReproducer(minimal, "delivered undercounted by one", path);
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    FuzzCase replayed;
    ASSERT_TRUE(parseReproducer(in, replayed));
    EXPECT_EQ(describeCase(replayed), describeCase(minimal));
    EXPECT_TRUE(buggedRunTripsConservation(replayed));
    std::remove(path.c_str());
}

TEST(Fuzzer, CampaignFindsNoDivergence)
{
    // The acceptance gate: seed-pinned fuzzed configs across policies,
    // DBA modes and fault schedules, reference vs optimized, with the
    // invariant checker riding on the optimized side.  Budgets come
    // from the environment so CI can time-box the smoke run.
    FuzzOptions opts;
    opts.baseSeed = envU64("PEARL_FUZZ_SEED", 0xF0CC);
    opts.maxCases = envU64("PEARL_FUZZ_CASES", 200);
    opts.maxSeconds = envDouble("PEARL_FUZZ_SECONDS", 0.0);
    opts.reproducerPath =
        ::testing::TempDir() + "/pearl_fuzz_reproducer.txt";

    const FuzzReport report = runFuzz(opts);
    EXPECT_FALSE(report.failed)
        << report.description << "\nminimal reproducer ("
        << opts.reproducerPath << "):\n"
        << describeCase(report.minimal);
    EXPECT_GE(report.casesRun, 1u);
}

} // namespace
} // namespace verify
} // namespace pearl
