/**
 * @file
 * Tests of the guarded ML policy (ml::GuardedPolicy): clamping of insane
 * predictions, fallback on sustained online error, hysteresis recovery,
 * zero-degradation byte-identity against the bare ML policy, and the
 * fallback counters / trace events of a full guarded run.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/sweep.hpp"
#include "ml/features.hpp"
#include "ml/guarded_policy.hpp"
#include "ml/pipeline.hpp"
#include "ml/policy.hpp"
#include "obs/trace.hpp"
#include "traffic/suite.hpp"

namespace pearl {
namespace ml {
namespace {

/**
 * Fit a model that predicts (approximately) `value` for any input:
 * heavy regularisation drives the weights to zero and the unregularised
 * intercept absorbs the label mean.
 */
RidgeRegression
constantModel(double value)
{
    Dataset data;
    for (int i = 0; i < 8; ++i) {
        std::vector<double> x(kNumFeatures, 0.0);
        x[0] = static_cast<double>(i % 2); // non-degenerate feature
        data.add(std::move(x), value);
    }
    RidgeRegression model;
    model.fit(data, 1e9);
    return model;
}

/** One synthetic boundary observation: `injected` packets closed the
 *  window, `beta` is the mean buffer occupancy the fallback sees. */
core::WindowObservation
makeObs(const sim::RouterTelemetry &t, double beta,
        core::PolicyFeedback *fb)
{
    core::WindowObservation obs;
    obs.router = 0;
    obs.telemetry = &t;
    obs.windowCycles = 500;
    obs.betaTotalMean = beta;
    obs.feedback = fb;
    return obs;
}

/** Drive `windows` boundaries with a fixed actual-injection count. */
core::PolicyFeedback
driveWindows(GuardedPolicy &policy, sim::RouterTelemetry &t,
             std::uint64_t injected, double beta, int windows)
{
    core::PolicyFeedback fb;
    for (int i = 0; i < windows; ++i) {
        t.reset();
        t.packetsInjected = injected;
        fb = {};
        policy.nextState(makeObs(t, beta, &fb));
    }
    return fb;
}

TEST(Guardrails, MatchesBareMlWhileAccurate)
{
    // Prediction == actual: the guard observes zero error and the chosen
    // states must equal the bare ML policy's, window for window.
    const RidgeRegression model = constantModel(200.0);
    MlPowerPolicy bare(&model);
    GuardedPolicy guarded(&model);

    sim::RouterTelemetry t;
    for (int i = 0; i < 40; ++i) {
        t.reset();
        t.packetsInjected = 200;
        core::PolicyFeedback fb;
        const core::WindowObservation obs = makeObs(t, 0.5, &fb);
        const photonic::WlState g = guarded.nextState(obs);
        core::WindowObservation bare_obs = obs;
        bare_obs.feedback = nullptr;
        EXPECT_EQ(g, bare.nextState(bare_obs)) << "window " << i;
        EXPECT_TRUE(fb.guarded);
        EXPECT_FALSE(fb.fallbackActive);
        EXPECT_FALSE(fb.clampedPrediction);
    }
    EXPECT_FALSE(guarded.inFallback(0));
}

TEST(Guardrails, SustainedErrorTriggersFallback)
{
    // The model predicts ~0 packets while 2000 arrive every window:
    // normalised error pins at 1.0, and after errorWindow samples +
    // enterStreak bad windows the router must fall back to the reactive
    // policy (which picks WL64 at beta 1.8, where starved ML sat at
    // WL8).
    const RidgeRegression model = constantModel(0.0);
    GuardrailConfig cfg;
    GuardedPolicy guarded(&model, MlPolicyConfig{}, cfg);

    sim::RouterTelemetry t;
    bool entered = false;
    int entry_window = -1;
    photonic::WlState state_after = photonic::WlState::WL64;
    for (int i = 0; i < 40; ++i) {
        t.reset();
        t.packetsInjected = 2000;
        core::PolicyFeedback fb;
        state_after = guarded.nextState(makeObs(t, 1.8, &fb));
        if (fb.enteredFallback) {
            EXPECT_FALSE(entered) << "entered fallback twice";
            entered = true;
            entry_window = i;
        }
    }
    EXPECT_TRUE(entered);
    EXPECT_TRUE(guarded.inFallback(0));
    // Sample warm-up (errorWindow) + the bad streak, give or take the
    // window where the first prediction has no truth yet.
    EXPECT_GE(entry_window, cfg.enterStreak);
    // Under fallback the reactive policy drives: beta 1.8 > upper.
    EXPECT_EQ(state_after, photonic::WlState::WL64);
    EXPECT_NE(guarded.name(), std::string("ml"));
}

TEST(Guardrails, HysteresisRecoversAfterGoodWindows)
{
    const RidgeRegression model = constantModel(300.0);
    GuardrailConfig cfg;
    GuardedPolicy guarded(&model, MlPolicyConfig{}, cfg);
    sim::RouterTelemetry t;

    // Phase 1: the model is totally wrong (predicts 300, sees 9000).
    driveWindows(guarded, t, 9000, 1.5, 40);
    ASSERT_TRUE(guarded.inFallback(0));

    // Phase 2: traffic returns to what the model knows.  The shadow
    // evaluation keeps scoring it, the windowed error drains below
    // exitError and after exitStreak good windows the guard must hand
    // control back to ML.
    bool exited = false;
    for (int i = 0; i < 60 && !exited; ++i) {
        const core::PolicyFeedback fb =
            driveWindows(guarded, t, 300, 0.4, 1);
        exited = fb.exitedFallback;
    }
    EXPECT_TRUE(exited);
    EXPECT_FALSE(guarded.inFallback(0));

    // Back on ML: identical decisions to the bare policy again.
    MlPowerPolicy bare(&model);
    t.reset();
    t.packetsInjected = 300;
    core::PolicyFeedback fb;
    const core::WindowObservation obs = makeObs(t, 0.4, &fb);
    core::WindowObservation bare_obs = obs;
    bare_obs.feedback = nullptr;
    EXPECT_EQ(guarded.nextState(obs), bare.nextState(bare_obs));
    EXPECT_FALSE(fb.fallbackActive);
}

TEST(Guardrails, InsanePredictionIsClamped)
{
    // A model predicting ~1e9 packets per window is insane for any
    // supported fabric; the guard clamps it and recomputes Equation 7
    // from the clamped demand instead of trusting the raw value.
    const RidgeRegression model = constantModel(1e9);
    GuardrailConfig cfg;
    cfg.maxPredictedPackets = 1000.0;
    GuardedPolicy guarded(&model, MlPolicyConfig{}, cfg);

    sim::RouterTelemetry t;
    t.packetsInjected = 100;
    core::PolicyFeedback fb;
    const photonic::WlState s = guarded.nextState(makeObs(t, 0.3, &fb));
    EXPECT_TRUE(fb.clampedPrediction);
    EXPECT_EQ(s, MlPowerPolicy::stateForDemand(1000.0, 500,
                                               MlPolicyConfig{}));
}

TEST(Guardrails, ThresholdValidationRejectsBrokenHysteresis)
{
    const RidgeRegression model = constantModel(10.0);
    GuardrailConfig cfg;
    cfg.exitError = cfg.enterError; // no hysteresis band
    EXPECT_THROW(GuardedPolicy(&model, MlPolicyConfig{}, cfg),
                 ConfigError);

    GuardrailConfig zero_window;
    zero_window.errorWindow = 0;
    EXPECT_FALSE(validate(zero_window));
    EXPECT_FALSE(validate(zero_window).hasValue());
    EXPECT_NE(validate(zero_window).error().message.find("errorWindow"),
              std::string::npos);
}

TEST(Guardrails, FromEnvReadsKnobs)
{
    setenv("PEARL_GUARD_ERROR_WINDOW", "5", 1);
    setenv("PEARL_GUARD_ENTER_ERROR", "0.9", 1);
    setenv("PEARL_GUARD_EXIT_ERROR", "0.2", 1);
    setenv("PEARL_GUARD_ENTER_STREAK", "7", 1);
    setenv("PEARL_GUARD_EXIT_STREAK", "11", 1);
    setenv("PEARL_GUARD_MAX_PREDICTION", "12345", 1);
    const GuardrailConfig cfg = GuardrailConfig::fromEnv();
    unsetenv("PEARL_GUARD_ERROR_WINDOW");
    unsetenv("PEARL_GUARD_ENTER_ERROR");
    unsetenv("PEARL_GUARD_EXIT_ERROR");
    unsetenv("PEARL_GUARD_ENTER_STREAK");
    unsetenv("PEARL_GUARD_EXIT_STREAK");
    unsetenv("PEARL_GUARD_MAX_PREDICTION");
    EXPECT_EQ(cfg.errorWindow, 5);
    EXPECT_DOUBLE_EQ(cfg.enterError, 0.9);
    EXPECT_DOUBLE_EQ(cfg.exitError, 0.2);
    EXPECT_EQ(cfg.enterStreak, 7);
    EXPECT_EQ(cfg.exitStreak, 11);
    EXPECT_DOUBLE_EQ(cfg.maxPredictedPackets, 12345.0);
    EXPECT_TRUE(validate(cfg));
}

// Hysteresis boundaries ----------------------------------------------------

TEST(Guardrails, UnitWindowAndStreaksTripAndRecoverImmediately)
{
    // The degenerate-but-legal hysteresis: error window of one sample,
    // enter/exit streaks of one window.  The guard must trip on the
    // very first scored bad window and hand control back on the very
    // first scored good one — off-by-one bugs in the streak counters or
    // the sample warm-up show up as a one-window delay here.
    const RidgeRegression model = constantModel(0.0);
    GuardrailConfig cfg;
    cfg.errorWindow = 1;
    cfg.enterStreak = 1;
    cfg.exitStreak = 1;
    ASSERT_TRUE(validate(cfg));
    GuardedPolicy guarded(&model, MlPolicyConfig{}, cfg);
    sim::RouterTelemetry t;

    // Window 0: first ever decision — there is no previous prediction
    // to score, so even a wildly wrong window cannot trip the guard.
    core::PolicyFeedback fb = driveWindows(guarded, t, 2000, 1.0, 1);
    EXPECT_FALSE(fb.enteredFallback);
    EXPECT_FALSE(fb.fallbackActive);

    // Window 1: the window-0 prediction (~0) is scored against 2000
    // actual injections — normalised error 1.0, one sample fills the
    // unit error window, one bad window fills the unit streak.
    fb = driveWindows(guarded, t, 2000, 1.0, 1);
    EXPECT_TRUE(fb.enteredFallback);
    EXPECT_TRUE(fb.fallbackActive);
    EXPECT_TRUE(guarded.inFallback(0));

    // Window 2: traffic matches the model again (0 injections); the
    // unit window forgets the bad sample at once and the unit exit
    // streak recovers in the same window.
    fb = driveWindows(guarded, t, 0, 0.1, 1);
    EXPECT_TRUE(fb.exitedFallback);
    EXPECT_FALSE(fb.fallbackActive);
    EXPECT_FALSE(guarded.inFallback(0));

    // And it re-trips just as promptly: no stale streak survives the
    // round trip.
    fb = driveWindows(guarded, t, 2000, 1.0, 1);
    EXPECT_TRUE(fb.enteredFallback);
}

TEST(Guardrails, ClampBoundaryIsExclusive)
{
    // Pin the clamp comparison to "strictly greater": a prediction
    // exactly at maxPredictedPackets passes through untouched, one ULP
    // of headroom less and it clamps.  Extract the model's exact
    // prediction through the decision trace first so the boundary is
    // placed bit-precisely.
    const RidgeRegression model = constantModel(150.0);
    sim::RouterTelemetry t;
    t.packetsInjected = 100;

    MlPowerPolicy bare(&model);
    core::DecisionTrace trace;
    core::WindowObservation probe = makeObs(t, 0.3, nullptr);
    probe.decision = &trace;
    const photonic::WlState bare_state = bare.nextState(probe);
    ASSERT_TRUE(trace.hasPrediction);
    const double pred = trace.predictedPackets;
    ASSERT_GT(pred, 0.0);

    {
        GuardrailConfig cfg;
        cfg.maxPredictedPackets = pred; // boundary: equal, not above
        GuardedPolicy at_edge(&model, MlPolicyConfig{}, cfg);
        core::PolicyFeedback fb;
        const photonic::WlState s =
            at_edge.nextState(makeObs(t, 0.3, &fb));
        EXPECT_FALSE(fb.clampedPrediction);
        EXPECT_EQ(s, bare_state);
    }
    {
        GuardrailConfig cfg;
        cfg.maxPredictedPackets = std::nextafter(pred, 0.0);
        GuardedPolicy below_edge(&model, MlPolicyConfig{}, cfg);
        core::PolicyFeedback fb;
        const photonic::WlState s =
            below_edge.nextState(makeObs(t, 0.3, &fb));
        EXPECT_TRUE(fb.clampedPrediction);
        EXPECT_EQ(s, MlPowerPolicy::stateForDemand(
                         cfg.maxPredictedPackets, 500, MlPolicyConfig{}));
    }
}

TEST(Guardrails, NegativeRawPredictionIsFlooredByMlNotTheGuard)
{
    // The other clamp edge: a model whose raw output is negative.  The
    // ML policy itself floors the prediction at zero demand before the
    // guard ever sees it, so the guard must observe an in-range value
    // (no clampedPrediction) and the state resolves to zero demand.
    const RidgeRegression model = constantModel(-50.0);
    sim::RouterTelemetry t;
    t.packetsInjected = 10;

    MlPowerPolicy bare(&model);
    core::DecisionTrace trace;
    core::WindowObservation probe = makeObs(t, 0.1, nullptr);
    probe.decision = &trace;
    bare.nextState(probe);
    ASSERT_TRUE(trace.hasPrediction);
    EXPECT_EQ(trace.predictedPackets, 0.0);

    GuardedPolicy guarded(&model);
    core::PolicyFeedback fb;
    const photonic::WlState s = guarded.nextState(makeObs(t, 0.1, &fb));
    EXPECT_FALSE(fb.clampedPrediction);
    EXPECT_EQ(s, MlPowerPolicy::stateForDemand(0.0, 500,
                                               MlPolicyConfig{}));
}

// Full-run integration ---------------------------------------------------

/** Tiny deterministic training run shared by the integration tests. */
const PipelineResult &
trainedModel()
{
    static const PipelineResult trained = [] {
        traffic::BenchmarkSuite suite;
        PipelineConfig cfg;
        cfg.reservationWindow = 500;
        cfg.simCycles = 4000;
        cfg.maxTrainPairs = 2;
        cfg.maxValPairs = 1;
        cfg.secondPass = false;
        cfg.lambdaGrid = {0.1, 10.0};
        return TrainingPipeline(suite, cfg).run();
    }();
    return trained;
}

metrics::RunSpec
pearlSpec(const char *config_name,
          std::function<std::unique_ptr<core::PowerPolicy>()> make)
{
    traffic::BenchmarkSuite suite;
    metrics::RunSpec spec;
    spec.configName = config_name;
    spec.pair = {suite.find("Rad"), suite.find("QRS")};
    spec.options.warmupCycles = 400;
    spec.options.measureCycles = 2500;
    spec.pearl.reservationWindow = 500;
    spec.makePolicy = std::move(make);
    return spec;
}

#define EXPECT_SAME_BITS(a, b, what)                                    \
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a),                          \
              std::bit_cast<std::uint64_t>(b))                          \
        << what << " differs: " << (a) << " vs " << (b)

TEST(Guardrails, ZeroDegradationAgainstBareMlRun)
{
    // With the real (weak but sane) trained model and a healthy fabric,
    // the guard must never trip — and then every metric of a guarded
    // run is bit-identical to the bare ML run on the same seed.  This
    // is the "guardrails are free until needed" contract: the guarded
    // rows also match the checked-in `ml` golden, which test_golden
    // already pins to the bare policy.
    const RidgeRegression &model = trainedModel().model;
    const metrics::RunSpec ml_spec = pearlSpec("ml", [&model] {
        return std::make_unique<MlPowerPolicy>(&model);
    });
    const metrics::RunSpec guarded_spec =
        pearlSpec("guarded", [&model] {
            return std::make_unique<GuardedPolicy>(&model);
        });

    const metrics::RunMetrics a = metrics::executeSpec(ml_spec, 100);
    const metrics::RunMetrics b =
        metrics::executeSpec(guarded_spec, 100);

    EXPECT_EQ(b.policyFallbackEntries, 0u);
    EXPECT_EQ(b.policyFallbackExits, 0u);
    EXPECT_EQ(b.policyFallbackWindows, 0u);

    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.deliveredPackets, b.deliveredPackets);
    EXPECT_EQ(a.deliveredFlits, b.deliveredFlits);
    EXPECT_EQ(a.deliveredBits, b.deliveredBits);
    EXPECT_EQ(a.cpuPackets, b.cpuPackets);
    EXPECT_EQ(a.gpuPackets, b.gpuPackets);
    EXPECT_SAME_BITS(a.throughputFlitsPerCycle,
                     b.throughputFlitsPerCycle, "throughput");
    EXPECT_SAME_BITS(a.avgLatencyCycles, b.avgLatencyCycles, "latency");
    EXPECT_SAME_BITS(a.totalEnergyJ, b.totalEnergyJ, "energy");
    EXPECT_SAME_BITS(a.energyPerBitPj, b.energyPerBitPj, "energy/bit");
    EXPECT_SAME_BITS(a.laserPowerW, b.laserPowerW, "laser power");
    for (std::size_t s = 0; s < a.residency.size(); ++s) {
        EXPECT_SAME_BITS(a.residency[s], b.residency[s],
                         "residency[" + std::to_string(s) + "]");
    }
}

TEST(Guardrails, BrokenModelEngagesFallbackAndTraces)
{
    // Fault injection for the guard itself: a model that predicts zero
    // demand under real traffic.  The guarded run must engage the
    // fallback (counters land in RunMetrics through NetworkStats) and
    // emit policy_fallback transition events into the trace.  The run
    // is long enough (12 window boundaries) for the tightened guard
    // (4-sample window, 2-window streak) to fill its error window and
    // trip.
    static const RidgeRegression broken = constantModel(0.0);
    GuardrailConfig tight;
    tight.errorWindow = 4;
    tight.enterStreak = 2;
    tight.exitStreak = 4;
    metrics::RunSpec spec = pearlSpec("broken-ml", [tight] {
        return std::make_unique<GuardedPolicy>(
            &broken, MlPolicyConfig{}, tight);
    });
    spec.options.measureCycles = 6000;
    spec.pearl.faults.enabled = true;
    spec.pearl.faults.seed = 0xFA017;
    spec.pearl.faults.baseBer = 5e-5;
    spec.pearl.faults.reservationDropRate = 1e-3;

    const std::string trace_path =
        ::testing::TempDir() + "/guardrail_trace.jsonl";
    std::remove(trace_path.c_str());
    {
        auto tracer = obs::makeTracer(trace_path);
        spec.options.tracer = tracer.get();
        const metrics::RunMetrics m = metrics::executeSpec(spec, 100);
        EXPECT_GT(m.policyFallbackEntries, 0u);
        EXPECT_GT(m.policyFallbackWindows, 0u);
        tracer->finish();
    }

    std::ifstream in(trace_path);
    ASSERT_TRUE(in.is_open());
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_NE(buf.str().find("policy_fallback"), std::string::npos)
        << "no policy_fallback events in the trace";
    std::remove(trace_path.c_str());
}

} // namespace
} // namespace ml
} // namespace pearl
