/**
 * @file
 * Coverage tests for the statistics plumbing: per-class counters and
 * latencies in NetworkStats, log levels, and telemetry reset semantics.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/log.hpp"
#include "sim/stats.hpp"
#include "sim/telemetry.hpp"

namespace pearl {
namespace sim {
namespace {

Packet
statPacket(MsgClass cls, Cycle created, Cycle delivered,
           int size = kRequestBits)
{
    Packet p;
    p.msgClass = cls;
    p.sizeBits = size;
    p.cycleCreated = created;
    p.cycleDelivered = delivered;
    return p;
}

TEST(NetworkStats, PerClassCounters)
{
    NetworkStats s;
    s.noteInjected(statPacket(MsgClass::ReqCpuL2Down, 0, 0));
    s.noteInjected(statPacket(MsgClass::ReqCpuL2Down, 0, 0));
    s.noteInjected(statPacket(MsgClass::RespGpuL2Down, 0, 0,
                              kResponseBits));
    EXPECT_EQ(s.classInjected(MsgClass::ReqCpuL2Down), 2u);
    EXPECT_EQ(s.classInjected(MsgClass::RespGpuL2Down), 1u);
    EXPECT_EQ(s.classInjected(MsgClass::ReqL3), 0u);
    EXPECT_EQ(s.injectedPackets(), 3u);
    EXPECT_EQ(s.injectedFlits(), 7u);
}

TEST(NetworkStats, PerClassLatency)
{
    NetworkStats s;
    s.noteDelivered(statPacket(MsgClass::ReqCpuL2Down, 0, 10));
    s.noteDelivered(statPacket(MsgClass::ReqCpuL2Down, 0, 20));
    s.noteDelivered(statPacket(MsgClass::RespGpuL2Down, 0, 100));
    EXPECT_DOUBLE_EQ(s.avgClassLatency(MsgClass::ReqCpuL2Down), 15.0);
    EXPECT_DOUBLE_EQ(s.avgClassLatency(MsgClass::RespGpuL2Down), 100.0);
    EXPECT_DOUBLE_EQ(s.avgClassLatency(MsgClass::ReqL3), 0.0);
}

TEST(NetworkStats, PerCoreTypeLatency)
{
    NetworkStats s;
    s.noteDelivered(statPacket(MsgClass::ReqCpuL2Down, 0, 10));
    s.noteDelivered(statPacket(MsgClass::ReqGpuL2Down, 0, 50));
    EXPECT_DOUBLE_EQ(s.avgLatency(CoreType::CPU), 10.0);
    EXPECT_DOUBLE_EQ(s.avgLatency(CoreType::GPU), 50.0);
    EXPECT_DOUBLE_EQ(s.avgLatency(), 30.0);
}

TEST(NetworkStats, ThroughputCalculations)
{
    NetworkStats s;
    s.noteDelivered(statPacket(MsgClass::RespCpuL2Down, 0, 5,
                               kResponseBits));
    EXPECT_DOUBLE_EQ(s.throughputFlitsPerCycle(10), 0.5);
    EXPECT_DOUBLE_EQ(s.throughputBitsPerCycle(10), 64.0);
    EXPECT_DOUBLE_EQ(s.throughputFlitsPerCycle(0), 0.0);
}

TEST(NetworkStats, ResetClearsEverything)
{
    NetworkStats s;
    s.noteInjected(statPacket(MsgClass::ReqCpuL1D, 0, 0));
    s.noteDelivered(statPacket(MsgClass::ReqCpuL1D, 0, 7));
    s.reset();
    EXPECT_EQ(s.injectedPackets(), 0u);
    EXPECT_EQ(s.deliveredPackets(), 0u);
    EXPECT_DOUBLE_EQ(s.avgLatency(), 0.0);
    EXPECT_DOUBLE_EQ(s.latencyQuantile(0.5), 0.0);
    EXPECT_EQ(s.classDelivered(MsgClass::ReqCpuL1D), 0u);
}

TEST(NetworkStats, QuantilesOrdered)
{
    NetworkStats s;
    for (int i = 1; i <= 100; ++i)
        s.noteDelivered(statPacket(MsgClass::ReqCpuL1D, 0,
                                   static_cast<Cycle>(i)));
    EXPECT_LE(s.latencyQuantile(0.1), s.latencyQuantile(0.5));
    EXPECT_LE(s.latencyQuantile(0.5), s.latencyQuantile(0.99));
    EXPECT_NEAR(s.latencyQuantile(0.5), 50.5, 1.0);
}

TEST(Telemetry, ResetPreservesNothing)
{
    RouterTelemetry t;
    t.noteClass(MsgClass::ReqCpuL1D);
    t.cpuCoreBufOccupancy = 3.0;
    t.packetsInjected = 9;
    t.wavelengths = 16;
    t.reset();
    EXPECT_EQ(t.classCounts[static_cast<int>(MsgClass::ReqCpuL1D)], 0u);
    EXPECT_DOUBLE_EQ(t.cpuCoreBufOccupancy, 0.0);
    EXPECT_EQ(t.packetsInjected, 0u);
    EXPECT_EQ(t.wavelengths, 64); // back to the default
}

TEST(Log, LevelsSuppressBelowThreshold)
{
    std::ostringstream capture;
    auto *old_stream = Log::stream();
    const auto old_level = Log::level();
    Log::stream() = &capture;

    Log::level() = LogLevel::Silent;
    warn("invisible");
    inform("invisible");
    EXPECT_TRUE(capture.str().empty());

    Log::level() = LogLevel::Warn;
    warn("visible-warning");
    inform("still-invisible");
    EXPECT_NE(capture.str().find("visible-warning"), std::string::npos);
    EXPECT_EQ(capture.str().find("still-invisible"), std::string::npos);

    Log::level() = LogLevel::Info;
    inform("now-visible");
    EXPECT_NE(capture.str().find("now-visible"), std::string::npos);

    Log::stream() = old_stream;
    Log::level() = old_level;
}

TEST(Log, MessagesAreConcatenated)
{
    std::ostringstream capture;
    auto *old_stream = Log::stream();
    const auto old_level = Log::level();
    Log::stream() = &capture;
    Log::level() = LogLevel::Warn;
    warn("count=", 42, " name=", "pearl");
    EXPECT_NE(capture.str().find("count=42 name=pearl"),
              std::string::npos);
    Log::stream() = old_stream;
    Log::level() = old_level;
}

} // namespace
} // namespace sim
} // namespace pearl
