/**
 * @file
 * Tests of the wavelength-state policies (static, reactive, random).
 */

#include <gtest/gtest.h>

#include <set>

#include "core/power_policy.hpp"

namespace pearl {
namespace core {
namespace {

using photonic::WlState;

WindowObservation
obsWithBeta(double beta)
{
    WindowObservation obs;
    obs.betaTotalMean = beta;
    obs.windowCycles = 500;
    return obs;
}

TEST(StaticPolicy, AlwaysReturnsItsState)
{
    StaticPolicy p(WlState::WL32);
    for (double beta : {0.0, 0.5, 2.0})
        EXPECT_EQ(p.nextState(obsWithBeta(beta)), WlState::WL32);
}

TEST(ReactivePolicy, ThresholdLadder)
{
    ReactiveThresholds t;
    t.upper = 0.5;
    t.midUpper = 0.25;
    t.midLower = 0.12;
    t.lower = 0.04;
    ReactivePolicy p(t);
    EXPECT_EQ(p.nextState(obsWithBeta(0.60)), WlState::WL64);
    EXPECT_EQ(p.nextState(obsWithBeta(0.30)), WlState::WL48);
    EXPECT_EQ(p.nextState(obsWithBeta(0.15)), WlState::WL32);
    EXPECT_EQ(p.nextState(obsWithBeta(0.05)), WlState::WL16);
    EXPECT_EQ(p.nextState(obsWithBeta(0.01)), WlState::WL8);
}

TEST(ReactivePolicy, BoundariesAreExclusive)
{
    ReactiveThresholds t;
    t.upper = 0.5;
    ReactivePolicy p(t);
    // "beta > threshold", so exactly-at-threshold picks the lower state.
    EXPECT_NE(p.nextState(obsWithBeta(0.5)), WlState::WL64);
    EXPECT_EQ(p.nextState(obsWithBeta(0.5001)), WlState::WL64);
}

TEST(ReactivePolicy, No8WlFloor)
{
    ReactiveThresholds t;
    t.enable8Wl = false;
    ReactivePolicy p(t);
    EXPECT_EQ(p.nextState(obsWithBeta(0.0)), WlState::WL16);
}

TEST(ReactivePolicy, MonotoneInBeta)
{
    ReactivePolicy p;
    int prev = -1;
    for (double beta = 0.0; beta <= 1.2; beta += 0.01) {
        const int idx = photonic::indexOf(p.nextState(obsWithBeta(beta)));
        EXPECT_GE(idx, prev);
        prev = std::max(prev, idx);
    }
}

TEST(RandomPolicy, ExcludesLowStateDuringTraining)
{
    RandomPolicy p(Rng(5), /*include8_wl=*/false);
    std::set<int> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(photonic::indexOf(p.nextState(obsWithBeta(0.0))));
    EXPECT_EQ(seen.count(photonic::indexOf(WlState::WL8)), 0u);
    EXPECT_EQ(seen.size(), 4u); // all four remaining states drawn
}

TEST(RandomPolicy, CoversAllStatesWhenAllowed)
{
    RandomPolicy p(Rng(6), /*include8_wl=*/true);
    std::set<int> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(photonic::indexOf(p.nextState(obsWithBeta(0.0))));
    EXPECT_EQ(seen.size(), 5u);
}

TEST(RandomPolicy, DeterministicPerSeed)
{
    RandomPolicy a(Rng(9)), b(Rng(9));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextState(obsWithBeta(0)), b.nextState(obsWithBeta(0)));
}

} // namespace
} // namespace core
} // namespace pearl
