/**
 * @file
 * Observability-plane tests: trace sinks and ring buffer, per-job trace
 * determinism across sweep thread counts, Chrome-trace JSON validity
 * with all four event categories, metrics-registry reconciliation with
 * RunMetrics, and the zero-cost-when-off guarantee (traced and untraced
 * runs produce byte-identical canonical CSV rows, matching the
 * checked-in goldens).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/csv.hpp"
#include "metrics/runner.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "traffic/suite.hpp"

#ifndef PEARL_GOLDEN_DIR
#error "PEARL_GOLDEN_DIR must point at tests/golden"
#endif

namespace pearl {
namespace {

// --------------------------------------------------------------------------
// Helpers

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

/** Drop the lines of the only nondeterministic category ("sweep" phase
 *  events carry wall-clock seconds); everything else must be
 *  byte-identical across sweep thread counts. */
std::string
withoutSweepLines(const std::string &text)
{
    std::istringstream in(text);
    std::string out, line;
    while (std::getline(in, line)) {
        if (line.find("\"cat\":\"sweep\"") == std::string::npos)
            out += line + "\n";
    }
    return out;
}

/**
 * Minimal recursive-descent JSON validator — enough to prove the Chrome
 * trace file is well-formed (Perfetto/chrome://tracing parse it with a
 * full JSON parser).
 */
class JsonValidator
{
  public:
    explicit JsonValidator(const std::string &text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return i_ == s_.size();
    }

  private:
    void
    skipWs()
    {
        while (i_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[i_])))
            ++i_;
    }

    bool
    eat(char c)
    {
        if (i_ < s_.size() && s_[i_] == c) {
            ++i_;
            return true;
        }
        return false;
    }

    bool
    value()
    {
        skipWs();
        if (i_ >= s_.size())
            return false;
        switch (s_[i_]) {
        case '{':
            return object();
        case '[':
            return array();
        case '"':
            return string();
        case 't':
            return literal("true");
        case 'f':
            return literal("false");
        case 'n':
            return literal("null");
        default:
            return number();
        }
    }

    bool
    object()
    {
        if (!eat('{'))
            return false;
        skipWs();
        if (eat('}'))
            return true;
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (!eat(':'))
                return false;
            if (!value())
                return false;
            skipWs();
            if (eat('}'))
                return true;
            if (!eat(','))
                return false;
        }
    }

    bool
    array()
    {
        if (!eat('['))
            return false;
        skipWs();
        if (eat(']'))
            return true;
        for (;;) {
            if (!value())
                return false;
            skipWs();
            if (eat(']'))
                return true;
            if (!eat(','))
                return false;
        }
    }

    bool
    string()
    {
        if (!eat('"'))
            return false;
        while (i_ < s_.size()) {
            const char c = s_[i_];
            if (c == '"') {
                ++i_;
                return true;
            }
            if (c == '\\') {
                ++i_;
                if (i_ >= s_.size())
                    return false;
                const char esc = s_[i_];
                if (esc == 'u') {
                    for (int k = 0; k < 4; ++k) {
                        ++i_;
                        if (i_ >= s_.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(s_[i_])))
                            return false;
                    }
                } else if (std::string("\"\\/bfnrt").find(esc) ==
                           std::string::npos) {
                    return false;
                }
            }
            ++i_;
        }
        return false;
    }

    bool
    number()
    {
        const std::size_t start = i_;
        if (eat('-')) {
        }
        while (i_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
                s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
                s_[i_] == '+' || s_[i_] == '-'))
            ++i_;
        return i_ > start;
    }

    bool
    literal(const char *word)
    {
        const std::string w(word);
        if (s_.compare(i_, w.size(), w) != 0)
            return false;
        i_ += w.size();
        return true;
    }

    const std::string &s_;
    std::size_t i_ = 0;
};

/** Sink that records everything in memory for direct inspection. */
class RecordingSink : public obs::TraceSink
{
  public:
    void
    write(const obs::TraceEvent &event) override
    {
        events.push_back(event);
    }
    void
    close() override
    {
        ++closes;
    }

    std::vector<obs::TraceEvent> events;
    int closes = 0;
};

metrics::RunSpec
reactiveSpec(const traffic::BenchmarkPair &pair, sim::Cycle warmup,
             sim::Cycle measure)
{
    metrics::RunSpec spec;
    spec.configName = "reactive";
    spec.pair = pair;
    spec.options.warmupCycles = warmup;
    spec.options.measureCycles = measure;
    spec.fabric = metrics::RunSpec::Fabric::Pearl;
    spec.pearl.reservationWindow = 300;
    spec.makePolicy = [] {
        return std::make_unique<core::ReactivePolicy>();
    };
    return spec;
}

// --------------------------------------------------------------------------
// Tracer / sink units

TEST(Tracer, RingBufferFlushesPastCapacityAndOnFinish)
{
    auto owned = std::make_unique<RecordingSink>();
    RecordingSink *sink = owned.get();
    obs::Tracer tracer(std::move(owned), /*capacity=*/4);

    for (int i = 0; i < 10; ++i) {
        obs::TraceEvent e;
        e.cat = obs::Category::Wavelength;
        e.name = "e" + std::to_string(i);
        e.ts = static_cast<std::uint64_t>(i);
        tracer.record(std::move(e));
    }
    // Two full buffers flushed on the hot path, 2 events still pending.
    EXPECT_EQ(sink->events.size(), 8u);
    EXPECT_EQ(tracer.recorded(), 10u);

    tracer.finish();
    ASSERT_EQ(sink->events.size(), 10u);
    EXPECT_EQ(sink->closes, 1);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(sink->events[static_cast<std::size_t>(i)].name,
                  "e" + std::to_string(i));

    // Late records are dropped, not resurrected.
    tracer.record(obs::TraceEvent{});
    tracer.finish();
    EXPECT_EQ(sink->events.size(), 10u);
    EXPECT_EQ(sink->closes, 1);
}

TEST(Tracer, JsonlSinkWritesOneObjectPerLine)
{
    const std::string path = "obs_test_unit.jsonl";
    {
        auto tracer = obs::makeTracer(path);
        obs::TraceEvent a;
        a.cat = obs::Category::Dba;
        a.name = "dba_window";
        a.ts = 300;
        a.arg("cpu_share_mean", 0.5);
        tracer->record(std::move(a));
        obs::TraceEvent b;
        b.cat = obs::Category::Fault;
        b.name = "weird \"name\"\nwith escapes";
        b.sarg("pair", "FA+DCT");
        tracer->record(std::move(b));
        tracer->finish();
    }
    std::istringstream in(slurp(path));
    std::string line;
    int lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        EXPECT_TRUE(JsonValidator(line).valid())
            << "not a JSON object: " << line;
    }
    EXPECT_EQ(lines, 2);
    std::remove(path.c_str());
}

TEST(Tracer, ChromeSinkProducesValidJsonEvenWithEscapes)
{
    const std::string path = "obs_test_unit.json";
    {
        auto tracer = obs::makeTracer(path);
        obs::TraceEvent e;
        e.cat = obs::Category::Sweep;
        e.name = "quote\" backslash\\ tab\t";
        e.phase = 'X';
        e.ts = 1;
        e.dur = 2;
        e.arg("x", 1.25).sarg("s", "a\nb");
        tracer->record(std::move(e));
        tracer->finish();
    }
    const std::string text = slurp(path);
    EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_TRUE(JsonValidator(text).valid()) << text;
    std::remove(path.c_str());
}

TEST(Trace, JobTracePathEncodesJobConfigAndPair)
{
    obs::TraceOptions opts;
    opts.path = "trace.json";
    EXPECT_EQ(obs::jobTracePath(opts, 3, "fcfs", "FA+DCT"),
              "trace-job3-fcfs-FA_DCT.json");

    opts.path = "deep/stem.jsonl";
    EXPECT_EQ(obs::jobTracePath(opts, 0, "ml", "x264+QRS"),
              "deep/stem-job0-ml-x264_QRS.jsonl");

    opts.perJobSuffix = false;
    EXPECT_EQ(obs::jobTracePath(opts, 7, "a", "b"), "deep/stem.jsonl");
}

TEST(Trace, OptionsFromEnvironment)
{
    setenv("PEARL_TRACE", "true", 1);
    setenv("PEARL_TRACE_PATH", "from_env.jsonl", 1);
    const obs::TraceOptions opts = obs::TraceOptions::fromEnv();
    EXPECT_TRUE(opts.enabled);
    EXPECT_EQ(opts.path, "from_env.jsonl");
    unsetenv("PEARL_TRACE");
    unsetenv("PEARL_TRACE_PATH");

    const obs::TraceOptions off = obs::TraceOptions::fromEnv();
    EXPECT_FALSE(off.enabled);
    EXPECT_EQ(off.path, "pearl_trace.json");
}

// --------------------------------------------------------------------------
// Registry units

TEST(Registry, KindsAndDeterministicDump)
{
    obs::MetricsRegistry reg;
    EXPECT_TRUE(reg.empty());
    reg.counter("net.b") += 2;
    reg.counter("net.a") += 1;
    reg.counter("net.b") += 3;
    reg.gauge("power.laser_w") = 1.5;
    obs::HistogramSummary &h = reg.histogram("net.latency_cycles");
    h.count = 10;
    h.mean = 4.0;
    h.p50 = 3.0;
    h.p95 = 9.0;
    h.p99 = 9.5;

    EXPECT_EQ(reg.counters().at("net.b"), 5u);
    std::ostringstream oss;
    reg.write(oss);
    const std::string dump = oss.str();
    // Sorted name order: net.a before net.b; all three kinds present.
    EXPECT_LT(dump.find("counter,net.a,1"), dump.find("counter,net.b,5"));
    EXPECT_NE(dump.find("gauge,power.laser_w,1.5"), std::string::npos);
    EXPECT_NE(dump.find("histogram,net.latency_cycles,10"),
              std::string::npos);

    reg.clear();
    EXPECT_TRUE(reg.empty());
}

// --------------------------------------------------------------------------
// Integration: registry reconciles with RunMetrics

TEST(Obs, RegistryReconcilesExactlyWithRunMetrics)
{
    traffic::BenchmarkSuite suite;
    // warmup 0, so the registry's whole-run counters equal the
    // measurement-window RunMetrics totals exactly.
    metrics::RunSpec spec = reactiveSpec(
        {suite.find("FA"), suite.find("DCT")}, 0, 1500);
    obs::MetricsRegistry reg;
    spec.options.registry = &reg;
    const metrics::RunMetrics m = metrics::executeSpec(spec, 7);

    ASSERT_GT(m.deliveredPackets, 0u);
    EXPECT_EQ(reg.counters().at("net.delivered_packets"),
              m.deliveredPackets);
    EXPECT_EQ(reg.counters().at("net.delivered_flits"),
              m.deliveredFlits);
    EXPECT_EQ(reg.counters().at("net.delivered_bits"), m.deliveredBits);
    EXPECT_EQ(reg.counters().at("net.cpu_delivered_packets"),
              m.cpuPackets);
    EXPECT_EQ(reg.counters().at("net.gpu_delivered_packets"),
              m.gpuPackets);
    EXPECT_EQ(reg.counters().at("net.corrupted_packets"),
              m.corruptedPackets);
    EXPECT_EQ(reg.counters().at("net.reservation_drops"),
              m.reservationDrops);
    EXPECT_EQ(reg.counters().at("net.retransmitted_packets"),
              m.retransmittedPackets);
    EXPECT_EQ(reg.counters().at("net.ack_timeouts"), m.ackTimeouts);
    EXPECT_EQ(reg.counters().at("net.dropped_packets"),
              m.droppedPackets);
    EXPECT_EQ(reg.counters().at("net.thermal_unlocked_cycles"),
              m.thermalUnlockedCycles);
    EXPECT_DOUBLE_EQ(reg.gauges().at("net.avg_latency_cycles"),
                     m.avgLatencyCycles);
    EXPECT_DOUBLE_EQ(reg.gauges().at("power.laser_w"), m.laserPowerW);
    EXPECT_DOUBLE_EQ(reg.gauges().at("power.energy_per_bit_pj"),
                     m.energyPerBitPj);

    // Latency histogram fed from the reservoir sampler.
    const obs::HistogramSummary &h =
        reg.histograms().at("net.latency_cycles");
    EXPECT_GT(h.count, 0u);
    EXPECT_LE(h.p50, h.p95);
    EXPECT_LE(h.p95, h.p99);

    // Fault plane (disabled here) and per-router telemetry publish too.
    EXPECT_EQ(reg.counters().at("fault.bank_failures"), 0u);
    EXPECT_DOUBLE_EQ(reg.gauges().at("fault.enabled"), 0.0);
    EXPECT_TRUE(reg.counters().count("router0.packets_injected"));
    EXPECT_TRUE(reg.gauges().count("router0.dba_cpu_share_mean"));
}

// --------------------------------------------------------------------------
// Integration: trace determinism and zero cost

TEST(Obs, PerJobTracesAreIdenticalAcrossSweepThreadCounts)
{
    // The test owns the thread count; neutralise any ambient override.
    unsetenv("PEARL_THREADS");
    unsetenv("PEARL_SWEEP_THREADS");

    traffic::BenchmarkSuite suite;
    const std::vector<traffic::BenchmarkPair> pairs = {
        {suite.find("Rad"), suite.find("QRS")},
        {suite.find("FA"), suite.find("Reduc")},
        {suite.find("x264"), suite.find("DCT")},
    };
    std::vector<metrics::RunSpec> jobs;
    for (const auto &pair : pairs)
        jobs.push_back(reactiveSpec(pair, 100, 900));

    struct Run
    {
        unsigned threads;
        std::vector<std::string> filtered; //!< per-job trace, no "sweep"
        std::vector<double> throughput;
    };
    std::vector<Run> runs;
    for (unsigned threads : {1u, 2u, 8u}) {
        metrics::SweepOptions so;
        so.threads = threads;
        so.baseSeed = 42;
        so.trace.enabled = true;
        so.trace.path =
            "obs_test_det_t" + std::to_string(threads) + ".jsonl";
        const metrics::SweepResult result =
            metrics::SweepRunner(so).run(jobs);
        ASSERT_TRUE(result.allOk());

        Run run;
        run.threads = threads;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const std::string path = obs::jobTracePath(
                so.trace, i, jobs[i].configName, jobs[i].pair.label());
            const std::string raw = slurp(path);
            EXPECT_GT(raw.size(), 0u) << path;
            run.filtered.push_back(withoutSweepLines(raw));
            std::remove(path.c_str());
        }
        for (const auto &j : result.jobs)
            run.throughput.push_back(j.metrics.throughputFlitsPerCycle);
        runs.push_back(std::move(run));
    }

    for (std::size_t r = 1; r < runs.size(); ++r) {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            EXPECT_EQ(runs[0].filtered[i], runs[r].filtered[i])
                << "job " << i << " trace differs between "
                << runs[0].threads << " and " << runs[r].threads
                << " threads";
            EXPECT_EQ(runs[0].throughput[i], runs[r].throughput[i]);
        }
    }

    // The filtered trace still carries the deterministic categories.
    EXPECT_NE(runs[0].filtered[0].find("\"cat\":\"wavelength\""),
              std::string::npos);
    EXPECT_NE(runs[0].filtered[0].find("\"cat\":\"dba\""),
              std::string::npos);
    EXPECT_NE(runs[0].filtered[0].find("\"cat\":\"fault\""),
              std::string::npos);
}

TEST(Obs, ChromeTraceFromRunnerIsValidAndCarriesAllCategories)
{
    traffic::BenchmarkSuite suite;
    metrics::RunSpec spec = reactiveSpec(
        {suite.find("FA"), suite.find("Reduc")}, 200, 1200);

    const std::string path = "obs_test_runner_trace.json";
    metrics::RunnerOptions ro;
    ro.sweep.trace.enabled = true;
    ro.sweep.trace.path = path;
    const metrics::RunMetrics m = metrics::Runner(ro).run(spec);
    ASSERT_GT(m.deliveredPackets, 0u);

    const std::string text = slurp(path);
    EXPECT_TRUE(JsonValidator(text).valid())
        << "Chrome trace is not valid JSON";
    for (const char *cat : {"\"cat\":\"wavelength\"", "\"cat\":\"dba\"",
                            "\"cat\":\"fault\"", "\"cat\":\"sweep\""})
        EXPECT_NE(text.find(cat), std::string::npos)
            << "missing category " << cat;
    std::remove(path.c_str());
}

TEST(Obs, TracingIsZeroCostAndDisabledMatchesGolden)
{
    unsetenv("PEARL_THREADS");
    unsetenv("PEARL_SWEEP_THREADS");

    // The fcfs golden grid, exactly as test_golden_metrics runs it.
    traffic::BenchmarkSuite suite;
    const std::vector<traffic::BenchmarkPair> pairs = {
        {suite.find("Rad"), suite.find("QRS")},
        {suite.find("FA"), suite.find("Reduc")},
        {suite.find("x264"), suite.find("DCT")},
    };
    std::vector<metrics::RunSpec> jobs;
    for (const auto &pair : pairs) {
        metrics::RunSpec job;
        job.configName = "fcfs";
        job.pair = pair;
        job.options.warmupCycles = 400;
        job.options.measureCycles = 2500;
        job.dba.mode = core::DbaConfig::Mode::Fcfs;
        job.pearl.reservationWindow = 500;
        job.makePolicy = [] {
            return std::make_unique<core::StaticPolicy>(
                photonic::WlState::WL64);
        };
        jobs.push_back(std::move(job));
    }

    auto rowsOf = [&](bool traced) {
        metrics::SweepOptions so;
        so.baseSeed = 100;
        if (traced) {
            so.trace.enabled = true;
            so.trace.path = "obs_test_zerocost.jsonl";
        }
        const std::vector<metrics::RunMetrics> runs =
            metrics::SweepRunner(so).run(jobs).metricsOrThrow();
        std::vector<std::string> rows;
        for (const metrics::RunMetrics &m : runs)
            rows.push_back(metrics::csvRow({m.pairLabel}, m));
        if (traced) {
            for (std::size_t i = 0; i < jobs.size(); ++i) {
                std::remove(obs::jobTracePath(so.trace, i, "fcfs",
                                              jobs[i].pair.label())
                                .c_str());
            }
        }
        return rows;
    };

    const std::vector<std::string> untraced = rowsOf(false);
    const std::vector<std::string> traced = rowsOf(true);
    ASSERT_EQ(untraced.size(), traced.size());
    for (std::size_t i = 0; i < untraced.size(); ++i)
        EXPECT_EQ(untraced[i], traced[i])
            << "tracing perturbed the metrics of job " << i;

    // Untraced rows reproduce the checked-in golden CSV byte for byte.
    std::ifstream golden(std::string(PEARL_GOLDEN_DIR) + "/fcfs.csv");
    ASSERT_TRUE(golden) << "missing tests/golden/fcfs.csv";
    std::string line;
    ASSERT_TRUE(std::getline(golden, line));
    EXPECT_EQ(line, metrics::csvHeader({"pair"}));
    for (std::size_t i = 0; i < untraced.size(); ++i) {
        ASSERT_TRUE(std::getline(golden, line)) << "golden too short";
        EXPECT_EQ(line, untraced[i]) << "golden row " << i << " drifted";
    }
}

// --------------------------------------------------------------------------
// Runner metrics dump (PEARL_METRICS_DUMP)

TEST(Obs, RunnerAppendsCanonicalCsvRowsToDumpFile)
{
    traffic::BenchmarkSuite suite;
    metrics::RunSpec spec = reactiveSpec(
        {suite.find("Rad"), suite.find("QRS")}, 100, 600);

    const std::string path = "obs_test_dump.csv";
    std::remove(path.c_str());
    metrics::RunnerOptions ro;
    ro.metricsDumpPath = path;
    const metrics::Runner runner(ro);
    const metrics::RunMetrics a = runner.run(spec);
    const metrics::RunMetrics b = runner.run(spec);

    std::istringstream in(slurp(path));
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, metrics::csvHeader({"config", "pair"}));
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, metrics::csvRow({a.configName, a.pairLabel}, a));
    ASSERT_TRUE(std::getline(in, line)); // appended, no second header
    EXPECT_EQ(line, metrics::csvRow({b.configName, b.pairLabel}, b));
    EXPECT_FALSE(std::getline(in, line));
    std::remove(path.c_str());
}

} // namespace
} // namespace pearl
