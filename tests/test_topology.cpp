/**
 * @file
 * core::TopologySpec: the accept/reject matrix and the legacy-equality
 * guarantee.
 *
 * Two properties carry the scale-out plane:
 *  1. a TopologySpec{16} derives configs field-identical to the
 *     hand-built legacy defaults (so the goldens keep pinning them);
 *  2. every invalid spec is rejected with an actionable message before
 *     any network is built.
 */

#include <gtest/gtest.h>

#include "cache/sharer_mask.hpp"
#include "core/network.hpp"
#include "core/system.hpp"
#include "core/topology.hpp"
#include "photonic/power_model.hpp"
#include "traffic/suite.hpp"

namespace pearl {
namespace core {
namespace {

/** True when the validation failed and its message mentions `needle`. */
testing::AssertionResult
failsMentioning(const Validation &v, const std::string &needle)
{
    if (v)
        return testing::AssertionFailure()
               << "expected a validation failure mentioning '" << needle
               << "' but validation passed";
    if (v.error().code != ErrorCode::InvalidConfig)
        return testing::AssertionFailure()
               << "expected InvalidConfig, got "
               << static_cast<int>(v.error().code) << ": "
               << v.error().message;
    if (v.error().message.find(needle) == std::string::npos)
        return testing::AssertionFailure()
               << "message does not mention '" << needle
               << "': " << v.error().message;
    return testing::AssertionSuccess();
}

// Legacy equality --------------------------------------------------------

TEST(TopologySpec, DefaultSpecReproducesLegacyPearlConfig)
{
    // The derivations must land *exactly* on the hand-written Table I/II
    // defaults at 16 clusters — this is what keeps the 16-cluster goldens
    // byte-identical across the API redesign.
    const PearlConfig derived = TopologySpec{}.pearlConfig();
    const PearlConfig legacy;

    EXPECT_EQ(derived.numClusters, legacy.numClusters);
    EXPECT_EQ(derived.l3Node, legacy.l3Node);
    EXPECT_EQ(derived.l3WaveguideGroup, legacy.l3WaveguideGroup);
    EXPECT_EQ(derived.reservationCycles, legacy.reservationCycles);
    EXPECT_EQ(derived.rxRings, legacy.rxRings);
    EXPECT_EQ(derived.txRings, legacy.txRings);

    // The express plane stays off: single reservation domain, single
    // serializer per channel.
    EXPECT_EQ(derived.reservationGroupSize, 0);
    EXPECT_FALSE(derived.grouped());
    EXPECT_FALSE(derived.multiPacketTx);
    EXPECT_DOUBLE_EQ(derived.expressResLaserW, 0.0);

    // Untouched knobs keep their defaults.
    EXPECT_EQ(derived.cpuInjectSlots, legacy.cpuInjectSlots);
    EXPECT_EQ(derived.linkLatencyCycles, legacy.linkLatencyCycles);
    EXPECT_EQ(derived.reservationWindow, legacy.reservationWindow);
    EXPECT_EQ(derived.initialState, legacy.initialState);
}

TEST(TopologySpec, DefaultSpecReproducesLegacySystemConfig)
{
    const SystemConfig derived = makeSystemConfig(TopologySpec{});
    const SystemConfig legacy;

    EXPECT_EQ(derived.home.numBanks, legacy.home.numBanks);
    EXPECT_EQ(derived.home.memoryNode, legacy.home.memoryNode);
    EXPECT_EQ(derived.hierarchy.l3Lines, legacy.hierarchy.l3Lines);
    EXPECT_EQ(derived.arch.l3CacheMb, legacy.arch.l3CacheMb);
    EXPECT_DOUBLE_EQ(derived.memResponsesPerCycle,
                     legacy.memResponsesPerCycle);
    // clusters=16 is the explicit form of the legacy auto (0 = one
    // cluster per bank = 16); HeteroSystem builds the same chip.
    EXPECT_EQ(derived.clusters, 16);
    EXPECT_EQ(legacy.clusters, 0);
}

// Accept matrix ----------------------------------------------------------

struct GroupingExpectation
{
    int clusters;
    int groupSize;
    int groups;
};

TEST(TopologySpec, AcceptedClusterCountsDeriveSaneGroups)
{
    // Auto grouping: chips up to 16 keep one domain, larger chips take
    // the largest divisor <= 16 (prime 17 degenerates to 1 per group).
    const GroupingExpectation expectations[] = {
        {1, 1, 1},   {2, 2, 1},   {4, 4, 1},    {16, 16, 1},
        {17, 1, 17}, {24, 12, 2}, {32, 16, 2},  {64, 16, 4},
        {128, 16, 8},
    };
    const int legacy_reservation = PearlConfig{}.reservationCycles;
    for (const auto &e : expectations) {
        TopologySpec topo;
        topo.clusters = e.clusters;
        ASSERT_TRUE(topo.validate()) << "clusters=" << e.clusters;
        EXPECT_EQ(topo.resolvedGroupSize(), e.groupSize)
            << "clusters=" << e.clusters;
        EXPECT_EQ(topo.numGroups(), e.groups)
            << "clusters=" << e.clusters;

        const PearlConfig cfg = topo.pearlConfig();
        EXPECT_EQ(cfg.grouped(), e.groups > 1)
            << "clusters=" << e.clusters;
        // Domains never exceed the legacy 16-router width, so intra-group
        // reservation latency never regresses past the Table II figure.
        EXPECT_LE(cfg.reservationCycles, legacy_reservation)
            << "clusters=" << e.clusters;
        if (cfg.grouped()) {
            EXPECT_GE(cfg.resExpressSlots, 2);
            // Each router transmits on at most its CPU and GPU
            // channels, so slots past 2x the group size could never be
            // occupied.
            EXPECT_LE(cfg.resExpressSlots, 2 * e.groupSize)
                << "clusters=" << e.clusters;
            // Express reservations are always exposed: at least as slow
            // as the hidden intra-group path.
            EXPECT_GE(cfg.expressReservationCycles, cfg.reservationCycles);
            EXPECT_GT(cfg.expressResLaserW, 0.0);
        }
    }
}

TEST(TopologySpec, ExplicitGroupOverride)
{
    TopologySpec topo;
    topo.clusters = 32;
    topo.clustersPerGroup = 8;
    ASSERT_TRUE(topo.validate());
    EXPECT_EQ(topo.numGroups(), 4);

    const PearlConfig cfg = topo.pearlConfig();
    EXPECT_EQ(cfg.reservationGroupSize, 8);
    EXPECT_EQ(cfg.rxRings, 4 * 8); // detectors tune per domain
    EXPECT_EQ(cfg.resExpressSlots, 8); // one slot per router
    EXPECT_TRUE(cfg.multiPacketTx);
}

TEST(TopologySpec, SingleDomainSpanningTheChipIsLegacyFabric)
{
    // clustersPerGroup == clusters is exactly the ungrouped fabric even
    // above 16 clusters — one chip-wide reservation domain.
    TopologySpec topo;
    topo.clusters = 32;
    topo.clustersPerGroup = 32;
    ASSERT_TRUE(topo.validate());
    const PearlConfig cfg = topo.pearlConfig();
    EXPECT_FALSE(cfg.grouped());
    EXPECT_EQ(cfg.rxRings, 4 * 32);
}

TEST(TopologySpec, McColocationFlowsToBothConfigs)
{
    TopologySpec topo;
    topo.mcNode = 3;
    ASSERT_TRUE(topo.validate());
    EXPECT_EQ(topo.pearlConfig().l3Node, 3);
    EXPECT_EQ(makeSystemConfig(topo).home.memoryNode, 3);
}

TEST(TopologySpec, CacheAndMemoryScaleWithClusters)
{
    TopologySpec topo;
    topo.clusters = 32;
    const SystemConfig sys = makeSystemConfig(topo);
    EXPECT_EQ(sys.clusters, 32);
    EXPECT_EQ(sys.home.numBanks, 32);
    EXPECT_EQ(sys.home.memoryNode, 32);
    // Per-cluster L3 slice held constant: 8192 lines / 0.5 MB each.
    EXPECT_EQ(sys.hierarchy.l3Lines, 32u * 8192u);
    EXPECT_EQ(sys.arch.l3CacheMb, 16);
    EXPECT_DOUBLE_EQ(sys.memResponsesPerCycle, 0.1 * 32);

    TopologySpec banked = topo;
    banked.l3Banks = 8;
    EXPECT_EQ(makeSystemConfig(banked).home.numBanks, 8);
    EXPECT_EQ(makeSystemConfig(banked).clusters, 32);
}

// Reject matrix ----------------------------------------------------------

TEST(TopologySpec, RejectsOutOfRangeClusterCounts)
{
    TopologySpec topo;
    topo.clusters = 0;
    EXPECT_TRUE(failsMentioning(topo.validate(), "clusters"));
    topo.clusters = -4;
    EXPECT_TRUE(failsMentioning(topo.validate(), "clusters"));
    topo.clusters = cache::kMaxClusters + 1;
    EXPECT_TRUE(failsMentioning(topo.validate(), "clusters"));
    // pearlConfig() refuses to build from an invalid spec.
    EXPECT_THROW(topo.pearlConfig(), ConfigError);
    EXPECT_THROW(makeSystemConfig(topo), ConfigError);
}

TEST(TopologySpec, RejectsNonDividingGroupSize)
{
    TopologySpec topo;
    topo.clusters = 32;
    topo.clustersPerGroup = 5; // 32 % 5 != 0
    EXPECT_TRUE(failsMentioning(topo.validate(), "divide"));
    topo.clustersPerGroup = 33; // wider than the chip
    EXPECT_TRUE(failsMentioning(topo.validate(), "clustersPerGroup"));
    topo.clustersPerGroup = -1;
    EXPECT_TRUE(failsMentioning(topo.validate(), "clustersPerGroup"));
}

TEST(TopologySpec, RejectsBadMcPlacement)
{
    TopologySpec topo;
    topo.mcNode = -2;
    EXPECT_TRUE(failsMentioning(topo.validate(), "mcNode"));
    topo.mcNode = topo.clusters + 1; // past the dedicated hub id
    EXPECT_TRUE(failsMentioning(topo.validate(), "mcNode"));
}

TEST(TopologySpec, RejectsBadBankingAndWaveguides)
{
    TopologySpec topo;
    topo.l3Banks = topo.clusters + 1; // more slices than routers
    EXPECT_TRUE(failsMentioning(topo.validate(), "l3Banks"));
    topo.l3Banks = -1;
    EXPECT_TRUE(failsMentioning(topo.validate(), "l3Banks"));

    topo = TopologySpec{};
    topo.hubWaveguides = -1;
    EXPECT_TRUE(failsMentioning(topo.validate(), "hubWaveguides"));
}

// Degenerate end-to-end --------------------------------------------------

TEST(TopologySpec, OneClusterChipRunsEndToEnd)
{
    // The degenerate chip: one cluster router + the hub.  All L3 traffic
    // is either bank-local or cluster<->hub, and the fabric must still
    // move it.
    TopologySpec topo;
    topo.clusters = 1;
    photonic::PowerModel power;
    StaticPolicy policy(photonic::WlState::WL64);
    PearlNetwork net(topo.pearlConfig(), power, DbaConfig{}, &policy);
    EXPECT_EQ(net.numNodes(), 2);

    traffic::BenchmarkSuite suite;
    traffic::BenchmarkPair pair{suite.find("FA"), suite.find("DCT")};
    HeteroSystem system(net, pair, makeSystemConfig(topo),
                        [&net](int n) { return &net.telemetryOf(n); });
    system.run(4000);
    EXPECT_GT(net.stats().deliveredPackets(), 0u);
}

} // namespace
} // namespace core
} // namespace pearl
