# Included by ctest after test_verify's generated discovery file (see
# TEST_INCLUDE_FILES in CMakeLists.txt).  At this point the full test
# list is available and set_tests_properties handles a proper ;-list,
# which gtest_discover_tests(PROPERTIES LABELS ...) cannot transport.
if(DEFINED test_verify_TESTS AND test_verify_TESTS)
    set_tests_properties(${test_verify_TESTS}
                         PROPERTIES LABELS "tier1;verify")
endif()
