/**
 * @file
 * Paper-shape regression tests.
 *
 * These integration tests pin the *qualitative* results of the paper so
 * calibration changes cannot silently invert them: PEARL beats CMESH,
 * bandwidth constraints cost throughput, power scaling saves laser power
 * within a bounded throughput loss, the DBA protects CPU traffic under a
 * GPU flood, and laser power is insensitive to turn-on time while
 * throughput is not.  Runs are kept short; the bounds are deliberately
 * loose (shape, not absolute values).
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/network.hpp"
#include "photonic/power_model.hpp"
#include "metrics/experiment.hpp"
#include "traffic/suite.hpp"

namespace pearl {
namespace {

class ShapeTest : public ::testing::Test
{
  protected:
    ShapeTest() : pair_{suite_.find("FA"), suite_.find("DCT")}
    {
        opts_.warmupCycles = 4000;
        opts_.measureCycles = 25000;
    }

    metrics::RunMetrics
    pearlStatic(photonic::WlState state)
    {
        core::PearlConfig cfg;
        cfg.initialState = state;
        core::StaticPolicy policy(state);
        return metrics::runPearl(pair_, cfg, core::DbaConfig{}, policy,
                                 opts_, "static");
    }

    traffic::BenchmarkSuite suite_;
    traffic::BenchmarkPair pair_;
    metrics::RunOptions opts_;
};

TEST_F(ShapeTest, PearlOutperformsCmesh)
{
    // Figure 9's headline: the photonic crossbar beats the electrical
    // CMESH in both throughput and latency.
    const auto pearl = pearlStatic(photonic::WlState::WL64);
    const auto cmesh =
        metrics::runCmesh(pair_, electrical::CmeshConfig{}, opts_,
                          "cmesh");
    EXPECT_GT(pearl.throughputFlitsPerCycle,
              cmesh.throughputFlitsPerCycle * 1.15);
    EXPECT_LT(pearl.avgLatencyCycles, cmesh.avgLatencyCycles);
}

TEST_F(ShapeTest, PearlEnergyPerBitWellBelowCmesh)
{
    // Figure 5's headline: PEARL needs a fraction of CMESH's energy/bit.
    const auto pearl = pearlStatic(photonic::WlState::WL64);
    const auto cmesh =
        metrics::runCmesh(pair_, electrical::CmeshConfig{}, opts_,
                          "cmesh");
    EXPECT_LT(pearl.energyPerBitPj, cmesh.energyPerBitPj * 0.7);
}

TEST_F(ShapeTest, BandwidthConstraintCostsThroughput)
{
    // Static 64 > 32 > 16 WL in delivered throughput (Figure 5 x-axis).
    const auto w64 = pearlStatic(photonic::WlState::WL64);
    const auto w32 = pearlStatic(photonic::WlState::WL32);
    const auto w16 = pearlStatic(photonic::WlState::WL16);
    EXPECT_GT(w64.throughputFlitsPerCycle, w32.throughputFlitsPerCycle);
    EXPECT_GT(w32.throughputFlitsPerCycle, w16.throughputFlitsPerCycle);
    // And static laser power follows the states exactly.
    EXPECT_NEAR(w64.laserPowerW, 1.16, 1e-6);
    EXPECT_NEAR(w32.laserPowerW, 0.581, 1e-6);
}

TEST_F(ShapeTest, ReactiveScalingSavesPowerWithinBoundedLoss)
{
    // The paper's band: 40-65% savings at 0-14% loss.  Loose bounds:
    // at least 25% savings, at most 25% loss.
    const auto base = pearlStatic(photonic::WlState::WL64);
    core::PearlConfig cfg;
    cfg.reservationWindow = 500;
    core::ReactivePolicy policy;
    const auto dyn = metrics::runPearl(pair_, cfg, core::DbaConfig{},
                                       policy, opts_, "dyn");
    EXPECT_LT(dyn.laserPowerW, base.laserPowerW * 0.75);
    EXPECT_GT(dyn.throughputFlitsPerCycle,
              base.throughputFlitsPerCycle * 0.75);
    // The scaler genuinely visits low states.
    EXPECT_GT(dyn.residency[0] + dyn.residency[1] + dyn.residency[2],
              0.2);
}

TEST_F(ShapeTest, TurnOnTimeHurtsThroughputNotPower)
{
    // Figure 11: laser power varies <~5% across turn-on times while
    // throughput degrades monotonically-ish.
    core::DbaConfig dba;
    core::PearlConfig fast_cfg;
    fast_cfg.reservationWindow = 500;
    fast_cfg.laserTurnOnCycles = 4; // 2 ns
    core::ReactivePolicy p1;
    const auto fast = metrics::runPearl(pair_, fast_cfg, dba, p1, opts_,
                                        "2ns");

    core::PearlConfig slow_cfg = fast_cfg;
    slow_cfg.laserTurnOnCycles = 64; // 32 ns
    core::ReactivePolicy p2;
    const auto slow = metrics::runPearl(pair_, slow_cfg, dba, p2, opts_,
                                        "32ns");

    EXPECT_NEAR(slow.laserPowerW / fast.laserPowerW, 1.0, 0.10);
    EXPECT_LT(slow.throughputFlitsPerCycle,
              fast.throughputFlitsPerCycle * 1.02);
}

TEST_F(ShapeTest, DbaProtectsCpuUnderGpuFlood)
{
    // The Section I motivation, network-level: a saturating GPU flood
    // against a CPU trickle.  Under FCFS the CPU queues behind the GPU;
    // the DBA must cut CPU latency by at least 2x.
    auto run = [](core::DbaConfig::Mode mode) {
        core::PearlConfig cfg;
        core::DbaConfig dba;
        dba.mode = mode;
        photonic::PowerModel power;
        core::StaticPolicy policy(photonic::WlState::WL64);
        core::PearlNetwork net(cfg, power, dba, &policy);
        Rng rng(3);
        std::uint64_t id = 0;
        for (sim::Cycle t = 0; t < 12000; ++t) {
            for (int r = 0; r < 16; ++r) {
                sim::Packet gpu;
                gpu.id = ++id;
                gpu.msgClass = sim::MsgClass::RespGpuL2Down;
                gpu.src = r;
                gpu.dst = (r + 1 + static_cast<int>(rng.below(15))) % 17;
                gpu.sizeBits = sim::kResponseBits;
                gpu.cycleCreated = t;
                net.inject(gpu);
                if (rng.chance(0.02)) {
                    sim::Packet cpu;
                    cpu.id = ++id;
                    cpu.msgClass = sim::MsgClass::ReqCpuL2Down;
                    cpu.src = r;
                    cpu.dst = (r + 5) % 17;
                    cpu.sizeBits = sim::kRequestBits;
                    cpu.cycleCreated = t;
                    net.inject(cpu);
                }
            }
            net.step();
            net.delivered().clear();
        }
        return net.stats().avgLatency(sim::CoreType::CPU);
    };
    const double fcfs = run(core::DbaConfig::Mode::Fcfs);
    const double dba = run(core::DbaConfig::Mode::PaperLadder);
    EXPECT_LT(dba * 2.0, fcfs);
}

TEST_F(ShapeTest, LargerWindowTradesThroughputDifferently)
{
    // RW500 and RW2000 land at different points of the power/perf
    // frontier (the paper's central trade-off message).
    core::DbaConfig dba;
    core::PearlConfig c500;
    c500.reservationWindow = 500;
    core::ReactivePolicy p500;
    const auto rw500 =
        metrics::runPearl(pair_, c500, dba, p500, opts_, "rw500");

    core::PearlConfig c2000;
    c2000.reservationWindow = 2000;
    core::ReactivePolicy p2000;
    const auto rw2000 =
        metrics::runPearl(pair_, c2000, dba, p2000, opts_, "rw2000");

    // Different window sizes must not collapse to the same point.
    const bool differs =
        std::abs(rw500.laserPowerW - rw2000.laserPowerW) > 0.01 ||
        std::abs(rw500.throughputFlitsPerCycle -
                 rw2000.throughputFlitsPerCycle) > 0.05;
    EXPECT_TRUE(differs);
}

TEST_F(ShapeTest, CmeshUnfairToCpuUnderLoad)
{
    // The electrical baseline has no class protection: CPU packets (long
    // multi-hop request/response paths) see far worse latency than on
    // PEARL.
    const auto pearl = pearlStatic(photonic::WlState::WL64);
    const auto cmesh = metrics::runCmesh(
        pair_, electrical::CmeshConfig{}, opts_, "cmesh");
    EXPECT_GT(cmesh.cpuLatencyCycles, pearl.cpuLatencyCycles);
}

} // namespace
} // namespace pearl
