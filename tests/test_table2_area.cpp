/**
 * @file
 * Tests of the Table II area model and the Table I architecture spec.
 */

#include <gtest/gtest.h>

#include "core/arch_config.hpp"
#include "core/area_model.hpp"

namespace pearl {
namespace core {
namespace {

TEST(AreaModel, TableIIConstants)
{
    AreaModel a;
    EXPECT_DOUBLE_EQ(a.clusterMm2, 25.0);
    EXPECT_DOUBLE_EQ(a.l2PerClusterMm2, 2.1);
    EXPECT_DOUBLE_EQ(a.opticalComponentsMm2, 24.4);
    EXPECT_DOUBLE_EQ(a.l3Mm2, 8.5);
    EXPECT_DOUBLE_EQ(a.routerMm2, 0.342);
    EXPECT_DOUBLE_EQ(a.laserPerRouterMm2, 0.312);
    EXPECT_DOUBLE_EQ(a.dynamicAllocationMm2, 0.576);
    EXPECT_DOUBLE_EQ(a.machineLearningMm2, 0.018);
    EXPECT_DOUBLE_EQ(a.waveguideWidthUm, 5.28);
    EXPECT_DOUBLE_EQ(a.mrrDiameterUm, 3.3);
}

TEST(AreaModel, TotalIsSumOfParts)
{
    AreaModel a;
    const double expected = 25.0 * 16 + 2.1 * 16 + 24.4 + 8.5 +
                            0.342 * 17 + 0.312 * 17 + 0.576 + 0.018;
    EXPECT_NEAR(a.totalMm2(), expected, 1e-9);
}

TEST(AreaModel, AdaptiveOverheadIsTiny)
{
    // The paper's point: the DBA + ML hardware is negligible area.
    AreaModel a;
    EXPECT_LT(a.adaptiveOverheadFraction(), 0.005);
    EXPECT_GT(a.adaptiveOverheadFraction(), 0.0);
}

TEST(AreaModel, ScalesWithClusterCount)
{
    AreaModel a;
    EXPECT_GT(a.totalMm2(16, 17), a.totalMm2(8, 9));
}

TEST(ArchSpec, TableIConstants)
{
    ArchSpec s;
    EXPECT_EQ(s.cpuCores, 32);
    EXPECT_EQ(s.gpuComputeUnits, 64);
    EXPECT_EQ(s.cpuThreadsPerCore, 4);
    EXPECT_DOUBLE_EQ(s.cpuFreqGhz, 4.0);
    EXPECT_DOUBLE_EQ(s.gpuFreqGhz, 2.0);
    EXPECT_DOUBLE_EQ(s.networkFreqGhz, 2.0);
    EXPECT_EQ(s.l3CacheMb, 8);
    EXPECT_EQ(s.mainMemoryGb, 16);
    EXPECT_EQ(s.cpuL1InstrKb, 32);
    EXPECT_EQ(s.cpuL1DataKb, 64);
    EXPECT_EQ(s.cpuL2Kb, 256);
    EXPECT_EQ(s.gpuL1Kb, 64);
    EXPECT_EQ(s.gpuL2Kb, 512);
}

TEST(ArchSpec, NetworkCycleIsHalfNanosecond)
{
    ArchSpec s;
    EXPECT_DOUBLE_EQ(s.networkCycleSeconds(), 0.5e-9);
}

TEST(PearlConfig, DefaultsAreConsistent)
{
    PearlConfig cfg;
    EXPECT_EQ(cfg.numNodes(), cfg.numClusters + 1);
    EXPECT_EQ(cfg.l3Node, cfg.numClusters);
    // Laser turn-on default is the paper's 2 ns at the network clock.
    EXPECT_EQ(cfg.laserTurnOnCycles, 4u);
    EXPECT_DOUBLE_EQ(cfg.cycleSeconds, 0.5e-9);
}

} // namespace
} // namespace core
} // namespace pearl
