/**
 * @file
 * Integration tests: the full HeteroSystem (clusters + banked L3 +
 * memory) running on both network implementations.
 */

#include <gtest/gtest.h>

#include "core/network.hpp"
#include "core/system.hpp"
#include "core/topology.hpp"
#include "electrical/cmesh.hpp"
#include "photonic/power_model.hpp"
#include "traffic/suite.hpp"

namespace pearl {
namespace core {
namespace {

using traffic::BenchmarkPair;
using traffic::BenchmarkSuite;

class SystemTest : public ::testing::Test
{
  protected:
    SystemTest() : pair_{suite_.find("FA"), suite_.find("DCT")} {}

    BenchmarkSuite suite_;
    BenchmarkPair pair_;
};

TEST_F(SystemTest, PearlEndToEndTrafficFlows)
{
    PearlConfig cfg;
    photonic::PowerModel power;
    StaticPolicy policy(photonic::WlState::WL64);
    PearlNetwork net(cfg, power, DbaConfig{}, &policy);
    HeteroSystem system(net, pair_, SystemConfig{},
                        [&net](int n) { return &net.telemetryOf(n); });
    system.run(5000);

    EXPECT_GT(net.stats().injectedPackets(), 100u);
    EXPECT_GT(net.stats().deliveredPackets(), 100u);
    // Both request and response classes moved.
    EXPECT_GT(net.stats().classDelivered(sim::MsgClass::ReqGpuL2Down), 0u);
    EXPECT_GT(net.stats().classDelivered(sim::MsgClass::RespCpuL2Down),
              0u);
    // Memory-class traffic flowed to/from node 16.
    EXPECT_GT(net.stats().classDelivered(sim::MsgClass::ReqL3), 0u);
    EXPECT_GT(net.stats().classDelivered(sim::MsgClass::RespL3), 0u);
}

TEST_F(SystemTest, CmeshEndToEndTrafficFlows)
{
    electrical::CmeshNetwork net;
    HeteroSystem system(net, pair_, SystemConfig{});
    system.run(5000);
    EXPECT_GT(net.stats().deliveredPackets(), 100u);
}

TEST_F(SystemTest, DeterministicAcrossRuns)
{
    auto run = [this]() {
        PearlConfig cfg;
        photonic::PowerModel power;
        StaticPolicy policy(photonic::WlState::WL64);
        PearlNetwork net(cfg, power, DbaConfig{}, &policy);
        HeteroSystem system(net, pair_, SystemConfig{},
                            [&net](int n) { return &net.telemetryOf(n); });
        system.run(3000);
        return net.stats().deliveredPackets();
    };
    EXPECT_EQ(run(), run());
}

TEST_F(SystemTest, SeedChangesOutcome)
{
    auto run = [this](std::uint64_t seed) {
        PearlConfig cfg;
        photonic::PowerModel power;
        StaticPolicy policy(photonic::WlState::WL64);
        PearlNetwork net(cfg, power, DbaConfig{}, &policy);
        SystemConfig sys;
        sys.seed = seed;
        HeteroSystem system(net, pair_, sys,
                            [&net](int n) { return &net.telemetryOf(n); });
        system.run(3000);
        return net.stats().deliveredPackets();
    };
    EXPECT_NE(run(1), run(2));
}

TEST_F(SystemTest, PacketConservation)
{
    // Every injected packet is eventually delivered or still queued; the
    // system never loses or duplicates packets.
    PearlConfig cfg;
    photonic::PowerModel power;
    StaticPolicy policy(photonic::WlState::WL64);
    PearlNetwork net(cfg, power, DbaConfig{}, &policy);
    HeteroSystem system(net, pair_, SystemConfig{},
                        [&net](int n) { return &net.telemetryOf(n); });
    system.run(4000);
    EXPECT_LE(net.stats().deliveredPackets(),
              net.stats().injectedPackets());
    // In-flight inventory is bounded by the buffering, not growing
    // without bound.
    const auto in_flight =
        net.stats().injectedPackets() - net.stats().deliveredPackets();
    EXPECT_LT(in_flight, 4000u);
}

TEST_F(SystemTest, CacheStatisticsAreSane)
{
    PearlConfig cfg;
    photonic::PowerModel power;
    StaticPolicy policy(photonic::WlState::WL64);
    PearlNetwork net(cfg, power, DbaConfig{}, &policy);
    HeteroSystem system(net, pair_, SystemConfig{},
                        [&net](int n) { return &net.telemetryOf(n); });
    system.run(8000);
    const auto cs = system.aggregateClusterStats();
    EXPECT_GT(cs.accesses[0], 0u);
    EXPECT_GT(cs.accesses[1], 0u);
    EXPECT_GT(cs.l1Hits[0] + cs.l1Misses[0], 0u);
    // Miss rates are valid fractions.
    EXPECT_LE(cs.l1MissRate(sim::CoreType::CPU), 1.0);
    EXPECT_LE(cs.l2MissRate(sim::CoreType::GPU), 1.0);
    const auto l3 = system.aggregateL3Stats();
    EXPECT_GT(l3.reads + l3.readExcls, 0u);
    EXPECT_LE(l3.hitRate(), 1.0);
}

TEST_F(SystemTest, LocalBankTrafficShortCircuits)
{
    // Some requests home onto the requester's own bank; they never touch
    // the network, so network injections must be fewer than total L3
    // requests + responses.
    PearlConfig cfg;
    photonic::PowerModel power;
    StaticPolicy policy(photonic::WlState::WL64);
    PearlNetwork net(cfg, power, DbaConfig{}, &policy);
    HeteroSystem system(net, pair_, SystemConfig{},
                        [&net](int n) { return &net.telemetryOf(n); });
    system.run(5000);
    const auto l3 = system.aggregateL3Stats();
    const auto network_l2down =
        net.stats().classInjected(sim::MsgClass::ReqCpuL2Down) +
        net.stats().classInjected(sim::MsgClass::ReqGpuL2Down);
    EXPECT_LT(network_l2down, l3.reads + l3.readExcls + l3.writebacks);
}

TEST_F(SystemTest, TelemetryPopulatedOnAllRouters)
{
    PearlConfig cfg;
    cfg.reservationWindow = 1 << 30; // no resets during the test
    photonic::PowerModel power;
    StaticPolicy policy(photonic::WlState::WL64);
    PearlNetwork net(cfg, power, DbaConfig{}, &policy);
    HeteroSystem system(net, pair_, SystemConfig{},
                        [&net](int n) { return &net.telemetryOf(n); });
    system.run(5000);
    int routers_with_injections = 0;
    for (int r = 0; r < 16; ++r) {
        if (net.telemetryOf(r).packetsInjected > 0)
            ++routers_with_injections;
    }
    EXPECT_EQ(routers_with_injections, 16);
    // The MC node sees memory-class traffic.
    EXPECT_GT(net.telemetryOf(16).packetsInjected, 0u);
}

TEST_F(SystemTest, MemoryNodeServesBankMisses)
{
    PearlConfig cfg;
    photonic::PowerModel power;
    StaticPolicy policy(photonic::WlState::WL64);
    PearlNetwork net(cfg, power, DbaConfig{}, &policy);
    HeteroSystem system(net, pair_, SystemConfig{},
                        [&net](int n) { return &net.telemetryOf(n); });
    system.run(5000);
    EXPECT_GT(system.memory().stats().reads, 0u);
}

TEST_F(SystemTest, RunUntilIdleOnQuietSystem)
{
    // With zero-rate profiles the system drains immediately.
    traffic::BenchmarkProfile quiet_cpu = pair_.cpu;
    quiet_cpu.accessRateOn = quiet_cpu.accessRateOff = 0.0;
    traffic::BenchmarkProfile quiet_gpu = pair_.gpu;
    quiet_gpu.accessRateOn = quiet_gpu.accessRateOff = 0.0;
    BenchmarkPair quiet{quiet_cpu, quiet_gpu};

    electrical::CmeshNetwork net;
    HeteroSystem system(net, quiet, SystemConfig{});
    EXPECT_TRUE(system.runUntilIdle(100));
}

TEST_F(SystemTest, ScalesDownToEightClusters)
{
    // Section III-A2 discusses scaling the design; the model is
    // parameterized in the cluster count through TopologySpec.  An
    // 8-cluster chip must run end to end.
    TopologySpec topo;
    topo.clusters = 8;
    photonic::PowerModel power;
    StaticPolicy policy(photonic::WlState::WL64);
    PearlNetwork net(topo.pearlConfig(), power, DbaConfig{}, &policy);
    EXPECT_EQ(net.numNodes(), 9);

    HeteroSystem system(net, pair_, makeSystemConfig(topo),
                        [&net](int n) { return &net.telemetryOf(n); });
    system.run(5000);
    EXPECT_GT(net.stats().deliveredPackets(), 50u);
    for (int r = 0; r < 8; ++r)
        EXPECT_GT(net.telemetryOf(r).packetsInjected, 0u);
}

TEST_F(SystemTest, ScalesDownToFourClusters)
{
    TopologySpec topo;
    topo.clusters = 4;
    photonic::PowerModel power;
    StaticPolicy policy(photonic::WlState::WL64);
    PearlNetwork net(topo.pearlConfig(), power, DbaConfig{}, &policy);

    HeteroSystem system(net, pair_, makeSystemConfig(topo),
                        [&net](int n) { return &net.telemetryOf(n); });
    system.run(5000);
    EXPECT_GT(net.stats().deliveredPackets(), 20u);
}

TEST_F(SystemTest, ScalesUpToThirtyTwoClustersGrouped)
{
    // Above 16 clusters the TopologySpec splits the fabric into
    // waveguide groups; the full system (wide directory sharer masks,
    // decoupled L3 banking, express inter-group slots) must run end to
    // end and deliver traffic from every router.
    TopologySpec topo;
    topo.clusters = 32;
    const PearlConfig cfg = topo.pearlConfig();
    EXPECT_TRUE(cfg.grouped());
    photonic::PowerModel power;
    StaticPolicy policy(photonic::WlState::WL64);
    PearlNetwork net(cfg, power, DbaConfig{}, &policy);
    EXPECT_EQ(net.numNodes(), 33);

    HeteroSystem system(net, pair_, makeSystemConfig(topo),
                        [&net](int n) { return &net.telemetryOf(n); });
    system.run(5000);
    EXPECT_GT(net.stats().deliveredPackets(), 100u);
    EXPECT_GT(net.expressAcquired(), 0u);
    for (int r = 0; r < 32; ++r)
        EXPECT_GT(net.telemetryOf(r).packetsInjected, 0u);
}

TEST_F(SystemTest, LatencyPercentilesAvailable)
{
    PearlConfig cfg;
    photonic::PowerModel power;
    StaticPolicy policy(photonic::WlState::WL64);
    PearlNetwork net(cfg, power, DbaConfig{}, &policy);
    HeteroSystem system(net, pair_, SystemConfig{},
                        [&net](int n) { return &net.telemetryOf(n); });
    system.run(6000);
    const auto &st = net.stats();
    EXPECT_GT(st.latencyQuantile(0.5), 0.0);
    EXPECT_GE(st.latencyQuantile(0.99), st.latencyQuantile(0.5));
    EXPECT_GE(st.latencyQuantile(0.5), st.latencyQuantile(0.05));
}

} // namespace
} // namespace core
} // namespace pearl
