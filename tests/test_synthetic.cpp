/**
 * @file
 * Tests of the synthetic traffic patterns and latency-load sweep.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/network.hpp"
#include "electrical/cmesh.hpp"
#include "photonic/power_model.hpp"
#include "traffic/synthetic.hpp"

namespace pearl {
namespace traffic {
namespace {

SyntheticConfig
config(Pattern p, double load = 0.05)
{
    SyntheticConfig cfg;
    cfg.pattern = p;
    cfg.flitsPerSourcePerCycle = load;
    return cfg;
}

std::unique_ptr<core::PearlNetwork>
makePearl(core::StaticPolicy &policy)
{
    static photonic::PowerModel power;
    return std::make_unique<core::PearlNetwork>(
        core::PearlConfig{}, power, core::DbaConfig{}, &policy);
}

TEST(Synthetic, PatternNames)
{
    EXPECT_STREQ(toString(Pattern::UniformRandom), "uniform-random");
    EXPECT_STREQ(toString(Pattern::Hotspot), "hotspot");
}

TEST(Synthetic, TransposeDestinations)
{
    SyntheticInjector inj(config(Pattern::Transpose));
    Rng rng(1);
    // (x=1,y=0) -> node 1 maps to (0,1) -> node 4.
    EXPECT_EQ(inj.destination(1, rng), 4);
    EXPECT_EQ(inj.destination(4, rng), 1);
    EXPECT_EQ(inj.destination(7, rng), 13);
    // Diagonal fixed points are remapped away from self.
    EXPECT_NE(inj.destination(0, rng), 0);
    EXPECT_NE(inj.destination(5, rng), 5);
}

TEST(Synthetic, BitComplementDestinations)
{
    SyntheticInjector inj(config(Pattern::BitComplement));
    Rng rng(1);
    EXPECT_EQ(inj.destination(0, rng), 15);
    EXPECT_EQ(inj.destination(5, rng), 10);
    EXPECT_EQ(inj.destination(15, rng), 0);
}

TEST(Synthetic, HotspotTargetsHotNode)
{
    SyntheticConfig cfg = config(Pattern::Hotspot);
    cfg.hotspotNode = 7;
    SyntheticInjector inj(cfg);
    Rng rng(1);
    for (int s = 0; s < 16; ++s)
        EXPECT_EQ(inj.destination(s, rng), 7);
}

TEST(Synthetic, UniformNeverSelf)
{
    SyntheticInjector inj(config(Pattern::UniformRandom));
    Rng rng(9);
    for (int s = 0; s < 16; ++s) {
        for (int i = 0; i < 200; ++i)
            EXPECT_NE(inj.destination(s, rng), s);
    }
}

TEST(Synthetic, OfferedLoadIsMet)
{
    // At a light load the network keeps up and delivered throughput
    // tracks the offered load (16 sources x load).
    core::StaticPolicy policy(photonic::WlState::WL64);
    auto net = makePearl(policy);
    SyntheticConfig cfg = config(Pattern::UniformRandom, 0.05);
    SyntheticInjector inj(cfg);
    const sim::Cycle cycles = 20000;
    for (sim::Cycle t = 0; t < cycles; ++t)
        inj.step(*net);
    const double delivered =
        net->stats().throughputFlitsPerCycle(cycles);
    EXPECT_NEAR(delivered, 16 * 0.05, 16 * 0.05 * 0.2);
    EXPECT_EQ(inj.backlogSize(), 0u);
}

TEST(Synthetic, SaturationCapsThroughput)
{
    // Far beyond capacity the delivered throughput plateaus and a
    // backlog builds.
    core::StaticPolicy policy(photonic::WlState::WL64);
    auto light_net = makePearl(policy);
    SyntheticInjector light(config(Pattern::UniformRandom, 0.1));
    auto heavy_net = makePearl(policy);
    SyntheticInjector heavy(config(Pattern::UniformRandom, 2.0));
    for (sim::Cycle t = 0; t < 10000; ++t) {
        light.step(*light_net);
        heavy.step(*heavy_net);
    }
    EXPECT_GT(heavy.backlogSize(), 1000u);
    // Heavy load delivers more than light but nowhere near 20x.
    const double light_thr =
        light_net->stats().throughputFlitsPerCycle(10000);
    const double heavy_thr =
        heavy_net->stats().throughputFlitsPerCycle(10000);
    EXPECT_GT(heavy_thr, light_thr);
    EXPECT_LT(heavy_thr, light_thr * 10);
}

TEST(Synthetic, LatencyLoadSweepShape)
{
    // The classic curve: latency grows with load; high loads saturate.
    core::StaticPolicy policy(photonic::WlState::WL64);
    const auto curve = latencyLoadSweep(
        [&policy] {
            static photonic::PowerModel power;
            return std::make_unique<core::PearlNetwork>(
                core::PearlConfig{}, power, core::DbaConfig{}, &policy);
        },
        {0.02, 0.2, 1.5}, SyntheticConfig{}, 8000);
    ASSERT_EQ(curve.size(), 3u);
    EXPECT_LT(curve[0].avgLatencyCycles, curve[2].avgLatencyCycles);
    EXPECT_FALSE(curve[0].saturated);
    EXPECT_TRUE(curve[2].saturated);
}

TEST(Synthetic, WorksOnCmeshToo)
{
    electrical::CmeshNetwork net;
    SyntheticInjector inj(config(Pattern::Neighbor, 0.05));
    for (sim::Cycle t = 0; t < 5000; ++t)
        inj.step(net);
    EXPECT_GT(net.stats().deliveredPackets(), 100u);
}

TEST(Synthetic, DeterministicPerSeed)
{
    auto run = []() {
        core::StaticPolicy policy(photonic::WlState::WL64);
        photonic::PowerModel power;
        core::PearlNetwork net(core::PearlConfig{}, power,
                               core::DbaConfig{}, &policy);
        SyntheticInjector inj(config(Pattern::UniformRandom, 0.1));
        for (sim::Cycle t = 0; t < 3000; ++t)
            inj.step(net);
        return net.stats().deliveredFlits();
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace traffic
} // namespace pearl
