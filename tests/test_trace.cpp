/**
 * @file
 * Tests of trace recording, serialisation and replay.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/network.hpp"
#include "photonic/power_model.hpp"
#include "electrical/cmesh.hpp"
#include "traffic/trace.hpp"

namespace pearl {
namespace traffic {
namespace {

using sim::Cycle;
using sim::MsgClass;
using sim::Packet;

Packet
tracePacket(int src, int dst, MsgClass cls = MsgClass::ReqCpuL2Down,
            int size = sim::kRequestBits)
{
    static std::uint64_t seq = 0;
    Packet p;
    p.id = ++seq;
    p.msgClass = cls;
    p.src = src;
    p.dst = dst;
    p.sizeBits = size;
    p.addr = 0xAB00 + seq;
    return p;
}

Trace
sampleTrace()
{
    Trace t;
    for (int i = 0; i < 20; ++i) {
        TraceRecord rec;
        rec.cycle = static_cast<Cycle>(10 + i * 3);
        rec.pkt = tracePacket(i % 16, (i + 5) % 17,
                              i % 2 ? MsgClass::RespGpuL2Down
                                    : MsgClass::ReqCpuL2Down,
                              i % 2 ? sim::kResponseBits
                                    : sim::kRequestBits);
        t.records.push_back(rec);
    }
    return t;
}

TEST(Trace, WriteReadRoundTrip)
{
    const Trace original = sampleTrace();
    std::stringstream buffer;
    TraceWriter::write(buffer, original);

    Trace loaded;
    ASSERT_TRUE(TraceReader::read(buffer, loaded));
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        const auto &a = original.records[i];
        const auto &b = loaded.records[i];
        EXPECT_EQ(a.cycle, b.cycle);
        EXPECT_EQ(a.pkt.id, b.pkt.id);
        EXPECT_EQ(a.pkt.msgClass, b.pkt.msgClass);
        EXPECT_EQ(a.pkt.op, b.pkt.op);
        EXPECT_EQ(a.pkt.src, b.pkt.src);
        EXPECT_EQ(a.pkt.dst, b.pkt.dst);
        EXPECT_EQ(a.pkt.sizeBits, b.pkt.sizeBits);
        EXPECT_EQ(a.pkt.addr, b.pkt.addr);
    }
}

TEST(Trace, ReaderRejectsGarbage)
{
    Trace t;
    std::stringstream bad("not-a-trace 5");
    EXPECT_FALSE(TraceReader::read(bad, t));
    std::stringstream truncated("pearl-trace-v1 3\n1 1 0 0 0 0 1 128 0");
    EXPECT_FALSE(TraceReader::read(truncated, t));
    std::stringstream bad_class("pearl-trace-v1 1\n1 1 99 0 0 0 1 128 0");
    EXPECT_FALSE(TraceReader::read(bad_class, t));
}

TEST(Trace, EmptyTraceRoundTrip)
{
    Trace empty;
    std::stringstream buffer;
    TraceWriter::write(buffer, empty);
    Trace loaded;
    ASSERT_TRUE(TraceReader::read(buffer, loaded));
    EXPECT_TRUE(loaded.empty());
    EXPECT_EQ(loaded.lastCycle(), 0u);
}

TEST(Trace, RecordingNetworkCapturesInjections)
{
    core::PearlConfig cfg;
    photonic::PowerModel power;
    core::StaticPolicy policy(photonic::WlState::WL64);
    core::PearlNetwork inner(cfg, power, core::DbaConfig{}, &policy);
    TraceRecordingNetwork recorder(inner);

    recorder.step();
    recorder.step();
    ASSERT_TRUE(recorder.inject(tracePacket(0, 5)));
    recorder.step();
    ASSERT_TRUE(recorder.inject(tracePacket(1, 6)));

    const Trace &t = recorder.trace();
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t.records[0].cycle, 2u);
    EXPECT_EQ(t.records[1].cycle, 3u);
    EXPECT_EQ(t.records[0].pkt.dst, 5);
}

TEST(Trace, RecordingNetworkSkipsRejected)
{
    core::PearlConfig cfg;
    photonic::PowerModel power;
    core::StaticPolicy policy(photonic::WlState::WL64);
    core::PearlNetwork inner(cfg, power, core::DbaConfig{}, &policy);
    TraceRecordingNetwork recorder(inner);

    // Fill the CPU inject buffer (64 slots / 5-flit responses = 12).
    int accepted = 0;
    for (int i = 0; i < 20; ++i) {
        accepted += recorder.inject(tracePacket(
            0, 1, MsgClass::RespCpuL2Down, sim::kResponseBits));
    }
    EXPECT_LT(accepted, 20);
    EXPECT_EQ(recorder.trace().size(),
              static_cast<std::size_t>(accepted));
}

TEST(Trace, ReplayDeliversEverything)
{
    const Trace trace = sampleTrace();
    core::PearlConfig cfg;
    photonic::PowerModel power;
    core::StaticPolicy policy(photonic::WlState::WL64);
    core::PearlNetwork net(cfg, power, core::DbaConfig{}, &policy);

    TraceReplayDriver driver(net, trace);
    ASSERT_TRUE(driver.runToCompletion(5000));
    EXPECT_EQ(driver.deliveredCount(), trace.size());
    EXPECT_EQ(driver.pendingCount(), 0u);
}

TEST(Trace, ReplayHonoursBackpressure)
{
    // A trace that overloads one source: all packets must still arrive,
    // in order, retried under backpressure.
    Trace trace;
    for (int i = 0; i < 50; ++i) {
        TraceRecord rec;
        rec.cycle = 0; // all at once
        rec.pkt = tracePacket(2, 9, MsgClass::RespCpuL2Down,
                              sim::kResponseBits);
        trace.records.push_back(rec);
    }
    core::PearlConfig cfg;
    photonic::PowerModel power;
    core::StaticPolicy policy(photonic::WlState::WL64);
    core::PearlNetwork net(cfg, power, core::DbaConfig{}, &policy);
    TraceReplayDriver driver(net, trace);
    ASSERT_TRUE(driver.runToCompletion(20000));
    EXPECT_EQ(driver.deliveredCount(), 50u);
}

TEST(Trace, ReplayIsDeterministic)
{
    const Trace trace = sampleTrace();
    auto run = [&trace]() {
        core::PearlConfig cfg;
        photonic::PowerModel power;
        core::StaticPolicy policy(photonic::WlState::WL64);
        core::PearlNetwork net(cfg, power, core::DbaConfig{}, &policy);
        TraceReplayDriver driver(net, trace);
        driver.runToCompletion(5000);
        return net.stats().avgLatency();
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Trace, SameTraceComparableAcrossNetworks)
{
    // The core trace-driven workflow: one trace, two networks.
    const Trace trace = sampleTrace();

    core::PearlConfig cfg;
    photonic::PowerModel power;
    core::StaticPolicy policy(photonic::WlState::WL64);
    core::PearlNetwork pearl(cfg, power, core::DbaConfig{}, &policy);
    TraceReplayDriver pearl_driver(pearl, trace);
    ASSERT_TRUE(pearl_driver.runToCompletion(5000));

    electrical::CmeshNetwork cmesh;
    TraceReplayDriver cmesh_driver(cmesh, trace);
    ASSERT_TRUE(cmesh_driver.runToCompletion(5000));

    EXPECT_EQ(pearl_driver.deliveredCount(),
              cmesh_driver.deliveredCount());
}

} // namespace
} // namespace traffic
} // namespace pearl
