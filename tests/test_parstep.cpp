/**
 * @file
 * Deterministic parallel stepping: bit-identity at every thread count.
 *
 * The shared execution engine (sim::ExecutionEngine, PEARL_THREADS)
 * promises byte-identical simulation output at 1, 2 and N worker lanes,
 * for single runs and for sweeps leasing job x lane slices from one
 * budget.  This suite pins that promise from several directions:
 *
 *  - WorkerPool unit tests: every index runs exactly once, the pool is
 *    reusable across parallelFor calls, the first worker exception is
 *    rethrown on the caller, and a 1-lane pool degenerates to inline
 *    execution.
 *  - Thread-budget precedence: every pair of (explicit request,
 *    PEARL_THREADS, deprecated PEARL_STEP_THREADS) resolves the same
 *    way through sim::resolveThreadBudget.
 *  - Golden-grid byte-identity: the tests/golden CSVs (written by
 *    the pre-existing serial path) are compared byte for byte against
 *    canonical CSV rows produced at 1, 2 and 8 step threads — for the
 *    PEARL fabric, the CMESH electrical baseline, and with dynamic
 *    shard rebalancing (PEARL_REBALANCE) switched on.
 *  - Shared-pool sweep: the same grid swept serially and under
 *    PEARL_THREADS=16 (8 jobs x 2 lanes from one pool, with and
 *    without PEARL_PIN) must emit byte-identical canonical CSV rows.
 *  - Lockstep differential: runDiff pits the sharded network against the
 *    always-serial RefNetwork on a grouped chip with the full fault
 *    plane enabled, at several thread counts and with rebalancing on;
 *    runCmeshDiff does the same for the electrical baseline.
 *  - Fuzz campaign: generated cases re-run through the differential
 *    harness with per-case randomized lane counts and rebalance flags.
 *
 * The whole binary is tier1, so the TSAN flavour of scripts/check.sh
 * runs it under ThreadSanitizer (with PEARL_THREADS=8 exported).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "core/topology.hpp"
#include "metrics/csv.hpp"
#include "metrics/sweep.hpp"
#include "ml/pipeline.hpp"
#include "ml/policy.hpp"
#include "sim/worker_pool.hpp"
#include "traffic/suite.hpp"
#include "verify/diff.hpp"
#include "verify/fuzzer.hpp"

#ifndef PEARL_GOLDEN_DIR
#error "PEARL_GOLDEN_DIR must point at tests/golden"
#endif

namespace pearl {
namespace {

using metrics::RunMetrics;
using metrics::RunOptions;
using metrics::RunSpec;
using metrics::SweepOptions;
using metrics::SweepResult;
using metrics::SweepRunner;

/** RAII env-var override (set/restored outside any worker launch). */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_ = false;
    std::string old_;
};

// ---------------------------------------------------------------------
// WorkerPool unit tests.
// ---------------------------------------------------------------------

TEST(WorkerPool, RunsEveryIndexOnceAndIsReusable)
{
    sim::WorkerPool pool(4);
    EXPECT_EQ(pool.lanes(), 4u);

    constexpr int kTasks = 203;
    // Two rounds through the same pool: reuse must not leak state from
    // the previous parallelFor (generation counter, done count).
    for (int round = 0; round < 2; ++round) {
        std::vector<std::atomic<int>> hits(kTasks);
        for (auto &h : hits)
            h.store(0);
        pool.parallelFor(kTasks, [&](int i) { hits[i].fetch_add(1); });
        for (int i = 0; i < kTasks; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "round " << round
                                         << " index " << i;
    }
}

TEST(WorkerPool, PropagatesFirstWorkerException)
{
    sim::WorkerPool pool(3);
    EXPECT_THROW(pool.parallelFor(64,
                                  [](int i) {
                                      if (i == 17)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // The pool must stay usable after an exceptional round.
    std::atomic<int> ran{0};
    pool.parallelFor(8, [&](int) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8);
}

TEST(WorkerPool, SingleLanePoolRunsInline)
{
    sim::WorkerPool pool(1);
    EXPECT_EQ(pool.lanes(), 1u);
    std::vector<int> order;
    pool.parallelFor(5, [&](int i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(StepThreads, PrecedenceAcrossEveryKnobPair)
{
    // Satellite unit test for sim::resolveThreadBudget: explicit
    // request > PEARL_THREADS > deprecated legacy knob > fallback,
    // checked for every pair of layers.  The fixture-free ScopedEnv
    // guards keep this immune to check.sh flavours exporting
    // PEARL_THREADS.
    ScopedEnv shared("PEARL_THREADS", nullptr);
    ScopedEnv legacy("PEARL_STEP_THREADS", nullptr);

    // Nothing set: fallback (serial) unless explicitly requested.
    EXPECT_EQ(sim::resolveStepThreads(0), 1u);
    EXPECT_EQ(sim::resolveStepThreads(2), 2u);

    // Shared budget alone: applies to unconstrained requests only.
    {
        ScopedEnv env("PEARL_THREADS", "3");
        EXPECT_EQ(sim::resolveStepThreads(0), 3u);
        EXPECT_EQ(sim::resolveStepThreads(8), 8u);
    }

    // Legacy knob alone: still honoured (deprecation shim).
    {
        ScopedEnv env("PEARL_STEP_THREADS", "5");
        EXPECT_EQ(sim::resolveStepThreads(0), 5u);
        EXPECT_EQ(sim::resolveStepThreads(8), 8u);
    }

    // Both set: the shared budget wins over the legacy knob.
    {
        ScopedEnv env("PEARL_THREADS", "3");
        ScopedEnv env2("PEARL_STEP_THREADS", "5");
        EXPECT_EQ(sim::resolveStepThreads(0), 3u);
        EXPECT_EQ(sim::resolveStepThreads(8), 8u);
    }

    // PEARL_THREADS=0 means "unset": the legacy knob applies again.
    {
        ScopedEnv env("PEARL_THREADS", "0");
        ScopedEnv env2("PEARL_STEP_THREADS", "5");
        EXPECT_EQ(sim::resolveStepThreads(0), 5u);
    }

    // Unparseable values warn and fall through a layer.
    {
        ScopedEnv env("PEARL_THREADS", "abc");
        ScopedEnv env2("PEARL_STEP_THREADS", "5");
        EXPECT_EQ(sim::resolveStepThreads(0), 5u);
    }
    {
        ScopedEnv env("PEARL_STEP_THREADS", "abc");
        EXPECT_EQ(sim::resolveStepThreads(0), 1u);
    }

    // Legacy zero means "unset" too, landing on the fallback.
    {
        ScopedEnv env("PEARL_STEP_THREADS", "0");
        EXPECT_EQ(sim::resolveStepThreads(0), 1u);
    }
}

// ---------------------------------------------------------------------
// Golden-grid byte-identity.  The grid below mirrors the one in
// test_golden_metrics.cpp; the checked-in CSVs are the contract between
// the two binaries, so any drift in either copy fails both suites.
// ---------------------------------------------------------------------

RunOptions
goldenOptions()
{
    RunOptions opts;
    opts.warmupCycles = 400;
    opts.measureCycles = 2500;
    return opts;
}

std::vector<traffic::BenchmarkPair>
goldenPairs(const traffic::BenchmarkSuite &suite)
{
    return {
        {suite.find("Rad"), suite.find("QRS")},
        {suite.find("FA"), suite.find("Reduc")},
        {suite.find("x264"), suite.find("DCT")},
    };
}

const ml::PipelineResult &
goldenModel(const traffic::BenchmarkSuite &suite)
{
    static const ml::PipelineResult trained = [&suite] {
        ml::PipelineConfig cfg;
        cfg.reservationWindow = 500;
        cfg.simCycles = 4000;
        cfg.maxTrainPairs = 2;
        cfg.maxValPairs = 1;
        cfg.secondPass = false;
        cfg.lambdaGrid = {0.1, 10.0};
        return ml::TrainingPipeline(suite, cfg).run();
    }();
    return trained;
}

struct GoldenConfig
{
    std::string name;
    std::vector<RunSpec> jobs;
};

std::vector<GoldenConfig>
goldenGrid(const traffic::BenchmarkSuite &suite)
{
    const RunOptions opts = goldenOptions();
    const auto pairs = goldenPairs(suite);

    std::vector<GoldenConfig> grid;
    auto addConfig =
        [&](const std::string &name, const core::DbaConfig &dba,
            std::function<std::unique_ptr<core::PowerPolicy>()> make) {
            GoldenConfig cfg;
            cfg.name = name;
            for (const auto &pair : pairs) {
                RunSpec job;
                job.configName = name;
                job.pair = pair;
                job.options = opts;
                job.dba = dba;
                job.pearl.reservationWindow = 500;
                job.makePolicy = make;
                cfg.jobs.push_back(std::move(job));
            }
            grid.push_back(std::move(cfg));
        };

    core::DbaConfig fcfs;
    fcfs.mode = core::DbaConfig::Mode::Fcfs;
    addConfig("fcfs", fcfs, [] {
        return std::make_unique<core::StaticPolicy>(
            photonic::WlState::WL64);
    });
    addConfig("reactive", core::DbaConfig{}, [] {
        return std::make_unique<core::ReactivePolicy>();
    });
    const ml::RidgeRegression &model = goldenModel(suite).model;
    addConfig("ml", core::DbaConfig{}, [&model] {
        return std::make_unique<ml::MlPowerPolicy>(&model);
    });
    return grid;
}

/** 32-cluster grouped chip, same shape as the scale32 golden. */
GoldenConfig
scale32Config(const traffic::BenchmarkSuite &suite)
{
    core::TopologySpec topo;
    topo.clusters = 32;
    GoldenConfig cfg;
    cfg.name = "scale32";
    for (const auto &pair : goldenPairs(suite)) {
        RunSpec job;
        job.configName = cfg.name;
        job.pair = pair;
        job.options = goldenOptions();
        job.options.system = core::makeSystemConfig(topo);
        job.pearl = topo.pearlConfig();
        job.makePolicy = [] {
            return std::make_unique<core::ReactivePolicy>();
        };
        cfg.jobs.push_back(std::move(job));
    }
    return cfg;
}

/** Electrical baseline, same shape as the cmesh golden: the default
 *  4x4 CMESH over the golden pairs. */
GoldenConfig
cmeshGoldenConfig(const traffic::BenchmarkSuite &suite)
{
    GoldenConfig cfg;
    cfg.name = "cmesh";
    for (const auto &pair : goldenPairs(suite)) {
        RunSpec job;
        job.configName = cfg.name;
        job.pair = pair;
        job.options = goldenOptions();
        job.fabric = RunSpec::Fabric::Cmesh;
        cfg.jobs.push_back(std::move(job));
    }
    return cfg;
}

/** Data rows of a checked-in golden CSV (header skipped). */
std::vector<std::string>
goldenLines(const std::string &config)
{
    const std::string path =
        std::string(PEARL_GOLDEN_DIR) + "/" + config + ".csv";
    std::ifstream in(path);
    EXPECT_TRUE(in) << "missing golden file " << path;
    std::vector<std::string> rows;
    std::string line;
    std::getline(in, line); // header
    while (std::getline(in, line))
        if (!line.empty())
            rows.push_back(line);
    return rows;
}

/** Canonical CSV rows for one config at a given lane count. */
std::vector<std::string>
rowsAtThreads(const GoldenConfig &cfg, unsigned threads)
{
    std::vector<RunSpec> jobs = cfg.jobs;
    for (RunSpec &job : jobs)
        job.options.stepThreads = threads;
    SweepOptions so;
    so.baseSeed = 100;
    const SweepResult result = SweepRunner(so).run(jobs);
    EXPECT_TRUE(result.allOk())
        << (result.firstError() ? result.firstError()->error : "unknown");
    std::vector<std::string> rows;
    for (const RunMetrics &m : result.metricsOrThrow())
        rows.push_back(metrics::csvRow({m.pairLabel}, m));
    return rows;
}

void
expectRowsMatchGolden(const GoldenConfig &cfg, unsigned threads)
{
    SCOPED_TRACE("config " + cfg.name + " threads " +
                 std::to_string(threads));
    const std::vector<std::string> golden = goldenLines(cfg.name);
    const std::vector<std::string> rows = rowsAtThreads(cfg, threads);
    ASSERT_EQ(rows.size(), golden.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
        EXPECT_EQ(rows[i], golden[i]) << "row " << i;
}

TEST(ParallelStep, GoldenGridRowsByteIdenticalAtAnyThreadCount)
{
    // The golden CSVs were produced by the serial path, so equality at
    // threads=1 proves the refactored serial path unchanged, and
    // equality at 2/8 proves the sharded path bit-identical to it.
    traffic::BenchmarkSuite suite;
    for (const GoldenConfig &cfg : goldenGrid(suite))
        for (unsigned threads : {1u, 2u, 8u})
            expectRowsMatchGolden(cfg, threads);
}

TEST(ParallelStep, Scale32GroupedRowsByteIdenticalAtAnyThreadCount)
{
    traffic::BenchmarkSuite suite;
    const GoldenConfig cfg = scale32Config(suite);
    expectRowsMatchGolden(cfg, 1);
    expectRowsMatchGolden(cfg, 2);
    {
        // The widest fan-out also runs under the invariant auditor, so
        // shard boundaries crossing waveguide groups would surface as a
        // legality violation here, not just as metric drift.
        ScopedEnv verify_env("PEARL_VERIFY", "1");
        expectRowsMatchGolden(cfg, 8);
    }
}

TEST(ParallelStep, CmeshGoldenRowsByteIdenticalAtAnyThreadCount)
{
    // The cmesh golden was produced by the serial stepper, so equality
    // at 2/8 lanes proves the wavefront-parallel CMESH step (region
    // split + ascending-router fold) bit-identical to it.
    traffic::BenchmarkSuite suite;
    const GoldenConfig cfg = cmeshGoldenConfig(suite);
    for (unsigned threads : {1u, 2u, 8u})
        expectRowsMatchGolden(cfg, threads);
}

TEST(ParallelStep, GoldenRowsUnchangedWithRebalancingOn)
{
    // Dynamic shard rebalancing re-packs PEARL shard boundaries at
    // every full reservation-window boundary; the fold order stays
    // ascending-router, so the golden rows must not move by a byte.
    ScopedEnv env("PEARL_REBALANCE", "1");
    traffic::BenchmarkSuite suite;
    for (const GoldenConfig &cfg : goldenGrid(suite))
        expectRowsMatchGolden(cfg, 8);
}

// ---------------------------------------------------------------------
// Shared-pool sweeps: jobs x lanes leased from one engine budget.
// ---------------------------------------------------------------------

TEST(ExecutionEngine, SharedPoolSweepMatchesSerialSweep)
{
    // 8 jobs under PEARL_THREADS=16 lease 8 job workers x 2 step lanes
    // from the shared engine; the canonical CSV rows must match a
    // fully serial sweep byte for byte, pinned or not.
    traffic::BenchmarkSuite suite;
    const auto pairs = goldenPairs(suite);
    std::vector<RunSpec> jobs;
    for (int i = 0; i < 8; ++i) {
        RunSpec job;
        job.configName = "shared";
        job.pair = pairs[static_cast<std::size_t>(i) % pairs.size()];
        job.options = goldenOptions();
        job.options.measureCycles = 1200;
        job.pearl.reservationWindow = 300 + 25 * i;
        job.makePolicy = [] {
            return std::make_unique<core::ReactivePolicy>();
        };
        jobs.push_back(std::move(job));
    }

    SweepOptions so;
    so.baseSeed = 42;

    auto rows = [&](unsigned sweep_threads) {
        SweepOptions run_so = so;
        run_so.threads = sweep_threads;
        const auto runs = SweepRunner(run_so).run(jobs).metricsOrThrow();
        std::vector<std::string> out;
        for (const RunMetrics &m : runs)
            out.push_back(metrics::csvRow({m.pairLabel}, m));
        return out;
    };

    std::vector<std::string> serial_rows;
    {
        ScopedEnv shared("PEARL_THREADS", nullptr);
        ScopedEnv legacy("PEARL_SWEEP_THREADS", nullptr);
        ScopedEnv step("PEARL_STEP_THREADS", nullptr);
        serial_rows = rows(1);
    }
    ASSERT_EQ(serial_rows.size(), jobs.size());

    {
        ScopedEnv shared("PEARL_THREADS", "16");
        const std::vector<std::string> pooled = rows(0);
        ASSERT_EQ(pooled.size(), serial_rows.size());
        for (std::size_t i = 0; i < pooled.size(); ++i)
            EXPECT_EQ(pooled[i], serial_rows[i]) << "row " << i;
    }
    {
        // Lane pinning is a placement hint, never a result change.
        ScopedEnv shared("PEARL_THREADS", "16");
        ScopedEnv pin("PEARL_PIN", "1");
        const std::vector<std::string> pinned = rows(0);
        ASSERT_EQ(pinned.size(), serial_rows.size());
        for (std::size_t i = 0; i < pinned.size(); ++i)
            EXPECT_EQ(pinned[i], serial_rows[i]) << "row " << i;
    }
}

// ---------------------------------------------------------------------
// Lockstep differential and fuzz campaign.
// ---------------------------------------------------------------------

/** Grouped 16-cluster chip with the full fault plane on: BER
 *  corruption, reservation drops, bank outages, retransmissions. */
verify::FuzzCase
groupedFaultedCase()
{
    verify::FuzzCase c;
    c.numClusters = 16;
    c.reservationGroupSize = 4;
    c.resExpressSlots = 2;
    c.faultsEnabled = true;
    c.bankMtbfCycles = 20000.0;
    c.bankMttrCycles = 400.0;
    c.baseBer = 1e-4;
    c.reservationDropRate = 0.01;
    c.cycles = 800;
    c.cpuRate = 0.08;
    c.gpuRate = 0.08;
    return c;
}

TEST(ParallelStep, LockstepWithFaultsOnGroupedChip)
{
    const verify::FuzzCase c = groupedFaultedCase();
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        verify::DiffCase dc = verify::toDiffCase(c);
        dc.stepThreads = threads;
        const verify::DiffResult r = verify::runDiff(dc);
        EXPECT_TRUE(r.ok()) << "diverged at cycle " << r.cycle << ": "
                            << r.description;
        EXPECT_GT(r.deliveredPackets, 0u);
    }
}

TEST(ParallelStep, LockstepWithRebalancingOnGroupedChip)
{
    // Same faulted chip with dynamic shard rebalancing forced on: the
    // re-packed shard boundaries must leave the lockstep comparison
    // (and the invariant checker riding on it) byte-clean.
    const verify::FuzzCase c = groupedFaultedCase();
    for (unsigned threads : {2u, 4u, 8u}) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        verify::DiffCase dc = verify::toDiffCase(c);
        dc.stepThreads = threads;
        dc.rebalance = true;
        const verify::DiffResult r = verify::runDiff(dc);
        EXPECT_TRUE(r.ok()) << "diverged at cycle " << r.cycle << ": "
                            << r.description;
        EXPECT_GT(r.deliveredPackets, 0u);
    }
}

TEST(ParallelStep, CmeshLockstepAtSeveralLaneCounts)
{
    // Parallel CMESH vs a second serial CmeshNetwork, lockstep every
    // cycle, including the flit-conservation recount.
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        verify::CmeshDiffCase c;
        c.cycles = 800;
        c.cpuRate = 0.08;
        c.gpuRate = 0.08;
        c.stepThreads = threads;
        const verify::DiffResult r = verify::runCmeshDiff(c);
        EXPECT_TRUE(r.ok()) << "diverged at cycle " << r.cycle << ": "
                            << r.description;
        EXPECT_GT(r.deliveredPackets, 0u);
    }
}

TEST(ParallelStep, CmeshLockstepOnNonSquareNarrowLinkMesh)
{
    // Non-square mesh (9 wavefront diagonals) with 2-cycle links, so
    // link-register reuse and the pull-based delivery handoff are
    // exercised off the default shape.
    verify::CmeshDiffCase c;
    c.cfg.meshX = 8;
    c.cfg.meshY = 2;
    c.cfg.linkCyclesPerFlit = 2;
    c.cycles = 800;
    c.cpuRate = 0.08;
    c.gpuRate = 0.08;
    c.stepThreads = 8;
    const verify::DiffResult r = verify::runCmeshDiff(c);
    EXPECT_TRUE(r.ok()) << "diverged at cycle " << r.cycle << ": "
                        << r.description;
    EXPECT_GT(r.deliveredPackets, 0u);
}

TEST(ParallelStep, FuzzCampaignWithRandomThreadCounts)
{
    // Each generated case runs the differential harness with a
    // case-dependent lane count in [2, 8] and a case-dependent shard
    // rebalancing flag; the serial reference makes every comparison a
    // parallel-vs-serial bit-identity proof.
    const std::uint64_t cases = pearl::envU64("PEARL_FUZZ_CASES", 24);
    for (std::uint64_t i = 0; i < cases; ++i) {
        const verify::FuzzCase c = verify::generateCase(0xBEEF, i);
        verify::DiffCase dc = verify::toDiffCase(c);
        dc.stepThreads = 2 + static_cast<unsigned>(i % 7);
        dc.rebalance = (i % 3) != 0;
        SCOPED_TRACE("case " + std::to_string(i) + " threads " +
                     std::to_string(dc.stepThreads) +
                     (dc.rebalance ? " rebalance" : ""));
        const verify::DiffResult r = verify::runDiff(dc);
        EXPECT_TRUE(r.ok()) << "diverged at cycle " << r.cycle << ": "
                            << r.description << "\n"
                            << verify::describeCase(c);
    }
}

TEST(ParallelStep, SweepMetricsIdenticalWithRandomThreadCounts)
{
    // Full-system check at the RunMetrics level: the same job swept
    // serially and at a randomized lane count must emit byte-identical
    // canonical CSV rows (caches, memory, policy windows included).
    traffic::BenchmarkSuite suite;
    const auto pairs = goldenPairs(suite);
    for (std::size_t i = 0; i < 6; ++i) {
        RunSpec job;
        job.configName = "rand";
        job.pair = pairs[i % pairs.size()];
        job.options = goldenOptions();
        job.options.measureCycles = 1200;
        job.pearl.reservationWindow = 300 + 50 * static_cast<int>(i);
        job.makePolicy = [] {
            return std::make_unique<core::ReactivePolicy>();
        };

        SweepOptions so;
        so.baseSeed = 100 + static_cast<std::uint64_t>(i);

        std::vector<RunSpec> serial_jobs{job};
        serial_jobs[0].options.stepThreads = 1;
        const auto serial =
            SweepRunner(so).run(serial_jobs).metricsOrThrow();

        std::vector<RunSpec> par_jobs{job};
        par_jobs[0].options.stepThreads =
            2 + static_cast<unsigned>((i * 5 + 1) % 7);
        const auto par = SweepRunner(so).run(par_jobs).metricsOrThrow();

        ASSERT_EQ(serial.size(), 1u);
        ASSERT_EQ(par.size(), 1u);
        EXPECT_EQ(metrics::csvRow({serial[0].pairLabel}, serial[0]),
                  metrics::csvRow({par[0].pairLabel}, par[0]))
            << "job " << i << " threads "
            << par_jobs[0].options.stepThreads;
    }
}

} // namespace
} // namespace pearl
