/**
 * @file
 * Tests of the thermal drift + ring-trimming model.
 */

#include <gtest/gtest.h>

#include "photonic/thermal.hpp"

namespace pearl {
namespace photonic {
namespace {

constexpr double kDt = 0.5e-9;

TEST(Thermal, IdleBankStaysLocked)
{
    ThermalRingBank bank(ThermalConfig{}, 128, Rng(3));
    for (int i = 0; i < 20000; ++i)
        bank.step(0.0, kDt);
    EXPECT_TRUE(bank.locked());
    EXPECT_DOUBLE_EQ(bank.unlockedFraction(), 0.0);
}

TEST(Thermal, HeaterPowerTracksGap)
{
    // At idle the gap is lockPoint - ambient = 20 C; heater power is
    // rings * perRingPerC * gap.
    ThermalConfig cfg;
    cfg.driftSigmaC = 0.0; // deterministic
    ThermalRingBank bank(cfg, 100, Rng(1));
    bank.step(0.0, kDt);
    EXPECT_NEAR(bank.heaterPowerW(), 1.3e-6 * 100 * 20.0, 1e-9);
}

TEST(Thermal, ActivityReducesHeaterPower)
{
    // Switching activity heats the die toward the lock point, so the
    // heaters back off — trimming power is workload dependent.
    ThermalConfig cfg;
    cfg.driftSigmaC = 0.0;
    ThermalRingBank idle(cfg, 100, Rng(1));
    ThermalRingBank busy(cfg, 100, Rng(1));
    idle.step(0.0, kDt);
    busy.step(1.0, kDt); // 1 W of activity -> +8 C
    EXPECT_LT(busy.heaterPowerW(), idle.heaterPowerW());
    EXPECT_NEAR(idle.heaterPowerW() - busy.heaterPowerW(),
                1.3e-6 * 100 * 8.0, 1e-9);
}

TEST(Thermal, OverheatingLosesLock)
{
    // Enough activity pushes the die past the lock point: heaters can't
    // cool, so the bank reports loss of lock.
    ThermalConfig cfg;
    cfg.driftSigmaC = 0.0;
    ThermalRingBank bank(cfg, 100, Rng(1));
    bank.step(3.0, kDt); // +24 C > 20 C gap
    EXPECT_FALSE(bank.locked());
    EXPECT_DOUBLE_EQ(bank.heaterPowerW(), 0.0);
    EXPECT_GT(bank.unlockedFraction(), 0.0);
}

TEST(Thermal, HeaterRangeSaturation)
{
    // A very cold die exceeds the heater range: saturated power, no lock.
    ThermalConfig cfg;
    cfg.driftSigmaC = 0.0;
    cfg.ambientC = 20.0;
    cfg.lockPointC = 65.0; // 45 C gap > 25 C range
    ThermalRingBank bank(cfg, 100, Rng(1));
    bank.step(0.0, kDt);
    EXPECT_FALSE(bank.locked());
    EXPECT_NEAR(bank.heaterPowerW(), 1.3e-6 * 100 * 25.0, 1e-9);
}

TEST(Thermal, EnergyAccumulates)
{
    ThermalConfig cfg;
    cfg.driftSigmaC = 0.0;
    ThermalRingBank bank(cfg, 100, Rng(1));
    for (int i = 0; i < 1000; ++i)
        bank.step(0.0, kDt);
    EXPECT_NEAR(bank.heaterEnergyJ(),
                1.3e-6 * 100 * 20.0 * 1000 * kDt, 1e-15);
}

TEST(Thermal, DriftStaysBounded)
{
    // Mean reversion keeps the random walk from wandering off.
    ThermalRingBank bank(ThermalConfig{}, 128, Rng(11));
    double max_dev = 0.0;
    for (int i = 0; i < 200000; ++i) {
        bank.step(0.0, kDt);
        max_dev = std::max(
            max_dev, std::abs(bank.dieTemperatureC() -
                              ThermalConfig{}.ambientC));
    }
    EXPECT_LT(max_dev, 10.0);
    EXPECT_GT(max_dev, 0.01); // and it does move
}

TEST(Thermal, DeterministicPerSeed)
{
    ThermalRingBank a(ThermalConfig{}, 64, Rng(9));
    ThermalRingBank b(ThermalConfig{}, 64, Rng(9));
    for (int i = 0; i < 1000; ++i) {
        a.step(0.1, kDt);
        b.step(0.1, kDt);
    }
    EXPECT_DOUBLE_EQ(a.dieTemperatureC(), b.dieTemperatureC());
    EXPECT_DOUBLE_EQ(a.heaterEnergyJ(), b.heaterEnergyJ());
}

} // namespace
} // namespace photonic
} // namespace pearl
