/**
 * @file
 * Behavioural tests of the L3 bank + directory: fills, sharing, probes,
 * invalidations, writebacks, memory fetches and per-line serialisation.
 */

#include <gtest/gtest.h>

#include "cache/l3.hpp"
#include "fakes.hpp"

namespace pearl {
namespace cache {
namespace {

using sim::CoherenceOp;
using sim::CoreType;
using sim::Cycle;
using sim::MsgClass;
using sim::NodeUnit;
using sim::Packet;
using test::CapturingSink;

class L3BankTest : public ::testing::Test
{
  protected:
    L3BankTest()
    {
        cfg_.l3AccessCycles = 2;
        cfg_.memoryCycles = 10;
        map_.numBanks = 16;
        map_.memoryNode = 16;
        bank_ = std::make_unique<L3Bank>(/*node=*/3, /*clusters=*/16,
                                         cfg_, map_);
        bank_->attach(&sink_, nullptr);
    }

    /** Run the bank forward to `cycle`. */
    void
    tickTo(Cycle cycle)
    {
        for (; now_ <= cycle; ++now_)
            bank_->tick(now_);
    }

    Packet
    request(int cluster, CoherenceOp op, std::uint64_t addr,
            CoreType type = CoreType::CPU)
    {
        Packet p;
        p.id = ++seq_;
        p.op = op;
        p.msgClass = type == CoreType::CPU ? MsgClass::ReqCpuL2Down
                                           : MsgClass::ReqGpuL2Down;
        p.dstUnit = NodeUnit::L3Bank;
        p.src = cluster;
        p.dst = 3;
        p.addr = addr;
        p.sizeBits = sim::kRequestBits;
        return p;
    }

    /** Feed the memory node's data response for `addr`. */
    void
    memResponse(std::uint64_t addr)
    {
        Packet p;
        p.id = ++seq_;
        p.op = CoherenceOp::Data;
        p.msgClass = MsgClass::RespL3;
        p.dstUnit = NodeUnit::L3Bank;
        p.src = 16;
        p.dst = 3;
        p.addr = addr;
        p.sizeBits = sim::kResponseBits;
        bank_->deliver(p, now_);
    }

    /** Drive a cold read for `cluster` to completion. */
    void
    coldRead(int cluster, std::uint64_t addr,
             CoreType type = CoreType::CPU)
    {
        bank_->deliver(request(cluster, CoherenceOp::Read, addr, type),
                       now_);
        tickTo(now_ + cfg_.l3AccessCycles + 1);
        memResponse(addr);
    }

    HierarchyConfig cfg_;
    HomeMap map_;
    CapturingSink sink_;
    std::unique_ptr<L3Bank> bank_;
    Cycle now_ = 0;
    std::uint64_t seq_ = 0;
};

TEST_F(L3BankTest, ColdReadFetchesFromMemory)
{
    bank_->deliver(request(1, CoherenceOp::Read, 0x42), now_);
    EXPECT_EQ(sink_.packets.size(), 0u); // lookup latency first
    tickTo(cfg_.l3AccessCycles + 1);
    ASSERT_EQ(sink_.countOp(CoherenceOp::Read), 1u);
    const Packet mem_req = sink_.withOp(CoherenceOp::Read)[0];
    EXPECT_EQ(mem_req.dst, 16);
    EXPECT_EQ(mem_req.msgClass, MsgClass::ReqL3);
    EXPECT_EQ(mem_req.dstUnit, NodeUnit::Memory);
    EXPECT_EQ(bank_->stats().misses, 1u);
}

TEST_F(L3BankTest, SoleReaderGetsExclusive)
{
    coldRead(1, 0x42);
    ASSERT_EQ(sink_.countOp(CoherenceOp::DataExcl), 1u);
    const Packet fill = sink_.withOp(CoherenceOp::DataExcl)[0];
    EXPECT_EQ(fill.dst, 1);
    EXPECT_EQ(fill.dstUnit, NodeUnit::Cluster);
    EXPECT_EQ(fill.msgClass, MsgClass::RespCpuL2Down);
    EXPECT_EQ(fill.sizeBits, sim::kResponseBits);
}

TEST_F(L3BankTest, SecondReaderTriggersShareProbe)
{
    coldRead(1, 0x42);
    sink_.clear();

    // Cluster 2 reads the same line: cluster 1 holds it E (owner).
    bank_->deliver(request(2, CoherenceOp::Read, 0x42), now_);
    tickTo(now_ + cfg_.l3AccessCycles + 1);
    ASSERT_EQ(sink_.countOp(CoherenceOp::ProbeShare), 1u);
    EXPECT_EQ(sink_.withOp(CoherenceOp::ProbeShare)[0].dst, 1);
    EXPECT_EQ(bank_->stats().hits, 1u);

    // Owner replies with data; requester then gets a shared copy.
    Packet reply;
    reply.op = CoherenceOp::Data;
    reply.msgClass = MsgClass::RespCpuL2Down;
    reply.src = 1;
    reply.dst = 3;
    reply.addr = 0x42;
    bank_->deliver(reply, now_);
    // The requester now gets its shared copy.
    ASSERT_EQ(sink_.countOp(CoherenceOp::Data), 1u);
    const Packet fill = sink_.withOp(CoherenceOp::Data)[0];
    EXPECT_EQ(fill.dst, 2);
}

TEST_F(L3BankTest, ThirdReaderServedWithoutProbe)
{
    // After the owner's data is reflected at the bank, later readers must
    // not probe again (the probe-storm regression test).
    coldRead(1, 0x42);
    sink_.clear();
    bank_->deliver(request(2, CoherenceOp::Read, 0x42), now_);
    tickTo(now_ + cfg_.l3AccessCycles + 1);
    Packet reply;
    reply.op = CoherenceOp::Data;
    reply.msgClass = MsgClass::RespCpuL2Down;
    reply.src = 1;
    reply.dst = 3;
    reply.addr = 0x42;
    bank_->deliver(reply, now_);
    sink_.clear();

    bank_->deliver(request(5, CoherenceOp::Read, 0x42), now_);
    tickTo(now_ + cfg_.l3AccessCycles + 1);
    EXPECT_EQ(sink_.countOp(CoherenceOp::ProbeShare), 0u);
    EXPECT_EQ(sink_.countOp(CoherenceOp::Data), 1u);
}

TEST_F(L3BankTest, RfoInvalidatesAllSharers)
{
    coldRead(1, 0x42);
    // Silent-owner case: make cluster 1 a plain sharer by absorbing its
    // probe, then add sharer 2.
    bank_->deliver(request(2, CoherenceOp::Read, 0x42), now_);
    tickTo(now_ + cfg_.l3AccessCycles + 1);
    Packet reply;
    reply.op = CoherenceOp::Data;
    reply.msgClass = MsgClass::RespCpuL2Down;
    reply.src = 1;
    reply.dst = 3;
    reply.addr = 0x42;
    bank_->deliver(reply, now_);
    sink_.clear();

    // Cluster 7 wants ownership: clusters 1 and 2 must be invalidated.
    bank_->deliver(request(7, CoherenceOp::ReadExcl, 0x42), now_);
    tickTo(now_ + cfg_.l3AccessCycles + 1);
    ASSERT_EQ(sink_.countOp(CoherenceOp::ProbeInv), 2u);

    // Both acks arrive; only then is the exclusive grant sent.
    for (int c : {1, 2}) {
        EXPECT_EQ(sink_.countOp(CoherenceOp::DataExcl), 0u);
        Packet ack;
        ack.op = CoherenceOp::Ack;
        ack.msgClass = MsgClass::RespCpuL2Down;
        ack.src = c;
        ack.dst = 3;
        ack.addr = 0x42;
        bank_->deliver(ack, now_);
    }
    ASSERT_EQ(sink_.countOp(CoherenceOp::DataExcl), 1u);
    EXPECT_EQ(sink_.withOp(CoherenceOp::DataExcl)[0].dst, 7);
}

TEST_F(L3BankTest, WriterIsNotInvalidatedItself)
{
    coldRead(4, 0x99);
    sink_.clear();
    // The current holder upgrades: no probes needed.
    bank_->deliver(request(4, CoherenceOp::ReadExcl, 0x99), now_);
    tickTo(now_ + cfg_.l3AccessCycles + 1);
    EXPECT_EQ(sink_.countOp(CoherenceOp::ProbeInv), 0u);
    EXPECT_EQ(sink_.countOp(CoherenceOp::DataExcl), 1u);
}

TEST_F(L3BankTest, WritebackMarksDirtyAndClearsHolder)
{
    coldRead(1, 0x42);
    sink_.clear();

    Packet wb;
    wb.op = CoherenceOp::Writeback;
    wb.msgClass = MsgClass::ReqCpuL2Down;
    wb.src = 1;
    wb.dst = 3;
    wb.addr = 0x42;
    wb.sizeBits = sim::kResponseBits;
    bank_->deliver(wb, now_);
    EXPECT_EQ(bank_->stats().writebacks, 1u);

    // A later read from another cluster is served without probing the
    // (gone) writer; with no holders left the grant is even exclusive.
    bank_->deliver(request(2, CoherenceOp::Read, 0x42), now_);
    tickTo(now_ + cfg_.l3AccessCycles + 1);
    EXPECT_EQ(sink_.countOp(CoherenceOp::ProbeShare), 0u);
    EXPECT_EQ(sink_.countOp(CoherenceOp::DataExcl), 1u);
}

TEST_F(L3BankTest, WritebackToAbsentLineForwardsToMemory)
{
    Packet wb;
    wb.op = CoherenceOp::Writeback;
    wb.msgClass = MsgClass::ReqCpuL2Down;
    wb.src = 1;
    wb.dst = 3;
    wb.addr = 0x777;
    wb.sizeBits = sim::kResponseBits;
    bank_->deliver(wb, now_);
    ASSERT_EQ(sink_.countOp(CoherenceOp::Writeback), 1u);
    EXPECT_EQ(sink_.withOp(CoherenceOp::Writeback)[0].dst, 16);
    EXPECT_EQ(sink_.withOp(CoherenceOp::Writeback)[0].msgClass,
              MsgClass::ReqL3);
}

TEST_F(L3BankTest, SameLineRequestsAreSerialised)
{
    bank_->deliver(request(1, CoherenceOp::Read, 0x42), now_);
    bank_->deliver(request(2, CoherenceOp::Read, 0x42), now_);
    EXPECT_EQ(bank_->mshrOccupancy(), 1u); // one transaction, two queued
    tickTo(cfg_.l3AccessCycles + 1);
    // Only one memory fetch for both requests.
    EXPECT_EQ(sink_.countOp(CoherenceOp::Read), 1u);
    memResponse(0x42);
    // First requester served immediately; second after a fresh lookup.
    EXPECT_EQ(sink_.countOp(CoherenceOp::DataExcl), 1u);
    tickTo(now_ + cfg_.l3AccessCycles + 1);
    EXPECT_EQ(sink_.countOp(CoherenceOp::ProbeShare), 1u);
}

TEST_F(L3BankTest, HitAfterFill)
{
    coldRead(1, 0x42);
    sink_.clear();
    // Same cluster reads again (e.g. after an L2 eviction): pure hit.
    bank_->deliver(request(1, CoherenceOp::Read, 0x42), now_);
    tickTo(now_ + cfg_.l3AccessCycles + 1);
    EXPECT_EQ(bank_->stats().hits, 1u);
    EXPECT_EQ(sink_.countOp(CoherenceOp::Read), 0u); // no memory traffic
}

TEST_F(L3BankTest, QuiescentAfterAllTransactions)
{
    EXPECT_TRUE(bank_->quiescent());
    bank_->deliver(request(1, CoherenceOp::Read, 0x42), now_);
    EXPECT_FALSE(bank_->quiescent());
    tickTo(cfg_.l3AccessCycles + 1);
    memResponse(0x42);
    tickTo(now_ + 5);
    EXPECT_TRUE(bank_->quiescent());
}

TEST_F(L3BankTest, GpuRequestsGetGpuClasses)
{
    coldRead(2, 0x55, CoreType::GPU);
    ASSERT_EQ(sink_.countOp(CoherenceOp::DataExcl), 1u);
    EXPECT_EQ(sink_.withOp(CoherenceOp::DataExcl)[0].msgClass,
              MsgClass::RespGpuL2Down);
}

TEST_F(L3BankTest, BankSizeIsSliceOfTotal)
{
    // 131072 lines / 16 banks = 8192 lines per bank; the bank must be
    // constructible and serve addresses beyond its nominal share.
    for (std::uint64_t a = 0; a < 64; ++a)
        coldRead(static_cast<int>(a % 16), 0x1000 + a * 16);
    EXPECT_EQ(bank_->stats().misses, 64u);
}

} // namespace
} // namespace cache
} // namespace pearl
