/**
 * @file
 * Tests for packets, message classes and coherence ops.  The MsgClass
 * ordering is load-bearing (it maps to ML features 14-29 / Table III),
 * so it is pinned here.
 */

#include <gtest/gtest.h>

#include "sim/packet.hpp"

namespace pearl {
namespace sim {
namespace {

TEST(MsgClass, TableIIIOrderIsPinned)
{
    EXPECT_EQ(static_cast<int>(MsgClass::ReqCpuL1I), 0);
    EXPECT_EQ(static_cast<int>(MsgClass::ReqCpuL1D), 1);
    EXPECT_EQ(static_cast<int>(MsgClass::ReqCpuL2Up), 2);
    EXPECT_EQ(static_cast<int>(MsgClass::ReqCpuL2Down), 3);
    EXPECT_EQ(static_cast<int>(MsgClass::ReqGpuL1), 4);
    EXPECT_EQ(static_cast<int>(MsgClass::ReqGpuL2Up), 5);
    EXPECT_EQ(static_cast<int>(MsgClass::ReqGpuL2Down), 6);
    EXPECT_EQ(static_cast<int>(MsgClass::ReqL3), 7);
    EXPECT_EQ(static_cast<int>(MsgClass::RespCpuL1I), 8);
    EXPECT_EQ(static_cast<int>(MsgClass::RespL3), 15);
    EXPECT_EQ(kNumMsgClasses, 16);
}

TEST(MsgClass, RequestResponseSplit)
{
    for (int c = 0; c < kNumMsgClasses; ++c) {
        const auto cls = static_cast<MsgClass>(c);
        EXPECT_EQ(isRequest(cls), c < 8) << toString(cls);
        EXPECT_NE(isRequest(cls), isResponse(cls));
    }
}

TEST(MsgClass, CoreTypeAttribution)
{
    EXPECT_EQ(coreTypeOf(MsgClass::ReqCpuL1D), CoreType::CPU);
    EXPECT_EQ(coreTypeOf(MsgClass::RespCpuL2Down), CoreType::CPU);
    EXPECT_EQ(coreTypeOf(MsgClass::ReqGpuL1), CoreType::GPU);
    EXPECT_EQ(coreTypeOf(MsgClass::ReqGpuL2Down), CoreType::GPU);
    EXPECT_EQ(coreTypeOf(MsgClass::RespGpuL2Up), CoreType::GPU);
    // L3/memory classes are attributed to CPU by convention.
    EXPECT_EQ(coreTypeOf(MsgClass::ReqL3), CoreType::CPU);
    EXPECT_EQ(coreTypeOf(MsgClass::RespL3), CoreType::CPU);
}

TEST(MsgClass, NamesMatchTableIII)
{
    EXPECT_STREQ(toString(MsgClass::ReqCpuL1I),
                 "Request CPU L1 instruction");
    EXPECT_STREQ(toString(MsgClass::RespGpuL2Down),
                 "Response GPU L2 down");
    EXPECT_STREQ(toString(MsgClass::ReqL3), "Request L3");
}

TEST(CoherenceOp, CarriesData)
{
    EXPECT_TRUE(carriesData(CoherenceOp::Data));
    EXPECT_TRUE(carriesData(CoherenceOp::DataExcl));
    EXPECT_TRUE(carriesData(CoherenceOp::Writeback));
    EXPECT_FALSE(carriesData(CoherenceOp::Read));
    EXPECT_FALSE(carriesData(CoherenceOp::ReadExcl));
    EXPECT_FALSE(carriesData(CoherenceOp::ProbeShare));
    EXPECT_FALSE(carriesData(CoherenceOp::ProbeInv));
    EXPECT_FALSE(carriesData(CoherenceOp::Ack));
}

TEST(Packet, FlitSizing)
{
    EXPECT_EQ(flitsFor(kRequestBits), 1);
    EXPECT_EQ(flitsFor(kResponseBits), 5);
    EXPECT_EQ(flitsFor(1), 1);
    EXPECT_EQ(flitsFor(128), 1);
    EXPECT_EQ(flitsFor(129), 2);
    EXPECT_EQ(flitsFor(256), 2);
}

TEST(Packet, DefaultsAndLatency)
{
    Packet p;
    p.cycleCreated = 100;
    p.cycleDelivered = 175;
    EXPECT_EQ(p.latency(), 75u);
    EXPECT_EQ(p.numFlits(), 1);
    EXPECT_TRUE(p.request());
}

TEST(Packet, ResponsePacketIsFiveFlits)
{
    Packet p;
    p.msgClass = MsgClass::RespCpuL2Down;
    p.sizeBits = kResponseBits;
    EXPECT_EQ(p.numFlits(), 5);
    EXPECT_FALSE(p.request());
    EXPECT_EQ(p.coreType(), CoreType::CPU);
}

TEST(Packet, GpuClassCoreType)
{
    Packet p;
    p.msgClass = MsgClass::ReqGpuL2Down;
    EXPECT_EQ(p.coreType(), CoreType::GPU);
}

} // namespace
} // namespace sim
} // namespace pearl
