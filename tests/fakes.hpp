/**
 * @file
 * Shared test doubles: a capturing packet sink and small helpers used by
 * the cluster / L3-bank / memory tests.
 */

#ifndef PEARL_TESTS_FAKES_HPP
#define PEARL_TESTS_FAKES_HPP

#include <vector>

#include "sim/packet.hpp"
#include "sim/sink.hpp"

namespace pearl {
namespace test {

/** Records every packet a node model emits. */
class CapturingSink : public sim::PacketSink
{
  public:
    void
    send(sim::Packet &&pkt) override
    {
        packets.push_back(std::move(pkt));
    }

    /** Packets matching an op, in emission order. */
    std::vector<sim::Packet>
    withOp(sim::CoherenceOp op) const
    {
        std::vector<sim::Packet> out;
        for (const auto &p : packets) {
            if (p.op == op)
                out.push_back(p);
        }
        return out;
    }

    std::size_t
    countOp(sim::CoherenceOp op) const
    {
        return withOp(op).size();
    }

    void clear() { packets.clear(); }

    std::vector<sim::Packet> packets;
};

} // namespace test
} // namespace pearl

#endif // PEARL_TESTS_FAKES_HPP
