/**
 * @file
 * Tests of the PEARL crossbar network: end-to-end delivery, window
 * boundaries, policy application, collector callbacks and energy
 * accounting.
 */

#include <gtest/gtest.h>

#include "core/network.hpp"
#include "photonic/power_model.hpp"

namespace pearl {
namespace core {
namespace {

using photonic::PowerModel;
using photonic::WlState;
using sim::Cycle;
using sim::MsgClass;
using sim::Packet;

Packet
netPacket(int src, int dst, MsgClass cls = MsgClass::ReqCpuL2Down,
          int size = sim::kRequestBits)
{
    static std::uint64_t seq = 0;
    Packet p;
    p.id = ++seq;
    p.msgClass = cls;
    p.src = src;
    p.dst = dst;
    p.sizeBits = size;
    return p;
}

class PearlNetworkTest : public ::testing::Test
{
  protected:
    void
    makeNet(PowerPolicy *policy = nullptr)
    {
        policy_ = policy ? policy : &static64_;
        net_ = std::make_unique<PearlNetwork>(cfg_, power_, DbaConfig{},
                                              policy_);
    }

    void
    stepN(int n)
    {
        for (int i = 0; i < n; ++i)
            net_->step();
    }

    PearlConfig cfg_;
    PowerModel power_;
    StaticPolicy static64_{WlState::WL64};
    PowerPolicy *policy_ = nullptr;
    std::unique_ptr<PearlNetwork> net_;
};

TEST_F(PearlNetworkTest, DeliversEndToEnd)
{
    makeNet();
    ASSERT_TRUE(net_->inject(netPacket(0, 5)));
    stepN(20);
    ASSERT_EQ(net_->delivered().size(), 1u);
    const Packet &p = net_->delivered()[0];
    EXPECT_EQ(p.dst, 5);
    EXPECT_GT(p.cycleDelivered, p.cycleInjected);
    EXPECT_EQ(net_->stats().deliveredPackets(), 1u);
}

TEST_F(PearlNetworkTest, DeliveryLatencyIsReasonable)
{
    makeNet();
    net_->inject(netPacket(0, 5));
    stepN(20);
    ASSERT_EQ(net_->delivered().size(), 1u);
    // 2 reservation + 2 serialize + link/eject pipeline.
    const auto lat = net_->delivered()[0].latency();
    EXPECT_GE(lat, 5u);
    EXPECT_LE(lat, 10u);
}

TEST_F(PearlNetworkTest, AllSeventeenNodesReachable)
{
    makeNet();
    for (int src = 0; src < net_->numNodes(); ++src) {
        const int dst = (src + 7) % net_->numNodes();
        ASSERT_TRUE(net_->inject(netPacket(src, dst)));
    }
    stepN(40);
    EXPECT_EQ(net_->stats().deliveredPackets(), 17u);
}

TEST_F(PearlNetworkTest, IdleAfterDrain)
{
    makeNet();
    EXPECT_TRUE(net_->idle());
    net_->inject(netPacket(1, 2));
    EXPECT_FALSE(net_->idle());
    stepN(30);
    EXPECT_TRUE(net_->idle());
}

TEST_F(PearlNetworkTest, WindowCollectorFiresPerRouterPerWindow)
{
    cfg_.reservationWindow = 100;
    cfg_.windowOffsetPerRouter = 3;
    makeNet();
    std::vector<WindowRecord> records;
    net_->setWindowCollector(
        [&records](const WindowRecord &r) { records.push_back(r); });
    stepN(250);
    // Router 0 (offset 0) closes windows at cycles 100 and 200; routers
    // 1..16 (offsets 3..48) close at offset, offset+100, offset+200.
    EXPECT_EQ(records.size(), static_cast<std::size_t>(2 + 16 * 3));
    // Offsets stagger the boundaries: both aligned and offset closes
    // appear in the stream.
    bool found_aligned = false, found_offset = false;
    for (const auto &r : records) {
        found_aligned |= (r.windowEnd % 100) == 0;
        found_offset |= (r.windowEnd % 100) == 3;
    }
    EXPECT_TRUE(found_aligned);
    EXPECT_TRUE(found_offset);
}

TEST_F(PearlNetworkTest, PolicyDrivesLaserState)
{
    cfg_.reservationWindow = 50;
    StaticPolicy low(WlState::WL8);
    makeNet(&low);
    stepN(200);
    for (int r = 0; r < net_->numNodes(); ++r)
        EXPECT_EQ(net_->router(r).laser().state(), WlState::WL8);
    EXPECT_GT(net_->residency(WlState::WL8), 0.5);
}

TEST_F(PearlNetworkTest, LaserEnergyMatchesUniformState)
{
    cfg_.reservationWindow = 1000000; // no boundaries in this test
    makeNet();
    stepN(1000);
    // All routers at WL64: total power is the paper's network aggregate.
    const double expected =
        1.16 * 1000 * cfg_.cycleSeconds *
        (16.0 + cfg_.l3WaveguideGroup) / (16.0 + cfg_.l3WaveguideGroup);
    EXPECT_NEAR(net_->laserEnergyJ(), expected, expected * 1e-9);
    EXPECT_NEAR(net_->averageLaserPowerW(), 1.16, 1e-9);
}

TEST_F(PearlNetworkTest, EnergyAccumulates)
{
    makeNet();
    stepN(100);
    const double laser = net_->laserEnergyJ();
    const double trim = net_->trimmingEnergyJ();
    const double stat = net_->staticEnergyJ();
    EXPECT_GT(laser, 0.0);
    EXPECT_GT(trim, 0.0);
    EXPECT_GT(stat, 0.0);
    EXPECT_GE(net_->totalEnergyJ(), laser + trim + stat);
    net_->inject(netPacket(0, 3, MsgClass::RespCpuL2Down,
                           sim::kResponseBits));
    stepN(30);
    EXPECT_GT(net_->dynamicEnergyJ(), 0.0);
}

TEST_F(PearlNetworkTest, BackpressureOnFullInjectBuffer)
{
    makeNet();
    int accepted = 0;
    // Responses are 5 flits; 64 slots accept 12 of them.
    while (net_->canInject(netPacket(0, 1, MsgClass::RespCpuL2Down,
                                     sim::kResponseBits)) &&
           accepted < 100) {
        net_->inject(netPacket(0, 1, MsgClass::RespCpuL2Down,
                               sim::kResponseBits));
        ++accepted;
    }
    EXPECT_EQ(accepted, 12);
    EXPECT_FALSE(net_->inject(netPacket(0, 1, MsgClass::RespCpuL2Down,
                                        sim::kResponseBits)));
    // Draining makes room again.
    stepN(60);
    EXPECT_TRUE(net_->canInject(netPacket(0, 1, MsgClass::RespCpuL2Down,
                                          sim::kResponseBits)));
}

TEST_F(PearlNetworkTest, TelemetryWavelengthFollowsPolicy)
{
    cfg_.reservationWindow = 50;
    StaticPolicy low(WlState::WL16);
    makeNet(&low);
    stepN(120);
    EXPECT_EQ(net_->telemetryOf(0).wavelengths, 16);
}

TEST_F(PearlNetworkTest, ResidencySumsToOne)
{
    cfg_.reservationWindow = 64;
    ReactivePolicy reactive;
    makeNet(&reactive);
    net_->inject(netPacket(2, 9, MsgClass::RespGpuL2Down,
                           sim::kResponseBits));
    stepN(500);
    double total = 0.0;
    for (int s = 0; s < photonic::kNumWlStates; ++s)
        total += net_->residency(photonic::stateFromIndex(s));
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(PearlNetworkTest, L3RouterHasWaveguideGroup)
{
    makeNet();
    EXPECT_EQ(net_->router(cfg_.l3Node).waveguides(),
              cfg_.l3WaveguideGroup);
    EXPECT_EQ(net_->router(0).waveguides(), 1);
}

} // namespace
} // namespace core
} // namespace pearl
