/**
 * @file
 * Tests of the dense-matrix substrate and the Cholesky solver.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/matrix.hpp"

namespace pearl {
namespace ml {
namespace {

TEST(Matrix, ConstructionAndIndexing)
{
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
    m(0, 1) = -2.0;
    EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, Identity)
{
    Matrix id = Matrix::identity(3, 2.5);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(id(i, j), i == j ? 2.5 : 0.0);
    }
}

TEST(Matrix, Addition)
{
    Matrix a(2, 2, 1.0), b(2, 2, 2.0);
    Matrix c = a + b;
    EXPECT_DOUBLE_EQ(c(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(Matrix, Multiplication)
{
    Matrix a(2, 3);
    a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
    a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
    Matrix b(3, 2);
    b(0, 0) = 7; b(0, 1) = 8;
    b(1, 0) = 9; b(1, 1) = 10;
    b(2, 0) = 11; b(2, 1) = 12;
    Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, MatrixVector)
{
    Matrix a(2, 2);
    a(0, 0) = 1; a(0, 1) = 2;
    a(1, 0) = 3; a(1, 1) = 4;
    const auto y = a * std::vector<double>{1.0, -1.0};
    EXPECT_DOUBLE_EQ(y[0], -1.0);
    EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(Matrix, Transpose)
{
    Matrix a(2, 3);
    a(0, 2) = 5.0;
    Matrix t = a.transpose();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 0), 5.0);
}

TEST(Matrix, GramEqualsExplicitProduct)
{
    Matrix x(4, 3);
    double v = 0.3;
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            x(i, j) = v;
            v = v * 1.7 - 0.4;
        }
    }
    Matrix g = x.gram();
    Matrix expected = x.transpose() * x;
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_NEAR(g(i, j), expected(i, j), 1e-12);
    }
}

TEST(Matrix, TransposeTimesVector)
{
    Matrix x(3, 2);
    x(0, 0) = 1; x(0, 1) = 2;
    x(1, 0) = 3; x(1, 1) = 4;
    x(2, 0) = 5; x(2, 1) = 6;
    const auto b = x.transposeTimes({1.0, 1.0, 1.0});
    EXPECT_DOUBLE_EQ(b[0], 9.0);
    EXPECT_DOUBLE_EQ(b[1], 12.0);
}

TEST(Cholesky, SolvesKnownSystem)
{
    // SPD matrix [[4,2],[2,3]], b = [6,5] -> x = [1,1].
    Matrix a(2, 2);
    a(0, 0) = 4; a(0, 1) = 2;
    a(1, 0) = 2; a(1, 1) = 3;
    const auto x = Matrix::choleskySolve(a, {6.0, 5.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(Cholesky, SolvesLargerRandomSpd)
{
    // Build A = M^T M + I (guaranteed SPD), solve A x = A * ones.
    const std::size_t n = 12;
    Matrix m(n, n);
    Rng rng(99);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j)
            m(i, j) = rng.uniform() - 0.5;
    }
    Matrix a = m.gram() + Matrix::identity(n, 1.0);
    const std::vector<double> ones(n, 1.0);
    const auto b = a * ones;
    const auto x = Matrix::choleskySolve(a, b);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], 1.0, 1e-9);
}

TEST(Cholesky, IdentitySolvesTrivially)
{
    const auto x =
        Matrix::choleskySolve(Matrix::identity(3), {1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(x[0], 1.0);
    EXPECT_DOUBLE_EQ(x[1], 2.0);
    EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(CholeskyDeath, RejectsIndefiniteMatrix)
{
    Matrix a(2, 2);
    a(0, 0) = 1; a(0, 1) = 2;
    a(1, 0) = 2; a(1, 1) = 1; // eigenvalues 3 and -1
    EXPECT_EXIT(Matrix::choleskySolve(a, {1.0, 1.0}),
                ::testing::ExitedWithCode(1), "not positive definite");
}

} // namespace
} // namespace ml
} // namespace pearl
