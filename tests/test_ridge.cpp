/**
 * @file
 * Tests of the ridge regression solver (Equations 4-6) and the NRMSE
 * goodness-of-fit metric.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "ml/ridge.hpp"

namespace pearl {
namespace ml {
namespace {

Dataset
linearData(int n, double noise, Rng &rng)
{
    // y = 3*x0 - 2*x1 + 5, with feature scales differing wildly to
    // exercise standardisation.
    Dataset d;
    for (int i = 0; i < n; ++i) {
        const double x0 = rng.uniform() * 100.0;
        const double x1 = rng.uniform() * 0.01;
        const double y = 3.0 * x0 - 200.0 * x1 + 5.0 +
                         noise * (rng.uniform() - 0.5);
        d.add({x0, x1}, y);
    }
    return d;
}

TEST(Ridge, RecoversLinearFunction)
{
    Rng rng(5);
    Dataset d = linearData(500, 0.0, rng);
    RidgeRegression model;
    model.fit(d, 1e-8);
    for (int i = 0; i < 20; ++i) {
        const auto &x = d.features[static_cast<std::size_t>(i)];
        EXPECT_NEAR(model.predict(x), d.labels[static_cast<std::size_t>(i)],
                    1e-6);
    }
}

TEST(Ridge, PredictsUnseenPoints)
{
    Rng rng(6);
    Dataset d = linearData(500, 0.0, rng);
    RidgeRegression model;
    model.fit(d, 1e-8);
    EXPECT_NEAR(model.predict({50.0, 0.005}),
                3.0 * 50.0 - 200.0 * 0.005 + 5.0, 1e-6);
}

TEST(Ridge, InterceptIsLabelMeanForCenteredData)
{
    Dataset d;
    d.add({1.0}, 10.0);
    d.add({-1.0}, 20.0);
    RidgeRegression model;
    model.fit(d, 0.1);
    EXPECT_NEAR(model.intercept(), 15.0, 1e-12);
}

TEST(Ridge, RegularisationShrinksWeights)
{
    Rng rng(7);
    Dataset d = linearData(200, 10.0, rng);
    RidgeRegression weak, strong;
    weak.fit(d, 1e-6);
    strong.fit(d, 1e6);
    double weak_norm = 0, strong_norm = 0;
    for (double w : weak.weights())
        weak_norm += w * w;
    for (double w : strong.weights())
        strong_norm += w * w;
    EXPECT_LT(strong_norm, weak_norm * 0.01);
}

TEST(Ridge, HeavyRegularisationPredictsMean)
{
    Rng rng(8);
    Dataset d = linearData(200, 0.0, rng);
    RidgeRegression model;
    model.fit(d, 1e9);
    double mean = 0;
    for (double y : d.labels)
        mean += y;
    mean /= static_cast<double>(d.labels.size());
    EXPECT_NEAR(model.predict(d.features[0]), mean, std::abs(mean) * 0.01);
}

TEST(Ridge, ConstantFeatureIsHarmless)
{
    Dataset d;
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        const double x = rng.uniform();
        d.add({x, 7.0}, 2.0 * x); // second feature constant
    }
    RidgeRegression model;
    model.fit(d, 1e-6);
    EXPECT_NEAR(model.predict({0.5, 7.0}), 1.0, 1e-6);
}

TEST(Ridge, PredictAllMatchesPredict)
{
    Rng rng(10);
    Dataset d = linearData(50, 1.0, rng);
    RidgeRegression model;
    model.fit(d, 1.0);
    const auto all = model.predictAll(d);
    for (std::size_t i = 0; i < d.size(); ++i)
        EXPECT_DOUBLE_EQ(all[i], model.predict(d.features[i]));
}

TEST(Ridge, LambdaIsRecorded)
{
    Dataset d;
    d.add({1.0}, 1.0);
    d.add({2.0}, 2.0);
    RidgeRegression model;
    model.fit(d, 3.5);
    EXPECT_DOUBLE_EQ(model.lambda(), 3.5);
    EXPECT_TRUE(model.trained());
}

TEST(Ridge, SaveLoadRoundTrip)
{
    Rng rng(11);
    Dataset d = linearData(200, 1.0, rng);
    RidgeRegression model;
    model.fit(d, 2.0);

    std::stringstream buffer;
    model.save(buffer);
    RidgeRegression loaded;
    ASSERT_TRUE(loaded.load(buffer));
    EXPECT_DOUBLE_EQ(loaded.lambda(), 2.0);
    for (int i = 0; i < 20; ++i) {
        const auto &x = d.features[static_cast<std::size_t>(i)];
        EXPECT_DOUBLE_EQ(loaded.predict(x), model.predict(x));
    }
}

TEST(Ridge, LoadRejectsGarbage)
{
    std::stringstream buffer("not-a-model 3 0.1 0.2");
    RidgeRegression model;
    EXPECT_FALSE(model.load(buffer));
    std::stringstream truncated("pearl-ridge-v1\n2 0.1 0.2\n1 1");
    EXPECT_FALSE(model.load(truncated));
}

TEST(Dataset, AppendConcatenates)
{
    Dataset a, b;
    a.add({1.0}, 1.0);
    b.add({2.0}, 2.0);
    b.add({3.0}, 3.0);
    a.append(b);
    EXPECT_EQ(a.size(), 3u);
    EXPECT_DOUBLE_EQ(a.labels[2], 3.0);
}

TEST(Nrmse, PerfectFitIsOne)
{
    const std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(nrmseFit(y, y), 1.0);
}

TEST(Nrmse, MeanPredictorIsZero)
{
    const std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
    const std::vector<double> mean(4, 2.5);
    EXPECT_NEAR(nrmseFit(y, mean), 0.0, 1e-12);
}

TEST(Nrmse, WorseThanMeanIsNegative)
{
    const std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
    const std::vector<double> bad = {10.0, -10.0, 10.0, -10.0};
    EXPECT_LT(nrmseFit(y, bad), 0.0);
}

TEST(Nrmse, BetterFitScoresHigher)
{
    const std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
    const std::vector<double> close = {1.1, 2.1, 2.9, 4.1};
    const std::vector<double> far = {2.0, 3.0, 2.0, 3.0};
    EXPECT_GT(nrmseFit(y, close), nrmseFit(y, far));
}

} // namespace
} // namespace ml
} // namespace pearl
